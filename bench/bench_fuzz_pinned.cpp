// Replays every pinned fuzz regression (check::pinned_cases) under
// google-benchmark. Pinned cases are correctness reproducers first, but the
// code paths they pin -- multi-solver agreement, batched sweeps, cache
// warm/cold -- are also the serving hot paths, so tracking their wall-clock
// catches a fix that quietly regresses performance. A pinned case that
// fails its oracle aborts the benchmark with an error instead of reporting
// a meaningless timing.

#include <benchmark/benchmark.h>

#include <string>

#include "check/fuzz.hpp"
#include "check/oracles.hpp"

namespace {

void run_pinned(benchmark::State& state, const updec::check::Oracle* oracle,
                updec::check::PinnedCase pin) {
  updec::check::OracleCase c;
  c.seed = pin.case_seed;
  c.size = pin.size;
  for (auto _ : state) {
    const updec::check::OracleResult r = updec::check::run_guarded(*oracle, c);
    if (!r.ok && !r.skipped) {
      state.SkipWithError(("pinned case regressed: " + r.detail).c_str());
      return;
    }
    benchmark::DoNotOptimize(r.error);
  }
  state.counters["size"] = static_cast<double>(pin.size);
}

}  // namespace

int main(int argc, char** argv) {
  for (const updec::check::PinnedCase& pin : updec::check::pinned_cases()) {
    const updec::check::Oracle* oracle = updec::check::find_oracle(pin.oracle);
    if (oracle == nullptr) continue;  // stale pin; tier-1 flags it loudly
    const std::string name =
        std::string("BM_Pinned/") + pin.oracle + "/" + std::to_string(pin.size);
    benchmark::RegisterBenchmark(name.c_str(), run_pinned, oracle, pin);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
