/// bench_sparse_path: dense-LU vs sparse-first (CSR + ILU-Krylov) solve path
/// on the RBF-FD Laplace discretisation (pde::LaplaceFdSolver), plus the
/// tuned-vs-baseline comparison of the raw-speed Krylov hot path.
///
/// For each grid the RBF-FD stencils are assembled ONCE (identical for all
/// arms, so excluded from the timing); the arms then measure exactly what
/// the runtime knobs choose between:
///   * dense -- SparseFirstSolver forced onto the eager path (densify the
///     CSR operator, robust O(N^3) LU) + a batch of solves. Skipped above
///     --dense-cap rows (default 2500): O(N^3) at n ~ 10^4 is minutes of
///     wall clock for a number whose trajectory is already known.
///   * sparse-baseline -- the CSR path pinned to its pre-tuning
///     configuration (fixed GMRES restart 50, serial ILU sweeps, fp64
///     preconditioner): the knob-reachable shape of the PR 5 sparse path.
///   * sparse-tuned -- the CSR path as shipped: size-adaptive GMRES
///     restart and level-scheduled ILU(0) sweeps.
///   * sparse-mixed -- tuned plus the opt-in fp32 preconditioner closure
///     (UPDEC_MIXED_PRECISION=1), recorded so the committed baselines
///     document where mixed precision pays off and where it does not.
/// All arms solve the same boundary-control right-hand sides and the
/// solutions must agree within the solver_equivalence oracle tolerance
/// (1e-6 relative), otherwise the bench fails regardless of the speedup.
///
/// The PR gate is a >= 3x sparse-over-dense speedup at the largest grid
/// where the dense arm runs. MetricsSession dumps BENCH_sparse.json with
/// per-grid timings, tuned-vs-baseline speedups and achieved residuals; the
/// committed bench/baselines/BENCH_sparse.json is one of these dumps.

#include <cmath>
#include <cstdlib>
#include <numbers>
#include <optional>
#include <vector>

#include "bench_common.hpp"
#include "la/robust_solve.hpp"
#include "pde/laplace.hpp"
#include "rbf/kernels.hpp"

namespace {

using namespace updec;

struct ArmResult {
  double seconds = 0.0;   ///< operator build (LU or ILU) + all solves
  double residual = 0.0;  ///< worst-column true residual of the batch
  la::Matrix states;      ///< solved nodal states, one column per control
};

ArmResult run_arm(const la::CsrMatrix& a, const la::Matrix& rhs,
                  std::size_t sparse_min_n, bool mixed, bool level_schedule,
                  bool auto_restart) {
  // Ilu0 reads the level-schedule knob from the environment at factor time;
  // pin it per arm so each arm measures exactly one configuration.
  setenv("UPDEC_ILU_LEVELS", level_schedule ? "1" : "0", 1);
  la::RobustSolveOptions options;
  options.sparse_min_n = sparse_min_n;
  options.mixed_precision = mixed;
  options.auto_restart = auto_restart;
  const Stopwatch watch;
  const la::SparseFirstSolver op(a, options);
  ArmResult arm;
  la::SolveReport report;
  arm.states = op.solve_many(rhs, &report);
  arm.seconds = watch.seconds();
  arm.residual = report.residual_norm;
  report.require_converged("bench_sparse_path solve_many");
  return arm;
}

/// Run an arm `reps` times and keep the fastest repetition: single-shot
/// wall clocks on a shared single-core runner jitter by +-20%, which would
/// drown the few-percent effects the committed baselines track.
ArmResult best_of(std::size_t reps, const la::CsrMatrix& a,
                  const la::Matrix& rhs, std::size_t sparse_min_n, bool mixed,
                  bool level_schedule, bool auto_restart) {
  ArmResult best;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    ArmResult arm =
        run_arm(a, rhs, sparse_min_n, mixed, level_schedule, auto_restart);
    if (rep == 0 || arm.seconds < best.seconds) best = std::move(arm);
  }
  return best;
}

/// Largest relative entrywise difference between two solution batches.
double rel_diff(const la::Matrix& x, const la::Matrix& y) {
  double scale = 1.0, diff = 0.0;
  for (std::size_t i = 0; i < x.rows(); ++i)
    for (std::size_t j = 0; j < x.cols(); ++j) {
      scale = std::max(scale, std::abs(x(i, j)));
      diff = std::max(diff, std::abs(x(i, j) - y(i, j)));
    }
  return diff / scale;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bench::MetricsSession session("sparse", args);

  std::vector<std::size_t> grids = {16, 24, 32};
  if (args.flag("paper-scale")) {
    grids.push_back(48);
    grids.push_back(99);  // (99+1)^2 = 10^4 nodes: the paper-scale target
  }
  if (args.has("grid"))
    grids = {static_cast<std::size_t>(args.get_int("grid", 32))};
  const std::size_t solves =
      static_cast<std::size_t>(args.get_int("solves", 4));
  // The dense arm is O(N^3); past this many rows its wall clock dwarfs the
  // whole bench without changing the (already-gated) trajectory, so skip it.
  const std::size_t dense_cap =
      static_cast<std::size_t>(args.get_int("dense-cap", 2500));
  const std::size_t reps = static_cast<std::size_t>(args.get_int("reps", 3));
  std::cout << "### bench_sparse_path: dense-LU vs CSR+ILU-Krylov "
               "(baseline and tuned) on the RBF-FD Laplace operator, "
            << solves << " solves per arm\n";

  const rbf::PolyharmonicSpline kernel(3);
  rbf::RbffdConfig config;
  config.stencil_size = 21;
  config.poly_degree = 2;

  double gate_speedup = 0.0;
  double worst_rel_diff = 0.0;
  double last_tuned_speedup = 0.0;
  bool all_within_tolerance = true;
  for (const std::size_t grid : grids) {
    // Stencil assembly is shared by all arms and untimed.
    const pde::LaplaceFdSolver discretisation(grid, kernel, config);
    const la::CsrMatrix& a = discretisation.op().matrix();
    const std::size_t n = a.rows();

    // Boundary-control right-hand sides: scaled analytic controls on the
    // top wall, the fixed sin(2 pi x) datum on the bottom.
    la::Matrix rhs(n, solves);
    for (std::size_t i = 0; i < n; ++i) {
      const pc::Node& node = discretisation.cloud().node(i);
      if (node.tag == pc::tags::kBottom)
        for (std::size_t j = 0; j < solves; ++j)
          rhs(i, j) = pde::LaplaceSolver::fixed_boundary_value(node);
    }
    for (std::size_t t = 0; t < discretisation.top_nodes().size(); ++t) {
      const std::size_t row = discretisation.top_nodes()[t];
      const double c =
          pde::LaplaceSolver::analytic_control(discretisation.top_x()[t]);
      for (std::size_t j = 0; j < solves; ++j)
        rhs(row, j) = (0.25 + 0.25 * static_cast<double>(j)) * c;
    }

    // Baseline: the sparse path pinned to its pre-tuning configuration
    // (fixed restart 50, serial ILU sweeps, fp64 preconditioner). Tuned:
    // the shipped defaults (size-adaptive restart, level-scheduled sweeps).
    // Mixed: tuned plus the opt-in fp32 preconditioner closure.
    const ArmResult baseline = best_of(reps, a, rhs, 0, /*mixed=*/false,
                                       /*level_schedule=*/false,
                                       /*auto_restart=*/false);
    const ArmResult tuned = best_of(reps, a, rhs, 0, /*mixed=*/false,
                                    /*level_schedule=*/true,
                                    /*auto_restart=*/true);
    const ArmResult mixed = best_of(reps, a, rhs, 0, /*mixed=*/true,
                                    /*level_schedule=*/true,
                                    /*auto_restart=*/true);
    std::optional<ArmResult> dense;
    if (n <= dense_cap)
      dense = best_of(1, a, rhs, n + 1, /*mixed=*/false,
                      /*level_schedule=*/true, /*auto_restart=*/true);

    double grid_rel_diff = std::max(rel_diff(baseline.states, tuned.states),
                                    rel_diff(mixed.states, tuned.states));
    if (dense)
      grid_rel_diff =
          std::max(grid_rel_diff, rel_diff(dense->states, tuned.states));
    worst_rel_diff = std::max(worst_rel_diff, grid_rel_diff);
    all_within_tolerance = all_within_tolerance && grid_rel_diff <= 1e-6;

    const double tuned_speedup =
        tuned.seconds > 0.0 ? baseline.seconds / tuned.seconds : 0.0;
    last_tuned_speedup = tuned_speedup;
    std::cout << "grid " << grid << " (n=" << n << "): ";
    if (dense) std::cout << "dense " << dense->seconds << " s, ";
    std::cout << "sparse-baseline " << baseline.seconds << " s, sparse-tuned "
              << tuned.seconds << " s, sparse-mixed " << mixed.seconds << " s";
    if (dense) {
      const double speedup =
          tuned.seconds > 0.0 ? dense->seconds / tuned.seconds : 0.0;
      gate_speedup = speedup;  // last grid with a dense arm is the largest
      std::cout << ", dense/tuned " << speedup << "x";
    }
    std::cout << ", tuned " << tuned_speedup << "x over baseline, rel diff "
              << grid_rel_diff << ", residual " << tuned.residual << "\n";

    const std::string prefix = "sparse_bench/n" + std::to_string(n);
    if (dense) {
      metrics::gauge_set((prefix + ".dense_seconds").c_str(), dense->seconds);
      metrics::gauge_set((prefix + ".speedup").c_str(),
                         tuned.seconds > 0.0 ? dense->seconds / tuned.seconds
                                             : 0.0);
    }
    metrics::gauge_set((prefix + ".sparse_seconds").c_str(), tuned.seconds);
    metrics::gauge_set((prefix + ".sparse_baseline_seconds").c_str(),
                       baseline.seconds);
    metrics::gauge_set((prefix + ".mixed_seconds").c_str(), mixed.seconds);
    metrics::gauge_set((prefix + ".tuned_speedup").c_str(), tuned_speedup);
    metrics::gauge_set((prefix + ".rel_diff").c_str(), grid_rel_diff);
    metrics::gauge_set((prefix + ".residual").c_str(), tuned.residual);
    metrics::gauge_set((prefix + ".mixed_residual").c_str(), mixed.residual);
  }

  metrics::gauge_set("sparse_bench/speedup", gate_speedup);
  metrics::gauge_set("sparse_bench/tuned_speedup", last_tuned_speedup);
  metrics::gauge_set("sparse_bench/max_rel_diff", worst_rel_diff);

  if (!all_within_tolerance) {
    std::cerr << "bench_sparse_path: solve paths disagree ("
              << worst_rel_diff << " relative, tolerance 1e-6)\n";
    return 1;
  }
  if (gate_speedup < 3.0) {
    std::cerr << "bench_sparse_path: speedup " << gate_speedup
              << "x at the largest dense-armed grid is below the 3x "
                 "sparse-path gate\n";
    return 1;
  }
  // Anti-regression backstop, not a tuning target: wall-clock noise on a
  // loaded single-core runner is +-20%, so only fail when the tuned path is
  // unambiguously slower than the pinned pre-tuning configuration.
  if (last_tuned_speedup < 0.8) {
    std::cerr << "bench_sparse_path: tuned sparse path is "
              << last_tuned_speedup
              << "x the baseline configuration at the largest grid "
                 "(regression floor 0.8)\n";
    return 1;
  }
  return 0;
}
