/// bench_sparse_path: dense-LU vs sparse-first (CSR + ILU-Krylov) solve path
/// on the RBF-FD Laplace discretisation (pde::LaplaceFdSolver).
///
/// For each grid the RBF-FD stencils are assembled ONCE (identical for both
/// arms, so excluded from the timing); the two arms then measure exactly
/// what the UPDEC_SPARSE_MIN_N threshold chooses between:
///   * dense -- SparseFirstSolver forced onto the eager path (densify the
///     CSR operator, robust O(N^3) LU) + a batch of solves;
///   * sparse -- SparseFirstSolver forced onto the CSR path (ILU(0) build)
///     + the same batch through ILU-GMRES.
/// Both arms solve the same boundary-control right-hand sides and the
/// solutions must agree within the solver_equivalence oracle tolerance
/// (1e-6 relative), otherwise the bench fails regardless of the speedup.
///
/// The PR gate is a >= 3x sparse-over-dense speedup at the largest benched
/// grid. MetricsSession dumps BENCH_sparse.json with per-grid timings; the
/// committed bench/baselines/BENCH_sparse.json is one of these dumps.

#include <cmath>
#include <numbers>
#include <vector>

#include "bench_common.hpp"
#include "la/robust_solve.hpp"
#include "pde/laplace.hpp"
#include "rbf/kernels.hpp"

namespace {

using namespace updec;

struct ArmResult {
  double seconds = 0.0;  ///< operator build (LU or ILU) + all solves
  la::Matrix states;     ///< solved nodal states, one column per control
};

ArmResult run_arm(const la::CsrMatrix& a, const la::Matrix& rhs,
                  std::size_t sparse_min_n) {
  la::RobustSolveOptions options;
  options.sparse_min_n = sparse_min_n;
  const Stopwatch watch;
  const la::SparseFirstSolver op(a, options);
  ArmResult arm;
  la::SolveReport report;
  arm.states = op.solve_many(rhs, &report);
  arm.seconds = watch.seconds();
  report.require_converged("bench_sparse_path solve_many");
  return arm;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bench::MetricsSession session("sparse", args);

  std::vector<std::size_t> grids = {16, 24, 32};
  if (args.flag("paper-scale")) grids.push_back(48);
  if (args.has("grid"))
    grids = {static_cast<std::size_t>(args.get_int("grid", 32))};
  const std::size_t solves =
      static_cast<std::size_t>(args.get_int("solves", 4));
  std::cout << "### bench_sparse_path: dense-LU vs CSR+ILU-Krylov on the "
               "RBF-FD Laplace operator, "
            << solves << " solves per arm\n";

  const rbf::PolyharmonicSpline kernel(3);
  rbf::RbffdConfig config;
  config.stencil_size = 21;
  config.poly_degree = 2;

  double gate_speedup = 0.0;
  double worst_rel_diff = 0.0;
  bool all_within_tolerance = true;
  for (const std::size_t grid : grids) {
    // Stencil assembly is shared by both arms and untimed.
    const pde::LaplaceFdSolver discretisation(grid, kernel, config);
    const la::CsrMatrix& a = discretisation.op().matrix();
    const std::size_t n = a.rows();

    // Boundary-control right-hand sides: scaled analytic controls on the
    // top wall, the fixed sin(2 pi x) datum on the bottom.
    la::Matrix rhs(n, solves);
    for (std::size_t i = 0; i < n; ++i) {
      const pc::Node& node = discretisation.cloud().node(i);
      if (node.tag == pc::tags::kBottom)
        for (std::size_t j = 0; j < solves; ++j)
          rhs(i, j) = pde::LaplaceSolver::fixed_boundary_value(node);
    }
    for (std::size_t t = 0; t < discretisation.top_nodes().size(); ++t) {
      const std::size_t row = discretisation.top_nodes()[t];
      const double c =
          pde::LaplaceSolver::analytic_control(discretisation.top_x()[t]);
      for (std::size_t j = 0; j < solves; ++j)
        rhs(row, j) = (0.25 + 0.25 * static_cast<double>(j)) * c;
    }

    const ArmResult dense = run_arm(a, rhs, n + 1);  // force eager dense LU
    const ArmResult sparse = run_arm(a, rhs, 0);     // force CSR + ILU-Krylov

    double scale = 1.0, diff = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < solves; ++j) {
        scale = std::max(scale, std::abs(dense.states(i, j)));
        diff = std::max(diff,
                        std::abs(dense.states(i, j) - sparse.states(i, j)));
      }
    const double rel_diff = diff / scale;
    worst_rel_diff = std::max(worst_rel_diff, rel_diff);
    all_within_tolerance = all_within_tolerance && rel_diff <= 1e-6;

    const double speedup =
        sparse.seconds > 0.0 ? dense.seconds / sparse.seconds : 0.0;
    gate_speedup = speedup;  // the last grid is the largest
    std::cout << "grid " << grid << " (n=" << n
              << "): dense " << dense.seconds << " s, sparse "
              << sparse.seconds << " s, speedup " << speedup
              << "x, rel diff " << rel_diff << "\n";

    const std::string prefix =
        "sparse_bench/n" + std::to_string(n);
    metrics::gauge_set((prefix + ".dense_seconds").c_str(), dense.seconds);
    metrics::gauge_set((prefix + ".sparse_seconds").c_str(), sparse.seconds);
    metrics::gauge_set((prefix + ".speedup").c_str(), speedup);
    metrics::gauge_set((prefix + ".rel_diff").c_str(), rel_diff);
  }

  metrics::gauge_set("sparse_bench/speedup", gate_speedup);
  metrics::gauge_set("sparse_bench/max_rel_diff", worst_rel_diff);

  if (!all_within_tolerance) {
    std::cerr << "bench_sparse_path: sparse and dense paths disagree ("
              << worst_rel_diff << " relative, tolerance 1e-6)\n";
    return 1;
  }
  if (gate_speedup < 3.0) {
    std::cerr << "bench_sparse_path: speedup " << gate_speedup
              << "x at the largest grid is below the 3x sparse-path gate\n";
    return 1;
  }
  return 0;
}
