// Reproduces Fig. 3c-3e of the paper: the two-step line search over the
// PINN cost weight omega for the Laplace problem. For each omega a
// (u_theta, c_theta) pair is trained on L + omega J (step 1), then a fresh
// solution network is retrained physics-only under the frozen control
// (step 2); the pair with the lowest cost wins. The paper explored 11
// omegas from 1e-3 to 1e7 and settled on omega* = 1e-1.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "control/laplace_problem.hpp"
#include "control/omega_search.hpp"

int main(int argc, char** argv) {
  using namespace updec;
  const CliArgs args(argc, argv);
  const bench::MetricsSession metrics_session("fig3_pinn_linesearch", args);
  const bench::Scale scale = bench::Scale::from_args(args);
  scale.print("Fig. 3c-e: PINN omega line search (Laplace)");
  SeriesWriter writer = bench::make_writer(args);

  // Omega ladder: powers of ten starting at 1e-3 (the paper's range).
  std::vector<double> omegas;
  for (std::size_t k = 0; k < scale.omega_count; ++k)
    omegas.push_back(std::pow(10.0, -3.0 + static_cast<double>(k)));

  control::PinnConfig base;
  base.u_hidden = {30, 30, 30};
  base.epochs = std::max<std::size_t>(100, scale.pinn_epochs / 4);
  base.learning_rate = 1e-3;
  base.seed = 3;

  const rbf::PolyharmonicSpline kernel(3);
  auto problem = std::make_shared<control::LaplaceControlProblem>(
      scale.laplace_grid, kernel);
  const std::vector<double> xs = problem->solver().control_x();

  const auto result = control::laplace_omega_search(
      base, omegas, xs,
      [&](const la::Vector& c) { return problem->cost(c); });

  TextTable table("omega line search (step-1 joint training, step-2 "
                  "physics-only retrain)");
  table.set_header({"omega", "step-1 J (network)", "step-2 J (network)",
                    "step-2 PDE residual", "J via RBF solver"});
  Series s_cost, s_residual;
  s_cost.name = "fig3_omega_vs_cost";
  s_cost.x_label = "log10(omega)";
  s_cost.y_label = "step-2 J";
  s_residual.name = "fig3_omega_vs_residual";
  s_residual.x_label = "log10(omega)";
  s_residual.y_label = "step-2 PDE residual";
  for (const auto& entry : result.entries) {
    table.add_row({TextTable::sci(entry.omega, 0),
                   TextTable::sci(entry.step1_network_cost),
                   TextTable::sci(entry.step2_network_cost),
                   TextTable::sci(entry.step2_pde_residual),
                   TextTable::sci(entry.reference_cost)});
    s_cost.x.push_back(std::log10(entry.omega));
    s_cost.y.push_back(entry.step2_network_cost);
    s_residual.x.push_back(std::log10(entry.omega));
    s_residual.y.push_back(entry.step2_pde_residual);
  }
  table.print(std::cout);
  writer.add(std::move(s_cost));
  writer.add(std::move(s_residual));

  std::cout << "selected omega* = " << result.best_omega
            << " (paper: omega* = 1e-1). Expected shape: tiny omegas ignore "
               "J; huge omegas break the physics fit; the balance sits in "
               "between.\n";
  writer.flush();
  return 0;
}
