// Kernel-choice ablation (section 3): the paper picks the polyharmonic
// cubic r^3 with degree-1 monomials to avoid shape-parameter tuning.
// Compare kernels and augmentation degrees on the Laplace solve: accuracy
// against the analytic solution and collocation conditioning.

#include <cmath>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "pde/laplace.hpp"

int main(int argc, char** argv) {
  using namespace updec;
  const CliArgs args(argc, argv);
  const bench::MetricsSession metrics_session("ablation_rbf_kernels", args);
  const bench::Scale scale = bench::Scale::from_args(args);
  scale.print("Ablation: RBF kernel and augmentation degree (Laplace)");

  const auto grid = std::min<std::size_t>(scale.laplace_grid, 24);

  struct Candidate {
    std::string label;
    std::unique_ptr<rbf::Kernel> kernel;
    int degree;
  };
  std::vector<Candidate> candidates;
  candidates.push_back({"phs3, n=1 (paper)",
                        std::make_unique<rbf::PolyharmonicSpline>(3), 1});
  candidates.push_back({"phs3, n=2",
                        std::make_unique<rbf::PolyharmonicSpline>(3), 2});
  candidates.push_back({"phs5, n=1",
                        std::make_unique<rbf::PolyharmonicSpline>(5), 1});
  candidates.push_back({"phs5, n=2",
                        std::make_unique<rbf::PolyharmonicSpline>(5), 2});
  candidates.push_back({"gaussian eps=4",
                        std::make_unique<rbf::GaussianKernel>(4.0), 1});
  candidates.push_back({"multiquadric eps=3",
                        std::make_unique<rbf::MultiquadricKernel>(3.0), 1});

  TextTable table("Laplace state accuracy under the analytic control");
  table.set_header({"kernel", "state max-error", "cond. estimate"});
  for (const auto& candidate : candidates) {
    const pde::LaplaceSolver solver(grid, *candidate.kernel,
                                    candidate.degree);
    la::Vector control(solver.num_control());
    const auto xs = solver.control_x();
    for (std::size_t i = 0; i < control.size(); ++i)
      control[i] = pde::LaplaceSolver::analytic_control(xs[i]);
    const la::Vector u = solver.state_at_nodes(solver.solve(control));
    double max_err = 0.0;
    for (std::size_t i = 0; i < solver.cloud().size(); ++i) {
      const auto p = solver.cloud().node(i).pos;
      max_err = std::max(
          max_err,
          std::abs(u[i] - pde::LaplaceSolver::analytic_state(p.x, p.y)));
    }
    table.add_row({candidate.label, TextTable::sci(max_err),
                   TextTable::sci(solver.collocation().condition_estimate())});
  }
  table.print(std::cout);
  std::cout << "expected shape: the paper's phs3/n=1 is accurate without any "
               "shape parameter; shaped kernels can beat it only when eps is "
               "tuned, and conditioning degrades as kernels flatten.\n";
  return 0;
}
