// Memory-vs-refinements ablation (section 4): "DP as conceived in this
// study can be memory inefficient due to storage ... the computational
// complexity scales super-linearly with the number of refinement steps k."
// Measure the DP tape size, process peak RSS and gradient wall-clock as a
// function of k.

#include <iostream>

#include "autodiff/ops.hpp"
#include "bench_common.hpp"
#include "la/blas.hpp"
#include "control/channel_problem.hpp"
#include "pde/channel_flow.hpp"

int main(int argc, char** argv) {
  using namespace updec;
  const CliArgs args(argc, argv);
  const bench::MetricsSession metrics_session("ablation_memory_vs_k", args);
  const bench::Scale scale = bench::Scale::from_args(args);
  scale.print("Ablation: DP cost vs refinements k (tape memory, time)");
  SeriesWriter writer = bench::make_writer(args);

  const rbf::PolyharmonicSpline kernel(3);
  pc::ChannelSpec spec;
  spec.target_nodes = std::min<std::size_t>(scale.channel_nodes, 350);
  const pc::PointCloud cloud = pc::channel_cloud(spec);

  TextTable table("DP gradient cost per evaluation vs refinements k");
  table.set_header({"k", "pseudo-time steps", "tape nodes", "tape MiB",
                    "peak RSS MiB", "forward+reverse (s)"});
  Series mem_series;
  mem_series.name = "memory_vs_k";
  mem_series.x_label = "k";
  mem_series.y_label = "tape MiB";

  for (const std::size_t k : {1ul, 2ul, 4ul, 8ul}) {
    pde::ChannelFlowConfig config;
    config.reynolds = 50.0;
    config.refinements = k;
    config.steps_per_refinement = 100;
    config.steady_tol = 0.0;  // force the full rollout for fair scaling
    const pde::ChannelFlowSolver solver(cloud, kernel, config, spec);
    const la::Vector inflow = solver.parabolic_inflow();

    ad::Tape tape;
    const Stopwatch watch;
    const ad::VarVec c = ad::make_variables(tape, inflow);
    const pde::FlowAd flow = solver.solve(tape, c);
    ad::Var j = ad::dot(flow.u, flow.u);  // any scalar output
    tape.backward(j);
    const double seconds = watch.seconds();

    table.add_row({std::to_string(k), std::to_string(flow.steps_taken),
                   std::to_string(tape.size()),
                   TextTable::num(to_mib(tape.memory_bytes()), 4),
                   TextTable::num(to_mib(peak_rss_bytes()), 4),
                   TextTable::num(seconds, 3)});
    mem_series.x.push_back(static_cast<double>(k));
    mem_series.y.push_back(to_mib(tape.memory_bytes()));

    // The memory remedy: tape only the last refinement (gradient becomes
    // approximate, memory stops growing with k).
    ad::Tape tape2;
    const ad::VarVec c2 = ad::make_variables(tape2, inflow);
    const la::Vector g_full = ad::adjoints(c);
    const pde::FlowAd flow2 = solver.solve_last_refinement(tape2, c2);
    ad::Var j2 = ad::dot(flow2.u, flow2.u);
    tape2.backward(j2);
    const la::Vector g_trunc = ad::adjoints(c2);
    const double cos_g =
        la::dot(g_full, g_trunc) /
        (la::nrm2(g_full) * la::nrm2(g_trunc) + 1e-300);
    table.add_row({std::to_string(k) + " (truncated)",
                   std::to_string(flow2.steps_taken),
                   std::to_string(tape2.size()),
                   TextTable::num(to_mib(tape2.memory_bytes()), 4),
                   "-", "grad cos vs full: " + TextTable::num(cos_g, 3)});
  }
  table.print(std::cout);
  writer.add(std::move(mem_series));
  std::cout << "expected shape: tape nodes and memory grow linearly in the "
               "total step count, i.e. linearly in k for fixed steps per "
               "refinement -- with early-exit disabled; with steady-state "
               "early exits the paper's super-linear time-vs-k behaviour "
               "appears because later refinements converge slower.\n";
  writer.flush();
  return 0;
}
