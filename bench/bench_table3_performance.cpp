// Reproduces Table 3 of the paper: time, peak memory, iteration counts and
// final costs for {DAL, PINN, DP} x {Laplace, Navier-Stokes}. Absolute
// numbers depend on scale and hardware (the paper used a 16-core Ryzen and
// an RTX 3090 for hours); the reproduced quantity is the *shape*: relative
// cost ordering per problem, PINN paying in wall-clock, DP paying in memory
// (tape bytes reported alongside the process peak).

#include <iostream>

#include "bench_common.hpp"
#include "control/channel_problem.hpp"
#include "control/driver.hpp"
#include "control/laplace_problem.hpp"
#include "control/pinn_channel.hpp"
#include "control/pinn_laplace.hpp"
#include "la/blas.hpp"

namespace {

struct Row {
  std::string problem, method;
  double seconds = 0.0;
  double peak_mib = 0.0;    // process VmHWM (monotone across rows)
  double scratch_mib = 0.0; // method-specific scratch (DP/PINN tape)
  std::size_t iterations = 0;
  double final_cost = 0.0;
  std::string paper;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace updec;
  const CliArgs args(argc, argv);
  const bench::MetricsSession metrics_session("table3_performance", args);
  const bench::Scale scale = bench::Scale::from_args(args);
  scale.print("Table 3: performance comparison (time / memory / final J)");

  std::vector<Row> rows;
  const rbf::PolyharmonicSpline kernel(3);

  // ---- Laplace ----
  {
    auto problem = std::make_shared<control::LaplaceControlProblem>(
        scale.laplace_grid, kernel);
    control::DriverOptions adam;
    adam.iterations = scale.laplace_iters;
    adam.initial_learning_rate = 1e-2;

    auto dal = control::make_laplace_dal(problem);
    const auto r_dal = control::optimize(*problem, *dal, adam);
    rows.push_back({"Laplace", "DAL", r_dal.seconds,
                    to_mib(r_dal.peak_rss_bytes),
                    to_mib(dal->scratch_bytes()), r_dal.iterations,
                    r_dal.final_cost, "3.3 h / 33.6 GB / 500 it / 4.6e-3"});

    control::PinnConfig pinn_config;
    pinn_config.u_hidden = {30, 30, 30};
    pinn_config.epochs = scale.pinn_epochs;
    pinn_config.learning_rate = 1e-3;
    pinn_config.omega = 0.1;
    pinn_config.seed = 1;
    control::LaplacePinn pinn(pinn_config);
    const Stopwatch watch;
    pinn.train();
    const double seconds = watch.seconds();
    const la::Vector c = pinn.control_at(problem->solver().control_x());
    rows.push_back({"Laplace", "PINN", seconds, to_mib(peak_rss_bytes()),
                    to_mib(pinn.scratch_bytes()), pinn_config.epochs,
                    problem->cost(c), "7.3 h* / 5.0 GB / 20k ep / 1.6e-2"});

    auto dp = control::make_laplace_dp(problem);
    const auto r_dp = control::optimize(*problem, *dp, adam);
    rows.push_back({"Laplace", "DP", r_dp.seconds,
                    to_mib(r_dp.peak_rss_bytes),
                    to_mib(dp->scratch_bytes()), r_dp.iterations,
                    r_dp.final_cost, "1.65 h / 20.2 GB / 500 it / 2.2e-9"});
  }

  // ---- Navier-Stokes ----
  {
    pc::ChannelSpec spec;
    spec.target_nodes = scale.channel_nodes;
    pde::ChannelFlowConfig config;
    config.reynolds = args.get_double("re", 100.0);
    config.steps_per_refinement = 150;
    control::DriverOptions adam;
    adam.iterations = scale.channel_iters;
    adam.initial_learning_rate = 1e-1;

    config.refinements = 3;  // paper: k = 3 for DAL
    auto problem_dal = std::make_shared<control::ChannelFlowControlProblem>(
        spec, kernel, config);
    auto dal = control::make_channel_dal(problem_dal);
    const auto r_dal = control::optimize(*problem_dal, *dal, adam);
    rows.push_back({"Navier-Stokes", "DAL", r_dal.seconds,
                    to_mib(r_dal.peak_rss_bytes),
                    to_mib(dal->scratch_bytes()), r_dal.iterations,
                    r_dal.final_cost,
                    "1.5 h / 8.1 GB / 350 it (k=3) / 8.2e-2"});

    control::PinnConfig pinn_config;
    pinn_config.u_hidden = scale.paper
                               ? std::vector<std::size_t>{50, 50, 50, 50, 50}
                               : std::vector<std::size_t>{30, 30};
    pinn_config.epochs = scale.pinn_epochs;
    pinn_config.batch_interior = 48;
    pinn_config.learning_rate = 1e-3;
    pinn_config.omega = 1.0;
    pinn_config.seed = 2;
    control::ChannelPinn pinn(pinn_config, spec, config.reynolds,
                              config.patch_velocity);
    const Stopwatch watch;
    pinn.train();
    const double seconds = watch.seconds();
    std::vector<double> inlet_y(problem_dal->solver().inlet_y());
    const la::Vector c = pinn.control_at(inlet_y);
    rows.push_back({"Navier-Stokes", "PINN", seconds,
                    to_mib(peak_rss_bytes()), to_mib(pinn.scratch_bytes()),
                    pinn_config.epochs, problem_dal->cost(c),
                    "26.8 h* / 1.3 GB / 100k ep / 1.0e-3"});

    config.refinements = scale.paper ? 10 : 3;  // paper: k = 10 for DP
    auto problem_dp = std::make_shared<control::ChannelFlowControlProblem>(
        spec, kernel, config);
    auto dp = control::make_channel_dp(problem_dp);
    const auto r_dp = control::optimize(*problem_dp, *dp, adam);
    rows.push_back({"Navier-Stokes", "DP", r_dp.seconds,
                    to_mib(r_dp.peak_rss_bytes),
                    to_mib(dp->scratch_bytes()), r_dp.iterations,
                    r_dp.final_cost,
                    "3.8 h / 45.3 GB / 350 it (k=10) / 2.6e-4"});
  }

  TextTable table("Table 3 (measured at this scale vs paper at full scale)");
  table.set_header({"problem", "method", "time (s)", "peak RSS (MiB)",
                    "tape (MiB)", "iters/epochs", "final J",
                    "paper (full scale)"});
  for (const Row& row : rows)
    table.add_row({row.problem, row.method, TextTable::num(row.seconds, 4),
                   TextTable::num(row.peak_mib, 4),
                   TextTable::num(row.scratch_mib, 4),
                   std::to_string(row.iterations),
                   TextTable::sci(row.final_cost), row.paper});
  table.print(std::cout);
  std::cout
      << "shape checks: (1) DP lowest J on both problems; (2) DAL worst on "
         "Navier-Stokes at Re=100; (3) PINN pays in wall-clock per unit of "
         "J; (4) DP's tape makes it the memory-hungry method (see the "
         "memory-vs-k ablation bench for the superlinear growth in k).\n";
  return 0;
}
