// Reproduces Fig. 1, Fig. 4 and Table 2 of the paper: the Navier-Stokes
// channel inflow-control problem solved with DAL, PINN and DP.
//
//  * Fig. 4a -- setup dump: cloud inventory, boundary segments, patches.
//  * Fig. 4b -- cost histories per method (DAL fails at Re = 100).
//  * Fig. 4c -- inflow control profiles.
//  * Fig. 4d / Fig. 1 -- outflow u-velocity vs the parabolic target.
//  * Table 2 -- hyper-parameter echo.
//
// Defaults run in a few minutes; --paper-scale selects 1385 nodes, 350
// iterations, k = 3 (DAL) / 10 (DP) and larger PINN budgets.

#include <iostream>

#include "bench_common.hpp"
#include "control/channel_problem.hpp"
#include "control/driver.hpp"
#include "control/pinn_channel.hpp"
#include "la/blas.hpp"
#include "optim/lbfgs.hpp"

int main(int argc, char** argv) {
  using namespace updec;
  const CliArgs args(argc, argv);
  const bench::MetricsSession metrics_session("fig1_fig4_navier_stokes", args);
  const bench::Scale scale = bench::Scale::from_args(args);
  scale.print(
      "Fig. 1 / Fig. 4 / Table 2: Navier-Stokes channel inflow control");
  SeriesWriter writer = bench::make_writer(args);

  const double reynolds = args.get_double("re", 100.0);
  const std::size_t dal_k = static_cast<std::size_t>(args.get_int("dal-k", 3));
  const std::size_t dp_k =
      static_cast<std::size_t>(args.get_int("dp-k", scale.paper ? 10 : 3));

  // ---- Table 2 echo ----
  TextTable table2("Table 2: Navier-Stokes hyper-parameters");
  table2.set_header({"hyper-parameter", "DAL", "PINN", "DP"});
  table2.add_row({"init. learning rate", "1e-1", "1e-3", "1e-1"});
  table2.add_row({"network architecture", "-",
                  scale.paper ? "5x50" : "2x30 (reduced)", "-"});
  table2.add_row({"epochs", "-", std::to_string(scale.pinn_epochs), "-"});
  table2.add_row({"iterations", std::to_string(scale.channel_iters), "-",
                  std::to_string(scale.channel_iters)});
  table2.add_row({"refinements k", std::to_string(dal_k), "-",
                  std::to_string(dp_k)});
  table2.add_row({"point cloud size (target)",
                  std::to_string(scale.channel_nodes),
                  std::to_string(scale.channel_nodes),
                  std::to_string(scale.channel_nodes)});
  table2.add_row({"max. polynomial degree n", "1", "-", "1"});
  table2.add_row({"Reynolds number", TextTable::num(reynolds, 4),
                  TextTable::num(reynolds, 4), TextTable::num(reynolds, 4)});
  table2.print(std::cout);

  // ---- problems (one per k; both share geometry) ----
  pc::ChannelSpec spec;
  spec.target_nodes = scale.channel_nodes;
  const rbf::PolyharmonicSpline kernel(3);
  pde::ChannelFlowConfig config;
  config.reynolds = reynolds;
  config.steps_per_refinement = scale.paper ? 200 : 150;

  config.refinements = dal_k;
  auto problem_dal = std::make_shared<control::ChannelFlowControlProblem>(
      spec, kernel, config);
  config.refinements = dp_k;
  auto problem_dp = std::make_shared<control::ChannelFlowControlProblem>(
      spec, kernel, config);

  // Fig. 4a: the setup.
  std::cout << "# Fig. 4a setup: " << problem_dp->cloud().summary() << "\n"
            << "#   channel " << spec.lx << " x " << spec.ly
            << ", blowing patch x in [" << spec.blow_start << ", "
            << spec.blow_end << "] (bottom), suction patch x in ["
            << spec.suction_start << ", " << spec.suction_end << "] (top)\n";

  control::DriverOptions adam;
  adam.iterations = scale.channel_iters;
  // Paper: 1e-1 over 350 iterations; the reduced budget needs gentler steps.
  adam.initial_learning_rate = scale.paper ? 1e-1 : 5e-2;

  // ---- DAL (k = 3) ----
  auto dal = control::make_channel_dal(problem_dal);
  const auto r_dal = control::optimize(*problem_dal, *dal, adam);
  // ---- DP (k = 10 at paper scale) ----
  auto dp = control::make_channel_dp(problem_dp);
  const auto r_dp = control::optimize(*problem_dp, *dp, adam);
  // ---- DP + L-BFGS: how low the exact discrete gradient can drive J ----
  optim::LbfgsOptions lbfgs_options;
  lbfgs_options.max_iterations = scale.channel_iters;
  const auto r_lbfgs = optim::lbfgs_minimize(
      [&](const la::Vector& c, la::Vector& g) {
        return dp->value_and_gradient(c, g);
      },
      problem_dp->initial_control(), lbfgs_options);

  // ---- PINN ----
  control::PinnConfig pinn_config;
  pinn_config.u_hidden = scale.paper
                             ? std::vector<std::size_t>{50, 50, 50, 50, 50}
                             : std::vector<std::size_t>{30, 30};
  pinn_config.epochs = scale.pinn_epochs;
  pinn_config.batch_interior = 48;
  pinn_config.learning_rate = 1e-3;
  pinn_config.omega = 1.0;  // omega* of the paper's NS line search
  pinn_config.seed = 2;
  control::ChannelPinn pinn(pinn_config, spec, reynolds,
                            config.patch_velocity);
  const Stopwatch pinn_watch;
  pinn.train();
  const double pinn_seconds = pinn_watch.seconds();

  const auto& solver = problem_dp->solver();
  std::vector<double> inlet_y(solver.inlet_y());
  std::vector<double> outlet_y(solver.outlet_y());
  const la::Vector c_pinn = pinn.control_at(inlet_y);
  const double j_pinn_rbf = problem_dp->cost(c_pinn);

  // ---- Fig. 4b: cost histories ----
  writer.add("fig4b_cost_history_dal", r_dal.cost_history, "iteration", "J");
  writer.add("fig4b_cost_history_dp", r_dp.cost_history, "iteration", "J");
  writer.add("fig4b_cost_history_pinn", pinn.history().cost_term, "epoch",
             "J(network)");

  // ---- Fig. 4c: inflow controls ----
  const auto add_series = [&](const std::string& name,
                              const std::vector<double>& x,
                              const la::Vector& y, const char* ylabel) {
    Series s;
    s.name = name;
    s.x_label = "y";
    s.y_label = ylabel;
    s.x = x;
    s.y = y.std();
    writer.add(std::move(s));
  };
  add_series("fig4c_inflow_initial", inlet_y, problem_dp->initial_control(),
             "u(0,y)");
  add_series("fig4c_inflow_dal", inlet_y, r_dal.control, "u(0,y)");
  add_series("fig4c_inflow_dp", inlet_y, r_dp.control, "u(0,y)");
  add_series("fig4c_inflow_dp_lbfgs", inlet_y, r_lbfgs.x, "u(0,y)");
  add_series("fig4c_inflow_pinn", inlet_y, c_pinn, "u(0,y)");

  // ---- Fig. 4d / Fig. 1: outflow profiles ----
  la::Vector target(outlet_y.size());
  for (std::size_t q = 0; q < outlet_y.size(); ++q)
    target[q] = solver.target_outflow(outlet_y[q]);
  add_series("fig4d_outflow_target", outlet_y, target, "u(Lx,y)");
  add_series("fig4d_outflow_uncontrolled", outlet_y,
             problem_dp->outflow_profile(problem_dp->initial_control()),
             "u(Lx,y)");
  add_series("fig4d_outflow_dal", outlet_y,
             problem_dal->outflow_profile(r_dal.control), "u(Lx,y)");
  add_series("fig4d_outflow_dp", outlet_y,
             problem_dp->outflow_profile(r_dp.control), "u(Lx,y)");
  add_series("fig4d_outflow_dp_lbfgs", outlet_y,
             problem_dp->outflow_profile(r_lbfgs.x), "u(Lx,y)");
  add_series("fig4d_outflow_pinn", outlet_y,
             problem_dp->outflow_profile(c_pinn), "u(Lx,y)");
  add_series("fig1_outflow_pinn_network", outlet_y, pinn.outflow_at(outlet_y),
             "u(Lx,y) (network)");

  // ---- summary ----
  TextTable summary("Fig. 4 summary: final costs (J via the RBF solver)");
  summary.set_header({"method", "final J", "seconds", "note"});
  summary.add_row({"DAL", TextTable::sci(r_dal.final_cost),
                   TextTable::num(r_dal.seconds, 3),
                   reynolds >= 50 ? "expected to fail at Re=100 (sec. 3.2)"
                                  : "low-Re regime"});
  summary.add_row({"PINN", TextTable::sci(j_pinn_rbf),
                   TextTable::num(pinn_seconds, 3),
                   "network control, J checked on the RBF solver"});
  summary.add_row({"DP", TextTable::sci(r_dp.final_cost),
                   TextTable::num(r_dp.seconds, 3), "k = " +
                       std::to_string(dp_k)});
  summary.add_row({"DP+L-BFGS", TextTable::sci(r_lbfgs.value), "-",
                   "exact gradients let quasi-Newton reach the discrete "
                   "optimum"});
  summary.print(std::cout);
  std::cout << "paper (Table 3): DAL 8.2e-2, PINN 1.0e-3, DP 2.6e-4 -- "
               "expected ordering: DP < PINN << DAL at Re = 100.\n";

  writer.flush();
  return 0;
}
