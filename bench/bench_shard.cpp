/// bench_shard: multi-process shard-pool throughput and resilience bench.
///
/// Builds a 1000-scenario Laplace DAL manifest spread over eight grid
/// families and pushes it through four arms:
///   * reference -- sequential in-process run_scenario with a private cache
///     (the ground truth every sharded arm must reproduce BITWISE);
///   * 1 shard   -- the whole batch through one forked worker;
///   * 4 shards  -- the same batch fanned across four workers with work
///     stealing (the throughput arm);
///   * chaos     -- 4 shards with `serve.shard_kill` armed so workers are
///     SIGKILLed mid-batch; crash resubmission must absorb every loss.
/// A final warm-restart arm runs two consecutive 4-shard pools against a
/// shared UPDEC_CACHE_DIR and checks that the second pool's workers answer
/// their operator probes from the persistent tier.
///
/// Gates (non-zero exit on violation):
///   * every non-chaos job succeeds and matches the reference bitwise;
///   * chaos arm: failed == 0 and at least one worker restart observed;
///   * 4-shard speedup over 1 shard >= 2.5x -- enforced only when the
///     machine actually has >= 4 hardware threads (a 1-core container
///     cannot parallelise CPU-bound work; CI runners enforce it);
///   * warm-restart disk-hit ratio >= 0.8.

#include <sys/stat.h>

#include <cstdlib>
#include <filesystem>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "serve/cache.hpp"
#include "serve/scheduler.hpp"
#include "serve/shard.hpp"
#include "util/faultinject.hpp"

namespace {

using namespace updec;

std::vector<serve::Scenario> build_manifest(std::size_t jobs,
                                            std::size_t iters) {
  // Eight grid families: distinct fingerprints, so a 4-shard pool gets a
  // non-trivial routing spread and the steal path real work to move.
  std::vector<serve::Scenario> scenarios;
  scenarios.reserve(jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    serve::Scenario sc;
    sc.id = "shard-" + std::to_string(i);
    sc.problem = serve::ProblemKind::kLaplace;
    sc.strategy = serve::Strategy::kDal;
    sc.grid_n = 10 + i % 8;
    sc.iterations = iters;
    sc.learning_rate = 1e-2;
    sc.seed = i + 1;
    sc.control_jitter = 0.02;
    scenarios.push_back(std::move(sc));
  }
  return scenarios;
}

struct ArmResult {
  double seconds = 0.0;
  std::size_t succeeded = 0;
  std::size_t failed = 0;
  std::size_t restarts = 0;
  std::size_t mismatches = 0;
  serve::OperatorCache::Stats cache;
};

ArmResult run_arm(const std::vector<serve::Scenario>& scenarios,
                  std::size_t shards,
                  const std::vector<serve::JobReport>* reference,
                  std::size_t max_retries) {
  serve::SchedulerOptions options;
  options.shards = shards;
  serve::RetryPolicy retry;
  retry.max_retries = max_retries;
  options.retry = retry;

  ArmResult arm;
  const Stopwatch watch;
  serve::Scheduler scheduler(options);
  std::vector<serve::Scheduler::JobId> ids;
  ids.reserve(scenarios.size());
  for (const serve::Scenario& sc : scenarios)
    ids.push_back(scheduler.submit(sc));
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const serve::JobReport report = scheduler.wait(ids[i]);
    if (report.status == serve::JobStatus::kSucceeded) {
      ++arm.succeeded;
      if (reference != nullptr &&
          (report.final_cost != (*reference)[i].final_cost ||
           report.iterations != (*reference)[i].iterations ||
           report.cost_history != (*reference)[i].cost_history))
        ++arm.mismatches;
    } else {
      ++arm.failed;
      std::cerr << "  job " << scenarios[i].id << " "
                << serve::to_string(report.status) << ": " << report.error
                << "\n";
    }
  }
  arm.seconds = watch.seconds();
  arm.cache = scheduler.cache_stats();
  if (scheduler.shards() != nullptr)
    arm.restarts = scheduler.shards()->restarts();
  return arm;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bench::MetricsSession session("shard", args);

  const std::size_t jobs = static_cast<std::size_t>(
      args.get_int("jobs", args.flag("paper-scale") ? 2000 : 1000));
  const std::size_t iters =
      static_cast<std::size_t>(args.get_int("iters", 3));
  const std::size_t hw = std::thread::hardware_concurrency();
  std::cout << "### bench_shard: " << jobs << " Laplace DAL jobs over 8 grid "
            << "families, " << iters << " iters each, " << hw
            << " hardware thread(s)\n";

  const std::vector<serve::Scenario> scenarios = build_manifest(jobs, iters);

  // Reference: plain in-process sequential run with a private cache. The
  // parent process never touches the global cache, so the forked arms below
  // always start their workers cold.
  serve::OperatorCache reference_cache(std::size_t{512} << 20, "");
  std::vector<serve::JobReport> reference;
  reference.reserve(jobs);
  const Stopwatch ref_watch;
  for (const serve::Scenario& sc : scenarios)
    reference.push_back(serve::run_scenario(sc, reference_cache));
  const double ref_seconds = ref_watch.seconds();
  std::size_t ref_ok = 0;
  for (const serve::JobReport& r : reference) ref_ok += r.ok();
  std::cout << "reference (in-process, sequential): " << ref_seconds << " s, "
            << ref_ok << "/" << jobs << " succeeded\n";

  // Throughput arms: identical batch through 1 and 4 forked workers.
  const ArmResult one = run_arm(scenarios, 1, &reference, 0);
  std::cout << "1 shard:  " << one.seconds << " s, " << one.succeeded << "/"
            << jobs << " succeeded, " << one.mismatches << " mismatch(es)\n";
  const ArmResult four = run_arm(scenarios, 4, &reference, 0);
  std::cout << "4 shards: " << four.seconds << " s, " << four.succeeded << "/"
            << jobs << " succeeded, " << four.mismatches << " mismatch(es)\n";
  const double speedup =
      four.seconds > 0.0 ? one.seconds / four.seconds : 0.0;
  std::cout << "speedup (1-shard/4-shard): " << speedup << "x\n";

  // Chaos arm: SIGKILL three workers mid-batch; resubmission must recover
  // every lost job and the replayed results must still be bitwise right.
  fault::arm("serve.shard_kill", 3);
  const ArmResult chaos = run_arm(scenarios, 4, &reference, 3);
  fault::disarm_all();
  std::cout << "chaos (3x SIGKILL, retries 3): " << chaos.seconds << " s, "
            << chaos.succeeded << "/" << jobs << " succeeded, "
            << chaos.restarts << " restart(s), " << chaos.mismatches
            << " mismatch(es)\n";

  // Warm-restart arm: two consecutive 4-shard pools share a persistent
  // cache directory (inherited by the workers at fork); the second pool
  // must answer its operator probes from disk instead of refactoring.
  const std::string cache_dir =
      args.get("cache-dir", "/tmp/updec_bench_shard_cache");
  std::filesystem::remove_all(cache_dir);
  ::setenv("UPDEC_CACHE_DIR", cache_dir.c_str(), 1);
  (void)run_arm(scenarios, 4, nullptr, 0);  // populate the disk tier
  const ArmResult warm = run_arm(scenarios, 4, nullptr, 0);
  ::unsetenv("UPDEC_CACHE_DIR");
  std::filesystem::remove_all(cache_dir);
  const std::uint64_t probes = warm.cache.disk.hits + warm.cache.disk.misses;
  const double disk_ratio =
      probes > 0 ? static_cast<double>(warm.cache.disk.hits) /
                       static_cast<double>(probes)
                 : 0.0;
  std::cout << "warm restart: " << warm.cache.disk.hits << "/" << probes
            << " disk probes hit (ratio " << disk_ratio << ")\n";

  metrics::gauge_set("shard_bench/jobs", static_cast<double>(jobs));
  metrics::gauge_set("shard_bench/hw_threads", static_cast<double>(hw));
  metrics::gauge_set("shard_bench/ref_seconds", ref_seconds);
  metrics::gauge_set("shard_bench/one_shard_seconds", one.seconds);
  metrics::gauge_set("shard_bench/four_shard_seconds", four.seconds);
  metrics::gauge_set("shard_bench/speedup", speedup);
  metrics::gauge_set("shard_bench/chaos_restarts",
                     static_cast<double>(chaos.restarts));
  metrics::gauge_set("shard_bench/warm_disk_hit_ratio", disk_ratio);

  bool ok = true;
  if (ref_ok != jobs || one.succeeded != jobs || four.succeeded != jobs ||
      warm.succeeded != jobs) {
    std::cerr << "bench_shard: jobs failed outside the chaos arm\n";
    ok = false;
  }
  if (one.mismatches + four.mismatches + chaos.mismatches > 0) {
    std::cerr << "bench_shard: sharded costs diverged from the in-process "
                 "reference (must be bitwise equal)\n";
    ok = false;
  }
  if (chaos.failed != 0) {
    std::cerr << "bench_shard: chaos arm lost " << chaos.failed
              << " job(s); resubmission must absorb worker kills\n";
    ok = false;
  }
  if (chaos.restarts == 0) {
    std::cerr << "bench_shard: chaos arm observed no worker restart -- the "
                 "kill site never fired\n";
    ok = false;
  }
  if (hw >= 4) {
    if (speedup < 2.5) {
      std::cerr << "bench_shard: speedup " << speedup
                << "x is below the 2.5x sharding gate\n";
      ok = false;
    }
  } else {
    std::cout << "note: " << hw << " hardware thread(s) < 4; the 2.5x "
              << "speedup gate is advisory on this machine (CI enforces it)"
              << "\n";
  }
  if (disk_ratio < 0.8) {
    std::cerr << "bench_shard: warm-restart disk-hit ratio " << disk_ratio
              << " is below the 0.8 gate\n";
    ok = false;
  }
  return ok ? 0 : 1;
}
