// Reproduces Fig. 3 and Table 1 of the paper: the Laplace optimal-control
// problem solved with DAL, PINN, and DP.
//
//  * Table 1        -- hyper-parameter echo, row for row.
//  * Fig. 3a        -- optimal controls per method vs the analytic minimiser
//                      (series control_profile_*).
//  * Fig. 3b        -- cost histories (series cost_history_*).
//  * Fig. 3f/3g     -- state error of the optimised solutions.
//
// Defaults run in ~1 minute; --paper-scale selects the 100x100 grid, 500
// iterations and 20k PINN epochs of the paper.

#include <iostream>

#include "bench_common.hpp"
#include "control/driver.hpp"
#include "control/laplace_problem.hpp"
#include "control/pinn_laplace.hpp"
#include "la/blas.hpp"
#include "optim/lbfgs.hpp"

int main(int argc, char** argv) {
  using namespace updec;
  const CliArgs args(argc, argv);
  const bench::MetricsSession metrics_session("fig3_laplace", args);
  const bench::Scale scale = bench::Scale::from_args(args);
  scale.print("Fig. 3 / Table 1: Laplace optimal control (DAL vs PINN vs DP)");
  SeriesWriter writer = bench::make_writer(args);

  const std::size_t iters = scale.laplace_iters;
  const std::size_t epochs = scale.pinn_epochs;

  // ---- Table 1: hyper-parameters ----
  TextTable table1("Table 1: Laplace hyper-parameters (paper values at "
                   "--paper-scale)");
  table1.set_header({"hyper-parameter", "DAL", "PINN", "DP"});
  table1.add_row({"init. learning rate", "1e-2", "1e-3", "1e-2"});
  table1.add_row({"epochs", "-", std::to_string(epochs), "-"});
  table1.add_row({"network architecture", "-", "3x30", "-"});
  table1.add_row({"iterations", std::to_string(iters), "-",
                  std::to_string(iters)});
  table1.add_row({"point cloud size",
                  std::to_string((scale.laplace_grid + 1) *
                                 (scale.laplace_grid + 1)),
                  std::to_string((scale.laplace_grid + 1) *
                                 (scale.laplace_grid + 1)),
                  std::to_string((scale.laplace_grid + 1) *
                                 (scale.laplace_grid + 1))});
  table1.add_row({"max. polynomial degree n", "1", "-", "1"});
  table1.print(std::cout);

  const rbf::PolyharmonicSpline kernel(3);
  auto problem = std::make_shared<control::LaplaceControlProblem>(
      scale.laplace_grid, kernel);
  const auto xs = problem->solver().control_x();
  const la::Vector c_star = problem->analytic_control();

  control::DriverOptions adam;
  adam.iterations = iters;
  adam.initial_learning_rate = 1e-2;

  // ---- DAL and DP (Adam + the paper's schedule) ----
  auto dal = control::make_laplace_dal(problem);
  const auto r_dal = control::optimize(*problem, *dal, adam);
  auto dp = control::make_laplace_dp(problem);
  const auto r_dp = control::optimize(*problem, *dp, adam);
  // ---- DP + L-BFGS: the discrete optimum the exact gradient can reach ----
  updec::optim::LbfgsOptions lbfgs_options;
  lbfgs_options.max_iterations = iters;
  lbfgs_options.history = 30;
  const auto r_lbfgs = optim::lbfgs_minimize(
      [&](const la::Vector& c, la::Vector& g) {
        return dp->value_and_gradient(c, g);
      },
      problem->initial_control(), lbfgs_options);

  // ---- PINN (step-1 training at the chosen omega* = 1e-1) ----
  control::PinnConfig pinn_config;
  pinn_config.u_hidden = {30, 30, 30};  // the paper's 3x30 architecture
  pinn_config.epochs = epochs;
  pinn_config.learning_rate = 1e-3;
  pinn_config.omega = 0.1;  // omega* found by the line search (fig. 3c-e)
  pinn_config.seed = 1;
  control::LaplacePinn pinn(pinn_config);
  const Stopwatch pinn_watch;
  pinn.train();
  const double pinn_seconds = pinn_watch.seconds();
  const la::Vector c_pinn = pinn.control_at(xs);
  const double j_pinn = problem->cost(c_pinn);

  // ---- Fig. 3b: cost histories ----
  writer.add("fig3b_cost_history_dal", r_dal.cost_history, "iteration", "J");
  writer.add("fig3b_cost_history_dp", r_dp.cost_history, "iteration", "J");
  writer.add("fig3b_cost_history_pinn", pinn.history().cost_term, "epoch",
             "J(network)");

  // ---- Fig. 3a: control profiles ----
  const auto add_profile = [&](const std::string& name, const la::Vector& c) {
    Series s;
    s.name = name;
    s.x_label = "x";
    s.y_label = "c(x)";
    s.x = xs;
    s.y = c.std();
    writer.add(std::move(s));
  };
  add_profile("fig3a_control_analytic", c_star);
  add_profile("fig3a_control_dal", r_dal.control);
  add_profile("fig3a_control_dp", r_dp.control);
  add_profile("fig3a_control_pinn", c_pinn);

  // ---- summary (final costs echo the Fig. 3b ordering, state errors 3f/g) --
  TextTable summary("Fig. 3 summary: final costs and state errors");
  summary.set_header({"method", "final J", "state max-error (fig. 3f/g)",
                      "control L2 error vs analytic", "seconds"});
  const auto control_error = [&](const la::Vector& c) {
    la::Vector d = c;
    la::axpy(-1.0, c_star, d);
    return la::nrm2(d) / std::sqrt(static_cast<double>(c.size()));
  };
  summary.add_row({"DAL", TextTable::sci(r_dal.final_cost),
                   TextTable::num(problem->state_error(r_dal.control), 3),
                   TextTable::num(control_error(r_dal.control), 3),
                   TextTable::num(r_dal.seconds, 3)});
  summary.add_row({"PINN", TextTable::sci(j_pinn),
                   TextTable::num(problem->state_error(c_pinn), 3),
                   TextTable::num(control_error(c_pinn), 3),
                   TextTable::num(pinn_seconds, 3)});
  summary.add_row({"DP", TextTable::sci(r_dp.final_cost),
                   TextTable::num(problem->state_error(r_dp.control), 3),
                   TextTable::num(control_error(r_dp.control), 3),
                   TextTable::num(r_dp.seconds, 3)});
  summary.add_row({"DP+L-BFGS", TextTable::sci(r_lbfgs.value),
                   TextTable::num(problem->state_error(r_lbfgs.x), 3),
                   TextTable::num(control_error(r_lbfgs.x), 3), "-"});
  summary.print(std::cout);
  add_profile("fig3a_control_dp_lbfgs", r_lbfgs.x);
  std::cout << "paper (Table 3, 100x100/20k): DAL 4.6e-3, PINN 1.6e-2, "
               "DP 2.2e-9 -- expected ordering: DP lowest.\n";

  writer.flush();
  return 0;
}
