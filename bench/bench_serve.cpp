/// bench_serve: serving-throughput benchmark for the operator cache.
///
/// Runs the same 16-job Laplace DAL batch twice:
///   * cold -- sequentially, against a zero-budget cache, so every job pays
///     its own collocation assembly + O(N^3) LU factorisation (this is what
///     serving looked like before src/serve existed);
///   * warm -- through the serve::Scheduler with a real cache budget, so the
///     batch pays ONE assembly + factorisation and every other job reuses it
///     (plus whatever thread-level parallelism the machine offers).
///
/// Prints the per-mode wall clock and the speedup, and (via MetricsSession)
/// dumps BENCH_serve.json including the serve/cache.* hit/miss/eviction
/// counters. The PR gate is a >= 2x speedup on the default scale; on a
/// single-core machine all of it comes from the cache, not from threads.

#include "bench_common.hpp"
#include "serve/cache.hpp"
#include "serve/scheduler.hpp"

namespace {

using namespace updec;

serve::Scenario make_job(std::size_t i, std::size_t grid, std::size_t iters) {
  serve::Scenario sc;
  sc.id = "dal-" + std::to_string(i);
  sc.problem = serve::ProblemKind::kLaplace;
  sc.strategy = serve::Strategy::kDal;
  sc.grid_n = grid;
  sc.iterations = iters;
  sc.seed = i + 1;
  sc.control_jitter = 0.02;  // distinct trajectories, shared discretisation
  return sc;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bench::MetricsSession session("serve", args);

  const std::size_t jobs = static_cast<std::size_t>(args.get_int("jobs", 16));
  const std::size_t grid = static_cast<std::size_t>(
      args.get_int("grid", args.flag("paper-scale") ? 48 : 28));
  const std::size_t iters =
      static_cast<std::size_t>(args.get_int("iters", 20));
  std::cout << "### bench_serve: " << jobs << " Laplace DAL jobs, grid "
            << grid << ", " << iters << " iters each\n";

  // Cold: no cache, no pool -- each job rebuilds and refactors everything.
  serve::OperatorCache cold_cache(0);
  const Stopwatch cold_watch;
  std::size_t cold_ok = 0;
  for (std::size_t i = 0; i < jobs; ++i)
    cold_ok += serve::run_scenario(make_job(i, grid, iters), cold_cache).ok();
  const double cold_seconds = cold_watch.seconds();
  std::cout << "cold (sequential, cache disabled): " << cold_seconds
            << " s, " << cold_ok << "/" << jobs << " succeeded\n";

  // Warm: scheduler + real cache. One bundle build + one factorisation.
  serve::OperatorCache warm_cache(std::size_t{512} << 20);
  serve::SchedulerOptions options;
  options.threads = static_cast<std::size_t>(args.get_int("threads", 0));
  options.cache = &warm_cache;
  const Stopwatch warm_watch;
  std::size_t warm_ok = 0;
  std::size_t threads = 0;
  {
    serve::Scheduler scheduler(options);
    threads = scheduler.thread_count();
    for (std::size_t i = 0; i < jobs; ++i)
      (void)scheduler.submit(make_job(i, grid, iters));
    for (const serve::JobReport& r : scheduler.wait_all()) warm_ok += r.ok();
  }
  const double warm_seconds = warm_watch.seconds();
  const serve::OperatorCache::Stats stats = warm_cache.stats();
  std::cout << "warm (scheduler, " << threads << " thread(s), cache on): "
            << warm_seconds << " s, " << warm_ok << "/" << jobs
            << " succeeded\n";
  std::cout << "cache: " << stats.hits << " hits, " << stats.misses
            << " misses, " << stats.evictions << " evictions, "
            << stats.bytes << " bytes resident\n";

  const double speedup = warm_seconds > 0.0 ? cold_seconds / warm_seconds : 0.0;
  std::cout << "speedup (cold/warm): " << speedup << "x\n";

  metrics::gauge_set("serve_bench/cold_seconds", cold_seconds);
  metrics::gauge_set("serve_bench/warm_seconds", warm_seconds);
  metrics::gauge_set("serve_bench/speedup", speedup);
  metrics::gauge_set("serve_bench/jobs", static_cast<double>(jobs));
  metrics::gauge_set("serve_bench/threads", static_cast<double>(threads));

  if (cold_ok != jobs || warm_ok != jobs) {
    std::cerr << "bench_serve: some jobs failed\n";
    return 1;
  }
  if (speedup < 2.0) {
    std::cerr << "bench_serve: speedup " << speedup
              << "x is below the 2x serving gate\n";
    return 1;
  }
  return 0;
}
