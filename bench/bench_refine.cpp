/// bench_refine: adjoint-driven adaptive refinement vs uniform grids at
/// matched node count on the sparse RBF-FD Laplace control problem.
///
/// The adapted arm runs the full AdaptiveLoop -- optimize with the DAL
/// strategy, form dual-weighted-residual indicators from the converged
/// state/adjoint pair, refine/coarsen by fixed fractions, rebuild stencils
/// incrementally and warm-start the next cycle -- for `--cycles` rounds
/// from a `--grid` base grid. The uniform arm is the smallest uniform grid
/// with AT LEAST as many nodes as the adapted cloud ended with, so the
/// comparison can only flatter uniform.
///
/// Both arms are scored by the TRACKED-COST error: the discrete cost
/// J_h(c*) evaluated at the analytic optimal control. The exact cost at
/// the analytic minimiser is zero, so the discrete value IS the
/// discretization error of the quantity of interest -- no optimizer noise
/// enters the gate metric.
///
/// PR gate: adapted error <= 0.5x the uniform error at matched node count
/// (the randomized oracle `refinement_vs_uniform` asserts the weaker
/// "never worse" across seeds). MetricsSession dumps BENCH_refine.json;
/// the committed bench/baselines/BENCH_refine.json is one of these dumps.

#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "pde/laplace.hpp"
#include "rbf/kernels.hpp"
#include "refine/adaptive_loop.hpp"
#include "rom/laplace_rom.hpp"

namespace {

using namespace updec;

/// Analytic optimal control sampled on the problem's top-wall nodes; the
/// cost there is pure discretisation error of the tracked quantity.
la::Vector analytic_control_for(const rom::LaplaceFdControlProblem& p) {
  la::Vector c(p.control_size(), 0.0);
  const std::vector<double>& xs = p.solver().top_x();
  for (std::size_t i = 0; i + 1 < xs.size(); ++i)
    c[i] = pde::LaplaceSolver::analytic_control(xs[i]);
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bench::MetricsSession session("refine", args);

  const std::size_t grid =
      static_cast<std::size_t>(args.get_int("grid", 12));
  const std::size_t cycles =
      static_cast<std::size_t>(args.get_int("cycles", 2));
  const double fraction = args.get_double("fraction", 0.15);
  std::cout << "### bench_refine: adaptive refinement vs uniform at matched "
               "node count (base "
            << grid << "^2, " << cycles << " cycles, fraction " << fraction
            << ")\n";

  const rbf::PolyharmonicSpline kernel(3);

  refine::AdaptiveOptions options;
  options.refine.cycles = cycles;
  options.refine.refine_fraction = fraction;

  const Stopwatch adapted_watch;
  const refine::AdaptiveResult adapted =
      refine::AdaptiveLoop(grid, kernel, options).run();
  const double adapted_seconds = adapted_watch.seconds();

  const std::size_t adapted_nodes = adapted.problem->solver().cloud().size();
  const double adapted_err =
      adapted.problem->cost(analytic_control_for(*adapted.problem));

  std::size_t inserted = 0, removed = 0, reused = 0, recomputed = 0;
  for (const refine::CycleReport& cycle : adapted.cycles) {
    inserted += cycle.inserted;
    removed += cycle.removed;
    reused += cycle.stencil_rows_reused;
    recomputed += cycle.stencil_rows_recomputed;
    std::cout << "cycle: nodes " << cycle.nodes << ", cost " << cycle.cost
              << ", eta " << cycle.indicator_total << ", +" << cycle.inserted
              << "/-" << cycle.removed << " nodes, stencil rows "
              << cycle.stencil_rows_reused << " reused / "
              << cycle.stencil_rows_recomputed << " recomputed, "
              << cycle.seconds << " s\n";
  }

  // Uniform arm: the smallest uniform grid with at least as many nodes.
  std::size_t uniform_n = grid;
  while ((uniform_n + 1) * (uniform_n + 1) < adapted_nodes) ++uniform_n;
  const Stopwatch uniform_watch;
  const rom::LaplaceFdControlProblem uniform(uniform_n, kernel);
  const double uniform_seconds = uniform_watch.seconds();
  const double uniform_err = uniform.cost(analytic_control_for(uniform));
  const double ratio = uniform_err > 0.0 ? adapted_err / uniform_err : 1.0;

  std::cout << "adapted: " << adapted_nodes << " nodes, tracked-cost error "
            << adapted_err << " (" << adapted_seconds << " s)\n"
            << "uniform: " << uniform.solver().cloud().size()
            << " nodes (grid " << uniform_n << "), tracked-cost error "
            << uniform_err << " (" << uniform_seconds << " s assembly)\n"
            << "error ratio adapted/uniform: " << ratio << " (gate <= 0.5)\n";

  metrics::gauge_set("refine_bench/base_grid", static_cast<double>(grid));
  metrics::gauge_set("refine_bench/cycles", static_cast<double>(cycles));
  metrics::gauge_set("refine_bench/adapted_nodes",
                     static_cast<double>(adapted_nodes));
  metrics::gauge_set("refine_bench/uniform_nodes",
                     static_cast<double>(uniform.solver().cloud().size()));
  metrics::gauge_set("refine_bench/inserted_total",
                     static_cast<double>(inserted));
  metrics::gauge_set("refine_bench/removed_total",
                     static_cast<double>(removed));
  metrics::gauge_set("refine_bench/stencil_rows_reused",
                     static_cast<double>(reused));
  metrics::gauge_set("refine_bench/stencil_rows_recomputed",
                     static_cast<double>(recomputed));
  metrics::gauge_set("refine_bench/adapted_err", adapted_err);
  metrics::gauge_set("refine_bench/uniform_err", uniform_err);
  metrics::gauge_set("refine_bench/error_ratio", ratio);
  metrics::gauge_set("refine_bench/adapted_seconds", adapted_seconds);

  if (!(uniform_err > 0.0)) {
    std::cerr << "bench_refine: uniform reference error vanished -- the "
                 "tracked-cost metric is broken\n";
    return 1;
  }
  if (!(adapted_err > 0.0) || !std::isfinite(adapted_err)) {
    std::cerr << "bench_refine: adapted tracked-cost error " << adapted_err
              << " is not a positive finite number\n";
    return 1;
  }
  if (ratio > 0.5) {
    std::cerr << "bench_refine: adapted error " << adapted_err << " is "
              << ratio << "x the uniform error " << uniform_err
              << " at matched node count (gate 0.5x)\n";
    return 1;
  }
  return 0;
}
