// Gradient-accuracy ablation: the quantitative backbone of the paper's
// comparison. For both problems, compare the DP, DAL and FD gradients
// (cosine similarity and relative magnitude against FD, the unbiased if
// expensive reference of footnote 11). Expected shape:
//   * DP == FD to truncation error everywhere ("gold standard" gradients);
//   * DAL on Laplace: good direction away from the wall corners;
//   * DAL on Navier-Stokes: degrades with Re and flips sign by Re = 100.

#include <iostream>

#include "bench_common.hpp"
#include "control/channel_problem.hpp"
#include "control/laplace_problem.hpp"
#include "la/blas.hpp"

namespace {

double cosine(const updec::la::Vector& a, const updec::la::Vector& b) {
  return updec::la::dot(a, b) /
         (updec::la::nrm2(a) * updec::la::nrm2(b) + 1e-300);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace updec;
  const CliArgs args(argc, argv);
  const bench::MetricsSession metrics_session("ablation_gradients", args);
  const bench::Scale scale = bench::Scale::from_args(args);
  scale.print("Ablation: gradient accuracy of DP vs DAL vs FD");

  const rbf::PolyharmonicSpline kernel(3);
  TextTable table("gradient accuracy against central finite differences");
  table.set_header({"problem", "method", "cos(g, g_FD)",
                    "||g|| / ||g_FD||"});

  // ---- Laplace ----
  {
    auto problem = std::make_shared<control::LaplaceControlProblem>(
        std::min<std::size_t>(scale.laplace_grid, 24), kernel);
    la::Vector c = problem->initial_control();
    c[c.size() / 3] = 0.2;
    la::Vector g_dp, g_dal, g_fd;
    control::make_laplace_dp(problem)->value_and_gradient(c, g_dp);
    control::make_laplace_dal(problem)->value_and_gradient(c, g_dal);
    control::make_laplace_fd(problem)->value_and_gradient(c, g_fd);
    const double fd_norm = la::nrm2(g_fd);
    table.add_row({"Laplace", "DP", TextTable::num(cosine(g_dp, g_fd), 6),
                   TextTable::num(la::nrm2(g_dp) / fd_norm, 4)});
    table.add_row({"Laplace", "DAL", TextTable::num(cosine(g_dal, g_fd), 4),
                   TextTable::num(la::nrm2(g_dal) / fd_norm, 4)});
    // Central half only: the corner Runge noise dominates the full vector.
    la::Vector dal_c, fd_c;
    for (std::size_t i = c.size() / 4; i < 3 * c.size() / 4; ++i) {
      dal_c.std().push_back(g_dal[i]);
      fd_c.std().push_back(g_fd[i]);
    }
    table.add_row({"Laplace", "DAL (central half)",
                   TextTable::num(cosine(dal_c, fd_c), 4),
                   TextTable::num(la::nrm2(dal_c) / la::nrm2(fd_c), 4)});
  }

  // ---- Navier-Stokes at Re in {10, 100}, over cloud realizations ----
  // The continuous adjoint's quality hinges on near-boundary RBF stencils,
  // so it swings from usable to sign-flipped across node layouts -- the
  // "numerical errors ... should be handled with care" of section 4.
  for (const double re : {10.0, 100.0}) {
    for (const std::size_t nodes : {300ul, 320ul, 350ul}) {
      pc::ChannelSpec spec;
      spec.target_nodes = nodes;
      pde::ChannelFlowConfig config;
      config.reynolds = re;
      config.refinements = 2;
      config.steps_per_refinement = 150;
      auto problem = std::make_shared<control::ChannelFlowControlProblem>(
          spec, kernel, config);
      la::Vector c = problem->initial_control();
      for (std::size_t i = 0; i < c.size(); ++i) c[i] *= 1.1;
      la::Vector g_dp, g_dal, g_fd;
      control::make_channel_dp(problem)->value_and_gradient(c, g_dp);
      control::make_channel_dal(problem)->value_and_gradient(c, g_dal);
      control::make_channel_fd(problem)->value_and_gradient(c, g_fd);
      const std::string tag = "NS Re=" + TextTable::num(re, 3) + " n=" +
                              std::to_string(nodes);
      const double fd_norm = la::nrm2(g_fd);
      table.add_row({tag, "DP", TextTable::num(cosine(g_dp, g_fd), 6),
                     TextTable::num(la::nrm2(g_dp) / fd_norm, 4)});
      table.add_row({tag, "DAL", TextTable::num(cosine(g_dal, g_fd), 4),
                     TextTable::num(la::nrm2(g_dal) / fd_norm, 4)});
    }
  }

  table.print(std::cout);
  std::cout << "expected: DP cosine ~ 1 in every row (exact discrete "
               "gradients). DAL cosine is erratic -- positive on friendly "
               "layouts, sign-flipped on others, and never matching in "
               "magnitude: the OTD failure mode behind the paper's broken "
               "DAL at Re=100 (section 3.2).\n";
  return 0;
}
