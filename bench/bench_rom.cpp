/// bench_rom: cold full-path DAL batch vs ROM-warm DAL batch on the sparse
/// RBF-FD Laplace control problem.
///
/// Models the serving workload the ROM tier exists for: a batch of 16
/// boundary-control jobs against ONE operator family, each job a DAL loop
/// whose every iteration needs a direct and an adjoint PDE solve. The full
/// arm answers all of them on the sparse Krylov path; the ROM arm shares
/// one SnapshotBank + RomSolver across the batch, so the first few solves
/// escalate (and train the POD basis) and the rest run as k x k reduced
/// solves with a dual-weighted-residual acceptance test.
///
/// Both arms run the same jittered initial controls, so per-job final costs
/// are directly comparable: the bench FAILS if any job's ROM cost drifts
/// more than 1e-3 relative from the full-path cost -- a speedup that buys
/// the wrong optimum is a bug, not a result.
///
/// PR gates at the largest grid: ROM-batch speedup >= 3x over the full
/// batch, and >= 70% of the batch's PDE solves answered in reduced space.
/// MetricsSession dumps BENCH_rom.json; the committed
/// bench/baselines/BENCH_rom.json is one of these dumps.

#include <cmath>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "control/driver.hpp"
#include "rbf/kernels.hpp"
#include "rom/laplace_rom.hpp"
#include "rom/rom_solver.hpp"
#include "rom/snapshot_bank.hpp"
#include "util/rng.hpp"

namespace {

using namespace updec;

struct BatchResult {
  double seconds = 0.0;
  std::vector<double> final_costs;
  std::uint64_t reduced = 0;    ///< ROM arm only
  std::uint64_t escalated = 0;  ///< ROM arm only
  std::size_t basis_k = 0;      ///< ROM arm only
};

la::Vector jittered_control(const control::ControlProblem& problem,
                            std::size_t job, double jitter) {
  la::Vector control = problem.initial_control();
  Rng rng(job + 1);
  for (std::size_t i = 0; i < control.size(); ++i)
    control[i] += rng.normal(0.0, jitter);
  return control;
}

/// One batch: `jobs` sequential DAL loops through `strategy_for(job)`.
template <typename StrategyFactory>
BatchResult run_batch(const rom::LaplaceFdControlProblem& problem,
                      std::size_t jobs, std::size_t iterations, double jitter,
                      StrategyFactory&& strategy_for) {
  control::DriverOptions options;
  options.iterations = iterations;
  options.initial_learning_rate = 1e-2;
  BatchResult batch;
  const Stopwatch watch;
  for (std::size_t job = 0; job < jobs; ++job) {
    const auto strategy = strategy_for(job);
    const control::DriverResult result = control::optimize_from(
        jittered_control(problem, job, jitter), *strategy, options);
    batch.final_costs.push_back(result.final_cost);
  }
  batch.seconds = watch.seconds();
  return batch;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bench::MetricsSession session("rom", args);

  std::vector<std::size_t> grids = {16, 24, 32};
  if (args.flag("paper-scale")) grids.push_back(48);
  if (args.has("grid"))
    grids = {static_cast<std::size_t>(args.get_int("grid", 32))};
  const std::size_t jobs = static_cast<std::size_t>(args.get_int("jobs", 16));
  const std::size_t iterations =
      static_cast<std::size_t>(args.get_int("iters", 25));
  const double jitter = args.get_double("jitter", 0.05);
  const std::size_t reps = static_cast<std::size_t>(args.get_int("reps", 3));
  std::cout << "### bench_rom: full-path DAL batch vs shared-ROM DAL batch ("
            << jobs << " jobs x " << iterations << " iterations per arm)\n";

  const rbf::PolyharmonicSpline kernel(3);

  double gate_speedup = 0.0;
  double gate_reduced_fraction = 0.0;
  double worst_cost_diff = 0.0;
  for (const std::size_t grid : grids) {
    // One operator family per grid, shared by both arms (assembly untimed).
    const auto problem =
        std::make_shared<rom::LaplaceFdControlProblem>(grid, kernel);
    const std::size_t n = problem->solver().op().matrix().rows();

    rom::RomConfig config;  // explicit: the bench must not read the env
    config.enabled = true;
    config.tol = 1e-7;
    // The DAL trajectory lives in an affine space of roughly twice the
    // control dimension (grid + 1 top-wall DOFs, direct + adjoint streams);
    // the cap must clear it or every solve escalates.
    config.max_k = 2 * (grid + 1) + 16;
    config.min_snapshots = 8;
    config.snapshot_bytes = std::size_t{64} << 20;

    // Keep the fastest of `reps` repetitions per arm (single-core runners
    // jitter by +-20%); the ROM arm rebuilds its bank and basis from
    // scratch each repetition, so every rep measures the full cold-to-warm
    // trajectory, not an ever-warmer cache.
    BatchResult full, rom_arm;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      BatchResult f = run_batch(*problem, jobs, iterations, jitter, [&](
                                    std::size_t) {
        return rom::make_laplace_fd_dal(problem);
      });
      if (rep == 0 || f.seconds < full.seconds) full = std::move(f);

      rom::SnapshotBank bank(config.snapshot_bytes);
      auto solver = std::make_shared<rom::RomSolver>(problem->solver().op(),
                                                     bank, grid, config);
      BatchResult r = run_batch(*problem, jobs, iterations, jitter, [&](
                                    std::size_t) {
        return rom::make_laplace_rom_dal(problem, solver);
      });
      const rom::RomStats stats = solver->stats();
      r.reduced = stats.reduced;
      r.escalated = stats.escalated;
      r.basis_k = stats.k;
      if (rep == 0 || r.seconds < rom_arm.seconds) rom_arm = std::move(r);
    }

    double cost_diff = 0.0;
    for (std::size_t j = 0; j < jobs; ++j)
      cost_diff = std::max(
          cost_diff, std::abs(rom_arm.final_costs[j] - full.final_costs[j]) /
                         (1.0 + std::abs(full.final_costs[j])));
    worst_cost_diff = std::max(worst_cost_diff, cost_diff);

    const std::uint64_t solves = rom_arm.reduced + rom_arm.escalated;
    const double reduced_fraction =
        solves > 0 ? static_cast<double>(rom_arm.reduced) /
                         static_cast<double>(solves)
                   : 0.0;
    const double speedup =
        rom_arm.seconds > 0.0 ? full.seconds / rom_arm.seconds : 0.0;
    gate_speedup = speedup;  // the last grid is the largest
    gate_reduced_fraction = reduced_fraction;

    std::cout << "grid " << grid << " (n=" << n << "): full "
              << full.seconds << " s, rom " << rom_arm.seconds << " s ("
              << speedup << "x), " << rom_arm.reduced << " reduced / "
              << rom_arm.escalated << " escalated ("
              << 100.0 * reduced_fraction << "% reduced, k=" << rom_arm.basis_k
              << "), worst cost diff " << cost_diff << "\n";

    const std::string prefix = "rom_bench/n" + std::to_string(n);
    metrics::gauge_set((prefix + ".full_seconds").c_str(), full.seconds);
    metrics::gauge_set((prefix + ".rom_seconds").c_str(), rom_arm.seconds);
    metrics::gauge_set((prefix + ".speedup").c_str(), speedup);
    metrics::gauge_set((prefix + ".reduced_fraction").c_str(),
                       reduced_fraction);
    metrics::gauge_set((prefix + ".basis_k").c_str(),
                       static_cast<double>(rom_arm.basis_k));
    metrics::gauge_set((prefix + ".cost_rel_diff").c_str(), cost_diff);
  }

  metrics::gauge_set("rom_bench/speedup", gate_speedup);
  metrics::gauge_set("rom_bench/reduced_fraction", gate_reduced_fraction);
  metrics::gauge_set("rom_bench/max_cost_rel_diff", worst_cost_diff);

  if (worst_cost_diff > 1e-3) {
    std::cerr << "bench_rom: ROM final costs drifted " << worst_cost_diff
              << " relative from the full path (tolerance 1e-3)\n";
    return 1;
  }
  if (gate_reduced_fraction < 0.70) {
    std::cerr << "bench_rom: only " << 100.0 * gate_reduced_fraction
              << "% of solves ran in reduced space at the largest grid "
                 "(gate 70%)\n";
    return 1;
  }
  if (gate_speedup < 3.0) {
    std::cerr << "bench_rom: speedup " << gate_speedup
              << "x at the largest grid is below the 3x ROM gate\n";
    return 1;
  }
  return 0;
}
