// Control-smoothness ablation (section 4): "the DP control is considerably
// less smooth than the other two. This could be resolved ... by penalising
// the control's variations by adding the integral term ... We refrained
// from doing the latter since it prevents a fair comparison." Here we do
// both: optimise the channel inflow with plain DP and with the Tikhonov-
// penalised DP and compare cost and control roughness.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "control/channel_problem.hpp"
#include "control/driver.hpp"

namespace {

/// Discrete total variation of the control (the roughness Fig. 4c shows).
double total_variation(const updec::la::Vector& c) {
  double tv = 0.0;
  for (std::size_t q = 0; q + 1 < c.size(); ++q)
    tv += std::abs(c[q + 1] - c[q]);
  return tv;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace updec;
  const CliArgs args(argc, argv);
  const bench::MetricsSession metrics_session("ablation_smoothing", args);
  const bench::Scale scale = bench::Scale::from_args(args);
  scale.print("Ablation: DP control smoothing (the section-4 suggestion)");
  SeriesWriter writer = bench::make_writer(args);

  const rbf::PolyharmonicSpline kernel(3);
  pc::ChannelSpec spec;
  spec.target_nodes = std::min<std::size_t>(scale.channel_nodes, 320);
  pde::ChannelFlowConfig config;
  config.reynolds = args.get_double("re", 100.0);
  config.refinements = 2;
  config.steps_per_refinement = 150;
  auto problem = std::make_shared<control::ChannelFlowControlProblem>(
      spec, kernel, config);
  control::DriverOptions adam;
  adam.iterations = scale.channel_iters;
  adam.initial_learning_rate = 5e-2;

  TextTable table("plain vs Tikhonov-smoothed DP after the same Adam budget");
  table.set_header(
      {"alpha", "final J (raw)", "control total variation", "note"});
  const double tv0 = total_variation(problem->initial_control());
  table.add_row({"(initial)", TextTable::sci(problem->cost(
                     problem->initial_control())),
                 TextTable::num(tv0, 4), "parabolic guess"});
  for (const double alpha : {0.0, 1e-3, 1e-2}) {
    auto dp = control::make_channel_dp(problem, alpha);
    const auto result = control::optimize(*problem, *dp, adam);
    table.add_row({TextTable::sci(alpha, 0),
                   TextTable::sci(result.final_cost),
                   TextTable::num(total_variation(result.control), 4),
                   alpha == 0.0 ? "paper's setting (fair comparison)"
                                : "penalised"});
    writer.add("smoothing_control_alpha_" + TextTable::sci(alpha, 0),
               result.control.std(), "inlet index", "c(y)");
  }
  table.print(std::cout);
  std::cout << "expected shape: alpha = 0 reaches the lowest raw J with the "
               "roughest control; increasing alpha trades a little J for "
               "visibly smoother inflow profiles.\n";
  writer.flush();
  return 0;
}
