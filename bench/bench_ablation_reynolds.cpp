// Reynolds ablation (section 3.2): "We found that this problem is lessened
// with a reduced Re = 10 which led to better solutions with DAL." Optimise
// the channel inflow with DAL and DP at Re = 10 and Re = 100 and compare
// the achieved costs.

#include <iostream>

#include "bench_common.hpp"
#include "control/channel_problem.hpp"
#include "control/driver.hpp"

int main(int argc, char** argv) {
  using namespace updec;
  const CliArgs args(argc, argv);
  const bench::MetricsSession metrics_session("ablation_reynolds", args);
  const bench::Scale scale = bench::Scale::from_args(args);
  scale.print("Ablation: DAL vs DP across Reynolds numbers");
  SeriesWriter writer = bench::make_writer(args);

  const rbf::PolyharmonicSpline kernel(3);
  TextTable table("final cost after the same Adam budget");
  table.set_header({"Re", "method", "J initial", "J final", "improvement"});

  for (const double re : {10.0, 100.0}) {
    pc::ChannelSpec spec;
    spec.target_nodes = std::min<std::size_t>(scale.channel_nodes, 320);
    pde::ChannelFlowConfig config;
    config.reynolds = re;
    config.refinements = 2;
    config.steps_per_refinement = 150;
    auto problem = std::make_shared<control::ChannelFlowControlProblem>(
        spec, kernel, config);
    control::DriverOptions adam;
    adam.iterations = scale.channel_iters;
    adam.initial_learning_rate = 1e-1;

    for (const bool use_dal : {true, false}) {
      auto strategy = use_dal ? control::make_channel_dal(problem)
                              : control::make_channel_dp(problem);
      const auto result = control::optimize(*problem, *strategy, adam);
      const double j0 = result.cost_history.front();
      table.add_row({TextTable::num(re, 4), strategy->name(),
                     TextTable::sci(j0), TextTable::sci(result.final_cost),
                     TextTable::num(j0 / std::max(result.final_cost, 1e-300),
                                    3) + "x"});
      writer.add("reynolds_" + std::to_string(static_cast<int>(re)) + "_" +
                     strategy->name(),
                 result.cost_history, "iteration", "J");
    }
  }
  table.print(std::cout);
  std::cout << "expected shape: DP improves J at both Re; DAL helps at "
               "Re=10 but stalls or degrades J at Re=100 (sign-flipped "
               "adjoint gradients).\n";
  writer.flush();
  return 0;
}
