#pragma once
/// \file bench_common.hpp
/// Shared scaffolding of the reproduction benches: every binary regenerates
/// one table or figure of the paper at a reduced default scale (minutes on
/// one CPU core) and approaches the paper's scale with --paper-scale or
/// explicit --grid/--nodes/--iters/--epochs flags. Series are dumped inline
/// and, with --out <dir>, as CSV files for plotting.

#include <iostream>
#include <string>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/memory.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace updec::bench {

/// Common experiment scales derived from the CLI.
struct Scale {
  bool paper = false;
  std::size_t laplace_grid;     ///< paper: 100 (10k nodes)
  std::size_t laplace_iters;    ///< paper: 500
  std::size_t channel_nodes;    ///< paper: 1385
  std::size_t channel_iters;    ///< paper: 350
  std::size_t pinn_epochs;      ///< paper: 20k (Laplace) / 100k (NS)
  std::size_t omega_count;      ///< paper: 11 (Laplace) / 9 (NS)

  static Scale from_args(const CliArgs& args) {
    Scale s;
    s.paper = args.flag("paper-scale");
    s.laplace_grid = static_cast<std::size_t>(
        args.get_int("grid", s.paper ? 100 : 32));
    s.laplace_iters = static_cast<std::size_t>(
        args.get_int("iters", 500));  // paper: 500; cheap at any scale
    s.channel_nodes = static_cast<std::size_t>(
        args.get_int("nodes", s.paper ? 1385 : 350));
    s.channel_iters = static_cast<std::size_t>(
        args.get_int("channel-iters", s.paper ? 350 : 60));
    s.pinn_epochs = static_cast<std::size_t>(
        args.get_int("epochs", s.paper ? 20000 : 800));
    s.omega_count =
        static_cast<std::size_t>(args.get_int("omegas", s.paper ? 11 : 5));
    return s;
  }

  void print(const std::string& bench) const {
    std::cout << "### " << bench << " ("
              << (paper ? "paper scale" : "reduced scale; use --paper-scale "
                                          "or --grid/--nodes/... to enlarge")
              << ")\n";
  }
};

inline SeriesWriter make_writer(const CliArgs& args) {
  return SeriesWriter(args.get("out", ""));
}

}  // namespace updec::bench
