#pragma once
/// \file bench_common.hpp
/// Shared scaffolding of the reproduction benches: every binary regenerates
/// one table or figure of the paper at a reduced default scale (minutes on
/// one CPU core) and approaches the paper's scale with --paper-scale or
/// explicit --grid/--nodes/--iters/--epochs flags. Series are dumped inline
/// and, with --out <dir>, as CSV files for plotting.

#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/memory.hpp"
#include "util/metrics.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace updec::bench {

/// Per-binary observability session: enables the metrics registry for the
/// bench's lifetime and, on destruction, dumps the whole registry as
/// `BENCH_<name>.json` next to the CSVs (the --out directory, or the
/// working directory without --out). $UPDEC_METRICS_OUT overrides the
/// destination outright. The committed bench/baselines/BENCH_baseline.json
/// is one of these dumps; perf PRs diff their fresh dump against it.
class MetricsSession {
 public:
  MetricsSession(std::string name, const CliArgs& args)
      : name_(std::move(name)), out_dir_(args.get("out", "")) {
    metrics::set_enabled(true);
    metrics::set_label("bench", name_);
    metrics::set_label("scale", args.flag("paper-scale") ? "paper" : "reduced");
  }

  MetricsSession(const MetricsSession&) = delete;
  MetricsSession& operator=(const MetricsSession&) = delete;

  ~MetricsSession() {
    if (metrics::dump_json_file(path()))
      std::cout << "# metrics: wrote " << path() << "\n";
  }

  /// Destination the dump will be written to.
  [[nodiscard]] std::string path() const {
    const char* env = std::getenv("UPDEC_METRICS_OUT");
    if (env != nullptr && env[0] != '\0') return env;
    return (out_dir_.empty() ? std::string(".") : out_dir_) + "/BENCH_" +
           name_ + ".json";
  }

 private:
  std::string name_;
  std::string out_dir_;
};

/// Common experiment scales derived from the CLI.
struct Scale {
  bool paper = false;
  std::size_t laplace_grid;     ///< paper: 100 (10k nodes)
  std::size_t laplace_iters;    ///< paper: 500
  std::size_t channel_nodes;    ///< paper: 1385
  std::size_t channel_iters;    ///< paper: 350
  std::size_t pinn_epochs;      ///< paper: 20k (Laplace) / 100k (NS)
  std::size_t omega_count;      ///< paper: 11 (Laplace) / 9 (NS)

  static Scale from_args(const CliArgs& args) {
    Scale s;
    s.paper = args.flag("paper-scale");
    s.laplace_grid = static_cast<std::size_t>(
        args.get_int("grid", s.paper ? 100 : 32));
    s.laplace_iters = static_cast<std::size_t>(
        args.get_int("iters", 500));  // paper: 500; cheap at any scale
    s.channel_nodes = static_cast<std::size_t>(
        args.get_int("nodes", s.paper ? 1385 : 350));
    s.channel_iters = static_cast<std::size_t>(
        args.get_int("channel-iters", s.paper ? 350 : 60));
    s.pinn_epochs = static_cast<std::size_t>(
        args.get_int("epochs", s.paper ? 20000 : 800));
    s.omega_count =
        static_cast<std::size_t>(args.get_int("omegas", s.paper ? 11 : 5));
    return s;
  }

  void print(const std::string& bench) const {
    std::cout << "### " << bench << " ("
              << (paper ? "paper scale" : "reduced scale; use --paper-scale "
                                          "or --grid/--nodes/... to enlarge")
              << ")\n";
  }
};

inline SeriesWriter make_writer(const CliArgs& args) {
  return SeriesWriter(args.get("out", ""));
}

}  // namespace updec::bench
