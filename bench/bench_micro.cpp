// Micro-benchmarks (google-benchmark) for the hot kernels underneath the
// three strategies: RBF assembly, dense factorisation/solves, sparse SpMV,
// tape record + reverse sweep, RBF-FD stencil generation and the Dual2
// PINN evaluation.

#include <benchmark/benchmark.h>

#include "autodiff/dual2.hpp"
#include "autodiff/ops.hpp"
#include "la/blas.hpp"
#include "la/lu.hpp"
#include "nn/mlp.hpp"
#include "pde/channel_flow.hpp"
#include "pointcloud/generators.hpp"
#include "rbf/collocation.hpp"
#include "rbf/rbffd.hpp"
#include "util/rng.hpp"

namespace {

using namespace updec;

void BM_GlobalCollocationAssembly(benchmark::State& state) {
  const auto grid = static_cast<std::size_t>(state.range(0));
  const pc::PointCloud cloud = pc::unit_square_grid(grid, grid);
  const rbf::PolyharmonicSpline kernel(3);
  for (auto _ : state) {
    const rbf::GlobalCollocation colloc(cloud, kernel, 1,
                                        rbf::LinearOp::laplacian());
    benchmark::DoNotOptimize(colloc.matrix().data());
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(cloud.size()));
}
BENCHMARK(BM_GlobalCollocationAssembly)->Arg(10)->Arg(20)->Arg(30)
    ->Complexity(benchmark::oNSquared);

void BM_LuFactorization(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  la::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
    a(i, i) += static_cast<double>(n);
  }
  for (auto _ : state) {
    const la::LuFactorization lu(a);
    benchmark::DoNotOptimize(lu.size());
  }
}
BENCHMARK(BM_LuFactorization)->Arg(100)->Arg(300)->Arg(600);

void BM_LuTriangularSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  la::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
    a(i, i) += static_cast<double>(n);
  }
  const la::LuFactorization lu(a);
  la::Vector b(n, 1.0);
  for (auto _ : state) {
    const la::Vector x = lu.solve(b);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_LuTriangularSolve)->Arg(300)->Arg(1000);

void BM_RbffdWeights(benchmark::State& state) {
  pc::ChannelSpec spec;
  spec.target_nodes = static_cast<std::size_t>(state.range(0));
  const pc::PointCloud cloud = pc::channel_cloud(spec);
  const rbf::PolyharmonicSpline kernel(3);
  for (auto _ : state) {
    const rbf::RbffdOperators ops(cloud, kernel);
    benchmark::DoNotOptimize(ops.weights_for(rbf::LinearOp::laplacian()).nnz());
  }
}
BENCHMARK(BM_RbffdWeights)->Arg(300)->Arg(800);

void BM_SparseSpmv(benchmark::State& state) {
  pc::ChannelSpec spec;
  spec.target_nodes = static_cast<std::size_t>(state.range(0));
  const pc::PointCloud cloud = pc::channel_cloud(spec);
  const rbf::PolyharmonicSpline kernel(3);
  const rbf::RbffdOperators ops(cloud, kernel);
  const la::CsrMatrix& dx = ops.dx();
  la::Vector x(cloud.size(), 1.0), y(cloud.size());
  for (auto _ : state) {
    dx.spmv(1.0, x, 0.0, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_SparseSpmv)->Arg(300)->Arg(800);

void BM_TapeRecordAndSweep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    ad::Tape tape;
    ad::Var x = tape.variable(0.5);
    ad::Var acc = tape.constant(0.0);
    for (std::size_t i = 0; i < n; ++i) acc = acc + sin(x * (1.0 + 1e-3 * i));
    tape.backward(acc);
    benchmark::DoNotOptimize(x.adjoint());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_TapeRecordAndSweep)->Arg(1000)->Arg(100000);

void BM_DpChannelGradient(benchmark::State& state) {
  pc::ChannelSpec spec;
  spec.target_nodes = 300;
  const pc::PointCloud cloud = pc::channel_cloud(spec);
  const rbf::PolyharmonicSpline kernel(3);
  pde::ChannelFlowConfig config;
  config.reynolds = 50.0;
  config.refinements = 1;
  config.steps_per_refinement = static_cast<std::size_t>(state.range(0));
  config.steady_tol = 0.0;
  const pde::ChannelFlowSolver solver(cloud, kernel, config, spec);
  const la::Vector inflow = solver.parabolic_inflow();
  for (auto _ : state) {
    ad::Tape tape;
    const ad::VarVec c = ad::make_variables(tape, inflow);
    const pde::FlowAd flow = solver.solve(tape, c);
    ad::Var j = ad::dot(flow.u, flow.u);
    tape.backward(j);
    benchmark::DoNotOptimize(c.front().adjoint());
  }
}
BENCHMARK(BM_DpChannelGradient)->Arg(20)->Arg(80);

void BM_PinnDual2Residual(benchmark::State& state) {
  const nn::Mlp net({2, 30, 30, 30, 1}, nn::Activation::kTanh, 1);
  for (auto _ : state) {
    ad::Tape tape;
    const ad::VarVec theta =
        ad::make_variables(tape, la::Vector(net.parameters()));
    const ad::Var zero = tape.constant(0.0);
    const ad::Var one = tape.constant(1.0);
    const std::vector<ad::Dual2<ad::Var>> in = {
        {tape.constant(0.3), one, zero, zero, zero, zero},
        {tape.constant(0.6), zero, one, zero, zero, zero}};
    const auto out = net.forward<ad::Dual2<ad::Var>, ad::Var>(
        std::span<const ad::Var>(theta),
        std::span<const ad::Dual2<ad::Var>>(in), [&](const ad::Var& w) {
          return ad::Dual2<ad::Var>{w, zero, zero, zero, zero, zero};
        });
    ad::Var r = out[0].hxx + out[0].hyy;
    ad::Var loss = r * r;
    tape.backward(loss);
    benchmark::DoNotOptimize(theta.front().adjoint());
  }
}
BENCHMARK(BM_PinnDual2Residual);

}  // namespace

BENCHMARK_MAIN();
