// Navier-Stokes channel inflow control (section 3.2 / fig. 1): despite
// blowing and suction patches, find the inlet velocity that produces a
// parabolic outflow, by differentiating through the whole projection solver.
//
// Run:  ./channel_flow_control [--nodes 320] [--re 50] [--iters 25]
//       [--refinements 2] [--strategy dp|dal]

#include <iostream>

#include "control/channel_problem.hpp"
#include "control/driver.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace updec;
  const CliArgs args(argc, argv);

  pc::ChannelSpec spec;
  spec.target_nodes = static_cast<std::size_t>(args.get_int("nodes", 320));
  pde::ChannelFlowConfig config;
  config.reynolds = args.get_double("re", 50.0);
  config.refinements = static_cast<std::size_t>(args.get_int("refinements", 2));
  config.steps_per_refinement =
      static_cast<std::size_t>(args.get_int("steps", 150));

  const rbf::PolyharmonicSpline kernel(3);
  auto problem = std::make_shared<control::ChannelFlowControlProblem>(
      spec, kernel, config);
  std::cout << problem->cloud().summary() << "\n";
  std::cout << "Re = " << config.reynolds << ", k = " << config.refinements
            << " refinements x " << config.steps_per_refinement
            << " projection steps\n";

  const std::string strategy_name = args.get("strategy", "dp");
  std::unique_ptr<control::GradientStrategy> strategy =
      strategy_name == "dal" ? control::make_channel_dal(problem)
                             : control::make_channel_dp(problem);

  control::DriverOptions options;
  options.iterations = static_cast<std::size_t>(args.get_int("iters", 25));
  options.initial_learning_rate = args.get_double("lr", 5e-2);
  const auto result = control::optimize(*problem, *strategy, options);
  std::cout << strategy->name() << ": J went from "
            << result.cost_history.front() << " to " << result.final_cost
            << " in " << result.seconds << " s\n";

  // Outflow profile against the parabolic target (fig. 1 / fig. 4d).
  const la::Vector before =
      problem->outflow_profile(problem->initial_control());
  const la::Vector after = problem->outflow_profile(result.control);
  const auto& solver = problem->solver();
  TextTable table("outflow u(Lx, y) vs target parabola");
  table.set_header({"y", "uncontrolled", "controlled", "target"});
  for (std::size_t q = 0; q < after.size(); ++q)
    table.add_row({TextTable::num(solver.outlet_y()[q], 3),
                   TextTable::num(before[q], 4), TextTable::num(after[q], 4),
                   TextTable::num(solver.target_outflow(solver.outlet_y()[q]),
                                  4)});
  table.print(std::cout);

  TextTable inflow("optimised inflow control c(y)");
  inflow.set_header({"y", "initial (parabola)", "optimised"});
  const la::Vector c0 = problem->initial_control();
  for (std::size_t q = 0; q < result.control.size(); ++q)
    inflow.add_row({TextTable::num(solver.inlet_y()[q], 3),
                    TextTable::num(c0[q], 4),
                    TextTable::num(result.control[q], 4)});
  inflow.print(std::cout);
  return 0;
}
