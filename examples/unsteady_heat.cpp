// Unsteady heat diffusion on a mesh-free cloud -- the paper's future-work
// direction "incorporate time", built on the same RBF-FD substrate as the
// Navier-Stokes solver. Watches an initial hot spot diffuse into the
// steady harmonic profile set by the boundary.
//
// Run:  ./unsteady_heat [--grid 14] [--alpha 0.2] [--dt 0.002] [--steps 400]

#include <cmath>
#include <iostream>
#include <numbers>

#include "la/blas.hpp"
#include "pde/heat.hpp"
#include "pointcloud/generators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace updec;
  const CliArgs args(argc, argv);
  const auto grid = static_cast<std::size_t>(args.get_int("grid", 14));
  const double alpha = args.get_double("alpha", 0.2);
  const double dt = args.get_double("dt", 2e-3);
  const auto steps = static_cast<std::size_t>(args.get_int("steps", 400));

  const pc::PointCloud cloud = pc::unit_square_grid(grid, grid);
  const rbf::PolyharmonicSpline kernel(3);
  const pde::HeatSolver solver(cloud, kernel, alpha, dt);
  std::cout << cloud.summary() << "\n"
            << "alpha = " << alpha << ", dt = " << dt << ", theta-scheme\n";

  // Hot spot in the middle, cold walls except a warm right edge.
  la::Vector u(cloud.size(), 0.0);
  for (std::size_t i = 0; i < cloud.size(); ++i) {
    const auto p = cloud.node(i).pos;
    const double r2 = (p.x - 0.5) * (p.x - 0.5) + (p.y - 0.5) * (p.y - 0.5);
    u[i] = std::exp(-40.0 * r2);
  }
  const auto boundary = [](const pc::Node& n, double) {
    return n.tag == pc::tags::kRight ? 0.3 : 0.0;
  };

  TextTable table("field statistics over time");
  table.set_header({"t", "max u", "energy ||u||_2", "centre value"});
  std::size_t centre = 0;
  double best = 1e9;
  for (std::size_t i = 0; i < cloud.size(); ++i) {
    const auto p = cloud.node(i).pos;
    const double d = std::abs(p.x - 0.5) + std::abs(p.y - 0.5);
    if (d < best) {
      best = d;
      centre = i;
    }
  }
  for (std::size_t s = 0; s <= steps; ++s) {
    if (s % (steps / 8) == 0)
      table.add_row({TextTable::num(dt * static_cast<double>(s), 3),
                     TextTable::num(la::nrm_inf(u), 4),
                     TextTable::num(la::nrm2(u), 4),
                     TextTable::num(u[centre], 4)});
    if (s < steps)
      u = solver.step(u, boundary, dt * static_cast<double>(s));
  }
  table.print(std::cout);
  std::cout << "the hot spot decays while the warm right wall establishes "
               "the steady harmonic profile.\n";
  return 0;
}
