// Quickstart: a five-minute tour of the updec-cpp public API.
//
//  1. Build a mesh-free point cloud on the unit square.
//  2. Solve a Poisson problem by global RBF collocation.
//  3. Differentiate through the solver with the reverse-mode tape (the
//     paper's differentiable-programming strategy in miniature).
//
// Run:  ./quickstart [--grid 16]

#include <cmath>
#include <iostream>
#include <numbers>

#include "autodiff/ops.hpp"
#include "la/blas.hpp"
#include "pointcloud/generators.hpp"
#include "rbf/collocation.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace updec;
  const CliArgs args(argc, argv);
  const auto grid = static_cast<std::size_t>(args.get_int("grid", 16));

  // 1. A mesh-free cloud: nodes + boundary kinds + normals, no elements.
  const pc::PointCloud cloud = pc::unit_square_grid(grid, grid);
  std::cout << cloud.summary() << "\n";

  // 2. Poisson: Lap u = f with the manufactured solution
  //    u*(x, y) = sin(pi x) sin(pi y),  f = -2 pi^2 u*.
  const double pi = std::numbers::pi;
  const rbf::PolyharmonicSpline kernel(3);  // the paper's phi(r) = r^3
  const rbf::GlobalCollocation colloc(cloud, kernel, /*poly_degree=*/1,
                                      rbf::LinearOp::laplacian());
  const auto exact = [&](const pc::Vec2& p) {
    return std::sin(pi * p.x) * std::sin(pi * p.y);
  };
  const la::Vector rhs = colloc.assemble_rhs(
      [&](const pc::Node& n) { return -2.0 * pi * pi * exact(n.pos); },
      [](const pc::Node&) { return 0.0; });
  const la::Vector coeffs = colloc.solve(rhs);
  const la::Vector u = colloc.evaluate_at_nodes(coeffs,
                                                rbf::LinearOp::identity());
  double max_err = 0.0;
  for (std::size_t i = 0; i < cloud.size(); ++i)
    max_err = std::max(max_err, std::abs(u[i] - exact(cloud.node(i).pos)));
  std::cout << "Poisson solve: max nodal error = " << max_err << "\n";

  // 3. Differentiable programming: J(f) = ||u||^2 where u solves the PDE.
  //    The tape records the solve as one custom op; a single reverse sweep
  //    returns dJ/df for every source value -- the exact discrete gradient.
  ad::Tape tape;
  ad::VarVec f = ad::make_variables(tape, rhs);
  ad::VarVec c = ad::solve(colloc.lu(), f);
  ad::Var j = ad::dot(c, c);
  tape.backward(j);
  const la::Vector gradient = ad::adjoints(f);
  std::cout << "DP gradient: J = " << j.value()
            << ", ||dJ/df|| = " << la::nrm2(gradient)
            << " (from one reverse sweep over " << tape.size()
            << " tape nodes)\n";

  // Sanity: the tape gradient matches a finite difference on one entry.
  const std::size_t probe = cloud.size() / 2;
  const double h = 1e-6;
  la::Vector rp = rhs, rm = rhs;
  rp[probe] += h;
  rm[probe] -= h;
  const auto norm2_of = [&](const la::Vector& r) {
    const la::Vector x = colloc.lu().solve(r);
    return la::dot(x, x);
  };
  const double fd = (norm2_of(rp) - norm2_of(rm)) / (2 * h);
  std::cout << "check vs finite differences: tape = " << gradient[probe]
            << ", fd = " << fd << "\n";
  return 0;
}
