// Smoothed Particle Hydrodynamics demo -- the mesh-free alternative the
// paper names in its future work (section 5): a Taylor-Green vortex in a
// periodic box, watching kinetic energy dissipate.
//
// Run:  ./sph_taylor_green [--n 24] [--nu 0.02] [--steps 600]

#include <cmath>
#include <iostream>
#include <numbers>

#include "sph/sph.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace updec;
  const CliArgs args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("n", 24));
  const auto steps = static_cast<std::size_t>(args.get_int("steps", 600));

  sph::SphConfig config;
  config.nu = args.get_double("nu", 0.02);
  sph::Particles particles = sph::make_lattice(n, config);
  sph::set_taylor_green(particles, config.box, 0.5);
  const sph::SphSolver solver(config, config.box / static_cast<double>(n));
  std::cout << particles.size() << " particles, h = " << solver.kernel().h()
            << ", dt = " << solver.dt() << ", nu = " << config.nu << "\n";

  const double e0 = sph::SphSolver::kinetic_energy(particles);
  const double k = 2.0 * std::numbers::pi / config.box;
  TextTable table("Taylor-Green vortex decay");
  table.set_header({"t", "E/E0 (SPH)", "E/E0 (incompressible theory)",
                    "momentum drift"});
  const std::size_t chunks = 8;
  for (std::size_t c = 0; c <= chunks; ++c) {
    const double t =
        solver.dt() * static_cast<double>(c * (steps / chunks));
    const auto [px, py] = sph::SphSolver::momentum(particles);
    table.add_row(
        {TextTable::num(t, 3),
         TextTable::num(sph::SphSolver::kinetic_energy(particles) / e0, 4),
         TextTable::num(std::exp(-2.0 * config.nu * k * k * t), 4),
         TextTable::sci(std::abs(px) + std::abs(py))});
    if (c < chunks) solver.advance(particles, steps / chunks);
  }
  table.print(std::cout);
  std::cout << "SPH decays faster than the incompressible theory at coarse "
               "resolution (acoustic dissipation), while conserving linear "
               "momentum to round-off.\n";
  return 0;
}
