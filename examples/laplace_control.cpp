// Laplace boundary control (section 3.1 of the paper): drive the top-wall
// potential so that the outgoing flux matches cos(2 pi x), using any of the
// gradient strategies.
//
// Run:  ./laplace_control [--strategy dp|dal|fd] [--grid 24] [--iters 300]
//       [--lr 0.01] [--lbfgs]

#include <iostream>

#include "control/driver.hpp"
#include "control/laplace_problem.hpp"
#include "la/blas.hpp"
#include "optim/lbfgs.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace updec;
  const CliArgs args(argc, argv);
  const auto grid = static_cast<std::size_t>(args.get_int("grid", 24));
  const auto iters = static_cast<std::size_t>(args.get_int("iters", 300));
  const double lr = args.get_double("lr", 1e-2);
  const std::string strategy_name = args.get("strategy", "dp");

  const rbf::PolyharmonicSpline kernel(3);
  auto problem =
      std::make_shared<control::LaplaceControlProblem>(grid, kernel);
  std::cout << "Laplace control on a " << grid << "x" << grid << " grid, "
            << problem->control_size() << " control DOFs\n";

  std::unique_ptr<control::GradientStrategy> strategy;
  if (strategy_name == "dal")
    strategy = control::make_laplace_dal(problem);
  else if (strategy_name == "fd")
    strategy = control::make_laplace_fd(problem);
  else
    strategy = control::make_laplace_dp(problem);

  la::Vector control;
  double final_cost = 0.0;
  if (args.flag("lbfgs")) {
    optim::LbfgsOptions options;
    options.max_iterations = iters;
    options.history = 30;
    const auto result = optim::lbfgs_minimize(
        [&](const la::Vector& c, la::Vector& g) {
          return strategy->value_and_gradient(c, g);
        },
        problem->initial_control(), options);
    control = result.x;
    final_cost = result.value;
    std::cout << "L-BFGS(" << strategy->name() << "): " << result.iterations
              << " iterations, final J = " << final_cost << "\n";
  } else {
    control::DriverOptions options;
    options.iterations = iters;
    options.initial_learning_rate = lr;
    const auto result = control::optimize(*problem, *strategy, options);
    control = result.control;
    final_cost = result.final_cost;
    std::cout << "Adam(" << strategy->name() << "): " << result.iterations
              << " iterations in " << result.seconds
              << " s, final J = " << final_cost << "\n";
  }

  // Compare the recovered control with the analytic minimiser (Fig. 3a).
  const la::Vector c_star = problem->analytic_control();
  const auto xs = problem->solver().control_x();
  TextTable table("control profile vs analytic minimiser");
  table.set_header({"x", "c(x) computed", "c*(x) analytic"});
  for (std::size_t i = 0; i < control.size(); i += std::max<std::size_t>(
           1, control.size() / 12))
    table.add_row({TextTable::num(xs[i], 3), TextTable::num(control[i], 5),
                   TextTable::num(c_star[i], 5)});
  table.print(std::cout);
  std::cout << "state max-error vs analytic solution: "
            << problem->state_error(control) << "\n";
  return 0;
}
