// Scattered-data interpolation with different RBF kernels, including a
// user-defined kernel whose derivatives come from forward-mode AD -- the
// "define phi, get the differential operator by grad" workflow of the paper.
//
// Run:  ./rbf_interpolation [--points 300]

#include <cmath>
#include <iostream>

#include "pointcloud/generators.hpp"
#include "rbf/interpolation.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace updec;
  const CliArgs args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("points", 300));

  // Franke-style test function on scattered nodes.
  const auto franke = [](const pc::Vec2& p) {
    return 0.75 * std::exp(-((9 * p.x - 2) * (9 * p.x - 2) +
                             (9 * p.y - 2) * (9 * p.y - 2)) /
                           4.0) +
           0.5 * std::exp(-((9 * p.x - 7) * (9 * p.x - 7) +
                            (9 * p.y - 3) * (9 * p.y - 3)) /
                          4.0);
  };
  const pc::PointCloud cloud = pc::unit_square_scattered(n, 24, 7);
  la::Vector data(cloud.size());
  for (std::size_t i = 0; i < cloud.size(); ++i)
    data[i] = franke(cloud.node(i).pos);

  // Kernel zoo, including a dual-derived custom kernel.
  const rbf::PolyharmonicSpline phs3(3);
  const rbf::PolyharmonicSpline phs5(5);
  const rbf::GaussianKernel gauss(4.0);
  const rbf::MultiquadricKernel mq(3.0);
  const rbf::ThinPlateSpline tps;
  const rbf::DualDerivedKernel custom(
      "custom-r3-log", [](auto r) {
        // phi(r) = r^3 + small Gaussian bump; derivatives via AD.
        using std::exp;
        return r * r * r + 0.05 * exp(-16.0 * r * r);
      });

  TextTable table("RBF interpolation of a Franke-style surface (" +
                  std::to_string(cloud.size()) + " nodes)");
  table.set_header({"kernel", "max error", "rms error"});
  Rng rng(11);
  const std::vector<const rbf::Kernel*> kernels = {&phs3, &phs5, &gauss,
                                                   &mq,   &tps,  &custom};
  for (const rbf::Kernel* kernel : kernels) {
    const rbf::RbfInterpolant interp(cloud, *kernel, 1, data);
    double max_err = 0.0, sum2 = 0.0;
    const std::size_t trials = 400;
    rng.seed(11);
    for (std::size_t t = 0; t < trials; ++t) {
      const pc::Vec2 p{rng.uniform(0.05, 0.95), rng.uniform(0.05, 0.95)};
      const double err = std::abs(interp(p) - franke(p));
      max_err = std::max(max_err, err);
      sum2 += err * err;
    }
    table.add_row({kernel->name(), TextTable::sci(max_err),
                   TextTable::sci(std::sqrt(sum2 / trials))});
  }
  table.print(std::cout);

  // Derivatives of the interpolant are exact derivatives of the surrogate.
  const rbf::RbfInterpolant interp(cloud, phs3, 1, data);
  const pc::Vec2 probe{0.4, 0.6};
  std::cout << "interpolant at (0.4, 0.6): value = " << interp(probe)
            << ", du/dx = " << interp.apply(rbf::LinearOp::d_dx(), probe)
            << ", Lap u = " << interp.apply(rbf::LinearOp::laplacian(), probe)
            << "\n";
  return 0;
}
