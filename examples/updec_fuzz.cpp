// updec_fuzz -- seeded, shrinking fuzz driver over the differential-oracle
// catalogue (src/check). Typical invocations:
//
//   updec_fuzz --trials 200                 # bounded randomized run
//   updec_fuzz --seconds 600 --trials 0     # wall-clock-budgeted (CI nightly)
//   updec_fuzz --list                       # print the oracle catalogue
//   updec_fuzz --oracle solver_equivalence --trials 50
//   updec_fuzz --oracle ad_vs_fd_ops --case-seed 0xdeadbeef --size 12
//   UPDEC_FUZZ_SEED=0x1234 updec_fuzz --trials 100   # replay a reported run
//
// Every run prints its master seed up front; every failure prints both a
// run-level and a minimal case-level replay command. Exit code: 0 on a clean
// run, 1 when any oracle failed.

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>

#include "check/fuzz.hpp"
#include "check/oracles.hpp"
#include "util/cli.hpp"

namespace {

/// Accepts decimal or 0x-prefixed hex (the format the driver prints).
bool parse_seed(const std::string& text, std::uint64_t* seed) {
  try {
    std::size_t consumed = 0;
    *seed = std::stoull(text, &consumed, 0);
    return consumed == text.size();
  } catch (...) {
    return false;
  }
}

int list_oracles() {
  std::cout << "oracle catalogue (" << updec::check::all_oracles().size()
            << " families):\n";
  for (const auto& o : updec::check::all_oracles()) {
    std::cout << "  " << o.name << " [" << o.min_size << ".." << o.max_size
              << "]\n      " << o.summary << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const updec::CliArgs args(argc, argv);

  if (args.flag("help")) {
    std::cout
        << "usage: updec_fuzz [--trials N] [--seconds S] [--seed S]\n"
        << "                  [--oracle NAME] [--max-size N] [--no-shrink]\n"
        << "                  [--list]\n"
        << "       updec_fuzz --oracle NAME --case-seed S --size N\n"
        << "UPDEC_FUZZ_SEED overrides the master seed (replay a printed run).\n";
    return 0;
  }
  if (args.flag("list")) return list_oracles();

  // Direct single-case replay (the command a failure report prints).
  if (args.has("case-seed")) {
    const std::string name = args.get("oracle", "");
    const updec::check::Oracle* oracle = updec::check::find_oracle(name);
    if (oracle == nullptr) {
      std::cerr << "--case-seed needs a valid --oracle name (see --list); got '"
                << name << "'\n";
      return 2;
    }
    updec::check::OracleCase c;
    if (!parse_seed(args.get("case-seed", ""), &c.seed)) {
      std::cerr << "unparseable --case-seed\n";
      return 2;
    }
    c.size = static_cast<std::size_t>(
        args.get_int("size", static_cast<int>(oracle->min_size)));
    const auto result = updec::check::replay_case(*oracle, c, std::cout);
    return result.ok || result.skipped ? 0 : 1;
  }

  updec::check::FuzzOptions options;
  options.trials = static_cast<std::size_t>(args.get_int("trials", 100));
  options.max_seconds = args.get_double("seconds", 0.0);
  options.only_oracle = args.get("oracle", "");
  options.max_size = static_cast<std::size_t>(args.get_int("max-size", 0));
  options.shrink = !args.flag("no-shrink");
  if (options.trials == 0 && options.max_seconds <= 0.0) {
    std::cerr << "refusing an unbounded run: set --trials or --seconds\n";
    return 2;
  }

  // Master seed precedence: UPDEC_FUZZ_SEED env (replay) > --seed > clock.
  bool seeded = false;
  if (const char* env = std::getenv("UPDEC_FUZZ_SEED")) {
    if (!parse_seed(env, &options.master_seed)) {
      std::cerr << "unparseable UPDEC_FUZZ_SEED='" << env << "'\n";
      return 2;
    }
    seeded = true;
  } else if (args.has("seed")) {
    if (!parse_seed(args.get("seed", ""), &options.master_seed)) {
      std::cerr << "unparseable --seed\n";
      return 2;
    }
    seeded = true;
  }
  if (!seeded) {
    // Fresh entropy for exploratory runs; the seed is printed by run_fuzz,
    // so any failure is still replayable.
    options.master_seed = static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
  }

  const updec::check::FuzzReport report =
      updec::check::run_fuzz(options, std::cout);
  return report.ok() ? 0 : 1;
}
