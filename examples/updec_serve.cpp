/// updec_serve: batch scenario-serving front end.
///
/// Reads a scenario manifest (CSV) or synthesises a homogeneous batch from
/// flags, fans the jobs across a serve::Scheduler thread pool with the
/// operator/factorisation cache enabled, and emits an aggregate JSON report.
///
///   updec_serve --manifest examples/serve_manifest.csv --out report.json
///   updec_serve --jobs 16 --grid 24 --iters 25 --strategy dal --threads 4
///   updec_serve --jobs 64 --grid 20 --shards 4   # multi-process shard pool
///
/// Manifest columns (header row required, '#' comments ignored):
///   id,problem,strategy,grid,iters,lr,deadline_ms,seed,jitter
/// problem: laplace|channel; strategy: dp|dal|fd. Empty cells keep defaults.
///
/// Environment: UPDEC_SERVE_THREADS (pool size), UPDEC_SERVE_SHARDS /
/// UPDEC_SERVE_STEAL (multi-process shard pool; --shards overrides),
/// UPDEC_SERVE_DEADLINE_MS (default per-job deadline), UPDEC_CACHE_BYTES
/// (operator cache budget), UPDEC_CACHE_DIR (persistent operator-cache
/// tier; in shard mode it doubles as the warm tier stolen jobs pay into),
/// UPDEC_SERVE_RETRIES / UPDEC_SERVE_BACKOFF_MS (retry ladder; --retries /
/// --backoff-ms override -- in shard mode the same budget also bounds
/// resubmission of jobs lost to a crashed worker).

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "rom/rom_solver.hpp"
#include "serve/scheduler.hpp"
#include "serve/shard.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace {

using namespace updec;

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::stringstream ss(line);
  std::string cell;
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  return cells;
}

std::vector<serve::Scenario> load_manifest(const std::string& path) {
  std::ifstream is(path);
  UPDEC_REQUIRE(is.good(), "cannot open manifest " + path);
  std::vector<serve::Scenario> scenarios;
  std::string line;
  bool header_seen = false;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    if (!header_seen) {  // column order is fixed; the header is a guard only
      header_seen = true;
      UPDEC_REQUIRE(line.rfind("id,", 0) == 0,
                    "manifest must start with the header "
                    "'id,problem,strategy,grid,iters,lr,deadline_ms,seed,"
                    "jitter': " + path);
      continue;
    }
    const std::vector<std::string> cells = split_csv_line(line);
    UPDEC_REQUIRE(!cells.empty() && !cells[0].empty(),
                  "manifest line " + std::to_string(line_no) +
                      ": missing scenario id");
    serve::Scenario sc;
    sc.id = cells[0];
    const auto cell = [&cells](std::size_t i) -> std::string {
      return i < cells.size() ? cells[i] : "";
    };
    if (!cell(1).empty()) sc.problem = serve::parse_problem_kind(cell(1));
    if (!cell(2).empty()) sc.strategy = serve::parse_strategy(cell(2));
    if (!cell(3).empty()) {
      const std::size_t n = std::stoul(cell(3));
      sc.grid_n = n;        // laplace resolution...
      sc.target_nodes = n;  // ...or channel cloud size; kind picks one
    }
    if (!cell(4).empty()) sc.iterations = std::stoul(cell(4));
    if (!cell(5).empty()) sc.learning_rate = std::stod(cell(5));
    if (!cell(6).empty()) sc.deadline_ms = std::stod(cell(6));
    if (!cell(7).empty()) sc.seed = std::stoull(cell(7));
    if (!cell(8).empty()) sc.control_jitter = std::stod(cell(8));
    scenarios.push_back(std::move(sc));
  }
  UPDEC_REQUIRE(!scenarios.empty(), "manifest has no scenarios: " + path);
  return scenarios;
}

std::vector<serve::Scenario> synthesise_batch(const CliArgs& args) {
  const int jobs = args.get_int("jobs", 8);
  std::vector<serve::Scenario> scenarios;
  scenarios.reserve(static_cast<std::size_t>(jobs));
  for (int i = 0; i < jobs; ++i) {
    serve::Scenario sc;
    sc.id = "job-" + std::to_string(i);
    sc.problem = serve::parse_problem_kind(args.get("problem", "laplace"));
    sc.strategy = serve::parse_strategy(args.get("strategy", "dal"));
    sc.grid_n = static_cast<std::size_t>(args.get_int("grid", 16));
    sc.target_nodes = static_cast<std::size_t>(args.get_int("nodes", 400));
    sc.iterations = static_cast<std::size_t>(args.get_int("iters", 25));
    sc.learning_rate = args.get_double("lr", 1e-2);
    sc.deadline_ms = args.get_double("deadline-ms", 0.0);
    sc.seed = static_cast<std::uint64_t>(i + 1);
    sc.control_jitter = args.get_double("jitter", 0.0);
    scenarios.push_back(std::move(sc));
  }
  return scenarios;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

void write_report(std::ostream& os,
                  const std::vector<serve::JobReport>& reports,
                  const serve::OperatorCache::Stats& cache, double seconds,
                  std::size_t threads,
                  const std::vector<serve::ShardPool::ShardInfo>& shards) {
  std::size_t succeeded = 0, cancelled = 0, expired = 0, failed = 0;
  std::size_t retries = 0, degraded = 0;
  double job_seconds = 0.0;
  for (const auto& r : reports) {
    job_seconds += r.seconds;
    retries += r.retries;
    if (r.degraded) ++degraded;
    switch (r.status) {
      case serve::JobStatus::kSucceeded: ++succeeded; break;
      case serve::JobStatus::kCancelled: ++cancelled; break;
      case serve::JobStatus::kDeadlineExpired: ++expired; break;
      default: ++failed; break;
    }
  }
  os << "{\n  \"schema\": \"updec-serve-report-v1\",\n";
  os << "  \"threads\": " << threads << ",\n";
  os << "  \"shards\": [";
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const auto& info = shards[i];
    if (i > 0) os << ", ";
    os << "{\"shard\": " << i << ", \"pid\": " << info.pid
       << ", \"jobs_done\": " << info.jobs_done
       << ", \"steals\": " << info.steals
       << ", \"restarts\": " << info.restarts << '}';
  }
  os << "],\n";
  os << "  \"wall_seconds\": " << seconds << ",\n";
  os << "  \"aggregate\": {\"jobs\": " << reports.size()
     << ", \"succeeded\": " << succeeded << ", \"cancelled\": " << cancelled
     << ", \"deadline_expired\": " << expired << ", \"failed\": " << failed
     << ", \"retries\": " << retries << ", \"degraded\": " << degraded
     << ", \"job_seconds_sum\": " << job_seconds << "},\n";
  os << "  \"cache\": {\"hits\": " << cache.hits
     << ", \"misses\": " << cache.misses
     << ", \"evictions\": " << cache.evictions
     << ", \"inflight_waits\": " << cache.inflight_waits
     << ", \"bytes\": " << cache.bytes << ", \"entries\": " << cache.entries
     << ", \"byte_budget\": " << cache.byte_budget
     << ", \"disk_hits\": " << cache.disk.hits
     << ", \"disk_misses\": " << cache.disk.misses
     << ", \"disk_writes\": " << cache.disk.writes
     << ", \"disk_corrupt\": " << cache.disk.corrupt
     << ", \"disk_errors\": " << cache.disk.errors << ",\n"
     << "    \"by_class\": {";
  bool first_class = true;
  for (const auto& [klass, cs] : cache.by_class) {
    if (!first_class) os << ", ";
    first_class = false;
    os << '"' << json_escape(klass) << "\": {\"hits\": " << cs.hits
       << ", \"misses\": " << cs.misses << ", \"evictions\": " << cs.evictions
       << ", \"bytes\": " << cs.bytes << ", \"entries\": " << cs.entries
       << '}';
  }
  os << "}},\n";
  // Process-wide ROM counters -- all zero unless UPDEC_ROM=1 routed jobs
  // through the reduced-order tier. reduced/(reduced+escalated) is the
  // fraction of PDE solves answered without touching the full operator.
  const rom::RomTotals rom_totals = rom::process_totals();
  const std::uint64_t rom_solves = rom_totals.reduced + rom_totals.escalated;
  os << "  \"rom\": {\"reduced\": " << rom_totals.reduced
     << ", \"escalated\": " << rom_totals.escalated
     << ", \"rebuilds\": " << rom_totals.rebuilds << ", \"reduced_fraction\": "
     << (rom_solves > 0
             ? static_cast<double>(rom_totals.reduced) /
                   static_cast<double>(rom_solves)
             : 0.0)
     << "},\n";
  os << "  \"jobs\": [\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const auto& r = reports[i];
    os << "    {\"id\": \"" << json_escape(r.id) << "\", \"status\": \""
       << serve::to_string(r.status) << "\", \"seconds\": " << r.seconds
       << ", \"iterations\": " << r.iterations
       << ", \"final_cost\": " << r.final_cost
       << ", \"attempts\": " << r.attempts << ", \"retries\": " << r.retries
       << ", \"degraded\": " << (r.degraded ? "true" : "false");
    if (r.degraded)
      os << ", \"achieved_tolerance\": " << r.achieved_tolerance;
    if (!r.error.empty()) os << ", \"error\": \"" << json_escape(r.error) << '"';
    os << '}' << (i + 1 < reports.size() ? "," : "") << '\n';
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  try {
    const std::string manifest = args.get("manifest", "");
    const std::vector<serve::Scenario> scenarios =
        manifest.empty() ? synthesise_batch(args) : load_manifest(manifest);

    serve::SchedulerOptions options;
    options.threads = static_cast<std::size_t>(args.get_int("threads", 0));
    // --shards overrides UPDEC_SERVE_SHARDS; absent defers to the env.
    const int shards_flag = args.get_int("shards", -1);
    if (shards_flag >= 0)
      options.shards = static_cast<std::size_t>(shards_flag);
    // Environment supplies the policy; flags override per invocation.
    serve::RetryPolicy retry = serve::retry_policy_from_env();
    retry.max_retries = static_cast<std::size_t>(
        args.get_int("retries", static_cast<int>(retry.max_retries)));
    retry.backoff_ms = args.get_double("backoff-ms", retry.backoff_ms);
    options.retry = retry;
    serve::Scheduler scheduler(options);
    if (scheduler.shard_count() > 0)
      std::cout << "updec_serve: " << scenarios.size() << " scenario(s) on "
                << scheduler.shard_count() << " shard worker(s), stealing "
                << (scheduler.shards()->stealing() ? "on" : "off") << "\n";
    else
      std::cout << "updec_serve: " << scenarios.size() << " scenario(s) on "
                << scheduler.thread_count() << " thread(s), cache budget "
                << scheduler.cache().byte_budget() << " bytes\n";

    const Stopwatch watch;
    for (const serve::Scenario& sc : scenarios)
      (void)scheduler.submit(sc);
    const std::vector<serve::JobReport> reports = scheduler.wait_all();
    const double seconds = watch.seconds();

    for (const auto& r : reports)
      std::cout << "  " << r.id << ": " << serve::to_string(r.status) << " in "
                << r.seconds << " s, " << r.iterations << " iters, J = "
                << r.final_cost
                << (r.retries > 0
                        ? ", " + std::to_string(r.retries) + " retr" +
                              (r.retries == 1 ? "y" : "ies")
                        : "")
                << (r.degraded ? ", degraded" : "")
                << (r.error.empty() ? "" : " (" + r.error + ")") << "\n";

    // Merged view: in shard mode cache_stats() folds every worker's cache
    // traffic into the parent-side numbers; shard_infos() adds the per-shard
    // breakdown (jobs served, steals, crash restarts).
    const serve::OperatorCache::Stats cache_stats = scheduler.cache_stats();
    std::vector<serve::ShardPool::ShardInfo> shard_infos;
    if (scheduler.shards() != nullptr) {
      shard_infos = scheduler.shards()->shard_infos();
      for (std::size_t i = 0; i < shard_infos.size(); ++i)
        std::cout << "  shard " << i << ": pid " << shard_infos[i].pid << ", "
                  << shard_infos[i].jobs_done << " job(s), "
                  << shard_infos[i].steals << " steal(s), "
                  << shard_infos[i].restarts << " restart(s)\n";
    }

    const std::string out = args.get("out", "");
    if (out.empty()) {
      write_report(std::cout, reports, cache_stats, seconds,
                   scheduler.thread_count(), shard_infos);
    } else {
      std::ofstream os(out);
      UPDEC_REQUIRE(os.good(), "cannot open report file " + out);
      write_report(os, reports, cache_stats, seconds,
                   scheduler.thread_count(), shard_infos);
      std::cout << "report: wrote " << out << "\n";
    }

    // Non-zero exit iff anything failed outright (cancel/deadline are
    // deliberate outcomes, not serving errors).
    for (const auto& r : reports)
      if (r.status == serve::JobStatus::kFailed) return 1;
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "updec_serve: " << e.what() << "\n";
    return 1;
  }
}
