// PINN example: train a physics-informed neural network for the Laplace
// control problem (section 2.3), watch the loss components, and compare the
// learnt control against the analytic minimiser and against an RBF solve.
//
// Run:  ./pinn_laplace [--epochs 600] [--omega 0.1] [--hidden 30]

#include <iostream>

#include "control/laplace_problem.hpp"
#include "control/pinn_laplace.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace updec;
  const CliArgs args(argc, argv);

  control::PinnConfig config;
  const auto width = static_cast<std::size_t>(args.get_int("hidden", 30));
  config.u_hidden = {width, width, width};  // the paper's 3x30 by default
  config.epochs = static_cast<std::size_t>(args.get_int("epochs", 600));
  config.learning_rate = args.get_double("lr", 1e-3);
  config.omega = args.get_double("omega", 0.1);  // the paper's omega*
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  control::LaplacePinn pinn(config);
  std::cout << "solution network: " << pinn.u_net().summary() << "\n"
            << "control network:  " << pinn.c_net().summary() << "\n"
            << "training " << config.epochs << " epochs (alternating u/c "
            << "updates, omega = " << config.omega << ")...\n";
  const Stopwatch watch;
  pinn.train();
  std::cout << "trained in " << watch.seconds() << " s\n";

  const auto& history = pinn.history();
  TextTable losses("loss components over training");
  losses.set_header({"epoch", "total", "PDE residual", "boundary", "J term"});
  for (std::size_t e = 0; e < history.total_loss.size();
       e += std::max<std::size_t>(1, history.total_loss.size() / 10))
    losses.add_row({std::to_string(e), TextTable::sci(history.total_loss[e]),
                    TextTable::sci(history.pde_loss[e]),
                    TextTable::sci(history.boundary_loss[e]),
                    TextTable::sci(history.cost_term[e])});
  losses.print(std::cout);

  // Judge the learnt control on the RBF solver (the honest metric).
  const rbf::PolyharmonicSpline kernel(3);
  const control::LaplaceControlProblem problem(24, kernel);
  const auto xs = problem.solver().control_x();
  const la::Vector c = pinn.control_at(xs);
  TextTable compare("learnt control vs analytic minimiser");
  compare.set_header({"x", "c_theta(x)", "c*(x)"});
  for (std::size_t i = 0; i < xs.size();
       i += std::max<std::size_t>(1, xs.size() / 10))
    compare.add_row({TextTable::num(xs[i], 3), TextTable::num(c[i], 4),
                     TextTable::num(
                         pde::LaplaceSolver::analytic_control(xs[i]), 4)});
  compare.print(std::cout);
  std::cout << "J(c_theta) via the RBF solver: " << problem.cost(c) << "\n"
            << "network-side J estimate:       " << pinn.network_cost()
            << "\nPDE residual of u_theta:       " << pinn.pde_residual()
            << "\n";
  return 0;
}
