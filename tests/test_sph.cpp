// Tests for the SPH substrate (the paper's named future-work method):
// kernel identities, lattice density, conservation laws and Taylor-Green
// vortex decay.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "sph/sph.hpp"
#include "util/error.hpp"

namespace {

using updec::sph::CubicSplineKernel;
using updec::sph::Particles;
using updec::sph::SphConfig;
using updec::sph::SphSolver;

TEST(SphKernel, NormalisesToOneInTwoDimensions) {
  const CubicSplineKernel kernel(0.1);
  // Radial quadrature of 2 pi r W(r) over the support.
  const std::size_t nq = 4000;
  const double dr = kernel.support() / static_cast<double>(nq);
  double integral = 0.0;
  for (std::size_t i = 0; i < nq; ++i) {
    const double r = (static_cast<double>(i) + 0.5) * dr;
    integral += 2.0 * std::numbers::pi * r * kernel.w(r) * dr;
  }
  EXPECT_NEAR(integral, 1.0, 1e-4);
}

TEST(SphKernel, DerivativeMatchesFiniteDifferences) {
  const CubicSplineKernel kernel(0.2);
  const double h = 1e-7;
  for (const double r : {0.05, 0.15, 0.25, 0.35}) {
    const double fd = (kernel.w(r + h) - kernel.w(r - h)) / (2.0 * h);
    EXPECT_NEAR(kernel.dw(r), fd, 1e-5);
  }
  // Compact support and non-positive slope.
  EXPECT_DOUBLE_EQ(kernel.w(0.5), 0.0);
  EXPECT_DOUBLE_EQ(kernel.dw(0.5), 0.0);
  EXPECT_LE(kernel.dw(0.1), 0.0);
}

TEST(SphLattice, DensitySummationRecoversReferenceDensity) {
  SphConfig config;
  const std::size_t n = 20;
  Particles particles = updec::sph::make_lattice(n, config);
  const SphSolver solver(config, config.box / static_cast<double>(n));
  solver.update_density_pressure(particles);
  for (std::size_t i = 0; i < particles.size(); ++i) {
    EXPECT_NEAR(particles.rho[i], config.rho0, 0.02 * config.rho0);
    EXPECT_NEAR(particles.p[i], 0.0, 0.05 * config.c0 * config.c0);
  }
}

TEST(SphLattice, TotalMassMatchesBox) {
  SphConfig config;
  config.rho0 = 2.5;
  const Particles particles = updec::sph::make_lattice(16, config);
  double mass = 0.0;
  for (const double m : particles.m) mass += m;
  EXPECT_NEAR(mass, config.rho0 * config.box * config.box, 1e-12);
}

TEST(SphTaylorGreen, MomentumIsConserved) {
  SphConfig config;
  const std::size_t n = 16;
  Particles particles = updec::sph::make_lattice(n, config);
  updec::sph::set_taylor_green(particles, config.box, 0.5);
  const SphSolver solver(config, config.box / static_cast<double>(n));
  const auto [px0, py0] = SphSolver::momentum(particles);
  solver.advance(particles, 200);
  const auto [px, py] = SphSolver::momentum(particles);
  // Pairwise-symmetric forces conserve linear momentum to round-off.
  EXPECT_NEAR(px, px0, 1e-9);
  EXPECT_NEAR(py, py0, 1e-9);
}

TEST(SphTaylorGreen, KineticEnergyDecaysAndScalesWithViscosity) {
  // At coarse WCSPH resolutions numerical (acoustic) dissipation adds to
  // the physical rate, so the assertions are comparative: energy decays
  // strongly, never blows up, and decays *faster* at higher nu over a
  // horizon where the viscous term dominates.
  const auto final_energy_ratio = [](double nu, std::size_t steps) {
    SphConfig config;
    config.nu = nu;
    config.dt = 1e-3;  // fixed dt so the horizons match across nu
    const std::size_t n = 20;
    Particles particles = updec::sph::make_lattice(n, config);
    updec::sph::set_taylor_green(particles, config.box, 0.5);
    const SphSolver solver(config, config.box / static_cast<double>(n));
    const double e0 = SphSolver::kinetic_energy(particles);
    solver.advance(particles, steps);
    const double e = SphSolver::kinetic_energy(particles);
    EXPECT_TRUE(std::isfinite(e));
    return e / e0;
  };
  const double low = final_energy_ratio(0.01, 100);
  const double high = final_energy_ratio(0.1, 100);
  EXPECT_LT(high, low);   // more viscosity, faster decay
  EXPECT_LT(high, 0.9);   // visible dissipation
  EXPECT_GT(low, 1e-4);   // no collapse to zero on this horizon
  EXPECT_LT(low, 1.01);   // energy never grows
}

TEST(SphSolver, ParticlesStayInTheBoxAndFinite) {
  SphConfig config;
  const std::size_t n = 14;
  Particles particles = updec::sph::make_lattice(n, config);
  updec::sph::set_taylor_green(particles, config.box, 1.0);
  const SphSolver solver(config, config.box / static_cast<double>(n));
  solver.advance(particles, 300);
  for (std::size_t i = 0; i < particles.size(); ++i) {
    ASSERT_TRUE(std::isfinite(particles.x[i]));
    ASSERT_TRUE(std::isfinite(particles.vx[i]));
    EXPECT_GE(particles.x[i], 0.0);
    EXPECT_LT(particles.x[i], config.box);
    EXPECT_GE(particles.y[i], 0.0);
    EXPECT_LT(particles.y[i], config.box);
  }
}

TEST(SphSolver, AutoTimeStepRespectsBounds) {
  SphConfig config;
  const SphSolver solver(config, 0.05);
  EXPECT_GT(solver.dt(), 0.0);
  EXPECT_LE(solver.dt(), 0.25 * solver.kernel().h() / config.c0 + 1e-15);
}

TEST(SphSolver, RejectsBadParameters) {
  SphConfig config;
  EXPECT_THROW(SphSolver(config, 0.0), updec::Error);
  EXPECT_THROW(SphSolver(config, 2.0), updec::Error);
  EXPECT_THROW(CubicSplineKernel(-0.1), updec::Error);
  EXPECT_THROW(updec::sph::make_lattice(2, config), updec::Error);
}

}  // namespace
