// Unit and property tests for CSR sparse matrices and Krylov solvers.
#include <gtest/gtest.h>

#include <cmath>

#include "la/blas.hpp"
#include "la/iterative.hpp"
#include "la/lu.hpp"
#include "la/sparse.hpp"
#include "util/rng.hpp"

namespace {

using updec::la::CsrMatrix;
using updec::la::IterativeOptions;
using updec::la::Matrix;
using updec::la::SparseBuilder;
using updec::la::Vector;

/// 1-D Poisson matrix (tridiagonal, SPD) of size n.
CsrMatrix poisson_1d(std::size_t n) {
  SparseBuilder b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    b.add(i, i, 2.0);
    if (i > 0) b.add(i, i - 1, -1.0);
    if (i + 1 < n) b.add(i, i + 1, -1.0);
  }
  return CsrMatrix(b);
}

/// Nonsymmetric convection-diffusion-like matrix.
CsrMatrix convection_diffusion_1d(std::size_t n, double peclet) {
  SparseBuilder b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    b.add(i, i, 2.0 + 0.1);
    if (i > 0) b.add(i, i - 1, -1.0 - peclet);
    if (i + 1 < n) b.add(i, i + 1, -1.0 + peclet);
  }
  return CsrMatrix(b);
}

TEST(Csr, BuildSumsDuplicates) {
  SparseBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(0, 0, 2.5);
  b.add(1, 0, -1.0);
  const CsrMatrix a(b);
  EXPECT_EQ(a.nnz(), 2u);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 3.5);
  EXPECT_DOUBLE_EQ(a.at(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 0.0);
}

TEST(Csr, SpmvMatchesDense) {
  updec::Rng rng(4);
  SparseBuilder b(8, 6);
  for (int k = 0; k < 20; ++k)
    b.add(rng.uniform_index(8), rng.uniform_index(6), rng.normal());
  const CsrMatrix a(b);
  const Matrix ad = a.to_dense();
  Vector x(6);
  for (auto& v : x) v = rng.normal();
  const Vector y_sparse = a.apply(x);
  const Vector y_dense = updec::la::matvec(ad, x);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(y_sparse[i], y_dense[i], 1e-13);
}

TEST(Csr, SpmvTransposeMatchesTransposedCopy) {
  updec::Rng rng(14);
  SparseBuilder b(7, 9);
  for (int k = 0; k < 25; ++k)
    b.add(rng.uniform_index(7), rng.uniform_index(9), rng.normal());
  const CsrMatrix a(b);
  Vector x(7);
  for (auto& v : x) v = rng.normal();
  const Vector y1 = a.apply_transpose(x);
  const Vector y2 = a.transposed().apply(x);
  for (std::size_t j = 0; j < 9; ++j) EXPECT_NEAR(y1[j], y2[j], 1e-13);
}

TEST(Csr, DiagonalExtraction) {
  const CsrMatrix a = poisson_1d(5);
  const Vector d = a.diagonal();
  for (std::size_t i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(d[i], 2.0);
}

TEST(Csr, SpmvAccumulatesWithBeta) {
  const CsrMatrix a = poisson_1d(3);
  const Vector x{1.0, 1.0, 1.0};
  Vector y{10.0, 10.0, 10.0};
  a.spmv(1.0, x, 1.0, y);
  EXPECT_DOUBLE_EQ(y[0], 11.0);  // 2 - 1 = 1, +10
  EXPECT_DOUBLE_EQ(y[1], 10.0);  // -1 + 2 - 1 = 0, +10
}

TEST(IterativeCg, SolvesPoissonToTightResidual) {
  const std::size_t n = 100;
  const CsrMatrix a = poisson_1d(n);
  Vector b(n, 1.0);
  const auto res = updec::la::cg(a, b);
  EXPECT_TRUE(res.converged);
  Vector r = b;
  a.spmv(-1.0, res.x, 1.0, r);
  EXPECT_LT(updec::la::nrm2(r), 1e-8);
}

TEST(IterativeCg, JacobiPreconditionerReducesIterations) {
  const std::size_t n = 200;
  // Badly scaled SPD system: D^{1/2} Poisson D^{1/2}.
  SparseBuilder sb(n, n);
  const CsrMatrix p = poisson_1d(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double di = 1.0 + 100.0 * static_cast<double>(i) / n;
    for (std::size_t k = p.row_ptr()[i]; k < p.row_ptr()[i + 1]; ++k) {
      const std::size_t j = p.col_idx()[k];
      const double dj = 1.0 + 100.0 * static_cast<double>(j) / n;
      sb.add(i, j, std::sqrt(di) * p.values()[k] * std::sqrt(dj));
    }
  }
  const CsrMatrix a(sb);
  const Vector b(n, 1.0);
  IterativeOptions opts;
  opts.max_iterations = 5000;
  const auto plain = updec::la::cg(a, b, opts);
  const auto precond =
      updec::la::cg(a, b, opts, updec::la::jacobi_preconditioner(a));
  EXPECT_TRUE(plain.converged);
  EXPECT_TRUE(precond.converged);
  EXPECT_LE(precond.iterations, plain.iterations);
}

TEST(IterativeBicgstab, SolvesNonsymmetricSystem) {
  const std::size_t n = 150;
  const CsrMatrix a = convection_diffusion_1d(n, 0.4);
  Vector b(n, 1.0);
  const auto res = updec::la::bicgstab(a, b);
  EXPECT_TRUE(res.converged);
  Vector r = b;
  a.spmv(-1.0, res.x, 1.0, r);
  EXPECT_LT(updec::la::nrm2(r), 1e-8);
}

TEST(IterativeGmres, SolvesNonsymmetricSystem) {
  const std::size_t n = 150;
  const CsrMatrix a = convection_diffusion_1d(n, 0.7);
  Vector b(n);
  updec::Rng rng(31);
  for (auto& v : b) v = rng.normal();
  const auto res = updec::la::gmres(a, b);
  EXPECT_TRUE(res.converged);
  Vector r = b;
  a.spmv(-1.0, res.x, 1.0, r);
  EXPECT_LT(updec::la::nrm2(r), 1e-7);
}

TEST(IterativeGmres, MatchesDirectSolve) {
  const std::size_t n = 40;
  const CsrMatrix a = convection_diffusion_1d(n, 0.3);
  Vector b(n, 1.0);
  const auto res = updec::la::gmres(a, b);
  const Vector x_direct = updec::la::solve(a.to_dense(), b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(res.x[i], x_direct[i], 1e-6);
}

TEST(Ilu0, ExactForTriangularPattern) {
  // ILU(0) on a matrix whose LU factors fit the pattern is an exact solve.
  const CsrMatrix a = poisson_1d(30);
  const updec::la::Ilu0 ilu(a);
  Vector b(30, 1.0);
  Vector z(30);
  ilu.apply(b, z);
  // Tridiagonal: ILU(0) == full LU, so A z == b.
  Vector r = b;
  a.spmv(-1.0, z, 1.0, r);
  EXPECT_LT(updec::la::nrm2(r), 1e-10);
}

TEST(Ilu0, AcceleratesGmres) {
  const std::size_t n = 300;
  const CsrMatrix a = convection_diffusion_1d(n, 0.8);
  const Vector b(n, 1.0);
  IterativeOptions opts;
  opts.max_iterations = 2000;
  const auto plain = updec::la::gmres(a, b, opts);
  const updec::la::Ilu0 ilu(a);
  const auto pre = updec::la::gmres(a, b, opts, ilu.as_preconditioner());
  EXPECT_TRUE(pre.converged);
  EXPECT_LT(pre.iterations, plain.iterations);
}

TEST(Iterative, WarmStartConvergesImmediately) {
  const std::size_t n = 50;
  const CsrMatrix a = poisson_1d(n);
  const Vector b(n, 1.0);
  const auto first = updec::la::cg(a, b);
  const auto warm = updec::la::cg(a, b, {}, updec::la::identity_preconditioner(),
                                  first.x);
  EXPECT_TRUE(warm.converged);
  EXPECT_LE(warm.iterations, 2u);
}

// Property sweep over Krylov solvers: all three agree on an SPD system.
class KrylovAgreement : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KrylovAgreement, AllSolversAgree) {
  const std::size_t n = GetParam();
  const CsrMatrix a = poisson_1d(n);
  Vector b(n);
  updec::Rng rng(n);
  for (auto& v : b) v = rng.normal();
  IterativeOptions opts;
  opts.max_iterations = 10 * n;
  opts.gmres_restart = n;  // unrestarted: restarts stagnate on 1-D Poisson
  const auto x_cg = updec::la::cg(a, b, opts);
  const auto x_bi = updec::la::bicgstab(a, b, opts);
  const auto x_gm = updec::la::gmres(a, b, opts);
  ASSERT_TRUE(x_cg.converged);
  ASSERT_TRUE(x_bi.converged);
  ASSERT_TRUE(x_gm.converged);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x_cg.x[i], x_bi.x[i], 1e-5);
    EXPECT_NEAR(x_cg.x[i], x_gm.x[i], 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, KrylovAgreement,
                         ::testing::Values(5, 16, 64, 128));

}  // namespace
