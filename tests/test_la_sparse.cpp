// Unit and property tests for CSR sparse matrices and Krylov solvers.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#ifdef UPDEC_HAVE_OPENMP
#include <omp.h>
#endif

#include "la/blas.hpp"
#include "la/iterative.hpp"
#include "la/lu.hpp"
#include "la/robust_solve.hpp"
#include "la/sparse.hpp"
#include "util/rng.hpp"

namespace {

using updec::la::CsrMatrix;
using updec::la::IterativeOptions;
using updec::la::Matrix;
using updec::la::SparseBuilder;
using updec::la::Vector;

/// 1-D Poisson matrix (tridiagonal, SPD) of size n.
CsrMatrix poisson_1d(std::size_t n) {
  SparseBuilder b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    b.add(i, i, 2.0);
    if (i > 0) b.add(i, i - 1, -1.0);
    if (i + 1 < n) b.add(i, i + 1, -1.0);
  }
  return CsrMatrix(b);
}

/// Nonsymmetric convection-diffusion-like matrix.
CsrMatrix convection_diffusion_1d(std::size_t n, double peclet) {
  SparseBuilder b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    b.add(i, i, 2.0 + 0.1);
    if (i > 0) b.add(i, i - 1, -1.0 - peclet);
    if (i + 1 < n) b.add(i, i + 1, -1.0 + peclet);
  }
  return CsrMatrix(b);
}

TEST(Csr, BuildSumsDuplicates) {
  SparseBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(0, 0, 2.5);
  b.add(1, 0, -1.0);
  const CsrMatrix a(b);
  EXPECT_EQ(a.nnz(), 2u);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 3.5);
  EXPECT_DOUBLE_EQ(a.at(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 0.0);
}

TEST(Csr, SpmvMatchesDense) {
  updec::Rng rng(4);
  SparseBuilder b(8, 6);
  for (int k = 0; k < 20; ++k)
    b.add(rng.uniform_index(8), rng.uniform_index(6), rng.normal());
  const CsrMatrix a(b);
  const Matrix ad = a.to_dense();
  Vector x(6);
  for (auto& v : x) v = rng.normal();
  const Vector y_sparse = a.apply(x);
  const Vector y_dense = updec::la::matvec(ad, x);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(y_sparse[i], y_dense[i], 1e-13);
}

TEST(Csr, SpmvTransposeMatchesTransposedCopy) {
  updec::Rng rng(14);
  SparseBuilder b(7, 9);
  for (int k = 0; k < 25; ++k)
    b.add(rng.uniform_index(7), rng.uniform_index(9), rng.normal());
  const CsrMatrix a(b);
  Vector x(7);
  for (auto& v : x) v = rng.normal();
  const Vector y1 = a.apply_transpose(x);
  const Vector y2 = a.transposed().apply(x);
  for (std::size_t j = 0; j < 9; ++j) EXPECT_NEAR(y1[j], y2[j], 1e-13);
}

TEST(Csr, DiagonalExtraction) {
  const CsrMatrix a = poisson_1d(5);
  const Vector d = a.diagonal();
  for (std::size_t i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(d[i], 2.0);
}

TEST(Csr, SpmvAccumulatesWithBeta) {
  const CsrMatrix a = poisson_1d(3);
  const Vector x{1.0, 1.0, 1.0};
  Vector y{10.0, 10.0, 10.0};
  a.spmv(1.0, x, 1.0, y);
  EXPECT_DOUBLE_EQ(y[0], 11.0);  // 2 - 1 = 1, +10
  EXPECT_DOUBLE_EQ(y[1], 10.0);  // -1 + 2 - 1 = 0, +10
}

TEST(IterativeCg, SolvesPoissonToTightResidual) {
  const std::size_t n = 100;
  const CsrMatrix a = poisson_1d(n);
  Vector b(n, 1.0);
  const auto res = updec::la::cg(a, b);
  EXPECT_TRUE(res.converged);
  Vector r = b;
  a.spmv(-1.0, res.x, 1.0, r);
  EXPECT_LT(updec::la::nrm2(r), 1e-8);
}

TEST(IterativeCg, JacobiPreconditionerReducesIterations) {
  const std::size_t n = 200;
  // Badly scaled SPD system: D^{1/2} Poisson D^{1/2}.
  SparseBuilder sb(n, n);
  const CsrMatrix p = poisson_1d(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double di = 1.0 + 100.0 * static_cast<double>(i) / n;
    for (std::size_t k = p.row_ptr()[i]; k < p.row_ptr()[i + 1]; ++k) {
      const std::size_t j = p.col_idx()[k];
      const double dj = 1.0 + 100.0 * static_cast<double>(j) / n;
      sb.add(i, j, std::sqrt(di) * p.values()[k] * std::sqrt(dj));
    }
  }
  const CsrMatrix a(sb);
  const Vector b(n, 1.0);
  IterativeOptions opts;
  opts.max_iterations = 5000;
  const auto plain = updec::la::cg(a, b, opts);
  const auto precond =
      updec::la::cg(a, b, opts, updec::la::jacobi_preconditioner(a));
  EXPECT_TRUE(plain.converged);
  EXPECT_TRUE(precond.converged);
  EXPECT_LE(precond.iterations, plain.iterations);
}

TEST(IterativeBicgstab, SolvesNonsymmetricSystem) {
  const std::size_t n = 150;
  const CsrMatrix a = convection_diffusion_1d(n, 0.4);
  Vector b(n, 1.0);
  const auto res = updec::la::bicgstab(a, b);
  EXPECT_TRUE(res.converged);
  Vector r = b;
  a.spmv(-1.0, res.x, 1.0, r);
  EXPECT_LT(updec::la::nrm2(r), 1e-8);
}

TEST(IterativeGmres, SolvesNonsymmetricSystem) {
  const std::size_t n = 150;
  const CsrMatrix a = convection_diffusion_1d(n, 0.7);
  Vector b(n);
  updec::Rng rng(31);
  for (auto& v : b) v = rng.normal();
  const auto res = updec::la::gmres(a, b);
  EXPECT_TRUE(res.converged);
  Vector r = b;
  a.spmv(-1.0, res.x, 1.0, r);
  EXPECT_LT(updec::la::nrm2(r), 1e-7);
}

TEST(IterativeGmres, MatchesDirectSolve) {
  const std::size_t n = 40;
  const CsrMatrix a = convection_diffusion_1d(n, 0.3);
  Vector b(n, 1.0);
  const auto res = updec::la::gmres(a, b);
  const Vector x_direct = updec::la::solve(a.to_dense(), b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(res.x[i], x_direct[i], 1e-6);
}

TEST(Ilu0, ExactForTriangularPattern) {
  // ILU(0) on a matrix whose LU factors fit the pattern is an exact solve.
  const CsrMatrix a = poisson_1d(30);
  const updec::la::Ilu0 ilu(a);
  Vector b(30, 1.0);
  Vector z(30);
  ilu.apply(b, z);
  // Tridiagonal: ILU(0) == full LU, so A z == b.
  Vector r = b;
  a.spmv(-1.0, z, 1.0, r);
  EXPECT_LT(updec::la::nrm2(r), 1e-10);
}

TEST(Ilu0, AcceleratesGmres) {
  const std::size_t n = 300;
  const CsrMatrix a = convection_diffusion_1d(n, 0.8);
  const Vector b(n, 1.0);
  IterativeOptions opts;
  opts.max_iterations = 2000;
  const auto plain = updec::la::gmres(a, b, opts);
  const updec::la::Ilu0 ilu(a);
  const auto pre = updec::la::gmres(a, b, opts, ilu.as_preconditioner());
  EXPECT_TRUE(pre.converged);
  EXPECT_LT(pre.iterations, plain.iterations);
}

TEST(Iterative, WarmStartConvergesImmediately) {
  const std::size_t n = 50;
  const CsrMatrix a = poisson_1d(n);
  const Vector b(n, 1.0);
  const auto first = updec::la::cg(a, b);
  const auto warm = updec::la::cg(a, b, {}, updec::la::identity_preconditioner(),
                                  first.x);
  EXPECT_TRUE(warm.converged);
  EXPECT_LE(warm.iterations, 2u);
}

// Property sweep over Krylov solvers: all three agree on an SPD system.
class KrylovAgreement : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KrylovAgreement, AllSolversAgree) {
  const std::size_t n = GetParam();
  const CsrMatrix a = poisson_1d(n);
  Vector b(n);
  updec::Rng rng(n);
  for (auto& v : b) v = rng.normal();
  IterativeOptions opts;
  opts.max_iterations = 10 * n;
  opts.gmres_restart = n;  // unrestarted: restarts stagnate on 1-D Poisson
  const auto x_cg = updec::la::cg(a, b, opts);
  const auto x_bi = updec::la::bicgstab(a, b, opts);
  const auto x_gm = updec::la::gmres(a, b, opts);
  ASSERT_TRUE(x_cg.converged);
  ASSERT_TRUE(x_bi.converged);
  ASSERT_TRUE(x_gm.converged);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x_cg.x[i], x_bi.x[i], 1e-5);
    EXPECT_NEAR(x_cg.x[i], x_gm.x[i], 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, KrylovAgreement,
                         ::testing::Values(5, 16, 64, 128));

TEST(IterativeBicgstab, BreakdownReportsActualIterationCount) {
  // Skew-symmetric operator: r_hat . (A r_hat) == 0, so BiCGSTAB breaks down
  // on its very first step (rhat_v == 0). Regression: every breakdown path
  // used to fall through to res.iterations = opts.max_iterations, reporting
  // a step-0 breakdown as a full-budget Krylov run.
  SparseBuilder builder(2, 2);
  builder.add(0, 1, 1.0);
  builder.add(1, 0, -1.0);
  const CsrMatrix a(builder);
  const Vector b{1.0, 0.0};
  IterativeOptions opts;
  opts.max_iterations = 500;
  const auto res = updec::la::bicgstab(a, b, opts);
  EXPECT_TRUE(res.breakdown);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.iterations, 0u);  // no update step completed
}

TEST(IterativeBicgstab, ConvergedSolveReportsNoBreakdown) {
  const CsrMatrix a = poisson_1d(40);
  const Vector b(40, 1.0);
  const auto res = updec::la::bicgstab(a, b);
  EXPECT_TRUE(res.converged);
  EXPECT_FALSE(res.breakdown);
  EXPECT_LT(res.iterations, IterativeOptions{}.max_iterations);
}

TEST(Ilu0, CopiesShareFactors) {
  // Regression: as_preconditioner() used to deep-copy the CSR factors into
  // the closure (and copies of Ilu0 duplicated them again), doubling the
  // resident bytes of every cached preconditioner. Factors are now shared.
  const updec::la::Ilu0 original(poisson_1d(25));
  const updec::la::Ilu0 copy = original;
  EXPECT_EQ(&original.factors(), &copy.factors());

  // The closure keeps the shared factors alive past the source object.
  updec::la::Preconditioner precond;
  {
    const updec::la::Ilu0 temporary(poisson_1d(25));
    precond = temporary.as_preconditioner();
  }
  const Vector r(25, 1.0);
  Vector z(25);
  precond(r, z);
  for (const double v : z.std()) EXPECT_TRUE(std::isfinite(v));
}

TEST(CsrProduct, MultiplyMatchesDenseGemm) {
  updec::Rng rng(91);
  SparseBuilder ab(12, 12), bb(12, 12);
  for (std::size_t k = 0; k < 60; ++k) {
    ab.add(rng.uniform_index(12), rng.uniform_index(12), rng.normal());
    bb.add(rng.uniform_index(12), rng.uniform_index(12), rng.normal());
  }
  const CsrMatrix a(ab), b(bb);
  const CsrMatrix c = updec::la::multiply(a, b);
  const Matrix dense =
      updec::la::matmul(a.to_dense(), b.to_dense());
  for (std::size_t i = 0; i < 12; ++i)
    for (std::size_t j = 0; j < 12; ++j)
      EXPECT_NEAR(c.at(i, j), dense(i, j), 1e-12);
}

TEST(CsrProduct, RowMaskLeavesRowsStructurallyEmpty) {
  const CsrMatrix a = poisson_1d(8);
  std::vector<std::uint8_t> mask(8, 1);
  mask[0] = mask[7] = 0;
  const CsrMatrix c = updec::la::multiply(a, a, &mask);
  EXPECT_EQ(c.row_ptr()[1], c.row_ptr()[0]);  // row 0 empty
  EXPECT_EQ(c.row_ptr()[8], c.row_ptr()[7]);  // row 7 empty
  const Matrix dense = updec::la::matmul(a.to_dense(), a.to_dense());
  for (std::size_t i = 1; i < 7; ++i)
    for (std::size_t j = 0; j < 8; ++j)
      EXPECT_NEAR(c.at(i, j), dense(i, j), 1e-12);
}

TEST(CsrSum, AddMatchesDense) {
  const CsrMatrix a = poisson_1d(10);
  const CsrMatrix b = convection_diffusion_1d(10, 0.3);
  const CsrMatrix c = updec::la::add(2.0, a, -0.5, b);
  for (std::size_t i = 0; i < 10; ++i)
    for (std::size_t j = 0; j < 10; ++j)
      EXPECT_NEAR(c.at(i, j), 2.0 * a.at(i, j) - 0.5 * b.at(i, j), 1e-14);
}

TEST(Csr, ApplyManyMatchesColumnwiseSpmv) {
  const CsrMatrix a = convection_diffusion_1d(15, 0.2);
  updec::Rng rng(7);
  Matrix x(15, 4);
  for (std::size_t i = 0; i < 15; ++i)
    for (std::size_t j = 0; j < 4; ++j) x(i, j) = rng.normal();
  const Matrix y = a.apply_many(x);
  Vector col(15), ref(15);
  for (std::size_t j = 0; j < 4; ++j) {
    for (std::size_t i = 0; i < 15; ++i) col[i] = x(i, j);
    a.spmv(1.0, col, 0.0, ref);
    for (std::size_t i = 0; i < 15; ++i) EXPECT_NEAR(y(i, j), ref[i], 1e-13);
  }
}

// ---- SparseFirstSolver ----------------------------------------------------

TEST(SparseFirst, ForcedModesAgreeWithDenseSolve) {
  const std::size_t n = 80;
  const CsrMatrix a = convection_diffusion_1d(n, 0.4);
  Vector b(n);
  updec::Rng rng(17);
  for (auto& v : b) v = rng.normal();
  const Vector x_ref = updec::la::solve(a.to_dense(), b);

  updec::la::RobustSolveOptions options;
  options.sparse_min_n = 0;  // force CSR + ILU-Krylov
  const updec::la::SparseFirstSolver sparse(a, options);
  EXPECT_TRUE(sparse.sparse_path());
  updec::la::SolveReport report;
  const Vector x_sparse = sparse.solve(b, &report);
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.method, updec::la::SolveMethod::kIterative);

  options.sparse_min_n = n + 1;  // force eager dense LU
  const updec::la::SparseFirstSolver dense(a, options);
  EXPECT_FALSE(dense.sparse_path());
  const Vector x_dense = dense.solve(b, &report);
  EXPECT_TRUE(report.converged);

  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x_sparse[i], x_ref[i], 1e-7);
    EXPECT_NEAR(x_dense[i], x_ref[i], 1e-10);
  }
}

TEST(SparseFirst, TransposeSolveMatchesExplicitTranspose) {
  const std::size_t n = 60;
  const CsrMatrix a = convection_diffusion_1d(n, 0.5);
  Vector b(n);
  updec::Rng rng(23);
  for (auto& v : b) v = rng.normal();

  Matrix at(n, n);
  const Matrix ad = a.to_dense();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) at(i, j) = ad(j, i);
  const Vector x_ref = updec::la::solve(at, b);

  for (const std::size_t threshold : {std::size_t{0}, n + 1}) {
    updec::la::RobustSolveOptions options;
    options.sparse_min_n = threshold;
    const updec::la::SparseFirstSolver solver(a, options);
    updec::la::SolveReport report;
    const Vector x = solver.solve_transpose(b, &report);
    EXPECT_TRUE(report.converged);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_ref[i], 1e-7);
  }
}

TEST(SparseFirst, SolveManyMatchesColumnwiseSolve) {
  const std::size_t n = 48;
  const CsrMatrix a = convection_diffusion_1d(n, 0.25);
  updec::Rng rng(41);
  Matrix b(n, 5);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < 5; ++j) b(i, j) = rng.normal();

  for (const std::size_t threshold : {std::size_t{0}, n + 1}) {
    updec::la::RobustSolveOptions options;
    options.sparse_min_n = threshold;
    const updec::la::SparseFirstSolver solver(a, options);
    updec::la::SolveReport report;
    const Matrix x = solver.solve_many(b, &report);
    EXPECT_TRUE(report.converged);
    Vector col(n);
    for (std::size_t j = 0; j < 5; ++j) {
      for (std::size_t i = 0; i < n; ++i) col[i] = b(i, j);
      const Vector ref = solver.solve(col);
      for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x(i, j), ref[i], 1e-8);
    }
  }
}

// ---- level-scheduled / mixed-precision ILU(0) -----------------------------

/// 5-point Laplacian on an m-by-m grid (n = m^2). Unlike the tridiagonal
/// helpers, its triangular sweeps have genuine wavefront parallelism: the
/// level sets are the grid anti-diagonals (2m - 1 of them, up to m rows
/// each), so the schedule actually groups independent rows.
CsrMatrix poisson_2d(std::size_t m) {
  const std::size_t n = m * m;
  SparseBuilder b(n, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      const std::size_t r = i * m + j;
      b.add(r, r, 4.0);
      if (j > 0) b.add(r, r - 1, -1.0);
      if (j + 1 < m) b.add(r, r + 1, -1.0);
      if (i > 0) b.add(r, r - m, -1.0);
      if (i + 1 < m) b.add(r, r + m, -1.0);
    }
  }
  return CsrMatrix(b);
}

TEST(Ilu0, LevelScheduleMatchesSerialBitwise) {
  // The level-scheduled sweeps reorder rows across levels but keep each
  // row's accumulation order identical to the serial sweep, so the two
  // paths must agree BITWISE, not just to tolerance.
  const std::size_t m = 13;
  const CsrMatrix a = poisson_2d(m);
  updec::la::Ilu0Options serial;
  serial.level_schedule = false;
  updec::la::Ilu0Options leveled;
  leveled.level_schedule = true;
  leveled.level_min_rows = 1;  // parallelise every level, even tiny ones
  const updec::la::Ilu0 plain(a, serial);
  const updec::la::Ilu0 scheduled(a, leveled);
  EXPECT_EQ(plain.levels(), 0u);
  // 5-point stencil: forward levels are the anti-diagonals of the grid.
  EXPECT_EQ(scheduled.levels(), 2 * m - 1);
  // Same elimination, same factors.
  ASSERT_EQ(plain.factors().values().size(),
            scheduled.factors().values().size());
  for (std::size_t k = 0; k < plain.factors().values().size(); ++k)
    EXPECT_EQ(plain.factors().values()[k], scheduled.factors().values()[k]);
  updec::Rng rng(77);
  Vector r(m * m);
  for (auto& v : r) v = rng.normal();
  Vector z_plain(m * m), z_sched(m * m);
  plain.apply(r, z_plain);
  // Force a real multi-thread team (oversubscribed on a 1-core box) so the
  // scheduled apply takes the parallel level sweep instead of the serial
  // fast path it falls back to when only one thread is available.
#ifdef UPDEC_HAVE_OPENMP
  const int threads_before = omp_get_max_threads();
  omp_set_num_threads(2);
#endif
  scheduled.apply(r, z_sched);
#ifdef UPDEC_HAVE_OPENMP
  omp_set_num_threads(threads_before);
#endif
  for (std::size_t i = 0; i < m * m; ++i) EXPECT_EQ(z_plain[i], z_sched[i]);
}

TEST(Ilu0, F32ShadowIsExactCastOfFactors) {
  const updec::la::Ilu0 ilu(poisson_2d(7));
  const auto& values = ilu.factors().values();
  const auto& shadow = ilu.factors_f32();
  ASSERT_EQ(shadow.size(), values.size());
  for (std::size_t k = 0; k < values.size(); ++k)
    EXPECT_EQ(shadow[k], static_cast<float>(values[k]));
}

TEST(Ilu0, ApplyF32TracksF64Apply) {
  const std::size_t m = 11;
  const CsrMatrix a = poisson_2d(m);
  const updec::la::Ilu0 ilu(a);
  updec::Rng rng(5);
  Vector r(m * m);
  for (auto& v : r) v = rng.normal();
  Vector z64(m * m), z32(m * m);
  ilu.apply(r, z64);
  ilu.apply_f32(r, z32);
  const double scale = updec::la::nrm_inf(z64);
  ASSERT_GT(scale, 0.0);
  for (std::size_t i = 0; i < m * m; ++i)
    EXPECT_NEAR(z64[i], z32[i], 1e-5 * scale);
}

TEST(SparseFirst, MixedPrecisionMatchesFp64Solve) {
  // Acceptance criterion for UPDEC_MIXED_PRECISION: the fp32-preconditioned
  // chain must land on the same solution as the fp64 chain to 1e-8 --
  // preconditioner precision may cost iterations, never accuracy, because
  // every stage is judged on true fp64 residuals.
  const std::size_t n = 150;
  const CsrMatrix a = convection_diffusion_1d(n, 0.4);
  Vector b(n);
  updec::Rng rng(29);
  for (auto& v : b) v = rng.normal();

  updec::la::RobustSolveOptions options;
  options.sparse_min_n = 0;  // force the sparse Krylov path
  options.mixed_precision = false;
  const updec::la::SparseFirstSolver fp64(a, options);
  options.mixed_precision = true;
  const updec::la::SparseFirstSolver mixed(a, options);

  updec::la::SolveReport r64, rmx;
  const Vector x64 = fp64.solve(b, &r64);
  const Vector xmx = mixed.solve(b, &rmx);
  EXPECT_TRUE(r64.converged);
  EXPECT_TRUE(rmx.converged);
  const double scale = std::max(1.0, updec::la::nrm_inf(x64));
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(x64[i], xmx[i], 1e-8 * scale);

  // Transpose (adjoint/VJP) direction goes through the same mixed closure.
  const Vector t64 = fp64.solve_transpose(b, &r64);
  const Vector tmx = mixed.solve_transpose(b, &rmx);
  EXPECT_TRUE(r64.converged);
  EXPECT_TRUE(rmx.converged);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(t64[i], tmx[i], 1e-8 * scale);
}

TEST(SparseFirst, MixedPrecisionFromEnvironment) {
  ASSERT_EQ(setenv("UPDEC_MIXED_PRECISION", "1", 1), 0);
  EXPECT_TRUE(updec::la::mixed_precision_from_env());
  ASSERT_EQ(setenv("UPDEC_MIXED_PRECISION", "off", 1), 0);
  EXPECT_FALSE(updec::la::mixed_precision_from_env());
  ASSERT_EQ(setenv("UPDEC_MIXED_PRECISION", "maybe", 1), 0);
  EXPECT_FALSE(updec::la::mixed_precision_from_env());  // default on garbage
  ASSERT_EQ(unsetenv("UPDEC_MIXED_PRECISION"), 0);
  EXPECT_FALSE(updec::la::mixed_precision_from_env());
}

TEST(Ilu0, LevelKnobsFromEnvironment) {
  ASSERT_EQ(setenv("UPDEC_ILU_LEVELS", "0", 1), 0);
  EXPECT_FALSE(updec::la::ilu_level_schedule_from_env());
  ASSERT_EQ(unsetenv("UPDEC_ILU_LEVELS"), 0);
  EXPECT_TRUE(updec::la::ilu_level_schedule_from_env());  // default on
  ASSERT_EQ(setenv("UPDEC_ILU_LEVEL_MIN_ROWS", "128", 1), 0);
  EXPECT_EQ(updec::la::ilu_level_min_rows_from_env(), 128u);
  ASSERT_EQ(unsetenv("UPDEC_ILU_LEVEL_MIN_ROWS"), 0);
  EXPECT_EQ(updec::la::ilu_level_min_rows_from_env(), 64u);
}

TEST(SparseFirst, ThresholdFromEnvironment) {
  ASSERT_EQ(setenv("UPDEC_SPARSE_MIN_N", "7", 1), 0);
  EXPECT_EQ(updec::la::sparse_min_n_from_env(), 7u);
  ASSERT_EQ(setenv("UPDEC_SPARSE_MIN_N", "not-a-number", 1), 0);
  EXPECT_EQ(updec::la::sparse_min_n_from_env(), 512u);  // default on garbage
  ASSERT_EQ(unsetenv("UPDEC_SPARSE_MIN_N"), 0);
  EXPECT_EQ(updec::la::sparse_min_n_from_env(), 512u);
}

}  // namespace
