// Tests for forward-mode Dual and second-order Dual2 scalars, including the
// forward-over-reverse composition Dual2<Var> used by the PINN residuals.
#include <gtest/gtest.h>

#include <cmath>

#include "testing_common.hpp"
#include "autodiff/dual.hpp"
#include "autodiff/dual2.hpp"
#include "util/rng.hpp"

namespace {

using updec::ad::Dual;
using updec::ad::Dual2;
using updec::ad::Tape;
using updec::ad::Var;

TEST(Dual, BasicDerivatives) {
  // f(x) = x^2 * sin(x) at x = 1.3; f' = 2x sin x + x^2 cos x.
  const double x0 = 1.3;
  auto x = updec::ad::dual_input(x0);
  auto y = x * x * sin(x);
  EXPECT_NEAR(y.v, x0 * x0 * std::sin(x0), 1e-14);
  EXPECT_NEAR(y.d, 2 * x0 * std::sin(x0) + x0 * x0 * std::cos(x0), 1e-13);
}

TEST(Dual, QuotientAndSqrt) {
  const double x0 = 2.0;
  auto x = updec::ad::dual_input(x0);
  auto y = sqrt(x) / (1.0 + x);
  const double h = 1e-7;
  const auto f = [](double t) { return std::sqrt(t) / (1.0 + t); };
  EXPECT_NEAR(y.d, (f(x0 + h) - f(x0 - h)) / (2 * h), 1e-8);
}

TEST(Dual, ExpLogPowChain) {
  const double x0 = 0.8;
  auto x = updec::ad::dual_input(x0);
  auto y = exp(log(x) * 2.0) + pow(x, 2.5) + cos(x) - tanh(x);
  const auto f = [](double t) {
    return std::exp(std::log(t) * 2.0) + std::pow(t, 2.5) + std::cos(t) -
           std::tanh(t);
  };
  const double h = 1e-7;
  EXPECT_NEAR(y.v, f(x0), 1e-13);
  EXPECT_NEAR(y.d, (f(x0 + h) - f(x0 - h)) / (2 * h), 1e-7);
}

TEST(Dual, NestedDualGivesSecondDerivative) {
  // f(x) = sin(x^2); f'' via Dual<Dual<double>>.
  const double x0 = 0.7;
  Dual<Dual<double>> x{{x0, 1.0}, {1.0, 0.0}};
  auto y = sin(x * x);
  const double f2 =
      2.0 * std::cos(x0 * x0) - 4.0 * x0 * x0 * std::sin(x0 * x0);
  EXPECT_NEAR(y.d.d, f2, 1e-12);
}

TEST(Dual2, PolynomialDerivatives) {
  // f(x, y) = x^2 y + 3 x y^2 at (2, -1):
  // fx = 2xy + 3y^2, fy = x^2 + 6xy, fxx = 2y, fyy = 6x, fxy = 2x + 6y.
  const double x0 = 2.0, y0 = -1.0;
  auto x = updec::ad::dual2_x(x0);
  auto y = updec::ad::dual2_y(y0);
  auto f = x * x * y + 3.0 * (x * (y * y));
  EXPECT_NEAR(f.v, x0 * x0 * y0 + 3 * x0 * y0 * y0, 1e-14);
  EXPECT_NEAR(f.gx, 2 * x0 * y0 + 3 * y0 * y0, 1e-14);
  EXPECT_NEAR(f.gy, x0 * x0 + 6 * x0 * y0, 1e-14);
  EXPECT_NEAR(f.hxx, 2 * y0, 1e-14);
  EXPECT_NEAR(f.hyy, 6 * x0, 1e-14);
  EXPECT_NEAR(f.hxy, 2 * x0 + 6 * y0, 1e-14);
}

TEST(Dual2, HarmonicFunctionHasZeroLaplacian) {
  // u(x,y) = exp(x) sin(y) is harmonic: u_xx + u_yy = 0.
  for (const double x0 : {0.1, 0.9, -0.4}) {
    for (const double y0 : {0.2, 1.4}) {
      auto x = updec::ad::dual2_x(x0);
      auto y = updec::ad::dual2_y(y0);
      auto u = exp(x) * sin(y);
      EXPECT_NEAR(u.hxx + u.hyy, 0.0, 1e-12);
    }
  }
}

TEST(Dual2, TanhChainSecondDerivatives) {
  // f(x, y) = tanh(x y); verify Hessian against finite differences.
  const double x0 = 0.6, y0 = -0.8;
  auto x = updec::ad::dual2_x(x0);
  auto y = updec::ad::dual2_y(y0);
  auto f = tanh(x * y);
  const auto g = [](double a, double b) { return std::tanh(a * b); };
  const double h = 1e-5;
  const double fxx_fd =
      (g(x0 + h, y0) - 2 * g(x0, y0) + g(x0 - h, y0)) / (h * h);
  const double fyy_fd =
      (g(x0, y0 + h) - 2 * g(x0, y0) + g(x0, y0 - h)) / (h * h);
  const double fxy_fd = (g(x0 + h, y0 + h) - g(x0 + h, y0 - h) -
                         g(x0 - h, y0 + h) + g(x0 - h, y0 - h)) /
                        (4 * h * h);
  EXPECT_NEAR(f.hxx, fxx_fd, 1e-5);
  EXPECT_NEAR(f.hyy, fyy_fd, 1e-5);
  EXPECT_NEAR(f.hxy, fxy_fd, 1e-5);
}

TEST(Dual2, DivisionAndSqrtAndRecip) {
  const double x0 = 1.2, y0 = 0.5;
  auto x = updec::ad::dual2_x(x0);
  auto y = updec::ad::dual2_y(y0);
  auto f = sqrt(x + y * y) / (1.0 + x * y);
  const auto g = [](double a, double b) {
    return std::sqrt(a + b * b) / (1.0 + a * b);
  };
  const double h = 1e-5;
  EXPECT_NEAR(f.gx, (g(x0 + h, y0) - g(x0 - h, y0)) / (2 * h), 1e-8);
  EXPECT_NEAR(f.hyy,
              (g(x0, y0 + h) - 2 * g(x0, y0) + g(x0, y0 - h)) / (h * h), 1e-5);
}

TEST(Dual2, SinCosExpSecondDerivatives) {
  const double x0 = 0.35;
  auto x = updec::ad::dual2_x(x0);
  auto f = sin(x) + cos(2.0 * x) + exp(-1.0 * x);
  // f'' = -sin x - 4 cos 2x + exp(-x)
  EXPECT_NEAR(f.hxx,
              -std::sin(x0) - 4.0 * std::cos(2 * x0) + std::exp(-x0), 1e-12);
  EXPECT_NEAR(f.hyy, 0.0, 1e-14);
}

TEST(Dual2OverVar, ForwardOverReverseMatchesAnalytic) {
  // u(x, y; theta) = tanh(theta * x) * y.
  // Residual r = u_xx = theta^2 * (-2 tanh(theta x) sech^2(theta x)) * y.
  // Check d(r)/d(theta) from the tape against an analytic formula.
  const double x0 = 0.4, y0 = 1.3, th0 = 0.9;
  Tape tape;
  Var theta = tape.variable(th0);
  Var zero = tape.constant(0.0);
  Var one = tape.constant(1.0);
  Dual2<Var> x{tape.constant(x0), one, zero, zero, zero, zero};
  Dual2<Var> y{tape.constant(y0), zero, one, zero, zero, zero};
  Dual2<Var> th{theta, zero, zero, zero, zero, zero};
  auto u = tanh(th * x) * y;
  Var r = u.hxx;  // u_xx as a tape scalar depending on theta
  tape.backward(r);

  const auto r_of = [&](double th_) {
    const double t = std::tanh(th_ * x0);
    const double s2 = 1.0 - t * t;
    return th_ * th_ * (-2.0 * t * s2) * y0;
  };
  const double h = 1e-6;
  const double expected = (r_of(th0 + h) - r_of(th0 - h)) / (2 * h);
  EXPECT_NEAR(r.value(), r_of(th0), 1e-12);
  EXPECT_NEAR(theta.adjoint(), expected, 1e-6);
}

TEST(Dual2OverVar, LaplacianResidualGradient) {
  // Mini-PINN: u(x,y) = a * sin(pi x) * sinh-ish(y) replaced by
  // u = a * sin(pi x) * y; residual rho = u_xx + u_yy = -a pi^2 sin(pi x) y.
  // Loss L = rho^2; dL/da = 2 rho * (-pi^2 sin(pi x) y).
  const double pi = 3.14159265358979323846;
  const double x0 = 0.3, y0 = 0.7, a0 = 1.5;
  Tape tape;
  Var a = tape.variable(a0);
  Var zero = tape.constant(0.0);
  Var one = tape.constant(1.0);
  Dual2<Var> x{tape.constant(x0), one, zero, zero, zero, zero};
  Dual2<Var> y{tape.constant(y0), zero, one, zero, zero, zero};
  Dual2<Var> av{a, zero, zero, zero, zero, zero};
  auto u = av * sin(x * pi) * y;
  Var rho = u.hxx + u.hyy;
  Var loss = rho * rho;
  tape.backward(loss);
  const double rho0 = -a0 * pi * pi * std::sin(pi * x0) * y0;
  const double expected = 2.0 * rho0 * (-pi * pi * std::sin(pi * x0) * y0);
  EXPECT_NEAR(a.adjoint(), expected, 1e-8);
}

// Property: Laplacian of r^3 (the paper's polyharmonic spline) computed with
// Dual2 matches the analytic 9r for many random points.
class PhsLaplacian : public ::testing::TestWithParam<int> {};

TEST_P(PhsLaplacian, MatchesAnalytic) {
  updec::Rng rng = updec::testing_support::test_rng(GetParam());
  const double cx = rng.uniform(-1.0, 1.0), cy = rng.uniform(-1.0, 1.0);
  const double px = rng.uniform(-1.0, 1.0), py = rng.uniform(-1.0, 1.0);
  const double r2v = (px - cx) * (px - cx) + (py - cy) * (py - cy);
  if (r2v < 1e-4) return;  // kernel is non-smooth at the centre
  auto x = updec::ad::dual2_x(px);
  auto y = updec::ad::dual2_y(py);
  auto dx = x - cx;
  auto dy = y - cy;
  auto r = sqrt(dx * dx + dy * dy);
  auto phi = r * r * r;
  // In 2D, Laplacian(r^3) = 9r.
  EXPECT_NEAR(phi.hxx + phi.hyy, 9.0 * std::sqrt(r2v), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PhsLaplacian, ::testing::Range(1, 17));

}  // namespace
