// Tests for the Navier-Stokes channel control problem: DP-vs-FD gradient
// exactness, the Reynolds-dependent DAL gradient-quality collapse that is
// the paper's central negative result, and short DP optimisation runs.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "control/channel_problem.hpp"
#include "control/driver.hpp"
#include "la/blas.hpp"

namespace {

using updec::control::ChannelFlowControlProblem;
using updec::control::DriverOptions;
using updec::la::Vector;
using updec::pc::ChannelSpec;
using updec::pde::ChannelFlowConfig;

double cosine(const Vector& a, const Vector& b) {
  return updec::la::dot(a, b) /
         (updec::la::nrm2(a) * updec::la::nrm2(b) + 1e-300);
}

std::shared_ptr<ChannelFlowControlProblem> make_problem(
    const updec::rbf::Kernel& kernel, double reynolds,
    std::size_t refinements = 2, std::size_t steps = 150) {
  ChannelSpec spec;
  spec.target_nodes = 300;
  ChannelFlowConfig config;
  config.reynolds = reynolds;
  config.refinements = refinements;
  config.steps_per_refinement = steps;
  return std::make_shared<ChannelFlowControlProblem>(spec, kernel, config);
}

TEST(ChannelControl, CostPositiveAndFiniteAtInitialGuess) {
  const updec::rbf::PolyharmonicSpline kernel(3);
  const auto problem = make_problem(kernel, 20.0);
  const double j = problem->cost(problem->initial_control());
  EXPECT_TRUE(std::isfinite(j));
  EXPECT_GT(j, 0.0);
  EXPECT_LT(j, 1.0);
}

TEST(ChannelControl, DpGradientMatchesFdExactly) {
  // The paper's headline: DP produces the exact gradient of the discretised
  // solver (identical to FD up to truncation of the differences).
  const updec::rbf::PolyharmonicSpline kernel(3);
  const auto problem = make_problem(kernel, 20.0, 1, 60);
  auto dp = updec::control::make_channel_dp(problem);
  auto fd = updec::control::make_channel_fd(problem);
  Vector c = problem->initial_control();
  for (std::size_t i = 0; i < c.size(); ++i) c[i] *= 1.1;
  Vector g_dp, g_fd;
  const double j_dp = dp->value_and_gradient(c, g_dp);
  const double j_fd = fd->value_and_gradient(c, g_fd);
  EXPECT_NEAR(j_dp, j_fd, 1e-12);
  EXPECT_GT(cosine(g_dp, g_fd), 0.9999);
  for (std::size_t i = 0; i < g_dp.size(); ++i)
    EXPECT_NEAR(g_dp[i], g_fd[i], 1e-5 * (1.0 + std::abs(g_fd[i])));
}

TEST(ChannelControl, DalGradientNeverMatchesTheExactDiscreteGradient) {
  // The OTD continuous adjoint is structurally inexact on RBF clouds: its
  // alignment with the exact discrete (DP) gradient is erratic across
  // Reynolds numbers and node layouts -- sometimes usable, sometimes
  // sign-flipped (the paper's Re = 100 failure) -- but never exact, while
  // DP == FD always. The per-layout spread is charted by
  // bench_ablation_gradients.
  const updec::rbf::PolyharmonicSpline kernel(3);
  for (const double re : {10.0, 100.0}) {
    const auto problem = make_problem(kernel, re);
    auto dp = updec::control::make_channel_dp(problem);
    auto dal = updec::control::make_channel_dal(problem);
    Vector c = problem->initial_control();
    for (std::size_t i = 0; i < c.size(); ++i) c[i] *= 1.1;
    Vector g_dp, g_dal;
    dp->value_and_gradient(c, g_dp);
    dal->value_and_gradient(c, g_dal);
    EXPECT_LT(cosine(g_dal, g_dp), 0.99) << "Re = " << re;
    // Magnitudes disagree as well.
    const double ratio = updec::la::nrm2(g_dal) / updec::la::nrm2(g_dp);
    EXPECT_TRUE(ratio < 0.9 || ratio > 1.1) << "Re = " << re;
  }
}

TEST(ChannelControl, DpOptimisationReducesCost) {
  const updec::rbf::PolyharmonicSpline kernel(3);
  const auto problem = make_problem(kernel, 20.0, 2, 120);
  auto dp = updec::control::make_channel_dp(problem);
  DriverOptions options;
  options.iterations = 40;
  options.initial_learning_rate = 5e-2;
  const auto result = updec::control::optimize(*problem, *dp, options);
  EXPECT_LT(result.final_cost, 0.75 * result.cost_history.front());
  EXPECT_TRUE(std::isfinite(result.final_cost));
}

TEST(ChannelControl, OutflowProfileMatchesCostStory) {
  const updec::rbf::PolyharmonicSpline kernel(3);
  const auto problem = make_problem(kernel, 20.0);
  const Vector profile = problem->outflow_profile(problem->initial_control());
  EXPECT_EQ(profile.size(), problem->solver().outlet_nodes().size());
  // Mid-channel outflow is positive, near-wall outflow smaller.
  double mid = 0.0;
  for (std::size_t q = 0; q < profile.size(); ++q)
    if (std::abs(problem->solver().outlet_y()[q] - 0.5) < 0.2)
      mid = std::max(mid, profile[q]);
  EXPECT_GT(mid, 0.4);
}

TEST(ChannelControl, SmoothingPenaltyAddsExactTikhonovGradient) {
  // The smoothed DP gradient must equal the plain DP gradient plus the
  // hand-derived derivative of alpha * sum (c_{q+1} - c_q)^2 / dy.
  const updec::rbf::PolyharmonicSpline kernel(3);
  const auto problem = make_problem(kernel, 20.0, 1, 40);
  const double alpha = 1e-2;
  auto plain = updec::control::make_channel_dp(problem);
  auto smoothed = updec::control::make_channel_dp(problem, alpha);
  EXPECT_EQ(smoothed->name(), "DP(smoothed)");
  Vector c = problem->initial_control();
  c[c.size() / 2] += 0.3;  // a kink the penalty should push against
  Vector g_plain, g_smooth;
  const double j_plain = plain->value_and_gradient(c, g_plain);
  const double j_smooth = smoothed->value_and_gradient(c, g_smooth);
  EXPECT_NEAR(j_plain, j_smooth, 1e-14);  // reported J stays the raw cost
  const auto& ys = problem->solver().inlet_y();
  Vector expected(c.size(), 0.0);
  for (std::size_t q = 0; q + 1 < c.size(); ++q) {
    const double d = 2.0 * alpha * (c[q + 1] - c[q]) / (ys[q + 1] - ys[q]);
    expected[q] -= d;
    expected[q + 1] += d;
  }
  for (std::size_t q = 0; q < c.size(); ++q)
    EXPECT_NEAR(g_smooth[q] - g_plain[q], expected[q], 1e-10);
}

TEST(ChannelControl, TruncatedDpSavesMemoryAndApproximatesTheGradient) {
  const updec::rbf::PolyharmonicSpline kernel(3);
  const auto problem = make_problem(kernel, 20.0, 4, 60);
  auto full = updec::control::make_channel_dp(problem);
  auto truncated = updec::control::make_channel_dp_truncated(problem);
  EXPECT_EQ(truncated->name(), "DP(truncated)");
  Vector c = problem->initial_control();
  for (std::size_t i = 0; i < c.size(); ++i) c[i] *= 1.1;
  Vector g_full, g_trunc;
  const double j_full = full->value_and_gradient(c, g_full);
  const double j_trunc = truncated->value_and_gradient(c, g_trunc);
  // Same forward values (the warm-up runs the same arithmetic).
  EXPECT_NEAR(j_full, j_trunc, 1e-11);
  // Tape at most ~1/2 of the full rollout's (here: 1 of 4 refinements).
  EXPECT_LT(truncated->scratch_bytes(), full->scratch_bytes() / 2);
  // The truncated gradient is an approximation that still points uphill.
  EXPECT_GT(cosine(g_full, g_trunc), 0.5);
}

TEST(ChannelControl, InitialControlIsParabolic) {
  const updec::rbf::PolyharmonicSpline kernel(3);
  const auto problem = make_problem(kernel, 20.0);
  const Vector c = problem->initial_control();
  const auto& ys = problem->solver().inlet_y();
  for (std::size_t q = 0; q < c.size(); ++q)
    EXPECT_NEAR(c[q], 4.0 * ys[q] * (1.0 - ys[q]), 1e-12);
}

}  // namespace
