// Property-based tier-1 suite: bounded randomized trials of every oracle
// family in src/check, plus replay of all pinned fuzz regressions and a
// self-test of the fuzz driver's determinism and shrinking machinery.
//
// The trials here are deliberately small and few -- the whole binary must
// stay well under a minute in Debug. The unbounded exploration of the same
// oracles happens in examples/updec_fuzz (nightly CI); anything it finds is
// replayed here forever via check::pinned_cases(). A failure message always
// carries the one-line updec_fuzz replay command.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "check/fuzz.hpp"
#include "check/oracles.hpp"
#include "testing_common.hpp"

namespace {

using updec::check::Oracle;
using updec::check::OracleCase;
using updec::check::OracleResult;

/// Per-family trial budget for the in-tree (tier-1) sweep. Sizes are capped
/// below the catalogue ceiling so Debug builds stay fast; the nightly fuzz
/// run covers the full ranges.
struct FamilyBudget {
  std::size_t max_size;
  int trials;
};

FamilyBudget budget_for(const std::string& name) {
  // The Laplace-control oracles factor a full collocation system per trial;
  // keep them at the small end of their admissible grids.
  if (name == "ad_vs_fd_laplace") return {8, 2};
  if (name == "dal_vs_dp_laplace") return {18, 2};
  if (name == "cached_vs_cold") return {7, 2};
  if (name == "ad_vs_fd_ops") return {16, 3};
  // rom_vs_full runs two full DAL loops (ROM-routed and full-path) per
  // trial on top of its algebraic part; two mid-size trials suffice.
  if (name == "rom_vs_full") return {24, 2};
  // sharded_vs_single forks 1- and 4-shard worker pools per trial and runs
  // the batch three ways; one modest batch exercises the whole boundary.
  if (name == "sharded_vs_single") return {6, 1};
  // refinement_vs_uniform runs three full DAL optimize rounds plus two
  // adapt/transfer steps per trial; two trials cover the size range.
  if (name == "refinement_vs_uniform") return {13, 2};
  return {32, 3};
}

std::string replay_hint(const Oracle& oracle, const OracleCase& c) {
  std::ostringstream os;
  os << "replay: updec_fuzz --oracle " << oracle.name << " --case-seed 0x"
     << std::hex << c.seed << std::dec << " --size " << c.size;
  return os.str();
}

class OracleFamily : public ::testing::TestWithParam<const Oracle*> {};

TEST_P(OracleFamily, BoundedRandomTrials) {
  const Oracle& oracle = *GetParam();
  const FamilyBudget budget = budget_for(oracle.name);
  // Site seed derived from the family name so families explore independent
  // streams under a single UPDEC_TEST_SEED override.
  const std::uint64_t site =
      std::hash<std::string>{}(std::string("property:") + oracle.name);
  updec::Rng rng = updec::testing_support::test_rng(site);

  const std::size_t lo = oracle.min_size;
  const std::size_t hi =
      std::max(lo, std::min(oracle.max_size, budget.max_size));
  int ran = 0;
  for (int trial = 0; trial < budget.trials; ++trial) {
    OracleCase c;
    c.seed = rng.next_u64();
    c.size = lo + rng.uniform_index(hi - lo + 1);
    const OracleResult result = updec::check::run_guarded(oracle, c);
    if (result.skipped) {
      GTEST_SKIP() << oracle.name << ": " << result.detail;
    }
    ++ran;
    EXPECT_TRUE(result.ok)
        << oracle.name << " size=" << c.size << ": " << result.detail
        << "\n  error " << result.error << " > tolerance " << result.tolerance
        << "\n  " << replay_hint(oracle, c);
  }
  EXPECT_EQ(ran, budget.trials);
}

std::string family_name(const ::testing::TestParamInfo<const Oracle*>& info) {
  return info.param->name;
}

std::vector<const Oracle*> catalogue_pointers() {
  std::vector<const Oracle*> out;
  for (const Oracle& o : updec::check::all_oracles()) out.push_back(&o);
  return out;
}

INSTANTIATE_TEST_SUITE_P(Catalogue, OracleFamily,
                         ::testing::ValuesIn(catalogue_pointers()),
                         family_name);

TEST(OracleCatalogue, HasAllEightFamiliesWithSaneRanges) {
  const auto& oracles = updec::check::all_oracles();
  EXPECT_GE(oracles.size(), 6u);  // ISSUE floor; the catalogue ships eight
  for (const Oracle& o : oracles) {
    EXPECT_NE(o.name, nullptr);
    EXPECT_LE(o.min_size, o.max_size) << o.name;
    EXPECT_NE(o.run, nullptr) << o.name;
    EXPECT_EQ(updec::check::find_oracle(o.name), &o);
  }
  EXPECT_EQ(updec::check::find_oracle("no_such_oracle"), nullptr);
}

TEST(OracleCatalogue, RunGuardedClampsAndCatches) {
  const Oracle* oracle = updec::check::find_oracle("factorization_consistency");
  ASSERT_NE(oracle, nullptr);
  // A size far above the ceiling must be clamped, not explode the runtime.
  OracleCase c;
  c.seed = 42;
  c.size = 1u << 20;
  const OracleResult result = updec::check::run_guarded(*oracle, c);
  EXPECT_FALSE(result.skipped);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(PinnedFuzzCases, AllReplayClean) {
  // Every promoted fuzz finding must keep passing forever. A red here is a
  // regression of a previously fixed (or stress-pinned) behaviour.
  std::ostringstream quiet;
  for (const updec::check::PinnedCase& pin : updec::check::pinned_cases()) {
    const Oracle* oracle = updec::check::find_oracle(pin.oracle);
    ASSERT_NE(oracle, nullptr) << "pinned case names unknown oracle "
                               << pin.oracle;
    OracleCase c;
    c.seed = pin.case_seed;
    c.size = pin.size;
    const OracleResult result =
        updec::check::replay_case(*oracle, c, quiet);
    if (result.skipped) continue;
    EXPECT_TRUE(result.ok) << pin.oracle << " (" << pin.note
                           << "): " << result.detail << "\n  "
                           << replay_hint(*oracle, c);
  }
}

TEST(FuzzDriver, MasterSeedReplaysIdentically) {
  // Two runs from one master seed must draw identical (oracle, seed, size)
  // streams -- the property UPDEC_FUZZ_SEED replay depends on. Restrict to a
  // cheap oracle family so this stays fast in Debug.
  updec::check::FuzzOptions options;
  options.master_seed = 0xfeedface12345678ull;
  options.trials = 12;
  options.only_oracle = "factorization_consistency";
  options.max_size = 16;

  std::ostringstream out_a, out_b;
  const auto a = updec::check::run_fuzz(options, out_a);
  const auto b = updec::check::run_fuzz(options, out_b);
  EXPECT_EQ(a.trials_run, 12u);
  EXPECT_EQ(b.trials_run, 12u);
  EXPECT_EQ(a.failures.size(), b.failures.size());
  EXPECT_TRUE(a.ok()) << out_a.str();
  // The streamed logs only differ in the timing summary line.
  const std::string log_a = out_a.str(), log_b = out_b.str();
  EXPECT_EQ(log_a.substr(0, log_a.rfind('\n', log_a.size() - 2)),
            log_b.substr(0, log_b.rfind('\n', log_b.size() - 2)));
}

TEST(FuzzDriver, ShrinksInjectedFailureToMinimalSize) {
  // Inject a synthetic oracle that fails iff size >= 7: the driver must
  // find a failure, shrink it to exactly 7, and emit both replay lines.
  const Oracle failing{
      "self_test_fails_at_7", "synthetic oracle for driver self-test",
      /*min_size=*/2, /*max_size=*/40, [](const OracleCase& c) {
        OracleResult r;
        r.tolerance = 0.5;
        r.error = (c.size >= 7) ? 1.0 : 0.0;
        r.ok = c.size < 7;
        r.detail = "synthetic failure above size 6";
        return r;
      }};
  const std::vector<Oracle> catalogue = {failing};

  updec::check::FuzzOptions options;
  options.master_seed = 0xabadcafe00000001ull;
  options.trials = 32;
  std::ostringstream out;
  const auto report = updec::check::run_fuzz(options, out, &catalogue);
  ASSERT_FALSE(report.failures.empty());
  for (const auto& f : report.failures) {
    EXPECT_EQ(f.oracle, "self_test_fails_at_7");
    EXPECT_GE(f.size, 7u);
    EXPECT_EQ(f.shrunk_size, 7u)
        << "shrinker should stop at the smallest failing size";
  }
  const std::string log = out.str();
  EXPECT_NE(log.find("replay run:"), std::string::npos);
  EXPECT_NE(log.find("replay case:"), std::string::npos);
  EXPECT_NE(log.find("--size 7"), std::string::npos);

  // Replaying the shrunk case directly must reproduce the failure -- the
  // acceptance contract of the fuzz driver.
  OracleCase shrunk;
  shrunk.seed = report.failures.front().case_seed;
  shrunk.size = report.failures.front().shrunk_size;
  std::ostringstream quiet;
  const auto replay = updec::check::replay_case(failing, shrunk, quiet);
  EXPECT_FALSE(replay.ok);
}

TEST(FuzzDriver, UnknownOracleIsReportedNotLooped) {
  updec::check::FuzzOptions options;
  options.trials = 5;
  options.only_oracle = "definitely_not_an_oracle";
  std::ostringstream out;
  const auto report = updec::check::run_fuzz(options, out);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.trials_run, 0u);
  EXPECT_NE(out.str().find("unknown oracle"), std::string::npos);
}

}  // namespace
