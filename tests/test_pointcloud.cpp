// Tests for point clouds, generators (incl. the GMSH-substitute channel) and
// the k-d tree.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "testing_common.hpp"
#include "pointcloud/generators.hpp"
#include "pointcloud/kdtree.hpp"
#include "util/rng.hpp"

namespace {

using updec::pc::BoundaryKind;
using updec::pc::ChannelSpec;
using updec::pc::KdTree;
using updec::pc::Node;
using updec::pc::PointCloud;
using updec::pc::Vec2;
namespace tags = updec::pc::tags;

TEST(Cloud, CanonicalOrderingAfterConstruction) {
  std::vector<Node> nodes(5);
  nodes[0].kind = BoundaryKind::kNeumann;
  nodes[1].kind = BoundaryKind::kInternal;
  nodes[2].kind = BoundaryKind::kDirichlet;
  nodes[3].kind = BoundaryKind::kInternal;
  nodes[4].kind = BoundaryKind::kRobin;
  const PointCloud cloud(std::move(nodes));
  EXPECT_EQ(cloud.num_internal(), 2u);
  EXPECT_EQ(cloud.num_dirichlet(), 1u);
  EXPECT_EQ(cloud.num_neumann(), 1u);
  EXPECT_EQ(cloud.num_robin(), 1u);
  // Blocks are contiguous: internal < dirichlet < neumann < robin.
  EXPECT_EQ(cloud.begin_of(BoundaryKind::kInternal), 0u);
  EXPECT_EQ(cloud.begin_of(BoundaryKind::kDirichlet), 2u);
  EXPECT_EQ(cloud.begin_of(BoundaryKind::kNeumann), 3u);
  EXPECT_EQ(cloud.begin_of(BoundaryKind::kRobin), 4u);
  EXPECT_EQ(cloud.end_of(BoundaryKind::kRobin), 5u);
  for (std::size_t i = 0; i < cloud.size(); ++i) {
    if (i < 2) EXPECT_EQ(cloud.node(i).kind, BoundaryKind::kInternal);
  }
}

TEST(Cloud, VecArithmetic) {
  const Vec2 a{3.0, 4.0};
  const Vec2 b{1.0, 1.0};
  EXPECT_DOUBLE_EQ(updec::pc::norm(a), 5.0);
  EXPECT_DOUBLE_EQ(updec::pc::distance(a, b), std::sqrt(13.0));
  EXPECT_DOUBLE_EQ(updec::pc::dot(a, b), 7.0);
  const Vec2 s = 2.0 * (a - b);
  EXPECT_DOUBLE_EQ(s.x, 4.0);
  EXPECT_DOUBLE_EQ(s.y, 6.0);
}

TEST(Generators, VanDerCorputFirstElements) {
  EXPECT_DOUBLE_EQ(updec::pc::van_der_corput(1, 2), 0.5);
  EXPECT_DOUBLE_EQ(updec::pc::van_der_corput(2, 2), 0.25);
  EXPECT_DOUBLE_EQ(updec::pc::van_der_corput(3, 2), 0.75);
  EXPECT_DOUBLE_EQ(updec::pc::van_der_corput(1, 3), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(updec::pc::van_der_corput(2, 3), 2.0 / 3.0);
}

TEST(Generators, HaltonIsLowDiscrepancy) {
  // All points in the unit square; no exact duplicates in the first 1000.
  std::set<std::pair<double, double>> seen;
  for (std::uint64_t i = 1; i <= 1000; ++i) {
    const Vec2 p = updec::pc::halton2(i);
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, 1.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, 1.0);
    EXPECT_TRUE(seen.insert({p.x, p.y}).second);
  }
  // Quadrant balance within 10%.
  int q = 0;
  for (std::uint64_t i = 1; i <= 1000; ++i) {
    const Vec2 p = updec::pc::halton2(i);
    if (p.x < 0.5 && p.y < 0.5) ++q;
  }
  EXPECT_NEAR(q, 250, 25);
}

TEST(Generators, UnitSquareGridStructure) {
  const PointCloud cloud = updec::pc::unit_square_grid(10, 10);
  EXPECT_EQ(cloud.size(), 121u);
  EXPECT_EQ(cloud.num_internal(), 81u);
  EXPECT_EQ(cloud.num_dirichlet(), 40u);
  EXPECT_EQ(cloud.num_neumann(), 0u);
  // The controlled top wall has nx+1 nodes (owns both corners).
  EXPECT_EQ(cloud.indices_with_tag(tags::kTop).size(), 11u);
  EXPECT_EQ(cloud.indices_with_tag(tags::kLeft).size(), 9u);
  // Normals point outward.
  for (const std::size_t i : cloud.indices_with_tag(tags::kTop)) {
    EXPECT_DOUBLE_EQ(cloud.node(i).normal.y, 1.0);
    EXPECT_DOUBLE_EQ(cloud.node(i).pos.y, 1.0);
  }
}

TEST(Generators, UnitSquareScatteredRespectsCounts) {
  const PointCloud cloud = updec::pc::unit_square_scattered(200, 20, 3);
  EXPECT_EQ(cloud.num_internal(), 200u);
  EXPECT_EQ(cloud.num_dirichlet(), 80u);
  // Interior nodes strictly inside.
  for (std::size_t i = 0; i < cloud.num_internal(); ++i) {
    const Vec2 p = cloud.node(i).pos;
    EXPECT_GT(p.x, 0.0);
    EXPECT_LT(p.x, 1.0);
    EXPECT_GT(p.y, 0.0);
    EXPECT_LT(p.y, 1.0);
  }
  // No duplicated corners on the perimeter.
  std::set<std::pair<double, double>> boundary;
  for (std::size_t i = cloud.num_internal(); i < cloud.size(); ++i) {
    const Vec2 p = cloud.node(i).pos;
    EXPECT_TRUE(boundary.insert({p.x, p.y}).second);
  }
}

TEST(Generators, ChannelCloudMatchesSpec) {
  ChannelSpec spec;
  spec.target_nodes = 600;
  const PointCloud cloud = updec::pc::channel_cloud(spec);
  EXPECT_NEAR(static_cast<double>(cloud.size()), 600.0, 60.0);
  // All four segment families present.
  EXPECT_FALSE(cloud.indices_with_tag(tags::kInlet).empty());
  EXPECT_FALSE(cloud.indices_with_tag(tags::kOutlet).empty());
  EXPECT_FALSE(cloud.indices_with_tag(tags::kWall).empty());
  EXPECT_FALSE(cloud.indices_with_tag(tags::kBlowing).empty());
  EXPECT_FALSE(cloud.indices_with_tag(tags::kSuction).empty());
  // Outlet nodes are Neumann; inlet/wall/patch nodes Dirichlet.
  for (const std::size_t i : cloud.indices_with_tag(tags::kOutlet))
    EXPECT_EQ(cloud.node(i).kind, BoundaryKind::kNeumann);
  for (const std::size_t i : cloud.indices_with_tag(tags::kInlet))
    EXPECT_EQ(cloud.node(i).kind, BoundaryKind::kDirichlet);
  // Geometry: inlet at x=0, outlet at x=Lx, blowing on the bottom wall
  // inside its x-range.
  for (const std::size_t i : cloud.indices_with_tag(tags::kInlet))
    EXPECT_DOUBLE_EQ(cloud.node(i).pos.x, 0.0);
  for (const std::size_t i : cloud.indices_with_tag(tags::kOutlet))
    EXPECT_DOUBLE_EQ(cloud.node(i).pos.x, spec.lx);
  for (const std::size_t i : cloud.indices_with_tag(tags::kBlowing)) {
    EXPECT_DOUBLE_EQ(cloud.node(i).pos.y, 0.0);
    EXPECT_GE(cloud.node(i).pos.x, spec.blow_start);
    EXPECT_LE(cloud.node(i).pos.x, spec.blow_end);
  }
}

TEST(Generators, ChannelGradingRefinesNearWalls) {
  ChannelSpec spec;
  spec.target_nodes = 800;
  spec.grading = 0.7;
  const PointCloud cloud = updec::pc::channel_cloud(spec);
  // Count interior nodes in a wall strip vs an equally thick centre strip.
  std::size_t near_wall = 0, centre = 0;
  const double strip = 0.1 * spec.ly;
  for (std::size_t i = 0; i < cloud.num_internal(); ++i) {
    const double y = cloud.node(i).pos.y;
    if (y < strip || y > spec.ly - strip) ++near_wall;
    if (std::abs(y - 0.5 * spec.ly) < strip) ++centre;
  }
  EXPECT_GT(near_wall, centre);
}

TEST(Generators, ChannelCloudAtPaperScale) {
  ChannelSpec spec;  // default target 1385, the paper's node count
  const PointCloud cloud = updec::pc::channel_cloud(spec);
  EXPECT_NEAR(static_cast<double>(cloud.size()), 1385.0, 140.0);
  EXPECT_GT(cloud.min_spacing(), 1e-4);
}

TEST(Generators, CloudSummaryListsTags) {
  const PointCloud cloud = updec::pc::unit_square_grid(4, 4);
  const std::string s = cloud.summary();
  EXPECT_NE(s.find("25 nodes"), std::string::npos);
  EXPECT_NE(s.find("Dirichlet"), std::string::npos);
}

TEST(KdTree, NearestOnKnownLayout) {
  std::vector<Vec2> pts = {{0, 0}, {1, 0}, {0, 1}, {1, 1}, {0.5, 0.5}};
  const KdTree tree(pts);
  EXPECT_EQ(tree.nearest({0.45, 0.55}), 4u);
  EXPECT_EQ(tree.nearest({0.9, 0.1}), 1u);
}

TEST(KdTree, KNearestMatchesBruteForce) {
  updec::Rng rng = updec::testing_support::test_rng(7);
  std::vector<Vec2> pts(500);
  for (auto& p : pts) p = {rng.uniform(), rng.uniform()};
  const KdTree tree(pts);
  for (int trial = 0; trial < 20; ++trial) {
    const Vec2 q{rng.uniform(), rng.uniform()};
    const std::size_t k = 1 + rng.uniform_index(12);
    const auto result = tree.k_nearest(q, k);
    ASSERT_EQ(result.size(), k);
    // Brute force reference.
    std::vector<std::size_t> idx(pts.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      return updec::pc::distance(pts[a], q) < updec::pc::distance(pts[b], q);
    });
    for (std::size_t i = 0; i < k; ++i) {
      EXPECT_NEAR(updec::pc::distance(pts[result[i]], q),
                  updec::pc::distance(pts[idx[i]], q), 1e-12);
    }
  }
}

TEST(KdTree, RadiusSearchMatchesBruteForce) {
  updec::Rng rng = updec::testing_support::test_rng(9);
  std::vector<Vec2> pts(300);
  for (auto& p : pts) p = {rng.uniform(), rng.uniform()};
  const KdTree tree(pts);
  const Vec2 q{0.4, 0.6};
  const double r = 0.2;
  auto found = tree.radius_search(q, r);
  std::sort(found.begin(), found.end());
  std::vector<std::size_t> expected;
  for (std::size_t i = 0; i < pts.size(); ++i)
    if (updec::pc::distance(pts[i], q) <= r) expected.push_back(i);
  EXPECT_EQ(found, expected);
}

TEST(KdTree, ClampsKToSize) {
  const KdTree tree(std::vector<Vec2>{{0, 0}, {1, 1}});
  EXPECT_EQ(tree.k_nearest({0, 0}, 10).size(), 2u);
}

TEST(KdTree, KZeroReturnsEmpty) {
  // Regression: k == 0 used to reach heap.top() on an empty heap (UB).
  const KdTree tree(std::vector<Vec2>{{0, 0}, {1, 1}, {2, 2}});
  EXPECT_TRUE(tree.k_nearest({0.5, 0.5}, 0).empty());
}

TEST(KdTree, WorksOnCloud) {
  const PointCloud cloud = updec::pc::unit_square_grid(8, 8);
  const KdTree tree(cloud);
  EXPECT_EQ(tree.size(), cloud.size());
  // The nearest node to an interior grid point is itself.
  const auto nn = tree.k_nearest(cloud.node(3).pos, 1);
  EXPECT_EQ(nn[0], 3u);
}

// Property: k_nearest distances are sorted ascending for many queries/sizes.
class KdTreeSorted : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KdTreeSorted, DistancesAscending) {
  updec::Rng rng = updec::testing_support::test_rng(GetParam());
  std::vector<Vec2> pts(GetParam() * 40 + 10);
  for (auto& p : pts) p = {rng.uniform(), rng.uniform()};
  const KdTree tree(pts);
  const Vec2 q{rng.uniform(), rng.uniform()};
  const auto result = tree.k_nearest(q, 9);
  for (std::size_t i = 1; i < result.size(); ++i)
    EXPECT_LE(updec::pc::distance(pts[result[i - 1]], q),
              updec::pc::distance(pts[result[i]], q) + 1e-15);
}

INSTANTIATE_TEST_SUITE_P(Sizes, KdTreeSorted, ::testing::Values(1, 2, 4, 8));

/// Strongly clustered point set: tight gaussian blobs plus sparse outliers,
/// the geometry adaptive refinement produces. Depth-first pruning bugs only
/// show up when many points share a tiny bounding region.
std::vector<Vec2> clustered_points(updec::Rng& rng, std::size_t n) {
  std::vector<Vec2> pts;
  pts.reserve(n);
  const std::vector<Vec2> centres = {{0.2, 0.2}, {0.8, 0.3}, {0.5, 0.9}};
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 5 == 4) {
      pts.push_back({rng.uniform(), rng.uniform()});  // outlier
    } else {
      const Vec2& c = centres[i % centres.size()];
      pts.push_back({c.x + rng.normal(0.0, 0.01), c.y + rng.normal(0.0, 0.01)});
    }
  }
  return pts;
}

TEST(KdTree, KNearestMatchesBruteForceOnClusteredCloud) {
  updec::Rng rng = updec::testing_support::test_rng(31);
  const std::vector<Vec2> pts = clustered_points(rng, 400);
  const KdTree tree(pts);
  for (int trial = 0; trial < 30; ++trial) {
    // Query from inside a blob half the time, from open space otherwise.
    const Vec2 q = trial % 2 == 0 ? pts[rng.uniform_index(pts.size())]
                                  : Vec2{rng.uniform(), rng.uniform()};
    const std::size_t k = 1 + rng.uniform_index(20);
    const auto result = tree.k_nearest(q, k);
    ASSERT_EQ(result.size(), k);
    std::vector<std::size_t> idx(pts.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      const double da = updec::pc::distance(pts[a], q);
      const double db = updec::pc::distance(pts[b], q);
      if (da != db) return da < db;
      return a < b;
    });
    for (std::size_t i = 0; i < k; ++i)
      EXPECT_NEAR(updec::pc::distance(pts[result[i]], q),
                  updec::pc::distance(pts[idx[i]], q), 1e-12)
          << "rank " << i << " of k=" << k;
  }
}

TEST(KdTree, RadiusZeroFindsExactlyCoincidentPoints) {
  // r = 0 is a legitimate query (the refinement planner's degenerate-spacing
  // guard): only points bitwise at the query may come back.
  std::vector<Vec2> pts = {{0.25, 0.25}, {0.5, 0.5}, {0.25, 0.25},
                           {0.75, 0.25}, {0.25, 0.25}};
  const KdTree tree(pts);
  auto hits = tree.radius_search({0.25, 0.25}, 0.0);
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<std::size_t>{0, 2, 4}));
  EXPECT_TRUE(tree.radius_search({0.25 + 1e-12, 0.25}, 0.0).empty());
}

TEST(KdTree, DuplicatePointsAreAllReportedWithinRadius) {
  updec::Rng rng = updec::testing_support::test_rng(33);
  std::vector<Vec2> pts(64);
  for (auto& p : pts) p = {rng.uniform(), rng.uniform()};
  // Triplicate one point; every copy must be found, k-NN must not lose any.
  pts.push_back(pts[10]);
  pts.push_back(pts[10]);
  const KdTree tree(pts);
  auto hits = tree.radius_search(pts[10], 1e-15);
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<std::size_t>{10, 64, 65}));
  const auto nn = tree.k_nearest(pts[10], 3);
  for (const std::size_t i : nn)
    EXPECT_NEAR(updec::pc::distance(pts[i], pts[10]), 0.0, 1e-15);
}

TEST(Cloud, MeanSpacingMatchesBruteForceReference) {
  // The KD-tree fast path must agree with the O(n^2) nearest-neighbour
  // definition it replaced, on both structured and clustered clouds.
  updec::Rng rng = updec::testing_support::test_rng(35);
  const std::vector<Vec2> clustered = clustered_points(rng, 150);
  std::vector<PointCloud> clouds;
  clouds.push_back(updec::pc::unit_square_grid(9, 9));
  {
    std::vector<Node> nodes(clustered.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) nodes[i].pos = clustered[i];
    clouds.emplace_back(std::move(nodes));
  }
  for (const PointCloud& cloud : clouds) {
    double total = 0.0;
    for (std::size_t i = 0; i < cloud.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t j = 0; j < cloud.size(); ++j)
        if (j != i)
          best = std::min(
              best, updec::pc::distance(cloud.node(i).pos, cloud.node(j).pos));
      total += best;
    }
    const double reference = total / static_cast<double>(cloud.size());
    EXPECT_NEAR(cloud.mean_spacing(), reference, 1e-13 + 1e-12 * reference);
  }
}

TEST(Cloud, MeanSpacingDegenerateSizes) {
  EXPECT_DOUBLE_EQ(PointCloud().mean_spacing(), 0.0);
  std::vector<Node> one(1);
  EXPECT_DOUBLE_EQ(PointCloud(std::move(one)).mean_spacing(), 0.0);
}

}  // namespace
