#pragma once
/// \file testing_common.hpp
/// \brief Shared helpers for the gtest suites: logged, overridable RNG
/// seeding plus the tolerance / matrix-comparison predicates that used to be
/// re-implemented ad hoc in each test file.
///
/// Seeding contract: every randomized test obtains its Rng through
/// `test_rng(site_seed)`. The effective seed is the per-site default unless
/// UPDEC_TEST_SEED is set in the environment, in which case it is mixed with
/// the site default (so distinct test sites still see distinct streams). The
/// effective seed is printed and attached to the gtest XML record, so any
/// red test names the exact seed that reproduces it.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>

#include "check/generators.hpp"
#include "la/dense.hpp"
#include "util/rng.hpp"

namespace updec::testing_support {

/// Resolve the effective seed for one test site and log it (stdout + gtest
/// property). `site_seed` keeps independent tests on independent streams.
inline std::uint64_t logged_seed(std::uint64_t site_seed) {
  std::uint64_t seed = site_seed;
  if (const char* env = std::getenv("UPDEC_TEST_SEED")) {
    try {
      // splitmix64-style mix keeps per-site streams distinct under one
      // global override.
      const std::uint64_t global = std::stoull(env, nullptr, 0);
      seed = (global ^ site_seed) * 0x9E3779B97F4A7C15ull;
    } catch (...) {
      // Unparseable override: fall back to the site default rather than
      // silently running half the suite on a different stream.
    }
  }
  std::ostringstream hex;
  hex << "0x" << std::hex << seed;
  ::testing::Test::RecordProperty("updec_seed", hex.str());
  std::cout << "[updec] rng seed " << hex.str()
            << " (override with UPDEC_TEST_SEED)\n";
  return seed;
}

/// The canonical way for a test to get randomness.
inline Rng test_rng(std::uint64_t site_seed) { return Rng(logged_seed(site_seed)); }

// ---- comparison predicates (use with EXPECT_TRUE for rich messages) ------

inline double max_abs_diff(const la::Vector& a, const la::Vector& b) {
  if (a.size() != b.size()) return std::numeric_limits<double>::infinity();
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    worst = std::max(worst, std::abs(a[i] - b[i]));
  return worst;
}

inline double max_abs_diff(const la::Matrix& a, const la::Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols())
    return std::numeric_limits<double>::infinity();
  double worst = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      worst = std::max(worst, std::abs(a(i, j) - b(i, j)));
  return worst;
}

inline ::testing::AssertionResult vectors_near(const la::Vector& a,
                                               const la::Vector& b,
                                               double tol) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure()
           << "size mismatch: " << a.size() << " vs " << b.size();
  const double worst = max_abs_diff(a, b);
  if (worst <= tol) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "max abs diff " << worst << " > tol " << tol;
}

inline ::testing::AssertionResult matrices_near(const la::Matrix& a,
                                                const la::Matrix& b,
                                                double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols())
    return ::testing::AssertionFailure()
           << "shape mismatch: " << a.rows() << "x" << a.cols() << " vs "
           << b.rows() << "x" << b.cols();
  const double worst = max_abs_diff(a, b);
  if (worst <= tol) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "max abs diff " << worst << " > tol " << tol;
}

/// ||A x - b||_inf / max(1, ||b||_inf): the solver suites all judge
/// solutions by this scaled residual.
inline double relative_residual(const la::Matrix& a, const la::Vector& x,
                                const la::Vector& b) {
  double scale = 1.0, worst = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) scale = std::max(scale, std::abs(b[i]));
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double r = -b[i];
    for (std::size_t j = 0; j < a.cols(); ++j) r += a(i, j) * x[j];
    worst = std::max(worst, std::abs(r));
  }
  return worst / scale;
}

// ---- seed-taking conveniences over the check:: generators ----------------
// These mirror the historical per-file helper signatures (size, seed) so the
// older suites route through one logged generator stack instead of each
// rolling its own mt19937.

inline la::Vector random_vector(std::size_t n, std::uint64_t site_seed,
                                double scale = 1.0) {
  Rng rng = test_rng(site_seed);
  return check::random_vector(rng, n, scale);
}

inline la::Matrix random_matrix(std::size_t rows, std::size_t cols,
                                std::uint64_t site_seed) {
  Rng rng = test_rng(site_seed);
  return check::random_matrix(rng, rows, cols);
}

inline la::Matrix random_spd(std::size_t n, std::uint64_t site_seed) {
  Rng rng = test_rng(site_seed);
  return check::random_spd(rng, n);
}

inline la::Matrix random_diag_dominant(std::size_t n, std::uint64_t site_seed) {
  Rng rng = test_rng(site_seed);
  return check::random_diag_dominant(rng, n);
}

}  // namespace updec::testing_support
