// Tests for the unsteady heat solver (the paper's "incorporate time"
// future-work direction): analytic mode decay, steady-state recovery,
// maximum-principle sanity and theta-scheme consistency.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "la/blas.hpp"
#include "pde/heat.hpp"
#include "pointcloud/generators.hpp"

namespace {

using updec::la::Vector;
using updec::pc::PointCloud;
using updec::pde::HeatSolver;

constexpr double kPi = std::numbers::pi;

Vector mode_field(const PointCloud& cloud) {
  Vector u(cloud.size());
  for (std::size_t i = 0; i < cloud.size(); ++i) {
    const auto p = cloud.node(i).pos;
    u[i] = std::sin(kPi * p.x) * std::sin(kPi * p.y);
  }
  return u;
}

const auto kZeroBoundary = [](const updec::pc::Node&, double) { return 0.0; };

TEST(Heat, FundamentalModeDecaysAtTheAnalyticRate) {
  // u0 = sin(pi x) sin(pi y) decays as exp(-2 pi^2 alpha t).
  const PointCloud cloud = updec::pc::unit_square_grid(16, 16);
  const updec::rbf::PolyharmonicSpline kernel(3);
  const double alpha = 0.1, dt = 2e-3;
  const HeatSolver solver(cloud, kernel, alpha, dt);
  const std::size_t steps = 50;
  const Vector u0 = mode_field(cloud);
  const Vector u = solver.advance(u0, kZeroBoundary, 0.0, steps);
  const double t = dt * static_cast<double>(steps);
  const double factor = std::exp(-2.0 * kPi * kPi * alpha * t);
  double max_err = 0.0;
  for (std::size_t i = 0; i < cloud.num_internal(); ++i)
    max_err = std::max(max_err, std::abs(u[i] - factor * u0[i]));
  EXPECT_LT(max_err, 0.02);
}

TEST(Heat, ConvergesToTheSteadyLaplaceSolution) {
  // With fixed boundary data the long-time limit solves Lap u = 0; check
  // against the harmonic function u = x + 2y whose trace we impose.
  const PointCloud cloud = updec::pc::unit_square_grid(12, 12);
  const updec::rbf::PolyharmonicSpline kernel(3);
  const HeatSolver solver(cloud, kernel, 0.5, 5e-3);
  const auto boundary = [](const updec::pc::Node& n, double) {
    return n.pos.x + 2.0 * n.pos.y;
  };
  Vector u(cloud.size(), 0.0);
  u = solver.advance(u, boundary, 0.0, 800);
  double max_err = 0.0;
  for (std::size_t i = 0; i < cloud.size(); ++i) {
    const auto p = cloud.node(i).pos;
    max_err = std::max(max_err, std::abs(u[i] - (p.x + 2.0 * p.y)));
  }
  EXPECT_LT(max_err, 5e-3);
}

TEST(Heat, RespectsTheMaximumPrincipleApproximately) {
  const PointCloud cloud = updec::pc::unit_square_grid(14, 14);
  const updec::rbf::PolyharmonicSpline kernel(3);
  const HeatSolver solver(cloud, kernel, 0.2, 2e-3);
  const Vector u0 = mode_field(cloud);
  Vector u = u0;
  for (int s = 0; s < 100; ++s) {
    u = solver.step(u, kZeroBoundary, 0.0);
    EXPECT_LE(updec::la::nrm_inf(u), 1.0 + 1e-6);  // bounded by the initial max
  }
  // Strictly decaying energy.
  EXPECT_LT(updec::la::nrm2(u), updec::la::nrm2(u0));
}

TEST(Heat, RejectsBadParameters) {
  const PointCloud cloud = updec::pc::unit_square_grid(8, 8);
  const updec::rbf::PolyharmonicSpline kernel(3);
  EXPECT_THROW(HeatSolver(cloud, kernel, -1.0, 1e-3), updec::Error);
  EXPECT_THROW(HeatSolver(cloud, kernel, 1.0, 0.0), updec::Error);
  EXPECT_THROW(HeatSolver(cloud, kernel, 1.0, 1e-3, 1.5), updec::Error);
}

// Property sweep: implicit Euler (theta = 1) stays stable at large dt where
// the explicit scheme (theta = 0) diverges.
class HeatThetaStability : public ::testing::TestWithParam<double> {};

TEST_P(HeatThetaStability, LargeStepBehaviour) {
  const double theta = GetParam();
  const PointCloud cloud = updec::pc::unit_square_grid(12, 12);
  const updec::rbf::PolyharmonicSpline kernel(3);
  const double big_dt = 0.05;  // far above the explicit diffusive limit
  const HeatSolver solver(cloud, kernel, 1.0, big_dt, theta);
  Vector u = mode_field(cloud);
  u = solver.advance(u, kZeroBoundary, 0.0, 40);
  const double norm = updec::la::nrm_inf(u);
  if (theta >= 0.5) {
    EXPECT_TRUE(std::isfinite(norm));
    EXPECT_LT(norm, 1.0);  // decayed
  } else {
    EXPECT_GT(norm, 10.0);  // explicit scheme blows up at this dt
  }
}

INSTANTIATE_TEST_SUITE_P(Thetas, HeatThetaStability,
                         ::testing::Values(0.0, 0.5, 0.55, 1.0));

}  // namespace
