// Tests for the Laplace optimal-control problem and its DP / DAL / FD
// gradient strategies, plus the shared optimisation driver.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "control/driver.hpp"
#include "control/laplace_problem.hpp"
#include "la/blas.hpp"
#include "optim/lbfgs.hpp"

namespace {

using updec::control::DriverOptions;
using updec::control::LaplaceControlProblem;
using updec::la::Vector;

double cosine(const Vector& a, const Vector& b) {
  return updec::la::dot(a, b) /
         (updec::la::nrm2(a) * updec::la::nrm2(b) + 1e-300);
}

class LaplaceControlTest : public ::testing::Test {
 protected:
  LaplaceControlTest()
      : kernel_(3),
        problem_(std::make_shared<LaplaceControlProblem>(16, kernel_)) {}

  updec::rbf::PolyharmonicSpline kernel_;
  std::shared_ptr<LaplaceControlProblem> problem_;
};

TEST_F(LaplaceControlTest, CostIsPositiveAndZeroIshAtAnalyticControl) {
  const double j0 = problem_->cost(problem_->initial_control());
  const double j_star = problem_->cost(problem_->analytic_control());
  EXPECT_GT(j0, 0.1);
  // The analytic minimiser is optimal for the continuous problem; the
  // discrete cost at it is small but nonzero (flux discretisation error,
  // ~0.06 on a 16x16 grid).
  EXPECT_LT(j_star, 0.15 * j0);
}

TEST_F(LaplaceControlTest, DpGradientMatchesFd) {
  auto dp = updec::control::make_laplace_dp(problem_);
  auto fd = updec::control::make_laplace_fd(problem_);
  Vector c = problem_->initial_control();
  c[3] = 0.2;  // break symmetry
  Vector g_dp, g_fd;
  const double j_dp = dp->value_and_gradient(c, g_dp);
  const double j_fd = fd->value_and_gradient(c, g_fd);
  EXPECT_NEAR(j_dp, j_fd, 1e-10);
  ASSERT_EQ(g_dp.size(), g_fd.size());
  for (std::size_t i = 0; i < g_dp.size(); ++i)
    EXPECT_NEAR(g_dp[i], g_fd[i], 1e-5 * (1.0 + std::abs(g_fd[i])));
}

TEST_F(LaplaceControlTest, DalGradientAgreesInDirectionWithDp) {
  // The paper finds DAL workable on Laplace although its OTD gradient is
  // noisy near the corners (the "gradients rising to very large values" of
  // section 4): central components agree strongly with DP's exact discrete
  // gradient, the wall extremes do not.
  auto dp = updec::control::make_laplace_dp(problem_);
  auto dal = updec::control::make_laplace_dal(problem_);
  Vector c = problem_->initial_control();
  Vector g_dp, g_dal;
  dp->value_and_gradient(c, g_dp);
  dal->value_and_gradient(c, g_dal);
  Vector central_dp, central_dal;
  for (std::size_t i = g_dp.size() / 4; i < 3 * g_dp.size() / 4; ++i) {
    central_dp.std().push_back(g_dp[i]);
    central_dal.std().push_back(g_dal[i]);
  }
  EXPECT_GT(cosine(central_dp, central_dal), 0.9);
  // Corner components of the exact discrete gradient dwarf DAL's smooth
  // continuous gradient there (Runge phenomenon).
  EXPECT_GT(std::abs(g_dp[0]), 5.0 * std::abs(g_dal[0]));
}

TEST_F(LaplaceControlTest, StrategiesReportTheSameCost) {
  auto dp = updec::control::make_laplace_dp(problem_);
  auto dal = updec::control::make_laplace_dal(problem_);
  auto fd = updec::control::make_laplace_fd(problem_);
  const Vector c = problem_->analytic_control();
  Vector g;
  const double j_ref = problem_->cost(c);
  EXPECT_NEAR(dp->value_and_gradient(c, g), j_ref, 1e-12);
  EXPECT_NEAR(dal->value_and_gradient(c, g), j_ref, 1e-12);
  EXPECT_NEAR(fd->value_and_gradient(c, g), j_ref, 1e-12);
}

TEST_F(LaplaceControlTest, DpOptimisationDrivesCostDown) {
  auto dp = updec::control::make_laplace_dp(problem_);
  DriverOptions options;
  options.iterations = 250;
  options.initial_learning_rate = 1e-2;
  const auto result = updec::control::optimize(*problem_, *dp, options);
  const double j0 = result.cost_history.front();
  EXPECT_LT(result.final_cost, 5e-3 * j0);  // orders of magnitude (Fig. 3b)
  EXPECT_EQ(result.iterations, 250u);
  EXPECT_GT(result.seconds, 0.0);
  EXPECT_GT(result.peak_rss_bytes, 0u);
}

TEST_F(LaplaceControlTest, DpWithLbfgsRecoversAnalyticControlShape) {
  // Adam crawls through the corner-dominated ill-conditioning; L-BFGS over
  // the same exact DP gradients reaches the discrete minimum, whose control
  // converges to the analytic minimiser with resolution.
  auto dp = updec::control::make_laplace_dp(problem_);
  updec::optim::LbfgsOptions options;
  options.max_iterations = 300;
  options.history = 30;
  const auto result = updec::optim::lbfgs_minimize(
      [&](const Vector& c, Vector& g) { return dp->value_and_gradient(c, g); },
      problem_->initial_control(), options);
  EXPECT_LT(result.value, 1e-5);
  const Vector c_star = problem_->analytic_control();
  EXPECT_GT(cosine(result.x, c_star), 0.9);
  double err = 0.0;
  for (std::size_t i = 2; i + 2 < c_star.size(); ++i)
    err = std::max(err, std::abs(result.x[i] - c_star[i]));
  EXPECT_LT(err, 0.2);
}

TEST_F(LaplaceControlTest, DalOptimisationConverges) {
  auto dal = updec::control::make_laplace_dal(problem_);
  DriverOptions options;
  options.iterations = 250;
  options.initial_learning_rate = 1e-2;
  const auto r_dal = updec::control::optimize(*problem_, *dal, options);
  const double j0 = r_dal.cost_history.front();
  EXPECT_LT(r_dal.final_cost, 0.1 * j0);  // DAL does work on Laplace
}

TEST(LaplaceControlOrdering, DpBeatsDalAtBenchResolution) {
  // On coarse grids Adam hyper-parameters can flip the ordering; from
  // ~32x32 upwards DP ends far below DAL at the paper's settings
  // (Fig. 3b / Table 3), with DAL degrading as resolution grows.
  const updec::rbf::PolyharmonicSpline kernel(3);
  auto problem = std::make_shared<LaplaceControlProblem>(32, kernel);
  auto dp = updec::control::make_laplace_dp(problem);
  auto dal = updec::control::make_laplace_dal(problem);
  DriverOptions options;
  options.iterations = 400;
  options.initial_learning_rate = 1e-2;
  const auto r_dp = updec::control::optimize(*problem, *dp, options);
  const auto r_dal = updec::control::optimize(*problem, *dal, options);
  EXPECT_LT(r_dp.final_cost, 0.1 * r_dal.final_cost);
}

TEST_F(LaplaceControlTest, StateErrorSmallAfterDpOptimisation) {
  auto dp = updec::control::make_laplace_dp(problem_);
  updec::optim::LbfgsOptions options;
  options.max_iterations = 300;
  options.history = 30;
  const auto result = updec::optim::lbfgs_minimize(
      [&](const Vector& c, Vector& g) { return dp->value_and_gradient(c, g); },
      problem_->initial_control(), options);
  // Fig. 3f/3g: the optimised state tracks the analytic solution (to the
  // 16x16 discretisation error).
  EXPECT_LT(problem_->state_error(result.x), 0.2);
}

TEST_F(LaplaceControlTest, OptimizeFromCustomStart) {
  auto dp = updec::control::make_laplace_dp(problem_);
  DriverOptions options;
  options.iterations = 50;
  options.initial_learning_rate = 1e-4;  // small steps near the minimiser
  const Vector start = problem_->analytic_control();
  const auto result =
      updec::control::optimize_from(start, *dp, options);
  // Starting at the analytic minimiser with a small rate, the cost stays
  // near its discrete value (~0.06 on this grid) throughout.
  for (const double j : result.cost_history) EXPECT_LT(j, 0.1);
}

TEST_F(LaplaceControlTest, GradientClippingKeepsStepsBounded) {
  auto dal = updec::control::make_laplace_dal(problem_);
  DriverOptions options;
  options.iterations = 30;
  options.gradient_clip = 1e-3;
  const auto result = updec::control::optimize(*problem_, *dal, options);
  // With a tiny clip the control barely moves from zero.
  EXPECT_LT(updec::la::nrm_inf(result.control), 0.5);
}

}  // namespace
