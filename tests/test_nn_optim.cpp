// Tests for the MLP substrate and the optimisers: forward correctness,
// gradients (tape) and input derivatives (Dual2), Adam/SGD/L-BFGS on
// standard landscapes, and the paper's learning-rate schedule.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "testing_common.hpp"
#include "autodiff/dual2.hpp"
#include "autodiff/ops.hpp"
#include "nn/mlp.hpp"
#include "la/blas.hpp"
#include "optim/lbfgs.hpp"
#include "optim/optimizer.hpp"

namespace {

using updec::ad::Dual2;
using updec::ad::Tape;
using updec::ad::Var;
using updec::ad::VarVec;
using updec::la::Vector;
using updec::nn::Activation;
using updec::nn::Mlp;

TEST(Mlp, ParameterCountMatchesArchitecture) {
  // Paper's Laplace network: 2 inputs, 3 hidden layers of 30, 1 output.
  const Mlp mlp({2, 30, 30, 30, 1}, Activation::kTanh);
  EXPECT_EQ(mlp.num_parameters(),
            (2 * 30 + 30) + (30 * 30 + 30) + (30 * 30 + 30) + (30 * 1 + 1));
  EXPECT_EQ(mlp.num_inputs(), 2u);
  EXPECT_EQ(mlp.num_outputs(), 1u);
  EXPECT_NE(mlp.summary().find("2x30x30x30x1"), std::string::npos);
}

TEST(Mlp, ForwardMatchesManualTinyNetwork) {
  // 1-2-1 tanh network with hand-set weights.
  Mlp mlp({1, 2, 1}, Activation::kTanh);
  // Layout: W1 (2x1) = [w10, w11], b1 (2), W2 (1x2), b2 (1).
  const std::vector<double> params = {0.5, -1.0, 0.1, 0.2, 2.0, -3.0, 0.25};
  mlp.set_parameters(params);
  const double x = 0.7;
  const double h0 = std::tanh(0.5 * x + 0.1);
  const double h1 = std::tanh(-1.0 * x + 0.2);
  const double expected = 2.0 * h0 - 3.0 * h1 + 0.25;
  const auto out = mlp.forward(std::vector<double>{x});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out[0], expected, 1e-14);
}

TEST(Mlp, DeterministicInitialisationPerSeed) {
  const Mlp a({2, 8, 1}, Activation::kTanh, 3);
  const Mlp b({2, 8, 1}, Activation::kTanh, 3);
  const Mlp c({2, 8, 1}, Activation::kTanh, 4);
  EXPECT_EQ(a.parameters(), b.parameters());
  EXPECT_NE(a.parameters(), c.parameters());
}

TEST(Mlp, GlorotInitialisationBounded) {
  const Mlp mlp({10, 20, 1}, Activation::kTanh, 1);
  const double a1 = std::sqrt(6.0 / 30.0);
  for (std::size_t i = 0; i < 200; ++i)
    EXPECT_LE(std::abs(mlp.parameters()[i]), a1);
}

TEST(Mlp, TapeGradientMatchesFiniteDifferences) {
  Mlp mlp({2, 6, 1}, Activation::kTanh, 7);
  const Vector x0{0.3, -0.5};
  const auto loss_of = [&](const std::vector<double>& params) {
    Mlp m = mlp;
    m.set_parameters(params);
    const auto out = m.forward(std::span<const double>(x0.std()));
    return out[0] * out[0];
  };

  Tape tape;
  VarVec theta = updec::ad::make_variables(tape, Vector(mlp.parameters()));
  std::vector<Var> inputs = {tape.constant(x0[0]), tape.constant(x0[1])};
  const auto out = mlp.forward<Var, Var>(
      std::span<const Var>(theta), std::span<const Var>(inputs),
      [](const Var& w) { return w; });
  Var loss = out[0] * out[0];
  tape.backward(loss);

  const double h = 1e-6;
  for (const std::size_t i : {0ul, 5ul, 12ul, mlp.num_parameters() - 1}) {
    auto pp = mlp.parameters();
    auto pm = mlp.parameters();
    pp[i] += h;
    pm[i] -= h;
    const double g_fd = (loss_of(pp) - loss_of(pm)) / (2 * h);
    EXPECT_NEAR(theta[i].adjoint(), g_fd, 1e-6 * (1.0 + std::abs(g_fd)));
  }
}

TEST(Mlp, Dual2InputDerivativesMatchFiniteDifferences) {
  const Mlp mlp({2, 10, 10, 1}, Activation::kTanh, 11);
  const double x0 = 0.4, y0 = -0.2;
  const auto f = [&](double x, double y) {
    return mlp.forward(std::vector<double>{x, y})[0];
  };
  std::vector<Dual2<double>> inputs = {updec::ad::dual2_x(x0),
                                       updec::ad::dual2_y(y0)};
  const auto out = mlp.forward<Dual2<double>, double>(
      std::span<const double>(mlp.parameters()),
      std::span<const Dual2<double>>(inputs),
      [](double w) { return updec::ad::dual2_constant(w); });
  const double h = 1e-5;
  EXPECT_NEAR(out[0].v, f(x0, y0), 1e-14);
  EXPECT_NEAR(out[0].gx, (f(x0 + h, y0) - f(x0 - h, y0)) / (2 * h), 1e-7);
  EXPECT_NEAR(out[0].gy, (f(x0, y0 + h) - f(x0, y0 - h)) / (2 * h), 1e-7);
  EXPECT_NEAR(out[0].hxx,
              (f(x0 + h, y0) - 2 * f(x0, y0) + f(x0 - h, y0)) / (h * h), 1e-4);
  EXPECT_NEAR(out[0].hyy,
              (f(x0, y0 + h) - 2 * f(x0, y0) + f(x0, y0 - h)) / (h * h), 1e-4);
}

TEST(Mlp, ForwardOverReverseResidualGradient) {
  // d/dtheta of the PINN residual u_xx + u_yy at one point, against FD.
  Mlp mlp({2, 5, 1}, Activation::kTanh, 13);
  const double x0 = 0.25, y0 = 0.65;
  const auto residual_of = [&](const std::vector<double>& params) {
    Mlp m = mlp;
    m.set_parameters(params);
    std::vector<Dual2<double>> in = {updec::ad::dual2_x(x0),
                                     updec::ad::dual2_y(y0)};
    const auto out = m.forward<Dual2<double>, double>(
        std::span<const double>(m.parameters()),
        std::span<const Dual2<double>>(in),
        [](double w) { return updec::ad::dual2_constant(w); });
    return out[0].hxx + out[0].hyy;
  };

  Tape tape;
  VarVec theta = updec::ad::make_variables(tape, Vector(mlp.parameters()));
  const Var zero = tape.constant(0.0);
  const Var one = tape.constant(1.0);
  std::vector<Dual2<Var>> in = {
      {tape.constant(x0), one, zero, zero, zero, zero},
      {tape.constant(y0), zero, one, zero, zero, zero}};
  const auto out = mlp.forward<Dual2<Var>, Var>(
      std::span<const Var>(theta), std::span<const Dual2<Var>>(in),
      [&](const Var& w) {
        return Dual2<Var>{w, zero, zero, zero, zero, zero};
      });
  Var r = out[0].hxx + out[0].hyy;
  tape.backward(r);
  EXPECT_NEAR(r.value(), residual_of(mlp.parameters()), 1e-12);

  const double h = 1e-6;
  for (const std::size_t i : {0ul, 3ul, 9ul, mlp.num_parameters() - 1}) {
    auto pp = mlp.parameters();
    auto pm = mlp.parameters();
    pp[i] += h;
    pm[i] -= h;
    const double g_fd = (residual_of(pp) - residual_of(pm)) / (2 * h);
    EXPECT_NEAR(theta[i].adjoint(), g_fd, 1e-4 * (1.0 + std::abs(g_fd)));
  }
}

TEST(Mlp, ReluAndSinActivationsWork) {
  Mlp relu({1, 4, 1}, Activation::kRelu, 5);
  Mlp sinnet({1, 4, 1}, Activation::kSin, 5);
  EXPECT_TRUE(std::isfinite(relu.forward(std::vector<double>{0.5})[0]));
  EXPECT_TRUE(std::isfinite(sinnet.forward(std::vector<double>{0.5})[0]));
  EXPECT_NE(relu.forward(std::vector<double>{0.5})[0],
            sinnet.forward(std::vector<double>{0.5})[0]);
}

TEST(Optim, PaperScheduleDropsTwice) {
  const updec::optim::PaperSchedule schedule(1e-2, 1000);
  EXPECT_DOUBLE_EQ(schedule.rate(0), 1e-2);
  EXPECT_DOUBLE_EQ(schedule.rate(499), 1e-2);
  EXPECT_DOUBLE_EQ(schedule.rate(500), 1e-3);
  EXPECT_DOUBLE_EQ(schedule.rate(749), 1e-3);
  EXPECT_DOUBLE_EQ(schedule.rate(750), 1e-4);
  EXPECT_DOUBLE_EQ(schedule.rate(999), 1e-4);
}

TEST(Optim, ExponentialScheduleDecays) {
  const updec::optim::ExponentialSchedule schedule(1.0, 0.5, 10);
  EXPECT_DOUBLE_EQ(schedule.rate(0), 1.0);
  EXPECT_NEAR(schedule.rate(10), 0.5, 1e-12);
  EXPECT_NEAR(schedule.rate(20), 0.25, 1e-12);
}

TEST(Optim, AdamMinimisesQuadratic) {
  auto schedule = std::make_shared<updec::optim::ConstantSchedule>(0.1);
  updec::optim::Adam adam(schedule);
  Vector x{5.0, -3.0};
  for (std::size_t it = 0; it < 500; ++it) {
    const Vector g{2.0 * (x[0] - 1.0), 2.0 * (x[1] + 2.0)};
    adam.step(x, g, it);
  }
  EXPECT_NEAR(x[0], 1.0, 1e-3);
  EXPECT_NEAR(x[1], -2.0, 1e-3);
}

TEST(Optim, AdamHandlesRosenbrock) {
  auto schedule = std::make_shared<updec::optim::ConstantSchedule>(0.02);
  updec::optim::Adam adam(schedule);
  Vector x{-1.2, 1.0};
  for (std::size_t it = 0; it < 20000; ++it) {
    const double a = x[0], b = x[1];
    const Vector g{-2.0 * (1.0 - a) - 400.0 * a * (b - a * a),
                   200.0 * (b - a * a)};
    adam.step(x, g, it);
  }
  EXPECT_NEAR(x[0], 1.0, 5e-2);
  EXPECT_NEAR(x[1], 1.0, 1e-1);
}

TEST(Optim, SgdWithMomentumBeatsPlainSgdOnIllConditionedQuadratic) {
  const auto grad = [](const Vector& x) {
    return Vector{2.0 * x[0], 100.0 * x[1]};
  };
  auto schedule = std::make_shared<updec::optim::ConstantSchedule>(0.008);
  updec::optim::Sgd plain(schedule, 0.0);
  updec::optim::Sgd momentum(schedule, 0.9);
  Vector xp{1.0, 1.0}, xm{1.0, 1.0};
  for (std::size_t it = 0; it < 300; ++it) {
    plain.step(xp, grad(xp), it);
    momentum.step(xm, grad(xm), it);
  }
  const double fp = xp[0] * xp[0] + 50.0 * xp[1] * xp[1];
  const double fm = xm[0] * xm[0] + 50.0 * xm[1] * xm[1];
  EXPECT_LT(fm, fp);
}

TEST(Optim, ClipByNorm) {
  Vector g{3.0, 4.0};
  const double norm = updec::optim::clip_by_norm(g, 1.0);
  EXPECT_DOUBLE_EQ(norm, 5.0);
  EXPECT_NEAR(updec::la::nrm2(g), 1.0, 1e-14);
  Vector small{0.1, 0.0};
  updec::optim::clip_by_norm(small, 1.0);
  EXPECT_DOUBLE_EQ(small[0], 0.1);  // untouched below the cap
}

TEST(Optim, LbfgsSolvesQuadraticInFewIterations) {
  const auto objective = [](const Vector& x, Vector& g) {
    g = Vector{2.0 * (x[0] - 3.0), 8.0 * (x[1] + 1.0)};
    return (x[0] - 3.0) * (x[0] - 3.0) + 4.0 * (x[1] + 1.0) * (x[1] + 1.0);
  };
  const auto result =
      updec::optim::lbfgs_minimize(objective, Vector{0.0, 0.0});
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.iterations, 30u);
  EXPECT_NEAR(result.x[0], 3.0, 1e-6);
  EXPECT_NEAR(result.x[1], -1.0, 1e-6);
}

TEST(Optim, LbfgsSolvesRosenbrockFasterThanAdam) {
  const auto objective = [](const Vector& x, Vector& g) {
    const double a = x[0], b = x[1];
    g = Vector{-2.0 * (1.0 - a) - 400.0 * a * (b - a * a),
               200.0 * (b - a * a)};
    return (1.0 - a) * (1.0 - a) + 100.0 * (b - a * a) * (b - a * a);
  };
  updec::optim::LbfgsOptions options;
  options.max_iterations = 200;
  const auto result =
      updec::optim::lbfgs_minimize(objective, Vector{-1.2, 1.0}, options);
  EXPECT_NEAR(result.x[0], 1.0, 1e-4);
  EXPECT_NEAR(result.x[1], 1.0, 1e-4);
  EXPECT_LT(result.iterations, 200u);  // Adam above needed 20k steps
  // Objective history is monotonically non-increasing (Armijo guarantees).
  for (std::size_t i = 1; i < result.history.size(); ++i)
    EXPECT_LE(result.history[i], result.history[i - 1] + 1e-12);
}

// Property sweep: Adam converges on random strongly convex quadratics.
class AdamConvex : public ::testing::TestWithParam<int> {};

TEST_P(AdamConvex, Converges) {
  updec::Rng rng = updec::testing_support::test_rng(GetParam());
  const std::size_t n = 5;
  Vector target(n), scale(n);
  for (std::size_t i = 0; i < n; ++i) {
    target[i] = rng.uniform(-2.0, 2.0);
    scale[i] = rng.uniform(0.5, 5.0);
  }
  auto schedule = std::make_shared<updec::optim::PaperSchedule>(0.1, 2000);
  updec::optim::Adam adam(schedule);
  Vector x(n, 0.0);
  for (std::size_t it = 0; it < 2000; ++it) {
    Vector g(n);
    for (std::size_t i = 0; i < n; ++i)
      g[i] = 2.0 * scale[i] * (x[i] - target[i]);
    adam.step(x, g, it);
  }
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], target[i], 1e-2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdamConvex, ::testing::Range(1, 9));

}  // namespace
