// Tests for the PINN strategy: training reduces the multi-objective loss,
// derivatives and costs are consistent, and the two-step omega line search
// of section 2.3 runs end to end.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "control/omega_search.hpp"
#include "control/laplace_problem.hpp"

namespace {

using updec::control::ChannelPinn;
using updec::control::LaplacePinn;
using updec::control::PinnConfig;
using updec::la::Vector;

PinnConfig tiny_laplace_config() {
  PinnConfig config;
  config.u_hidden = {16, 16};
  config.c_hidden = {8};
  config.epochs = 220;
  config.n_interior = 220;
  config.n_boundary = 24;
  config.batch_interior = 48;
  config.batch_boundary = 16;
  config.learning_rate = 2e-3;
  config.omega = 0.1;
  config.seed = 5;
  return config;
}

double mean_of(const std::vector<double>& v, std::size_t from,
               std::size_t to) {
  return std::accumulate(v.begin() + static_cast<std::ptrdiff_t>(from),
                         v.begin() + static_cast<std::ptrdiff_t>(to), 0.0) /
         static_cast<double>(to - from);
}

TEST(LaplacePinnTest, TrainingReducesTotalLoss) {
  LaplacePinn pinn(tiny_laplace_config());
  pinn.train();
  const auto& hist = pinn.history().total_loss;
  ASSERT_EQ(hist.size(), 220u);
  const double early = mean_of(hist, 0, 30);
  const double late = mean_of(hist, hist.size() - 30, hist.size());
  EXPECT_LT(late, 0.8 * early);
  for (const double v : hist) EXPECT_TRUE(std::isfinite(v));
}

TEST(LaplacePinnTest, TrainingReducesPdeResidual) {
  LaplacePinn pinn(tiny_laplace_config());
  const double residual_before = pinn.pde_residual();
  pinn.train();
  EXPECT_LT(pinn.pde_residual(), residual_before);
}

TEST(LaplacePinnTest, ControlSamplingAndCostAreFinite) {
  LaplacePinn pinn(tiny_laplace_config());
  pinn.train();
  const Vector c = pinn.control_at({0.0, 0.25, 0.5, 0.75, 1.0});
  ASSERT_EQ(c.size(), 5u);
  for (const double v : c.std()) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_LT(std::abs(v), 5.0);
  }
  EXPECT_TRUE(std::isfinite(pinn.network_cost()));
}

TEST(LaplacePinnTest, FrozenControlDoesNotMove) {
  PinnConfig config = tiny_laplace_config();
  config.train_control = false;
  config.alternating = false;
  config.epochs = 40;
  LaplacePinn pinn(config);
  const auto before = pinn.c_net().parameters();
  pinn.train();
  EXPECT_EQ(pinn.c_net().parameters(), before);
  // Meanwhile the solution network did move.
  LaplacePinn fresh(config);
  EXPECT_NE(pinn.u_net().parameters(), fresh.u_net().parameters());
}

TEST(LaplacePinnTest, ResetSolutionNetworkReinitialises) {
  LaplacePinn pinn(tiny_laplace_config());
  const auto params0 = pinn.u_net().parameters();
  pinn.train();
  EXPECT_NE(pinn.u_net().parameters(), params0);
  pinn.reset_solution_network(99);
  EXPECT_NE(pinn.u_net().parameters(), params0);  // new seed, new weights
  EXPECT_TRUE(pinn.history().total_loss.empty());
}

TEST(OmegaSearch, TwoStepSearchPicksAnOmega) {
  PinnConfig base = tiny_laplace_config();
  base.epochs = 120;
  const updec::rbf::PolyharmonicSpline kernel(3);
  auto problem =
      std::make_shared<updec::control::LaplaceControlProblem>(12, kernel);
  const std::vector<double> xs = problem->solver().control_x();
  const auto result = updec::control::laplace_omega_search(
      base, {1e-2, 1e-1, 1.0}, xs,
      [&](const Vector& c) { return problem->cost(c); });
  ASSERT_EQ(result.entries.size(), 3u);
  EXPECT_LT(result.best_index, 3u);
  EXPECT_DOUBLE_EQ(result.entries[result.best_index].omega,
                   result.best_omega);
  EXPECT_EQ(result.best_control.size(), xs.size());
  EXPECT_TRUE(result.best_control_net.has_value());
  for (const auto& entry : result.entries) {
    EXPECT_TRUE(std::isfinite(entry.step1_network_cost));
    EXPECT_TRUE(std::isfinite(entry.step2_network_cost));
    EXPECT_TRUE(std::isfinite(entry.reference_cost));
    EXPECT_GE(entry.step2_pde_residual, 0.0);
  }
  // The winner has the smallest step-2 cost by construction.
  for (const auto& entry : result.entries)
    EXPECT_LE(result.entries[result.best_index].step2_network_cost,
              entry.step2_network_cost);
}

TEST(ChannelPinnTest, TrainingReducesTotalLoss) {
  PinnConfig config;
  config.u_hidden = {20, 20};
  config.c_hidden = {8};
  config.epochs = 120;
  config.n_interior = 200;
  config.n_boundary = 20;
  config.batch_interior = 24;
  config.batch_boundary = 10;
  config.learning_rate = 2e-3;
  config.omega = 1.0;
  config.seed = 8;
  updec::pc::ChannelSpec spec;
  ChannelPinn pinn(config, spec, 20.0, 0.3);
  pinn.train();
  const auto& hist = pinn.history().total_loss;
  ASSERT_EQ(hist.size(), 120u);
  const double early = mean_of(hist, 0, 20);
  const double late = mean_of(hist, hist.size() - 20, hist.size());
  EXPECT_LT(late, early);
  for (const double v : hist) EXPECT_TRUE(std::isfinite(v));
  // Profiles and costs sane.
  const Vector inflow = pinn.control_at({0.25, 0.5, 0.75});
  const Vector outflow = pinn.outflow_at({0.25, 0.5, 0.75});
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(std::isfinite(inflow[i]));
    EXPECT_TRUE(std::isfinite(outflow[i]));
  }
  EXPECT_TRUE(std::isfinite(pinn.network_cost()));
  EXPECT_TRUE(std::isfinite(pinn.pde_residual()));
}

}  // namespace
