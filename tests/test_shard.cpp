/// \file test_shard.cpp
/// \brief Sharded multi-process serving: wire codec, fingerprint routing,
///        async completion streaming, cancel/deadline across the process
///        boundary, crash resubmission and cross-process stats aggregation.

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "serve/cache.hpp"
#include "serve/scheduler.hpp"
#include "serve/shard.hpp"
#include "serve/wire.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"
#include "util/metrics.hpp"

namespace {

using namespace updec;
using serve::JobReport;
using serve::JobStatus;
using serve::Scenario;
using serve::ShardOptions;
using serve::ShardPool;

Scenario small_scenario(const std::string& id, std::size_t grid_n,
                        std::uint64_t seed) {
  Scenario sc;
  sc.id = id;
  sc.problem = serve::ProblemKind::kLaplace;
  sc.strategy = serve::Strategy::kDal;
  sc.grid_n = grid_n;
  sc.iterations = 3;
  sc.learning_rate = 1e-2;
  sc.seed = seed;
  sc.control_jitter = 0.05;
  return sc;
}

/// A job that runs "forever" (sub-convergence learning rate, huge budget) so
/// cancel/deadline tests have something in flight to interrupt.
Scenario long_scenario(const std::string& id) {
  Scenario sc = small_scenario(id, 6, 1);
  sc.iterations = 2000000;
  sc.learning_rate = 1e-13;
  sc.control_jitter = 0.0;
  return sc;
}

// ---- wire codec ----------------------------------------------------------

TEST(Wire, JobFrameRoundTripsBitwise) {
  serve::wire::JobFrame job;
  job.job_id = 42;
  job.deadline_ms = 1234.5;
  job.retry.max_retries = 3;
  job.retry.backoff_ms = 12.5;
  job.retry.allow_degraded = false;
  job.retry.soft_deadline_fraction = 0.75;
  job.scenario = small_scenario("alpha/1", 11, 0xDEADBEEFull);
  job.scenario.problem = serve::ProblemKind::kChannel;
  job.scenario.reynolds = 3.25;
  job.scenario.target_nodes = 777;
  job.scenario.poly_degree = -2;
  job.scenario.deadline_ms = 99.0;

  const std::string payload = serve::wire::encode_job(job);
  const serve::wire::JobFrame back = serve::wire::decode_job(payload);
  EXPECT_EQ(back.job_id, job.job_id);
  EXPECT_EQ(back.deadline_ms, job.deadline_ms);
  EXPECT_EQ(back.retry.max_retries, job.retry.max_retries);
  EXPECT_EQ(back.retry.backoff_ms, job.retry.backoff_ms);
  EXPECT_EQ(back.retry.allow_degraded, job.retry.allow_degraded);
  EXPECT_EQ(back.retry.soft_deadline_fraction,
            job.retry.soft_deadline_fraction);
  EXPECT_EQ(back.scenario.id, job.scenario.id);
  EXPECT_EQ(back.scenario.problem, job.scenario.problem);
  EXPECT_EQ(back.scenario.strategy, job.scenario.strategy);
  EXPECT_EQ(back.scenario.reynolds, job.scenario.reynolds);
  EXPECT_EQ(back.scenario.target_nodes, job.scenario.target_nodes);
  EXPECT_EQ(back.scenario.poly_degree, job.scenario.poly_degree);
  EXPECT_EQ(back.scenario.seed, job.scenario.seed);
  EXPECT_EQ(back.scenario.control_jitter, job.scenario.control_jitter);
  EXPECT_EQ(back.scenario.deadline_ms, job.scenario.deadline_ms);
}

TEST(Wire, ResultFrameRoundTripsBitwise) {
  serve::wire::ResultFrame result;
  result.job_id = 7;
  result.report.id = "job-7";
  result.report.status = JobStatus::kDeadlineExpired;
  result.report.seconds = 0.125;
  result.report.final_cost = 3.14159265358979;
  result.report.iterations = 17;
  result.report.cost_history = {1.0, 0.5, 0.25, -0.0};
  result.report.error = "deadline";
  result.report.attempts = 2;
  result.report.retries = 1;
  result.report.degraded = true;
  result.report.achieved_tolerance = 1e-9;

  const std::string payload = serve::wire::encode_result(result);
  const serve::wire::ResultFrame back = serve::wire::decode_result(payload);
  EXPECT_EQ(back.job_id, result.job_id);
  EXPECT_EQ(back.report.id, result.report.id);
  EXPECT_EQ(back.report.status, result.report.status);
  EXPECT_EQ(back.report.seconds, result.report.seconds);
  EXPECT_EQ(back.report.final_cost, result.report.final_cost);
  EXPECT_EQ(back.report.iterations, result.report.iterations);
  ASSERT_EQ(back.report.cost_history.size(),
            result.report.cost_history.size());
  for (std::size_t i = 0; i < back.report.cost_history.size(); ++i) {
    // Bitwise: -0.0 must survive (hence signbit, not ==).
    EXPECT_EQ(std::signbit(back.report.cost_history[i]),
              std::signbit(result.report.cost_history[i]));
    EXPECT_EQ(back.report.cost_history[i], result.report.cost_history[i]);
  }
  EXPECT_EQ(back.report.error, result.report.error);
  EXPECT_EQ(back.report.degraded, result.report.degraded);
  EXPECT_EQ(back.report.achieved_tolerance, result.report.achieved_tolerance);
}

TEST(Wire, StatsFrameRoundTrips) {
  serve::wire::StatsFrame stats;
  stats.counters.push_back({"serve/jobs.succeeded", 12});
  stats.counters.push_back({"la/gmres.iterations", 345});
  stats.cache.hits = 10;
  stats.cache.misses = 4;
  stats.cache.bytes = 1 << 20;
  stats.cache.entries = 3;
  stats.cache.byte_budget = 512u << 20;
  stats.cache.by_class["bundle"] = {2, 1, 0, 4096, 1};
  stats.cache.by_class["lu"] = {8, 3, 1, 1 << 16, 2};
  stats.cache.disk.hits = 5;
  stats.cache.disk.corrupt = 1;

  const std::string payload = serve::wire::encode_stats(stats);
  const serve::wire::StatsFrame back = serve::wire::decode_stats(payload);
  ASSERT_EQ(back.counters.size(), 2u);
  EXPECT_EQ(back.counters[0].name, "serve/jobs.succeeded");
  EXPECT_EQ(back.counters[0].value, 12u);
  EXPECT_EQ(back.cache.hits, 10u);
  EXPECT_EQ(back.cache.bytes, std::size_t{1 << 20});
  ASSERT_EQ(back.cache.by_class.size(), 2u);
  EXPECT_EQ(back.cache.by_class.at("lu").hits, 8u);
  EXPECT_EQ(back.cache.by_class.at("lu").entries, 2u);
  EXPECT_EQ(back.cache.disk.hits, 5u);
  EXPECT_EQ(back.cache.disk.corrupt, 1u);
}

TEST(Wire, FrameRoundTripAndIncrementalDecode) {
  serve::wire::Frame frame{serve::wire::FrameType::kResult, "hello frame"};
  const std::string bytes = serve::wire::encode_frame(frame);

  // Whole buffer decodes.
  const auto whole = serve::wire::decode_frame(bytes);
  ASSERT_EQ(whole.status, serve::wire::DecodeStatus::kOk);
  EXPECT_EQ(whole.frame.type, frame.type);
  EXPECT_EQ(whole.frame.payload, frame.payload);
  EXPECT_EQ(whole.consumed, bytes.size());

  // Every strict prefix is incomplete, never malformed.
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    const auto partial =
        serve::wire::decode_frame(std::string_view(bytes).substr(0, n));
    EXPECT_EQ(partial.status, serve::wire::DecodeStatus::kNeedMore)
        << "prefix length " << n;
  }

  // Two concatenated frames decode one at a time.
  const std::string two = bytes + bytes;
  const auto first = serve::wire::decode_frame(two);
  ASSERT_EQ(first.status, serve::wire::DecodeStatus::kOk);
  EXPECT_EQ(first.consumed, bytes.size());
}

TEST(Wire, MalformedFramesAreRejected) {
  serve::wire::Frame frame{serve::wire::FrameType::kJob, "payload bytes"};
  const std::string good = serve::wire::encode_frame(frame);

  std::string bad_magic = good;
  bad_magic[0] = static_cast<char>(bad_magic[0] ^ 0x5A);
  EXPECT_EQ(serve::wire::decode_frame(bad_magic).status,
            serve::wire::DecodeStatus::kMalformed);

  std::string bad_type = good;
  bad_type[4] = 99;
  EXPECT_EQ(serve::wire::decode_frame(bad_type).status,
            serve::wire::DecodeStatus::kMalformed);

  std::string bad_len = good;
  bad_len[14] = 0x7F;  // length ~2^55: over the payload cap
  EXPECT_EQ(serve::wire::decode_frame(bad_len).status,
            serve::wire::DecodeStatus::kMalformed);

  std::string flipped = good;
  flipped[serve::wire::kHeaderBytes + 3] ^= 0x01;  // corrupt payload byte
  const auto res = serve::wire::decode_frame(flipped);
  EXPECT_EQ(res.status, serve::wire::DecodeStatus::kMalformed);
  EXPECT_NE(res.error.find("checksum"), std::string::npos);
}

TEST(Wire, TruncatedPayloadCodecsThrow) {
  serve::wire::ResultFrame result;
  result.job_id = 1;
  result.report.id = "x";
  result.report.cost_history = {1.0, 2.0};
  const std::string payload = serve::wire::encode_result(result);
  EXPECT_THROW((void)serve::wire::decode_result(payload.substr(
                   0, payload.size() - 3)),
               Error);
  EXPECT_THROW((void)serve::wire::decode_result(payload + "zz"), Error);
  EXPECT_THROW((void)serve::wire::decode_job("abc"), Error);
  EXPECT_THROW((void)serve::wire::decode_stats(std::string(7, '\0')), Error);
}

TEST(Wire, FrameReaderReassemblesSplitWrites) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  serve::wire::Frame frame{serve::wire::FrameType::kCancel,
                           serve::wire::encode_cancel({77})};
  const std::string bytes = serve::wire::encode_frame(frame);

  serve::wire::FrameReader reader(sv[0]);
  // First half only: poll sees an incomplete frame.
  ASSERT_EQ(::send(sv[1], bytes.data(), bytes.size() / 2, 0),
            static_cast<ssize_t>(bytes.size() / 2));
  EXPECT_FALSE(reader.poll_frame().has_value());
  // Second half arrives: the frame completes.
  ASSERT_EQ(::send(sv[1], bytes.data() + bytes.size() / 2,
                   bytes.size() - bytes.size() / 2, 0),
            static_cast<ssize_t>(bytes.size() - bytes.size() / 2));
  const auto got = reader.poll_frame();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->type, serve::wire::FrameType::kCancel);
  EXPECT_EQ(serve::wire::decode_cancel(got->payload).job_id, 77u);
  ::close(sv[0]);
  ::close(sv[1]);
}

// ---- routing -------------------------------------------------------------

TEST(Routing, FingerprintIgnoresNonDiscretisationFields) {
  const Scenario base = small_scenario("a", 12, 1);
  const std::uint64_t fp = serve::scenario_fingerprint(base);

  Scenario other = base;
  other.id = "totally-different";
  other.seed = 999;
  other.iterations = 5000;
  other.learning_rate = 123.0;
  other.control_jitter = 0.7;
  other.deadline_ms = 10.0;
  other.strategy = serve::Strategy::kDp;
  EXPECT_EQ(serve::scenario_fingerprint(other), fp)
      << "routing must depend only on the discretisation";

  Scenario finer = base;
  finer.grid_n = 13;
  EXPECT_NE(serve::scenario_fingerprint(finer), fp);

  Scenario channel = base;
  channel.problem = serve::ProblemKind::kChannel;
  EXPECT_NE(serve::scenario_fingerprint(channel), fp);
}

TEST(Routing, FingerprintSeparatesRefinementKnobs) {
  // A refined-cloud job must never share a shard-affinity key (and thus a
  // cached operator family) with the uniform-grid job of the same grid_n:
  // the clouds differ, so the fingerprint must fold in the refinement knobs.
  const Scenario base = small_scenario("a", 12, 1);
  const std::uint64_t fp = serve::scenario_fingerprint(base);

  Scenario refined = base;
  refined.refine_cycles = 2;
  EXPECT_NE(serve::scenario_fingerprint(refined), fp);

  Scenario fraction = refined;
  fraction.refine_fraction = 0.25;
  EXPECT_NE(serve::scenario_fingerprint(fraction),
            serve::scenario_fingerprint(refined));

  // Deterministic: the same refined scenario fingerprints identically.
  EXPECT_EQ(serve::scenario_fingerprint(refined),
            serve::scenario_fingerprint(refined));
}

TEST(Wire, RefinedScenarioFieldsRoundTrip) {
  serve::wire::JobFrame job;
  job.job_id = 9;
  job.scenario = small_scenario("refined/1", 12, 77);
  job.scenario.refine_cycles = 3;
  job.scenario.refine_fraction = 0.1875;  // dyadic: bitwise comparable

  const std::string payload = serve::wire::encode_job(job);
  const serve::wire::JobFrame back = serve::wire::decode_job(payload);
  EXPECT_EQ(back.scenario.refine_cycles, 3u);
  EXPECT_EQ(back.scenario.refine_fraction, 0.1875);
  EXPECT_EQ(back.scenario.id, job.scenario.id);
}

TEST(Routing, ShardOfIsStableAndInRange) {
  ShardOptions options;
  options.shards = 4;
  ShardPool pool(options);
  std::map<std::uint64_t, std::size_t> seen;
  for (std::size_t g = 6; g < 14; ++g) {
    const Scenario sc = small_scenario("r", g, g);
    const std::size_t shard = pool.shard_of(sc);
    EXPECT_LT(shard, pool.shard_count());
    EXPECT_EQ(shard, pool.shard_of(sc)) << "routing must be deterministic";
    seen[serve::scenario_fingerprint(sc)] = shard;
  }
  EXPECT_EQ(seen.size(), 8u);  // distinct grids -> distinct fingerprints
}

// ---- environment knobs ---------------------------------------------------

TEST(ShardEnv, KnobsParseStrictly) {
  ::setenv("UPDEC_SERVE_SHARDS", "3", 1);
  EXPECT_EQ(serve::shards_from_env(), 3u);
  ::setenv("UPDEC_SERVE_SHARDS", "not-a-number", 1);
  EXPECT_EQ(serve::shards_from_env(), 0u) << "malformed falls back";
  ::unsetenv("UPDEC_SERVE_SHARDS");
  EXPECT_EQ(serve::shards_from_env(), 0u);

  ::setenv("UPDEC_SERVE_STEAL", "0", 1);
  EXPECT_FALSE(serve::steal_from_env());
  ::setenv("UPDEC_SERVE_STEAL", "on", 1);
  EXPECT_TRUE(serve::steal_from_env());
  ::unsetenv("UPDEC_SERVE_STEAL");
  EXPECT_TRUE(serve::steal_from_env()) << "stealing defaults on";
}

// ---- end-to-end over forked workers --------------------------------------

TEST(ShardPoolE2E, BatchResolvesAcrossWorkers) {
  ShardOptions options;
  options.shards = 2;
  ShardPool pool(options);
  std::mutex mu;
  std::map<ShardPool::JobId, JobReport> reports;
  pool.set_on_result([&](ShardPool::JobId id, JobReport&& report) {
    std::lock_guard lock(mu);
    reports.emplace(id, std::move(report));
  });
  std::vector<ShardPool::JobId> ids;
  for (int i = 0; i < 8; ++i)
    ids.push_back(pool.submit(
        small_scenario("batch-" + std::to_string(i), 6 + i % 3, i)));
  pool.drain();
  std::lock_guard lock(mu);
  ASSERT_EQ(reports.size(), ids.size());
  for (const auto id : ids) {
    ASSERT_TRUE(reports.count(id));
    EXPECT_EQ(reports.at(id).status, JobStatus::kSucceeded)
        << reports.at(id).error;
    EXPECT_GT(reports.at(id).iterations, 0u);
  }
}

TEST(ShardPoolE2E, StealingDrainsAHotShard) {
  // Every job shares one fingerprint, so they all route to ONE home shard;
  // with stealing on, the other shard must pick some of them up.
  ShardOptions options;
  options.shards = 2;
  options.steal = true;
  ShardPool pool(options);
  pool.set_on_result([](ShardPool::JobId, JobReport&&) {});
  for (int i = 0; i < 10; ++i)
    pool.submit(small_scenario("steal-" + std::to_string(i), 7, i));
  pool.drain();
  const auto infos = pool.shard_infos();
  ASSERT_EQ(infos.size(), 2u);
  std::size_t total = 0;
  std::size_t steals = 0;
  for (const auto& info : infos) {
    total += info.jobs_done;
    steals += info.steals;
  }
  EXPECT_EQ(total, 10u);
  EXPECT_GT(steals, 0u) << "idle shard never stole from the loaded one";
  EXPECT_GT(infos[0].jobs_done, 0u);
  EXPECT_GT(infos[1].jobs_done, 0u);
}

TEST(ShardPoolE2E, StealingOffKeepsAffinity) {
  ShardOptions options;
  options.shards = 2;
  options.steal = false;
  ShardPool pool(options);
  pool.set_on_result([](ShardPool::JobId, JobReport&&) {});
  for (int i = 0; i < 6; ++i)
    pool.submit(small_scenario("affinity-" + std::to_string(i), 7, i));
  pool.drain();
  const auto infos = pool.shard_infos();
  std::size_t busy_shards = 0;
  for (const auto& info : infos) {
    EXPECT_EQ(info.steals, 0u);
    if (info.jobs_done > 0) ++busy_shards;
  }
  EXPECT_EQ(busy_shards, 1u) << "one fingerprint must stay on one shard";
}

TEST(SchedulerShardMode, AsyncSubmitStreamsCompletions) {
  serve::SchedulerOptions options;
  options.shards = 2;
  serve::Scheduler scheduler(options);
  std::set<serve::Scheduler::JobId> submitted;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 6; ++i)
    submitted.insert(scheduler.submit(
        small_scenario("async-" + std::to_string(i), 6 + i % 2, i)));
  const double submit_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(submit_ms, 1000.0) << "submit must not wait for results";

  std::set<serve::Scheduler::JobId> streamed;
  while (auto next = scheduler.next_completed()) {
    EXPECT_TRUE(submitted.count(next->first));
    EXPECT_TRUE(streamed.insert(next->first).second)
        << "job streamed twice";
    EXPECT_EQ(next->second.status, JobStatus::kSucceeded)
        << next->second.error;
  }
  EXPECT_EQ(streamed, submitted);
  EXPECT_FALSE(scheduler.try_next_completed().has_value());
  EXPECT_EQ(scheduler.shard_count(), 2u);
}

TEST(SchedulerShardMode, BitwiseEqualToInProcessRun) {
  std::vector<Scenario> scenarios;
  for (int i = 0; i < 6; ++i)
    scenarios.push_back(
        small_scenario("bitwise-" + std::to_string(i), 6 + i % 3, 17 + i));

  serve::OperatorCache local_cache(64u << 20, "");
  std::vector<JobReport> reference;
  for (const auto& sc : scenarios)
    reference.push_back(serve::run_scenario(sc, local_cache));

  serve::SchedulerOptions options;
  options.shards = 3;
  serve::Scheduler scheduler(options);
  std::vector<serve::Scheduler::JobId> ids;
  for (const auto& sc : scenarios) ids.push_back(scheduler.submit(sc));
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const JobReport report = scheduler.wait(ids[i]);
    ASSERT_EQ(report.status, JobStatus::kSucceeded) << report.error;
    EXPECT_EQ(report.final_cost, reference[i].final_cost)
        << "job " << i << ": sharded cost must be BITWISE equal";
    EXPECT_EQ(report.iterations, reference[i].iterations);
    ASSERT_EQ(report.cost_history.size(), reference[i].cost_history.size());
    for (std::size_t k = 0; k < report.cost_history.size(); ++k)
      EXPECT_EQ(report.cost_history[k], reference[i].cost_history[k]);
  }
}

TEST(SchedulerShardMode, CancelQueuedJobNeverCrossesTheBoundary) {
  serve::SchedulerOptions options;
  options.shards = 1;
  serve::Scheduler scheduler(options);
  const auto blocker = scheduler.submit(long_scenario("blocker"));
  const auto queued = scheduler.submit(small_scenario("queued", 6, 2));
  // The blocker occupies the only worker, so "queued" is parent-side state.
  EXPECT_TRUE(scheduler.cancel(queued));
  const JobReport queued_report = scheduler.wait(queued);
  EXPECT_EQ(queued_report.status, JobStatus::kCancelled);
  EXPECT_EQ(queued_report.iterations, 0u) << "must never have run";
  EXPECT_TRUE(scheduler.cancel(blocker));
  EXPECT_EQ(scheduler.wait(blocker).status, JobStatus::kCancelled);
}

TEST(SchedulerShardMode, CancelRunningJobCrossesTheBoundary) {
  serve::SchedulerOptions options;
  options.shards = 1;
  serve::Scheduler scheduler(options);
  const auto id = scheduler.submit(long_scenario("running"));
  // Wait until the worker actually picked it up.
  for (int i = 0; i < 200 && scheduler.status(id) == JobStatus::kPending; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(scheduler.status(id), JobStatus::kRunning);
  EXPECT_TRUE(scheduler.cancel(id));
  const JobReport report = scheduler.wait(id);
  EXPECT_EQ(report.status, JobStatus::kCancelled);
  // The worker survived the cancellation and keeps serving.
  const auto next = scheduler.submit(small_scenario("after-cancel", 6, 3));
  EXPECT_EQ(scheduler.wait(next).status, JobStatus::kSucceeded);
}

TEST(SchedulerShardMode, DeadlineEnforcedAcrossTheBoundary) {
  serve::SchedulerOptions options;
  options.shards = 1;
  serve::Scheduler scheduler(options);
  Scenario sc = long_scenario("deadline");
  sc.deadline_ms = 60.0;
  const auto id = scheduler.submit(sc);
  const JobReport report = scheduler.wait(id);
  EXPECT_EQ(report.status, JobStatus::kDeadlineExpired);
  // Cooperative stop: the worker is alive and the pool unharmed.
  const auto next = scheduler.submit(small_scenario("after-deadline", 6, 4));
  EXPECT_EQ(scheduler.wait(next).status, JobStatus::kSucceeded);
}

TEST(SchedulerShardMode, WorkerKillMidBatchRetriesToBitwiseSuccess) {
  std::vector<Scenario> scenarios;
  for (int i = 0; i < 8; ++i)
    scenarios.push_back(
        small_scenario("chaos-" + std::to_string(i), 6 + i % 2, 31 + i));

  serve::OperatorCache local_cache(64u << 20, "");
  std::vector<JobReport> reference;
  for (const auto& sc : scenarios)
    reference.push_back(serve::run_scenario(sc, local_cache));

  serve::RetryPolicy retry;
  retry.max_retries = 2;
  serve::SchedulerOptions options;
  options.shards = 2;
  options.retry = retry;
  fault::arm("serve.shard_kill", 1);  // parent-side: kills one worker once
  serve::Scheduler scheduler(options);
  std::vector<serve::Scheduler::JobId> ids;
  for (const auto& sc : scenarios) ids.push_back(scheduler.submit(sc));
  std::size_t failed = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const JobReport report = scheduler.wait(ids[i]);
    if (report.status != JobStatus::kSucceeded) {
      ++failed;
      continue;
    }
    EXPECT_EQ(report.final_cost, reference[i].final_cost)
        << "resubmitted jobs must replay bit-identically";
  }
  EXPECT_EQ(failed, 0u) << "retries must absorb the SIGKILL";
  ASSERT_NE(scheduler.shards(), nullptr);
  EXPECT_GE(scheduler.shards()->restarts(), 1u) << "no worker was killed?";
  fault::disarm_all();
}

TEST(SchedulerShardMode, WorkerCrashWithoutRetriesFailsOnlyThatJob) {
  serve::RetryPolicy retry;
  retry.max_retries = 0;
  retry.allow_degraded = false;
  serve::SchedulerOptions options;
  options.shards = 2;
  options.retry = retry;
  fault::arm("serve.shard_kill", 1);
  serve::Scheduler scheduler(options);
  std::vector<serve::Scheduler::JobId> ids;
  for (int i = 0; i < 6; ++i)
    ids.push_back(scheduler.submit(
        small_scenario("norerty-" + std::to_string(i), 6 + i % 2, i)));
  std::size_t failed = 0;
  std::size_t succeeded = 0;
  for (const auto id : ids) {
    const JobReport report = scheduler.wait(id);
    if (report.status == JobStatus::kFailed) {
      ++failed;
      EXPECT_NE(report.error.find("died"), std::string::npos)
          << report.error;
    } else if (report.status == JobStatus::kSucceeded) {
      ++succeeded;
    }
  }
  EXPECT_EQ(failed, 1u) << "exactly the in-flight job fails";
  EXPECT_EQ(succeeded, ids.size() - 1);
  fault::disarm_all();
}

TEST(SchedulerShardMode, WorkerStatsAggregateIntoParent) {
  metrics::reset();
  metrics::set_enabled(true);
  {
    serve::SchedulerOptions options;
    options.shards = 2;
    serve::Scheduler scheduler(options);
    std::vector<serve::Scheduler::JobId> ids;
    for (int i = 0; i < 6; ++i)
      ids.push_back(scheduler.submit(
          small_scenario("stats-" + std::to_string(i), 6 + i % 2, i)));
    for (const auto id : ids)
      ASSERT_EQ(scheduler.wait(id).status, JobStatus::kSucceeded);

    // Merged cache stats: the bundles were built in WORKER processes; the
    // parent-local cache alone knows nothing about them.
    const serve::OperatorCache::Stats stats = scheduler.cache_stats();
    EXPECT_GT(stats.hits + stats.misses, 0u);
    ASSERT_TRUE(stats.by_class.count("bundle"))
        << "worker bundle traffic missing from merged stats";
    EXPECT_GT(stats.by_class.at("bundle").misses, 0u);
    EXPECT_GT(stats.bytes, 0u) << "live worker residency missing";

    // Worker counters were delta-merged into the PARENT registry.
    EXPECT_EQ(metrics::counter_value("serve/jobs.succeeded"), 6u);
    EXPECT_EQ(metrics::counter_value("serve/shard.jobs"), 6u);
    // Collecting twice must not double-count.
    (void)scheduler.cache_stats();
    EXPECT_EQ(metrics::counter_value("serve/jobs.succeeded"), 6u);
  }
  metrics::set_enabled(false);
  metrics::reset();
}

}  // namespace
