// Unit and property tests for direct dense solvers: LU, Cholesky, QR.
#include <gtest/gtest.h>

#include <cmath>

#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "la/lu.hpp"
#include "la/qr.hpp"
#include "testing_common.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using updec::la::CholeskyFactorization;
using updec::la::LuFactorization;
using updec::la::Matrix;
using updec::la::QrFactorization;
using updec::la::Vector;

// Randomness routes through the shared logged-seed stack (testing_common);
// the local names keep the historical (size, seed) call sites unchanged.
Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  return updec::testing_support::random_matrix(rows, cols, seed);
}

Matrix random_spd(std::size_t n, std::uint64_t seed) {
  return updec::testing_support::random_spd(n, seed);
}

TEST(Lu, SolvesSmallKnownSystem) {
  Matrix a(2, 2);
  a(0, 0) = 2; a(0, 1) = 1; a(1, 0) = 1; a(1, 1) = 3;
  const Vector b{3.0, 5.0};
  const Vector x = updec::la::solve(a, b);
  EXPECT_NEAR(x[0], 0.8, 1e-14);
  EXPECT_NEAR(x[1], 1.4, 1e-14);
}

TEST(Lu, PivotingHandlesZeroLeadingEntry) {
  Matrix a(2, 2);
  a(0, 0) = 0; a(0, 1) = 1; a(1, 0) = 1; a(1, 1) = 0;
  const Vector b{2.0, 3.0};
  const Vector x = updec::la::solve(a, b);
  EXPECT_NEAR(x[0], 3.0, 1e-14);
  EXPECT_NEAR(x[1], 2.0, 1e-14);
}

TEST(Lu, SingularMatrixThrows) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 2; a(1, 1) = 4;
  EXPECT_THROW(LuFactorization{a}, updec::Error);
}

TEST(Lu, TransposeSolveMatchesExplicitTranspose) {
  const Matrix a = random_matrix(20, 20, 77);
  updec::Rng rng = updec::testing_support::test_rng(5);
  Vector b(20);
  for (auto& v : b) v = rng.normal();
  const LuFactorization lu(a);
  const Vector x1 = lu.solve_transpose(b);
  const Vector x2 = updec::la::solve(a.transposed(), b);
  for (std::size_t i = 0; i < 20; ++i) EXPECT_NEAR(x1[i], x2[i], 1e-10);
}

TEST(Lu, DeterminantMatchesKnownValues) {
  Matrix a(2, 2);
  a(0, 0) = 3; a(0, 1) = 1; a(1, 0) = 4; a(1, 1) = 2;
  EXPECT_NEAR(LuFactorization(a).determinant(), 2.0, 1e-12);
  EXPECT_NEAR(LuFactorization(Matrix::identity(5)).determinant(), 1.0, 1e-14);
}

TEST(Lu, ConditionEstimateIdentityIsOne) {
  const LuFactorization lu(Matrix::identity(10));
  EXPECT_NEAR(lu.condition_estimate(), 1.0, 1e-12);
}

TEST(Lu, ConditionEstimateDetectsIllConditioning) {
  Matrix a = Matrix::identity(4);
  a(3, 3) = 1e-10;
  const LuFactorization lu(a);
  EXPECT_GT(lu.condition_estimate(), 1e8);
}

TEST(Lu, SolveManyMatchesColumnwiseSolve) {
  const Matrix a = random_matrix(12, 12, 3);
  const Matrix b = random_matrix(12, 3, 4);
  const LuFactorization lu(a);
  const Matrix x = lu.solve_many(b);
  for (std::size_t j = 0; j < 3; ++j) {
    Vector col(12);
    for (std::size_t i = 0; i < 12; ++i) col[i] = b(i, j);
    const Vector xj = lu.solve(col);
    for (std::size_t i = 0; i < 12; ++i) EXPECT_NEAR(x(i, j), xj[i], 1e-12);
  }
}

// Property sweep: random systems of growing size solve to tight residuals.
class LuRandomSystems : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuRandomSystems, ResidualIsTiny) {
  const std::size_t n = GetParam();
  const Matrix a = random_matrix(n, n, 1000 + n);
  updec::Rng rng = updec::testing_support::test_rng(n);
  Vector b(n);
  for (auto& v : b) v = rng.normal();
  const Vector x = updec::la::solve(a, b);
  EXPECT_LT(updec::la::residual_norm(a, x, b), 1e-9 * (1.0 + updec::la::nrm2(b)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuRandomSystems,
                         ::testing::Values(1, 2, 3, 8, 17, 50, 120));

TEST(Cholesky, SolvesSpdSystem) {
  const Matrix a = random_spd(15, 9);
  updec::Rng rng = updec::testing_support::test_rng(2);
  Vector b(15);
  for (auto& v : b) v = rng.normal();
  const CholeskyFactorization chol(a);
  const Vector x = chol.solve(b);
  EXPECT_LT(updec::la::residual_norm(a, x, b), 1e-10);
}

TEST(Cholesky, MatchesLuOnSpdSystem) {
  const Matrix a = random_spd(10, 21);
  updec::Rng rng = updec::testing_support::test_rng(6);
  Vector b(10);
  for (auto& v : b) v = rng.normal();
  const Vector x_chol = CholeskyFactorization(a).solve(b);
  const Vector x_lu = updec::la::solve(a, b);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_NEAR(x_chol[i], x_lu[i], 1e-10);
}

TEST(Cholesky, RejectsIndefiniteMatrix) {
  Matrix a = Matrix::identity(3);
  a(2, 2) = -1.0;
  EXPECT_THROW(CholeskyFactorization{a}, updec::Error);
}

TEST(Cholesky, LogDeterminantMatchesLu) {
  const Matrix a = random_spd(8, 33);
  const double logdet = CholeskyFactorization(a).log_determinant();
  const double det = LuFactorization(a).determinant();
  EXPECT_NEAR(logdet, std::log(det), 1e-8);
}

TEST(Qr, ExactSolveForSquareSystem) {
  const Matrix a = random_matrix(10, 10, 55);
  updec::Rng rng = updec::testing_support::test_rng(8);
  Vector b(10);
  for (auto& v : b) v = rng.normal();
  const Vector x_qr = QrFactorization(a).solve_least_squares(b);
  const Vector x_lu = updec::la::solve(a, b);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_NEAR(x_qr[i], x_lu[i], 1e-9);
}

TEST(Qr, LeastSquaresMatchesNormalEquations) {
  const Matrix a = random_matrix(30, 8, 70);
  updec::Rng rng = updec::testing_support::test_rng(9);
  Vector b(30);
  for (auto& v : b) v = rng.normal();
  const Vector x_qr = QrFactorization(a).solve_least_squares(b);
  // Normal equations: (A^T A) x = A^T b via Cholesky.
  const Matrix ata = updec::la::matmul(a.transposed(), a);
  const Vector atb = updec::la::matvec_t(a, b);
  const Vector x_ne = CholeskyFactorization(ata).solve(atb);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(x_qr[i], x_ne[i], 1e-8);
}

TEST(Qr, ResidualOrthogonalToColumnSpace) {
  const Matrix a = random_matrix(25, 5, 81);
  updec::Rng rng = updec::testing_support::test_rng(10);
  Vector b(25);
  for (auto& v : b) v = rng.normal();
  const Vector x = QrFactorization(a).solve_least_squares(b);
  Vector r = b;
  updec::la::gemv(-1.0, a, x, 1.0, r);
  const Vector atr = updec::la::matvec_t(a, r);
  EXPECT_LT(updec::la::nrm2(atr), 1e-10 * updec::la::nrm2(b));
}

TEST(Qr, DiagonalRatioSignalsRankDeficiency) {
  Matrix a(6, 3);
  updec::Rng rng = updec::testing_support::test_rng(12);
  for (std::size_t i = 0; i < 6; ++i) {
    a(i, 0) = rng.normal();
    a(i, 1) = 2.0 * a(i, 0);  // dependent column
    a(i, 2) = rng.normal();
  }
  EXPECT_LT(QrFactorization(a).diagonal_ratio(), 1e-12);
}

TEST(Qr, RequiresTallMatrix) {
  const Matrix a = random_matrix(2, 5, 1);
  EXPECT_THROW(QrFactorization{a}, updec::Error);
}

}  // namespace
