// Tests for the observability layer (util/metrics + util/trace): counter
// and histogram correctness, span nesting with self-time accounting,
// disabled-mode no-ops, JSON export validity, and thread-safety of
// concurrent counter increments.

#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "util/metrics.hpp"
#include "util/trace.hpp"

#if defined(UPDEC_DISABLE_METRICS)

// With -DUPDEC_METRICS=OFF every macro is compiled out and set_enabled()
// is a no-op; there is nothing meaningful to assert.
TEST(MetricsTest, CompiledOut) { GTEST_SKIP() << "metrics compiled out"; }

#else

namespace {

using namespace updec;

/// Each test starts from a clean, enabled registry.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    metrics::reset();
    metrics::set_enabled(true);
  }
  void TearDown() override {
    metrics::set_enabled(false);
    metrics::reset();
  }
};

// ---- minimal JSON validator (syntax only) --------------------------------
// The dump must be consumable by any standards-compliant parser; this
// checker walks the grammar and fails on trailing commas, bare NaN/Inf,
// unbalanced brackets and unterminated strings -- the bugs a hand-rolled
// serialiser is actually at risk of.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;  // skip the escaped char
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }

  bool literal(const char* lit) {
    const std::string l(lit);
    if (s_.compare(pos_, l.size(), l) != 0) return false;
    pos_ += l.size();
    return true;
  }

  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---- counters ------------------------------------------------------------

TEST_F(MetricsTest, CounterAccumulates) {
  EXPECT_EQ(metrics::counter_value("t/c"), 0u);
  metrics::counter_add("t/c");
  metrics::counter_add("t/c", 41);
  EXPECT_EQ(metrics::counter_value("t/c"), 42u);
}

TEST_F(MetricsTest, CounterThreadSafety) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([] {
      for (std::size_t i = 0; i < kIncrements; ++i)
        metrics::counter_add("t/concurrent");
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(metrics::counter_value("t/concurrent"), kThreads * kIncrements);
}

// ---- gauges --------------------------------------------------------------

TEST_F(MetricsTest, GaugeSetAndMax) {
  metrics::gauge_set("t/g", 3.0);
  metrics::gauge_set("t/g", 2.0);
  EXPECT_DOUBLE_EQ(metrics::gauge_value("t/g"), 2.0);

  metrics::gauge_max("t/peak", 10.0);
  metrics::gauge_max("t/peak", 4.0);
  metrics::gauge_max("t/peak", 25.0);
  EXPECT_DOUBLE_EQ(metrics::gauge_value("t/peak"), 25.0);
}

// ---- histograms ----------------------------------------------------------

TEST_F(MetricsTest, HistogramStatsOnKnownData) {
  // 1..100: exact count/sum/min/max, p50 ~ 50, p95 ~ 95.
  for (int i = 1; i <= 100; ++i)
    metrics::observe("t/h", static_cast<double>(i));
  const metrics::HistogramStats s = metrics::histogram_stats("t/h");
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.sum, 5050.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_NEAR(s.p50, 50.0, 1.5);
  EXPECT_NEAR(s.p95, 95.0, 1.5);
}

TEST_F(MetricsTest, HistogramExactStatsSurviveThinning) {
  // Push past the internal percentile-sample cap (2^16): count, sum, min
  // and max must stay exact, and percentiles must stay plausible.
  constexpr std::size_t kN = (1 << 16) + 5000;
  double sum = 0.0;
  for (std::size_t i = 0; i < kN; ++i) {
    const double v = static_cast<double>(i % 1000);
    sum += v;
    metrics::observe("t/big", v);
  }
  const metrics::HistogramStats s = metrics::histogram_stats("t/big");
  EXPECT_EQ(s.count, kN);
  EXPECT_DOUBLE_EQ(s.sum, sum);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 999.0);
  EXPECT_NEAR(s.p50, 500.0, 50.0);
  EXPECT_NEAR(s.p95, 950.0, 50.0);
}

// ---- spans ---------------------------------------------------------------

TEST_F(MetricsTest, SpanRecordsOccurrences) {
  for (int i = 0; i < 3; ++i) {
    UPDEC_TRACE_SCOPE("t/span");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const metrics::SpanStats s = metrics::span_stats("t/span");
  EXPECT_EQ(s.count, 3u);
  EXPECT_GT(s.total_seconds, 0.004);  // 3 x ~2ms, generous slack
  EXPECT_GT(s.min_seconds, 0.0);
  EXPECT_GE(s.max_seconds, s.min_seconds);
  // No nested spans: self time equals total time.
  EXPECT_NEAR(s.self_seconds, s.total_seconds, 1e-9);
}

TEST_F(MetricsTest, NestedSpanSelfTimeExcludesChildren) {
  {
    UPDEC_TRACE_SCOPE("t/outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    {
      UPDEC_TRACE_SCOPE("t/inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(6));
    }
  }
  const metrics::SpanStats outer = metrics::span_stats("t/outer");
  const metrics::SpanStats inner = metrics::span_stats("t/inner");
  EXPECT_EQ(outer.count, 1u);
  EXPECT_EQ(inner.count, 1u);
  // Outer includes the inner span; its self time does not.
  EXPECT_GE(outer.total_seconds, inner.total_seconds);
  EXPECT_LT(outer.self_seconds, outer.total_seconds);
  EXPECT_NEAR(outer.self_seconds,
              outer.total_seconds - inner.total_seconds, 1e-3);
}

// ---- disabled mode -------------------------------------------------------

TEST_F(MetricsTest, DisabledModeIsNoOp) {
  metrics::set_enabled(false);
  UPDEC_METRIC_ADD("t/off.counter", 7);
  UPDEC_METRIC_GAUGE_SET("t/off.gauge", 1.0);
  UPDEC_METRIC_OBSERVE("t/off.hist", 1.0);
  {
    UPDEC_TRACE_SCOPE("t/off.span");
  }
  metrics::set_enabled(true);
  EXPECT_EQ(metrics::counter_value("t/off.counter"), 0u);
  EXPECT_DOUBLE_EQ(metrics::gauge_value("t/off.gauge"), 0.0);
  EXPECT_EQ(metrics::histogram_stats("t/off.hist").count, 0u);
  EXPECT_EQ(metrics::span_stats("t/off.span").count, 0u);
}

TEST_F(MetricsTest, SpanOpenedWhileDisabledStaysInert) {
  metrics::set_enabled(false);
  {
    UPDEC_TRACE_SCOPE("t/late.span");
    metrics::set_enabled(true);  // enabling mid-scope must not corrupt state
  }
  EXPECT_EQ(metrics::span_stats("t/late.span").count, 0u);
}

// ---- JSON export ---------------------------------------------------------

TEST_F(MetricsTest, DumpIsValidJsonWithAllSections) {
  metrics::set_label("bench", "unit\"test");  // quote must be escaped
  metrics::counter_add("t/json.counter", 3);
  metrics::gauge_set("t/json.gauge", 1.5);
  metrics::observe("t/json.hist", 2.0);
  {
    UPDEC_TRACE_SCOPE("t/json.span");
  }
  const std::string json = metrics::dump_json();

  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << json;

  for (const char* key :
       {"\"schema\"", "\"updec-metrics-v1\"", "\"labels\"", "\"process\"",
        "\"peak_rss_bytes\"", "\"counters\"", "\"gauges\"", "\"histograms\"",
        "\"spans\"", "\"t/json.counter\"", "\"t/json.gauge\"",
        "\"t/json.hist\"", "\"t/json.span\"", "\"total_seconds\"",
        "\"self_seconds\"", "\"p95\"", "\\\""})
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
}

TEST_F(MetricsTest, EmptyRegistryDumpIsValidJson) {
  metrics::reset();
  const std::string json = metrics::dump_json();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << json;
}

TEST_F(MetricsTest, RoundTripThroughRegistry) {
  // "Round trip": the values that went in are the values the accessors and
  // the dump report.
  metrics::counter_add("t/rt.c", 12);
  metrics::gauge_set("t/rt.g", 0.25);  // exactly representable
  const std::string json = metrics::dump_json();
  EXPECT_NE(json.find("\"t/rt.c\": 12"), std::string::npos) << json;
  EXPECT_NE(json.find("\"t/rt.g\": 0.25"), std::string::npos) << json;
  EXPECT_EQ(metrics::counter_value("t/rt.c"), 12u);
  EXPECT_DOUBLE_EQ(metrics::gauge_value("t/rt.g"), 0.25);
}

TEST_F(MetricsTest, ResetClearsEverything) {
  metrics::counter_add("t/r.c");
  metrics::observe("t/r.h", 1.0);
  metrics::reset();
  EXPECT_EQ(metrics::counter_value("t/r.c"), 0u);
  EXPECT_EQ(metrics::histogram_stats("t/r.h").count, 0u);
}

}  // namespace

#endif  // UPDEC_DISABLE_METRICS
