// Unit and property tests for the reverse-mode tape: every scalar op is
// checked against central finite differences, plus graph mechanics
// (fan-out accumulation, stop_gradient, rewind).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "autodiff/var_math.hpp"
#include "util/rng.hpp"

namespace {

using updec::ad::Tape;
using updec::ad::Var;

/// Central finite difference of a scalar function at x.
double fd(const std::function<double(double)>& f, double x, double h = 1e-6) {
  return (f(x + h) - f(x - h)) / (2.0 * h);
}

/// Check d/dx of a Var-function against its double twin at several points.
void check_unary(const std::function<Var(Var)>& fv,
                 const std::function<double(double)>& fd_fn,
                 std::initializer_list<double> points, double tol = 1e-6) {
  for (const double x0 : points) {
    Tape tape;
    Var x = tape.variable(x0);
    Var y = fv(x);
    tape.backward(y);
    EXPECT_NEAR(x.adjoint(), fd(fd_fn, x0), tol)
        << "mismatch at x0 = " << x0;
  }
}

TEST(Tape, AdditionAndMultiplication) {
  Tape tape;
  Var a = tape.variable(2.0);
  Var b = tape.variable(3.0);
  Var y = a * b + a;  // y = ab + a, dy/da = b + 1 = 4, dy/db = a = 2
  EXPECT_DOUBLE_EQ(y.value(), 8.0);
  tape.backward(y);
  EXPECT_DOUBLE_EQ(a.adjoint(), 4.0);
  EXPECT_DOUBLE_EQ(b.adjoint(), 2.0);
}

TEST(Tape, DivisionQuotientRule) {
  Tape tape;
  Var a = tape.variable(1.0);
  Var b = tape.variable(4.0);
  Var y = a / b;
  tape.backward(y);
  EXPECT_DOUBLE_EQ(a.adjoint(), 0.25);
  EXPECT_DOUBLE_EQ(b.adjoint(), -1.0 / 16.0);
}

TEST(Tape, ConstantsOnBothSides) {
  Tape tape;
  Var x = tape.variable(3.0);
  Var y = 2.0 * x + (x - 1.0) * 4.0 + 5.0 / x - x / 2.0;
  tape.backward(y);
  // dy/dx = 2 + 4 - 5/x^2 - 0.5
  EXPECT_NEAR(x.adjoint(), 2.0 + 4.0 - 5.0 / 9.0 - 0.5, 1e-14);
}

TEST(Tape, FanOutAccumulatesAdjoints) {
  Tape tape;
  Var x = tape.variable(2.0);
  Var y = x * x + x * x * x;  // x used many times
  tape.backward(y);
  EXPECT_NEAR(x.adjoint(), 2.0 * 2.0 + 3.0 * 4.0, 1e-14);
}

TEST(Tape, DeepChainRule) {
  // y = tanh(exp(sin(x^2))) checked against finite differences.
  check_unary(
      [](Var x) { return tanh(exp(sin(x * x))); },
      [](double x) { return std::tanh(std::exp(std::sin(x * x))); },
      {0.3, -0.7, 1.1});
}

TEST(Tape, MathFunctionsMatchFiniteDifferences) {
  check_unary([](Var x) { return exp(x); },
              [](double x) { return std::exp(x); }, {-1.0, 0.0, 2.0});
  check_unary([](Var x) { return log(x); },
              [](double x) { return std::log(x); }, {0.5, 1.0, 3.0});
  check_unary([](Var x) { return sqrt(x); },
              [](double x) { return std::sqrt(x); }, {0.25, 1.0, 9.0});
  check_unary([](Var x) { return sin(x); },
              [](double x) { return std::sin(x); }, {-2.0, 0.1, 1.6});
  check_unary([](Var x) { return cos(x); },
              [](double x) { return std::cos(x); }, {-2.0, 0.1, 1.6});
  check_unary([](Var x) { return tan(x); },
              [](double x) { return std::tan(x); }, {-0.5, 0.2, 1.0});
  check_unary([](Var x) { return tanh(x); },
              [](double x) { return std::tanh(x); }, {-1.5, 0.0, 1.5});
  check_unary([](Var x) { return sinh(x); },
              [](double x) { return std::sinh(x); }, {-1.0, 0.5});
  check_unary([](Var x) { return cosh(x); },
              [](double x) { return std::cosh(x); }, {-1.0, 0.5});
  check_unary([](Var x) { return pow(x, 3.0); },
              [](double x) { return std::pow(x, 3.0); }, {0.5, 2.0});
  check_unary([](Var x) { return abs(x); },
              [](double x) { return std::abs(x); }, {-2.0, 3.0});
}

TEST(Tape, PowVarVar) {
  Tape tape;
  Var a = tape.variable(2.0);
  Var b = tape.variable(3.0);
  Var y = pow(a, b);
  tape.backward(y);
  EXPECT_NEAR(a.adjoint(), 3.0 * 4.0, 1e-12);              // b a^(b-1)
  EXPECT_NEAR(b.adjoint(), 8.0 * std::log(2.0), 1e-12);    // a^b ln a
}

TEST(Tape, MaxMinClampGradients) {
  Tape tape;
  Var x = tape.variable(2.0);
  Var y = max(x, 5.0);  // clamped: derivative 0
  tape.backward(y);
  EXPECT_DOUBLE_EQ(y.value(), 5.0);
  EXPECT_DOUBLE_EQ(x.adjoint(), 0.0);

  Tape tape2;
  Var x2 = tape2.variable(7.0);
  Var y2 = max(x2, 5.0);  // pass-through
  tape2.backward(y2);
  EXPECT_DOUBLE_EQ(x2.adjoint(), 1.0);
}

TEST(Tape, StopGradientBlocksFlow) {
  Tape tape;
  Var x = tape.variable(3.0);
  Var y = x * stop_gradient(x);  // treated as x * const(3)
  tape.backward(y);
  EXPECT_DOUBLE_EQ(y.value(), 9.0);
  EXPECT_DOUBLE_EQ(x.adjoint(), 3.0);  // not 6
}

TEST(Tape, ComparisonsUseForwardValues) {
  Tape tape;
  Var a = tape.variable(1.0);
  Var b = tape.variable(2.0);
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b > 1.5);
  EXPECT_TRUE(0.5 < a);
}

TEST(Tape, RewindDropsNodes) {
  Tape tape;
  Var x = tape.variable(1.0);
  const std::size_t mark = tape.mark();
  for (int i = 0; i < 10; ++i) (void)(x * x);
  EXPECT_GT(tape.size(), mark);
  tape.rewind(mark);
  EXPECT_EQ(tape.size(), mark);
  // Tape still usable after rewind.
  Var y = x * 2.0;
  tape.backward(y);
  EXPECT_DOUBLE_EQ(x.adjoint(), 2.0);
}

TEST(Tape, ClearResetsEverything) {
  Tape tape;
  Var x = tape.variable(1.0);
  tape.backward(x * x);
  tape.clear();
  EXPECT_EQ(tape.size(), 0u);
  Var y = tape.variable(4.0);
  Var z = sqrt(y);
  tape.backward(z);
  EXPECT_DOUBLE_EQ(y.adjoint(), 0.25);
}

TEST(Tape, MemoryBytesGrowsWithNodes) {
  Tape tape;
  Var x = tape.variable(1.0);
  const auto before = tape.memory_bytes();
  for (int i = 0; i < 1000; ++i) x = x * 1.0000001;
  EXPECT_GT(tape.memory_bytes(), before + 1000 * 3 * sizeof(double));
}

TEST(Tape, MixedTapesThrow) {
  Tape t1, t2;
  Var a = t1.variable(1.0);
  Var b = t2.variable(2.0);
  EXPECT_THROW(a + b, updec::Error);
}

// Property sweep: gradient of a random rational-trig expression matches FD
// for many random inputs.
class RandomExpressionGradient : public ::testing::TestWithParam<int> {};

TEST_P(RandomExpressionGradient, MatchesFiniteDifferences) {
  updec::Rng rng(GetParam());
  const double x0 = rng.uniform(0.2, 2.0);
  const double y0 = rng.uniform(0.2, 2.0);
  const auto f = [](auto x, auto y) {
    using std::cos;
    using std::exp;
    using std::sin;
    using std::sqrt;
    using std::tanh;
    return tanh(x * y) + sin(x) * cos(y) / (1.0 + x * x) +
           sqrt(x + y) * exp(-1.0 * x * y) + x / y;
  };
  Tape tape;
  Var x = tape.variable(x0);
  Var y = tape.variable(y0);
  Var z = f(x, y);
  tape.backward(z);
  const double gx_fd =
      fd([&](double t) { return f(t, y0); }, x0);
  const double gy_fd =
      fd([&](double t) { return f(x0, t); }, y0);
  EXPECT_NEAR(x.adjoint(), gx_fd, 2e-6);
  EXPECT_NEAR(y.adjoint(), gy_fd, 2e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomExpressionGradient,
                         ::testing::Range(1, 13));

}  // namespace
