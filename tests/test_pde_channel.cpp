// Tests for the Navier-Stokes channel solver: Poiseuille recovery, mass
// conservation, patch boundary conditions, and agreement between the plain
// and differentiable paths including gradients.
#include <gtest/gtest.h>

#include <cmath>

#include "la/blas.hpp"
#include "pde/channel_flow.hpp"

namespace {

using updec::ad::Tape;
using updec::ad::Var;
using updec::ad::VarVec;
using updec::la::Vector;
using updec::pc::ChannelSpec;
using updec::pc::PointCloud;
using updec::pde::ChannelFlowConfig;
using updec::pde::ChannelFlowSolver;
using updec::pde::Flow;
namespace tags = updec::pc::tags;

/// Shared small test fixture: one cloud + kernel reused across tests.
class ChannelTest : public ::testing::Test {
 protected:
  static ChannelSpec small_spec() {
    ChannelSpec spec;
    spec.target_nodes = 320;
    spec.grading = 0.3;
    return spec;
  }
  ChannelTest()
      : spec_(small_spec()),
        cloud_(updec::pc::channel_cloud(spec_)),
        kernel_(3) {}

  ChannelFlowConfig quick_config(double re = 20.0) const {
    ChannelFlowConfig config;
    config.reynolds = re;
    config.dt = 0.004;
    config.refinements = 2;
    config.steps_per_refinement = 250;
    config.rbffd.stencil_size = 13;
    return config;
  }

  ChannelSpec spec_;
  PointCloud cloud_;
  updec::rbf::PolyharmonicSpline kernel_;
};

TEST_F(ChannelTest, PoiseuilleFlowIsRecoveredWithoutPatches) {
  ChannelFlowConfig config = quick_config();
  config.patch_velocity = 0.0;  // plain channel
  const ChannelFlowSolver solver(cloud_, kernel_, config, spec_);
  const Flow flow = solver.solve(solver.parabolic_inflow());

  // Outflow should be close to the inflow parabola (fully developed flow).
  const auto& outlet = solver.outlet_nodes();
  double max_err = 0.0;
  for (std::size_t q = 0; q < outlet.size(); ++q) {
    const double target = solver.target_outflow(solver.outlet_y()[q]);
    max_err = std::max(max_err, std::abs(flow.u[outlet[q]] - target));
  }
  EXPECT_LT(max_err, 0.08);
  // Cross-flow velocity stays small everywhere.
  EXPECT_LT(updec::la::nrm_inf(flow.v), 0.05);
}

TEST_F(ChannelTest, DivergenceIsSmallAfterProjection) {
  ChannelFlowConfig config = quick_config();
  config.patch_velocity = 0.0;
  const ChannelFlowSolver solver(cloud_, kernel_, config, spec_);
  const Flow flow = solver.solve(solver.parabolic_inflow());
  const Vector div = solver.divergence(flow.u, flow.v);
  // Interior divergence (boundary rows include one-sided noise).
  double max_div = 0.0;
  for (std::size_t i = 0; i < cloud_.num_internal(); ++i)
    max_div = std::max(max_div, std::abs(div[i]));
  EXPECT_LT(max_div, 0.7);  // projection keeps it bounded; exact 0 needs
                            // implicit coupling
}

TEST_F(ChannelTest, PatchBoundaryValuesAreImposed) {
  const ChannelFlowConfig config = quick_config();
  const ChannelFlowSolver solver(cloud_, kernel_, config, spec_);
  const Flow flow = solver.solve(solver.parabolic_inflow());
  bool saw_positive_blow = false;
  for (const std::size_t i : cloud_.indices_with_tag(tags::kBlowing)) {
    EXPECT_DOUBLE_EQ(flow.u[i], 0.0);
    EXPECT_NEAR(flow.v[i], solver.patch_velocity_at(i), 1e-12);
    if (flow.v[i] > 0.01) saw_positive_blow = true;
  }
  EXPECT_TRUE(saw_positive_blow);
  for (const std::size_t i : cloud_.indices_with_tag(tags::kWall))
    EXPECT_DOUBLE_EQ(flow.v[i], 0.0);
}

TEST_F(ChannelTest, CrossFlowDeflectsTheJet) {
  // With blowing/suction on, the vertical velocity above the blowing patch
  // should be positive (flow pushed upward, as in fig. 1).
  const ChannelFlowSolver solver(cloud_, kernel_, quick_config(), spec_);
  const Flow flow = solver.solve(solver.parabolic_inflow());
  const double xc = 0.5 * (spec_.blow_start + spec_.blow_end);
  double v_probe = 0.0;
  double best = 1e9;
  for (std::size_t i = 0; i < cloud_.num_internal(); ++i) {
    const auto p = cloud_.node(i).pos;
    const double d = std::abs(p.x - xc) + std::abs(p.y - 0.3);
    if (d < best) {
      best = d;
      v_probe = flow.v[i];
    }
  }
  EXPECT_GT(v_probe, 0.005);
}

TEST_F(ChannelTest, MassIsApproximatelyConserved) {
  ChannelFlowConfig config = quick_config();
  config.patch_velocity = 0.0;
  const ChannelFlowSolver solver(cloud_, kernel_, config, spec_);
  const Flow flow = solver.solve(solver.parabolic_inflow());
  // Flux in == flux out (trapezoid in y).
  const auto flux = [&](const std::vector<std::size_t>& nodes,
                        const std::vector<double>& ys) {
    double f = 0.0;
    for (std::size_t q = 0; q + 1 < nodes.size(); ++q) {
      const double h = ys[q + 1] - ys[q];
      f += 0.5 * h * (flow.u[nodes[q]] + flow.u[nodes[q + 1]]);
    }
    return f;
  };
  const double in = flux(solver.inlet_nodes(), solver.inlet_y());
  const double out = flux(solver.outlet_nodes(), solver.outlet_y());
  EXPECT_NEAR(out, in, 0.08 * std::abs(in));
}

TEST_F(ChannelTest, OutflowIsPhysicallySane) {
  // The implicit outlet rows keep the outflow bounded and channel-like:
  // positive streamwise flow in the core, no runaway values, and a profile
  // that vanishes towards the walls.
  ChannelFlowConfig config = quick_config();
  const ChannelFlowSolver solver(cloud_, kernel_, config, spec_);
  const Flow flow = solver.solve(solver.parabolic_inflow());
  const auto& outlet = solver.outlet_nodes();
  const auto& ys = solver.outlet_y();
  double u_core = 0.0;
  for (std::size_t q = 0; q < outlet.size(); ++q) {
    EXPECT_LT(std::abs(flow.u[outlet[q]]), 3.0);
    EXPECT_LT(std::abs(flow.v[outlet[q]]), 1.0);
    if (std::abs(ys[q] - 0.5) < 0.2) u_core = std::max(u_core, flow.u[outlet[q]]);
  }
  EXPECT_GT(u_core, 0.4);
  // Near-wall outflow smaller than core outflow.
  EXPECT_LT(flow.u[outlet.front()], u_core);
  EXPECT_LT(flow.u[outlet.back()], u_core);
}

TEST_F(ChannelTest, TapeSolveMatchesPlainSolve) {
  ChannelFlowConfig config = quick_config();
  config.steps_per_refinement = 30;  // short rollout is enough for identity
  const ChannelFlowSolver solver(cloud_, kernel_, config, spec_);
  const Vector inflow = solver.parabolic_inflow();
  const Flow plain = solver.solve(inflow);

  Tape tape;
  const VarVec c = updec::ad::make_variables(tape, inflow);
  const updec::pde::FlowAd traced = solver.solve(tape, c);
  EXPECT_EQ(plain.steps_taken, traced.steps_taken);
  for (std::size_t i = 0; i < cloud_.size(); i += 11) {
    EXPECT_NEAR(traced.u[i].value(), plain.u[i], 1e-12);
    EXPECT_NEAR(traced.v[i].value(), plain.v[i], 1e-12);
  }
}

TEST_F(ChannelTest, TapeGradientMatchesFiniteDifferences) {
  // Short rollout so the FD reference is cheap; J = outlet-mismatch cost.
  ChannelFlowConfig config = quick_config();
  config.refinements = 1;
  config.steps_per_refinement = 25;
  const ChannelFlowSolver solver(cloud_, kernel_, config, spec_);
  const Vector inflow0 = solver.parabolic_inflow();

  const auto cost_of = [&](const Vector& inflow) {
    const Flow flow = solver.solve(inflow);
    double j = 0.0;
    const auto& outlet = solver.outlet_nodes();
    for (std::size_t q = 0; q < outlet.size(); ++q) {
      const double du =
          flow.u[outlet[q]] - solver.target_outflow(solver.outlet_y()[q]);
      const double dv = flow.v[outlet[q]];
      j += 0.5 * solver.outlet_quadrature()[q] * (du * du + dv * dv);
    }
    return j;
  };

  Tape tape;
  const VarVec c = updec::ad::make_variables(tape, inflow0);
  const updec::pde::FlowAd flow = solver.solve(tape, c);
  Var j = tape.constant(0.0);
  const auto& outlet = solver.outlet_nodes();
  for (std::size_t q = 0; q < outlet.size(); ++q) {
    const Var du =
        flow.u[outlet[q]] - solver.target_outflow(solver.outlet_y()[q]);
    const Var dv = flow.v[outlet[q]];
    j = j + 0.5 * solver.outlet_quadrature()[q] * (du * du + dv * dv);
  }
  tape.backward(j);
  EXPECT_NEAR(j.value(), cost_of(inflow0), 1e-11);

  const double h = 1e-6;
  const std::size_t mid = inflow0.size() / 2;
  for (const std::size_t i : {std::size_t{1}, mid, inflow0.size() - 2}) {
    Vector cp = inflow0, cm = inflow0;
    cp[i] += h;
    cm[i] -= h;
    const double g_fd = (cost_of(cp) - cost_of(cm)) / (2 * h);
    EXPECT_NEAR(c[i].adjoint(), g_fd, 2e-5 * (1.0 + std::abs(g_fd)))
        << "component " << i;
  }
}

TEST_F(ChannelTest, RejectsWrongInflowSize) {
  const ChannelFlowSolver solver(cloud_, kernel_, quick_config(), spec_);
  EXPECT_THROW(solver.solve(Vector(2, 0.0)), updec::Error);
}

}  // namespace
