// Fault-injection tests for the robustness stack: every recovery path --
// Krylov escalation to dense LU, Tikhonov-shifted factorisation, NaN
// gradient rollback with learning-rate halving, checkpoint/resume -- is
// exercised under a deterministically armed fault, and a disabled-injection
// run is checked to be bit-identical to an unfaulted one.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <string>

#include "control/driver.hpp"
#include "control/laplace_problem.hpp"
#include "la/blas.hpp"
#include "la/iterative.hpp"
#include "la/lu.hpp"
#include "la/robust_solve.hpp"
#include "la/sparse.hpp"
#include "rbf/kernels.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"
#include "util/log.hpp"

namespace {

using updec::control::DriverOptions;
using updec::control::DriverResult;
using updec::control::GradientStrategy;
using updec::la::CsrMatrix;
using updec::la::Matrix;
using updec::la::SparseBuilder;
using updec::la::Vector;

/// Every test leaves the global fault registry clean.
class ResilienceTest : public ::testing::Test {
 protected:
  void SetUp() override { updec::fault::disarm_all(); }
  void TearDown() override { updec::fault::disarm_all(); }
};

/// Small diagonally dominant nonsymmetric sparse test matrix.
CsrMatrix test_csr(std::size_t n) {
  SparseBuilder builder(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    builder.add(i, i, 4.0 + 0.01 * static_cast<double>(i));
    if (i + 1 < n) builder.add(i, i + 1, -1.0);
    if (i > 0) builder.add(i, i - 1, -1.5);
  }
  return CsrMatrix(builder);
}

Vector ones(std::size_t n) { return Vector(n, 1.0); }

// ---------------------------------------------------------------------------
// Fault-injection plumbing.

TEST_F(ResilienceTest, FaultPointFiresArmedCountTimesThenDisarms) {
  EXPECT_FALSE(updec::fault::enabled());
  EXPECT_FALSE(UPDEC_FAULT_POINT("test.site"));

  updec::fault::arm("test.site", 2);
  EXPECT_TRUE(updec::fault::enabled());
  EXPECT_EQ(updec::fault::armed_count("test.site"), 2u);
  EXPECT_TRUE(UPDEC_FAULT_POINT("test.site"));
  EXPECT_TRUE(UPDEC_FAULT_POINT("test.site"));
  EXPECT_FALSE(UPDEC_FAULT_POINT("test.site"));
  EXPECT_EQ(updec::fault::trigger_count("test.site"), 2u);
  EXPECT_EQ(updec::fault::armed_count("test.site"), 0u);

  // Other sites stay silent.
  EXPECT_FALSE(UPDEC_FAULT_POINT("test.other"));

  updec::fault::disarm_all();
  EXPECT_FALSE(updec::fault::enabled());
}

TEST_F(ResilienceTest, ArmFromEnvParsesSitesAndCounts) {
  ::setenv("UPDEC_FAULTS", "env.a:3, env.b", 1);
  updec::fault::arm_from_env();
  ::unsetenv("UPDEC_FAULTS");
  EXPECT_EQ(updec::fault::armed_count("env.a"), 3u);
  EXPECT_EQ(updec::fault::armed_count("env.b"), 1u);
}

TEST_F(ResilienceTest, ArmFromEnvIgnoresMalformedEntries) {
  ::setenv("UPDEC_FAULTS", "bad:xyz,:5,good:2", 1);
  updec::fault::arm_from_env();
  ::unsetenv("UPDEC_FAULTS");
  EXPECT_EQ(updec::fault::armed_count("good"), 2u);
  EXPECT_EQ(updec::fault::armed_count("bad"), 0u);
}

// ---------------------------------------------------------------------------
// Log-level environment parsing.

TEST_F(ResilienceTest, ParseLogLevelAcceptsNamesAndDigits) {
  using updec::LogLevel;
  const LogLevel fb = LogLevel::kInfo;
  EXPECT_EQ(updec::parse_log_level("debug", fb), LogLevel::kDebug);
  EXPECT_EQ(updec::parse_log_level("INFO", fb), LogLevel::kInfo);
  EXPECT_EQ(updec::parse_log_level("Warn", fb), LogLevel::kWarn);
  EXPECT_EQ(updec::parse_log_level("warning", fb), LogLevel::kWarn);
  EXPECT_EQ(updec::parse_log_level("error", fb), LogLevel::kError);
  EXPECT_EQ(updec::parse_log_level("0", fb), LogLevel::kDebug);
  EXPECT_EQ(updec::parse_log_level("3", fb), LogLevel::kError);
  EXPECT_EQ(updec::parse_log_level("bogus", fb), fb);
  EXPECT_EQ(updec::parse_log_level("", fb), fb);
}

TEST_F(ResilienceTest, InitLogLevelFromEnvAppliesAndRejectsGarbage) {
  const updec::LogLevel before = updec::log_level();
  ::setenv("UPDEC_LOG_LEVEL", "error", 1);
  updec::init_log_level_from_env();
  EXPECT_EQ(updec::log_level(), updec::LogLevel::kError);

  // Unrecognised values keep the current level.
  ::setenv("UPDEC_LOG_LEVEL", "shouting", 1);
  updec::init_log_level_from_env();
  EXPECT_EQ(updec::log_level(), updec::LogLevel::kError);

  ::unsetenv("UPDEC_LOG_LEVEL");
  updec::set_log_level(before);
}

// ---------------------------------------------------------------------------
// Preconditioner guards.

TEST_F(ResilienceTest, JacobiZeroDiagonalFallsBackToIdentity) {
  SparseBuilder builder(3, 3);
  builder.add(0, 0, 2.0);
  builder.add(1, 1, 0.0);  // explicit zero diagonal
  builder.add(2, 2, 4.0);
  builder.add(0, 1, 1.0);
  const CsrMatrix a(builder);
  const auto precond = updec::la::jacobi_preconditioner(a);
  const Vector r{2.0, 3.0, 4.0};
  Vector z;
  precond(r, z);
  EXPECT_DOUBLE_EQ(z[0], 1.0);
  EXPECT_DOUBLE_EQ(z[1], 3.0);  // zero diagonal -> identity for that row
  EXPECT_DOUBLE_EQ(z[2], 1.0);
  EXPECT_TRUE(updec::la::all_finite(z));
}

TEST_F(ResilienceTest, Ilu0ClampsNearZeroPivotInsteadOfThrowing) {
  SparseBuilder builder(3, 3);
  builder.add(0, 0, 2.0);
  builder.add(1, 0, 1.0);
  builder.add(1, 1, 1e-300);  // effectively singular pivot
  builder.add(2, 2, 3.0);
  const CsrMatrix a(builder);
  const updec::la::Ilu0 ilu(a);  // must not throw
  Vector z;
  ilu.apply(ones(3), z);
  EXPECT_TRUE(updec::la::all_finite(z));
}

TEST_F(ResilienceTest, RequireConvergedThrowsWithContext) {
  updec::la::IterativeResult res;
  res.converged = false;
  res.residual_norm = 0.5;
  EXPECT_THROW(res.require_converged("unit test"), updec::Error);
  res.converged = true;
  EXPECT_NO_THROW(res.require_converged("unit test"));
}

// ---------------------------------------------------------------------------
// RobustSolver escalation chain.

TEST_F(ResilienceTest, RobustSolverUsesIterativeStageWhenHealthy) {
  const CsrMatrix a = test_csr(40);
  const Vector b = a.apply(ones(40));
  const updec::la::RobustSolver solver(a);
  Vector x;
  const auto report = solver.solve(b, x);
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.method, updec::la::SolveMethod::kIterative);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(x[i], 1.0, 1e-7);
  EXPECT_NO_THROW(report.require_converged("healthy solve"));
}

TEST_F(ResilienceTest, RobustSolverEscalatesInjectedStagnationToDenseLu) {
  const CsrMatrix a = test_csr(40);
  const Vector b = a.apply(ones(40));
  const updec::la::RobustSolver solver(a);
  updec::fault::arm("gmres.converge");
  updec::fault::arm("bicgstab.converge");
  Vector x;
  const auto report = solver.solve(b, x);
  EXPECT_EQ(updec::fault::trigger_count("gmres.converge"), 1u);
  EXPECT_EQ(updec::fault::trigger_count("bicgstab.converge"), 1u);
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.method, updec::la::SolveMethod::kDenseLu);
  EXPECT_GE(report.attempts, 3u);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(x[i], 1.0, 1e-9);
}

TEST_F(ResilienceTest, RobustSolverShiftsTrulySingularSystem) {
  // Rank-deficient: row 2 duplicates row 1; b is in the range, so the
  // shifted factorisation still produces a small-residual solution.
  SparseBuilder builder(3, 3);
  builder.add(0, 0, 2.0);
  builder.add(0, 1, 1.0);
  builder.add(1, 0, 1.0);
  builder.add(1, 1, 3.0);
  builder.add(2, 0, 1.0);
  builder.add(2, 1, 3.0);
  const CsrMatrix a(builder);
  const Vector b{3.0, 4.0, 4.0};
  updec::la::RobustSolveOptions opts;
  opts.use_gmres = false;  // go straight to the dense stages
  opts.use_bicgstab = false;
  const updec::la::RobustSolver solver(a, opts);
  Vector x;
  const auto report = solver.solve(b, x);
  EXPECT_EQ(report.method, updec::la::SolveMethod::kShiftedLu);
  EXPECT_GT(report.shift, 0.0);
  EXPECT_TRUE(updec::la::all_finite(x));
  EXPECT_LT(report.residual_norm, 1e-6);
}

TEST_F(ResilienceTest, RobustLuFactorRetriesInjectedSingularPivot) {
  Matrix a(2, 2);
  a(0, 0) = 2.0; a(0, 1) = 1.0; a(1, 0) = 1.0; a(1, 1) = 3.0;
  updec::fault::arm("lu.singular_pivot");
  updec::la::FactorReport report;
  const auto lu = updec::la::robust_lu_factor(a, &report);
  EXPECT_TRUE(report.ok);
  EXPECT_TRUE(report.shifted);
  EXPECT_GE(report.attempts, 2u);
  EXPECT_GT(report.shift, 0.0);
  const Vector x = lu.solve(Vector{3.0, 5.0});
  EXPECT_NEAR(x[0], 0.8, 1e-9);  // tiny shift, nearly exact
  EXPECT_NEAR(x[1], 1.4, 1e-9);
}

TEST_F(ResilienceTest, RobustLuFactorShiftsGenuinelySingularMatrix) {
  Matrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0; a(1, 0) = 2.0; a(1, 1) = 4.0;
  updec::la::FactorReport report;
  const auto lu = updec::la::robust_lu_factor(a, &report);
  EXPECT_TRUE(report.ok);
  EXPECT_TRUE(report.shifted);
  const Vector x = lu.solve(Vector{3.0, 6.0});  // consistent rhs
  EXPECT_TRUE(updec::la::all_finite(x));
}

TEST_F(ResilienceTest, CheckedSolveRejectsInjectedNaN) {
  Matrix a(2, 2);
  a(0, 0) = 2.0; a(0, 1) = 0.0; a(1, 0) = 0.0; a(1, 1) = 2.0;
  const updec::la::LuFactorization lu(a);
  const Vector bad{1.0, std::numeric_limits<double>::quiet_NaN()};
  EXPECT_THROW(updec::la::checked_solve(lu, bad, "unit test"),
               updec::Error);
  const Vector good{2.0, 4.0};
  const Vector x = updec::la::checked_solve(lu, good, "unit test");
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
}

// ---------------------------------------------------------------------------
// Collocation NaN recovery.

TEST_F(ResilienceTest, CollocationRecoversInjectedNanSolution) {
  updec::rbf::PolyharmonicSpline kernel(3);
  const updec::control::LaplaceControlProblem problem(10, kernel);
  const Vector c = problem.initial_control();
  const double j_clean = problem.cost(c);

  updec::fault::arm("collocation.nan_solution");
  const double j_faulted = problem.cost(c);
  EXPECT_EQ(updec::fault::trigger_count("collocation.nan_solution"), 1u);
  EXPECT_TRUE(std::isfinite(j_faulted));
  // The shifted re-solve perturbs the system by ~1e-12 relative.
  EXPECT_NEAR(j_faulted, j_clean, 1e-6 * std::max(1.0, std::abs(j_clean)));
}

// ---------------------------------------------------------------------------
// Driver divergence recovery and checkpointing.

/// J(c) = |c - target|^2 with exact gradient; cheap and deterministic.
class QuadraticStrategy final : public GradientStrategy {
 public:
  explicit QuadraticStrategy(Vector target) : target_(std::move(target)) {}

  [[nodiscard]] std::string name() const override { return "quadratic"; }

  double value_and_gradient(const Vector& control,
                            Vector& gradient) override {
    gradient.resize(control.size());
    double j = 0.0;
    for (std::size_t i = 0; i < control.size(); ++i) {
      const double d = control[i] - target_[i];
      j += d * d;
      gradient[i] = 2.0 * d;
    }
    return j;
  }

 private:
  Vector target_;
};

/// Always produces a non-finite cost; recovery can never succeed.
class NanStrategy final : public GradientStrategy {
 public:
  [[nodiscard]] std::string name() const override { return "nan"; }
  double value_and_gradient(const Vector& control, Vector& gradient) override {
    gradient = Vector(control.size(), 0.0);
    return std::numeric_limits<double>::quiet_NaN();
  }
};

DriverOptions quad_options(std::size_t iterations) {
  DriverOptions options;
  options.iterations = iterations;
  options.initial_learning_rate = 0.1;
  return options;
}

TEST_F(ResilienceTest, DriverRecoversFromInjectedNanCost) {
  QuadraticStrategy strategy(Vector{1.0, -2.0, 0.5});
  updec::fault::arm("driver.nan_cost");
  const DriverResult result = updec::control::optimize_from(
      Vector(3, 0.0), strategy, quad_options(80));
  EXPECT_FALSE(result.aborted);
  EXPECT_EQ(result.recoveries, 1u);
  EXPECT_EQ(result.iterations, 80u);
  EXPECT_EQ(result.cost_history.size(), 80u);
  // The halved learning rate slows convergence but the run still makes
  // strong progress from J0 = 5.25.
  EXPECT_LT(result.final_cost, 0.5);
}

TEST_F(ResilienceTest, DriverRecoversFromInjectedNanGradient) {
  QuadraticStrategy strategy(Vector{1.0, -2.0, 0.5});
  updec::fault::arm("driver.nan_gradient", 2);
  const DriverResult result = updec::control::optimize_from(
      Vector(3, 0.0), strategy, quad_options(80));
  EXPECT_FALSE(result.aborted);
  EXPECT_EQ(result.recoveries, 2u);
  EXPECT_EQ(result.iterations, 80u);
  // Two recoveries quarter the learning rate; progress is slower still.
  EXPECT_LT(result.final_cost, result.cost_history.front() * 0.5);
}

TEST_F(ResilienceTest, DriverAbortsWhenRecoveryBudgetExhausted) {
  NanStrategy strategy;
  DriverOptions options = quad_options(20);
  options.max_recoveries = 3;
  const DriverResult result =
      updec::control::optimize_from(Vector(2, 0.0), strategy, options);
  EXPECT_TRUE(result.aborted);
  EXPECT_EQ(result.recoveries, 3u);
  EXPECT_EQ(result.iterations, 0u);
  EXPECT_TRUE(result.cost_history.empty());
}

TEST_F(ResilienceTest, DriverAbortsImmediatelyWhenRecoveryDisabled) {
  NanStrategy strategy;
  DriverOptions options = quad_options(20);
  options.recover_divergence = false;
  const DriverResult result =
      updec::control::optimize_from(Vector(2, 0.0), strategy, options);
  EXPECT_TRUE(result.aborted);
  EXPECT_EQ(result.recoveries, 0u);
}

TEST_F(ResilienceTest, DriverTreatsThrownSolverErrorAsRecoverable) {
  // A strategy that throws updec::Error once (as a diverged PDE solve
  // would), then behaves.
  class ThrowOnceStrategy final : public GradientStrategy {
   public:
    [[nodiscard]] std::string name() const override { return "throw-once"; }
    double value_and_gradient(const Vector& control,
                              Vector& gradient) override {
      if (!thrown_) {
        thrown_ = true;
        throw updec::Error("simulated PDE divergence");
      }
      gradient = Vector(control.size(), 0.0);
      return 1.0;
    }
   private:
    bool thrown_ = false;
  };
  ThrowOnceStrategy strategy;
  const DriverResult result = updec::control::optimize_from(
      Vector(2, 0.0), strategy, quad_options(5));
  EXPECT_FALSE(result.aborted);
  EXPECT_EQ(result.recoveries, 1u);
  EXPECT_EQ(result.iterations, 5u);
}

TEST_F(ResilienceTest, DriverDegradedStopReturnsBestEffortState) {
  // should_degrade asks for a graceful wrap-up: the driver stops at the
  // next iteration boundary with the trajectory so far and flags the
  // result, instead of aborting or running out the budget.
  QuadraticStrategy strategy(Vector{1.0, -2.0});
  DriverOptions options = quad_options(50);
  std::size_t calls = 0;
  options.should_degrade = [&calls] { return ++calls > 10; };
  const DriverResult result =
      updec::control::optimize_from(Vector(2, 0.0), strategy, options);
  EXPECT_TRUE(result.stopped);
  EXPECT_TRUE(result.degraded_stop);
  EXPECT_FALSE(result.aborted);
  EXPECT_EQ(result.iterations, 10u);
  EXPECT_EQ(result.cost_history.size(), 10u);
  EXPECT_FALSE(result.grad_norm_history.empty());

  // A hard stop wins over a degradation request when both fire.
  DriverOptions both = quad_options(50);
  both.should_stop = [] { return true; };
  both.should_degrade = [] { return true; };
  const DriverResult stopped =
      updec::control::optimize_from(Vector(2, 0.0), strategy, both);
  EXPECT_TRUE(stopped.stopped);
  EXPECT_FALSE(stopped.degraded_stop);
}

TEST_F(ResilienceTest, CheckpointResumeReplaysTrajectoryExactly) {
  const Vector target{2.0, -1.0, 0.25, 3.0};
  const std::string path = ::testing::TempDir() + "updec_resume_ckpt.txt";

  // Uninterrupted reference run, checkpointing along the way (last
  // checkpoint lands at iteration 50 of 60).
  DriverOptions options = quad_options(60);
  options.checkpoint_every = 25;
  options.checkpoint_path = path;
  QuadraticStrategy full_strategy(target);
  const DriverResult full = updec::control::optimize_from(
      Vector(4, 0.0), full_strategy, options);
  EXPECT_EQ(full.cost_history.size(), 60u);

  // Resume from the iteration-50 checkpoint; same options (the LR schedule
  // depends on the total iteration count).
  QuadraticStrategy resumed_strategy(target);
  const DriverResult resumed =
      updec::control::optimize_resume(path, resumed_strategy, options);
  ASSERT_EQ(resumed.cost_history.size(), 60u);
  for (std::size_t i = 0; i < 60; ++i)
    EXPECT_DOUBLE_EQ(resumed.cost_history[i], full.cost_history[i])
        << "cost history diverged at iteration " << i;
  ASSERT_EQ(resumed.control.size(), full.control.size());
  for (std::size_t i = 0; i < full.control.size(); ++i)
    EXPECT_DOUBLE_EQ(resumed.control[i], full.control[i]);

  std::remove(path.c_str());
}

TEST_F(ResilienceTest, CheckpointV2ResumeKeepsPerIterationArraysAligned) {
  // Regression: v1 checkpoints only persisted cost_history, so a resumed
  // DriverResult's grad_norm_history / iteration_seconds restarted at the
  // resume point and fell out of alignment with cost_history. v2 persists
  // all three.
  const Vector target{1.5, -0.5, 2.0};
  const std::string path = ::testing::TempDir() + "updec_v2_ckpt.txt";
  DriverOptions options = quad_options(60);
  options.checkpoint_every = 25;
  options.checkpoint_path = path;
  QuadraticStrategy full_strategy(target);
  const DriverResult full = updec::control::optimize_from(
      Vector(3, 0.0), full_strategy, options);

  QuadraticStrategy resumed_strategy(target);
  const DriverResult resumed =
      updec::control::optimize_resume(path, resumed_strategy, options);
  ASSERT_EQ(resumed.cost_history.size(), 60u);
  ASSERT_EQ(resumed.grad_norm_history.size(), resumed.cost_history.size());
  ASSERT_EQ(resumed.iteration_seconds.size(), resumed.cost_history.size());
  // Gradient norms are deterministic, so the checkpointed prefix AND the
  // recomputed suffix must both match the uninterrupted run bit for bit.
  for (std::size_t i = 0; i < 60; ++i)
    EXPECT_DOUBLE_EQ(resumed.grad_norm_history[i], full.grad_norm_history[i])
        << "grad-norm history diverged at iteration " << i;
  std::remove(path.c_str());
}

TEST_F(ResilienceTest, CheckpointV1IsStillReadableWithZeroBackfill) {
  // Old on-disk checkpoints must keep resuming. Rewrite a fresh v2 file
  // into the v1 layout (no grad_norms / iter_seconds lines) and resume
  // from it: the missing arrays are zero-backfilled to cost_history's
  // length, never left short.
  const Vector target{1.0, 2.0};
  const std::string path = ::testing::TempDir() + "updec_v1_ckpt.txt";
  DriverOptions options = quad_options(60);
  options.checkpoint_every = 25;
  options.checkpoint_path = path;
  QuadraticStrategy strategy(target);
  const DriverResult full =
      updec::control::optimize_from(Vector(2, 0.0), strategy, options);

  std::string v1;
  {
    std::ifstream is(path);
    ASSERT_TRUE(is.good());
    std::string line;
    while (std::getline(is, line)) {
      if (line.rfind("updec-checkpoint v2", 0) == 0)
        line = "updec-checkpoint v1";
      if (line.rfind("grad_norms ", 0) == 0 ||
          line.rfind("iter_seconds ", 0) == 0)
        continue;
      v1 += line + '\n';
    }
  }
  {
    std::ofstream os(path);
    os << v1;
  }

  QuadraticStrategy resumed_strategy(target);
  const DriverResult resumed =
      updec::control::optimize_resume(path, resumed_strategy, options);
  ASSERT_EQ(resumed.cost_history.size(), 60u);
  for (std::size_t i = 0; i < 60; ++i)
    EXPECT_DOUBLE_EQ(resumed.cost_history[i], full.cost_history[i]);
  // The checkpoint landed at iteration 50: the backfilled prefix is zero,
  // the 10 live iterations carry real gradient norms.
  ASSERT_EQ(resumed.grad_norm_history.size(), 60u);
  ASSERT_EQ(resumed.iteration_seconds.size(), 60u);
  for (std::size_t i = 0; i < 50; ++i)
    EXPECT_DOUBLE_EQ(resumed.grad_norm_history[i], 0.0);
  for (std::size_t i = 50; i < 60; ++i)
    EXPECT_DOUBLE_EQ(resumed.grad_norm_history[i], full.grad_norm_history[i]);
  std::remove(path.c_str());
}

TEST_F(ResilienceTest, ResumeFromMissingCheckpointThrows) {
  QuadraticStrategy strategy(Vector{1.0});
  EXPECT_THROW(updec::control::optimize_resume(
                   ::testing::TempDir() + "updec_no_such_ckpt.txt", strategy,
                   quad_options(10)),
               updec::Error);
}

TEST_F(ResilienceTest, DisabledInjectionRunsAreBitIdentical) {
  ASSERT_FALSE(updec::fault::enabled());
  QuadraticStrategy a(Vector{1.0, -2.0, 0.5});
  QuadraticStrategy b(Vector{1.0, -2.0, 0.5});
  const DriverResult ra = updec::control::optimize_from(
      Vector(3, 0.0), a, quad_options(40));
  const DriverResult rb = updec::control::optimize_from(
      Vector(3, 0.0), b, quad_options(40));
  ASSERT_EQ(ra.cost_history.size(), rb.cost_history.size());
  for (std::size_t i = 0; i < ra.cost_history.size(); ++i)
    EXPECT_DOUBLE_EQ(ra.cost_history[i], rb.cost_history[i]);
  for (std::size_t i = 0; i < ra.control.size(); ++i)
    EXPECT_DOUBLE_EQ(ra.control[i], rb.control[i]);
  EXPECT_EQ(ra.recoveries, 0u);
  EXPECT_EQ(rb.recoveries, 0u);
}

}  // namespace
