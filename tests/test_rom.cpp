// Tests for the reduced-order serving tier: SnapshotBank bounds and
// deduplication, POD basis construction on healthy / rank-deficient
// snapshot sets, RomSolver escalation + enrichment + warm restart, the
// pod-basis disk codec, and the per-class cache accounting it rides on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "check/generators.hpp"
#include "la/blas.hpp"
#include "la/robust_solve.hpp"
#include "rom/config.hpp"
#include "rom/pod_basis.hpp"
#include "rom/rom_solver.hpp"
#include "rom/snapshot_bank.hpp"
#include "serve/cache.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using updec::Rng;
using updec::la::Vector;
namespace rom = updec::rom;
namespace serve = updec::serve;

Vector random_snapshot(Rng& rng, std::size_t n) {
  Vector v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = rng.normal();
  return v;
}

// ---- SnapshotBank ---------------------------------------------------------

TEST(SnapshotBank, DeduplicatesAndRejectsJunk) {
  rom::SnapshotBank bank(1 << 16);
  Rng rng(1);
  const Vector s = random_snapshot(rng, 8);
  EXPECT_TRUE(bank.add(7, s));
  EXPECT_FALSE(bank.add(7, s));  // bit-identical duplicate
  EXPECT_EQ(bank.count(7), 1u);

  EXPECT_FALSE(bank.add(7, Vector()));  // empty
  Vector bad = s;
  bad[3] = std::nan("");
  EXPECT_FALSE(bank.add(7, bad));  // non-finite
  EXPECT_EQ(bank.count(7), 1u);

  // Same content under another fingerprint is a distinct training set.
  EXPECT_TRUE(bank.add(8, s));
  EXPECT_EQ(bank.count(8), 1u);
}

TEST(SnapshotBank, ByteCapEvictsOldestOfLeastRecentlyTouchedGroup) {
  // Each 8-double snapshot accounts 8*8 + 16 = 80 bytes; cap at 4 of them.
  rom::SnapshotBank bank(320);
  Rng rng(2);
  EXPECT_TRUE(bank.add(1, random_snapshot(rng, 8)));
  EXPECT_TRUE(bank.add(1, random_snapshot(rng, 8)));
  EXPECT_TRUE(bank.add(2, random_snapshot(rng, 8)));
  EXPECT_TRUE(bank.add(2, random_snapshot(rng, 8)));
  EXPECT_EQ(bank.bytes(), 320u);
  EXPECT_EQ(bank.evictions(), 0u);

  // Touch group 1 so group 2 is the stale one, then overflow the cap.
  (void)bank.snapshots(1);
  EXPECT_TRUE(bank.add(1, random_snapshot(rng, 8)));
  EXPECT_EQ(bank.evictions(), 1u);
  EXPECT_EQ(bank.count(1), 3u);
  EXPECT_EQ(bank.count(2), 1u);  // lost its oldest snapshot
  EXPECT_LE(bank.bytes(), bank.byte_cap());
}

TEST(SnapshotBank, ZeroCapAndOversizedSnapshotsStoreNothing) {
  rom::SnapshotBank off(0);
  Rng rng(3);
  EXPECT_FALSE(off.add(1, random_snapshot(rng, 4)));
  EXPECT_EQ(off.bytes(), 0u);

  rom::SnapshotBank tiny(64);  // smaller than one 8-double snapshot
  EXPECT_FALSE(tiny.add(1, random_snapshot(rng, 8)));
  EXPECT_EQ(tiny.count(1), 0u);
}

TEST(SnapshotBank, ClearReleasesEverything) {
  rom::SnapshotBank bank(1 << 16);
  Rng rng(4);
  ASSERT_TRUE(bank.add(1, random_snapshot(rng, 8)));
  bank.clear();
  EXPECT_EQ(bank.bytes(), 0u);
  EXPECT_EQ(bank.count(1), 0u);
}

// ---- PodBasis -------------------------------------------------------------

TEST(PodBasis, OrthonormalModesSpanTheSnapshots) {
  Rng rng(5);
  const std::size_t n = 24;
  std::vector<Vector> snaps;
  for (int i = 0; i < 6; ++i) snaps.push_back(random_snapshot(rng, n));
  const rom::PodBasis basis = rom::build_pod_basis(snaps, 8);
  ASSERT_EQ(basis.k(), 6u);
  EXPECT_EQ(basis.n(), n);
  EXPECT_EQ(basis.snapshot_count, 6u);
  EXPECT_LT(basis.orthonormality_defect(), 1e-10);
  for (std::size_t j = 0; j + 1 < basis.k(); ++j)
    EXPECT_GE(basis.eigenvalues[j], basis.eigenvalues[j + 1]);

  // Every snapshot reconstructs from its projection: V V^T s == s.
  for (const Vector& s : snaps) {
    const Vector rec = basis.lift(basis.project(s));
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(rec[i], s[i], 1e-8);
  }
}

TEST(PodBasis, RankDeficientSnapshotsTruncateCleanly) {
  Rng rng(6);
  const std::size_t n = 16;
  std::vector<Vector> snaps;
  snaps.push_back(random_snapshot(rng, n));
  snaps.push_back(random_snapshot(rng, n));
  snaps.push_back(snaps[0]);  // duplicate
  Vector combo(n, 0.0);       // linear combination
  updec::la::axpy(2.0, snaps[0], combo);
  updec::la::axpy(-1.0, snaps[1], combo);
  snaps.push_back(combo);

  const rom::PodBasis basis = rom::build_pod_basis(snaps, 8);
  EXPECT_EQ(basis.k(), 2u);  // only two independent directions
  EXPECT_LT(basis.orthonormality_defect(), 1e-10);
}

TEST(PodBasis, MaxKCapsTheRankAndZeroSnapshotsGiveEmptyBasis) {
  Rng rng(7);
  std::vector<Vector> snaps;
  for (int i = 0; i < 5; ++i) snaps.push_back(random_snapshot(rng, 12));
  EXPECT_EQ(rom::build_pod_basis(snaps, 3).k(), 3u);

  const std::vector<Vector> zeros(4, Vector(12, 0.0));
  EXPECT_EQ(rom::build_pod_basis(zeros, 3).k(), 0u);

  EXPECT_THROW(rom::build_pod_basis({}, 3), updec::Error);
  std::vector<Vector> ragged = {Vector(4, 1.0), Vector(5, 1.0)};
  EXPECT_THROW(rom::build_pod_basis(ragged, 3), updec::Error);
}

// ---- RomSolver ------------------------------------------------------------

struct RomRig {
  explicit RomRig(std::uint64_t seed, std::size_t n, std::size_t min_snaps) {
    Rng rng(seed);
    updec::la::RobustSolveOptions forced;
    forced.sparse_min_n = 0;
    a = updec::check::random_sparse_diag_dominant(rng, n);
    full = std::make_unique<updec::la::SparseFirstSolver>(a, forced);
    config.enabled = true;
    config.tol = 1e-8;
    config.max_k = n;
    config.min_snapshots = min_snaps;
    bank = std::make_unique<rom::SnapshotBank>(1 << 22);
    solver = std::make_unique<rom::RomSolver>(*full, *bank, seed, config);
  }
  updec::la::CsrMatrix a{0, 0, {0}, {}, {}};
  std::unique_ptr<updec::la::SparseFirstSolver> full;
  rom::RomConfig config;
  std::unique_ptr<rom::SnapshotBank> bank;
  std::unique_ptr<rom::RomSolver> solver;
};

TEST(RomSolver, EscalatesColdThenReducesInSpan) {
  RomRig rig(11, 20, 4);
  Rng rng(12);
  std::vector<Vector> rhs;
  for (std::size_t i = 0; i < 4; ++i) {
    rhs.push_back(random_snapshot(rng, 20));
    rom::RomSolveReport rep;
    (void)rig.solver->solve(rhs.back(), {}, &rep);
    EXPECT_TRUE(rep.escalated);
    EXPECT_FALSE(rep.reduced);
  }

  Vector inside(20, 0.0);
  for (const Vector& r : rhs) updec::la::axpy(rng.uniform(-1.0, 1.0), r,
                                              inside);
  rom::RomSolveReport rep;
  const Vector x = rig.solver->solve(inside, {}, &rep);
  EXPECT_TRUE(rep.reduced);
  EXPECT_GT(rep.k, 0u);
  EXPECT_LE(rep.estimate, rig.config.tol);

  updec::la::SolveReport full_rep;
  const Vector x_ref = rig.full->solve(inside, &full_rep);
  full_rep.require_converged("test reference solve");
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(x[i], x_ref[i], 1e-7);

  const rom::RomStats stats = rig.solver->stats();
  EXPECT_EQ(stats.escalated, 4u);
  EXPECT_EQ(stats.reduced, 1u);
  EXPECT_EQ(stats.rebuilds, 1u);
  EXPECT_GE(stats.harvested, 4u);
}

TEST(RomSolver, RebuildCallbackFiresAndInstallBasisWarmStarts) {
  RomRig rig(13, 16, 3);
  Rng rng(14);
  std::size_t callbacks = 0;
  std::shared_ptr<const rom::PodBasis> persisted;
  rig.solver->on_basis_rebuilt([&](const rom::PodBasis& basis) {
    ++callbacks;
    persisted = std::make_shared<const rom::PodBasis>(basis);
  });

  std::vector<Vector> rhs;
  for (std::size_t i = 0; i < 3; ++i) {
    rhs.push_back(random_snapshot(rng, 16));
    (void)rig.solver->solve(rhs[i]);
  }
  Vector inside(16, 0.0);
  updec::la::axpy(1.0, rhs[0], inside);
  updec::la::axpy(-0.5, rhs[1], inside);
  (void)rig.solver->solve(inside);  // triggers the rebuild
  ASSERT_EQ(callbacks, 1u);
  ASSERT_NE(persisted, nullptr);
  EXPECT_GT(persisted->k(), 0u);

  // A FRESH solver warm-started from the persisted basis must answer the
  // in-span rhs in reduced space immediately -- zero cold escalations.
  RomRig warm(13, 16, 3);
  warm.solver->install_basis(persisted);
  rom::RomSolveReport rep;
  (void)warm.solver->solve(inside, {}, &rep);
  EXPECT_TRUE(rep.reduced);
  const rom::RomStats stats = warm.solver->stats();
  EXPECT_EQ(stats.escalated, 0u);
  EXPECT_EQ(stats.reduced, 1u);
  // install_basis is a warm restart, not a rebuild.
  EXPECT_EQ(stats.rebuilds, 0u);
  // The persisted span was re-seeded into the bank so later enrichment
  // rebuilds do not forget it.
  EXPECT_EQ(warm.bank->count(13), persisted->k());
}

TEST(RomSolver, MismatchedInstallAndRhsAreRejected) {
  RomRig rig(15, 12, 3);
  Rng rng(16);
  std::vector<Vector> snaps;
  for (int i = 0; i < 3; ++i) snaps.push_back(random_snapshot(rng, 9));
  auto alien = std::make_shared<const rom::PodBasis>(
      rom::build_pod_basis(snaps, 3));
  rig.solver->install_basis(alien);  // wrong dimension: ignored, not fatal
  EXPECT_EQ(rig.solver->basis(), nullptr);
  EXPECT_THROW((void)rig.solver->solve(Vector(5, 1.0)), updec::Error);
}

// ---- pod-basis disk codec -------------------------------------------------

TEST(PodBasisCodec, RoundTripsBitExactly) {
  Rng rng(17);
  std::vector<Vector> snaps;
  for (int i = 0; i < 5; ++i) snaps.push_back(random_snapshot(rng, 10));
  rom::PodBasis basis = rom::build_pod_basis(snaps, 4);
  basis.snapshot_count = 5;

  const std::string payload = serve::encode_pod_basis(basis);
  const rom::PodBasis back = serve::decode_pod_basis(payload);
  ASSERT_EQ(back.n(), basis.n());
  ASSERT_EQ(back.k(), basis.k());
  EXPECT_EQ(back.snapshot_count, 5u);
  for (std::size_t i = 0; i < basis.n(); ++i)
    for (std::size_t j = 0; j < basis.k(); ++j)
      EXPECT_EQ(back.modes(i, j), basis.modes(i, j));  // bit-exact
  for (std::size_t j = 0; j < basis.k(); ++j)
    EXPECT_EQ(back.eigenvalues[j], basis.eigenvalues[j]);
}

TEST(PodBasisCodec, RejectsTruncatedAndNonOrthonormalPayloads) {
  Rng rng(18);
  std::vector<Vector> snaps;
  for (int i = 0; i < 3; ++i) snaps.push_back(random_snapshot(rng, 8));
  const rom::PodBasis basis = rom::build_pod_basis(snaps, 3);
  const std::string payload = serve::encode_pod_basis(basis);

  EXPECT_THROW((void)serve::decode_pod_basis(
                   std::string_view(payload).substr(0, payload.size() - 5)),
               updec::Error);

  rom::PodBasis skewed = basis;
  for (std::size_t i = 0; i < skewed.n(); ++i)
    skewed.modes(i, 0) *= 3.0;  // no longer orthonormal
  EXPECT_THROW((void)serve::decode_pod_basis(serve::encode_pod_basis(skewed)),
               updec::Error);
}

// ---- cache integration ----------------------------------------------------

TEST(OperatorCacheRom, PutTryGetAndPerClassStats) {
  serve::OperatorCache cache(std::size_t{1} << 20, "");
  const serve::CacheKey key = serve::pod_basis_key(42);

  EXPECT_EQ(cache.try_get<rom::PodBasis>(key, "pod-basis"), nullptr);

  Rng rng(19);
  std::vector<Vector> snaps;
  for (int i = 0; i < 4; ++i) snaps.push_back(random_snapshot(rng, 8));
  auto v1 = std::make_shared<const rom::PodBasis>(
      rom::build_pod_basis(snaps, 2));
  cache.put<rom::PodBasis>(key, {v1, serve::pod_basis_bytes(*v1)},
                           "pod-basis");
  EXPECT_EQ(cache.try_get<rom::PodBasis>(key, "pod-basis"), v1);

  // put() REPLACES (get_or_compute would have kept the old artefact), and
  // replacement must not be misreported as an eviction.
  auto v2 = std::make_shared<const rom::PodBasis>(
      rom::build_pod_basis(snaps, 4));
  cache.put<rom::PodBasis>(key, {v2, serve::pod_basis_bytes(*v2)},
                           "pod-basis");
  EXPECT_EQ(cache.try_get<rom::PodBasis>(key, "pod-basis"), v2);

  const serve::OperatorCache::Stats s = cache.stats();
  const auto it = s.by_class.find("pod-basis");
  ASSERT_NE(it, s.by_class.end());
  EXPECT_EQ(it->second.hits, 2u);
  EXPECT_EQ(it->second.misses, 1u);
  EXPECT_EQ(it->second.evictions, 0u);
  EXPECT_EQ(it->second.entries, 1u);
  EXPECT_EQ(it->second.bytes, serve::pod_basis_bytes(*v2));
}

TEST(OperatorCacheRom, StoreAndWarmRestartThroughDisk) {
  const std::string dir = ::testing::TempDir() + "rom_cache_test";
  Rng rng(20);
  std::vector<Vector> snaps;
  for (int i = 0; i < 4; ++i) snaps.push_back(random_snapshot(rng, 8));
  rom::PodBasis basis = rom::build_pod_basis(snaps, 3);
  basis.snapshot_count = 4;

  {
    serve::OperatorCache cache(std::size_t{1} << 20, dir);
    serve::store_pod_basis(cache, 99, basis);
    EXPECT_GE(cache.stats().disk.writes, 1u);
  }
  // A NEW process (fresh cache, same directory) warm-restarts from disk.
  serve::OperatorCache cache(std::size_t{1} << 20, dir);
  const auto loaded = serve::cached_pod_basis(cache, 99);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->k(), basis.k());
  EXPECT_EQ(loaded->snapshot_count, 4u);
  EXPECT_GE(cache.stats().disk.hits, 1u);
  // Promotion parked it in memory: the next probe is a pure memory hit.
  EXPECT_NE(cache.try_get<rom::PodBasis>(serve::pod_basis_key(99),
                                         "pod-basis"),
            nullptr);
  // Unknown fingerprints stay cold misses, not errors.
  EXPECT_EQ(serve::cached_pod_basis(cache, 100), nullptr);
}

TEST(OperatorCacheRom, CorruptDiskEntryIsRejectedNotServed) {
  const std::string dir = ::testing::TempDir() + "rom_cache_corrupt";
  Rng rng(21);
  std::vector<Vector> snaps;
  for (int i = 0; i < 4; ++i) snaps.push_back(random_snapshot(rng, 8));
  const rom::PodBasis basis = rom::build_pod_basis(snaps, 3);
  std::string path;
  {
    serve::OperatorCache cache(std::size_t{1} << 20, dir);
    serve::store_pod_basis(cache, 7, basis);
    ASSERT_NE(cache.disk(), nullptr);
    path = cache.disk()->path_for(serve::pod_basis_key(7));
  }
  {  // flip one payload byte on disk
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(-9, std::ios::end);
    char c = 0;
    f.read(&c, 1);
    f.seekp(-9, std::ios::end);
    c = static_cast<char>(c ^ 0x5A);
    f.write(&c, 1);
  }
  serve::OperatorCache cache(std::size_t{1} << 20, dir);
  EXPECT_EQ(serve::cached_pod_basis(cache, 7), nullptr);
  EXPECT_GE(cache.stats().disk.corrupt, 1u);
}

// ---- env knobs ------------------------------------------------------------

TEST(RomConfig, EnvKnobsParseAndDefaultsHold) {
  const rom::RomConfig defaults = rom::config_from_env();
  EXPECT_FALSE(defaults.enabled);
  EXPECT_GT(defaults.tol, 0.0);
  EXPECT_GE(defaults.min_snapshots, 1u);

  ::setenv("UPDEC_ROM", "1", 1);
  ::setenv("UPDEC_ROM_TOL", "1e-5", 1);
  ::setenv("UPDEC_ROM_MAX_K", "17", 1);
  ::setenv("UPDEC_ROM_MIN_SNAPSHOTS", "5", 1);
  ::setenv("UPDEC_ROM_SNAPSHOT_BYTES", "1048576", 1);
  const rom::RomConfig c = rom::config_from_env();
  ::unsetenv("UPDEC_ROM");
  ::unsetenv("UPDEC_ROM_TOL");
  ::unsetenv("UPDEC_ROM_MAX_K");
  ::unsetenv("UPDEC_ROM_MIN_SNAPSHOTS");
  ::unsetenv("UPDEC_ROM_SNAPSHOT_BYTES");
  EXPECT_TRUE(c.enabled);
  EXPECT_DOUBLE_EQ(c.tol, 1e-5);
  EXPECT_EQ(c.max_k, 17u);
  EXPECT_EQ(c.min_snapshots, 5u);
  EXPECT_EQ(c.snapshot_bytes, std::size_t{1} << 20);
}

}  // namespace
