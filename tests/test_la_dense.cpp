// Unit tests for dense containers and BLAS-like kernels.
#include <gtest/gtest.h>

#include "la/blas.hpp"
#include "la/dense.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using updec::la::Matrix;
using updec::la::Vector;

TEST(Vector, ConstructionAndAccess) {
  Vector v(4, 2.5);
  EXPECT_EQ(v.size(), 4u);
  EXPECT_DOUBLE_EQ(v[3], 2.5);
  v[0] = -1.0;
  EXPECT_DOUBLE_EQ(v[0], -1.0);
  v.fill(0.0);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
}

TEST(Vector, InitializerListAndArithmetic) {
  const Vector a{1.0, 2.0, 3.0};
  const Vector b{4.0, 5.0, 6.0};
  const Vector sum = a + b;
  const Vector diff = b - a;
  const Vector scaled = 2.0 * a;
  EXPECT_DOUBLE_EQ(sum[2], 9.0);
  EXPECT_DOUBLE_EQ(diff[0], 3.0);
  EXPECT_DOUBLE_EQ(scaled[1], 4.0);
}

TEST(Vector, MismatchedSizesThrow) {
  const Vector a{1.0};
  const Vector b{1.0, 2.0};
  EXPECT_THROW(a + b, updec::Error);
  EXPECT_THROW(a - b, updec::Error);
}

TEST(Matrix, IdentityAndTranspose) {
  const Matrix eye = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(eye(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(eye(0, 2), 0.0);
  Matrix a(2, 3);
  a(0, 1) = 5.0;
  a(1, 2) = -2.0;
  const Matrix at = a.transposed();
  EXPECT_EQ(at.rows(), 3u);
  EXPECT_DOUBLE_EQ(at(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(at(2, 1), -2.0);
}

TEST(Blas, AxpyDotNorms) {
  Vector x{1.0, -2.0, 2.0};
  Vector y{0.0, 1.0, 1.0};
  updec::la::axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  EXPECT_DOUBLE_EQ(y[1], -3.0);
  EXPECT_DOUBLE_EQ(updec::la::dot(x, x), 9.0);
  EXPECT_DOUBLE_EQ(updec::la::nrm2(x), 3.0);
  EXPECT_DOUBLE_EQ(updec::la::nrm_inf(x), 2.0);
  EXPECT_DOUBLE_EQ(updec::la::nrm1(x), 5.0);
}

TEST(Blas, GemvMatchesManual) {
  Matrix a(2, 3);
  a(0, 0) = 1;  a(0, 1) = 2;  a(0, 2) = 3;
  a(1, 0) = -1; a(1, 1) = 0;  a(1, 2) = 4;
  const Vector x{1.0, 1.0, 1.0};
  Vector y{10.0, 10.0};
  updec::la::gemv(1.0, a, x, 0.0, y);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
  // beta accumulation
  updec::la::gemv(1.0, a, x, 1.0, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
}

TEST(Blas, GemvTransposeConsistentWithExplicitTranspose) {
  updec::Rng rng(3);
  Matrix a(5, 4);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 4; ++j) a(i, j) = rng.normal();
  Vector x(5);
  for (auto& v : x) v = rng.normal();
  const Vector y1 = updec::la::matvec_t(a, x);
  const Vector y2 = updec::la::matvec(a.transposed(), x);
  for (std::size_t j = 0; j < 4; ++j) EXPECT_NEAR(y1[j], y2[j], 1e-14);
}

TEST(Blas, GerRankOneUpdate) {
  Matrix a(2, 2, 0.0);
  const Vector x{1.0, 2.0};
  const Vector y{3.0, 4.0};
  updec::la::ger(1.0, x, y, a);
  EXPECT_DOUBLE_EQ(a(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(a(1, 1), 8.0);
}

TEST(Blas, GemmMatchesManualSmall) {
  Matrix a(2, 2), b(2, 2);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 3; a(1, 1) = 4;
  b(0, 0) = 5; b(0, 1) = 6; b(1, 0) = 7; b(1, 1) = 8;
  const Matrix c = updec::la::matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Blas, GemmAssociativityProperty) {
  updec::Rng rng(17);
  const std::size_t n = 8;
  Matrix a(n, n), b(n, n), c(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = rng.normal();
      b(i, j) = rng.normal();
      c(i, j) = rng.normal();
    }
  const Matrix left = updec::la::matmul(updec::la::matmul(a, b), c);
  const Matrix right = updec::la::matmul(a, updec::la::matmul(b, c));
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_NEAR(left(i, j), right(i, j), 1e-11);
}

TEST(Blas, ResidualNormZeroForExactSolution) {
  const Matrix eye = Matrix::identity(3);
  const Vector b{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(updec::la::residual_norm(eye, b, b), 0.0);
}

TEST(Blas, DimensionMismatchesThrow) {
  Matrix a(2, 3);
  Vector x(2), y(2);
  EXPECT_THROW(updec::la::gemv(1.0, a, x, 0.0, y), updec::Error);
  Matrix b(4, 4), c(2, 4);
  EXPECT_THROW(updec::la::gemm(1.0, a, b, 0.0, c), updec::Error);
}

// Property sweep: gemv linearity alpha*A(x+y) == alpha*Ax + alpha*Ay.
class GemvLinearity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GemvLinearity, Additivity) {
  const std::size_t n = GetParam();
  updec::Rng rng(n);
  Matrix a(n, n);
  Vector x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.normal();
    y[i] = rng.normal();
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
  }
  const Vector lhs = updec::la::matvec(a, x + y);
  const Vector rhs = updec::la::matvec(a, x) + updec::la::matvec(a, y);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(lhs[i], rhs[i], 1e-12 * (1.0 + std::abs(lhs[i])));
}

INSTANTIATE_TEST_SUITE_P(Sizes, GemvLinearity,
                         ::testing::Values(1, 2, 5, 16, 33, 64));

}  // namespace
