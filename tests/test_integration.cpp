// Cross-module integration tests: identities that hold only when several
// subsystems compose correctly (tape x LU, RBF-FD x global collocation,
// dual-derived kernels x solvers, discrete-adjoint equivalence).
#include <gtest/gtest.h>

#include <cmath>

#include "testing_common.hpp"
#include "autodiff/ops.hpp"
#include "control/laplace_problem.hpp"
#include "la/blas.hpp"
#include "pde/channel_flow.hpp"
#include "pde/laplace.hpp"
#include "rbf/interpolation.hpp"
#include "rbf/rbffd.hpp"
#include "util/rng.hpp"

namespace {

using updec::ad::Tape;
using updec::ad::Var;
using updec::ad::VarVec;
using updec::la::Vector;

TEST(Integration, TapeGradientEqualsHandBuiltDiscreteAdjoint) {
  // For the (linear) Laplace control problem the DP gradient has a closed
  // form: g = S^T A^{-T} F^T W r, with S the control scatter, F the flux
  // rows, W the quadrature and r = 2 (flux - target). Building that chain
  // by hand from LU transpose-solves must reproduce the tape's answer --
  // i.e. reverse-mode AD *is* the discrete adjoint method.
  const updec::rbf::PolyharmonicSpline kernel(3);
  const updec::pde::LaplaceSolver solver(12, kernel);
  Vector control(solver.num_control(), 0.0);
  control[3] = 0.25;

  // Tape gradient.
  Tape tape;
  const VarVec c = updec::ad::make_variables(tape, control);
  const VarVec coeffs = solver.solve(tape, c);
  const VarVec flux = solver.flux_top(coeffs);
  Var j = tape.constant(0.0);
  const auto& w = solver.quadrature_weights();
  const auto& xs = solver.top_x();
  for (std::size_t i = 0; i < flux.size(); ++i) {
    const Var d = flux[i] - updec::pde::LaplaceSolver::target_flux(xs[i]);
    j = j + w[i] * (d * d);
  }
  tape.backward(j);
  const Vector g_tape = updec::ad::adjoints(c);

  // Hand-built discrete adjoint.
  const Vector coeffs_v = solver.solve(control);
  const Vector flux_v = solver.flux_top(coeffs_v);
  Vector r(flux_v.size());
  for (std::size_t i = 0; i < r.size(); ++i)
    r[i] = 2.0 * w[i] *
           (flux_v[i] - updec::pde::LaplaceSolver::target_flux(xs[i]));
  const Vector ft_r = updec::la::matvec_t(solver.flux_matrix(), r);
  const Vector lambda = solver.collocation().lu().solve_transpose(ft_r);
  Vector g_hand(solver.num_control(), 0.0);
  const auto& top = solver.top_nodes();
  for (std::size_t i = 0; i < top.size(); ++i)
    g_hand[solver.control_index(i)] += lambda[top[i]];

  ASSERT_EQ(g_tape.size(), g_hand.size());
  for (std::size_t i = 0; i < g_tape.size(); ++i)
    EXPECT_NEAR(g_tape[i], g_hand[i], 1e-9 * (1.0 + std::abs(g_hand[i])));
}

TEST(Integration, RbffdMatchesGlobalInterpolantDerivatives) {
  // Local RBF-FD derivatives and derivatives of the global interpolant are
  // different discretisations of the same operator; on a smooth field they
  // must agree to discretisation accuracy.
  const updec::pc::PointCloud cloud = updec::pc::unit_square_grid(16, 16);
  const updec::rbf::PolyharmonicSpline kernel(3);
  Vector f(cloud.size());
  for (std::size_t i = 0; i < cloud.size(); ++i) {
    const auto p = cloud.node(i).pos;
    f[i] = std::sin(2.0 * p.x) * std::cos(p.y);
  }
  const updec::rbf::RbffdOperators ops(cloud, kernel);
  const Vector fx_local = ops.dx().apply(f);

  const updec::rbf::RbfInterpolant interp(cloud, kernel, 1, f);
  double max_diff = 0.0;
  for (std::size_t i = 0; i < cloud.num_internal(); i += 9) {
    const double fx_global =
        interp.apply(updec::rbf::LinearOp::d_dx(), cloud.node(i).pos);
    max_diff = std::max(max_diff, std::abs(fx_local[i] - fx_global));
  }
  EXPECT_LT(max_diff, 0.05);
}

TEST(Integration, DualDerivedKernelSolvesThePdeIdentically) {
  // A user-defined r^3 via forward-mode AD must produce the same Laplace
  // solution as the hand-coded polyharmonic spline.
  const updec::pc::PointCloud cloud = updec::pc::unit_square_grid(10, 10);
  const updec::rbf::PolyharmonicSpline analytic(3);
  const updec::rbf::DualDerivedKernel derived(
      "phs3-ad", [](auto r) { return r * r * r; });
  const auto solve_with = [&](const updec::rbf::Kernel& kernel) {
    const updec::rbf::GlobalCollocation colloc(
        cloud, kernel, 1, updec::rbf::LinearOp::laplacian());
    const Vector rhs = colloc.assemble_rhs(
        [](const updec::pc::Node&) { return 0.0; },
        [](const updec::pc::Node& n) { return n.pos.x + 2.0 * n.pos.y; });
    return colloc.evaluate_at_nodes(colloc.solve(rhs),
                                    updec::rbf::LinearOp::identity());
  };
  const Vector u1 = solve_with(analytic);
  const Vector u2 = solve_with(derived);
  for (std::size_t i = 0; i < u1.size(); i += 7)
    EXPECT_NEAR(u1[i], u2[i], 1e-8);
}

TEST(Integration, TapeReuseIsDeterministic) {
  // Clearing and re-recording the channel rollout on the same tape must
  // reproduce values and gradients bit-for-bit (no stale state).
  updec::pc::ChannelSpec spec;
  spec.target_nodes = 280;
  const updec::pc::PointCloud cloud = updec::pc::channel_cloud(spec);
  const updec::rbf::PolyharmonicSpline kernel(3);
  updec::pde::ChannelFlowConfig config;
  config.reynolds = 20.0;
  config.refinements = 1;
  config.steps_per_refinement = 20;
  const updec::pde::ChannelFlowSolver solver(cloud, kernel, config, spec);
  const Vector inflow = solver.parabolic_inflow();

  Tape tape;
  Vector g1, g2;
  double j1 = 0.0, j2 = 0.0;
  for (int round = 0; round < 2; ++round) {
    tape.clear();
    const VarVec c = updec::ad::make_variables(tape, inflow);
    const updec::pde::FlowAd flow = solver.solve(tape, c);
    Var j = updec::ad::dot(flow.u, flow.u);
    tape.backward(j);
    if (round == 0) {
      j1 = j.value();
      g1 = updec::ad::adjoints(c);
    } else {
      j2 = j.value();
      g2 = updec::ad::adjoints(c);
    }
  }
  EXPECT_DOUBLE_EQ(j1, j2);
  for (std::size_t i = 0; i < g1.size(); ++i) EXPECT_DOUBLE_EQ(g1[i], g2[i]);
}

TEST(Integration, ProblemCostMatchesStrategyCostEverywhere) {
  // ControlProblem::cost and every strategy's reported value must agree on
  // random controls (one forward-solve semantics across the module).
  const updec::rbf::PolyharmonicSpline kernel(3);
  auto problem =
      std::make_shared<updec::control::LaplaceControlProblem>(12, kernel);
  auto dp = updec::control::make_laplace_dp(problem);
  auto dal = updec::control::make_laplace_dal(problem);
  updec::Rng rng = updec::testing_support::test_rng(17);
  for (int trial = 0; trial < 5; ++trial) {
    Vector c(problem->control_size());
    for (auto& v : c) v = rng.uniform(-0.3, 0.3);
    const double j_ref = problem->cost(c);
    Vector g;
    EXPECT_NEAR(dp->value_and_gradient(c, g), j_ref, 1e-12);
    EXPECT_NEAR(dal->value_and_gradient(c, g), j_ref, 1e-12);
  }
}

// Property sweep: the channel solver stays finite and channel-like across
// cloud realizations (the stability engineering of DESIGN.md 3b).
class ChannelStability : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChannelStability, SteadySolveIsFiniteAcrossSeeds) {
  updec::pc::ChannelSpec spec;
  spec.target_nodes = 300;
  spec.seed = GetParam();
  const updec::pc::PointCloud cloud = updec::pc::channel_cloud(spec);
  const updec::rbf::PolyharmonicSpline kernel(3);
  updec::pde::ChannelFlowConfig config;
  config.reynolds = 100.0;
  config.refinements = 2;
  config.steps_per_refinement = 200;
  const updec::pde::ChannelFlowSolver solver(cloud, kernel, config, spec);
  const updec::pde::Flow flow = solver.solve(solver.parabolic_inflow());
  for (std::size_t i = 0; i < cloud.size(); ++i) {
    ASSERT_TRUE(std::isfinite(flow.u[i])) << "node " << i;
    ASSERT_TRUE(std::isfinite(flow.v[i])) << "node " << i;
  }
  EXPECT_LT(updec::la::nrm_inf(flow.u), 3.0);
  EXPECT_LT(updec::la::nrm_inf(flow.v), 1.5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChannelStability,
                         ::testing::Values(7, 13, 42, 99, 123));

}  // namespace
