// Tests for src/refine: the adjoint-weighted residual indicator, the
// fixed-fraction refine/coarsen planner (boundary protection, spacing
// guard, node cap, determinism), plan application with old-index mapping,
// cross-cloud field transfer, the incremental stencil rebuild's bitwise
// equivalence with a from-scratch build, and the AdaptiveLoop end to end.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "control/driver.hpp"
#include "pde/laplace.hpp"
#include "rbf/kernels.hpp"
#include "refine/adaptive_loop.hpp"
#include "refine/indicator.hpp"
#include "refine/refiner.hpp"
#include "refine/transfer.hpp"
#include "rom/laplace_rom.hpp"
#include "testing_common.hpp"

namespace {

using updec::la::Vector;
using updec::pc::BoundaryKind;
using updec::pc::PointCloud;
using updec::pc::Vec2;
using updec::rbf::PolyharmonicSpline;
using updec::rbf::RbffdConfig;
using updec::rbf::RbffdOperators;
namespace refine = updec::refine;
namespace rom = updec::rom;

/// One converged-ish (state, adjoint) pair off the DAL strategy, the input
/// the indicator consumes in production.
class PairCapture final : public updec::control::AdjointObserver {
 public:
  void on_adjoint_pair(const Vector& state, const Vector& adjoint) override {
    state_ = state;
    adjoint_ = adjoint;
  }
  Vector state_, adjoint_;
};

struct SolvedProblem {
  std::shared_ptr<rom::LaplaceFdControlProblem> problem;
  Vector control;
  Vector state, adjoint;
};

SolvedProblem solve_small(std::size_t grid_n, std::size_t iterations) {
  static const PolyharmonicSpline kernel(3);
  SolvedProblem out;
  out.problem =
      std::make_shared<rom::LaplaceFdControlProblem>(grid_n, kernel);
  const auto strategy = rom::make_laplace_fd_dal(out.problem);
  PairCapture capture;
  EXPECT_TRUE(strategy->set_adjoint_observer(&capture));
  updec::control::DriverOptions options;
  options.iterations = iterations;
  options.initial_learning_rate = 1e-2;
  updec::control::DriverResult result = updec::control::optimize_from(
      out.problem->initial_control(), *strategy, options);
  EXPECT_FALSE(result.aborted);
  out.control = std::move(result.control);
  out.state = std::move(capture.state_);
  out.adjoint = std::move(capture.adjoint_);
  return out;
}

// ---- indicator -----------------------------------------------------------

TEST(Indicator, ZeroOnBoundaryNonNegativeAndLiveInside) {
  const SolvedProblem s = solve_small(10, 40);
  const PointCloud& cloud = s.problem->solver().cloud();
  const Vector eta = refine::adjoint_weighted_residual(
      s.problem->solver(), s.state, s.adjoint);
  ASSERT_EQ(eta.size(), cloud.size());
  double total = 0.0;
  for (std::size_t i = 0; i < eta.size(); ++i) {
    EXPECT_GE(eta[i], 0.0) << "indicator must be a magnitude, node " << i;
    if (cloud.node(i).kind != BoundaryKind::kInternal) {
      EXPECT_EQ(eta[i], 0.0) << "boundary rows carry BCs, not the PDE";
    }
    total += eta[i];
  }
  EXPECT_GT(total, 0.0) << "a discrete solve has discretisation error";
}

// ---- planner -------------------------------------------------------------

/// Synthetic indicator peaked at the domain centre: deterministic and
/// independent of any solve.
Vector centre_peaked_indicator(const PointCloud& cloud) {
  Vector eta(cloud.size(), 0.0);
  for (std::size_t i = 0; i < cloud.size(); ++i) {
    if (cloud.node(i).kind != BoundaryKind::kInternal) continue;
    const Vec2 p = cloud.node(i).pos;
    const double dx = p.x - 0.5, dy = p.y - 0.5;
    eta[i] = std::exp(-8.0 * (dx * dx + dy * dy));
  }
  return eta;
}

TEST(Planner, HonoursFractionsBoundariesAndGuard) {
  static const PolyharmonicSpline kernel(3);
  const rom::LaplaceFdControlProblem problem(12, kernel);
  const RbffdOperators& ops = problem.solver().operators();
  const PointCloud& cloud = ops.cloud();
  const Vector eta = centre_peaked_indicator(cloud);

  refine::RefineConfig config;
  config.refine_fraction = 0.15;
  config.coarsen_fraction = 0.05;
  const refine::RefinePlan plan = refine::fixed_fraction_plan(ops, eta, config);

  // Enough interior nodes carry a positive indicator for the full fraction.
  std::size_t interior = 0;
  for (std::size_t i = 0; i < cloud.size(); ++i)
    if (cloud.node(i).tag == updec::pc::tags::kInterior) ++interior;
  const auto n_coarsen = static_cast<std::size_t>(
      std::floor(config.coarsen_fraction * static_cast<double>(interior)));
  EXPECT_FALSE(plan.insertions.empty());
  EXPECT_LE(plan.removals.size(), n_coarsen);

  const double h = cloud.mean_spacing();
  for (const updec::pc::Node& node : plan.insertions) {
    EXPECT_EQ(node.kind, BoundaryKind::kInternal);
    // The spacing guard: no insertion may crowd an existing node. Guarded
    // at 0.6 of the LOCAL spacing; on this uniform grid local == mean.
    double nearest = 1e30;
    for (std::size_t i = 0; i < cloud.size(); ++i)
      nearest = std::min(nearest,
                         updec::pc::distance(node.pos, cloud.node(i).pos));
    EXPECT_GE(nearest, 0.59 * h);
  }
  // Pairwise: accepted insertions never crowd each other either.
  for (std::size_t a = 0; a < plan.insertions.size(); ++a)
    for (std::size_t b = a + 1; b < plan.insertions.size(); ++b)
      EXPECT_GE(updec::pc::distance(plan.insertions[a].pos,
                                    plan.insertions[b].pos),
                0.59 * h);

  for (const std::size_t victim : plan.removals) {
    EXPECT_EQ(cloud.node(victim).kind, BoundaryKind::kInternal);
    // Boundary-layer protection: no removed node's stencil touches a wall.
    for (const std::size_t j : ops.stencil(victim))
      EXPECT_EQ(cloud.node(j).kind, BoundaryKind::kInternal)
          << "victim " << victim << " supports boundary row neighbour " << j;
    // Coarsening draws from the BOTTOM of the ranking, never the flag set:
    // everything removed scores below everything the peak flagged.
    EXPECT_LT(eta[victim], 0.5);
  }

  // Deterministic: the identical call yields the identical plan.
  const refine::RefinePlan again =
      refine::fixed_fraction_plan(ops, eta, config);
  ASSERT_EQ(again.insertions.size(), plan.insertions.size());
  ASSERT_EQ(again.removals, plan.removals);
  for (std::size_t i = 0; i < plan.insertions.size(); ++i) {
    EXPECT_EQ(again.insertions[i].pos.x, plan.insertions[i].pos.x);
    EXPECT_EQ(again.insertions[i].pos.y, plan.insertions[i].pos.y);
  }
}

TEST(Planner, MaxNodesCapsGrowth) {
  static const PolyharmonicSpline kernel(3);
  const rom::LaplaceFdControlProblem problem(10, kernel);
  const RbffdOperators& ops = problem.solver().operators();
  const Vector eta = centre_peaked_indicator(ops.cloud());

  refine::RefineConfig config;
  config.refine_fraction = 0.3;
  config.coarsen_fraction = 0.0;
  config.max_nodes = ops.cloud().size() + 7;
  const refine::RefinePlan plan = refine::fixed_fraction_plan(ops, eta, config);
  const std::size_t after =
      ops.cloud().size() - plan.removals.size() + plan.insertions.size();
  EXPECT_LE(after, config.max_nodes);
  EXPECT_FALSE(plan.insertions.empty());
}

TEST(Planner, ZeroIndicatorPlansNothingToRefine) {
  static const PolyharmonicSpline kernel(3);
  const rom::LaplaceFdControlProblem problem(8, kernel);
  const RbffdOperators& ops = problem.solver().operators();
  const Vector eta(ops.cloud().size(), 0.0);
  refine::RefineConfig config;
  config.coarsen_fraction = 0.0;
  const refine::RefinePlan plan = refine::fixed_fraction_plan(ops, eta, config);
  EXPECT_TRUE(plan.empty()) << "nothing stands out, nothing to refine";
}

TEST(Planner, EnvKnobsOverrideDefaultsStrictly) {
  ::setenv("UPDEC_REFINE_FRACTION", "0.25", 1);
  ::setenv("UPDEC_REFINE_CYCLES", "5", 1);
  ::setenv("UPDEC_REFINE_MAX_NODES", "900", 1);
  refine::RefineConfig config = refine::refine_config_from_env();
  EXPECT_DOUBLE_EQ(config.refine_fraction, 0.25);
  EXPECT_EQ(config.cycles, 5u);
  EXPECT_EQ(config.max_nodes, 900u);

  ::setenv("UPDEC_REFINE_FRACTION", "1.5", 1);  // out of range: keep default
  config = refine::refine_config_from_env();
  EXPECT_DOUBLE_EQ(config.refine_fraction, refine::RefineConfig{}.refine_fraction);

  ::unsetenv("UPDEC_REFINE_FRACTION");
  ::unsetenv("UPDEC_REFINE_CYCLES");
  ::unsetenv("UPDEC_REFINE_MAX_NODES");
  config = refine::refine_config_from_env();
  EXPECT_EQ(config.cycles, refine::RefineConfig{}.cycles);
  EXPECT_EQ(config.max_nodes, refine::RefineConfig{}.max_nodes);
}

// ---- apply_plan ----------------------------------------------------------

TEST(ApplyPlan, OldIndexMapsSurvivorsAndMarksInsertions) {
  static const PolyharmonicSpline kernel(3);
  const rom::LaplaceFdControlProblem problem(10, kernel);
  const RbffdOperators& ops = problem.solver().operators();
  const PointCloud& cloud = ops.cloud();
  const refine::RefinePlan plan = refine::fixed_fraction_plan(
      ops, centre_peaked_indicator(cloud), refine::RefineConfig{});
  ASSERT_FALSE(plan.empty());

  std::vector<std::ptrdiff_t> old_index;
  const PointCloud out = refine::apply_plan(cloud, plan, &old_index);
  ASSERT_EQ(out.size(),
            cloud.size() - plan.removals.size() + plan.insertions.size());
  ASSERT_EQ(old_index.size(), out.size());

  const std::set<std::size_t> removed(plan.removals.begin(),
                                      plan.removals.end());
  std::size_t fresh = 0;
  std::set<std::ptrdiff_t> sources;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const std::ptrdiff_t via = old_index[i];
    if (via < 0) {
      ++fresh;
      continue;
    }
    // A survivor maps to its ORIGINAL index: same position bitwise, and
    // never to a removed node. Each source appears exactly once.
    EXPECT_TRUE(sources.insert(via).second);
    EXPECT_EQ(removed.count(static_cast<std::size_t>(via)), 0u);
    EXPECT_EQ(out.node(i).pos.x,
              cloud.node(static_cast<std::size_t>(via)).pos.x);
    EXPECT_EQ(out.node(i).pos.y,
              cloud.node(static_cast<std::size_t>(via)).pos.y);
  }
  EXPECT_EQ(fresh, plan.insertions.size());
  // Boundary layout untouched: same boundary blocks in the same order.
  ASSERT_EQ(out.num_boundary(), cloud.num_boundary());
}

TEST(ApplyPlan, RefusesToTouchBoundaryNodes) {
  static const PolyharmonicSpline kernel(3);
  const rom::LaplaceFdControlProblem problem(8, kernel);
  const PointCloud& cloud = problem.solver().cloud();
  refine::RefinePlan bad_removal;
  bad_removal.removals.push_back(cloud.size() - 1);  // a boundary node
  EXPECT_THROW(refine::apply_plan(cloud, bad_removal), updec::Error);

  refine::RefinePlan bad_insert;
  updec::pc::Node node;
  node.pos = {0.5, 0.5};
  node.kind = BoundaryKind::kDirichlet;
  bad_insert.insertions.push_back(node);
  EXPECT_THROW(refine::apply_plan(cloud, bad_insert), updec::Error);
}

// ---- transfer ------------------------------------------------------------

TEST(Transfer, ExactOnLinearsAndBitwiseOnCoincidentNodes) {
  static const PolyharmonicSpline kernel(3);
  const rom::LaplaceFdControlProblem problem(10, kernel);
  const RbffdOperators& ops = problem.solver().operators();
  const PointCloud& from = ops.cloud();
  const refine::RefinePlan plan = refine::fixed_fraction_plan(
      ops, centre_peaked_indicator(from), refine::RefineConfig{});
  std::vector<std::ptrdiff_t> old_index;
  const PointCloud to = refine::apply_plan(from, plan, &old_index);

  // f is linear: the degree-1 appended basis reproduces it exactly even at
  // genuinely off-centre insertion points.
  Vector values(from.size());
  for (std::size_t i = 0; i < from.size(); ++i)
    values[i] = 0.75 - 2.0 * from.node(i).pos.x + 3.0 * from.node(i).pos.y;
  const Vector moved = refine::transfer_field(from, values, to, kernel);
  ASSERT_EQ(moved.size(), to.size());
  for (std::size_t i = 0; i < to.size(); ++i) {
    const double exact =
        0.75 - 2.0 * to.node(i).pos.x + 3.0 * to.node(i).pos.y;
    EXPECT_NEAR(moved[i], exact, 1e-9) << "node " << i;
    if (old_index[i] >= 0) {
      EXPECT_EQ(moved[i], values[static_cast<std::size_t>(old_index[i])])
          << "coincident nodes must copy bitwise, node " << i;
    }
  }
}

// ---- incremental stencil rebuild -----------------------------------------

TEST(IncrementalRebuild, BitwiseEqualToFromScratchOperators) {
  static const PolyharmonicSpline kernel(3);
  const rom::LaplaceFdControlProblem problem(11, kernel);
  const RbffdOperators& previous = problem.solver().operators();
  const refine::RefinePlan plan = refine::fixed_fraction_plan(
      previous, centre_peaked_indicator(previous.cloud()),
      refine::RefineConfig{});
  ASSERT_FALSE(plan.empty());
  std::vector<std::ptrdiff_t> old_index;
  const PointCloud adapted =
      refine::apply_plan(previous.cloud(), plan, &old_index);

  const RbffdOperators incremental(adapted, previous, old_index);
  const RbffdOperators scratch(adapted, kernel);
  const std::pair<const updec::la::CsrMatrix*, const updec::la::CsrMatrix*>
      pairs[] = {{&incremental.dx(), &scratch.dx()},
                 {&incremental.dy(), &scratch.dy()},
                 {&incremental.laplacian(), &scratch.laplacian()}};
  for (const auto& pair : pairs) {
    const updec::la::CsrMatrix& a = *pair.first;
    const updec::la::CsrMatrix& b = *pair.second;
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.row_ptr(), b.row_ptr());
    ASSERT_EQ(a.col_idx(), b.col_idx());
    ASSERT_EQ(a.values().size(), b.values().size());
    for (std::size_t i = 0; i < a.values().size(); ++i)
      ASSERT_EQ(a.values()[i], b.values()[i]) << "nnz entry " << i;
  }
  // Reuse must actually happen: the adapt step touches a localized region,
  // so most rows far from it copy straight over.
  EXPECT_GT(incremental.rows_reused(), 0u);
  EXPECT_GT(incremental.rows_recomputed(), 0u);
  EXPECT_EQ(incremental.rows_reused() + incremental.rows_recomputed(),
            3 * adapted.size());
  EXPECT_EQ(scratch.rows_reused(), 0u);
}

// ---- adaptive loop end to end --------------------------------------------

TEST(AdaptiveLoop, RunsCyclesPreservesControlLayoutAndStaysFinite) {
  const PolyharmonicSpline kernel(3);
  refine::AdaptiveOptions options;
  options.refine.cycles = 1;
  options.refine.refine_fraction = 0.15;
  options.driver.iterations = 120;  // converged enough for a live indicator
  const refine::AdaptiveResult result =
      refine::AdaptiveLoop(10, kernel, options).run();

  ASSERT_FALSE(result.cycles.empty());
  ASSERT_LE(result.cycles.size(), options.refine.cycles + 1);
  EXPECT_EQ(result.control.size(), result.problem->control_size());
  EXPECT_EQ(result.control.size(),
            rom::LaplaceFdControlProblem(10, kernel).control_size())
      << "adaptation must never change the control DOF layout";
  EXPECT_TRUE(std::isfinite(result.final_cost));
  EXPECT_EQ(result.final_cost, result.cycles.back().cost);

  const refine::CycleReport& first = result.cycles.front();
  EXPECT_EQ(first.nodes, result.problem->solver().cloud().size() -
                             first.inserted + first.removed)
      << "cycle report accounting must match the final cloud";
  EXPECT_GT(first.indicator_total, 0.0);
  if (result.cycles.size() > 1) {
    EXPECT_GT(first.inserted, 0u);
    EXPECT_GT(first.stencil_rows_reused, 0u);
    EXPECT_TRUE(std::isfinite(first.transferred_cost));
  }
}

TEST(AdaptiveLoop, RejectsDegenerateSetups) {
  const PolyharmonicSpline kernel(3);
  EXPECT_THROW(refine::AdaptiveLoop(2, kernel), updec::Error);
  refine::AdaptiveOptions options;
  options.driver.iterations = 0;
  EXPECT_THROW(refine::AdaptiveLoop(10, kernel, options), updec::Error);
}

}  // namespace
