// Tests for global RBF collocation, RBF-FD differentiation matrices and
// scattered-data interpolation: manufactured PDE solutions, polynomial
// reproduction, and convergence behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "testing_common.hpp"
#include "la/blas.hpp"
#include "pointcloud/generators.hpp"
#include "rbf/collocation.hpp"
#include "rbf/interpolation.hpp"
#include "rbf/rbffd.hpp"
#include "util/rng.hpp"

namespace {

using updec::la::Vector;
using updec::pc::BoundaryKind;
using updec::pc::Node;
using updec::pc::PointCloud;
using updec::pc::Vec2;
using updec::rbf::GlobalCollocation;
using updec::rbf::LinearOp;
using updec::rbf::PolyharmonicSpline;
using updec::rbf::RbffdConfig;
using updec::rbf::RbffdOperators;

constexpr double kPi = std::numbers::pi;

TEST(GlobalCollocation, SolvesLaplaceWithHarmonicSolution) {
  // u = exp(x) sin(y) is harmonic; Dirichlet data from the exact solution.
  const PointCloud cloud = updec::pc::unit_square_grid(14, 14);
  const PolyharmonicSpline phs(3);
  const GlobalCollocation colloc(cloud, phs, 1, LinearOp::laplacian());
  const auto exact = [](const Vec2& p) { return std::exp(p.x) * std::sin(p.y); };
  const Vector rhs = colloc.assemble_rhs(
      [](const Node&) { return 0.0; },
      [&](const Node& n) { return exact(n.pos); });
  const Vector coeffs = colloc.solve(rhs);
  const Vector u = colloc.evaluate_at_nodes(coeffs, LinearOp::identity());
  double max_err = 0.0;
  for (std::size_t i = 0; i < cloud.size(); ++i)
    max_err = std::max(max_err, std::abs(u[i] - exact(cloud.node(i).pos)));
  EXPECT_LT(max_err, 3e-3);  // PHS-r^3 + degree-1 on a 14x14 grid
}

TEST(GlobalCollocation, SolvesPoissonWithManufacturedSolution) {
  // u = sin(pi x) sin(pi y): Lap u = -2 pi^2 u; homogeneous Dirichlet data.
  const PointCloud cloud = updec::pc::unit_square_grid(16, 16);
  const PolyharmonicSpline phs(3);
  const GlobalCollocation colloc(cloud, phs, 1, LinearOp::laplacian());
  const auto exact = [](const Vec2& p) {
    return std::sin(kPi * p.x) * std::sin(kPi * p.y);
  };
  const Vector rhs = colloc.assemble_rhs(
      [&](const Node& n) { return -2.0 * kPi * kPi * exact(n.pos); },
      [](const Node&) { return 0.0; });
  const Vector coeffs = colloc.solve(rhs);
  const Vector u = colloc.evaluate_at_nodes(coeffs, LinearOp::identity());
  double max_err = 0.0;
  for (std::size_t i = 0; i < cloud.size(); ++i)
    max_err = std::max(max_err, std::abs(u[i] - exact(cloud.node(i).pos)));
  EXPECT_LT(max_err, 5e-3);
}

TEST(GlobalCollocation, HandlesNeumannBoundary) {
  // u = x^2 - y^2 (harmonic). Right wall (x=1) Neumann: du/dn = du/dx = 2x.
  std::vector<Node> nodes;
  const std::size_t n = 12;
  for (std::size_t j = 0; j <= n; ++j) {
    for (std::size_t i = 0; i <= n; ++i) {
      Node node;
      node.pos = {static_cast<double>(i) / n, static_cast<double>(j) / n};
      const bool right = (i == n && j > 0 && j < n);
      if (i == 0 || j == 0 || j == n) {
        node.kind = BoundaryKind::kDirichlet;
      } else if (right) {
        node.kind = BoundaryKind::kNeumann;
        node.normal = {1.0, 0.0};
      }
      nodes.push_back(node);
    }
  }
  const PointCloud cloud(std::move(nodes));
  const PolyharmonicSpline phs(3);
  const GlobalCollocation colloc(cloud, phs, 2, LinearOp::laplacian());
  const auto exact = [](const Vec2& p) { return p.x * p.x - p.y * p.y; };
  const Vector rhs = colloc.assemble_rhs(
      [](const Node&) { return 0.0; },
      [&](const Node& node) {
        if (node.kind == BoundaryKind::kNeumann) return 2.0 * node.pos.x;
        return exact(node.pos);
      });
  const Vector u =
      colloc.evaluate_at_nodes(colloc.solve(rhs), LinearOp::identity());
  double max_err = 0.0;
  for (std::size_t i = 0; i < cloud.size(); ++i)
    max_err = std::max(max_err, std::abs(u[i] - exact(cloud.node(i).pos)));
  // Quadratic solution with degree-2 augmentation: near machine exactness.
  EXPECT_LT(max_err, 1e-7);
}

TEST(GlobalCollocation, HandlesRobinBoundary) {
  // u = x + y; on the right wall enforce du/dn + beta u = 1 + beta(1 + y).
  std::vector<Node> nodes;
  const std::size_t n = 10;
  const double beta = 2.0;
  for (std::size_t j = 0; j <= n; ++j) {
    for (std::size_t i = 0; i <= n; ++i) {
      Node node;
      node.pos = {static_cast<double>(i) / n, static_cast<double>(j) / n};
      if (i == n && j > 0 && j < n) {
        node.kind = BoundaryKind::kRobin;
        node.normal = {1.0, 0.0};
      } else if (i == 0 || j == 0 || j == n) {
        node.kind = BoundaryKind::kDirichlet;
      }
      nodes.push_back(node);
    }
  }
  const PointCloud cloud(std::move(nodes));
  EXPECT_GT(cloud.num_robin(), 0u);
  const PolyharmonicSpline phs(3);
  const GlobalCollocation colloc(cloud, phs, 1, LinearOp::laplacian(), beta);
  const auto exact = [](const Vec2& p) { return p.x + p.y; };
  const Vector rhs = colloc.assemble_rhs(
      [](const Node&) { return 0.0; },
      [&](const Node& node) {
        if (node.kind == BoundaryKind::kRobin)
          return 1.0 + beta * (1.0 + node.pos.y);
        return exact(node.pos);
      });
  const Vector u =
      colloc.evaluate_at_nodes(colloc.solve(rhs), LinearOp::identity());
  double max_err = 0.0;
  for (std::size_t i = 0; i < cloud.size(); ++i)
    max_err = std::max(max_err, std::abs(u[i] - exact(cloud.node(i).pos)));
  EXPECT_LT(max_err, 1e-8);  // linear solution, degree-1 augmentation
}

TEST(GlobalCollocation, DerivativeEvaluationMatchesExact) {
  const PointCloud cloud = updec::pc::unit_square_grid(14, 14);
  const PolyharmonicSpline phs(3);
  const GlobalCollocation colloc(cloud, phs, 1, LinearOp::laplacian());
  const auto exact = [](const Vec2& p) { return std::exp(p.x) * std::sin(p.y); };
  const Vector rhs = colloc.assemble_rhs(
      [](const Node&) { return 0.0; },
      [&](const Node& n) { return exact(n.pos); });
  const Vector coeffs = colloc.solve(rhs);
  // du/dy at interior evaluation points.
  const std::vector<Vec2> pts{{0.5, 0.5}, {0.3, 0.8}, {0.7, 0.2}};
  const updec::la::Matrix e = colloc.evaluation_matrix(pts, LinearOp::d_dy());
  const Vector uy = updec::la::matvec(e, coeffs);
  for (std::size_t p = 0; p < pts.size(); ++p) {
    const double exact_uy = std::exp(pts[p].x) * std::cos(pts[p].y);
    EXPECT_NEAR(uy[p], exact_uy, 5e-3);
  }
}

TEST(GlobalCollocation, ConditionEstimateIsLarge) {
  // Global PHS collocation matrices are famously ill-conditioned; the
  // estimate should reflect that (and still solve accurately).
  const PointCloud cloud = updec::pc::unit_square_grid(10, 10);
  const PolyharmonicSpline phs(3);
  const GlobalCollocation colloc(cloud, phs, 1, LinearOp::laplacian());
  EXPECT_GT(colloc.condition_estimate(), 1e3);
}

TEST(GlobalCollocation, RejectsTinyClouds) {
  std::vector<Node> nodes(2);
  nodes[0].pos = {0.0, 0.0};
  nodes[1].pos = {1.0, 0.0};
  const PointCloud cloud(std::move(nodes));
  const PolyharmonicSpline phs(3);
  EXPECT_THROW(GlobalCollocation(cloud, phs, 1, LinearOp::laplacian()),
               updec::Error);
}

TEST(Rbffd, ReproducesPolynomialDerivativesExactly) {
  const PointCloud cloud = updec::pc::unit_square_scattered(250, 20, 1);
  const PolyharmonicSpline phs(3);
  RbffdConfig config;
  config.poly_degree = 2;
  config.stencil_size = 15;
  const RbffdOperators ops(cloud, phs, config);
  // u = 1 + 2x - y + x^2 + 3xy: du/dx = 2 + 2x + 3y, Lap u = 2.
  Vector u(cloud.size()), ux_exact(cloud.size());
  for (std::size_t i = 0; i < cloud.size(); ++i) {
    const Vec2 p = cloud.node(i).pos;
    u[i] = 1.0 + 2.0 * p.x - p.y + p.x * p.x + 3.0 * p.x * p.y;
    ux_exact[i] = 2.0 + 2.0 * p.x + 3.0 * p.y;
  }
  const Vector ux = ops.dx().apply(u);
  const Vector lap = ops.laplacian().apply(u);
  for (std::size_t i = 0; i < cloud.size(); ++i) {
    EXPECT_NEAR(ux[i], ux_exact[i], 1e-7);
    EXPECT_NEAR(lap[i], 2.0, 1e-6);
  }
}

TEST(Rbffd, ApproximatesSmoothFunctionDerivatives) {
  const PointCloud cloud = updec::pc::unit_square_grid(25, 25);
  const PolyharmonicSpline phs(3);
  const RbffdOperators ops(cloud, phs);
  Vector u(cloud.size());
  for (std::size_t i = 0; i < cloud.size(); ++i) {
    const Vec2 p = cloud.node(i).pos;
    u[i] = std::sin(kPi * p.x) * std::cos(kPi * p.y);
  }
  const Vector uy = ops.dy().apply(u);
  // Check interior accuracy only (one-sided stencils at the boundary are
  // noisier -- the Runge phenomenon the paper discusses).
  double max_err = 0.0;
  for (std::size_t i = 0; i < cloud.num_internal(); ++i) {
    const Vec2 p = cloud.node(i).pos;
    const double exact = -kPi * std::sin(kPi * p.x) * std::sin(kPi * p.y);
    max_err = std::max(max_err, std::abs(uy[i] - exact));
  }
  EXPECT_LT(max_err, 0.05);
}

TEST(Rbffd, StencilSizeValidation) {
  const PointCloud cloud = updec::pc::unit_square_grid(6, 6);
  const PolyharmonicSpline phs(3);
  RbffdConfig tiny;
  tiny.stencil_size = 4;  // < 2 * M = 6 for degree 1
  EXPECT_THROW(RbffdOperators(cloud, phs, tiny), updec::Error);
  RbffdConfig huge;
  huge.stencil_size = 100;
  EXPECT_THROW(RbffdOperators(cloud, phs, huge), updec::Error);
}

TEST(Rbffd, DegenerateStencilThrowsCleanlyAcrossOmpThreads) {
  // Regression: the per-row saddle solves run inside an OpenMP parallel
  // region, and the degenerate-stencil UPDEC_REQUIRE (thrown for the
  // zero-radius stencils a duplicated node produces) used to escape the
  // region and std::terminate the process. The loop must park the first
  // exception and rethrow it as a catchable updec::Error after joining.
  std::vector<Node> nodes;
  for (int i = 0; i < 13; ++i) {
    Node node;
    node.pos = {0.5, 0.5};  // 13 coincident nodes: stencil radius == 0
    nodes.push_back(node);
  }
  updec::Rng rng = updec::testing_support::test_rng(41);
  for (int i = 0; i < 12; ++i) {
    Node node;
    node.pos = {rng.uniform(), rng.uniform()};
    nodes.push_back(node);
  }
  const PointCloud cloud(std::move(nodes));
  const PolyharmonicSpline phs(3);
  const RbffdOperators ops(cloud, phs);
  EXPECT_THROW(ops.laplacian(), updec::Error);
  EXPECT_THROW(ops.dx(), updec::Error);
}

TEST(Rbffd, MatrixStructure) {
  const PointCloud cloud = updec::pc::unit_square_grid(9, 9);
  const PolyharmonicSpline phs(3);
  RbffdConfig config;
  const RbffdOperators ops(cloud, phs, config);
  const auto& dx = ops.dx();
  EXPECT_EQ(dx.rows(), cloud.size());
  EXPECT_EQ(dx.nnz(), cloud.size() * config.stencil_size);
  // Derivative of a constant field is zero (weights sum to 0 per row).
  const Vector ones(cloud.size(), 1.0);
  const Vector d = dx.apply(ones);
  for (std::size_t i = 0; i < d.size(); ++i) EXPECT_NEAR(d[i], 0.0, 1e-9);
}

TEST(Interpolation, ReproducesDataAtNodes) {
  const PointCloud cloud = updec::pc::unit_square_scattered(80, 12, 2);
  const PolyharmonicSpline phs(3);
  updec::Rng rng = updec::testing_support::test_rng(3);
  Vector data(cloud.size());
  for (auto& v : data) v = rng.normal();
  const updec::rbf::RbfInterpolant interp(cloud, phs, 1, data);
  for (std::size_t i = 0; i < cloud.size(); i += 7)
    EXPECT_NEAR(interp(cloud.node(i).pos), data[i], 1e-7);
}

TEST(Interpolation, ExactForLinearFields) {
  const PointCloud cloud = updec::pc::unit_square_scattered(60, 10, 4);
  const PolyharmonicSpline phs(3);
  Vector data(cloud.size());
  for (std::size_t i = 0; i < cloud.size(); ++i) {
    const Vec2 p = cloud.node(i).pos;
    data[i] = 3.0 - 2.0 * p.x + 0.5 * p.y;
  }
  const updec::rbf::RbfInterpolant interp(cloud, phs, 1, data);
  // Off-node evaluation is exact for degree <= augmentation degree.
  EXPECT_NEAR(interp({0.123, 0.456}), 3.0 - 2.0 * 0.123 + 0.5 * 0.456, 1e-8);
  // Exact derivatives too.
  EXPECT_NEAR(interp.apply(LinearOp::d_dx(), {0.4, 0.3}), -2.0, 1e-7);
  EXPECT_NEAR(interp.apply(LinearOp::d_dy(), {0.4, 0.3}), 0.5, 1e-7);
}

TEST(Interpolation, ApproximatesSmoothFunction) {
  const PointCloud cloud = updec::pc::unit_square_scattered(300, 24, 5);
  const PolyharmonicSpline phs(3);
  Vector data(cloud.size());
  for (std::size_t i = 0; i < cloud.size(); ++i) {
    const Vec2 p = cloud.node(i).pos;
    data[i] = std::sin(2 * p.x) * std::exp(p.y);
  }
  const updec::rbf::RbfInterpolant interp(cloud, phs, 1, data);
  updec::Rng rng = updec::testing_support::test_rng(6);
  for (int t = 0; t < 20; ++t) {
    const Vec2 p{rng.uniform(0.1, 0.9), rng.uniform(0.1, 0.9)};
    EXPECT_NEAR(interp(p), std::sin(2 * p.x) * std::exp(p.y), 2e-3);
  }
}

// Property: collocation converges as the grid is refined (errors shrink
// monotonically within tolerance across resolutions).
class CollocationConvergence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CollocationConvergence, ErrorBelowResolutionBudget) {
  const std::size_t n = GetParam();
  const PointCloud cloud = updec::pc::unit_square_grid(n, n);
  const PolyharmonicSpline phs(3);
  const GlobalCollocation colloc(cloud, phs, 1, LinearOp::laplacian());
  const auto exact = [](const Vec2& p) {
    return std::sinh(p.y) * std::sin(p.x) / std::sinh(1.0);
  };
  const Vector rhs = colloc.assemble_rhs(
      [](const Node&) { return 0.0; },
      [&](const Node& node) { return exact(node.pos); });
  const Vector u =
      colloc.evaluate_at_nodes(colloc.solve(rhs), LinearOp::identity());
  double max_err = 0.0;
  for (std::size_t i = 0; i < cloud.size(); ++i)
    max_err = std::max(max_err, std::abs(u[i] - exact(cloud.node(i).pos)));
  // Generous budget h^2-ish: coarse grids pass loosely, fine ones tightly.
  const double h = 1.0 / static_cast<double>(n);
  EXPECT_LT(max_err, 0.5 * h * h + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Resolutions, CollocationConvergence,
                         ::testing::Values(8, 12, 16, 20));

}  // namespace
