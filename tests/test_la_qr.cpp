// Dedicated unit tests for la::QrFactorization (Householder QR): structural
// invariants (orthogonality, residual orthogonal to the column space),
// agreement with LU on square SPD systems, the rank-deficiency contract, and
// the diagonal-ratio diagnostic. Randomized inputs come from the shared
// check:: generators with logged seeds (see testing_common.hpp).

#include <gtest/gtest.h>

#include <cmath>

#include "la/cholesky.hpp"
#include "la/lu.hpp"
#include "la/qr.hpp"
#include "testing_common.hpp"
#include "util/error.hpp"

namespace {

using updec::la::Matrix;
using updec::la::QrFactorization;
using updec::la::Vector;
namespace ts = updec::testing_support;

double norm2(const Vector& v) {
  double s = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) s += v[i] * v[i];
  return std::sqrt(s);
}

Vector matvec(const Matrix& a, const Vector& x) {
  Vector y(a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) s += a(i, j) * x[j];
    y[i] = s;
  }
  return y;
}

Vector matvec_t(const Matrix& a, const Vector& x) {
  Vector y(a.cols());
  for (std::size_t j = 0; j < a.cols(); ++j) {
    double s = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) s += a(i, j) * x[i];
    y[j] = s;
  }
  return y;
}

TEST(QrFactorization, ApplyQtPreservesNorm) {
  updec::Rng rng = ts::test_rng(0x9a01u);
  for (int rep = 0; rep < 5; ++rep) {
    const std::size_t m = 8 + rng.uniform_index(16);
    const std::size_t n = 2 + rng.uniform_index(m - 1);
    const QrFactorization qr(updec::check::random_matrix(rng, m, n));
    const Vector b = updec::check::random_vector(rng, m);
    // Q is orthogonal, so ||Q^T b|| == ||b||.
    EXPECT_NEAR(norm2(qr.apply_qt(b)), norm2(b), 1e-10 * (1.0 + norm2(b)));
  }
}

TEST(QrFactorization, SquareSolveRoundTrip) {
  updec::Rng rng = ts::test_rng(0x9a02u);
  for (int rep = 0; rep < 5; ++rep) {
    const std::size_t n = 3 + rng.uniform_index(20);
    const Matrix a = updec::check::random_diag_dominant(rng, n);
    const Vector x_true = updec::check::random_vector(rng, n);
    const Vector b = matvec(a, x_true);
    const Vector x = QrFactorization(a).solve_least_squares(b);
    EXPECT_TRUE(ts::vectors_near(x, x_true, 1e-9));
    EXPECT_LT(ts::relative_residual(a, x, b), 1e-10);
  }
}

TEST(QrFactorization, AgreesWithLuOnRandomSpd) {
  updec::Rng rng = ts::test_rng(0x9a03u);
  for (int rep = 0; rep < 5; ++rep) {
    const std::size_t n = 2 + rng.uniform_index(30);
    const Matrix a = updec::check::random_spd(rng, n);
    const Vector b = updec::check::random_vector(rng, n);
    const Vector x_qr = QrFactorization(a).solve_least_squares(b);
    const Vector x_lu = updec::la::solve(a, b);
    EXPECT_TRUE(ts::vectors_near(x_qr, x_lu, 1e-8))
        << "QR and LU disagree on an SPD system of size " << n;
  }
}

TEST(QrFactorization, LeastSquaresResidualOrthogonalToColumnSpace) {
  updec::Rng rng = ts::test_rng(0x9a04u);
  for (int rep = 0; rep < 5; ++rep) {
    const std::size_t m = 10 + rng.uniform_index(20);
    const std::size_t n = 2 + rng.uniform_index(6);
    const Matrix a = updec::check::random_matrix(rng, m, n);
    const Vector b = updec::check::random_vector(rng, m);
    const Vector x = QrFactorization(a).solve_least_squares(b);
    // The least-squares minimiser satisfies A^T (A x - b) = 0.
    Vector r = matvec(a, x);
    for (std::size_t i = 0; i < m; ++i) r[i] -= b[i];
    const Vector g = matvec_t(a, r);
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_NEAR(g[j], 0.0, 1e-8 * (1.0 + norm2(b)));
  }
}

TEST(QrFactorization, MatchesNormalEquationsOnTallSystem) {
  updec::Rng rng = ts::test_rng(0x9a05u);
  const std::size_t m = 24, n = 6;
  const Matrix a = updec::check::random_matrix(rng, m, n);
  const Vector b = updec::check::random_vector(rng, m);
  const Vector x_qr = QrFactorization(a).solve_least_squares(b);

  // Reference: solve A^T A x = A^T b by Cholesky.
  Matrix ata(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < m; ++k) s += a(k, i) * a(k, j);
      ata(i, j) = s;
    }
  const Vector x_ne =
      updec::la::CholeskyFactorization(ata).solve(matvec_t(a, b));
  EXPECT_TRUE(ts::vectors_near(x_qr, x_ne, 1e-7));
}

TEST(QrFactorization, RankDeficientSystemThrows) {
  // An exactly zero column makes the Householder reflector vanish, so the
  // corresponding R diagonal is exactly zero and back-substitution must
  // refuse rather than divide.
  updec::Rng rng = ts::test_rng(0x9a06u);
  Matrix a = updec::check::random_matrix(rng, 12, 4);
  for (std::size_t i = 0; i < a.rows(); ++i) a(i, 2) = 0.0;
  const QrFactorization qr(a);
  const Vector b = updec::check::random_vector(rng, 12);
  EXPECT_THROW((void)qr.solve_least_squares(b), updec::Error);
  EXPECT_EQ(qr.diagonal_ratio(), 0.0);
}

TEST(QrFactorization, DiagonalRatioFlagsNearDependence) {
  updec::Rng rng = ts::test_rng(0x9a07u);
  Matrix a = updec::check::random_matrix(rng, 16, 4);
  const double healthy = QrFactorization(a).diagonal_ratio();
  // Make column 3 a 1e-12 perturbation of column 0: nearly dependent.
  for (std::size_t i = 0; i < a.rows(); ++i)
    a(i, 3) = a(i, 0) + 1e-12 * a(i, 1);
  const double degenerate = QrFactorization(a).diagonal_ratio();
  EXPECT_GT(healthy, 1e-4);
  EXPECT_LT(degenerate, 1e-8);
}

TEST(QrFactorization, WideMatrixAndEmptyFactorisationAreRejected) {
  EXPECT_THROW(QrFactorization(Matrix(3, 5)), updec::Error);
  const QrFactorization empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_THROW((void)empty.solve_least_squares(Vector(3)), updec::Error);
}

}  // namespace
