// Tests for the Laplace control substrate: analytic reference solution,
// factor-once solves, and the differentiable (tape) path.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "la/blas.hpp"
#include "pde/laplace.hpp"

namespace {

using updec::ad::Tape;
using updec::ad::Var;
using updec::ad::VarVec;
using updec::la::Vector;
using updec::pde::LaplaceSolver;

constexpr double kTwoPi = 2.0 * std::numbers::pi;

TEST(LaplaceAnalytic, StateTracesMatchBoundaryData) {
  // u*(x, 0) = sin(2 pi x); u*(0, y) = u*(1, y) ~ the cos-term trace.
  for (const double x : {0.1, 0.35, 0.8}) {
    EXPECT_NEAR(LaplaceSolver::analytic_state(x, 0.0), std::sin(kTwoPi * x),
                1e-12);
    // Control trace: c*(x) = u*(x, 1).
    EXPECT_NEAR(LaplaceSolver::analytic_state(x, 1.0),
                LaplaceSolver::analytic_control(x), 1e-12);
  }
}

TEST(LaplaceAnalytic, StateIsHarmonic) {
  const double h = 1e-4;
  for (const double x : {0.3, 0.6}) {
    for (const double y : {0.4, 0.7}) {
      const auto u = [](double px, double py) {
        return LaplaceSolver::analytic_state(px, py);
      };
      const double lap = (u(x + h, y) + u(x - h, y) + u(x, y + h) +
                          u(x, y - h) - 4 * u(x, y)) /
                         (h * h);
      EXPECT_NEAR(lap, 0.0, 1e-3);
    }
  }
}

TEST(LaplaceAnalytic, FluxAtTopEqualsTarget) {
  const double h = 1e-6;
  for (const double x : {0.2, 0.5, 0.9}) {
    const double uy = (LaplaceSolver::analytic_state(x, 1.0) -
                       LaplaceSolver::analytic_state(x, 1.0 - h)) /
                      h;
    EXPECT_NEAR(uy, LaplaceSolver::target_flux(x), 1e-4);
  }
}

class LaplaceSolverTest : public ::testing::Test {
 protected:
  LaplaceSolverTest() : kernel_(3), solver_(20, kernel_) {}
  updec::rbf::PolyharmonicSpline kernel_;
  LaplaceSolver solver_;
};

TEST_F(LaplaceSolverTest, ControlNodesOrderedByX) {
  const auto& xs = solver_.top_x();
  ASSERT_EQ(xs.size(), 21u);
  for (std::size_t i = 1; i < xs.size(); ++i) EXPECT_GT(xs[i], xs[i - 1]);
  EXPECT_DOUBLE_EQ(xs.front(), 0.0);
  EXPECT_DOUBLE_EQ(xs.back(), 1.0);
}

TEST_F(LaplaceSolverTest, QuadratureWeightsSumToOne) {
  double total = 0.0;
  for (const double w : solver_.quadrature_weights().std()) total += w;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST_F(LaplaceSolverTest, AnalyticControlYieldsTargetFlux) {
  Vector control(solver_.num_control());
  for (std::size_t i = 0; i < control.size(); ++i)
    control[i] = LaplaceSolver::analytic_control(solver_.top_x()[i]);
  const Vector coeffs = solver_.solve(control);
  const Vector flux = solver_.flux_top(coeffs);
  // Discretised flux should track cos(2 pi x); boundary flux on a 20x20
  // PHS-r^3 grid carries O(0.3) Runge-phenomenon noise (the very error the
  // paper blames for DAL's troubles), so the check is shape-level here and
  // resolution-level in the convergence test below.
  double err = 0.0;
  for (std::size_t i = flux.size() / 4; i < 3 * flux.size() / 4; ++i)
    err = std::max(err, std::abs(flux[i] -
                                 LaplaceSolver::target_flux(solver_.top_x()[i])));
  EXPECT_LT(err, 0.45);
}

TEST_F(LaplaceSolverTest, StateMatchesAnalyticUnderAnalyticControl) {
  Vector control(solver_.num_control());
  for (std::size_t i = 0; i < control.size(); ++i)
    control[i] = LaplaceSolver::analytic_control(solver_.top_x()[i]);
  const Vector u = solver_.state_at_nodes(solver_.solve(control));
  double max_err = 0.0;
  for (std::size_t i = 0; i < solver_.cloud().size(); ++i) {
    const auto p = solver_.cloud().node(i).pos;
    max_err = std::max(max_err,
                       std::abs(u[i] - LaplaceSolver::analytic_state(p.x, p.y)));
  }
  EXPECT_LT(max_err, 0.04);  // 20x20 grid; drops to ~5e-3 at 40x40
}

TEST(LaplaceConvergence, StateErrorShrinksWithResolution) {
  const updec::rbf::PolyharmonicSpline kernel(3);
  double previous = 1e9;
  for (const std::size_t grid : {12u, 20u, 32u}) {
    const LaplaceSolver solver(grid, kernel);
    Vector control(solver.num_control());
    for (std::size_t i = 0; i < control.size(); ++i)
      control[i] = LaplaceSolver::analytic_control(solver.top_x()[i]);
    const Vector u = solver.state_at_nodes(solver.solve(control));
    double max_err = 0.0;
    for (std::size_t i = 0; i < solver.cloud().size(); ++i) {
      const auto p = solver.cloud().node(i).pos;
      max_err = std::max(
          max_err, std::abs(u[i] - LaplaceSolver::analytic_state(p.x, p.y)));
    }
    EXPECT_LT(max_err, previous);
    previous = max_err;
  }
  EXPECT_LT(previous, 0.01);
}

TEST_F(LaplaceSolverTest, TapeSolveMatchesPlainSolve) {
  Vector control(solver_.num_control(), 0.0);
  for (std::size_t i = 0; i < control.size(); ++i)
    control[i] = 0.3 * std::sin(kTwoPi * solver_.top_x()[i]);
  const Vector coeffs_plain = solver_.solve(control);

  Tape tape;
  const VarVec c = updec::ad::make_variables(tape, control);
  const VarVec coeffs_ad = solver_.solve(tape, c);
  ASSERT_EQ(coeffs_ad.size(), coeffs_plain.size());
  for (std::size_t i = 0; i < coeffs_plain.size(); i += 37)
    EXPECT_NEAR(coeffs_ad[i].value(), coeffs_plain[i], 1e-11);

  const VarVec flux_ad = solver_.flux_top(coeffs_ad);
  const Vector flux_plain = solver_.flux_top(coeffs_plain);
  for (std::size_t i = 0; i < flux_plain.size(); ++i)
    EXPECT_NEAR(flux_ad[i].value(), flux_plain[i], 1e-11);
}

TEST_F(LaplaceSolverTest, TapeGradientMatchesFiniteDifferences) {
  // J(c) = sum_i w_i (flux_i - target_i)^2, gradient through the full
  // solve chain vs central differences.
  const auto cost_of = [&](const Vector& control) {
    const Vector flux = solver_.flux_top(solver_.solve(control));
    double j = 0.0;
    for (std::size_t i = 0; i < flux.size(); ++i) {
      const double d = flux[i] - LaplaceSolver::target_flux(solver_.top_x()[i]);
      j += solver_.quadrature_weights()[i] * d * d;
    }
    return j;
  };

  Vector control(solver_.num_control(), 0.0);
  Tape tape;
  const VarVec c = updec::ad::make_variables(tape, control);
  const VarVec flux = solver_.flux_top(solver_.solve(tape, c));
  Var j = tape.constant(0.0);
  for (std::size_t i = 0; i < flux.size(); ++i) {
    const Var d = flux[i] - LaplaceSolver::target_flux(solver_.top_x()[i]);
    j = j + solver_.quadrature_weights()[i] * d * d;
  }
  tape.backward(j);
  EXPECT_NEAR(j.value(), cost_of(control), 1e-12);

  const double h = 1e-6;
  for (const std::size_t i : {std::size_t{0}, std::size_t{7}, std::size_t{14}}) {
    Vector cp = control, cm = control;
    cp[i] += h;
    cm[i] -= h;
    const double g_fd = (cost_of(cp) - cost_of(cm)) / (2 * h);
    EXPECT_NEAR(c[i].adjoint(), g_fd, 1e-5 * (1.0 + std::abs(g_fd)));
  }
}

TEST_F(LaplaceSolverTest, RejectsWrongControlSize) {
  EXPECT_THROW(solver_.solve(Vector(3, 0.0)), updec::Error);
}

// ---- LaplaceFdSolver (sparse RBF-FD twin) ----------------------------------

using updec::pde::LaplaceFdSolver;

updec::rbf::RbffdConfig fd_config() {
  // Second-degree monomials so the local Laplacian stencils are consistent.
  updec::rbf::RbffdConfig config;
  config.stencil_size = 21;
  config.poly_degree = 2;
  return config;
}

TEST(LaplaceFd, StateMatchesAnalyticUnderAnalyticControl) {
  const updec::rbf::PolyharmonicSpline kernel(3);
  const LaplaceFdSolver solver(24, kernel, fd_config());
  Vector control(solver.num_control());
  for (std::size_t i = 0; i < control.size(); ++i)
    control[i] = LaplaceSolver::analytic_control(solver.top_x()[i]);
  updec::la::SolveReport report;
  const Vector u = solver.solve(control, &report);
  EXPECT_TRUE(report.converged);
  double max_err = 0.0;
  for (std::size_t i = 0; i < solver.cloud().size(); ++i) {
    const auto p = solver.cloud().node(i).pos;
    max_err = std::max(
        max_err, std::abs(u[i] - LaplaceSolver::analytic_state(p.x, p.y)));
  }
  EXPECT_LT(max_err, 0.05);
}

TEST(LaplaceFd, SparseAndDensePathsAgree) {
  // The UPDEC_SPARSE_MIN_N threshold must pick a path, never change the
  // answer: force both modes on the same discretisation and compare.
  const updec::rbf::PolyharmonicSpline kernel(3);
  updec::la::RobustSolveOptions forced_sparse;
  forced_sparse.sparse_min_n = 0;
  updec::la::RobustSolveOptions forced_dense;
  forced_dense.sparse_min_n = 100000;
  const LaplaceFdSolver sparse(16, kernel, fd_config(), forced_sparse);
  const LaplaceFdSolver dense(16, kernel, fd_config(), forced_dense);
  ASSERT_TRUE(sparse.op().sparse_path());
  ASSERT_FALSE(dense.op().sparse_path());

  Vector control(sparse.num_control());
  for (std::size_t i = 0; i < control.size(); ++i)
    control[i] = 0.4 * std::sin(kTwoPi * sparse.top_x()[i]);
  updec::la::SolveReport report;
  const Vector u_sparse = sparse.solve(control, &report);
  EXPECT_TRUE(report.converged);
  const Vector u_dense = dense.solve(control);
  double scale = 0.0;
  for (const double v : u_dense.std()) scale = std::max(scale, std::abs(v));
  for (std::size_t i = 0; i < u_dense.size(); ++i)
    EXPECT_NEAR(u_sparse[i], u_dense[i], 1e-6 * (1.0 + scale));

  const Vector f_sparse = sparse.flux_top(u_sparse);
  const Vector f_dense = dense.flux_top(u_dense);
  for (std::size_t i = 0; i < f_dense.size(); ++i)
    EXPECT_NEAR(f_sparse[i], f_dense[i], 1e-4);
}

TEST(LaplaceFd, SolveManyMatchesPerControlSolves) {
  const updec::rbf::PolyharmonicSpline kernel(3);
  const LaplaceFdSolver solver(12, kernel, fd_config());
  const std::size_t k = 3;
  updec::la::Matrix controls(solver.num_control(), k);
  for (std::size_t i = 0; i < controls.rows(); ++i)
    for (std::size_t j = 0; j < k; ++j)
      controls(i, j) = std::sin(kTwoPi * solver.top_x()[i] *
                                static_cast<double>(j + 1));
  const updec::la::Matrix batched = solver.solve_many(controls);
  Vector one(solver.num_control());
  for (std::size_t j = 0; j < k; ++j) {
    for (std::size_t i = 0; i < one.size(); ++i) one[i] = controls(i, j);
    const Vector u = solver.solve(one);
    for (std::size_t i = 0; i < u.size(); ++i)
      EXPECT_NEAR(batched(i, j), u[i], 1e-8);
  }
  const updec::la::Matrix flux = solver.flux_top_many(batched);
  Vector last(solver.cloud().size());
  for (std::size_t i = 0; i < last.size(); ++i) last[i] = batched(i, k - 1);
  const Vector flux_last = solver.flux_top(last);
  for (std::size_t i = 0; i < flux_last.size(); ++i)
    EXPECT_NEAR(flux(i, k - 1), flux_last[i], 1e-12);
}

TEST(LaplaceFd, QuadratureAndControlLayoutMatchCollocationSolver) {
  const updec::rbf::PolyharmonicSpline kernel(3);
  const LaplaceFdSolver fd(20, kernel, fd_config());
  const LaplaceSolver colloc(20, kernel);
  ASSERT_EQ(fd.num_control(), colloc.num_control());
  ASSERT_EQ(fd.top_x().size(), colloc.top_x().size());
  for (std::size_t i = 0; i < fd.top_x().size(); ++i)
    EXPECT_DOUBLE_EQ(fd.top_x()[i], colloc.top_x()[i]);
  double total = 0.0;
  for (const double w : fd.quadrature_weights().std()) total += w;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

}  // namespace
