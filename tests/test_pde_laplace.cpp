// Tests for the Laplace control substrate: analytic reference solution,
// factor-once solves, and the differentiable (tape) path.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "la/blas.hpp"
#include "pde/laplace.hpp"

namespace {

using updec::ad::Tape;
using updec::ad::Var;
using updec::ad::VarVec;
using updec::la::Vector;
using updec::pde::LaplaceSolver;

constexpr double kTwoPi = 2.0 * std::numbers::pi;

TEST(LaplaceAnalytic, StateTracesMatchBoundaryData) {
  // u*(x, 0) = sin(2 pi x); u*(0, y) = u*(1, y) ~ the cos-term trace.
  for (const double x : {0.1, 0.35, 0.8}) {
    EXPECT_NEAR(LaplaceSolver::analytic_state(x, 0.0), std::sin(kTwoPi * x),
                1e-12);
    // Control trace: c*(x) = u*(x, 1).
    EXPECT_NEAR(LaplaceSolver::analytic_state(x, 1.0),
                LaplaceSolver::analytic_control(x), 1e-12);
  }
}

TEST(LaplaceAnalytic, StateIsHarmonic) {
  const double h = 1e-4;
  for (const double x : {0.3, 0.6}) {
    for (const double y : {0.4, 0.7}) {
      const auto u = [](double px, double py) {
        return LaplaceSolver::analytic_state(px, py);
      };
      const double lap = (u(x + h, y) + u(x - h, y) + u(x, y + h) +
                          u(x, y - h) - 4 * u(x, y)) /
                         (h * h);
      EXPECT_NEAR(lap, 0.0, 1e-3);
    }
  }
}

TEST(LaplaceAnalytic, FluxAtTopEqualsTarget) {
  const double h = 1e-6;
  for (const double x : {0.2, 0.5, 0.9}) {
    const double uy = (LaplaceSolver::analytic_state(x, 1.0) -
                       LaplaceSolver::analytic_state(x, 1.0 - h)) /
                      h;
    EXPECT_NEAR(uy, LaplaceSolver::target_flux(x), 1e-4);
  }
}

class LaplaceSolverTest : public ::testing::Test {
 protected:
  LaplaceSolverTest() : kernel_(3), solver_(20, kernel_) {}
  updec::rbf::PolyharmonicSpline kernel_;
  LaplaceSolver solver_;
};

TEST_F(LaplaceSolverTest, ControlNodesOrderedByX) {
  const auto& xs = solver_.top_x();
  ASSERT_EQ(xs.size(), 21u);
  for (std::size_t i = 1; i < xs.size(); ++i) EXPECT_GT(xs[i], xs[i - 1]);
  EXPECT_DOUBLE_EQ(xs.front(), 0.0);
  EXPECT_DOUBLE_EQ(xs.back(), 1.0);
}

TEST_F(LaplaceSolverTest, QuadratureWeightsSumToOne) {
  double total = 0.0;
  for (const double w : solver_.quadrature_weights().std()) total += w;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST_F(LaplaceSolverTest, AnalyticControlYieldsTargetFlux) {
  Vector control(solver_.num_control());
  for (std::size_t i = 0; i < control.size(); ++i)
    control[i] = LaplaceSolver::analytic_control(solver_.top_x()[i]);
  const Vector coeffs = solver_.solve(control);
  const Vector flux = solver_.flux_top(coeffs);
  // Discretised flux should track cos(2 pi x); boundary flux on a 20x20
  // PHS-r^3 grid carries O(0.3) Runge-phenomenon noise (the very error the
  // paper blames for DAL's troubles), so the check is shape-level here and
  // resolution-level in the convergence test below.
  double err = 0.0;
  for (std::size_t i = flux.size() / 4; i < 3 * flux.size() / 4; ++i)
    err = std::max(err, std::abs(flux[i] -
                                 LaplaceSolver::target_flux(solver_.top_x()[i])));
  EXPECT_LT(err, 0.45);
}

TEST_F(LaplaceSolverTest, StateMatchesAnalyticUnderAnalyticControl) {
  Vector control(solver_.num_control());
  for (std::size_t i = 0; i < control.size(); ++i)
    control[i] = LaplaceSolver::analytic_control(solver_.top_x()[i]);
  const Vector u = solver_.state_at_nodes(solver_.solve(control));
  double max_err = 0.0;
  for (std::size_t i = 0; i < solver_.cloud().size(); ++i) {
    const auto p = solver_.cloud().node(i).pos;
    max_err = std::max(max_err,
                       std::abs(u[i] - LaplaceSolver::analytic_state(p.x, p.y)));
  }
  EXPECT_LT(max_err, 0.04);  // 20x20 grid; drops to ~5e-3 at 40x40
}

TEST(LaplaceConvergence, StateErrorShrinksWithResolution) {
  const updec::rbf::PolyharmonicSpline kernel(3);
  double previous = 1e9;
  for (const std::size_t grid : {12u, 20u, 32u}) {
    const LaplaceSolver solver(grid, kernel);
    Vector control(solver.num_control());
    for (std::size_t i = 0; i < control.size(); ++i)
      control[i] = LaplaceSolver::analytic_control(solver.top_x()[i]);
    const Vector u = solver.state_at_nodes(solver.solve(control));
    double max_err = 0.0;
    for (std::size_t i = 0; i < solver.cloud().size(); ++i) {
      const auto p = solver.cloud().node(i).pos;
      max_err = std::max(
          max_err, std::abs(u[i] - LaplaceSolver::analytic_state(p.x, p.y)));
    }
    EXPECT_LT(max_err, previous);
    previous = max_err;
  }
  EXPECT_LT(previous, 0.01);
}

TEST_F(LaplaceSolverTest, TapeSolveMatchesPlainSolve) {
  Vector control(solver_.num_control(), 0.0);
  for (std::size_t i = 0; i < control.size(); ++i)
    control[i] = 0.3 * std::sin(kTwoPi * solver_.top_x()[i]);
  const Vector coeffs_plain = solver_.solve(control);

  Tape tape;
  const VarVec c = updec::ad::make_variables(tape, control);
  const VarVec coeffs_ad = solver_.solve(tape, c);
  ASSERT_EQ(coeffs_ad.size(), coeffs_plain.size());
  for (std::size_t i = 0; i < coeffs_plain.size(); i += 37)
    EXPECT_NEAR(coeffs_ad[i].value(), coeffs_plain[i], 1e-11);

  const VarVec flux_ad = solver_.flux_top(coeffs_ad);
  const Vector flux_plain = solver_.flux_top(coeffs_plain);
  for (std::size_t i = 0; i < flux_plain.size(); ++i)
    EXPECT_NEAR(flux_ad[i].value(), flux_plain[i], 1e-11);
}

TEST_F(LaplaceSolverTest, TapeGradientMatchesFiniteDifferences) {
  // J(c) = sum_i w_i (flux_i - target_i)^2, gradient through the full
  // solve chain vs central differences.
  const auto cost_of = [&](const Vector& control) {
    const Vector flux = solver_.flux_top(solver_.solve(control));
    double j = 0.0;
    for (std::size_t i = 0; i < flux.size(); ++i) {
      const double d = flux[i] - LaplaceSolver::target_flux(solver_.top_x()[i]);
      j += solver_.quadrature_weights()[i] * d * d;
    }
    return j;
  };

  Vector control(solver_.num_control(), 0.0);
  Tape tape;
  const VarVec c = updec::ad::make_variables(tape, control);
  const VarVec flux = solver_.flux_top(solver_.solve(tape, c));
  Var j = tape.constant(0.0);
  for (std::size_t i = 0; i < flux.size(); ++i) {
    const Var d = flux[i] - LaplaceSolver::target_flux(solver_.top_x()[i]);
    j = j + solver_.quadrature_weights()[i] * d * d;
  }
  tape.backward(j);
  EXPECT_NEAR(j.value(), cost_of(control), 1e-12);

  const double h = 1e-6;
  for (const std::size_t i : {std::size_t{0}, std::size_t{7}, std::size_t{14}}) {
    Vector cp = control, cm = control;
    cp[i] += h;
    cm[i] -= h;
    const double g_fd = (cost_of(cp) - cost_of(cm)) / (2 * h);
    EXPECT_NEAR(c[i].adjoint(), g_fd, 1e-5 * (1.0 + std::abs(g_fd)));
  }
}

TEST_F(LaplaceSolverTest, RejectsWrongControlSize) {
  EXPECT_THROW(solver_.solve(Vector(3, 0.0)), updec::Error);
}

}  // namespace
