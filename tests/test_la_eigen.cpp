// Tests for the power-iteration dominant-eigenvalue estimator and the
// cyclic-Jacobi symmetric eigendecomposition backing the POD Gram path.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "la/blas.hpp"
#include "la/eigen.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using updec::la::Matrix;
using updec::la::Vector;

/// max |(V^T V - I)_ij| -- eigenvector orthonormality defect.
double orthonormality_defect(const Matrix& v) {
  const Matrix gram = updec::la::matmul(v.transposed(), v);
  double worst = 0.0;
  for (std::size_t i = 0; i < gram.rows(); ++i)
    for (std::size_t j = 0; j < gram.cols(); ++j)
      worst = std::max(worst,
                       std::abs(gram(i, j) - (i == j ? 1.0 : 0.0)));
  return worst;
}

/// max |(V diag(w) V^T - A)_ij| -- reconstruction defect.
double reconstruction_defect(const Matrix& a, const Vector& w,
                             const Matrix& v) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < w.size(); ++k)
        sum += v(i, k) * w[k] * v(j, k);
      worst = std::max(worst, std::abs(sum - a(i, j)));
    }
  return worst;
}

/// Random symmetric matrix with the given spectrum: A = Q diag(w) Q^T for a
/// random orthogonal Q (from QR of a Gaussian matrix via Gram-Schmidt).
Matrix symmetric_with_spectrum(updec::Rng& rng, const std::vector<double>& w) {
  const std::size_t n = w.size();
  Matrix q(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    Vector col(n);
    for (std::size_t i = 0; i < n; ++i) col[i] = rng.normal();
    for (std::size_t p = 0; p < j; ++p) {
      double proj = 0.0;
      for (std::size_t i = 0; i < n; ++i) proj += q(i, p) * col[i];
      for (std::size_t i = 0; i < n; ++i) col[i] -= proj * q(i, p);
    }
    const double norm = updec::la::nrm2(col);
    for (std::size_t i = 0; i < n; ++i) q(i, j) = col[i] / norm;
  }
  Matrix a(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t k = 0; k < n; ++k)
        a(i, j) += q(i, k) * w[k] * q(j, k);
  // Force exact symmetry (the triple product rounds asymmetrically).
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < i; ++j) a(j, i) = a(i, j);
  return a;
}

TEST(SymmetricEigen, KnownTwoByTwo) {
  // [[2, 1], [1, 2]] has eigenpairs (3, [1,1]/sqrt2) and (1, [1,-1]/sqrt2).
  Matrix a(2, 2);
  a(0, 0) = 2; a(0, 1) = 1; a(1, 0) = 1; a(1, 1) = 2;
  const auto r = updec::la::symmetric_eigen(a);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.eigenvalues[0], 3.0, 1e-12);
  EXPECT_NEAR(r.eigenvalues[1], 1.0, 1e-12);
  EXPECT_NEAR(std::abs(r.eigenvectors(0, 0)), std::sqrt(0.5), 1e-12);
}

TEST(SymmetricEigen, RandomSpectrumRecovered) {
  updec::Rng rng(11);
  const std::vector<double> spectrum = {9.5, 4.0, 1.25, 0.5, 0.03125};
  const Matrix a = symmetric_with_spectrum(rng, spectrum);
  const auto r = updec::la::symmetric_eigen(a);
  ASSERT_TRUE(r.converged);
  for (std::size_t i = 0; i < spectrum.size(); ++i)
    EXPECT_NEAR(r.eigenvalues[i], spectrum[i], 1e-10) << "mode " << i;
  EXPECT_LT(orthonormality_defect(r.eigenvectors), 1e-12);
  EXPECT_LT(reconstruction_defect(a, r.eigenvalues, r.eigenvectors), 1e-10);
}

TEST(SymmetricEigen, ClusteredEigenvaluesStayOrthogonal) {
  // A tight cluster is the hard case for any rotation scheme: the invariant
  // subspace is well-defined but individual vectors rotate freely inside
  // it. Orthonormality and reconstruction must survive regardless.
  updec::Rng rng(12);
  const std::vector<double> spectrum = {5.0,           1.0 + 3e-13,
                                        1.0 + 1e-13,   1.0,
                                        1.0 - 2e-13,   0.25};
  const Matrix a = symmetric_with_spectrum(rng, spectrum);
  const auto r = updec::la::symmetric_eigen(a);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.eigenvalues[0], 5.0, 1e-11);
  for (std::size_t i = 1; i <= 4; ++i)
    EXPECT_NEAR(r.eigenvalues[i], 1.0, 1e-10);
  EXPECT_NEAR(r.eigenvalues[5], 0.25, 1e-11);
  EXPECT_LT(orthonormality_defect(r.eigenvectors), 1e-12);
  EXPECT_LT(reconstruction_defect(a, r.eigenvalues, r.eigenvectors), 1e-10);
}

TEST(SymmetricEigen, NearDegenerateWideDynamicRange) {
  // 12 orders of magnitude between extreme eigenvalues: the small ones must
  // come out non-negative-ish (|error| bounded by eps * lambda_max), not
  // polluted to O(lambda_max).
  updec::Rng rng(13);
  const std::vector<double> spectrum = {1e6, 1.0, 1e-3, 1e-6};
  const Matrix a = symmetric_with_spectrum(rng, spectrum);
  const auto r = updec::la::symmetric_eigen(a);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.eigenvalues[0], 1e6, 1e-4);
  EXPECT_NEAR(r.eigenvalues[1], 1.0, 1e-8);
  EXPECT_NEAR(r.eigenvalues[2], 1e-3, 1e-8);
  // The smallest mode is at the noise floor of eps * ||A||; only its order
  // of magnitude survives.
  EXPECT_LT(std::abs(r.eigenvalues[3] - 1e-6), 1e-7);
  EXPECT_LT(orthonormality_defect(r.eigenvectors), 1e-12);
}

TEST(SymmetricEigen, RankDeficientGramOfDuplicateSnapshots) {
  // The Gram matrix of m snapshots that only span r < m directions has
  // exactly m - r (numerically) zero eigenvalues -- the case the POD
  // truncation relies on to discard duplicated snapshots.
  updec::Rng rng(14);
  std::vector<Vector> snaps;
  for (int i = 0; i < 2; ++i) {
    Vector s(6);
    for (std::size_t k = 0; k < s.size(); ++k) s[k] = rng.normal();
    snaps.push_back(s);
  }
  snaps.push_back(snaps[0]);  // duplicate
  Vector combo(6, 0.0);       // linear combination
  updec::la::axpy(0.5, snaps[0], combo);
  updec::la::axpy(-2.0, snaps[1], combo);
  snaps.push_back(combo);

  const std::size_t m = snaps.size();
  Matrix gram(m, m);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < m; ++j)
      gram(i, j) = updec::la::dot(snaps[i], snaps[j]);
  const auto r = updec::la::symmetric_eigen(gram);
  ASSERT_TRUE(r.converged);
  EXPECT_GT(r.eigenvalues[0], 0.0);
  EXPECT_GT(r.eigenvalues[1], 0.0);
  const double floor = 1e-12 * r.eigenvalues[0];
  EXPECT_LT(std::abs(r.eigenvalues[2]), floor);
  EXPECT_LT(std::abs(r.eigenvalues[3]), floor);
}

TEST(SymmetricEigen, DescendingOrderAndEmptyMatrix) {
  updec::Rng rng(15);
  const Matrix a = symmetric_with_spectrum(rng, {2.0, 7.0, -1.0, 4.0});
  const auto r = updec::la::symmetric_eigen(a);
  ASSERT_TRUE(r.converged);
  for (std::size_t i = 0; i + 1 < r.eigenvalues.size(); ++i)
    EXPECT_GE(r.eigenvalues[i], r.eigenvalues[i + 1]);
  EXPECT_NEAR(r.eigenvalues[3], -1.0, 1e-11);  // handles negative spectra

  const auto empty = updec::la::symmetric_eigen(Matrix(0, 0));
  EXPECT_TRUE(empty.converged);
  EXPECT_EQ(empty.eigenvalues.size(), 0u);
}

TEST(SymmetricEigen, RejectsNonSquareAndAsymmetric) {
  EXPECT_THROW(updec::la::symmetric_eigen(Matrix(2, 3)), updec::Error);
  Matrix skew(2, 2, 0.0);
  skew(0, 1) = 1.0;
  skew(1, 0) = -1.0;  // asymmetry far beyond the roundoff allowance
  EXPECT_THROW(updec::la::symmetric_eigen(skew), updec::Error);
}

TEST(PowerIteration, DiagonalMatrixDominantEntry) {
  Matrix a(3, 3, 0.0);
  a(0, 0) = 1.0;
  a(1, 1) = -5.0;  // dominant in magnitude, negative
  a(2, 2) = 2.0;
  const auto result = updec::la::power_iteration(a);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.eigenvalue, -5.0, 1e-6);
  // Eigenvector concentrates on coordinate 1.
  EXPECT_GT(std::abs(result.eigenvector[1]), 0.99);
}

TEST(PowerIteration, KnownTwoByTwo) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  Matrix a(2, 2);
  a(0, 0) = 2; a(0, 1) = 1; a(1, 0) = 1; a(1, 1) = 2;
  const auto result = updec::la::power_iteration(a);
  EXPECT_NEAR(result.eigenvalue, 3.0, 1e-8);
  EXPECT_NEAR(std::abs(result.eigenvector[0]),
              std::abs(result.eigenvector[1]), 1e-6);
}

TEST(PowerIteration, FunctionalFormMatchesMatrixForm) {
  updec::Rng rng(4);
  const std::size_t n = 20;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
  // Symmetrise so the dominant eigenvalue is real and power iteration is
  // guaranteed to settle.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < i; ++j) a(j, i) = a(i, j);
  const auto direct = updec::la::power_iteration(a, 2000, 1e-12);
  const auto functional = updec::la::power_iteration(
      [&a](const Vector& x) { return updec::la::matvec(a, x); }, n, 2000,
      1e-12);
  EXPECT_NEAR(direct.eigenvalue, functional.eigenvalue,
              1e-6 * (1.0 + std::abs(direct.eigenvalue)));
}

TEST(PowerIteration, GershgorinBoundHolds) {
  updec::Rng rng(9);
  const std::size_t n = 15;
  Matrix a(n, n);
  double bound = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = rng.uniform(-1.0, 1.0);
      row_sum += std::abs(a(i, j));
    }
    bound = std::max(bound, row_sum);
  }
  const auto result = updec::la::power_iteration(a, 500);
  EXPECT_LE(std::abs(result.eigenvalue), bound + 1e-9);
}

TEST(PowerIteration, ZeroMapReportsZero) {
  const auto result = updec::la::power_iteration(
      [](const Vector& x) { return Vector(x.size(), 0.0); }, 5);
  EXPECT_TRUE(result.converged);
  EXPECT_DOUBLE_EQ(result.eigenvalue, 0.0);
}

TEST(PowerIteration, RejectsNonSquareAndEmpty) {
  EXPECT_THROW(updec::la::power_iteration(Matrix(2, 3)), updec::Error);
  EXPECT_THROW(updec::la::power_iteration(
                   [](const Vector& x) { return x; }, 0),
               updec::Error);
}

}  // namespace
