// Tests for the power-iteration dominant-eigenvalue estimator.
#include <gtest/gtest.h>

#include <cmath>

#include "la/blas.hpp"
#include "la/eigen.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using updec::la::Matrix;
using updec::la::Vector;

TEST(PowerIteration, DiagonalMatrixDominantEntry) {
  Matrix a(3, 3, 0.0);
  a(0, 0) = 1.0;
  a(1, 1) = -5.0;  // dominant in magnitude, negative
  a(2, 2) = 2.0;
  const auto result = updec::la::power_iteration(a);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.eigenvalue, -5.0, 1e-6);
  // Eigenvector concentrates on coordinate 1.
  EXPECT_GT(std::abs(result.eigenvector[1]), 0.99);
}

TEST(PowerIteration, KnownTwoByTwo) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  Matrix a(2, 2);
  a(0, 0) = 2; a(0, 1) = 1; a(1, 0) = 1; a(1, 1) = 2;
  const auto result = updec::la::power_iteration(a);
  EXPECT_NEAR(result.eigenvalue, 3.0, 1e-8);
  EXPECT_NEAR(std::abs(result.eigenvector[0]),
              std::abs(result.eigenvector[1]), 1e-6);
}

TEST(PowerIteration, FunctionalFormMatchesMatrixForm) {
  updec::Rng rng(4);
  const std::size_t n = 20;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
  // Symmetrise so the dominant eigenvalue is real and power iteration is
  // guaranteed to settle.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < i; ++j) a(j, i) = a(i, j);
  const auto direct = updec::la::power_iteration(a, 2000, 1e-12);
  const auto functional = updec::la::power_iteration(
      [&a](const Vector& x) { return updec::la::matvec(a, x); }, n, 2000,
      1e-12);
  EXPECT_NEAR(direct.eigenvalue, functional.eigenvalue,
              1e-6 * (1.0 + std::abs(direct.eigenvalue)));
}

TEST(PowerIteration, GershgorinBoundHolds) {
  updec::Rng rng(9);
  const std::size_t n = 15;
  Matrix a(n, n);
  double bound = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = rng.uniform(-1.0, 1.0);
      row_sum += std::abs(a(i, j));
    }
    bound = std::max(bound, row_sum);
  }
  const auto result = updec::la::power_iteration(a, 500);
  EXPECT_LE(std::abs(result.eigenvalue), bound + 1e-9);
}

TEST(PowerIteration, ZeroMapReportsZero) {
  const auto result = updec::la::power_iteration(
      [](const Vector& x) { return Vector(x.size(), 0.0); }, 5);
  EXPECT_TRUE(result.converged);
  EXPECT_DOUBLE_EQ(result.eigenvalue, 0.0);
}

TEST(PowerIteration, RejectsNonSquareAndEmpty) {
  EXPECT_THROW(updec::la::power_iteration(Matrix(2, 3)), updec::Error);
  EXPECT_THROW(updec::la::power_iteration(
                   [](const Vector& x) { return x; }, 0),
               updec::Error);
}

}  // namespace
