// Tests for the scenario-serving runtime (src/serve): thread-pool ordering
// and fault containment, operator-cache hit/miss/LRU/contention semantics,
// scheduler cancellation and deadlines, the batched multi-RHS solve paths
// they are built on, and the metrics predump hook that makes the atexit
// JSON dump safe while pool workers are live.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "la/blas.hpp"
#include "la/iterative.hpp"
#include "la/lu.hpp"
#include "la/sparse.hpp"
#include "pde/heat.hpp"
#include "pde/laplace.hpp"
#include "pointcloud/generators.hpp"
#include "rbf/kernels.hpp"
#include "serve/cache.hpp"
#include "serve/pool.hpp"
#include "serve/scheduler.hpp"
#include "testing_common.hpp"
#include "util/faultinject.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace {

using namespace updec;
using serve::CacheKey;
using serve::KeyBuilder;
using serve::OperatorCache;

// ---- multi-RHS solve paths -----------------------------------------------

// Randomness routes through the shared logged-seed stack (testing_common);
// the local name keeps the historical (rows, cols, seed) call sites.
la::Matrix random_matrix(std::size_t rows, std::size_t cols,
                         std::uint64_t seed) {
  return testing_support::random_matrix(rows, cols, seed);
}

TEST(SolveMany, LuMatchesPerColumnSolves) {
  const std::size_t n = 24, k = 7;
  la::Matrix a = random_matrix(n, n, 1);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 6.0;  // well-conditioned
  const la::Matrix b = random_matrix(n, k, 2);

  const la::LuFactorization lu(a);
  ASSERT_TRUE(lu.valid());
  const la::Matrix x = lu.solve_many(b);
  ASSERT_EQ(x.rows(), n);
  ASSERT_EQ(x.cols(), k);
  la::Vector col(n);
  for (std::size_t j = 0; j < k; ++j) {
    for (std::size_t i = 0; i < n; ++i) col[i] = b(i, j);
    const la::Vector xj = lu.solve(col);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(x(i, j), xj[i], 1e-12) << "column " << j << " row " << i;
  }
}

TEST(SolveMany, LuSolveManyConvenienceMatchesFactorThenSolve) {
  const std::size_t n = 12, k = 3;
  la::Matrix a = random_matrix(n, n, 3);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 5.0;
  const la::Matrix b = random_matrix(n, k, 4);
  const la::Matrix x1 = la::lu_solve_many(a, b);
  const la::Matrix x2 = la::LuFactorization(a).solve_many(b);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < k; ++j) EXPECT_EQ(x1(i, j), x2(i, j));
}

la::CsrMatrix poisson_1d(std::size_t n) {
  la::SparseBuilder b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    b.add(i, i, 2.0);
    if (i > 0) b.add(i, i - 1, -1.0);
    if (i + 1 < n) b.add(i, i + 1, -1.0);
  }
  return la::CsrMatrix(b);
}

TEST(SolveMany, BatchedCgMatchesPerColumnCg) {
  const std::size_t n = 32, k = 4;
  const la::CsrMatrix a = poisson_1d(n);
  const la::Matrix b = random_matrix(n, k, 5);
  const la::BatchedIterativeResult batched = la::cg_many(a, b);
  EXPECT_EQ(batched.columns, k);
  EXPECT_TRUE(batched.all_converged());
  la::Vector col(n);
  for (std::size_t j = 0; j < k; ++j) {
    for (std::size_t i = 0; i < n; ++i) col[i] = b(i, j);
    const la::IterativeResult single = la::cg(a, col);
    ASSERT_TRUE(single.converged);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(batched.x(i, j), single.x[i], 1e-8);
  }
}

TEST(SolveMany, LaplaceSolveManyMatchesPerControlSolves) {
  const rbf::PolyharmonicSpline kernel(3);
  const pde::LaplaceSolver solver(8, kernel);
  const std::size_t nc = solver.num_control(), k = 3;
  const la::Matrix controls = random_matrix(nc, k, 6);

  const la::Matrix coeffs = solver.solve_many(controls);
  const la::Matrix flux = solver.flux_top_many(coeffs);
  la::Vector c(nc);
  for (std::size_t j = 0; j < k; ++j) {
    for (std::size_t i = 0; i < nc; ++i) c[i] = controls(i, j);
    const la::Vector cj = solver.solve(c);
    const la::Vector fj = solver.flux_top(cj);
    for (std::size_t i = 0; i < cj.size(); ++i)
      EXPECT_NEAR(coeffs(i, j), cj[i], 1e-9);
    for (std::size_t i = 0; i < fj.size(); ++i)
      EXPECT_NEAR(flux(i, j), fj[i], 1e-9);
  }
}

TEST(SolveMany, HeatStepManyMatchesPerMemberSteps) {
  const pc::PointCloud cloud = pc::unit_square_grid(10, 10);
  const rbf::PolyharmonicSpline kernel(3);
  const pde::HeatSolver solver(cloud, kernel, 0.2, 1e-3);
  const auto boundary = [](const pc::Node& n, double) { return n.pos.x; };
  const std::size_t k = 3;
  const la::Matrix u0 = random_matrix(cloud.size(), k, 7);

  const la::Matrix u1 = solver.advance_many(u0, boundary, 0.0, 2);
  la::Vector member(cloud.size());
  for (std::size_t j = 0; j < k; ++j) {
    for (std::size_t i = 0; i < cloud.size(); ++i) member[i] = u0(i, j);
    const la::Vector uj = solver.advance(member, boundary, 0.0, 2);
    for (std::size_t i = 0; i < cloud.size(); ++i)
      EXPECT_NEAR(u1(i, j), uj[i], 1e-10);
  }
}

// ---- operator cache ------------------------------------------------------

OperatorCache::Sized<int> sized_int(int v, std::size_t bytes) {
  return {std::make_shared<const int>(v), bytes};
}

TEST(OperatorCache, HitAndMissCounting) {
  OperatorCache cache(1 << 20);
  int computes = 0;
  const CacheKey key = KeyBuilder("t").add(std::uint64_t{1}).key();
  const auto compute = [&] {
    ++computes;
    return sized_int(42, 100);
  };
  const auto a = cache.get_or_compute<int>(key, compute);
  const auto b = cache.get_or_compute<int>(key, compute);
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(*a, 42);
  EXPECT_EQ(a.get(), b.get());  // same shared artefact, not a copy
  const OperatorCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.bytes, 100u);
}

TEST(OperatorCache, LruEvictionUnderByteBudget) {
  OperatorCache cache(250);  // fits two 100-byte entries, not three
  const auto key_of = [](std::uint64_t i) {
    return KeyBuilder("lru").add(i).key();
  };
  (void)cache.get_or_compute<int>(key_of(1), [&] { return sized_int(1, 100); });
  (void)cache.get_or_compute<int>(key_of(2), [&] { return sized_int(2, 100); });
  // Touch 1 so 2 becomes least recently used...
  (void)cache.get_or_compute<int>(key_of(1), [&] { return sized_int(1, 100); });
  // ...then inserting 3 must evict 2, not 1.
  (void)cache.get_or_compute<int>(key_of(3), [&] { return sized_int(3, 100); });
  EXPECT_TRUE(cache.contains(key_of(1)));
  EXPECT_FALSE(cache.contains(key_of(2)));
  EXPECT_TRUE(cache.contains(key_of(3)));
  const OperatorCache::Stats s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_LE(s.bytes, 250u);
}

TEST(OperatorCache, ZeroBudgetDisablesStorageButStillComputes) {
  OperatorCache cache(0);
  int computes = 0;
  const CacheKey key = KeyBuilder("z").add(std::uint64_t{9}).key();
  const auto compute = [&] {
    ++computes;
    return sized_int(7, 10);
  };
  EXPECT_EQ(*cache.get_or_compute<int>(key, compute), 7);
  EXPECT_EQ(*cache.get_or_compute<int>(key, compute), 7);
  EXPECT_EQ(computes, 2);  // nothing retained
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(OperatorCache, ConcurrentGetOrComputeRunsComputeOnce) {
  OperatorCache cache(1 << 20);
  const CacheKey key = KeyBuilder("flight").add(std::uint64_t{1}).key();
  std::atomic<int> computes{0};
  std::atomic<int> ready{0};
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const int>> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Rough barrier so the threads pile onto the key together.
      ++ready;
      while (ready.load() < kThreads) std::this_thread::yield();
      results[t] = cache.get_or_compute<int>(key, [&] {
        ++computes;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return sized_int(99, 50);
      });
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(computes.load(), 1) << "duplicate factorisation under contention";
  for (const auto& r : results) {
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(*r, 99);
    EXPECT_EQ(r.get(), results[0].get());
  }
}

TEST(OperatorCache, FingerprintsSeparateDistinctInputs) {
  // Kernels differing only in hidden parameters must not collide.
  const rbf::GaussianKernel g1(1.0), g2(2.0);
  EXPECT_NE(serve::fingerprint(g1), serve::fingerprint(g2));
  EXPECT_EQ(serve::fingerprint(g1), serve::fingerprint(rbf::GaussianKernel(1.0)));
  const rbf::PolyharmonicSpline p3(3), p5(5);
  EXPECT_NE(serve::fingerprint(p3), serve::fingerprint(p5));

  const pc::PointCloud c1 = pc::unit_square_grid(4, 4);
  const pc::PointCloud c2 = pc::unit_square_grid(5, 5);
  EXPECT_NE(serve::fingerprint(c1), serve::fingerprint(c2));
  EXPECT_EQ(serve::fingerprint(c1),
            serve::fingerprint(pc::unit_square_grid(4, 4)));

  // KeyBuilder: domain separation and order sensitivity.
  EXPECT_FALSE(KeyBuilder("a").add(std::uint64_t{1}).key() ==
               KeyBuilder("b").add(std::uint64_t{1}).key());
  EXPECT_FALSE(KeyBuilder("a").add(1.0).add(2.0).key() ==
               KeyBuilder("a").add(2.0).add(1.0).key());
}

TEST(OperatorCache, CachedLuIsSharedAndInstallable) {
  const rbf::PolyharmonicSpline kernel(3);
  pde::LaplaceSolver s1(6, kernel);
  pde::LaplaceSolver s2(6, kernel);  // identical layout => identical matrix
  ASSERT_EQ(s1.collocation().content_hash(), s2.collocation().content_hash());

  OperatorCache cache(std::size_t{64} << 20);
  serve::memoize_lu(cache, s1.collocation());
  serve::memoize_lu(cache, s2.collocation());
  // Second memoize must be a hit: both solvers share one factorisation.
  const OperatorCache::Stats s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(&s1.collocation().lu(), &s2.collocation().lu());

  // The installed factorisation must actually solve the system.
  const la::Vector c(s1.num_control(), 0.25);
  const la::Vector u1 = s1.solve(c);
  const la::Vector u2 = s2.solve(c);
  for (std::size_t i = 0; i < u1.size(); ++i) EXPECT_EQ(u1[i], u2[i]);
}

TEST(OperatorCache, CachedIlu0IsSharedAndInstallable) {
  // Tridiagonal convection-diffusion operator, built twice with identical
  // content: the second ILU(0) request must be a cache hit.
  const auto build = [] {
    la::SparseBuilder b(64, 64);
    for (std::size_t i = 0; i < 64; ++i) {
      b.add(i, i, 2.1);
      if (i > 0) b.add(i, i - 1, -1.3);
      if (i + 1 < 64) b.add(i, i + 1, -0.7);
    }
    return la::CsrMatrix(b);
  };
  const la::CsrMatrix a1 = build();
  const la::CsrMatrix a2 = build();
  ASSERT_EQ(serve::fingerprint(a1), serve::fingerprint(a2));

  // Two sparse-path solvers over identical content produce identical
  // (row-equilibrated) Krylov operators, so the second ILU(0) request must
  // be a cache hit on the first one's factors.
  la::RobustSolveOptions options;
  options.sparse_min_n = 0;
  la::SparseFirstSolver solver(a1, options);
  la::SparseFirstSolver twin(a2, options);
  ASSERT_EQ(serve::fingerprint(solver.krylov_matrix()),
            serve::fingerprint(twin.krylov_matrix()));

  OperatorCache cache(std::size_t{64} << 20);
  const auto ilu1 = serve::cached_ilu0(cache, solver.krylov_matrix());
  const auto ilu2 = serve::cached_ilu0(cache, twin.krylov_matrix());
  EXPECT_EQ(ilu1.get(), ilu2.get());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);

  // Install into the solver: the memoized factors precondition its Krylov
  // chain and the solve still matches the dense reference.
  serve::memoize_preconditioner(cache, solver);
  EXPECT_EQ(solver.shared_preconditioner().get(), ilu1.get());
  EXPECT_EQ(cache.stats().hits, 2u);

  la::Vector b(64, 1.0);
  la::SolveReport report;
  const la::Vector x = solver.solve(b, &report);
  EXPECT_TRUE(report.converged);
  const la::Vector x_ref = la::solve(a1.to_dense(), b);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(x[i], x_ref[i], 1e-8);

  // Dense-path solvers ignore the memoization entirely.
  options.sparse_min_n = 1000;
  la::SparseFirstSolver dense_solver(a1, options);
  const auto before = cache.stats().hits;
  serve::memoize_preconditioner(cache, dense_solver);
  EXPECT_EQ(dense_solver.shared_preconditioner(), nullptr);
  EXPECT_EQ(cache.stats().hits, before);
}

// ---- thread pool ---------------------------------------------------------

TEST(ThreadPool, CompletesJobsSubmittedFasterThanExecuted) {
  serve::ThreadPool pool(3, 4);  // small queue: exercises backpressure
  std::atomic<int> done{0};
  for (int i = 0; i < 32; ++i)
    pool.submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ++done;
    });
  pool.drain();
  EXPECT_EQ(done.load(), 32);
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(ThreadPool, JobsCompleteOutOfSubmissionOrder) {
  serve::ThreadPool pool(2);
  std::mutex order_mutex;
  std::vector<int> order;
  pool.submit([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    std::lock_guard lock(order_mutex);
    order.push_back(0);
  });
  pool.submit([&] {
    std::lock_guard lock(order_mutex);
    order.push_back(1);
  });
  pool.drain();
  ASSERT_EQ(order.size(), 2u);
  // The fast job (1) must not have been serialised behind the slow one (0).
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 0);
}

TEST(ThreadPool, ThrowingJobDoesNotKillWorkers) {
  serve::ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 4; ++i)
    pool.submit([] { throw std::runtime_error("job boom"); });
  for (int i = 0; i < 4; ++i) pool.submit([&done] { ++done; });
  pool.drain();
  EXPECT_EQ(done.load(), 4);
}

// ---- metrics predump hook (atexit-dump safety regression) ----------------

#if !defined(UPDEC_DISABLE_METRICS)
TEST(ThreadPool, MetricsDumpDrainsLiveWorkersFirst) {
  metrics::reset();
  metrics::set_enabled(true);
  serve::ThreadPool pool(2);
  constexpr int kJobs = 24;
  for (int i = 0; i < kJobs; ++i)
    pool.submit([] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      metrics::counter_add("test/predump.jobs");
    });
  // Dump immediately, while workers are mid-flight: the pool's predump hook
  // must drain them before the snapshot, so the dump carries ALL increments.
  const std::string path = ::testing::TempDir() + "predump_metrics.json";
  ASSERT_TRUE(metrics::dump_json_file(path));
  EXPECT_EQ(metrics::counter_value("test/predump.jobs"),
            static_cast<std::uint64_t>(kJobs));
  std::ifstream is(path);
  std::stringstream ss;
  ss << is.rdbuf();
  EXPECT_NE(ss.str().find("test/predump.jobs"), std::string::npos);
  std::remove(path.c_str());
  metrics::set_enabled(false);
  metrics::reset();
}
#endif

// ---- scheduler -----------------------------------------------------------

serve::Scenario quick_laplace(const std::string& id, std::size_t iters) {
  serve::Scenario sc;
  sc.id = id;
  sc.problem = serve::ProblemKind::kLaplace;
  sc.strategy = serve::Strategy::kDal;
  sc.grid_n = 8;
  sc.iterations = iters;
  return sc;
}

TEST(Scheduler, RunsABatchAndReportsInSubmissionOrder) {
  OperatorCache cache(std::size_t{64} << 20);
  serve::SchedulerOptions options;
  options.threads = 2;
  options.default_deadline_ms = 0.0;
  options.cache = &cache;
  serve::Scheduler scheduler(options);
  for (int i = 0; i < 6; ++i)
    (void)scheduler.submit(quick_laplace("job-" + std::to_string(i), 5));
  const std::vector<serve::JobReport> reports = scheduler.wait_all();
  ASSERT_EQ(reports.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(reports[i].id, "job-" + std::to_string(i));
    EXPECT_EQ(reports[i].status, serve::JobStatus::kSucceeded)
        << reports[i].error;
    EXPECT_EQ(reports[i].iterations, 5u);
    EXPECT_EQ(reports[i].cost_history.size(), 5u);
    EXPECT_GT(reports[i].seconds, 0.0);
  }
  // All six jobs share one discretisation: exactly one bundle build and one
  // factorisation; every other lookup is a hit or (when a job arrives while
  // the leader is still building) an in-flight join -- never a recompute.
  const OperatorCache::Stats s = cache.stats();
  EXPECT_EQ(s.misses, 2u);  // bundle + LU
  EXPECT_GE(s.hits + s.inflight_waits, 5u);
}

TEST(Scheduler, CancellationIsHonored) {
  OperatorCache cache(std::size_t{64} << 20);
  serve::SchedulerOptions options;
  options.threads = 1;  // serialise: job 2 cannot start before job 1 ends
  options.cache = &cache;
  serve::Scheduler scheduler(options);
  const auto long_id = scheduler.submit(quick_laplace("long", 100000));
  const auto queued_id = scheduler.submit(quick_laplace("queued", 100000));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(scheduler.cancel(long_id));
  EXPECT_TRUE(scheduler.cancel(queued_id));

  const serve::JobReport running = scheduler.wait(long_id);
  EXPECT_EQ(running.status, serve::JobStatus::kCancelled);
  EXPECT_LT(running.iterations, 100000u);  // stopped mid-run, state intact

  const serve::JobReport queued = scheduler.wait(queued_id);
  EXPECT_EQ(queued.status, serve::JobStatus::kCancelled);

  // cancel() on a finished job reports "too late".
  EXPECT_FALSE(scheduler.cancel(long_id));

  // The pool survives: a fresh job still runs to completion.
  const auto after = scheduler.submit(quick_laplace("after", 3));
  EXPECT_EQ(scheduler.wait(after).status, serve::JobStatus::kSucceeded);
}

TEST(Scheduler, DeadlineExpiryFailsTheJobNotThePool) {
  OperatorCache cache(std::size_t{64} << 20);
  serve::SchedulerOptions options;
  options.threads = 1;
  options.cache = &cache;
  serve::Scheduler scheduler(options);

  serve::Scenario doomed = quick_laplace("doomed", 10000000);
  doomed.deadline_ms = 30.0;
  const auto doomed_id = scheduler.submit(doomed);
  const serve::JobReport report = scheduler.wait(doomed_id);
  EXPECT_EQ(report.status, serve::JobStatus::kDeadlineExpired);
  EXPECT_LT(report.iterations, 10000000u);

  const auto ok_id = scheduler.submit(quick_laplace("ok", 3));
  EXPECT_EQ(scheduler.wait(ok_id).status, serve::JobStatus::kSucceeded);
}

TEST(Scheduler, JitteredSeedsProduceIsolatedTrajectories) {
  OperatorCache cache(std::size_t{64} << 20);
  serve::SchedulerOptions options;
  options.threads = 2;
  options.cache = &cache;
  serve::Scheduler scheduler(options);
  serve::Scenario a = quick_laplace("seed-1", 4);
  a.seed = 1;
  a.control_jitter = 0.1;
  serve::Scenario b = quick_laplace("seed-2", 4);
  b.seed = 2;
  b.control_jitter = 0.1;
  serve::Scenario a2 = quick_laplace("seed-1-again", 4);
  a2.seed = 1;
  a2.control_jitter = 0.1;
  const auto ia = scheduler.submit(a);
  const auto ib = scheduler.submit(b);
  const auto ia2 = scheduler.submit(a2);
  const serve::JobReport ra = scheduler.wait(ia);
  const serve::JobReport rb = scheduler.wait(ib);
  const serve::JobReport ra2 = scheduler.wait(ia2);
  ASSERT_TRUE(ra.ok() && rb.ok() && ra2.ok());
  // Same seed => identical trajectory regardless of scheduling; different
  // seed => different trajectory (per-job Rng, no shared stream).
  ASSERT_EQ(ra.cost_history.size(), ra2.cost_history.size());
  for (std::size_t i = 0; i < ra.cost_history.size(); ++i)
    EXPECT_EQ(ra.cost_history[i], ra2.cost_history[i]);
  EXPECT_NE(ra.cost_history.front(), rb.cost_history.front());
}

TEST(Scheduler, RefinedScenariosShareOneAdaptedCloudPerFamily) {
  // refine_cycles > 0 on a DAL Laplace job routes through the refined-cloud
  // bundle: the adapted cloud is built ONCE per (grid, refinement-knob)
  // family and shared by every job in it; a different refinement level is a
  // different family and must rebuild.
  OperatorCache cache(std::size_t{64} << 20);
  serve::SchedulerOptions options;
  options.threads = 2;
  options.cache = &cache;
  serve::Scheduler scheduler(options);

  serve::Scenario refined = quick_laplace("refined-1", 4);
  refined.grid_n = 10;
  refined.refine_cycles = 1;
  serve::Scenario sibling = refined;
  sibling.id = "refined-2";
  sibling.seed = 99;
  sibling.control_jitter = 0.05;
  serve::Scenario deeper = refined;
  deeper.id = "refined-deeper";
  deeper.refine_cycles = 2;

  const auto i1 = scheduler.submit(refined);
  const auto i2 = scheduler.submit(sibling);
  const serve::JobReport r1 = scheduler.wait(i1);
  const serve::JobReport r2 = scheduler.wait(i2);
  ASSERT_TRUE(r1.ok()) << r1.error;
  ASSERT_TRUE(r2.ok()) << r2.error;
  EXPECT_TRUE(std::isfinite(r1.final_cost));
  const OperatorCache::Stats after_family = cache.stats();

  const serve::JobReport r3 = scheduler.wait(scheduler.submit(deeper));
  ASSERT_TRUE(r3.ok()) << r3.error;
  EXPECT_GT(cache.stats().misses, after_family.misses)
      << "a deeper refinement level is a distinct cached artefact";
}

TEST(Scheduler, ParsersRoundTrip) {
  EXPECT_EQ(serve::parse_problem_kind("laplace"), serve::ProblemKind::kLaplace);
  EXPECT_EQ(serve::parse_strategy("fd"), serve::Strategy::kFd);
  EXPECT_THROW(serve::parse_problem_kind("poisson"), Error);
  EXPECT_THROW(serve::parse_strategy("adjoint"), Error);
  EXPECT_STREQ(serve::to_string(serve::JobStatus::kDeadlineExpired),
               "deadline_expired");
  EXPECT_STREQ(serve::to_string(serve::JobStatus::kRetrying), "retrying");
}

TEST(Scheduler, StatusTracksTheJobLifecycle) {
  OperatorCache cache(std::size_t{64} << 20);
  serve::SchedulerOptions options;
  options.threads = 1;
  options.cache = &cache;
  serve::Scheduler scheduler(options);
  const auto id = scheduler.submit(quick_laplace("tracked", 3));
  (void)scheduler.wait(id);
  EXPECT_EQ(scheduler.status(id), serve::JobStatus::kSucceeded);
  EXPECT_THROW((void)scheduler.status(9999), Error);
}

// ---- retry / degradation ladder ------------------------------------------

/// Every test leaves the global fault registry clean.
class ServeRetryTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::disarm_all(); }
  void TearDown() override { fault::disarm_all(); }
};

serve::RetryPolicy quick_policy(std::size_t retries) {
  serve::RetryPolicy policy;
  policy.max_retries = retries;
  policy.backoff_ms = 1.0;
  policy.jitter = 0.0;
  return policy;
}

TEST_F(ServeRetryTest, TransientFaultIsAbsorbedByTheSecondAttempt) {
  metrics::reset();
  metrics::set_enabled(true);
  OperatorCache cache(std::size_t{64} << 20);
  fault::arm("serve.solve_fault", 1);

  const serve::JobReport report = serve::run_scenario(
      quick_laplace("transient", 4), cache, 0.0, {}, quick_policy(2));
  EXPECT_EQ(report.status, serve::JobStatus::kSucceeded) << report.error;
  EXPECT_FALSE(report.degraded);
  EXPECT_EQ(report.attempts, 2u);
  EXPECT_EQ(report.retries, 1u);
  EXPECT_EQ(report.iterations, 4u);  // full budget, not a truncated fallback
  EXPECT_EQ(metrics::counter_value("serve/jobs.retries"), 1u);
  EXPECT_EQ(metrics::counter_value("serve/jobs.succeeded"), 1u);
  EXPECT_EQ(metrics::counter_value("serve/jobs.failed"), 0u);
  metrics::set_enabled(false);
  metrics::reset();
}

TEST_F(ServeRetryTest, InjectedLatencyDelaysButDoesNotFailTheJob) {
  OperatorCache cache(std::size_t{64} << 20);
  fault::arm("serve.solve_latency", 1);
  const serve::JobReport report =
      serve::run_scenario(quick_laplace("slow", 3), cache);
  EXPECT_EQ(report.status, serve::JobStatus::kSucceeded) << report.error;
  EXPECT_GE(report.seconds, 0.02);  // the injected 25 ms spike
  EXPECT_EQ(report.retries, 0u);
}

TEST_F(ServeRetryTest, RetryBudgetIsChargedAgainstTheDeadline) {
  OperatorCache cache(std::size_t{64} << 20);
  fault::arm("serve.solve_fault", 10);  // every attempt would fail

  serve::RetryPolicy policy = quick_policy(8);
  policy.backoff_ms = 60000.0;  // any single backoff blows the deadline
  serve::Scenario doomed = quick_laplace("doomed", 4);
  doomed.deadline_ms = 50.0;

  const auto start = std::chrono::steady_clock::now();
  const serve::JobReport report =
      serve::run_scenario(doomed, cache, 0.0, {}, policy);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();

  // The job must resolve kDeadlineExpired the moment the backoff cannot
  // fit, without sleeping into (or spinning past) the deadline.
  EXPECT_EQ(report.status, serve::JobStatus::kDeadlineExpired);
  EXPECT_EQ(report.retries, 0u);
  EXPECT_NE(report.error.find("retry budget exceeds deadline"),
            std::string::npos)
      << report.error;
  EXPECT_LT(elapsed_ms, 10000.0) << "gave up by resolving, not by sleeping";
}

TEST_F(ServeRetryTest, ExhaustedRetriesDegradeToBestEffort) {
  metrics::reset();
  metrics::set_enabled(true);
  OperatorCache cache(std::size_t{64} << 20);
  fault::arm("serve.solve_fault", 1);

  serve::RetryPolicy policy = quick_policy(0);  // no retries: straight to
  policy.degraded_iterations = 0.5;             // the degraded fallback
  const serve::JobReport report = serve::run_scenario(
      quick_laplace("best-effort", 10), cache, 0.0, {}, policy);
  EXPECT_EQ(report.status, serve::JobStatus::kSucceeded) << report.error;
  EXPECT_TRUE(report.degraded);
  EXPECT_EQ(report.attempts, 2u);
  EXPECT_EQ(report.retries, 0u);
  EXPECT_LE(report.iterations, 5u);  // truncated budget
  EXPECT_GT(report.achieved_tolerance, 0.0);
  EXPECT_EQ(metrics::counter_value("serve/jobs.degraded"), 1u);
  EXPECT_EQ(metrics::counter_value("serve/jobs.succeeded"), 1u);
  metrics::set_enabled(false);
  metrics::reset();
}

TEST_F(ServeRetryTest, DegradationDisabledFailsHardAfterRetries) {
  OperatorCache cache(std::size_t{64} << 20);
  fault::arm("serve.solve_fault", 2);  // first attempt + its one retry

  serve::RetryPolicy policy = quick_policy(1);
  policy.allow_degraded = false;
  const serve::JobReport report = serve::run_scenario(
      quick_laplace("hard-fail", 4), cache, 0.0, {}, policy);
  EXPECT_EQ(report.status, serve::JobStatus::kFailed);
  EXPECT_EQ(report.attempts, 2u);
  EXPECT_EQ(report.retries, 1u);
  EXPECT_NE(report.error.find("injected transient solve fault"),
            std::string::npos);
}

TEST_F(ServeRetryTest, SchedulerRoutesRetriesThroughThePool) {
  OperatorCache cache(std::size_t{64} << 20);
  fault::arm("serve.solve_fault", 1);
  serve::SchedulerOptions options;
  options.threads = 1;
  options.cache = &cache;
  options.retry = quick_policy(2);
  serve::Scheduler scheduler(options);
  const auto id = scheduler.submit(quick_laplace("pooled", 4));
  const serve::JobReport report = scheduler.wait(id);
  EXPECT_EQ(report.status, serve::JobStatus::kSucceeded) << report.error;
  EXPECT_EQ(report.retries, 1u);
  EXPECT_EQ(scheduler.status(id), serve::JobStatus::kSucceeded);
}

// ---- disk-tier codecs ----------------------------------------------------

TEST(DiskCodec, LuRoundTripIsBitExact) {
  const std::size_t n = 12;
  la::Matrix a = random_matrix(n, n, 21);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 5.0;
  const la::LuFactorization lu(a);
  ASSERT_TRUE(lu.valid());

  const la::LuFactorization rt = serve::decode_lu(serve::encode_lu(lu));
  EXPECT_EQ(rt.permutation_sign(), lu.permutation_sign());
  EXPECT_EQ(rt.permutation(), lu.permutation());
  la::Vector b(n);
  Rng rng(22);
  for (std::size_t i = 0; i < n; ++i) b[i] = rng.uniform(-1.0, 1.0);
  const la::Vector x1 = lu.solve(b);
  const la::Vector x2 = rt.solve(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(x1[i], x2[i]);
}

TEST(DiskCodec, CsrAndIlu0RoundTripsPreserveContent) {
  const la::CsrMatrix a = poisson_1d(16);
  const la::CsrMatrix rt = serve::decode_csr(serve::encode_csr(a));
  EXPECT_EQ(serve::fingerprint(rt), serve::fingerprint(a));

  const la::Ilu0 ilu(a);
  const la::Ilu0 ilu_rt = serve::decode_ilu0(serve::encode_ilu0(ilu));
  EXPECT_EQ(serve::fingerprint(ilu_rt.factors()),
            serve::fingerprint(ilu.factors()));
  la::Vector r(16, 1.0), z1(16), z2(16);
  ilu.apply(r, z1);
  ilu_rt.apply(r, z2);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(z1[i], z2[i]);
}

TEST(DiskCodec, Ilu0F32RoundTripIsBitExactOnTheShadow) {
  // The mixed-precision artefact stores the fp32 shadow; decoding widens to
  // double and Ilu0::from_factors re-narrows, so the shadow (the values the
  // mixed chain actually applies) must survive the round trip BITWISE.
  const la::CsrMatrix a = poisson_1d(32);
  const la::Ilu0 ilu(a);
  const std::string payload = serve::encode_ilu0_f32(ilu);
  // Half-size value storage vs the fp64 codec.
  EXPECT_LT(payload.size(), serve::encode_ilu0(ilu).size());
  const la::Ilu0 rt = serve::decode_ilu0_f32(payload);
  ASSERT_EQ(rt.factors_f32().size(), ilu.factors_f32().size());
  for (std::size_t k = 0; k < ilu.factors_f32().size(); ++k)
    EXPECT_EQ(rt.factors_f32()[k], ilu.factors_f32()[k]);
  EXPECT_EQ(rt.factors().row_ptr(), ilu.factors().row_ptr());
  EXPECT_EQ(rt.factors().col_idx(), ilu.factors().col_idx());
  // Identical fp32 sweeps on both sides.
  la::Vector r(32, 1.0), z1(32), z2(32);
  ilu.apply_f32(r, z1);
  rt.apply_f32(r, z2);
  for (std::size_t i = 0; i < 32; ++i) EXPECT_EQ(z1[i], z2[i]);
}

TEST(DiskCodec, DecodeRejectsMalformedPayloads) {
  EXPECT_THROW((void)serve::decode_lu("garbage"), Error);
  EXPECT_THROW((void)serve::decode_csr(""), Error);
  EXPECT_THROW((void)serve::decode_ilu0_f32("garbage"), Error);
  // A structurally valid prefix with trailing junk must not decode either.
  std::string payload = serve::encode_csr(poisson_1d(4));
  payload += "x";
  EXPECT_THROW((void)serve::decode_csr(payload), Error);
  std::string payload_f32 = serve::encode_ilu0_f32(la::Ilu0(poisson_1d(4)));
  payload_f32 += "x";
  EXPECT_THROW((void)serve::decode_ilu0_f32(payload_f32), Error);
}

// ---- persistent disk tier ------------------------------------------------

std::string fresh_cache_dir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "updec_disk_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(DiskCache, WarmRestartServesBitwiseEqualArtefactsFromDisk) {
  const std::string dir = fresh_cache_dir("warm");
  const rbf::PolyharmonicSpline kernel(3);
  la::Vector cold, warm;

  {
    // Cold process: compute, persist.
    pde::LaplaceSolver solver(6, kernel);
    OperatorCache cache(std::size_t{64} << 20, dir);
    const auto lu = serve::cached_lu(cache, solver.collocation());
    ASSERT_NE(lu, nullptr);
    const OperatorCache::Stats s = cache.stats();
    EXPECT_EQ(s.disk.writes, 1u);
    EXPECT_EQ(s.disk.hits, 0u);
    cold = lu->solve(la::Vector(solver.collocation().system_size(), 1.0));
  }
  {
    // Warm restart: a NEW cache instance over the same directory must serve
    // the factorisation from disk, not refactor, and the artefact must be
    // bitwise identical.
    pde::LaplaceSolver solver(6, kernel);
    OperatorCache cache(std::size_t{64} << 20, dir);
    const auto lu = serve::cached_lu(cache, solver.collocation());
    ASSERT_NE(lu, nullptr);
    const OperatorCache::Stats s = cache.stats();
    EXPECT_EQ(s.disk.hits, 1u);
    EXPECT_EQ(s.disk.writes, 0u);
    warm = lu->solve(la::Vector(solver.collocation().system_size(), 1.0));

    // Promoted into the in-memory LRU: the next lookup never touches disk.
    (void)serve::cached_lu(cache, solver.collocation());
    EXPECT_EQ(cache.stats().disk.hits, 1u);
    EXPECT_EQ(cache.stats().hits, 1u);
  }
  ASSERT_EQ(cold.size(), warm.size());
  for (std::size_t i = 0; i < cold.size(); ++i) EXPECT_EQ(cold[i], warm[i]);
  std::filesystem::remove_all(dir);
}

TEST(DiskCache, MixedPrecisionIluRoundTripsThroughDiskBitExactly) {
  // Regression for UPDEC_MIXED_PRECISION serving: the fp32-factor artefact
  // variant persists under its own key domain ("ilu0-f32") and a warm
  // restart must serve a preconditioner whose fp32 sweep output is bitwise
  // identical to the cold process's.
  const std::string dir = fresh_cache_dir("mixed");
  const la::CsrMatrix a = poisson_1d(40);
  la::Vector r(40, 1.0), cold(40), warm(40);
  std::vector<float> cold_shadow;

  {
    OperatorCache cache(std::size_t{64} << 20, dir);
    const auto ilu = serve::cached_ilu0(cache, a, /*fp32_factors=*/true);
    ASSERT_NE(ilu, nullptr);
    EXPECT_EQ(cache.stats().disk.writes, 1u);
    cold_shadow = ilu->factors_f32();
    ilu->apply_f32(r, cold);
  }
  {
    OperatorCache cache(std::size_t{64} << 20, dir);
    const auto ilu = serve::cached_ilu0(cache, a, /*fp32_factors=*/true);
    ASSERT_NE(ilu, nullptr);
    EXPECT_EQ(cache.stats().disk.hits, 1u);
    EXPECT_EQ(cache.stats().disk.writes, 0u);
    ASSERT_EQ(ilu->factors_f32().size(), cold_shadow.size());
    for (std::size_t k = 0; k < cold_shadow.size(); ++k)
      EXPECT_EQ(ilu->factors_f32()[k], cold_shadow[k]);
    ilu->apply_f32(r, warm);

    // The fp64 artefact for the SAME operator lives under a different key:
    // requesting it must compute (and persist) a fresh entry, not alias the
    // narrowed fp32 factors.
    const auto ilu64 = serve::cached_ilu0(cache, a, /*fp32_factors=*/false);
    EXPECT_EQ(cache.stats().disk.writes, 1u);
    EXPECT_NE(ilu64.get(), ilu.get());
  }
  for (std::size_t i = 0; i < 40; ++i) EXPECT_EQ(cold[i], warm[i]);
  std::filesystem::remove_all(dir);
}

TEST(DiskCache, CorruptEntryIsRejectedDeletedAndRecomputed) {
  const std::string dir = fresh_cache_dir("corrupt");
  const rbf::PolyharmonicSpline kernel(3);
  la::Vector cold, recomputed;
  std::string entry_path;

  {
    pde::LaplaceSolver solver(6, kernel);
    OperatorCache cache(std::size_t{64} << 20, dir);
    const auto lu = serve::cached_lu(cache, solver.collocation());
    cold = lu->solve(la::Vector(solver.collocation().system_size(), 1.0));
    for (const auto& e : std::filesystem::directory_iterator(dir))
      entry_path = e.path().string();
  }
  ASSERT_FALSE(entry_path.empty());

  // Flip one payload byte on disk (simulated bit rot past the header).
  {
    std::fstream f(entry_path,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(0, std::ios::end);
    const auto size = static_cast<std::streamoff>(f.tellg());
    ASSERT_GT(size, 64);
    f.seekp(size / 2);
    char byte = 0;
    f.seekg(size / 2);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5A);
    f.seekp(size / 2);
    f.write(&byte, 1);
  }

  {
    pde::LaplaceSolver solver(6, kernel);
    OperatorCache cache(std::size_t{64} << 20, dir);
    const auto lu = serve::cached_lu(cache, solver.collocation());
    ASSERT_NE(lu, nullptr);
    const OperatorCache::Stats s = cache.stats();
    EXPECT_EQ(s.disk.corrupt, 1u);  // rejected, never trusted
    EXPECT_EQ(s.disk.hits, 0u);
    EXPECT_EQ(s.disk.writes, 1u);   // recomputed and re-persisted
    recomputed =
        lu->solve(la::Vector(solver.collocation().system_size(), 1.0));
  }
  for (std::size_t i = 0; i < cold.size(); ++i)
    EXPECT_EQ(cold[i], recomputed[i]);
  std::filesystem::remove_all(dir);
}

TEST_F(ServeRetryTest, InjectedCorruptionFaultForcesChecksumReject) {
  const std::string dir = fresh_cache_dir("faultrot");
  const rbf::PolyharmonicSpline kernel(3);
  {
    pde::LaplaceSolver solver(6, kernel);
    OperatorCache cache(std::size_t{64} << 20, dir);
    (void)serve::cached_lu(cache, solver.collocation());
  }
  fault::arm("serve.cache_disk_corrupt", 1);
  {
    pde::LaplaceSolver solver(6, kernel);
    OperatorCache cache(std::size_t{64} << 20, dir);
    const auto lu = serve::cached_lu(cache, solver.collocation());
    ASSERT_NE(lu, nullptr);  // recomputed under the injected rot
    EXPECT_EQ(cache.stats().disk.corrupt, 1u);
  }
  std::filesystem::remove_all(dir);
}

TEST_F(ServeRetryTest, DiskWriteFaultDegradesToMemoryOnlyServing) {
  const std::string dir = fresh_cache_dir("wfault");
  const rbf::PolyharmonicSpline kernel(3);
  pde::LaplaceSolver solver(6, kernel);
  OperatorCache cache(std::size_t{64} << 20, dir);
  fault::arm("serve.cache_disk_write", 1);

  const auto lu = serve::cached_lu(cache, solver.collocation());
  ASSERT_NE(lu, nullptr);  // the artefact itself is unaffected
  const OperatorCache::Stats s = cache.stats();
  EXPECT_EQ(s.disk.errors, 1u);
  EXPECT_EQ(s.disk.writes, 0u);
  EXPECT_TRUE(std::filesystem::is_empty(dir));  // nothing half-written
  // The in-memory tier still serves it.
  (void)serve::cached_lu(cache, solver.collocation());
  EXPECT_EQ(cache.stats().hits, 1u);
  std::filesystem::remove_all(dir);
}

TEST(DiskCache, UnusableDirectoryDisablesPersistenceNotServing) {
  // A path that cannot be a directory (parent is a FILE) must warn and
  // disarm the tier; compute still works.
  const std::string file = ::testing::TempDir() + "updec_disk_blocker";
  std::ofstream(file) << "x";
  OperatorCache cache(std::size_t{64} << 20, file + "/sub");
  EXPECT_TRUE(cache.disk() == nullptr || !cache.disk()->enabled());
  const rbf::PolyharmonicSpline kernel(3);
  pde::LaplaceSolver solver(6, kernel);
  EXPECT_NE(serve::cached_lu(cache, solver.collocation()), nullptr);
  std::remove(file.c_str());
}

}  // namespace
