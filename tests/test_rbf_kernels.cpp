// Tests for RBF kernels, the dual-derived kernel adapter, differential
// operators and the monomial basis.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "testing_common.hpp"
#include "rbf/kernels.hpp"
#include "rbf/operators.hpp"
#include "util/rng.hpp"

namespace {

using updec::pc::Vec2;
using updec::rbf::DualDerivedKernel;
using updec::rbf::GaussianKernel;
using updec::rbf::InverseMultiquadricKernel;
using updec::rbf::Kernel;
using updec::rbf::LinearOp;
using updec::rbf::MonomialBasis;
using updec::rbf::MultiquadricKernel;
using updec::rbf::PolyharmonicSpline;
using updec::rbf::ThinPlateSpline;

TEST(Kernels, Phs3Values) {
  const PolyharmonicSpline phs(3);
  EXPECT_DOUBLE_EQ(phs.phi(2.0), 8.0);
  EXPECT_DOUBLE_EQ(phs.dphi(2.0), 12.0);
  EXPECT_DOUBLE_EQ(phs.d2phi(2.0), 12.0);
  // 2-D Laplacian of r^3 is 9r.
  EXPECT_DOUBLE_EQ(phs.laplacian(2.0), 18.0);
  EXPECT_DOUBLE_EQ(phs.laplacian(0.0), 0.0);
  EXPECT_EQ(phs.name(), "phs3");
}

TEST(Kernels, RejectsEvenPhsExponent) {
  EXPECT_THROW(PolyharmonicSpline(2), updec::Error);
  EXPECT_THROW(GaussianKernel(0.0), updec::Error);
}

TEST(Kernels, GaussianLaplacianAtZeroIsSmoothLimit) {
  const GaussianKernel g(2.0);
  // phi'' (0) = -2 eps^2; 2-D Laplacian limit = 2 phi''(0) = -4 eps^2.
  EXPECT_NEAR(g.laplacian(0.0), -16.0, 1e-12);
  // Consistency with r > 0 values approaching 0.
  EXPECT_NEAR(g.laplacian(1e-7), g.laplacian(0.0), 1e-5);
}

TEST(Kernels, ThinPlateSplineGuardsOrigin) {
  const ThinPlateSpline tps;
  EXPECT_DOUBLE_EQ(tps.phi(0.0), 0.0);
  EXPECT_DOUBLE_EQ(tps.dphi(0.0), 0.0);
  EXPECT_THROW(tps.laplacian(0.0), updec::Error);
  EXPECT_NEAR(tps.laplacian(1.0), 4.0, 1e-14);
}

/// Cross-validation of hand-derived kernel derivatives against forward-mode
/// AD -- the paper's "define phi, differentiate by grad" workflow.
void check_against_dual(const Kernel& analytic, const Kernel& dual,
                        std::initializer_list<double> radii,
                        double tol = 1e-9) {
  for (const double r : radii) {
    EXPECT_NEAR(analytic.phi(r), dual.phi(r), tol) << "phi @ " << r;
    EXPECT_NEAR(analytic.dphi(r), dual.dphi(r), tol) << "dphi @ " << r;
    EXPECT_NEAR(analytic.d2phi(r), dual.d2phi(r), tol) << "d2phi @ " << r;
  }
}

TEST(Kernels, Phs3MatchesDualDerived) {
  const PolyharmonicSpline analytic(3);
  const DualDerivedKernel dual("phs3-ad", [](auto r) { return r * r * r; });
  check_against_dual(analytic, dual, {0.1, 0.5, 1.0, 3.0});
}

TEST(Kernels, GaussianMatchesDualDerived) {
  const double eps = 1.7;
  const GaussianKernel analytic(eps);
  const DualDerivedKernel dual("gauss-ad", [eps](auto r) {
    using std::exp;
    return exp(-1.0 * (eps * r) * (eps * r));
  });
  check_against_dual(analytic, dual, {0.0, 0.2, 0.9, 2.0});
}

TEST(Kernels, MultiquadricMatchesDualDerived) {
  const double eps = 0.8;
  const MultiquadricKernel analytic(eps);
  const DualDerivedKernel dual("mq-ad", [eps](auto r) {
    using std::sqrt;
    return sqrt(1.0 + (eps * r) * (eps * r));
  });
  check_against_dual(analytic, dual, {0.0, 0.3, 1.1, 4.0});
}

TEST(Kernels, InverseMultiquadricMatchesDualDerived) {
  const double eps = 1.2;
  const InverseMultiquadricKernel analytic(eps);
  const DualDerivedKernel dual("imq-ad", [eps](auto r) {
    using std::sqrt;
    return 1.0 / sqrt(1.0 + (eps * r) * (eps * r));
  });
  check_against_dual(analytic, dual, {0.0, 0.4, 1.5, 3.0});
}

TEST(Kernels, DefaultKernelIsPaperChoice) {
  const auto kernel = updec::rbf::make_default_kernel();
  EXPECT_EQ(kernel->name(), "phs3");
}

TEST(Operators, ApplyKernelGradientMatchesFiniteDifferences) {
  const PolyharmonicSpline phs(3);
  const Vec2 c{0.3, 0.7};
  const Vec2 x{0.9, 0.2};
  const double h = 1e-6;
  const auto phi_at = [&](double px, double py) {
    const double dx = px - c.x, dy = py - c.y;
    return std::pow(std::sqrt(dx * dx + dy * dy), 3);
  };
  const double gx = updec::rbf::apply_kernel(phs, LinearOp::d_dx(), x, c);
  const double gy = updec::rbf::apply_kernel(phs, LinearOp::d_dy(), x, c);
  EXPECT_NEAR(gx, (phi_at(x.x + h, x.y) - phi_at(x.x - h, x.y)) / (2 * h), 1e-6);
  EXPECT_NEAR(gy, (phi_at(x.x, x.y + h) - phi_at(x.x, x.y - h)) / (2 * h), 1e-6);
}

TEST(Operators, ApplyKernelLaplacianMatchesFiniteDifferences) {
  const GaussianKernel g(1.3);
  const Vec2 c{0.0, 0.0};
  const Vec2 x{0.4, -0.3};
  const double h = 1e-4;
  const auto phi_at = [&](double px, double py) {
    const double r = std::sqrt(px * px + py * py);
    return g.phi(r);
  };
  const double lap = updec::rbf::apply_kernel(g, LinearOp::laplacian(), x, c);
  const double lap_fd =
      (phi_at(x.x + h, x.y) + phi_at(x.x - h, x.y) + phi_at(x.x, x.y + h) +
       phi_at(x.x, x.y - h) - 4 * phi_at(x.x, x.y)) /
      (h * h);
  EXPECT_NEAR(lap, lap_fd, 1e-5);
}

TEST(Operators, NormalDerivativeAndRobin) {
  const PolyharmonicSpline phs(3);
  const Vec2 c{0.0, 0.0};
  const Vec2 x{1.0, 0.0};
  const Vec2 n{1.0, 0.0};
  const double dn =
      updec::rbf::apply_kernel(phs, LinearOp::normal_derivative(n), x, c);
  EXPECT_NEAR(dn, 3.0, 1e-14);  // d/dr r^3 at r=1 along the radial direction
  const double robin =
      updec::rbf::apply_kernel(phs, LinearOp::robin(n, 2.0), x, c);
  EXPECT_NEAR(robin, 3.0 + 2.0 * 1.0, 1e-14);  // + beta * phi(1)
}

TEST(Monomials, SizeMatchesPaperFormula) {
  // M = C(n+d, n) with d = 2: n=1 -> 3 (paper footnote 7), n=2 -> 6.
  EXPECT_EQ(MonomialBasis(0).size(), 1u);
  EXPECT_EQ(MonomialBasis(1).size(), 3u);
  EXPECT_EQ(MonomialBasis(2).size(), 6u);
  EXPECT_EQ(MonomialBasis(3).size(), 10u);
}

TEST(Monomials, EvaluationAndDerivatives) {
  const MonomialBasis basis(2);
  const Vec2 x{2.0, 3.0};
  // Order: 1; x, y; x^2, xy, y^2.
  EXPECT_DOUBLE_EQ(basis.evaluate(0, x), 1.0);
  EXPECT_DOUBLE_EQ(basis.evaluate(1, x), 2.0);
  EXPECT_DOUBLE_EQ(basis.evaluate(2, x), 3.0);
  EXPECT_DOUBLE_EQ(basis.evaluate(3, x), 4.0);
  EXPECT_DOUBLE_EQ(basis.evaluate(4, x), 6.0);
  EXPECT_DOUBLE_EQ(basis.evaluate(5, x), 9.0);
  // d/dx of xy = y; Laplacian of x^2 = 2; d/dy of 1 = 0.
  EXPECT_DOUBLE_EQ(basis.apply(4, LinearOp::d_dx(), x), 3.0);
  EXPECT_DOUBLE_EQ(basis.apply(3, LinearOp::laplacian(), x), 2.0);
  EXPECT_DOUBLE_EQ(basis.apply(0, LinearOp::d_dy(), x), 0.0);
  // Combined operator on y^2: (I + lap) y^2 = 9 + 2.
  EXPECT_DOUBLE_EQ(basis.apply(5, LinearOp{1.0, 0.0, 0.0, 1.0}, x), 11.0);
}

// Property sweep: every kernel's laplacian() is consistent with its radial
// derivatives at random radii.
class KernelLaplacianConsistency
    : public ::testing::TestWithParam<std::shared_ptr<Kernel>> {};

TEST_P(KernelLaplacianConsistency, MatchesRadialFormula) {
  updec::Rng rng = updec::testing_support::test_rng(5);
  const auto& kernel = *GetParam();
  for (int i = 0; i < 50; ++i) {
    const double r = rng.uniform(0.05, 3.0);
    EXPECT_NEAR(kernel.laplacian(r), kernel.d2phi(r) + kernel.dphi(r) / r,
                1e-12 * (1.0 + std::abs(kernel.laplacian(r))));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelLaplacianConsistency,
    ::testing::Values(std::make_shared<PolyharmonicSpline>(3),
                      std::make_shared<PolyharmonicSpline>(5),
                      std::make_shared<PolyharmonicSpline>(7),
                      std::make_shared<GaussianKernel>(1.5),
                      std::make_shared<MultiquadricKernel>(0.9),
                      std::make_shared<InverseMultiquadricKernel>(1.1)));

}  // namespace
