// Unit tests for the util substrate: RNG determinism and statistics, memory
// probes, table/CSV formatting, CLI parsing, strict environment parsing.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <vector>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "util/memory.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using updec::CliArgs;
using updec::Rng;

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng rng(123);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sum2 += u * u;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 5e-3);
  EXPECT_NEAR(var, 1.0 / 12.0, 5e-3);
}

TEST(Rng, NormalMeanAndStd) {
  Rng rng(99);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 1e-2);
  EXPECT_NEAR(var, 1.0, 2e-2);
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(11);
  const auto s = rng.sample_without_replacement(100, 30);
  ASSERT_EQ(s.size(), 30u);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (const auto i : uniq) EXPECT_LT(i, 100u);
}

TEST(Rng, SampleRejectsOversizedRequest) {
  Rng rng(1);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), updec::Error);
}

TEST(Memory, PeakRssIsPositiveAndAtLeastCurrent) {
  const auto peak = updec::peak_rss_bytes();
  const auto cur = updec::current_rss_bytes();
  EXPECT_GT(peak, 0u);
  EXPECT_GT(cur, 0u);
  EXPECT_GE(peak + (1u << 20), cur);  // peak >= current, modulo probe skew
}

TEST(Memory, PeakRssGrowsAfterAllocation) {
  const auto before = updec::peak_rss_bytes();
  std::vector<double> big(32 << 20, 1.5);  // 256 MiB touched
  volatile double sink = big[big.size() / 2];
  (void)sink;
  const auto after = updec::peak_rss_bytes();
  EXPECT_GT(after, before + (100u << 20));
}

TEST(Stopwatch, MeasuresElapsedTime) {
  updec::Stopwatch sw;
  volatile double x = 0.0;
  for (int i = 0; i < 2000000; ++i) x = x + std::sqrt(static_cast<double>(i));
  EXPECT_GT(sw.seconds(), 0.0);
  const double t1 = sw.millis();
  const double t2 = sw.millis();
  EXPECT_GE(t2, t1);  // monotonic
  sw.reset();
  EXPECT_LT(sw.millis(), t2);  // reset restarts the clock
}

TEST(TextTable, RendersAlignedRows) {
  updec::TextTable t("demo");
  t.set_header({"method", "J"});
  t.add_row({"DP", updec::TextTable::sci(2.2e-9)});
  t.add_row({"DAL", updec::TextTable::sci(4.6e-3)});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("DP"), std::string::npos);
  EXPECT_NE(out.find("2.20e-09"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, RejectsMismatchedRow) {
  updec::TextTable t("demo");
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), updec::Error);
}

TEST(SeriesWriter, WritesCsvFiles) {
  const std::string dir = ::testing::TempDir() + "/updec_series";
  updec::SeriesWriter w(dir);
  w.add("costs", {1.0, 0.5, 0.25}, "iter", "J");
  w.flush();
  std::ifstream f(dir + "/costs.csv");
  ASSERT_TRUE(f.good());
  std::string header;
  std::getline(f, header);
  EXPECT_EQ(header, "iter,J");
}

TEST(SeriesWriter, RejectsMismatchedXY) {
  updec::SeriesWriter w;
  updec::Series s;
  s.name = "bad";
  s.x = {1.0};
  s.y = {1.0, 2.0};
  EXPECT_THROW(w.add(std::move(s)), updec::Error);
}

TEST(CliArgs, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "--grid", "30", "--paper-scale",
                        "--lr=0.01", "positional"};
  CliArgs args(6, argv);
  EXPECT_EQ(args.get_int("grid", 0), 30);
  EXPECT_TRUE(args.flag("paper-scale"));
  EXPECT_DOUBLE_EQ(args.get_double("lr", 0.0), 0.01);
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "positional");
}

TEST(CliArgs, BooleanFlagAtEnd) {
  const char* argv[] = {"prog", "--verbose"};
  CliArgs args(2, argv);
  EXPECT_TRUE(args.flag("verbose"));
  EXPECT_EQ(args.get("verbose", "x"), "");
}

TEST(CliArgs, MalformedNumericValueThrows) {
  // Regression: atoi/atof silently returned 0 here, so a typo like
  // `--iters=abc` ran the binary with iters == 0 instead of failing.
  const char* argv[] = {"prog", "--iters=abc", "--lr=0.5x", "--tol=."};
  CliArgs args(4, argv);
  EXPECT_THROW((void)args.get_int("iters", 7), updec::Error);
  EXPECT_THROW((void)args.get_double("lr", 0.0), updec::Error);
  EXPECT_THROW((void)args.get_double("tol", 0.0), updec::Error);
  // A numeric value parsed as the wrong type is also malformed.
  const char* argv2[] = {"prog", "--iters=2.5"};
  CliArgs args2(2, argv2);
  EXPECT_THROW((void)args2.get_int("iters", 7), updec::Error);
}

TEST(CliArgs, SignedValuesParse) {
  // `--lr -0.5` uses the space-separated form: the `-0.5` token must be
  // consumed as the value (it is not a `--` option) and parse as negative.
  const char* argv[] = {"prog", "--lr", "-0.5", "--delta=+3", "--n=-12"};
  CliArgs args(5, argv);
  EXPECT_DOUBLE_EQ(args.get_double("lr", 0.0), -0.5);
  EXPECT_EQ(args.get_int("delta", 0), 3);
  EXPECT_EQ(args.get_int("n", 0), -12);
}

TEST(CliArgs, BooleanFlagKeepsNumericFallback) {
  const char* argv[] = {"prog", "--fast"};
  CliArgs args(2, argv);
  EXPECT_EQ(args.get_int("fast", 9), 9);
  EXPECT_DOUBLE_EQ(args.get_double("fast", 2.5), 2.5);
}

// ---- strict environment parsing ------------------------------------------

/// Scoped setenv: restores the previous state on destruction so env tests
/// cannot leak configuration into each other.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) previous_ = old;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (previous_.empty())
      ::unsetenv(name_.c_str());
    else
      ::setenv(name_.c_str(), previous_.c_str(), 1);
  }

 private:
  std::string name_;
  std::string previous_;
};

TEST(Env, WellFormedValuesParse) {
  const ScopedEnv d("UPDEC_TEST_ENV_D", "2.5");
  const ScopedEnv i("UPDEC_TEST_ENV_I", "-7");
  const ScopedEnv u("UPDEC_TEST_ENV_U", "+42");
  EXPECT_DOUBLE_EQ(updec::env::get_double("UPDEC_TEST_ENV_D", 1.0), 2.5);
  EXPECT_EQ(updec::env::get_i64("UPDEC_TEST_ENV_I", 0), -7);
  EXPECT_EQ(updec::env::get_u64("UPDEC_TEST_ENV_U", 0u), 42u);
}

TEST(Env, MalformedValuesWarnAndKeepTheDefault) {
  // A numeric PREFIX must not silently parse: "512MB" is a typo'd budget,
  // not 512 bytes.
  const ScopedEnv d("UPDEC_TEST_ENV_D", "1e3x");
  const ScopedEnv u("UPDEC_TEST_ENV_U", "512MB");
  const ScopedEnv i("UPDEC_TEST_ENV_I", "--3");
  EXPECT_DOUBLE_EQ(updec::env::get_double("UPDEC_TEST_ENV_D", 4.5), 4.5);
  EXPECT_EQ(updec::env::get_u64("UPDEC_TEST_ENV_U", 99u), 99u);
  EXPECT_EQ(updec::env::get_i64("UPDEC_TEST_ENV_I", 12), 12);
}

TEST(Env, BooleanKnobsParseStrictly) {
  for (const char* yes : {"1", "on", "TRUE", "Yes"}) {
    const ScopedEnv b("UPDEC_TEST_ENV_B", yes);
    EXPECT_TRUE(updec::env::get_bool("UPDEC_TEST_ENV_B", false)) << yes;
  }
  for (const char* no : {"0", "off", "FALSE", "No"}) {
    const ScopedEnv b("UPDEC_TEST_ENV_B", no);
    EXPECT_FALSE(updec::env::get_bool("UPDEC_TEST_ENV_B", true)) << no;
  }
  // Garbage keeps the caller's default, whichever way it points.
  const ScopedEnv b("UPDEC_TEST_ENV_B", "maybe");
  EXPECT_TRUE(updec::env::get_bool("UPDEC_TEST_ENV_B", true));
  EXPECT_FALSE(updec::env::get_bool("UPDEC_TEST_ENV_B", false));
}

TEST(Env, UnsetAndEmptyFallBack) {
  ::unsetenv("UPDEC_TEST_ENV_MISSING");
  EXPECT_DOUBLE_EQ(updec::env::get_double("UPDEC_TEST_ENV_MISSING", 3.5), 3.5);
  EXPECT_EQ(updec::env::get_string("UPDEC_TEST_ENV_MISSING", "dflt"), "dflt");
  const ScopedEnv e("UPDEC_TEST_ENV_EMPTY", "");
  EXPECT_EQ(updec::env::get_u64("UPDEC_TEST_ENV_EMPTY", 5u), 5u);
  EXPECT_EQ(updec::env::get_string("UPDEC_TEST_ENV_EMPTY", "dflt"), "dflt");
}

}  // namespace
