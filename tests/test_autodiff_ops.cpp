// Tests for vector-valued custom tape operations: reductions, constant
// linear maps, and linear-solve VJPs (the core enabler of the DP strategy).
#include <gtest/gtest.h>

#include <cmath>

#include "autodiff/ops.hpp"
#include "la/blas.hpp"
#include "testing_common.hpp"
#include "util/rng.hpp"

namespace {

using updec::ad::Tape;
using updec::ad::Var;
using updec::ad::VarVec;
using updec::la::CsrMatrix;
using updec::la::LuFactorization;
using updec::la::Matrix;
using updec::la::SparseBuilder;
using updec::la::Vector;

// Randomness routes through the shared logged-seed stack (testing_common);
// the local names keep the historical (size, seed) call sites unchanged.
Matrix random_matrix(std::size_t n, std::uint64_t seed) {
  Matrix a = updec::testing_support::random_matrix(n, n, seed);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 3.0;  // well-conditioned
  return a;
}

Vector random_vector(std::size_t n, std::uint64_t seed) {
  return updec::testing_support::random_vector(n, seed);
}

TEST(AdOps, SumReduction) {
  Tape tape;
  VarVec v = updec::ad::make_variables(tape, Vector{1.0, 2.0, 3.0});
  Var s = updec::ad::sum(v);
  EXPECT_DOUBLE_EQ(s.value(), 6.0);
  Var y = s * s;
  tape.backward(y);
  for (const Var& x : v) EXPECT_DOUBLE_EQ(x.adjoint(), 12.0);  // 2s
}

TEST(AdOps, DotOfTwoVarVecs) {
  Tape tape;
  VarVec a = updec::ad::make_variables(tape, Vector{1.0, 2.0});
  VarVec b = updec::ad::make_variables(tape, Vector{3.0, 4.0});
  Var d = updec::ad::dot(a, b);
  EXPECT_DOUBLE_EQ(d.value(), 11.0);
  tape.backward(d);
  EXPECT_DOUBLE_EQ(a[0].adjoint(), 3.0);
  EXPECT_DOUBLE_EQ(a[1].adjoint(), 4.0);
  EXPECT_DOUBLE_EQ(b[0].adjoint(), 1.0);
  EXPECT_DOUBLE_EQ(b[1].adjoint(), 2.0);
}

TEST(AdOps, DotWithConstantWeights) {
  Tape tape;
  VarVec a = updec::ad::make_variables(tape, Vector{1.0, 2.0, 3.0});
  Var d = updec::ad::dot(a, Vector{0.5, 0.25, 0.125});
  EXPECT_DOUBLE_EQ(d.value(), 0.5 + 0.5 + 0.375);
  tape.backward(d);
  EXPECT_DOUBLE_EQ(a[0].adjoint(), 0.5);
  EXPECT_DOUBLE_EQ(a[2].adjoint(), 0.125);
}

TEST(AdOps, SpmvForwardAndVjp) {
  // y = A x, J = w . y  =>  dJ/dx = A^T w.
  SparseBuilder sb(3, 3);
  sb.add(0, 0, 2.0);
  sb.add(0, 2, 1.0);
  sb.add(1, 1, -1.0);
  sb.add(2, 0, 0.5);
  sb.add(2, 2, 3.0);
  const CsrMatrix a(sb);
  const Vector w{1.0, 2.0, 3.0};

  Tape tape;
  VarVec x = updec::ad::make_variables(tape, Vector{1.0, 1.0, 1.0});
  VarVec y = updec::ad::spmv(a, x);
  EXPECT_DOUBLE_EQ(y[0].value(), 3.0);
  EXPECT_DOUBLE_EQ(y[2].value(), 3.5);
  Var j = updec::ad::dot(y, w);
  tape.backward(j);
  const Vector expected = a.apply_transpose(w);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_NEAR(x[i].adjoint(), expected[i], 1e-14);
}

TEST(AdOps, GemvVjpMatchesFiniteDifferences) {
  const std::size_t n = 6;
  const Matrix a = random_matrix(n, 1);
  const Vector x0 = random_vector(n, 2);
  const Vector w = random_vector(n, 3);

  const auto objective = [&](const Vector& x) {
    const Vector y = updec::la::matvec(a, x);
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) s += w[i] * y[i] * y[i];
    return s;
  };

  Tape tape;
  VarVec x = updec::ad::make_variables(tape, x0);
  VarVec y = updec::ad::gemv(a, x);
  VarVec y2 = updec::ad::hadamard(y, y);
  Var j = updec::ad::dot(y2, w);
  tape.backward(j);
  EXPECT_NEAR(j.value(), objective(x0), 1e-12);

  const double h = 1e-6;
  for (std::size_t i = 0; i < n; ++i) {
    Vector xp = x0, xm = x0;
    xp[i] += h;
    xm[i] -= h;
    const double g_fd = (objective(xp) - objective(xm)) / (2 * h);
    EXPECT_NEAR(x[i].adjoint(), g_fd, 1e-5);
  }
}

TEST(AdOps, ConstantSolveVjpMatchesFiniteDifferences) {
  // x = A^{-1} b, J = ||x||^2: dJ/db = 2 A^{-T} x.
  const std::size_t n = 8;
  const Matrix a = random_matrix(n, 11);
  const Vector b0 = random_vector(n, 12);
  const LuFactorization lu(a);

  const auto objective = [&](const Vector& b) {
    const Vector x = lu.solve(b);
    return updec::la::dot(x, x);
  };

  Tape tape;
  VarVec b = updec::ad::make_variables(tape, b0);
  VarVec x = updec::ad::solve(lu, b);
  Var j = updec::ad::dot(x, x);
  tape.backward(j);
  EXPECT_NEAR(j.value(), objective(b0), 1e-10);

  const double h = 1e-6;
  for (std::size_t i = 0; i < n; ++i) {
    Vector bp = b0, bm = b0;
    bp[i] += h;
    bm[i] -= h;
    const double g_fd = (objective(bp) - objective(bm)) / (2 * h);
    EXPECT_NEAR(b[i].adjoint(), g_fd, 1e-5);
  }
}

TEST(AdOps, VariableMatrixSolveVjp) {
  // Both A and b differentiable: check dJ/dA and dJ/db against FD.
  const std::size_t n = 4;
  const Matrix a0 = random_matrix(n, 21);
  const Vector b0 = random_vector(n, 22);

  const auto objective = [&](const Matrix& a, const Vector& b) {
    const Vector x = updec::la::solve(a, b);
    return updec::la::dot(x, x);
  };

  Tape tape;
  Vector a_flat0(n * n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a_flat0[i * n + j] = a0(i, j);
  VarVec a_flat = updec::ad::make_variables(tape, a_flat0);
  VarVec b = updec::ad::make_variables(tape, b0);
  VarVec x = updec::ad::solve(a_flat, b);
  Var j = updec::ad::dot(x, x);
  tape.backward(j);

  const double h = 1e-6;
  for (std::size_t i = 0; i < n; ++i) {
    Vector bp = b0, bm = b0;
    bp[i] += h;
    bm[i] -= h;
    const double g_fd = (objective(a0, bp) - objective(a0, bm)) / (2 * h);
    EXPECT_NEAR(b[i].adjoint(), g_fd, 1e-4);
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t jj = 0; jj < n; ++jj) {
      Matrix ap = a0, am = a0;
      ap(i, jj) += h;
      am(i, jj) -= h;
      const double g_fd = (objective(ap, b0) - objective(am, b0)) / (2 * h);
      EXPECT_NEAR(a_flat[i * n + jj].adjoint(), g_fd, 1e-4);
    }
  }
}

TEST(AdOps, SolveRoundTripIdentity) {
  // x = A^{-1} (A z) must reproduce z and pass gradients through cleanly.
  const std::size_t n = 5;
  const Matrix a = random_matrix(n, 31);
  const LuFactorization lu(a);
  const Vector z0 = random_vector(n, 32);

  Tape tape;
  VarVec z = updec::ad::make_variables(tape, z0);
  VarVec az = updec::ad::gemv(a, z);
  VarVec x = updec::ad::solve(lu, az);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i].value(), z0[i], 1e-10);
  Var j = updec::ad::sum(x);
  tape.backward(j);
  // J = sum(z) so dJ/dz = 1.
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(z[i].adjoint(), 1.0, 1e-9);
}

TEST(AdOps, ElementwiseHelpers) {
  Tape tape;
  VarVec a = updec::ad::make_variables(tape, Vector{1.0, 2.0});
  VarVec b = updec::ad::make_variables(tape, Vector{3.0, 5.0});
  const VarVec s = updec::ad::add(a, b);
  const VarVec d = updec::ad::sub(a, b);
  const VarVec h = updec::ad::hadamard(a, b);
  const VarVec sc = updec::ad::scale(2.0, a);
  const VarVec ax = updec::ad::add_scaled(a, -1.0, b);
  EXPECT_DOUBLE_EQ(s[1].value(), 7.0);
  EXPECT_DOUBLE_EQ(d[0].value(), -2.0);
  EXPECT_DOUBLE_EQ(h[1].value(), 10.0);
  EXPECT_DOUBLE_EQ(sc[0].value(), 2.0);
  EXPECT_DOUBLE_EQ(ax[1].value(), -3.0);
  Var j = updec::ad::sum(h);
  tape.backward(j);
  EXPECT_DOUBLE_EQ(a[0].adjoint(), 3.0);
  EXPECT_DOUBLE_EQ(b[1].adjoint(), 2.0);
}

TEST(AdOps, StopGradientVec) {
  Tape tape;
  VarVec a = updec::ad::make_variables(tape, Vector{2.0, 3.0});
  const VarVec frozen = updec::ad::stop_gradient(a);
  Var j = updec::ad::dot(a, frozen);  // sum a_i * const(a_i)
  tape.backward(j);
  EXPECT_DOUBLE_EQ(a[0].adjoint(), 2.0);
  EXPECT_DOUBLE_EQ(a[1].adjoint(), 3.0);
}

TEST(AdOps, ValuesAndAdjointsExtraction) {
  Tape tape;
  VarVec a = updec::ad::make_variables(tape, Vector{1.5, -2.5});
  const Vector vals = updec::ad::values(a);
  EXPECT_DOUBLE_EQ(vals[0], 1.5);
  Var j = updec::ad::dot(a, a);
  tape.backward(j);
  const Vector adj = updec::ad::adjoints(a);
  EXPECT_DOUBLE_EQ(adj[0], 3.0);
  EXPECT_DOUBLE_EQ(adj[1], -5.0);
}

// Property: chained custom ops (spmv -> solve -> dot) give the textbook
// adjoint chain, across sizes.
class ChainedCustomOps : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChainedCustomOps, GradientMatchesAnalytic) {
  const std::size_t n = GetParam();
  const Matrix a = random_matrix(n, 100 + n);
  const LuFactorization lu(a);
  SparseBuilder sb(n, n);
  updec::Rng rng = updec::testing_support::test_rng(200 + n);
  for (std::size_t i = 0; i < n; ++i) {
    sb.add(i, i, 2.0 + rng.uniform());
    sb.add(i, (i + 1) % n, -rng.uniform());
  }
  const CsrMatrix m(sb);
  const Vector c0 = random_vector(n, 300 + n);
  const Vector w = random_vector(n, 400 + n);

  Tape tape;
  VarVec c = updec::ad::make_variables(tape, c0);
  VarVec b = updec::ad::spmv(m, c);
  VarVec x = updec::ad::solve(lu, b);
  Var j = updec::ad::dot(x, w);
  tape.backward(j);
  // Analytic: dJ/dc = M^T A^{-T} w.
  const Vector expected = m.apply_transpose(lu.solve_transpose(w));
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(c[i].adjoint(), expected[i], 1e-9 * (1.0 + std::abs(expected[i])));
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChainedCustomOps,
                         ::testing::Values(2, 5, 10, 25, 60));

}  // namespace
