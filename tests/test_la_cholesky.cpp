// Dedicated unit tests for la::CholeskyFactorization: solve round-trips on
// random SPD systems, agreement with LU, log-determinant consistency, and
// the not-positive-definite / dimension contracts. Randomized inputs come
// from the shared check:: generators with logged seeds.

#include <gtest/gtest.h>

#include <cmath>

#include "la/cholesky.hpp"
#include "la/lu.hpp"
#include "testing_common.hpp"
#include "util/error.hpp"

namespace {

using updec::la::CholeskyFactorization;
using updec::la::Matrix;
using updec::la::Vector;
namespace ts = updec::testing_support;

Vector matvec(const Matrix& a, const Vector& x) {
  Vector y(a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) s += a(i, j) * x[j];
    y[i] = s;
  }
  return y;
}

TEST(CholeskyFactorization, SolveRoundTripOnRandomSpd) {
  updec::Rng rng = ts::test_rng(0xc401u);
  for (int rep = 0; rep < 6; ++rep) {
    const std::size_t n = 2 + rng.uniform_index(40);
    const Matrix a = updec::check::random_spd(rng, n);
    const Vector x_true = updec::check::random_vector(rng, n);
    const Vector b = matvec(a, x_true);
    const Vector x = CholeskyFactorization(a).solve(b);
    EXPECT_TRUE(ts::vectors_near(x, x_true, 1e-8)) << "size " << n;
    EXPECT_LT(ts::relative_residual(a, x, b), 1e-9);
  }
}

TEST(CholeskyFactorization, AgreesWithLuOnRandomSpd) {
  updec::Rng rng = ts::test_rng(0xc402u);
  for (int rep = 0; rep < 6; ++rep) {
    const std::size_t n = 2 + rng.uniform_index(30);
    const Matrix a = updec::check::random_spd(rng, n);
    const Vector b = updec::check::random_vector(rng, n);
    const Vector x_chol = CholeskyFactorization(a).solve(b);
    const Vector x_lu = updec::la::solve(a, b);
    EXPECT_TRUE(ts::vectors_near(x_chol, x_lu, 1e-8))
        << "Cholesky and LU disagree on an SPD system of size " << n;
  }
}

TEST(CholeskyFactorization, LogDeterminantMatchesLu) {
  updec::Rng rng = ts::test_rng(0xc403u);
  for (int rep = 0; rep < 4; ++rep) {
    const std::size_t n = 2 + rng.uniform_index(16);
    const Matrix a = updec::check::random_spd(rng, n);
    const double log_det = CholeskyFactorization(a).log_determinant();
    const double det_lu = updec::la::LuFactorization(a).determinant();
    ASSERT_GT(det_lu, 0.0) << "SPD determinant must be positive";
    EXPECT_NEAR(log_det, std::log(det_lu), 1e-8 * (1.0 + std::abs(log_det)));
  }
}

TEST(CholeskyFactorization, HandlesModeratelyIllConditionedSpd) {
  // The graded-diagonal generator is the flat-kernel regime; Cholesky must
  // still produce a small residual (if not a small forward error).
  updec::Rng rng = ts::test_rng(0xc404u);
  const std::size_t n = 24;
  const Matrix a = updec::check::random_ill_conditioned(rng, n, 6.0);
  const Vector b = updec::check::random_vector(rng, n);
  const Vector x = CholeskyFactorization(a).solve(b);
  EXPECT_LT(ts::relative_residual(a, x, b), 1e-7);
}

TEST(CholeskyFactorization, IndefiniteMatrixThrows) {
  // Symmetric but indefinite: diag(1, -1) plus noise-free off-diagonals.
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = -1.0;
  EXPECT_THROW(CholeskyFactorization{a}, updec::Error);
}

TEST(CholeskyFactorization, SemidefiniteMatrixThrows) {
  // Rank-1 Gram matrix: positive semi-definite, but not definite.
  Matrix a(3, 3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = 1.0;
  EXPECT_THROW(CholeskyFactorization{a}, updec::Error);
}

TEST(CholeskyFactorization, ContractViolationsThrow) {
  EXPECT_THROW(CholeskyFactorization{Matrix(2, 3)}, updec::Error);

  const CholeskyFactorization empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_THROW((void)empty.solve(Vector(2)), updec::Error);
  EXPECT_THROW((void)empty.log_determinant(), updec::Error);

  updec::Rng rng = ts::test_rng(0xc405u);
  const CholeskyFactorization chol(updec::check::random_spd(rng, 4));
  EXPECT_THROW((void)chol.solve(Vector(5)), updec::Error);
}

}  // namespace
