#pragma once
/// \file omega_search.hpp
/// The two-step line-search strategy for the PINN cost weight omega
/// (section 2.3, after Mowlavi & Nabi [28]):
///   step 1: for each omega, train a (u_theta, c_theta) pair on
///           L_PDE|BC + omega * J with alternating updates;
///   step 2: freeze each c_theta, retrain a *fresh* solution network on the
///           physics-only loss, and pick the pair with the lowest J.

#include <functional>
#include <optional>

#include "control/pinn_channel.hpp"
#include "control/pinn_laplace.hpp"

namespace updec::control {

struct OmegaSearchEntry {
  double omega = 0.0;
  double step1_network_cost = 0.0;  ///< J via networks after step 1
  double step1_pde_loss = 0.0;
  double step2_network_cost = 0.0;  ///< J after the physics-only retrain
  double step2_pde_residual = 0.0;
  double reference_cost = 0.0;      ///< J(c) via the RBF solver, if given
};

struct OmegaSearchResult {
  std::vector<OmegaSearchEntry> entries;  ///< one per omega (Fig. 3c-e data)
  std::size_t best_index = 0;
  double best_omega = 0.0;
  la::Vector best_control;                ///< c_theta* at the sample locations
  std::optional<nn::Mlp> best_control_net;
};

/// Optional reference evaluator: samples of c -> "true" J via an RBF solve.
using ReferenceCost = std::function<double(const la::Vector&)>;

/// Run the search for the Laplace problem. `sample_xs` are the locations at
/// which the winning control is sampled (typically the RBF control nodes).
OmegaSearchResult laplace_omega_search(
    const PinnConfig& base, const std::vector<double>& omegas,
    const std::vector<double>& sample_xs,
    const ReferenceCost& reference = nullptr);

/// Run the search for the Navier-Stokes channel problem.
OmegaSearchResult channel_omega_search(
    const PinnConfig& base, const pc::ChannelSpec& spec, double reynolds,
    double patch_velocity, const std::vector<double>& omegas,
    const std::vector<double>& sample_ys,
    const ReferenceCost& reference = nullptr);

}  // namespace updec::control
