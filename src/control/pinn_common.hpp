#pragma once
/// \file pinn_common.hpp
/// Shared machinery of the PINN strategy (section 2.3): configuration,
/// training records, and the tape-side network evaluation helpers that give
/// exact input derivatives (forward Dual/Dual2 over reverse-mode weights).

#include <vector>

#include "autodiff/dual.hpp"
#include "autodiff/dual2.hpp"
#include "autodiff/ops.hpp"
#include "nn/mlp.hpp"

namespace updec::control {

/// Hyper-parameters of one PINN training run (Tables 1 and 2 rows).
struct PinnConfig {
  std::vector<std::size_t> u_hidden = {30, 30, 30};  ///< paper Laplace: 3x30
  std::vector<std::size_t> c_hidden = {20};
  std::size_t epochs = 1000;
  std::size_t n_interior = 800;    ///< collocation points in Omega
  std::size_t n_boundary = 48;     ///< points per boundary segment
  std::size_t batch_interior = 64;
  std::size_t batch_boundary = 32;
  double learning_rate = 1e-3;     ///< paper: 1e-3 for both problems
  double omega = 0.1;              ///< cost weight (paper Laplace: 1e-1)
  std::uint64_t seed = 0;
  bool alternating = true;         ///< alternate u/c updates (section 2.3)
  bool train_control = true;       ///< false freezes c (line-search step 2)
};

/// Per-epoch training record.
struct PinnHistory {
  std::vector<double> total_loss;
  std::vector<double> pde_loss;
  std::vector<double> boundary_loss;
  std::vector<double> cost_term;  ///< J as seen by the network
};

namespace pinn_detail {

/// Evaluate an MLP at (x, y) with tape weights and full second-order input
/// derivatives: returns one Dual2<Var> per network output.
inline std::vector<ad::Dual2<ad::Var>> eval_dual2(
    const nn::Mlp& net, std::span<const ad::Var> theta, ad::Tape& tape,
    double x, double y) {
  const ad::Var zero = tape.constant(0.0);
  const ad::Var one = tape.constant(1.0);
  const std::vector<ad::Dual2<ad::Var>> inputs = {
      {tape.constant(x), one, zero, zero, zero, zero},
      {tape.constant(y), zero, one, zero, zero, zero}};
  return net.forward<ad::Dual2<ad::Var>, ad::Var>(
      theta, std::span<const ad::Dual2<ad::Var>>(inputs),
      [&](const ad::Var& w) {
        return ad::Dual2<ad::Var>{w, zero, zero, zero, zero, zero};
      });
}

/// First-order directional evaluation: derivative channel seeded along
/// (dx, dy). Cheaper than Dual2 when only one gradient is needed.
inline std::vector<ad::Dual<ad::Var>> eval_dual1(
    const nn::Mlp& net, std::span<const ad::Var> theta, ad::Tape& tape,
    double x, double y, double dx, double dy) {
  const std::vector<ad::Dual<ad::Var>> inputs = {
      {tape.constant(x), tape.constant(dx)},
      {tape.constant(y), tape.constant(dy)}};
  return net.forward<ad::Dual<ad::Var>, ad::Var>(
      theta, std::span<const ad::Dual<ad::Var>>(inputs),
      [&](const ad::Var& w) {
        return ad::Dual<ad::Var>{w, tape.constant(0.0)};
      });
}

/// Plain value evaluation on the tape (Dirichlet penalties).
inline std::vector<ad::Var> eval_value(const nn::Mlp& net,
                                       std::span<const ad::Var> theta,
                                       ad::Tape& tape, double x, double y) {
  const std::vector<ad::Var> inputs = {tape.constant(x), tape.constant(y)};
  return net.forward<ad::Var, ad::Var>(
      theta, std::span<const ad::Var>(inputs),
      [](const ad::Var& w) { return w; });
}

/// 1-D network evaluation (control networks c_theta).
inline std::vector<ad::Var> eval_value1d(const nn::Mlp& net,
                                         std::span<const ad::Var> theta,
                                         ad::Tape& tape, double t) {
  const std::vector<ad::Var> inputs = {tape.constant(t)};
  return net.forward<ad::Var, ad::Var>(
      theta, std::span<const ad::Var>(inputs),
      [](const ad::Var& w) { return w; });
}

}  // namespace pinn_detail

}  // namespace updec::control
