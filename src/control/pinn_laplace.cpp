#include "control/pinn_laplace.hpp"

#include <cmath>
#include <numbers>

#include "pde/laplace.hpp"
#include "pointcloud/generators.hpp"

namespace updec::control {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;

std::vector<std::size_t> arch(std::size_t in,
                              const std::vector<std::size_t>& hidden,
                              std::size_t out) {
  std::vector<std::size_t> layers;
  layers.push_back(in);
  layers.insert(layers.end(), hidden.begin(), hidden.end());
  layers.push_back(out);
  return layers;
}
}  // namespace

LaplacePinn::LaplacePinn(const PinnConfig& config)
    : config_(config),
      u_net_(arch(2, config.u_hidden, 1), nn::Activation::kTanh, config.seed),
      c_net_(arch(1, config.c_hidden, 1), nn::Activation::kTanh,
             config.seed + 1),
      rng_(config.seed + 2) {
  // Scattered interior collocation points (training happens on a cloud,
  // testing on the regular grid, as in section 3.1).
  interior_points_.reserve(config_.n_interior);
  std::uint64_t index = config_.seed + 17;
  while (interior_points_.size() < config_.n_interior) {
    const pc::Vec2 p = pc::halton2(index++);
    if (p.x < 0.02 || p.x > 0.98 || p.y < 0.02 || p.y > 0.98) continue;
    interior_points_.push_back(p);
  }
  // Boundary collocation sets.
  for (std::size_t i = 0; i < config_.n_boundary; ++i) {
    const double t =
        static_cast<double>(i) / static_cast<double>(config_.n_boundary - 1);
    bottom_x_.push_back(t);
    side_y_.push_back(t);
    top_x_.push_back(t);
  }
  // Cost quadrature: uniform trapezoid along the top wall.
  const std::size_t nq = 64;
  quad_x_.resize(nq);
  quad_w_.assign(nq, 1.0 / static_cast<double>(nq - 1));
  for (std::size_t i = 0; i < nq; ++i)
    quad_x_[i] = static_cast<double>(i) / static_cast<double>(nq - 1);
  quad_w_.front() *= 0.5;
  quad_w_.back() *= 0.5;

  schedule_ = std::make_shared<optim::PaperSchedule>(config_.learning_rate,
                                                     config_.epochs);
  adam_u_ = std::make_unique<optim::Adam>(schedule_);
  adam_c_ = std::make_unique<optim::Adam>(schedule_);
}

void LaplacePinn::reset_solution_network(std::uint64_t seed) {
  u_net_.reinitialize(seed);
  adam_u_->reset();
  adam_c_->reset();
  history_ = PinnHistory{};
}

LaplacePinn::EpochLosses LaplacePinn::epoch_step(std::size_t epoch) {
  using ad::Var;
  namespace pd = pinn_detail;
  ad::Tape& tape = tape_;
  tape.clear();
  const ad::VarVec theta_u =
      ad::make_variables(tape, la::Vector(u_net_.parameters()));
  const ad::VarVec theta_c =
      ad::make_variables(tape, la::Vector(c_net_.parameters()));
  const std::span<const Var> tu(theta_u);
  const std::span<const Var> tc(theta_c);

  // ---- PDE residual on an interior mini-batch ----
  Var pde_loss = tape.constant(0.0);
  const auto batch = rng_.sample_without_replacement(
      interior_points_.size(),
      std::min(config_.batch_interior, interior_points_.size()));
  for (const std::size_t k : batch) {
    const auto u = pd::eval_dual2(u_net_, tu, tape, interior_points_[k].x,
                                  interior_points_[k].y);
    const Var r = u[0].hxx + u[0].hyy;
    pde_loss = pde_loss + r * r;
  }
  pde_loss = pde_loss * (1.0 / static_cast<double>(batch.size()));

  // ---- boundary penalties ----
  Var bc_loss = tape.constant(0.0);
  const std::size_t nb = std::min(config_.batch_boundary, bottom_x_.size());
  const auto bidx = rng_.sample_without_replacement(bottom_x_.size(), nb);
  for (const std::size_t k : bidx) {
    // Bottom Dirichlet: u(x, 0) = sin(2 pi x).
    const auto ub = pd::eval_value(u_net_, tu, tape, bottom_x_[k], 0.0);
    const Var db = ub[0] - std::sin(kTwoPi * bottom_x_[k]);
    bc_loss = bc_loss + db * db;
    // Top coupling: u(x, 1) = c_theta(x).
    const auto ut = pd::eval_value(u_net_, tu, tape, top_x_[k], 1.0);
    const auto ct = pd::eval_value1d(c_net_, tc, tape, top_x_[k]);
    const Var dt = ut[0] - ct[0];
    bc_loss = bc_loss + dt * dt;
    // Periodic matching of values and x-derivatives on the sides.
    const double y = side_y_[k];
    const auto l0 = pd::eval_dual1(u_net_, tu, tape, 0.0, y, 1.0, 0.0);
    const auto l1 = pd::eval_dual1(u_net_, tu, tape, 1.0, y, 1.0, 0.0);
    const Var dv = l0[0].v - l1[0].v;
    const Var dg = l0[0].d - l1[0].d;
    bc_loss = bc_loss + dv * dv + dg * dg;
  }
  bc_loss = bc_loss * (1.0 / static_cast<double>(nb));

  // ---- cost objective J(c_theta) via the network flux ----
  Var cost = tape.constant(0.0);
  for (std::size_t i = 0; i < quad_x_.size(); ++i) {
    const auto uy =
        pd::eval_dual1(u_net_, tu, tape, quad_x_[i], 1.0, 0.0, 1.0);
    const Var d = uy[0].d - pde::LaplaceSolver::target_flux(quad_x_[i]);
    cost = cost + quad_w_[i] * (d * d);
  }

  Var total = pde_loss + bc_loss + config_.omega * cost;
  tape.backward(total);

  la::Vector grad_u = ad::adjoints(theta_u);
  la::Vector grad_c = ad::adjoints(theta_c);

  // Alternating updates (section 2.3): even epochs move u_theta, odd move
  // c_theta; joint updates if disabled. Step 2 freezes the control.
  la::Vector params_u(u_net_.parameters());
  const bool update_u = !config_.alternating || epoch % 2 == 0 ||
                        !config_.train_control;
  const bool update_c = config_.train_control &&
                        (!config_.alternating || epoch % 2 == 1);
  if (update_u) {
    adam_u_->step(params_u, grad_u, epoch);
    u_net_.set_parameters(params_u.std());
  }
  if (update_c) {
    la::Vector params_c(c_net_.parameters());
    adam_c_->step(params_c, grad_c, epoch);
    c_net_.set_parameters(params_c.std());
  }
  return {total.value(), pde_loss.value(), bc_loss.value(), cost.value()};
}

void LaplacePinn::train() {
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    const EpochLosses losses = epoch_step(epoch);
    history_.total_loss.push_back(losses.total);
    history_.pde_loss.push_back(losses.pde);
    history_.boundary_loss.push_back(losses.boundary);
    history_.cost_term.push_back(losses.cost);
  }
}

la::Vector LaplacePinn::control_at(const std::vector<double>& xs) const {
  la::Vector c(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i)
    c[i] = c_net_.forward(std::vector<double>{xs[i]})[0];
  return c;
}

double LaplacePinn::network_cost() const {
  // Flux of the network along the top wall via first-order duals (double).
  double j = 0.0;
  for (std::size_t i = 0; i < quad_x_.size(); ++i) {
    const std::vector<ad::Dual<double>> in = {
        ad::dual_constant(quad_x_[i]), ad::dual_input(1.0)};
    const auto out = u_net_.forward<ad::Dual<double>, double>(
        std::span<const double>(u_net_.parameters()),
        std::span<const ad::Dual<double>>(in),
        [](double w) { return ad::dual_constant(w); });
    const double d = out[0].d - pde::LaplaceSolver::target_flux(quad_x_[i]);
    j += quad_w_[i] * d * d;
  }
  return j;
}

double LaplacePinn::pde_residual() const {
  double total = 0.0;
  std::size_t count = 0;
  for (double x = 0.1; x < 0.95; x += 0.2) {
    for (double y = 0.1; y < 0.95; y += 0.2) {
      std::vector<ad::Dual2<double>> in = {ad::dual2_x(x), ad::dual2_y(y)};
      const auto out = u_net_.forward<ad::Dual2<double>, double>(
          std::span<const double>(u_net_.parameters()),
          std::span<const ad::Dual2<double>>(in),
          [](double w) { return ad::dual2_constant(w); });
      const double r = out[0].hxx + out[0].hyy;
      total += r * r;
      ++count;
    }
  }
  return total / static_cast<double>(count);
}

}  // namespace updec::control
