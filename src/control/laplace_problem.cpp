#include "control/laplace_problem.hpp"

#include <cmath>

#include "autodiff/ops.hpp"
#include "la/blas.hpp"

namespace updec::control {

using pde::LaplaceSolver;

LaplaceControlProblem::LaplaceControlProblem(std::size_t grid_n,
                                             const rbf::Kernel& kernel,
                                             int poly_degree)
    : solver_(grid_n, kernel, poly_degree) {}

double LaplaceControlProblem::cost(const la::Vector& control) const {
  return cost_from_flux(solver_.flux_top(solver_.solve(control)));
}

double LaplaceControlProblem::cost_from_flux(const la::Vector& flux) const {
  const auto& w = solver_.quadrature_weights();
  const auto& xs = solver_.top_x();
  double j = 0.0;
  for (std::size_t i = 0; i < flux.size(); ++i) {
    const double d = flux[i] - LaplaceSolver::target_flux(xs[i]);
    j += w[i] * d * d;
  }
  return j;
}

la::Vector LaplaceControlProblem::analytic_control() const {
  const std::vector<double> xs = solver_.control_x();
  la::Vector c(control_size());
  for (std::size_t i = 0; i < c.size(); ++i)
    c[i] = LaplaceSolver::analytic_control(xs[i]);
  return c;
}

double LaplaceControlProblem::state_error(const la::Vector& control) const {
  const la::Vector u = solver_.state_at_nodes(solver_.solve(control));
  double max_err = 0.0;
  for (std::size_t i = 0; i < solver_.cloud().size(); ++i) {
    const auto p = solver_.cloud().node(i).pos;
    max_err = std::max(max_err,
                       std::abs(u[i] - LaplaceSolver::analytic_state(p.x, p.y)));
  }
  return max_err;
}

namespace {

/// DP: record rhs -> LU solve -> flux -> J on the tape, one reverse sweep.
class LaplaceDpStrategy final : public GradientStrategy {
 public:
  explicit LaplaceDpStrategy(std::shared_ptr<const LaplaceControlProblem> p)
      : problem_(std::move(p)) {}

  [[nodiscard]] std::string name() const override { return "DP"; }

  double value_and_gradient(const la::Vector& control,
                            la::Vector& gradient) override {
    const auto& solver = problem_->solver();
    tape_.clear();
    const ad::VarVec c = ad::make_variables(tape_, control);
    const ad::VarVec coeffs = solver.solve(tape_, c);
    const ad::VarVec flux = solver.flux_top(coeffs);
    const auto& w = solver.quadrature_weights();
    const auto& xs = solver.top_x();
    ad::Var j = tape_.constant(0.0);
    for (std::size_t i = 0; i < flux.size(); ++i) {
      const ad::Var d = flux[i] - LaplaceSolver::target_flux(xs[i]);
      j = j + w[i] * (d * d);
    }
    tape_.backward(j);
    gradient = ad::adjoints(c);
    peak_tape_bytes_ = std::max(peak_tape_bytes_, tape_.memory_bytes());
    return j.value();
  }

  [[nodiscard]] std::size_t scratch_bytes() const override {
    return peak_tape_bytes_;
  }

 private:
  std::shared_ptr<const LaplaceControlProblem> problem_;
  ad::Tape tape_;
  std::size_t peak_tape_bytes_ = 0;
};

/// DAL: solve the direct problem, then the continuous adjoint
/// Lap(lambda) = 0 with lambda(x,1) = 2 (du/dy - target), lambda = 0 at the
/// bottom and x-periodic sides; then grad J(x) = d(lambda)/dy (x, 1).
/// Both solves share the same collocation LU (the adjoint problem has the
/// same operator and boundary-row structure).
class LaplaceDalStrategy final : public GradientStrategy {
 public:
  explicit LaplaceDalStrategy(std::shared_ptr<const LaplaceControlProblem> p)
      : problem_(std::move(p)) {}

  [[nodiscard]] std::string name() const override { return "DAL"; }

  double value_and_gradient(const la::Vector& control,
                            la::Vector& gradient) override {
    const auto& solver = problem_->solver();
    const auto& colloc = solver.collocation();
    // Direct solve.
    const la::Vector coeffs = solver.solve(control);
    const la::Vector flux = solver.flux_top(coeffs);
    const double j = problem_->cost_from_flux(flux);

    // Adjoint solve: Dirichlet data 2 (flux - target) on the top wall, zero
    // on the bottom, zero on the periodic matching rows.
    la::Vector rhs(colloc.system_size(), 0.0);
    const auto& top = solver.top_nodes();
    const auto& xs = solver.top_x();
    for (std::size_t i = 0; i < top.size(); ++i)
      rhs[top[i]] = 2.0 * (flux[i] - LaplaceSolver::target_flux(xs[i]));
    // Guarded adjoint solve: shares the collocation NaN-recovery path.
    const la::Vector adj_coeffs = colloc.solve(rhs);

    // Continuous gradient d(lambda)/dy on the top wall, weighted by the
    // quadrature to approximate the discrete gradient DP computes. The two
    // periodic corners share one control DOF, so their contributions sum.
    const la::Vector lambda_flux = solver.flux_top(adj_coeffs);
    gradient = la::Vector(problem_->control_size(), 0.0);
    const auto& w = solver.quadrature_weights();
    for (std::size_t i = 0; i < top.size(); ++i)
      gradient[solver.control_index(i)] += w[i] * lambda_flux[i];
    return j;
  }

 private:
  std::shared_ptr<const LaplaceControlProblem> problem_;
};

/// FD: central differences. All 2n probes (and the base point) go through
/// one batched multi-RHS solve against the shared LU -- one pass over the
/// factorisation for the whole gradient instead of 2n+1 per-column sweeps.
class LaplaceFdStrategy final : public GradientStrategy {
 public:
  LaplaceFdStrategy(std::shared_ptr<const LaplaceControlProblem> p,
                    double step)
      : problem_(std::move(p)), step_(step) {}

  [[nodiscard]] std::string name() const override { return "FD"; }

  double value_and_gradient(const la::Vector& control,
                            la::Vector& gradient) override {
    const auto& solver = problem_->solver();
    const std::size_t n = control.size();
    // Columns: base point, then +step / -step probes per component.
    la::Matrix probes(n, 2 * n + 1);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t c = 0; c < probes.cols(); ++c)
        probes(i, c) = control[i];
    for (std::size_t i = 0; i < n; ++i) {
      probes(i, 1 + 2 * i) += step_;
      probes(i, 2 + 2 * i) -= step_;
    }
    const la::Matrix flux = solver.flux_top_many(solver.solve_many(probes));
    la::Vector flux_col(flux.rows());
    const auto cost_of_column = [&](std::size_t c) {
      for (std::size_t r = 0; r < flux.rows(); ++r) flux_col[r] = flux(r, c);
      return problem_->cost_from_flux(flux_col);
    };
    const double j = cost_of_column(0);
    gradient.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double jp = cost_of_column(1 + 2 * i);
      const double jm = cost_of_column(2 + 2 * i);
      gradient[i] = (jp - jm) / (2.0 * step_);
    }
    return j;
  }

 private:
  std::shared_ptr<const LaplaceControlProblem> problem_;
  double step_;
};

}  // namespace

std::unique_ptr<GradientStrategy> make_laplace_dp(
    std::shared_ptr<const LaplaceControlProblem> problem) {
  return std::make_unique<LaplaceDpStrategy>(std::move(problem));
}

std::unique_ptr<GradientStrategy> make_laplace_dal(
    std::shared_ptr<const LaplaceControlProblem> problem) {
  return std::make_unique<LaplaceDalStrategy>(std::move(problem));
}

std::unique_ptr<GradientStrategy> make_laplace_fd(
    std::shared_ptr<const LaplaceControlProblem> problem, double step) {
  return std::make_unique<LaplaceFdStrategy>(std::move(problem), step);
}

}  // namespace updec::control
