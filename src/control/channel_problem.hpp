#pragma once
/// \file channel_problem.hpp
/// The Navier-Stokes inflow-control problem of section 3.2: find the inlet
/// velocity profile that produces a parabolic outflow despite the
/// blowing/suction cross-flow. Cost of eq. (11):
///   J = 1/2 int_0^Ly ( |u(Lx,y) - 4 y (Ly-y)/Ly^2|^2 + |v(Lx,y)|^2 ) dy.
///
/// Strategies:
///  * DP  -- reverse tape through the whole k-refinement projection rollout,
///  * DAL -- continuous adjoint Navier-Stokes equations marched to steady
///           state with the same projection machinery (the scheme whose
///           gradient quality collapses at Re = 100 in the paper),
///  * FD  -- central finite differences (footnote 11).

#include <memory>

#include "control/problem.hpp"
#include "pde/channel_flow.hpp"

namespace updec::control {

class ChannelFlowControlProblem final : public ControlProblem {
 public:
  /// The problem owns its cloud and solver.
  ChannelFlowControlProblem(const pc::ChannelSpec& spec,
                            const rbf::Kernel& kernel,
                            const pde::ChannelFlowConfig& config);

  [[nodiscard]] std::string name() const override { return "navier-stokes"; }
  [[nodiscard]] std::size_t control_size() const override {
    return solver_->inlet_nodes().size();
  }
  /// Paper: initial inflow guess 4 y (Ly - y) / Ly^2.
  [[nodiscard]] la::Vector initial_control() const override {
    return solver_->parabolic_inflow();
  }
  [[nodiscard]] double cost(const la::Vector& control) const override;

  /// Cost of an already-computed flow state.
  [[nodiscard]] double cost_of_flow(const pde::Flow& flow) const;

  /// Outflow u-profile for a control (Fig. 4d / Fig. 1 series).
  [[nodiscard]] la::Vector outflow_profile(const la::Vector& control) const;

  [[nodiscard]] const pde::ChannelFlowSolver& solver() const {
    return *solver_;
  }
  [[nodiscard]] const pc::PointCloud& cloud() const { return cloud_; }

 private:
  pc::PointCloud cloud_;
  const rbf::Kernel* kernel_;
  std::unique_ptr<pde::ChannelFlowSolver> solver_;
};

/// \param smoothing Tikhonov weight alpha on sum (c_{q+1} - c_q)^2 / dy:
///        section 4 of the paper suggests penalising the control's
///        variations to cure DP's rough profiles but refrains for fairness;
///        0 (the default) reproduces the paper's setting. The returned cost
///        is always the raw J; the gradient includes the penalty.
std::unique_ptr<GradientStrategy> make_channel_dp(
    std::shared_ptr<const ChannelFlowControlProblem> problem,
    double smoothing = 0.0);
/// Memory-lean DP: tapes only the final Picard refinement (approximate
/// gradient, tape memory ~1/k of full DP). See
/// ChannelFlowSolver::solve_last_refinement.
std::unique_ptr<GradientStrategy> make_channel_dp_truncated(
    std::shared_ptr<const ChannelFlowControlProblem> problem);

std::unique_ptr<GradientStrategy> make_channel_dal(
    std::shared_ptr<const ChannelFlowControlProblem> problem);
std::unique_ptr<GradientStrategy> make_channel_fd(
    std::shared_ptr<const ChannelFlowControlProblem> problem,
    double step = 1e-5);

}  // namespace updec::control
