#include "control/pinn_channel.hpp"

#include <cmath>
#include <numbers>

namespace updec::control {

namespace {
std::vector<std::size_t> arch(std::size_t in,
                              const std::vector<std::size_t>& hidden,
                              std::size_t out) {
  std::vector<std::size_t> layers;
  layers.push_back(in);
  layers.insert(layers.end(), hidden.begin(), hidden.end());
  layers.push_back(out);
  return layers;
}
}  // namespace

ChannelPinn::ChannelPinn(const PinnConfig& config, const pc::ChannelSpec& spec,
                         double reynolds, double patch_velocity)
    : config_(config),
      spec_(spec),
      reynolds_(reynolds),
      patch_velocity_(patch_velocity),
      u_net_(arch(2, config.u_hidden, 3), nn::Activation::kTanh, config.seed),
      c_net_(arch(1, config.c_hidden, 1), nn::Activation::kTanh,
             config.seed + 1),
      rng_(config.seed + 2) {
  // Scattered interior collocation points.
  interior_points_.reserve(config_.n_interior);
  std::uint64_t index = config_.seed + 31;
  while (interior_points_.size() < config_.n_interior) {
    pc::Vec2 p = pc::halton2(index++);
    p.x *= spec_.lx;
    p.y *= spec_.ly;
    if (p.x < 0.01 || p.x > spec_.lx - 0.01 || p.y < 0.01 ||
        p.y > spec_.ly - 0.01)
      continue;
    interior_points_.push_back(p);
  }
  for (std::size_t i = 0; i < config_.n_boundary; ++i) {
    const double t =
        static_cast<double>(i) / static_cast<double>(config_.n_boundary - 1);
    inlet_y_.push_back(t * spec_.ly);
    wall_x_.push_back(t * spec_.lx);
    outlet_y_.push_back(t * spec_.ly);
  }
  // Outlet quadrature (trapezoid over y).
  const std::size_t nq = 48;
  quad_y_.resize(nq);
  quad_w_.assign(nq, spec_.ly / static_cast<double>(nq - 1));
  for (std::size_t i = 0; i < nq; ++i)
    quad_y_[i] = spec_.ly * static_cast<double>(i) / static_cast<double>(nq - 1);
  quad_w_.front() *= 0.5;
  quad_w_.back() *= 0.5;

  schedule_ = std::make_shared<optim::PaperSchedule>(config_.learning_rate,
                                                     config_.epochs);
  adam_u_ = std::make_unique<optim::Adam>(schedule_);
  adam_c_ = std::make_unique<optim::Adam>(schedule_);
}

double ChannelPinn::target_outflow(double y) const {
  return 4.0 * y * (spec_.ly - y) / (spec_.ly * spec_.ly);
}

double ChannelPinn::patch_v(double x, bool bottom) const {
  const double start = bottom ? spec_.blow_start : spec_.suction_start;
  const double end = bottom ? spec_.blow_end : spec_.suction_end;
  const double t = (x - start) / (end - start);
  if (t <= 0.0 || t >= 1.0) return 0.0;
  const double s = std::sin(std::numbers::pi * t);
  return patch_velocity_ * s * s;
}

void ChannelPinn::reset_solution_network(std::uint64_t seed) {
  u_net_.reinitialize(seed);
  adam_u_->reset();
  adam_c_->reset();
  history_ = PinnHistory{};
}

ChannelPinn::EpochLosses ChannelPinn::epoch_step(std::size_t epoch) {
  using ad::Var;
  namespace pd = pinn_detail;
  ad::Tape& tape = tape_;
  tape.clear();
  const ad::VarVec theta_u =
      ad::make_variables(tape, la::Vector(u_net_.parameters()));
  const ad::VarVec theta_c =
      ad::make_variables(tape, la::Vector(c_net_.parameters()));
  const std::span<const Var> tu(theta_u);
  const std::span<const Var> tc(theta_c);
  const double nu = 1.0 / reynolds_;

  // ---- NS residuals on an interior mini-batch ----
  Var pde_loss = tape.constant(0.0);
  const auto batch = rng_.sample_without_replacement(
      interior_points_.size(),
      std::min(config_.batch_interior, interior_points_.size()));
  for (const std::size_t k : batch) {
    const auto out = pd::eval_dual2(u_net_, tu, tape, interior_points_[k].x,
                                    interior_points_[k].y);
    const auto& u = out[0];
    const auto& v = out[1];
    const auto& p = out[2];
    const Var rx = u.v * u.gx + v.v * u.gy + p.gx - nu * (u.hxx + u.hyy);
    const Var ry = u.v * v.gx + v.v * v.gy + p.gy - nu * (v.hxx + v.hyy);
    const Var rc = u.gx + v.gy;
    pde_loss = pde_loss + rx * rx + ry * ry + rc * rc;
  }
  pde_loss = pde_loss * (1.0 / static_cast<double>(batch.size()));

  // ---- boundary penalties ----
  Var bc_loss = tape.constant(0.0);
  const std::size_t nb = std::min(config_.batch_boundary, wall_x_.size());
  const auto bidx = rng_.sample_without_replacement(wall_x_.size(), nb);
  for (const std::size_t k : bidx) {
    // Inlet: u = c_theta(y), v = 0.
    const double yi = inlet_y_[k];
    const auto in_val = pd::eval_value(u_net_, tu, tape, 0.0, yi);
    const auto c_val = pd::eval_value1d(c_net_, tc, tape, yi);
    const Var diu = in_val[0] - c_val[0];
    bc_loss = bc_loss + diu * diu + in_val[1] * in_val[1];
    // Walls: no-slip u, prescribed v (patch bumps).
    const double xw = wall_x_[k];
    const auto bot = pd::eval_value(u_net_, tu, tape, xw, 0.0);
    const auto top = pd::eval_value(u_net_, tu, tape, xw, spec_.ly);
    const Var dbv = bot[1] - patch_v(xw, true);
    const Var dtv = top[1] - patch_v(xw, false);
    bc_loss = bc_loss + bot[0] * bot[0] + dbv * dbv + top[0] * top[0] +
              dtv * dtv;
    // Outlet: p = 0 (Dirichlet) and homogeneous Neumann du/dx = dv/dx = 0.
    const double yo = outlet_y_[k];
    const auto ox = pd::eval_dual1(u_net_, tu, tape, spec_.lx, yo, 1.0, 0.0);
    bc_loss = bc_loss + ox[2].v * ox[2].v + ox[0].d * ox[0].d +
              ox[1].d * ox[1].d;
  }
  bc_loss = bc_loss * (1.0 / static_cast<double>(nb));

  // ---- cost objective J on the outlet quadrature ----
  Var cost = tape.constant(0.0);
  for (std::size_t i = 0; i < quad_y_.size(); ++i) {
    const auto out =
        pd::eval_value(u_net_, tu, tape, spec_.lx, quad_y_[i]);
    const Var du = out[0] - target_outflow(quad_y_[i]);
    const Var dv = out[1];
    cost = cost + 0.5 * quad_w_[i] * (du * du + dv * dv);
  }

  Var total = pde_loss + bc_loss + config_.omega * cost;
  tape.backward(total);

  la::Vector grad_u = ad::adjoints(theta_u);
  la::Vector grad_c = ad::adjoints(theta_c);
  const bool update_u = !config_.alternating || epoch % 2 == 0 ||
                        !config_.train_control;
  const bool update_c = config_.train_control &&
                        (!config_.alternating || epoch % 2 == 1);
  if (update_u) {
    la::Vector params_u(u_net_.parameters());
    adam_u_->step(params_u, grad_u, epoch);
    u_net_.set_parameters(params_u.std());
  }
  if (update_c) {
    la::Vector params_c(c_net_.parameters());
    adam_c_->step(params_c, grad_c, epoch);
    c_net_.set_parameters(params_c.std());
  }
  return {total.value(), pde_loss.value(), bc_loss.value(), cost.value()};
}

void ChannelPinn::train() {
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    const EpochLosses losses = epoch_step(epoch);
    history_.total_loss.push_back(losses.total);
    history_.pde_loss.push_back(losses.pde);
    history_.boundary_loss.push_back(losses.boundary);
    history_.cost_term.push_back(losses.cost);
  }
}

la::Vector ChannelPinn::control_at(const std::vector<double>& ys) const {
  la::Vector c(ys.size());
  for (std::size_t i = 0; i < ys.size(); ++i)
    c[i] = c_net_.forward(std::vector<double>{ys[i]})[0];
  return c;
}

la::Vector ChannelPinn::outflow_at(const std::vector<double>& ys) const {
  la::Vector u(ys.size());
  for (std::size_t i = 0; i < ys.size(); ++i)
    u[i] = u_net_.forward(std::vector<double>{spec_.lx, ys[i]})[0];
  return u;
}

double ChannelPinn::network_cost() const {
  double j = 0.0;
  for (std::size_t i = 0; i < quad_y_.size(); ++i) {
    const auto out =
        u_net_.forward(std::vector<double>{spec_.lx, quad_y_[i]});
    const double du = out[0] - target_outflow(quad_y_[i]);
    j += 0.5 * quad_w_[i] * (du * du + out[1] * out[1]);
  }
  return j;
}

double ChannelPinn::pde_residual() const {
  const double nu = 1.0 / reynolds_;
  double total = 0.0;
  std::size_t count = 0;
  for (double x = 0.1; x < spec_.lx - 0.05; x += 0.25) {
    for (double y = 0.1; y < spec_.ly - 0.05; y += 0.2) {
      std::vector<ad::Dual2<double>> in = {ad::dual2_x(x), ad::dual2_y(y)};
      const auto out = u_net_.forward<ad::Dual2<double>, double>(
          std::span<const double>(u_net_.parameters()),
          std::span<const ad::Dual2<double>>(in),
          [](double w) { return ad::dual2_constant(w); });
      const auto& u = out[0];
      const auto& v = out[1];
      const auto& p = out[2];
      const double rx =
          u.v * u.gx + v.v * u.gy + p.gx - nu * (u.hxx + u.hyy);
      const double ry =
          u.v * v.gx + v.v * v.gy + p.gy - nu * (v.hxx + v.hyy);
      const double rc = u.gx + v.gy;
      total += rx * rx + ry * ry + rc * rc;
      ++count;
    }
  }
  return total / static_cast<double>(count);
}

}  // namespace updec::control
