#include "control/driver.hpp"

#include <memory>

#include "util/log.hpp"
#include "util/memory.hpp"
#include "util/timer.hpp"

namespace updec::control {

DriverResult optimize_from(la::Vector control, GradientStrategy& strategy,
                           const DriverOptions& options) {
  const Stopwatch watch;
  DriverResult result;
  result.control = std::move(control);
  result.cost_history.reserve(options.iterations);

  auto schedule = std::make_shared<optim::PaperSchedule>(
      options.initial_learning_rate, options.iterations);
  optim::Adam adam(schedule);

  la::Vector gradient(result.control.size());
  for (std::size_t it = 0; it < options.iterations; ++it) {
    const double j = strategy.value_and_gradient(result.control, gradient);
    result.cost_history.push_back(j);
    if (options.gradient_clip > 0.0)
      optim::clip_by_norm(gradient, options.gradient_clip);
    adam.step(result.control, gradient, it);
    ++result.iterations;
    if (options.verbose && (it % 50 == 0 || it + 1 == options.iterations))
      log_info() << strategy.name() << " iteration " << it << ": J = " << j;
  }
  result.final_cost = result.cost_history.empty()
                          ? 0.0
                          : result.cost_history.back();
  result.seconds = watch.seconds();
  result.peak_rss_bytes = peak_rss_bytes();
  return result;
}

DriverResult optimize(const ControlProblem& problem,
                      GradientStrategy& strategy,
                      const DriverOptions& options) {
  return optimize_from(problem.initial_control(), strategy, options);
}

}  // namespace updec::control
