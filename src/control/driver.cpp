#include "control/driver.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ios>
#include <limits>
#include <memory>
#include <string>
#include <utility>

#include "la/blas.hpp"
#include "la/robust_solve.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"
#include "util/log.hpp"
#include "util/memory.hpp"
#include "util/metrics.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace updec::control {

namespace {

/// Multiplies a base schedule by a mutable scale factor. Divergence
/// recovery shrinks the scale (options.recovery_lr_decay) without touching
/// the paper schedule's breakpoints, so the 50%/75% drops still happen at
/// the same iteration indices.
class ScaledSchedule final : public optim::LrSchedule {
 public:
  explicit ScaledSchedule(std::shared_ptr<const optim::LrSchedule> base)
      : base_(std::move(base)) {}

  [[nodiscard]] double rate(std::size_t iteration) const override {
    return scale_ * base_->rate(iteration);
  }

  void set_scale(double s) { scale_ = s; }
  [[nodiscard]] double scale() const { return scale_; }

 private:
  std::shared_ptr<const optim::LrSchedule> base_;
  double scale_ = 1.0;
};

/// Hexfloat round-trips doubles exactly; resumed runs must replay the
/// uninterrupted trajectory bit-for-bit.
void write_values(std::ostream& os, const std::vector<double>& v) {
  os << v.size() << std::hexfloat;
  for (const double x : v) os << ' ' << x;
  os << std::defaultfloat << '\n';
}

/// operator>> cannot parse hexfloat back (the num_get grammar stops at the
/// 'x'), so read a token and hand it to strtod, which can.
bool read_double(std::istream& is, double& out) {
  std::string token;
  if (!(is >> token)) return false;
  char* end = nullptr;
  out = std::strtod(token.c_str(), &end);
  return end == token.c_str() + token.size() && !token.empty();
}

bool read_values(std::istream& is, std::vector<double>& v) {
  std::size_t n = 0;
  if (!(is >> n)) return false;
  v.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    if (!read_double(is, v[i])) return false;
  return true;
}

constexpr const char* kCheckpointMagic = "updec-checkpoint";
// v2 adds grad_norms + iter_seconds so a resumed DriverResult's
// per-iteration arrays stay aligned with cost_history; v1 checkpoints are
// still readable (the missing arrays are zero-backfilled).
constexpr int kCheckpointVersion = 2;

/// Write the checkpoint to `path + ".tmp"` and rename it into place, so a
/// crash mid-write never corrupts the previous checkpoint.
void write_checkpoint(const std::string& path, std::size_t next_iteration,
                      double lr_scale, std::size_t recoveries,
                      const DriverResult& result,
                      const optim::Optimizer& optimizer) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp);
    UPDEC_REQUIRE(os.good(), "cannot open checkpoint file " + tmp);
    os << kCheckpointMagic << " v" << kCheckpointVersion << '\n';
    os << "iteration " << next_iteration << '\n';
    os << "recoveries " << recoveries << '\n';
    os << "lr_scale " << std::hexfloat << lr_scale << std::defaultfloat
       << '\n';
    os << "control ";
    write_values(os, result.control.std());
    os << "history ";
    write_values(os, result.cost_history);
    os << "grad_norms ";
    write_values(os, result.grad_norm_history);
    os << "iter_seconds ";
    write_values(os, result.iteration_seconds);
    optimizer.save_state(os);
    UPDEC_REQUIRE(os.good(), "checkpoint write failed: " + tmp);
  }
  UPDEC_REQUIRE(std::rename(tmp.c_str(), path.c_str()) == 0,
                "cannot rename checkpoint " + tmp + " -> " + path);
}

struct Checkpoint {
  std::size_t iteration = 0;
  std::size_t recoveries = 0;
  double lr_scale = 1.0;
  la::Vector control;
  std::vector<double> history;
  std::vector<double> grad_norms;
  std::vector<double> iter_seconds;
};

/// Parse the header + vectors; leaves `is` positioned at the optimiser
/// state so the caller can hand it to Optimizer::load_state().
Checkpoint read_checkpoint_header(std::istream& is, const std::string& path) {
  Checkpoint cp;
  std::string magic, version, key;
  UPDEC_REQUIRE((is >> magic >> version) && magic == kCheckpointMagic &&
                    (version == "v1" || version == "v2"),
                "not a v1/v2 updec checkpoint: " + path);
  UPDEC_REQUIRE((is >> key >> cp.iteration) && key == "iteration",
                "malformed checkpoint (iteration): " + path);
  UPDEC_REQUIRE((is >> key >> cp.recoveries) && key == "recoveries",
                "malformed checkpoint (recoveries): " + path);
  UPDEC_REQUIRE((is >> key) && key == "lr_scale" &&
                    read_double(is, cp.lr_scale),
                "malformed checkpoint (lr_scale): " + path);
  UPDEC_REQUIRE((is >> key) && key == "control" &&
                    read_values(is, cp.control.std()),
                "malformed checkpoint (control): " + path);
  UPDEC_REQUIRE((is >> key) && key == "history" &&
                    read_values(is, cp.history),
                "malformed checkpoint (history): " + path);
  if (version == "v2") {
    UPDEC_REQUIRE((is >> key) && key == "grad_norms" &&
                      read_values(is, cp.grad_norms),
                  "malformed checkpoint (grad_norms): " + path);
    UPDEC_REQUIRE((is >> key) && key == "iter_seconds" &&
                      read_values(is, cp.iter_seconds),
                  "malformed checkpoint (iter_seconds): " + path);
    UPDEC_REQUIRE(cp.grad_norms.size() == cp.history.size() &&
                      cp.iter_seconds.size() == cp.history.size(),
                  "misaligned per-iteration arrays in checkpoint: " + path);
  } else {
    // v1 checkpoints predate these arrays; zero-backfill keeps the resumed
    // result's per-iteration arrays aligned with cost_history.
    cp.grad_norms.assign(cp.history.size(), 0.0);
    cp.iter_seconds.assign(cp.history.size(), 0.0);
  }
  return cp;
}

/// The guarded descent loop, shared by fresh and resumed runs. `start`
/// is the first iteration index to execute; result.control /
/// result.cost_history hold the state up to that point.
void run_loop(DriverResult& result, GradientStrategy& strategy,
              const DriverOptions& options, optim::Optimizer& optimizer,
              ScaledSchedule& schedule, std::size_t start) {
  if (options.checkpoint_every > 0)
    UPDEC_REQUIRE(!options.checkpoint_path.empty(),
                  "checkpoint_every > 0 requires a checkpoint_path");

  la::Vector gradient(result.control.size());
  la::Vector last_good = result.control;
  std::size_t it = start;
  while (it < options.iterations) {
    if (options.should_stop && options.should_stop()) {
      result.stopped = true;
      UPDEC_METRIC_ADD("control/driver.stops", 1);
      log_info() << strategy.name() << " iteration " << it
                 << ": cooperative stop requested; returning current state";
      break;
    }
    if (options.should_degrade && options.should_degrade()) {
      result.stopped = true;
      result.degraded_stop = true;
      UPDEC_METRIC_ADD("control/driver.degraded_stops", 1);
      log_info() << strategy.name() << " iteration " << it
                 << ": degraded stop requested; returning best-effort state";
      break;
    }
    const Stopwatch iter_watch;
    double j = 0.0;
    bool ok = true;
    std::string why;
    try {
      j = strategy.value_and_gradient(result.control, gradient);
      if (UPDEC_FAULT_POINT("driver.nan_cost"))
        j = std::numeric_limits<double>::quiet_NaN();
      if (UPDEC_FAULT_POINT("driver.nan_gradient") && !gradient.empty())
        gradient[0] = std::numeric_limits<double>::quiet_NaN();
      if (!std::isfinite(j)) {
        ok = false;
        why = "non-finite cost";
      } else if (!la::all_finite(gradient)) {
        ok = false;
        why = "non-finite gradient";
      }
    } catch (const Error& e) {
      ok = false;
      why = e.what();
    }

    if (!ok) {
      if (!options.recover_divergence ||
          result.recoveries >= options.max_recoveries) {
        result.aborted = true;
        UPDEC_METRIC_ADD("control/driver.aborts", 1);
        log_error() << strategy.name() << " iteration " << it
                    << " diverged (" << why << "); recovery "
                    << (options.recover_divergence ? "budget exhausted"
                                                   : "disabled")
                    << " after " << result.recoveries
                    << " attempt(s) -- aborting";
        break;
      }
      ++result.recoveries;
      UPDEC_METRIC_ADD("control/driver.recoveries", 1);
      result.control = last_good;
      schedule.set_scale(schedule.scale() * options.recovery_lr_decay);
      optimizer.reset();
      log_warn() << strategy.name() << " iteration " << it << " diverged ("
                 << why << "); rolled back to last good control, lr scale "
                 << schedule.scale() << " (recovery " << result.recoveries
                 << "/" << options.max_recoveries << ")";
      continue;  // retry the same iteration index from the rollback point
    }

    last_good = result.control;
    result.cost_history.push_back(j);
    const double grad_norm = la::nrm2(gradient);
    result.grad_norm_history.push_back(grad_norm);
    if (options.gradient_clip > 0.0)
      optim::clip_by_norm(gradient, options.gradient_clip);
    optimizer.step(result.control, gradient, it);
    ++result.iterations;
    const double iter_seconds = iter_watch.seconds();
    result.iteration_seconds.push_back(iter_seconds);
    if (metrics::enabled()) {
      metrics::counter_add("control/driver.iterations");
      metrics::observe("control/driver.iteration_seconds", iter_seconds);
      metrics::observe("control/driver.grad_norm", grad_norm);
      metrics::gauge_set("control/driver.last_cost", j);
    }
    if (options.verbose && (it % 50 == 0 || it + 1 == options.iterations))
      log_info() << strategy.name() << " iteration " << it << ": J = " << j;
    ++it;
    if (options.checkpoint_every > 0 && it % options.checkpoint_every == 0)
      write_checkpoint(options.checkpoint_path, it, schedule.scale(),
                       result.recoveries, result, optimizer);
  }
  result.final_cost =
      result.cost_history.empty() ? 0.0 : result.cost_history.back();
}

std::shared_ptr<ScaledSchedule> make_schedule(const DriverOptions& options) {
  return std::make_shared<ScaledSchedule>(
      std::make_shared<optim::PaperSchedule>(options.initial_learning_rate,
                                             options.iterations));
}

}  // namespace

DriverResult optimize_from(la::Vector control, GradientStrategy& strategy,
                           const DriverOptions& options) {
  UPDEC_TRACE_SCOPE("control/optimize");
  const Stopwatch watch;
  DriverResult result;
  result.control = std::move(control);
  result.cost_history.reserve(options.iterations);
  result.grad_norm_history.reserve(options.iterations);
  result.iteration_seconds.reserve(options.iterations);

  auto schedule = make_schedule(options);
  optim::Adam adam(schedule);
  run_loop(result, strategy, options, adam, *schedule, 0);

  result.seconds = watch.seconds();
  result.peak_rss_bytes = peak_rss_bytes();
  return result;
}

DriverResult optimize(const ControlProblem& problem,
                      GradientStrategy& strategy,
                      const DriverOptions& options) {
  return optimize_from(problem.initial_control(), strategy, options);
}

DriverResult optimize_resume(const std::string& checkpoint_path,
                             GradientStrategy& strategy,
                             const DriverOptions& options) {
  UPDEC_TRACE_SCOPE("control/optimize");
  const Stopwatch watch;

  std::ifstream is(checkpoint_path);
  UPDEC_REQUIRE(is.good(), "cannot open checkpoint " + checkpoint_path);
  Checkpoint cp = read_checkpoint_header(is, checkpoint_path);
  UPDEC_REQUIRE(cp.iteration <= options.iterations,
                "checkpoint is past options.iterations; resume with the "
                "iteration count the run was checkpointed under");

  DriverResult result;
  result.control = std::move(cp.control);
  result.cost_history = std::move(cp.history);
  result.cost_history.reserve(options.iterations);
  result.grad_norm_history = std::move(cp.grad_norms);
  result.grad_norm_history.reserve(options.iterations);
  result.iteration_seconds = std::move(cp.iter_seconds);
  result.iteration_seconds.reserve(options.iterations);
  result.recoveries = cp.recoveries;

  auto schedule = make_schedule(options);
  schedule->set_scale(cp.lr_scale);
  optim::Adam adam(schedule);
  UPDEC_REQUIRE(adam.load_state(is),
                "malformed optimiser state in checkpoint " + checkpoint_path);

  log_info() << strategy.name() << " resuming from " << checkpoint_path
             << " at iteration " << cp.iteration;
  run_loop(result, strategy, options, adam, *schedule, cp.iteration);

  result.seconds = watch.seconds();
  result.peak_rss_bytes = peak_rss_bytes();
  return result;
}

}  // namespace updec::control
