#pragma once
/// \file driver.hpp
/// The optimisation loop shared by all strategies: Adam with the paper's
/// piecewise learning-rate schedule (divide by 10 at 50% and 75%), a cost
/// history for the Fig. 3b / 4b curves, and wall-clock + peak-memory
/// accounting for Table 3.
///
/// The loop is guarded for the long 350-500-iteration runs: a non-finite
/// cost or gradient (or an updec::Error thrown by the PDE solve) rolls the
/// control back to the last good iterate, halves the learning rate and
/// retries within a bounded recovery budget; optional periodic
/// checkpointing lets a crashed Navier-Stokes run resume via
/// optimize_resume() instead of restarting.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "control/problem.hpp"
#include "optim/optimizer.hpp"

namespace updec::control {

struct DriverOptions {
  std::size_t iterations = 500;    ///< paper: 500 (Laplace), 350 (NS)
  double initial_learning_rate = 1e-2;
  double gradient_clip = 0.0;      ///< 0 disables clipping
  bool verbose = false;

  // Divergence recovery.
  bool recover_divergence = true;  ///< roll back + shrink LR on failure
  std::size_t max_recoveries = 8;  ///< total budget before aborting the run
  double recovery_lr_decay = 0.5;  ///< LR multiplier applied per recovery

  // Checkpointing. When checkpoint_every > 0 the driver writes (and
  /// atomically replaces) `checkpoint_path` every that-many accepted
  /// iterations; resume with optimize_resume() under the SAME iteration
  /// count and initial learning rate (the LR schedule depends on both).
  std::size_t checkpoint_every = 0;
  std::string checkpoint_path;

  /// Cooperative stop hook, polled once per iteration before the gradient
  /// evaluation. Returning true ends the run cleanly with the state
  /// accumulated so far (DriverResult::stopped set, not aborted). The serve
  /// scheduler routes job cancellation and per-job deadlines through this.
  std::function<bool()> should_stop;

  /// Cooperative degrade hook, polled alongside should_stop. Returning true
  /// ends the run the same clean way but additionally marks
  /// DriverResult::degraded_stop, so the caller can distinguish "wrap up
  /// now, best effort" (the serve scheduler's soft deadline) from a hard
  /// cancellation. should_stop wins when both fire in the same iteration.
  std::function<bool()> should_degrade;
};

struct DriverResult {
  la::Vector control;                ///< final control c*
  std::vector<double> cost_history;  ///< J per iteration (Fig. 3b / 4b)
  std::vector<double> grad_norm_history;  ///< ||dJ/dc||_2 per accepted iteration
  std::vector<double> iteration_seconds;  ///< wall-clock per accepted iteration
  double final_cost = 0.0;
  double seconds = 0.0;              ///< wall-clock (Table 3 "Time")
  std::size_t peak_rss_bytes = 0;    ///< VmHWM after the run (Table 3 "Peak mem.")
  std::size_t iterations = 0;
  std::size_t recoveries = 0;        ///< divergence rollbacks performed
  bool aborted = false;              ///< recovery budget exhausted
  bool stopped = false;              ///< options.should_stop ended the run early
  bool degraded_stop = false;        ///< options.should_degrade ended the run
};

/// Run gradient descent with `strategy` from the problem's initial control.
DriverResult optimize(const ControlProblem& problem,
                      GradientStrategy& strategy,
                      const DriverOptions& options);

/// Same, from an explicit starting control.
DriverResult optimize_from(la::Vector control, GradientStrategy& strategy,
                           const DriverOptions& options);

/// Resume a checkpointed run from `checkpoint_path`: restores the control,
/// the optimiser state, the learning-rate scale and the cost history, then
/// continues until options.iterations. The returned cost_history includes
/// the checkpointed prefix, so a resumed run reproduces the uninterrupted
/// one bit-for-bit. Throws updec::Error if the checkpoint is unreadable.
DriverResult optimize_resume(const std::string& checkpoint_path,
                             GradientStrategy& strategy,
                             const DriverOptions& options);

}  // namespace updec::control
