#pragma once
/// \file driver.hpp
/// The optimisation loop shared by all strategies: Adam with the paper's
/// piecewise learning-rate schedule (divide by 10 at 50% and 75%), a cost
/// history for the Fig. 3b / 4b curves, and wall-clock + peak-memory
/// accounting for Table 3.

#include <functional>
#include <memory>
#include <vector>

#include "control/problem.hpp"
#include "optim/optimizer.hpp"

namespace updec::control {

struct DriverOptions {
  std::size_t iterations = 500;    ///< paper: 500 (Laplace), 350 (NS)
  double initial_learning_rate = 1e-2;
  double gradient_clip = 0.0;      ///< 0 disables clipping
  bool verbose = false;
};

struct DriverResult {
  la::Vector control;                ///< final control c*
  std::vector<double> cost_history;  ///< J per iteration (Fig. 3b / 4b)
  double final_cost = 0.0;
  double seconds = 0.0;              ///< wall-clock (Table 3 "Time")
  std::size_t peak_rss_bytes = 0;    ///< VmHWM after the run (Table 3 "Peak mem.")
  std::size_t iterations = 0;
};

/// Run gradient descent with `strategy` from the problem's initial control.
DriverResult optimize(const ControlProblem& problem,
                      GradientStrategy& strategy,
                      const DriverOptions& options);

/// Same, from an explicit starting control.
DriverResult optimize_from(la::Vector control, GradientStrategy& strategy,
                           const DriverOptions& options);

}  // namespace updec::control
