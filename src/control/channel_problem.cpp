#include "control/channel_problem.hpp"

#include <algorithm>
#include <cmath>

#include "autodiff/ops.hpp"
#include "la/blas.hpp"
#include "la/robust_solve.hpp"

namespace updec::control {

namespace tags = pc::tags;
using pde::ChannelFlowSolver;

ChannelFlowControlProblem::ChannelFlowControlProblem(
    const pc::ChannelSpec& spec, const rbf::Kernel& kernel,
    const pde::ChannelFlowConfig& config)
    : cloud_(pc::channel_cloud(spec)), kernel_(&kernel) {
  solver_ = std::make_unique<ChannelFlowSolver>(cloud_, kernel, config, spec);
}

double ChannelFlowControlProblem::cost(const la::Vector& control) const {
  return cost_of_flow(solver_->solve(control));
}

double ChannelFlowControlProblem::cost_of_flow(const pde::Flow& flow) const {
  const auto& outlet = solver_->outlet_nodes();
  const auto& ys = solver_->outlet_y();
  const auto& w = solver_->outlet_quadrature();
  double j = 0.0;
  for (std::size_t q = 0; q < outlet.size(); ++q) {
    const double du = flow.u[outlet[q]] - solver_->target_outflow(ys[q]);
    const double dv = flow.v[outlet[q]];
    j += 0.5 * w[q] * (du * du + dv * dv);
  }
  return j;
}

la::Vector ChannelFlowControlProblem::outflow_profile(
    const la::Vector& control) const {
  const pde::Flow flow = solver_->solve(control);
  const auto& outlet = solver_->outlet_nodes();
  la::Vector profile(outlet.size());
  for (std::size_t q = 0; q < outlet.size(); ++q)
    profile[q] = flow.u[outlet[q]];
  return profile;
}

namespace {

/// DP: the projection rollout and the cost live on one tape.
class ChannelDpStrategy final : public GradientStrategy {
 public:
  ChannelDpStrategy(std::shared_ptr<const ChannelFlowControlProblem> p,
                    double smoothing, bool last_refinement_only = false)
      : problem_(std::move(p)),
        smoothing_(smoothing),
        last_refinement_only_(last_refinement_only) {}

  [[nodiscard]] std::string name() const override {
    if (last_refinement_only_) return "DP(truncated)";
    return smoothing_ > 0.0 ? "DP(smoothed)" : "DP";
  }

  double value_and_gradient(const la::Vector& control,
                            la::Vector& gradient) override {
    const auto& solver = problem_->solver();
    tape_.clear();
    const ad::VarVec c = ad::make_variables(tape_, control);
    const pde::FlowAd flow = last_refinement_only_
                                 ? solver.solve_last_refinement(tape_, c)
                                 : solver.solve(tape_, c);
    const auto& outlet = solver.outlet_nodes();
    const auto& ys = solver.outlet_y();
    const auto& w = solver.outlet_quadrature();
    ad::Var j = tape_.constant(0.0);
    for (std::size_t q = 0; q < outlet.size(); ++q) {
      const ad::Var du =
          flow.u[outlet[q]] - solver.target_outflow(ys[q]);
      const ad::Var dv = flow.v[outlet[q]];
      j = j + 0.5 * w[q] * (du * du + dv * dv);
    }
    const double j_raw = j.value();
    if (smoothing_ > 0.0) {
      // Optional Tikhonov term on the control's variation (section 4).
      const auto& iy = solver.inlet_y();
      for (std::size_t q = 0; q + 1 < c.size(); ++q) {
        const ad::Var d = c[q + 1] - c[q];
        j = j + (smoothing_ / (iy[q + 1] - iy[q])) * (d * d);
      }
    }
    tape_.backward(j);
    gradient = ad::adjoints(c);
    peak_tape_bytes_ = std::max(peak_tape_bytes_, tape_.memory_bytes());
    return j_raw;
  }

  /// Tape footprint of the largest rollout (Table 3 memory narrative).
  [[nodiscard]] std::size_t scratch_bytes() const override {
    return peak_tape_bytes_;
  }

 private:
  std::shared_ptr<const ChannelFlowControlProblem> problem_;
  double smoothing_;
  bool last_refinement_only_;
  ad::Tape tape_;
  std::size_t peak_tape_bytes_ = 0;
};

/// DAL: continuous adjoint Navier-Stokes, marched to steady state with the
/// same semi-implicit projection machinery as the forward problem.
///
/// Adjoint system (see DESIGN.md):
///   (u.grad)lambda - (grad u)^T lambda + (1/Re) Lap lambda + grad sigma = 0
///   div lambda = 0
/// BCs: lambda = 0 at inlet and walls; at the outlet the truncated traction
/// balance lambda = -j_u / (u.n) with j_u = (u - u_target, v).
/// Gradient on the inlet (n = (-1, 0)):
///   dJ/dc(y) = -(1/Re) d(lambda_u)/dx (0, y) - sigma(0, y),
/// weighted by the inlet quadrature to approximate the discrete gradient.
class ChannelDalStrategy final : public GradientStrategy {
 public:
  explicit ChannelDalStrategy(
      std::shared_ptr<const ChannelFlowControlProblem> p)
      : problem_(std::move(p)) {
    const auto& solver = problem_->solver();
    const auto& cloud = solver.cloud();
    const std::size_t n = cloud.size();
    const auto& interior = solver.interior_mask();
    const double nu_dt =
        solver.config().dt / solver.config().reynolds;
    // Adjoint momentum operator: same interior rows as the forward one,
    // identity on every boundary row (the adjoint outlet BC is Dirichlet).
    // Assembled sparse from the shared consistent Laplacian; the
    // sparse-first solver picks dense LU or ILU-Krylov by size.
    la::SparseBuilder momentum(n, n);
    const la::CsrMatrix& lap = solver.interior_laplacian();
    for (std::size_t i = 0; i < n; ++i) {
      momentum.add(i, i, 1.0);
      if (!interior[i]) continue;
      for (std::size_t k = lap.row_ptr()[i]; k < lap.row_ptr()[i + 1]; ++k)
        momentum.add(i, lap.col_idx()[k], -nu_dt * lap.values()[k]);
    }
    momentum_op_ = la::SparseFirstSolver(la::CsrMatrix(momentum),
                                         solver.config().solver);
    // Inlet quadrature (trapezoid in y).
    const auto& ys = solver.inlet_y();
    inlet_quad_ = la::Vector(ys.size(), 0.0);
    for (std::size_t q = 0; q + 1 < ys.size(); ++q) {
      const double h = ys[q + 1] - ys[q];
      inlet_quad_[q] += 0.5 * h;
      inlet_quad_[q + 1] += 0.5 * h;
    }
  }

  [[nodiscard]] std::string name() const override { return "DAL"; }

  double value_and_gradient(const la::Vector& control,
                            la::Vector& gradient) override {
    const auto& solver = problem_->solver();
    const auto& cloud = solver.cloud();
    const auto& config = solver.config();
    const std::size_t n = cloud.size();
    const auto& interior = solver.interior_mask();
    const auto& dx = solver.dx_matrix();
    const auto& dy = solver.dy_matrix();
    const double dt = config.dt;
    const double inv_re = 1.0 / config.reynolds;

    // Forward solve and its frozen derivative fields.
    const pde::Flow flow = solver.solve(control);
    const double j = problem_->cost_of_flow(flow);
    const la::Vector dxu = dx.apply(flow.u), dyu = dy.apply(flow.u);
    const la::Vector dxv = dx.apply(flow.v), dyv = dy.apply(flow.v);

    // Adjoint outlet Dirichlet data from the truncated traction balance.
    const auto& outlet = solver.outlet_nodes();
    const auto& oys = solver.outlet_y();
    la::Vector lam_u_outlet(outlet.size(), 0.0), lam_v_outlet(outlet.size(), 0.0);
    for (std::size_t q = 0; q < outlet.size(); ++q) {
      const double un = std::max(flow.u[outlet[q]], 0.1);  // avoid reversal
      lam_u_outlet[q] =
          -(flow.u[outlet[q]] - solver.target_outflow(oys[q])) / un;
      lam_v_outlet[q] = -flow.v[outlet[q]] / un;
    }

    la::Vector lu(n, 0.0), lv(n, 0.0), sigma(n, 0.0);
    const auto apply_bcs = [&](la::Vector& au, la::Vector& av) {
      for (const std::size_t i : solver.inlet_nodes()) au[i] = av[i] = 0.0;
      for (const int tag : {tags::kWall, tags::kBlowing, tags::kSuction})
        for (const std::size_t i : cloud.indices_with_tag(tag))
          au[i] = av[i] = 0.0;
      for (std::size_t q = 0; q < outlet.size(); ++q) {
        au[outlet[q]] = lam_u_outlet[q];
        av[outlet[q]] = lam_v_outlet[q];
      }
    };
    apply_bcs(lu, lv);

    const std::size_t steps = config.refinements * config.steps_per_refinement;
    la::Vector rhs_u(n), rhs_v(n), prhs(n), q_p(n);
    for (std::size_t step = 0; step < steps; ++step) {
      const la::Vector dxlu = dx.apply(lu), dylu = dy.apply(lu);
      const la::Vector dxlv = dx.apply(lv), dylv = dy.apply(lv);
      rhs_u = lu;
      rhs_v = lv;
      double max_delta = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        if (!interior[i]) continue;
        // lambda_tau = (u.grad)lambda - (grad u)^T lambda (+ implicit diff).
        rhs_u[i] = lu[i] + dt * (flow.u[i] * dxlu[i] + flow.v[i] * dylu[i] -
                                 (dxu[i] * lu[i] + dxv[i] * lv[i]));
        rhs_v[i] = lv[i] + dt * (flow.u[i] * dxlv[i] + flow.v[i] * dylv[i] -
                                 (dyu[i] * lu[i] + dyv[i] * lv[i]));
      }
      la::Vector lu_star =
          la::checked_solve(momentum_op_, rhs_u, "DAL adjoint momentum (u)");
      la::Vector lv_star =
          la::checked_solve(momentum_op_, rhs_v, "DAL adjoint momentum (v)");
      apply_bcs(lu_star, lv_star);
      // Projection onto divergence-free adjoint fields: Lap q = div/dt,
      // lambda -= dt grad q, sigma = -q.
      prhs.fill(0.0);
      const la::Vector div_x = dx.apply(lu_star);
      const la::Vector div_y = dy.apply(lv_star);
      for (std::size_t i = 0; i < n; ++i)
        if (interior[i]) prhs[i] = (div_x[i] + div_y[i]) / dt;
      q_p = la::checked_solve(solver.pressure_op(), prhs,
                              "DAL adjoint pressure projection");
      const la::Vector dxq = dx.apply(q_p);
      const la::Vector dyq = dy.apply(q_p);
      for (std::size_t i = 0; i < n; ++i) {
        if (interior[i]) {
          lu_star[i] -= dt * dxq[i];
          lv_star[i] -= dt * dyq[i];
        }
        max_delta = std::max(max_delta, std::abs(lu_star[i] - lu[i]));
        max_delta = std::max(max_delta, std::abs(lv_star[i] - lv[i]));
      }
      apply_bcs(lu_star, lv_star);
      lu = std::move(lu_star);
      lv = std::move(lv_star);
      for (std::size_t i = 0; i < n; ++i) sigma[i] = -q_p[i];
      if (max_delta / dt < config.steady_tol) break;
    }

    // Gradient extraction on the inlet.
    const la::Vector dxlu_final = dx.apply(lu);
    const auto& inlet = solver.inlet_nodes();
    gradient.resize(inlet.size());
    for (std::size_t q = 0; q < inlet.size(); ++q) {
      const std::size_t i = inlet[q];
      gradient[q] =
          inlet_quad_[q] * (-inv_re * dxlu_final[i] - sigma[i]);
    }
    return j;
  }

 private:
  std::shared_ptr<const ChannelFlowControlProblem> problem_;
  la::SparseFirstSolver momentum_op_;
  la::Vector inlet_quad_;
};

/// FD: central differences over full nonlinear solves (expensive; used for
/// gradient-accuracy ablations, as the paper's footnote 11 does).
class ChannelFdStrategy final : public GradientStrategy {
 public:
  ChannelFdStrategy(std::shared_ptr<const ChannelFlowControlProblem> p,
                    double step)
      : problem_(std::move(p)), step_(step) {}

  [[nodiscard]] std::string name() const override { return "FD"; }

  double value_and_gradient(const la::Vector& control,
                            la::Vector& gradient) override {
    const double j = problem_->cost(control);
    gradient.resize(control.size());
    la::Vector probe = control;
    for (std::size_t i = 0; i < control.size(); ++i) {
      probe[i] = control[i] + step_;
      const double jp = problem_->cost(probe);
      probe[i] = control[i] - step_;
      const double jm = problem_->cost(probe);
      probe[i] = control[i];
      gradient[i] = (jp - jm) / (2.0 * step_);
    }
    return j;
  }

 private:
  std::shared_ptr<const ChannelFlowControlProblem> problem_;
  double step_;
};

}  // namespace

std::unique_ptr<GradientStrategy> make_channel_dp(
    std::shared_ptr<const ChannelFlowControlProblem> problem,
    double smoothing) {
  return std::make_unique<ChannelDpStrategy>(std::move(problem), smoothing);
}

std::unique_ptr<GradientStrategy> make_channel_dp_truncated(
    std::shared_ptr<const ChannelFlowControlProblem> problem) {
  return std::make_unique<ChannelDpStrategy>(std::move(problem), 0.0, true);
}

std::unique_ptr<GradientStrategy> make_channel_dal(
    std::shared_ptr<const ChannelFlowControlProblem> problem) {
  return std::make_unique<ChannelDalStrategy>(std::move(problem));
}

std::unique_ptr<GradientStrategy> make_channel_fd(
    std::shared_ptr<const ChannelFlowControlProblem> problem, double step) {
  return std::make_unique<ChannelFdStrategy>(std::move(problem), step);
}

}  // namespace updec::control
