#pragma once
/// \file pinn_channel.hpp
/// PINN solver for the Navier-Stokes channel problem (section 3.2): one
/// network u_theta(x, y) -> (u, v, p) and a control network c_theta(y) for
/// the inflow, trained on the stationary incompressible NS residuals plus
/// Dirichlet/Neumann boundary penalties and omega * J (eq. (6)).

#include <memory>

#include "control/pinn_common.hpp"
#include "optim/optimizer.hpp"
#include "pointcloud/generators.hpp"
#include "util/rng.hpp"

namespace updec::control {

class ChannelPinn {
 public:
  /// \param config PINN hyper-parameters (paper: 5x50 net, lr 1e-3).
  /// \param spec   channel geometry (patches, dimensions).
  /// \param reynolds Reynolds number of the flow.
  /// \param patch_velocity peak blowing/suction speed.
  ChannelPinn(const PinnConfig& config, const pc::ChannelSpec& spec,
              double reynolds, double patch_velocity);

  void train();

  [[nodiscard]] const PinnHistory& history() const { return history_; }

  /// Inflow control network sampled at given y locations.
  [[nodiscard]] la::Vector control_at(const std::vector<double>& ys) const;

  /// Network outflow u-profile at given y locations (Fig. 4d series).
  [[nodiscard]] la::Vector outflow_at(const std::vector<double>& ys) const;

  /// Network-side cost J from the outlet quadrature.
  [[nodiscard]] double network_cost() const;

  /// Mean squared NS residual on a test grid.
  [[nodiscard]] double pde_residual() const;

  void reset_solution_network(std::uint64_t seed);
  void set_control_network(const nn::Mlp& c_net) { c_net_ = c_net; }

  [[nodiscard]] const nn::Mlp& u_net() const { return u_net_; }
  [[nodiscard]] const nn::Mlp& c_net() const { return c_net_; }
  [[nodiscard]] const PinnConfig& config() const { return config_; }

  /// Training-tape footprint of the last epoch (Table 3 memory column).
  [[nodiscard]] std::size_t scratch_bytes() const {
    return tape_.memory_bytes();
  }

 private:
  struct EpochLosses {
    double total, pde, boundary, cost;
  };
  EpochLosses epoch_step(std::size_t epoch);

  [[nodiscard]] double target_outflow(double y) const;
  [[nodiscard]] double patch_v(double x, bool bottom) const;

  PinnConfig config_;
  pc::ChannelSpec spec_;
  double reynolds_;
  double patch_velocity_;

  nn::Mlp u_net_;  // (x, y) -> (u, v, p)
  nn::Mlp c_net_;  // y -> inflow u
  Rng rng_;

  std::vector<pc::Vec2> interior_points_;
  std::vector<double> inlet_y_, wall_x_, outlet_y_;
  std::vector<double> quad_y_, quad_w_;  // outlet quadrature

  std::unique_ptr<optim::Adam> adam_u_, adam_c_;
  std::shared_ptr<optim::LrSchedule> schedule_;
  PinnHistory history_;
  ad::Tape tape_;  // reused across epochs (clear() keeps capacity)
};

}  // namespace updec::control
