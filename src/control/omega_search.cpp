#include "control/omega_search.hpp"

#include <limits>

#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace updec::control {

namespace {

/// Shared search skeleton: `make` builds a PINN for a config; the PINN type
/// must expose train(), history(), network_cost(), pde_residual(),
/// control_at(), c_net(), set_control_network(), reset_solution_network().
template <typename Pinn, typename MakeFn>
OmegaSearchResult run_search(const PinnConfig& base,
                             const std::vector<double>& omegas,
                             const std::vector<double>& sample_locations,
                             const ReferenceCost& reference,
                             const MakeFn& make) {
  OmegaSearchResult result;
  double best = std::numeric_limits<double>::infinity();
  UPDEC_TRACE_SCOPE("control/omega_search");
  for (std::size_t k = 0; k < omegas.size(); ++k) {
    UPDEC_TRACE_SCOPE("control/omega_candidate");
    const Stopwatch candidate_watch;
    OmegaSearchEntry entry;
    entry.omega = omegas[k];

    // Step 1: joint alternating training on L + omega J.
    PinnConfig step1 = base;
    step1.omega = omegas[k];
    step1.train_control = true;
    Pinn pinn1 = make(step1);
    pinn1.train();
    entry.step1_network_cost = pinn1.network_cost();
    entry.step1_pde_loss = pinn1.history().pde_loss.empty()
                               ? 0.0
                               : pinn1.history().pde_loss.back();

    // Step 2: fresh solution network, physics-only loss, frozen control.
    PinnConfig step2 = base;
    step2.omega = 0.0;
    step2.train_control = false;
    step2.alternating = false;
    step2.seed = base.seed + 1000 + k;
    Pinn pinn2 = make(step2);
    pinn2.set_control_network(pinn1.c_net());
    pinn2.train();
    entry.step2_network_cost = pinn2.network_cost();
    entry.step2_pde_residual = pinn2.pde_residual();

    const la::Vector control = pinn2.control_at(sample_locations);
    entry.reference_cost = reference ? reference(control) : 0.0;

    log_info() << "omega search: omega = " << entry.omega
               << ", step-2 J = " << entry.step2_network_cost
               << ", residual = " << entry.step2_pde_residual;

    if (entry.step2_network_cost < best) {
      best = entry.step2_network_cost;
      result.best_index = k;
      result.best_omega = entry.omega;
      result.best_control = control;
      result.best_control_net = pinn1.c_net();
    }
    result.entries.push_back(entry);
    if (metrics::enabled()) {
      metrics::counter_add("control/omega_search.candidates");
      // Per-candidate line-search cost (Mowlavi & Nabi report this per omega).
      metrics::observe("control/omega_search.candidate_seconds",
                       candidate_watch.seconds());
      metrics::observe("control/omega_search.step2_cost",
                       entry.step2_network_cost);
    }
  }
  return result;
}

}  // namespace

OmegaSearchResult laplace_omega_search(const PinnConfig& base,
                                       const std::vector<double>& omegas,
                                       const std::vector<double>& sample_xs,
                                       const ReferenceCost& reference) {
  return run_search<LaplacePinn>(
      base, omegas, sample_xs, reference,
      [](const PinnConfig& config) { return LaplacePinn(config); });
}

OmegaSearchResult channel_omega_search(
    const PinnConfig& base, const pc::ChannelSpec& spec, double reynolds,
    double patch_velocity, const std::vector<double>& omegas,
    const std::vector<double>& sample_ys, const ReferenceCost& reference) {
  return run_search<ChannelPinn>(
      base, omegas, sample_ys, reference,
      [&](const PinnConfig& config) {
        return ChannelPinn(config, spec, reynolds, patch_velocity);
      });
}

}  // namespace updec::control
