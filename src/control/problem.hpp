#pragma once
/// \file problem.hpp
/// Abstractions of the paper's optimal-control workflow (eq. (4)):
/// a ControlProblem evaluates J(c) through a forward PDE solve, and a
/// GradientStrategy produces dJ/dc by one of the paper's three routes
/// (DAL / DP / PINN) or by finite differences (footnote 11).

#include <memory>
#include <string>

#include "la/dense.hpp"

namespace updec::control {

/// A PDE-constrained optimal control problem over a finite-dimensional
/// control vector (nodal boundary values).
class ControlProblem {
 public:
  virtual ~ControlProblem() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::size_t control_size() const = 0;

  /// The paper's starting guess (zero for Laplace, the target parabola for
  /// Navier-Stokes).
  [[nodiscard]] virtual la::Vector initial_control() const = 0;

  /// J(c): forward solve + cost functional.
  [[nodiscard]] virtual double cost(const la::Vector& control) const = 0;
};

/// Observer an adjoint-based strategy MAY support: after each
/// value_and_gradient it hands out the nodal state and adjoint it already
/// computed, so an a-posteriori estimator (src/refine's adjoint-weighted
/// residual) can form error indicators without re-solving either problem.
class AdjointObserver {
 public:
  virtual ~AdjointObserver() = default;
  virtual void on_adjoint_pair(const la::Vector& state,
                               const la::Vector& adjoint) = 0;
};

/// One way of computing (J, dJ/dc). Stateful implementations (e.g. tapes)
/// may reuse buffers across calls.
class GradientStrategy {
 public:
  virtual ~GradientStrategy() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Evaluate the cost and fill `gradient` (resized to control_size()).
  virtual double value_and_gradient(const la::Vector& control,
                                    la::Vector& gradient) = 0;

  /// Install an observer for (state, adjoint) pairs; nullptr detaches. The
  /// default is a no-op -- only adjoint-based strategies that expose nodal
  /// fields (the sparse Laplace DAL path) implement it, and callers can
  /// check the return value (false = unsupported, no pairs will arrive).
  virtual bool set_adjoint_observer(AdjointObserver* observer) {
    (void)observer;
    return false;
  }

  /// Method-specific scratch memory of the last evaluation in bytes (the
  /// DP tape, for instance). 0 when the strategy holds no notable scratch.
  /// Process-level VmHWM is monotone and cumulates across methods, so this
  /// is the honest per-method memory number for Table 3.
  [[nodiscard]] virtual std::size_t scratch_bytes() const { return 0; }
};

}  // namespace updec::control
