#pragma once
/// \file pinn_laplace.hpp
/// PINN solver for the Laplace control problem (sections 2.3 and 3.1):
/// a solution network u_theta(x, y) and a control network c_theta(x) are
/// trained jointly (alternating updates) on the multi-objective loss
///   L = L_PDE + L_BC + omega * J(c_theta, u_theta),
/// with the PDE enforced as soft residuals at scattered collocation points
/// (mesh-free, like the RBF methods it is compared against).

#include <memory>

#include "control/pinn_common.hpp"
#include "optim/optimizer.hpp"
#include "pointcloud/cloud.hpp"
#include "util/rng.hpp"

namespace updec::control {

/// One PINN training instance for the Laplace problem.
class LaplacePinn {
 public:
  explicit LaplacePinn(const PinnConfig& config);

  /// Train for config.epochs (step 1 of the line search when
  /// config.train_control is true, step 2 style when false).
  void train();

  /// Training record (Fig. 3c-e data).
  [[nodiscard]] const PinnHistory& history() const { return history_; }

  /// Control network sampled at given x locations.
  [[nodiscard]] la::Vector control_at(const std::vector<double>& xs) const;

  /// Network-side cost: J evaluated from u_theta's flux on a uniform
  /// quadrature grid along the top wall.
  [[nodiscard]] double network_cost() const;

  /// Mean squared PDE residual of u_theta on a fixed test grid.
  [[nodiscard]] double pde_residual() const;

  /// Replace the solution network with a fresh initialisation (line-search
  /// step 2 retrains u from scratch under a frozen control).
  void reset_solution_network(std::uint64_t seed);

  /// Import a control network (from a step-1 run).
  void set_control_network(const nn::Mlp& c_net) { c_net_ = c_net; }

  [[nodiscard]] const nn::Mlp& u_net() const { return u_net_; }
  [[nodiscard]] const nn::Mlp& c_net() const { return c_net_; }
  [[nodiscard]] const PinnConfig& config() const { return config_; }

  /// Training-tape footprint of the last epoch (Table 3 memory column).
  [[nodiscard]] std::size_t scratch_bytes() const {
    return tape_.memory_bytes();
  }

 private:
  /// One optimisation step; returns the loss components.
  struct EpochLosses {
    double total, pde, boundary, cost;
  };
  EpochLosses epoch_step(std::size_t epoch);

  PinnConfig config_;
  nn::Mlp u_net_;
  nn::Mlp c_net_;
  Rng rng_;

  // Fixed collocation sets (mini-batches are sampled from these).
  std::vector<pc::Vec2> interior_points_;
  std::vector<double> bottom_x_, side_y_, top_x_;
  // Uniform quadrature grid on the top wall for the cost term.
  std::vector<double> quad_x_;
  std::vector<double> quad_w_;

  std::unique_ptr<optim::Adam> adam_u_, adam_c_;
  std::shared_ptr<optim::LrSchedule> schedule_;
  PinnHistory history_;
  ad::Tape tape_;  // reused across epochs (clear() keeps capacity)
};

}  // namespace updec::control
