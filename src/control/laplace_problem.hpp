#pragma once
/// \file laplace_problem.hpp
/// The Laplace boundary-control problem of section 3.1 with its three
/// non-PINN gradient strategies:
///  * DP  -- reverse-mode AD through the discretised RBF solve
///           (discretise-then-optimise; the paper's gold standard),
///  * DAL -- the hand-derived continuous adjoint Laplace problem
///           (optimise-then-discretise),
///  * FD  -- central finite differences (footnote 11's baseline).

#include <memory>

#include "control/problem.hpp"
#include "pde/laplace.hpp"

namespace updec::control {

/// J(c) = integral over the top wall of |du/dy - cos(2 pi x)|^2.
class LaplaceControlProblem final : public ControlProblem {
 public:
  LaplaceControlProblem(std::size_t grid_n, const rbf::Kernel& kernel,
                        int poly_degree = 1);

  [[nodiscard]] std::string name() const override { return "laplace"; }
  [[nodiscard]] std::size_t control_size() const override {
    return solver_.num_control();
  }
  [[nodiscard]] la::Vector initial_control() const override {
    return la::Vector(control_size(), 0.0);  // paper: c identically 0
  }
  [[nodiscard]] double cost(const la::Vector& control) const override;

  /// Cost from a precomputed top-wall flux (shared by the strategies).
  [[nodiscard]] double cost_from_flux(const la::Vector& flux) const;

  /// Analytic minimiser sampled at the control nodes (Fig. 3a reference).
  [[nodiscard]] la::Vector analytic_control() const;

  /// Max-norm state error against the analytic u* for a given control
  /// (Fig. 3f/3g data).
  [[nodiscard]] double state_error(const la::Vector& control) const;

  [[nodiscard]] const pde::LaplaceSolver& solver() const { return solver_; }
  /// Mutable access for serve-layer cache plumbing (install a memoized
  /// factorisation into the collocation before the first solve).
  [[nodiscard]] pde::LaplaceSolver& solver() { return solver_; }

 private:
  pde::LaplaceSolver solver_;
};

/// Factory helpers: strategies share the problem (and its factored LU).
std::unique_ptr<GradientStrategy> make_laplace_dp(
    std::shared_ptr<const LaplaceControlProblem> problem);
std::unique_ptr<GradientStrategy> make_laplace_dal(
    std::shared_ptr<const LaplaceControlProblem> problem);
std::unique_ptr<GradientStrategy> make_laplace_fd(
    std::shared_ptr<const LaplaceControlProblem> problem, double step = 1e-6);

}  // namespace updec::control
