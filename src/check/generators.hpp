#pragma once
/// \file generators.hpp
/// \brief Seeded random-input generators for the property-based correctness
/// harness.
///
/// Every generator draws exclusively from an updec::Rng passed by the
/// caller, so a whole random test case is reproducible bit-for-bit from one
/// 64-bit seed (the contract the fuzz driver's replay / shrinking machinery
/// and the UPDEC_FUZZ_SEED environment variable rely on). Generators cover
/// the input families the solver stack actually meets: well-behaved and
/// pathological dense matrices, sparse RBF-FD-like operators, scattered 2-D
/// point clouds, RBF kernels with random shape parameters, and small
/// instances of the paper's Laplace boundary-control problem.

#include <cstdint>
#include <memory>

#include "control/laplace_problem.hpp"
#include "la/dense.hpp"
#include "la/sparse.hpp"
#include "pointcloud/cloud.hpp"
#include "rbf/kernels.hpp"
#include "rbf/rbffd.hpp"
#include "util/rng.hpp"

namespace updec::check {

/// Vector of iid standard normals scaled by `scale`.
[[nodiscard]] la::Vector random_vector(Rng& rng, std::size_t n,
                                       double scale = 1.0);

/// Dense rows-by-cols matrix of iid standard normals.
[[nodiscard]] la::Matrix random_matrix(Rng& rng, std::size_t rows,
                                       std::size_t cols);

/// Symmetric positive-definite matrix B^T B + n I (eigenvalues >= n, so the
/// factorisations under test never stumble on conditioning by accident).
[[nodiscard]] la::Matrix random_spd(Rng& rng, std::size_t n);

/// Strictly diagonally dominant matrix: random off-diagonals with the
/// diagonal inflated past the row sum. Every solver in the stack must
/// handle these without escalation.
[[nodiscard]] la::Matrix random_diag_dominant(Rng& rng, std::size_t n);

/// Ill-conditioned SPD matrix with kappa_2 ~= 10^log10_cond, built by
/// grading an SPD core with the diagonal scaling S = diag(10^(-p i / n)):
/// A = S (B^T B / ||.|| + I) S. This is the flat-kernel / Runge regime the
/// robust-solve escalation chain exists for.
[[nodiscard]] la::Matrix random_ill_conditioned(Rng& rng, std::size_t n,
                                                double log10_cond = 8.0);

/// Sparse strictly diagonally dominant square matrix with about
/// `nnz_per_row` entries per row -- the shape of an RBF-FD operator row.
[[nodiscard]] la::CsrMatrix random_sparse_diag_dominant(
    Rng& rng, std::size_t n, std::size_t nnz_per_row = 7);

/// Scattered unit-square cloud: Halton interior nodes (jittered by the rng)
/// plus uniformly spaced Dirichlet boundary nodes.
[[nodiscard]] pc::PointCloud random_cloud(Rng& rng, std::size_t n_interior,
                                          std::size_t n_per_side);

/// A randomly chosen kernel from the paper's ablation set with a random
/// (but numerically sane) shape parameter: PHS r^3 / r^5, Gaussian,
/// multiquadric or inverse multiquadric.
[[nodiscard]] std::unique_ptr<rbf::Kernel> random_kernel(Rng& rng);

/// Random RBF-FD stencil configuration compatible with `cloud_size` nodes.
[[nodiscard]] rbf::RbffdConfig random_stencil_config(Rng& rng,
                                                     std::size_t cloud_size);

/// A small instance of the section 3.1 Laplace boundary-control problem at
/// a random grid resolution with a random non-trivial control iterate. The
/// kernel is owned by the case (the problem only borrows it).
struct LaplaceCase {
  std::shared_ptr<rbf::Kernel> kernel;  ///< must outlive `problem`
  std::shared_ptr<control::LaplaceControlProblem> problem;
  la::Vector control;  ///< random iterate to probe gradients at
  std::size_t grid_n = 0;
};

/// \param max_grid upper bound on the grid resolution (min is 6; the fuzz
/// shrinker lowers max_grid to minimise a failing case).
[[nodiscard]] LaplaceCase random_laplace_case(Rng& rng,
                                              std::size_t max_grid = 14);

}  // namespace updec::check
