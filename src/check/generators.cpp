#include "check/generators.hpp"

#include <algorithm>
#include <cmath>

#include "pointcloud/generators.hpp"
#include "util/error.hpp"

namespace updec::check {

la::Vector random_vector(Rng& rng, std::size_t n, double scale) {
  la::Vector v(n);
  for (auto& x : v) x = scale * rng.normal();
  return v;
}

la::Matrix random_matrix(Rng& rng, std::size_t rows, std::size_t cols) {
  la::Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = rng.normal();
  return m;
}

la::Matrix random_spd(Rng& rng, std::size_t n) {
  const la::Matrix b = random_matrix(rng, n, n);
  la::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < n; ++k) s += b(k, i) * b(k, j);
      a(i, j) = s;
    }
    a(i, i) += static_cast<double>(n);
  }
  return a;
}

la::Matrix random_diag_dominant(Rng& rng, std::size_t n) {
  la::Matrix a = random_matrix(rng, n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double off = 0.0;
    for (std::size_t j = 0; j < n; ++j)
      if (j != i) off += std::abs(a(i, j));
    // Keep the diagonal sign random but the magnitude dominant.
    const double sign = a(i, i) < 0.0 ? -1.0 : 1.0;
    a(i, i) = sign * (off + 1.0 + rng.uniform());
  }
  return a;
}

la::Matrix random_ill_conditioned(Rng& rng, std::size_t n, double log10_cond) {
  UPDEC_REQUIRE(n >= 2, "ill-conditioned generator needs n >= 2");
  // SPD core with O(1) eigenvalues...
  la::Matrix core = random_spd(rng, n);
  double max_diag = 0.0;
  for (std::size_t i = 0; i < n; ++i) max_diag = std::max(max_diag, core(i, i));
  // ...then a graded two-sided diagonal scaling: kappa(S A S) ~ kappa(S)^2,
  // so grade each side by half the requested decades.
  la::Vector s(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n - 1);
    s[i] = std::pow(10.0, -0.5 * log10_cond * t);
  }
  la::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      a(i, j) = s[i] * (core(i, j) / max_diag) * s[j];
  return a;
}

la::CsrMatrix random_sparse_diag_dominant(Rng& rng, std::size_t n,
                                          std::size_t nnz_per_row) {
  nnz_per_row = std::max<std::size_t>(1, std::min(nnz_per_row, n));
  la::SparseBuilder builder(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double off = 0.0;
    // stencil-like sparsity: the diagonal plus nnz_per_row - 1 random
    // off-diagonal couplings (duplicates are summed by the builder).
    for (std::size_t k = 0; k + 1 < nnz_per_row; ++k) {
      const auto j = static_cast<std::size_t>(rng.uniform_index(n));
      if (j == i) continue;
      const double v = rng.normal();
      builder.add(i, j, v);
      off += std::abs(v);
    }
    builder.add(i, i, off + 1.0 + rng.uniform());
  }
  return la::CsrMatrix(builder);
}

pc::PointCloud random_cloud(Rng& rng, std::size_t n_interior,
                            std::size_t n_per_side) {
  return pc::unit_square_scattered(n_interior, n_per_side, rng.next_u64());
}

std::unique_ptr<rbf::Kernel> random_kernel(Rng& rng) {
  switch (rng.uniform_index(5)) {
    case 0:
      return std::make_unique<rbf::PolyharmonicSpline>(3);
    case 1:
      return std::make_unique<rbf::PolyharmonicSpline>(5);
    case 2:
      return std::make_unique<rbf::GaussianKernel>(rng.uniform(0.5, 3.0));
    case 3:
      return std::make_unique<rbf::MultiquadricKernel>(rng.uniform(0.5, 3.0));
    default:
      return std::make_unique<rbf::InverseMultiquadricKernel>(
          rng.uniform(0.5, 3.0));
  }
}

rbf::RbffdConfig random_stencil_config(Rng& rng, std::size_t cloud_size) {
  rbf::RbffdConfig config;
  config.poly_degree = static_cast<int>(rng.uniform_index(2)) + 1;  // 1 or 2
  // Stencil must cover the polynomial basis ((d+1)(d+2)/2 monomials) with
  // headroom, and cannot exceed the cloud.
  const std::size_t min_k = config.poly_degree == 1 ? 9 : 13;
  const std::size_t max_k =
      std::min<std::size_t>(21, cloud_size > 0 ? cloud_size : min_k);
  config.stencil_size =
      min_k >= max_k ? max_k : min_k + rng.uniform_index(max_k - min_k + 1);
  return config;
}

LaplaceCase random_laplace_case(Rng& rng, std::size_t max_grid) {
  LaplaceCase c;
  const std::size_t min_grid = 6;
  max_grid = std::max(max_grid, min_grid);
  c.grid_n = min_grid + rng.uniform_index(max_grid - min_grid + 1);
  // PHS keeps the global collocation matrix well-behaved at every grid the
  // shrinker can visit; shape-parameter kernels are exercised separately.
  c.kernel = std::make_shared<rbf::PolyharmonicSpline>(3);
  c.problem =
      std::make_shared<control::LaplaceControlProblem>(c.grid_n, *c.kernel);
  // A smooth random iterate plus noise: gradients are probed away from the
  // symmetric zero control where cancellations could mask sign bugs.
  const std::vector<double> xs = c.problem->solver().control_x();
  const double a = rng.uniform(-0.5, 0.5);
  const double b = rng.uniform(-0.5, 0.5);
  c.control = la::Vector(c.problem->control_size());
  for (std::size_t i = 0; i < c.control.size(); ++i) {
    c.control[i] = a * std::sin(2.0 * 3.14159265358979323846 * xs[i]) +
                   b * std::cos(2.0 * 3.14159265358979323846 * xs[i]) +
                   0.05 * rng.normal();
  }
  return c;
}

}  // namespace updec::check
