#include "check/oracles.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#ifdef UPDEC_HAVE_OPENMP
#include <omp.h>
#endif

#include "autodiff/ops.hpp"
#include "autodiff/tape.hpp"
#include "check/generators.hpp"
#include "control/driver.hpp"
#include "control/laplace_problem.hpp"
#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "la/iterative.hpp"
#include "la/lu.hpp"
#include "la/qr.hpp"
#include "la/robust_solve.hpp"
#include "pointcloud/generators.hpp"
#include "rbf/collocation.hpp"
#include "rbf/rbffd.hpp"
#include "refine/adaptive_loop.hpp"
#include "rom/laplace_rom.hpp"
#include "rom/rom_solver.hpp"
#include "serve/cache.hpp"
#include "serve/scheduler.hpp"
#include "serve/shard.hpp"

namespace updec::check {
namespace {

/// error <= tolerance decides ok; detail should read as a sentence fragment.
OracleResult judged(double error, double tolerance, std::string detail) {
  OracleResult r;
  r.error = error;
  r.tolerance = tolerance;
  r.ok = error <= tolerance;
  r.detail = std::move(detail);
  return r;
}

double rel_diff(double a, double b) {
  return std::abs(a - b) / (1.0 + std::max(std::abs(a), std::abs(b)));
}

double max_rel_diff(const la::Vector& a, const la::Vector& b) {
  UPDEC_REQUIRE(a.size() == b.size(), "oracle vector size mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    worst = std::max(worst, rel_diff(a[i], b[i]));
  return worst;
}

double max_abs_diff(const la::Matrix& a, const la::Matrix& b) {
  UPDEC_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
                "oracle matrix shape mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      worst = std::max(worst, std::abs(a(i, j) - b(i, j)));
  return worst;
}

double max_abs_diff(const la::Vector& a, const la::Vector& b) {
  UPDEC_REQUIRE(a.size() == b.size(), "oracle vector size mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    worst = std::max(worst, std::abs(a[i] - b[i]));
  return worst;
}

double cosine(const la::Vector& a, const la::Vector& b) {
  return la::dot(a, b) / (la::nrm2(a) * la::nrm2(b) + 1e-300);
}

}  // namespace

// ---- AD vs FD on tape ops -------------------------------------------------

OracleResult ad_vs_fd_ops(const OracleCase& c) {
  Rng rng(c.seed);
  const std::size_t n = std::max<std::size_t>(c.size, 2);

  const la::CsrMatrix sp = random_sparse_diag_dominant(rng, n);
  const la::Matrix dense = random_matrix(rng, n, n);
  const la::LuFactorization lu(random_diag_dominant(rng, n));
  const la::Vector w1 = random_vector(rng, n);
  const la::Vector w2 = random_vector(rng, n);
  const la::Vector x0 = random_vector(rng, n);

  // One taped pipeline through every vector op with a hand-written VJP:
  //   y = A_lu^{-1} (S x + D x);  J = <y, w1> + <y o x, w2> + sum(0.5 x)
  // Evaluated through the tape for both the gradient and the FD probes, so
  // forward values and adjoints are checked against the same arithmetic.
  const auto evaluate = [&](const la::Vector& x, la::Vector* grad) {
    ad::Tape tape;
    ad::VarVec vx = ad::make_variables(tape, x);
    ad::VarVec y = ad::solve(lu, ad::add(ad::spmv(sp, vx), ad::gemv(dense, vx)));
    ad::Var j1 = ad::dot(y, w1);
    ad::Var j2 = ad::dot(ad::hadamard(y, vx), w2);
    ad::Var j3 = ad::sum(ad::scale(0.5, vx));
    const ad::Var j = tape.node2(j1.value() + j2.value(), j1.index(), 1.0,
                                 j2.index(), 1.0);
    const ad::Var total =
        tape.node2(j.value() + j3.value(), j.index(), 1.0, j3.index(), 1.0);
    if (grad != nullptr) {
      tape.backward(total);
      *grad = ad::adjoints(vx);
    }
    return total.value();
  };

  la::Vector g_ad;
  evaluate(x0, &g_ad);

  la::Vector g_fd(n);
  la::Vector xp = x0;
  for (std::size_t i = 0; i < n; ++i) {
    const double h = 1e-6 * (1.0 + std::abs(x0[i]));
    xp[i] = x0[i] + h;
    const double jp = evaluate(xp, nullptr);
    xp[i] = x0[i] - h;
    const double jm = evaluate(xp, nullptr);
    xp[i] = x0[i];
    g_fd[i] = (jp - jm) / (2.0 * h);
  }

  const double err = max_rel_diff(g_ad, g_fd);
  std::ostringstream os;
  os << "tape gradient vs central FD over spmv/gemv/lu-solve/dot/hadamard"
     << " (n=" << n << ", max rel component diff " << err << ")";
  return judged(err, 1e-4, os.str());
}

// ---- AD vs FD on the full Laplace control objective -----------------------

OracleResult ad_vs_fd_laplace(const OracleCase& c) {
  Rng rng(c.seed);
  const LaplaceCase lc = random_laplace_case(rng, std::max<std::size_t>(c.size, 6));
  auto dp = control::make_laplace_dp(lc.problem);
  auto fd = control::make_laplace_fd(lc.problem);

  la::Vector g_dp, g_fd;
  const double j_dp = dp->value_and_gradient(lc.control, g_dp);
  const double j_fd = fd->value_and_gradient(lc.control, g_fd);

  double err = rel_diff(j_dp, j_fd);
  err = std::max(err, max_rel_diff(g_dp, g_fd));
  std::ostringstream os;
  os << "DP gradient vs central FD on Laplace objective (grid " << lc.grid_n
     << ", " << g_dp.size() << " controls, worst rel diff " << err << ")";
  return judged(err, 1e-4, os.str());
}

// ---- DAL vs DP ------------------------------------------------------------

OracleResult dal_vs_dp_laplace(const OracleCase& c) {
  Rng rng(c.seed);
  // The continuous-adjoint (optimise-then-discretise) gradient only tracks
  // the exact discrete gradient inside its consistency domain: fine enough
  // grids and *smooth* controls near the optimisation path. Measured on
  // this codebase, grids >= 16 with controls within quarter-scale of the
  // analytic minimiser plus smooth perturbations keep the central cosine
  // >= 0.88; rough (white-noise) controls legitimately anti-align even at
  // grid 24 -- that is the paper's section-4 OTD-inconsistency, not a bug.
  // The oracle therefore randomises within the validated domain.
  const std::size_t grid = std::clamp<std::size_t>(c.size, 16, 28);
  const auto kernel = std::make_shared<rbf::PolyharmonicSpline>(3);
  const auto problem =
      std::make_shared<control::LaplaceControlProblem>(grid, *kernel);
  la::Vector control = problem->analytic_control();
  const double scale = rng.uniform(0.0, 0.25);
  const double a = rng.uniform(-0.1, 0.1);
  const double b = rng.uniform(-0.1, 0.1);
  const std::vector<double> xs = problem->solver().control_x();
  for (std::size_t i = 0; i < control.size(); ++i) {
    constexpr double kTwoPi = 2.0 * 3.14159265358979323846;
    control[i] = scale * control[i] + a * std::sin(kTwoPi * xs[i]) +
                 b * std::cos(kTwoPi * xs[i]);
  }

  auto dp = control::make_laplace_dp(problem);
  auto dal = control::make_laplace_dal(problem);
  la::Vector g_dp, g_dal;
  const double j_dp = dp->value_and_gradient(control, g_dp);
  const double j_dal = dal->value_and_gradient(control, g_dal);

  // Both strategies evaluate J through the same forward solve: the costs
  // must agree to roundoff no matter what the gradients do.
  const double cost_err = rel_diff(j_dp, j_dal);
  if (cost_err > 1e-10) {
    std::ostringstream os;
    os << "DAL and DP report different costs at the same control: " << j_dal
       << " vs " << j_dp;
    return judged(cost_err, 1e-10, os.str());
  }

  // The continuous-adjoint gradient is corrupted at the wall extremes (the
  // section-4 Runge corners), so direction agreement is asserted over the
  // central half of the control vector only.
  la::Vector central_dp, central_dal;
  for (std::size_t i = g_dp.size() / 4; i < 3 * g_dp.size() / 4; ++i) {
    central_dp.std().push_back(g_dp[i]);
    central_dal.std().push_back(g_dal[i]);
  }
  const double align = cosine(central_dp, central_dal);
  std::ostringstream os;
  os << "DAL vs DP central-gradient alignment on Laplace (grid " << grid
     << ", control scale " << scale << ", cosine " << align
     << ", costs agree to " << cost_err << ")";
  return judged(1.0 - align, 0.25, os.str());
}

// ---- dense LU vs Krylov vs robust escalation ------------------------------

OracleResult solver_equivalence(const OracleCase& c) {
  Rng rng(c.seed);
  const std::size_t n = std::max<std::size_t>(c.size, 4);
  const la::CsrMatrix a = random_sparse_diag_dominant(rng, n);
  const la::Vector b = random_vector(rng, n);

  const la::Vector x_ref = la::solve(a.to_dense(), b);
  const double scale = la::nrm_inf(x_ref) + 1.0;

  la::IterativeOptions opts;
  opts.rel_tol = 1e-12;
  opts.max_iterations = 20 * n + 200;

  double err = 0.0;
  std::string worst = "none";
  const auto consider = [&](const char* name, const la::Vector& x) {
    const double e = max_abs_diff(x, x_ref) / scale;
    if (e > err) {
      err = e;
      worst = name;
    }
  };

  consider("gmres", la::gmres(a, b, opts, la::jacobi_preconditioner(a))
                        .require_converged("oracle gmres")
                        .x);
  consider("bicgstab", la::bicgstab(a, b, opts, la::jacobi_preconditioner(a))
                           .require_converged("oracle bicgstab")
                           .x);
  {
    la::RobustSolver robust(a);
    la::Vector x;
    robust.solve(b, x).require_converged("oracle robust_solve");
    consider("robust_solve", x);
  }
  {
    // Sparse-first solver forced onto each of its two modes: the threshold
    // must select a *path*, never change the answer.
    la::RobustSolveOptions forced;
    forced.iterative = opts;
    forced.sparse_min_n = 0;  // force CSR + ILU-Krylov
    const la::SparseFirstSolver sparse_first(a, forced);
    la::SolveReport report;
    la::Vector x = sparse_first.solve(b, &report);
    report.require_converged("oracle sparse_first (sparse)");
    consider("sparse_first/sparse", x);

    // Same sparse path with the fp32 ILU(0) closure (UPDEC_MIXED_PRECISION):
    // preconditioner precision may change the iteration count, never the
    // accepted answer, so it must meet the same fp64 tolerance as the rest.
    forced.mixed_precision = true;
    const la::SparseFirstSolver mixed_first(a, forced);
    x = mixed_first.solve(b, &report);
    report.require_converged("oracle sparse_first (mixed)");
    consider("sparse_first/mixed", x);
    forced.mixed_precision = false;

    forced.sparse_min_n = n + 1;  // force eager dense LU
    const la::SparseFirstSolver dense_first(a, forced);
    x = dense_first.solve(b, &report);
    report.require_converged("oracle sparse_first (dense)");
    consider("sparse_first/dense", x);
  }

  std::ostringstream os;
  os << "GMRES/BiCGSTAB/robust_solve/sparse_first vs dense LU on "
     << "diag-dominant sparse system (n=" << n << ", worst path " << worst
     << " at " << err << ")";
  return judged(err, 1e-7, os.str());
}

// ---- batched vs looped ----------------------------------------------------

OracleResult batched_vs_looped(const OracleCase& c) {
  Rng rng(c.seed);
  const std::size_t n = std::max<std::size_t>(c.size, 2);
  const std::size_t k = 1 + rng.uniform_index(8);

  const la::Matrix a = random_diag_dominant(rng, n);
  la::Matrix b(n, k);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < k; ++j) b(i, j) = rng.normal();

  double err = 0.0;
  std::string worst = "none";
  const auto consider = [&](const char* name, double e) {
    if (e > err) {
      err = e;
      worst = name;
    }
  };

  // LuFactorization::solve_many against per-column solve().
  const la::LuFactorization lu(a);
  {
    const la::Matrix batched = lu.solve_many(b);
    la::Matrix looped(n, k);
    for (std::size_t j = 0; j < k; ++j) {
      la::Vector col(n);
      for (std::size_t i = 0; i < n; ++i) col[i] = b(i, j);
      const la::Vector x = lu.solve(col);
      for (std::size_t i = 0; i < n; ++i) looped(i, j) = x[i];
    }
    consider("lu.solve_many", max_abs_diff(batched, looped));
    consider("lu_solve_many", max_abs_diff(la::lu_solve_many(a, b), looped));
  }

  // gmres_many against per-column gmres with the shared preconditioner.
  {
    const la::CsrMatrix sp = random_sparse_diag_dominant(rng, n);
    la::IterativeOptions opts;
    opts.rel_tol = 1e-12;
    opts.max_iterations = 20 * n + 200;
    const la::Preconditioner precond = la::jacobi_preconditioner(sp);
    const la::BatchedIterativeResult batched =
        la::gmres_many(sp, b, opts, precond);
    batched.require_converged("oracle gmres_many");
    la::Matrix looped(n, k);
    for (std::size_t j = 0; j < k; ++j) {
      la::Vector col(n);
      for (std::size_t i = 0; i < n; ++i) col[i] = b(i, j);
      const la::Vector x = la::gmres(sp, col, opts, precond)
                               .require_converged("oracle gmres loop")
                               .x;
      for (std::size_t i = 0; i < n; ++i) looped(i, j) = x[i];
    }
    consider("gmres_many", max_abs_diff(batched.x, looped));
  }

  std::ostringstream os;
  os << "batched multi-RHS sweeps vs looped single solves (n=" << n
     << ", k=" << k << ", worst path " << worst << " at " << err << ")";
  return judged(err, 1e-10, os.str());
}

// ---- warm cache hits vs cold computes -------------------------------------

OracleResult cached_vs_cold(const OracleCase& c) {
  Rng rng(c.seed);
  const std::size_t side = std::max<std::size_t>(c.size, 4);
  const pc::PointCloud cloud = random_cloud(rng, side * side, side);
  const rbf::PolyharmonicSpline kernel(3);

  const auto interior = [](const pc::Node&) { return 0.0; };
  const auto boundary = [](const pc::Node& node) {
    return std::sin(3.0 * node.pos.x) + node.pos.y;
  };

  // Cold: a collocation that factors its own LU.
  rbf::GlobalCollocation cold(cloud, kernel, 1, rbf::LinearOp::laplacian());
  const la::Vector rhs = cold.assemble_rhs(interior, boundary);
  const la::Vector x_cold = cold.solve(rhs);

  // Warm: two fresh collocations of the same content served by one cache --
  // the second memoize must hit and both must reproduce the cold solution
  // bit-for-bit (same matrix bytes => same factorisation => same sweeps).
  serve::OperatorCache cache(std::size_t{1} << 30);
  rbf::GlobalCollocation warm1(cloud, kernel, 1, rbf::LinearOp::laplacian());
  rbf::GlobalCollocation warm2(cloud, kernel, 1, rbf::LinearOp::laplacian());
  serve::memoize_lu(cache, warm1);
  serve::memoize_lu(cache, warm2);
  const la::Vector x_warm1 = warm1.solve(rhs);
  const la::Vector x_warm2 = warm2.solve(rhs);

  double err = std::max(max_abs_diff(x_cold, x_warm1),
                        max_abs_diff(x_cold, x_warm2));

  // Memoized RBF-FD weights: second fetch must be the identical object and
  // match a cold weights_for() run exactly.
  const rbf::RbffdConfig config = random_stencil_config(rng, cloud.size());
  const rbf::RbffdOperators ops(cloud, kernel, config);
  const la::CsrMatrix w_cold = ops.weights_for(rbf::LinearOp::laplacian());
  const auto w1 =
      serve::cached_rbffd_weights(cache, ops, rbf::LinearOp::laplacian());
  const auto w2 =
      serve::cached_rbffd_weights(cache, ops, rbf::LinearOp::laplacian());
  if (w1.get() != w2.get())
    return judged(1.0, 0.0, "repeated cached_rbffd_weights returned distinct objects");
  err = std::max(err, max_abs_diff(w_cold.to_dense(), w1->to_dense()));

  const serve::OperatorCache::Stats stats = cache.stats();
  if (stats.misses != 2 || stats.hits < 2) {
    std::ostringstream os;
    os << "cache accounting wrong: expected 2 misses / >= 2 hits, got "
       << stats.misses << " misses / " << stats.hits << " hits";
    return judged(1.0, 0.0, os.str());
  }

  std::ostringstream os;
  os << "warm OperatorCache hits reproduce cold computes (" << cloud.size()
     << " nodes, " << stats.hits << " hits, max abs diff " << err << ")";
  return judged(err, 0.0, os.str());
}

// ---- OpenMP vs forced single thread ---------------------------------------

OracleResult threaded_vs_serial(const OracleCase& c) {
#ifndef UPDEC_HAVE_OPENMP
  (void)c;
  OracleResult r;
  r.skipped = true;
  r.detail = "OpenMP not compiled in; threaded-vs-serial oracle skipped";
  return r;
#else
  Rng rng(c.seed);
  const std::size_t n = std::max<std::size_t>(c.size, 4);
  const std::size_t k = 1 + rng.uniform_index(6);

  const la::Matrix a = random_matrix(rng, n, n);
  const la::Matrix bm = random_matrix(rng, n, n);
  const la::Matrix d = random_diag_dominant(rng, n);
  la::Matrix rhs(n, k);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < k; ++j) rhs(i, j) = rng.normal();
  const la::CsrMatrix sp = random_sparse_diag_dominant(rng, n);
  const la::Vector v = random_vector(rng, n);

  const std::size_t side = 4 + rng.uniform_index(4);
  const pc::PointCloud cloud = random_cloud(rng, side * side, side);
  const rbf::PolyharmonicSpline kernel(3);
  const rbf::RbffdConfig config = random_stencil_config(rng, cloud.size());

  struct Snapshot {
    la::Matrix gemm_out;
    la::Vector spmv_out;
    la::Matrix solve_many_out;
    la::Matrix colloc_matrix;
    la::Matrix rbffd_lap;
  };
  const auto compute = [&]() {
    Snapshot s;
    s.gemm_out = la::Matrix(n, n);
    la::gemm(1.0, a, bm, 0.0, s.gemm_out);
    s.spmv_out = sp.apply(v);
    s.solve_many_out = la::lu_solve_many(d, rhs);
    rbf::GlobalCollocation colloc(cloud, kernel, 1,
                                  rbf::LinearOp::laplacian());
    s.colloc_matrix = colloc.matrix();
    rbf::RbffdOperators ops(cloud, kernel, config);
    s.rbffd_lap = ops.laplacian().to_dense();
    return s;
  };

  const int saved_threads = omp_get_max_threads();
  omp_set_num_threads(1);
  Snapshot serial;
  try {
    serial = compute();
  } catch (...) {
    omp_set_num_threads(saved_threads);
    throw;
  }
  omp_set_num_threads(saved_threads);
  const Snapshot threaded = compute();

  double err = 0.0;
  std::string worst = "none";
  const auto consider = [&](const char* name, double e) {
    if (e > err) {
      err = e;
      worst = name;
    }
  };
  consider("gemm", max_abs_diff(serial.gemm_out, threaded.gemm_out));
  consider("spmv", max_abs_diff(serial.spmv_out, threaded.spmv_out));
  consider("lu_solve_many",
           max_abs_diff(serial.solve_many_out, threaded.solve_many_out));
  consider("collocation_assembly",
           max_abs_diff(serial.colloc_matrix, threaded.colloc_matrix));
  consider("rbffd_weights", max_abs_diff(serial.rbffd_lap, threaded.rbffd_lap));

  std::ostringstream os;
  os << "OpenMP (" << saved_threads << " threads) vs forced serial run "
     << "(n=" << n << ", worst kernel " << worst << " at " << err
     << "; row-parallel loops must be bitwise deterministic)";
  return judged(err, 0.0, os.str());
#endif
}

// ---- Cholesky / QR / LU consistency ---------------------------------------

OracleResult factorization_consistency(const OracleCase& c) {
  Rng rng(c.seed);
  const std::size_t n = std::max<std::size_t>(c.size, 2);
  const la::Matrix a = random_spd(rng, n);
  const la::Vector b = random_vector(rng, n);

  const la::Vector x_lu = la::solve(a, b);
  const double scale = la::nrm_inf(x_lu) + 1.0;

  double err = 0.0;
  std::string worst = "none";
  const auto consider = [&](const char* name, double e) {
    if (e > err) {
      err = e;
      worst = name;
    }
  };

  const la::CholeskyFactorization chol(a);
  consider("cholesky_solve", max_abs_diff(chol.solve(b), x_lu) / scale);

  const la::QrFactorization qr(a);
  consider("qr_solve", max_abs_diff(qr.solve_least_squares(b), x_lu) / scale);

  // log|det A| from the Cholesky factor vs the LU determinant.
  const la::LuFactorization lu(a);
  consider("log_determinant",
           rel_diff(chol.log_determinant(), std::log(std::abs(lu.determinant()))));

  std::ostringstream os;
  os << "Cholesky/QR/LU agreement on random SPD system (n=" << n
     << ", worst path " << worst << " at " << err << ")";
  return judged(err, 1e-8, os.str());
}

// ---- reduced-order tier vs full path --------------------------------------

OracleResult rom_vs_full(const OracleCase& c) {
  Rng rng(c.seed);
  const std::size_t n = std::max<std::size_t>(c.size, 8);

  // Part A: the estimator's three regimes on a random sparse system, on the
  // same sparse path the serve tier escalates to.
  la::RobustSolveOptions forced;
  forced.sparse_min_n = 0;
  const la::CsrMatrix a = random_sparse_diag_dominant(rng, n);
  const la::SparseFirstSolver full(a, forced);

  rom::RomConfig config;
  config.enabled = true;
  config.tol = 1e-8;
  config.max_k = n;
  config.min_snapshots = std::max<std::size_t>(3, n / 4);
  rom::SnapshotBank bank(1ull << 22);
  rom::RomSolver solver(full, bank, c.seed ^ 0x9E3779B97F4A7C15ull, config);

  // Cold: no basis exists, so every solve must escalate and be harvested.
  std::vector<la::Vector> rhs;
  for (std::size_t i = 0; i < config.min_snapshots; ++i) {
    rhs.push_back(random_vector(rng, n));
    rom::RomSolveReport rep;
    (void)solver.solve(rhs.back(), {}, &rep);
    if (!rep.escalated || rep.reduced)
      return judged(1.0, 0.0, "cold ROM solve did not escalate");
  }

  // In-span: x is linear in b, so a combination of the harvested right-hand
  // sides has its solution inside the snapshot span -- the estimator must
  // accept it in reduced space and the answer must match the full path.
  la::Vector inside(n, 0.0);
  for (const la::Vector& r : rhs) la::axpy(rng.uniform(-1.0, 1.0), r, inside);
  rom::RomSolveReport rep;
  const la::Vector x_rom = solver.solve(inside, {}, &rep);
  la::SolveReport full_rep;
  const la::Vector x_full = full.solve(inside, &full_rep);
  full_rep.require_converged("oracle rom_vs_full reference");
  if (!rep.reduced)
    return judged(1.0, 0.0,
                  "in-span rhs was not answered in reduced space (estimate " +
                      std::to_string(rep.estimate) + ")");
  double err = max_abs_diff(x_rom, x_full) / (la::nrm_inf(x_full) + 1.0);

  // Out-of-span: whichever path answers a fresh rhs, the result must agree
  // with the full solver -- an accepted reduced answer met a 1e-8 residual.
  const la::Vector fresh = random_vector(rng, n);
  const la::Vector y_rom = solver.solve(fresh, {}, &rep);
  const la::Vector y_full = full.solve(fresh, &full_rep);
  full_rep.require_converged("oracle rom_vs_full reference (fresh)");
  err = std::max(err, max_abs_diff(y_rom, y_full) / (la::nrm_inf(y_full) + 1.0));

  const rom::RomStats stats = solver.stats();
  if (stats.reduced + stats.escalated != config.min_snapshots + 2)
    return judged(1.0, 0.0, "ROM solve accounting does not balance");
  if (stats.rebuilds == 0 || stats.harvested < config.min_snapshots)
    return judged(1.0, 0.0, "escalations were not harvested into a basis");

  // Part B: the whole DAL control loop, ROM-routed vs full-path, from the
  // same jittered start. The estimator bounds each accepted solve, so the
  // final costs must stay within a small multiple of the ROM tolerance.
  const rbf::PolyharmonicSpline kernel(3);
  auto problem = std::make_shared<rom::LaplaceFdControlProblem>(8, kernel);
  rom::RomConfig loop_config;
  loop_config.enabled = true;
  loop_config.tol = 1e-7;
  loop_config.max_k = 24;
  loop_config.min_snapshots = 4;
  rom::SnapshotBank loop_bank(1ull << 24);
  auto loop_rom = std::make_shared<rom::RomSolver>(
      problem->solver().op(), loop_bank, 1, loop_config);

  la::Vector control = problem->initial_control();
  for (std::size_t i = 0; i < control.size(); ++i)
    control[i] += rng.normal(0.0, 0.1);

  control::DriverOptions options;
  options.iterations = 10;
  options.initial_learning_rate = 1e-2;
  const auto full_strategy = rom::make_laplace_fd_dal(problem);
  const auto rom_strategy = rom::make_laplace_rom_dal(problem, loop_rom);
  const control::DriverResult full_run =
      control::optimize_from(control, *full_strategy, options);
  const control::DriverResult rom_run =
      control::optimize_from(control, *rom_strategy, options);

  const rom::RomStats loop_stats = loop_rom->stats();
  if (loop_stats.escalated < loop_config.min_snapshots)
    return judged(1.0, 0.0, "ROM control loop never exercised escalation");
  if (loop_stats.reduced == 0)
    return judged(1.0, 0.0, "ROM control loop never used the reduced space");
  err = std::max(err, rel_diff(rom_run.final_cost, full_run.final_cost));

  std::ostringstream os;
  os << "RomSolver vs full sparse path (n=" << n << ", loop "
     << loop_stats.reduced << " reduced / " << loop_stats.escalated
     << " escalated, J_rom=" << rom_run.final_cost
     << " vs J_full=" << full_run.final_cost << ", worst " << err << ")";
  return judged(err, 1e-4, os.str());
}

// ---- adjoint-adaptive refinement vs uniform --------------------------------

/// The analytic minimiser sampled at a problem's control DOFs: at this
/// control the exact tracked cost is 0, so the discrete cost IS the
/// tracked-cost discretisation error -- an optimizer-free measure of cloud
/// quality.
la::Vector analytic_control_for(const rom::LaplaceFdControlProblem& p) {
  la::Vector c(p.control_size(), 0.0);
  const std::vector<double>& xs = p.solver().top_x();
  for (std::size_t i = 0; i + 1 < xs.size(); ++i)
    c[i] = pde::LaplaceSolver::analytic_control(xs[i]);
  return c;
}

OracleResult refinement_vs_uniform(const OracleCase& c) {
  Rng rng(c.seed);
  const std::size_t grid_n = std::clamp<std::size_t>(c.size, 12, 14);

  refine::AdaptiveOptions options;
  options.refine.cycles = 2;
  options.refine.refine_fraction = rng.uniform(0.10, 0.20);
  const rbf::PolyharmonicSpline kernel(3);
  const refine::AdaptiveResult adapted =
      refine::AdaptiveLoop(grid_n, kernel, options).run();
  const std::size_t adapted_nodes =
      adapted.problem->solver().cloud().size();
  const double adapted_err =
      adapted.problem->cost(analytic_control_for(*adapted.problem));

  // Uniform arm: the smallest uniform grid with AT LEAST as many nodes, so
  // the comparison can only flatter the uniform cloud.
  std::size_t uniform_n = grid_n;
  while ((uniform_n + 1) * (uniform_n + 1) < adapted_nodes) ++uniform_n;
  const rom::LaplaceFdControlProblem uniform(uniform_n, kernel);
  const double uniform_err = uniform.cost(analytic_control_for(uniform));

  std::ostringstream os;
  os << "adaptive refinement (base " << grid_n << "^2, fraction "
     << options.refine.refine_fraction << ") reached " << adapted_nodes
     << " nodes with tracked-cost error " << adapted_err << " vs uniform "
     << uniform.solver().cloud().size() << " nodes at " << uniform_err;
  if (!(uniform_err > 0.0))
    return judged(1.0, 0.0, "uniform reference error vanished: " + os.str());
  // The adapted cloud must not lose to uniform at matched size (the bench
  // gate demands 2x; the randomized oracle only asserts "never worse").
  return judged(adapted_err / uniform_err, 1.0, os.str());
}

// ---- sharded serving vs in-process ----------------------------------------

OracleResult sharded_vs_single(const OracleCase& c) {
  Rng rng(c.seed);
  const std::size_t n_jobs = std::max<std::size_t>(c.size, 4);

  // A mixed batch: several grid families so a 4-shard pool actually spreads
  // load (and steals), randomized seeds/jitter so runs are distinct jobs.
  std::vector<serve::Scenario> scenarios;
  scenarios.reserve(n_jobs);
  for (std::size_t i = 0; i < n_jobs; ++i) {
    serve::Scenario sc;
    sc.id = "oracle-" + std::to_string(i);
    sc.problem = serve::ProblemKind::kLaplace;
    sc.strategy = serve::Strategy::kDal;
    sc.grid_n = 6 + rng.uniform_index(3);
    sc.iterations = 2 + rng.uniform_index(3);
    sc.learning_rate = 1e-2;
    sc.seed = rng.next_u64();
    sc.control_jitter = rng.uniform(0.0, 0.2);
    scenarios.push_back(sc);
  }

  // Reference arm: plain run_scenario with a private cache, no processes.
  serve::OperatorCache reference_cache(64u << 20, "");
  std::vector<serve::JobReport> reference;
  reference.reserve(n_jobs);
  for (const serve::Scenario& sc : scenarios)
    reference.push_back(serve::run_scenario(sc, reference_cache));

  const auto run_sharded = [&](std::size_t shards) {
    serve::SchedulerOptions options;
    options.shards = shards;
    serve::Scheduler scheduler(options);
    std::vector<serve::Scheduler::JobId> ids;
    ids.reserve(n_jobs);
    for (const serve::Scenario& sc : scenarios)
      ids.push_back(scheduler.submit(sc));
    std::vector<serve::JobReport> reports;
    reports.reserve(n_jobs);
    for (const auto id : ids) reports.push_back(scheduler.wait(id));
    return reports;
  };

  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    const std::vector<serve::JobReport> reports = run_sharded(shards);
    for (std::size_t i = 0; i < n_jobs; ++i) {
      const serve::JobReport& got = reports[i];
      const serve::JobReport& want = reference[i];
      std::ostringstream os;
      os << scenarios[i].id << " via " << shards << " shard(s) ";
      if (got.status != serve::JobStatus::kSucceeded) {
        os << "failed: " << got.error;
        return judged(1.0, 0.0, os.str());
      }
      if (got.final_cost != want.final_cost ||
          got.iterations != want.iterations ||
          got.cost_history != want.cost_history) {
        os << "diverged from the in-process run: J=" << got.final_cost
           << " vs " << want.final_cost << " ("
           << std::abs(got.final_cost - want.final_cost) << " apart), "
           << got.iterations << " vs " << want.iterations << " iterations";
        return judged(1.0, 0.0, os.str());
      }
    }
  }

  std::ostringstream os;
  os << "sharded serving vs in-process run (" << n_jobs
     << " jobs, 1-shard and 4-shard pools, per-job costs bitwise equal)";
  return judged(0.0, 0.0, os.str());
}

// ---- catalogue ------------------------------------------------------------

const std::vector<Oracle>& all_oracles() {
  static const std::vector<Oracle> oracles = {
      {"ad_vs_fd_ops", "reverse-mode AD vs central FD on the vector tape ops",
       4, 32, &ad_vs_fd_ops},
      {"ad_vs_fd_laplace",
       "DP gradient vs central FD on the Laplace control objective", 6, 12,
       &ad_vs_fd_laplace},
      {"dal_vs_dp_laplace",
       "DAL adjoint gradient vs DP gradient on the Laplace problem", 16, 28,
       &dal_vs_dp_laplace},
      {"solver_equivalence",
       "dense LU vs GMRES vs BiCGSTAB vs robust_solve escalation", 8, 96,
       &solver_equivalence},
      {"batched_vs_looped",
       "solve_many / lu_solve_many / gmres_many vs looped single solves", 4,
       64, &batched_vs_looped},
      {"cached_vs_cold",
       "warm OperatorCache hits vs cold assembly + factorisation", 4, 9,
       &cached_vs_cold},
      {"threaded_vs_serial",
       "OpenMP kernels vs the same run forced to one thread", 8, 64,
       &threaded_vs_serial},
      {"factorization_consistency",
       "Cholesky and QR vs LU on random SPD systems", 2, 64,
       &factorization_consistency},
      {"rom_vs_full",
       "POD/Galerkin reduced solves vs the full sparse path", 8, 48,
       &rom_vs_full},
      {"refinement_vs_uniform",
       "adjoint-adapted point clouds vs uniform grids at matched node count",
       12, 14, &refinement_vs_uniform},
      {"sharded_vs_single",
       "multi-process shard pools vs a plain in-process scenario run", 4, 12,
       &sharded_vs_single},
  };
  return oracles;
}

const Oracle* find_oracle(std::string_view name) {
  for (const Oracle& o : all_oracles())
    if (name == o.name) return &o;
  return nullptr;
}

OracleResult run_guarded(const Oracle& oracle, OracleCase c) {
  c.size = std::clamp(c.size, oracle.min_size, oracle.max_size);
  try {
    return oracle.run(c);
  } catch (const std::exception& e) {
    OracleResult r;
    r.ok = false;
    r.error = 1.0;
    r.tolerance = 0.0;
    r.detail = std::string("exception escaped oracle: ") + e.what();
    return r;
  }
}

}  // namespace updec::check
