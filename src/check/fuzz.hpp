#pragma once
/// \file fuzz.hpp
/// \brief Seeded fuzz driver with failure shrinking over the oracle catalogue.
///
/// One master seed determines the entire run: each trial draws its oracle,
/// case seed and problem size from an Rng seeded with the master seed, so
/// `UPDEC_FUZZ_SEED=<master> updec_fuzz --trials N` replays a reported run
/// exactly. On a failure the driver shrinks: holding the case seed fixed it
/// scans sizes upward from the oracle's minimum and reports the smallest
/// size that still fails, together with a one-line replay command.
///
/// Failures that prove to be genuine bugs graduate into pinned_cases(),
/// which tier-1 (tests/test_properties.cpp) and the pinned bench replay
/// forever (see docs/TESTING.md for the promotion workflow).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "check/oracles.hpp"

namespace updec::check {

/// Configuration of one fuzz run.
struct FuzzOptions {
  std::uint64_t master_seed = 0x9E3779B97F4A7C15ull;
  std::size_t trials = 100;    ///< 0 = unbounded (use max_seconds)
  double max_seconds = 0.0;    ///< wall-clock budget; 0 = unbounded
  std::string only_oracle;     ///< restrict to one oracle family ("" = all)
  std::size_t max_size = 0;    ///< clamp problem sizes (0 = oracle default)
  bool shrink = true;          ///< minimise failing cases
};

/// One failing trial (after shrinking, if enabled).
struct FuzzFailure {
  std::string oracle;
  std::uint64_t master_seed = 0;
  std::size_t trial = 0;        ///< 0-based index within the run
  std::uint64_t case_seed = 0;  ///< direct replay: --case-seed + --size
  std::size_t size = 0;         ///< size as originally drawn
  std::size_t shrunk_size = 0;  ///< smallest size that still fails
  OracleResult result;          ///< result at the shrunk size
};

/// Aggregate outcome of a fuzz run.
struct FuzzReport {
  std::size_t trials_run = 0;
  std::size_t skipped = 0;
  std::vector<FuzzFailure> failures;
  double seconds = 0.0;

  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// Run the fuzz loop, streaming progress and failure replay lines to `out`.
/// `catalogue` defaults to all_oracles(); tests inject a custom catalogue to
/// exercise the driver (shrinking, replay lines) with known-failing oracles.
FuzzReport run_fuzz(const FuzzOptions& options, std::ostream& out,
                    const std::vector<Oracle>* catalogue = nullptr);

/// Replay one explicit case (the --case-seed path and the pinned-case path).
/// Returns the oracle result; prints a verdict line to `out`.
OracleResult replay_case(const Oracle& oracle, const OracleCase& c,
                         std::ostream& out);

/// A fuzz finding promoted to a permanent regression case.
struct PinnedCase {
  const char* oracle;
  std::uint64_t case_seed;
  std::size_t size;
  const char* note;
};

/// Pinned regression cases replayed by tier-1 tests and benchmarked by
/// bench_fuzz_pinned. Add new entries here when promoting a fuzz find.
const std::vector<PinnedCase>& pinned_cases();

}  // namespace updec::check
