#include "check/fuzz.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>

#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace updec::check {
namespace {

/// Seeds are printed in hex: that is what UPDEC_FUZZ_SEED and --case-seed
/// accept back, and hex survives copy-paste through CI logs unmangled.
std::ostream& put_seed(std::ostream& os, std::uint64_t seed) {
  const auto flags = os.flags();
  os << "0x" << std::hex << seed;
  os.flags(flags);
  return os;
}

void print_failure(const FuzzFailure& f, std::ostream& out) {
  out << "trial " << f.trial << ": FAIL oracle=" << f.oracle
      << " size=" << f.size << " case_seed=";
  put_seed(out, f.case_seed) << "\n";
  out << "  detail: " << f.result.detail << "\n";
  out << "  error " << f.result.error << " > tolerance " << f.result.tolerance;
  if (f.shrunk_size != f.size) out << " (shrunk to size=" << f.shrunk_size << ")";
  out << "\n";
  out << "  replay run:  UPDEC_FUZZ_SEED=";
  put_seed(out, f.master_seed)
      << " updec_fuzz --trials " << (f.trial + 1) << "\n";
  out << "  replay case: updec_fuzz --oracle " << f.oracle << " --case-seed ";
  put_seed(out, f.case_seed) << " --size " << f.shrunk_size << "\n";
}

}  // namespace

FuzzReport run_fuzz(const FuzzOptions& options, std::ostream& out,
                    const std::vector<Oracle>* catalogue) {
  FuzzReport report;
  Stopwatch watch;

  const std::vector<Oracle>& families =
      (catalogue != nullptr) ? *catalogue : all_oracles();
  std::vector<const Oracle*> pool;
  for (const Oracle& o : families) {
    if (options.only_oracle.empty() || options.only_oracle == o.name)
      pool.push_back(&o);
  }
  if (pool.empty()) {
    out << "[updec_fuzz] unknown oracle '" << options.only_oracle
        << "'; known oracles:\n";
    for (const Oracle& o : families)
      out << "  " << o.name << " -- " << o.summary << "\n";
    FuzzFailure f;
    f.oracle = options.only_oracle;
    f.result.ok = false;
    f.result.detail = "unknown oracle name";
    report.failures.push_back(std::move(f));
    return report;
  }

  out << "[updec_fuzz] seed=";
  put_seed(out, options.master_seed)
      << " trials=" << (options.trials == 0 ? std::string("unbounded")
                                            : std::to_string(options.trials))
      << " budget="
      << (options.max_seconds > 0.0
              ? std::to_string(options.max_seconds) + "s"
              : std::string("unbounded"))
      << " oracles=" << pool.size() << "\n";

  Rng master(options.master_seed);
  for (std::size_t trial = 0;; ++trial) {
    if (options.trials != 0 && trial >= options.trials) break;
    if (options.max_seconds > 0.0 && watch.seconds() >= options.max_seconds)
      break;

    // Every trial consumes exactly three master draws (oracle, seed, size)
    // whatever happens afterwards, so replay-by-master-seed stays aligned.
    const Oracle& oracle = *pool[master.uniform_index(pool.size())];
    OracleCase c;
    c.seed = master.next_u64();
    std::size_t hi = oracle.max_size;
    if (options.max_size != 0) hi = std::min(hi, options.max_size);
    hi = std::max(hi, oracle.min_size);
    c.size = oracle.min_size + master.uniform_index(hi - oracle.min_size + 1);

    const OracleResult result = run_guarded(oracle, c);
    ++report.trials_run;
    if (result.skipped) {
      ++report.skipped;
      continue;
    }
    if (result.ok) continue;

    FuzzFailure f;
    f.oracle = oracle.name;
    f.master_seed = options.master_seed;
    f.trial = trial;
    f.case_seed = c.seed;
    f.size = c.size;
    f.shrunk_size = c.size;
    f.result = result;

    if (options.shrink) {
      // Hold the case seed fixed and scan sizes upward from the oracle's
      // floor: the first size that still fails is the minimal reproducer.
      for (std::size_t s = oracle.min_size; s < c.size; ++s) {
        OracleCase small = c;
        small.size = s;
        const OracleResult r = run_guarded(oracle, small);
        if (!r.skipped && !r.ok) {
          f.shrunk_size = s;
          f.result = r;
          break;
        }
      }
    }

    print_failure(f, out);
    report.failures.push_back(std::move(f));
  }

  report.seconds = watch.seconds();
  out << "[updec_fuzz] " << report.trials_run << " trials, " << report.skipped
      << " skipped, " << report.failures.size() << " failures in "
      << std::fixed << std::setprecision(2) << report.seconds
      << "s (seed ";
  put_seed(out, options.master_seed) << ")\n";
  return report;
}

OracleResult replay_case(const Oracle& oracle, const OracleCase& c,
                         std::ostream& out) {
  const OracleResult result = run_guarded(oracle, c);
  out << "[updec_fuzz] replay oracle=" << oracle.name << " size=" << c.size
      << " case_seed=";
  put_seed(out, c.seed) << ": "
                        << (result.skipped ? "SKIP"
                                           : (result.ok ? "PASS" : "FAIL"))
                        << "\n  " << result.detail << "\n";
  return result;
}

const std::vector<PinnedCase>& pinned_cases() {
  // Promotion workflow: when a fuzz failure is confirmed as a bug and
  // fixed, append its (oracle, case_seed, shrunk size) here with a note
  // naming the fix. Tier-1 replays every entry on every run.
  static const std::vector<PinnedCase> cases = {
      {"ad_vs_fd_ops", 0x7c9e1f3a5b8d2046ull, 24,
       "stress pin: largest tape-op pipeline the Debug budget allows"},
      {"solver_equivalence", 0x3f6b9d12a4c8e075ull, 96,
       "stress pin: widest Krylov-vs-LU system in the default size range"},
      {"batched_vs_looped", 0x58d0c2b7e91f6a34ull, 64,
       "stress pin: full-width multi-RHS sweep vs looped solves"},
      {"factorization_consistency", 0x21aa7e44c3d95b80ull, 64,
       "stress pin: Cholesky/QR/LU agreement at the range ceiling"},
      {"rom_vs_full", 0x6d4a92e8f15c3b07ull, 32,
       "stress pin: reduced-order escalate/accept ladder at a mid-range "
       "system size plus the ROM-routed DAL loop"},
      {"sharded_vs_single", 0x4e1b83c6d90f2a57ull, 8,
       "stress pin: mixed-grid batch through 1- and 4-shard pools must "
       "replay the in-process costs bitwise"},
  };
  return cases;
}

}  // namespace updec::check
