#pragma once
/// \file oracles.hpp
/// \brief Differential-testing oracles for the solver stack.
///
/// An oracle is a reusable predicate that builds a random problem instance
/// from a (seed, size) pair and cross-checks two or more code paths that
/// must agree: reverse-mode AD against central finite differences, the DAL
/// adjoint gradient against the DP gradient (the paper's central
/// consistency claim), dense LU against the Krylov solvers and the
/// robust-solve escalation chain, batched multi-RHS sweeps against looped
/// single solves, warm operator-cache hits against cold computes, and
/// OpenMP runs against single-threaded runs.
///
/// The same oracle functions back two front ends: tests/test_properties.cpp
/// runs a bounded number of trials per family inside gtest (tier-1), and
/// examples/updec_fuzz drives unbounded randomized trials with failure
/// shrinking (see fuzz.hpp). Keeping the predicates here -- in the library,
/// not the test binary -- is what lets a fuzz-found failure be replayed
/// verbatim as a pinned regression test.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace updec::check {

/// One randomized trial: everything an oracle needs to be reproducible.
struct OracleCase {
  std::uint64_t seed = 1;  ///< seeds the generator Rng for this trial
  std::size_t size = 16;   ///< problem scale (meaning is per-oracle)
};

/// Outcome of one oracle evaluation.
struct OracleResult {
  bool ok = true;
  bool skipped = false;    ///< environment cannot run this oracle (e.g. no
                           ///< OpenMP); counts as neither pass nor failure
  double error = 0.0;      ///< worst observed discrepancy
  double tolerance = 0.0;  ///< the bound `error` was checked against
  std::string detail;      ///< human-readable description of the check/failure
};

/// A named oracle family with its admissible size range. `min_size` is the
/// floor the fuzz shrinker may descend to; `max_size` bounds the sizes the
/// drivers draw by default.
struct Oracle {
  const char* name;
  const char* summary;
  std::size_t min_size;
  std::size_t max_size;
  OracleResult (*run)(const OracleCase&);
};

/// The oracle catalogue (stable order; names are CLI / replay identifiers).
const std::vector<Oracle>& all_oracles();

/// Look up an oracle by name; nullptr if unknown.
const Oracle* find_oracle(std::string_view name);

/// Run an oracle with exceptions converted into failing results (an
/// updec::Error escaping a solver is a finding, not a harness crash). The
/// case size is clamped into [min_size, max_size] first.
OracleResult run_guarded(const Oracle& oracle, OracleCase c);

// ---- the oracle families (directly callable for pinned regressions) ------

/// Reverse-mode AD through the vector tape ops (spmv, gemv, LU solve, dot,
/// hadamard, sum) against central finite differences of the same taped
/// scalar. size = vector dimension.
OracleResult ad_vs_fd_ops(const OracleCase& c);

/// DP gradient of the full Laplace control objective against central finite
/// differences at a random control iterate. size = grid resolution.
OracleResult ad_vs_fd_laplace(const OracleCase& c);

/// DAL adjoint gradient against the DP gradient on the Laplace problem:
/// identical costs, strongly aligned central gradient components (the wall
/// extremes legitimately differ -- section 4's Runge-corner effect).
/// size = grid resolution.
OracleResult dal_vs_dp_laplace(const OracleCase& c);

/// Dense LU vs GMRES vs BiCGSTAB vs the RobustSolver escalation chain on a
/// random sparse diagonally dominant system. size = matrix dimension.
OracleResult solver_equivalence(const OracleCase& c);

/// LuFactorization::solve_many / lu_solve_many / gmres_many against looped
/// single solves on the same systems. size = matrix dimension.
OracleResult batched_vs_looped(const OracleCase& c);

/// Warm OperatorCache hits (memoized collocation LU, memoized RBF-FD
/// weights) against cold computes: identical results, correct hit/miss
/// accounting. size = nodes per cloud side.
OracleResult cached_vs_cold(const OracleCase& c);

/// OpenMP parallel kernels (gemm, SpMV, batched LU sweeps, collocation
/// assembly, RBF-FD weights) against the same computations with the OpenMP
/// team forced to one thread. All row-parallel loops carry sequential
/// per-row accumulations, so results must be bit-for-bit identical.
/// Skipped (ok, skipped = true) when OpenMP is not compiled in.
/// size = matrix dimension.
OracleResult threaded_vs_serial(const OracleCase& c);

/// Cholesky and Householder QR against LU on random SPD systems, plus the
/// L L^T round trip and log-determinant agreement. size = matrix dimension.
OracleResult factorization_consistency(const OracleCase& c);

/// The reduced-order tier against the full sparse path. Part A drives a
/// RomSolver on a random sparse diagonally dominant system through its
/// three regimes: cold solves must escalate (and be harvested), an
/// in-snapshot-span right-hand side must be answered in reduced space and
/// match the full solution, and solve accounting must balance (every solve
/// is either reduced or escalated, never silently dropped). Part B runs the
/// Laplace DAL control loop with all PDE solves routed through a RomSolver
/// and checks the final cost against the full-path DAL loop from the same
/// start. size = matrix dimension for part A.
OracleResult rom_vs_full(const OracleCase& c);

/// The sharded multi-process serving tier against a plain in-process run.
/// A random scenario batch (mixed grid families, seeds and iteration
/// budgets) is solved three ways -- directly through run_scenario with a
/// private cache, through a 1-shard pool, and through a 4-shard pool with
/// work stealing -- and every per-job final cost, iteration count and cost
/// history must agree BITWISE (tolerance 0): routing and the wire codec
/// transport raw double bit patterns and must not perturb results.
/// size = number of jobs in the batch.
OracleResult sharded_vs_single(const OracleCase& c);

}  // namespace updec::check
