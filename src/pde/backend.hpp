#pragma once
/// \file backend.hpp
/// Numeric backends for PDE solvers that must run both in plain arithmetic
/// (DAL, PINN reference solves, benchmarking) and on the reverse-mode tape
/// (the DP strategy). Generic solver code is written once against this tiny
/// interface; elementwise arithmetic works untouched because ad::Var
/// overloads the scalar operators.

#include "autodiff/ops.hpp"
#include "la/lu.hpp"
#include "la/robust_solve.hpp"
#include "la/sparse.hpp"

namespace updec::pde {

/// Plain double arithmetic.
struct DoubleBackend {
  using Vec = la::Vector;
  using Scalar = double;

  [[nodiscard]] Vec constants(const la::Vector& v) const { return v; }
  [[nodiscard]] Vec zeros(std::size_t n) const { return Vec(n, 0.0); }
  [[nodiscard]] Scalar scalar(double c) const { return c; }
  [[nodiscard]] Vec spmv(const la::CsrMatrix& a, const Vec& x) const {
    return a.apply(x);
  }
  [[nodiscard]] Vec solve(const la::LuFactorization& lu, const Vec& b) const {
    return lu.solve(b);
  }
  [[nodiscard]] Vec solve(const la::SparseFirstSolver& op,
                          const Vec& b) const {
    return op.solve(b);
  }
  [[nodiscard]] static double value(Scalar s) { return s; }
};

/// Reverse-mode tape arithmetic: SpMV and solves are recorded as custom ops
/// with hand-written VJPs (ops.hpp), everything else as scalar nodes.
struct TapeBackend {
  ad::Tape* tape = nullptr;

  using Vec = ad::VarVec;
  using Scalar = ad::Var;

  [[nodiscard]] Vec constants(const la::Vector& v) const {
    return ad::make_constants(*tape, v);
  }
  [[nodiscard]] Vec zeros(std::size_t n) const {
    return ad::make_constants(*tape, la::Vector(n, 0.0));
  }
  [[nodiscard]] Scalar scalar(double c) const { return tape->constant(c); }
  [[nodiscard]] Vec spmv(const la::CsrMatrix& a, const Vec& x) const {
    return ad::spmv(a, x);
  }
  [[nodiscard]] Vec solve(const la::LuFactorization& lu, const Vec& b) const {
    return ad::solve(lu, b);
  }
  [[nodiscard]] Vec solve(const la::SparseFirstSolver& op,
                          const Vec& b) const {
    return ad::solve(op, b);
  }
  [[nodiscard]] static double value(const Scalar& s) { return s.value(); }
};

}  // namespace updec::pde
