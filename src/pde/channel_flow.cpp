#include "pde/channel_flow.hpp"

#include "util/metrics.hpp"
#include "util/trace.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <string>

#include "la/blas.hpp"
#include "la/robust_solve.hpp"

namespace updec::pde {

namespace tags = pc::tags;

ChannelFlowSolver::ChannelFlowSolver(const pc::PointCloud& cloud,
                                     const rbf::Kernel& kernel,
                                     const ChannelFlowConfig& config,
                                     const pc::ChannelSpec& spec)
    : cloud_(&cloud),
      config_(config),
      spec_(spec),
      operators_(cloud, kernel, config.rbffd),
      dx_(operators_.weights_for(rbf::LinearOp::d_dx())),
      dy_(operators_.weights_for(rbf::LinearOp::d_dy())),
      lap_(operators_.weights_for(rbf::LinearOp::laplacian())) {
  const std::size_t n = cloud.size();

  // Sorted inlet / outlet index sets.
  inlet_nodes_ = cloud.indices_with_tag(tags::kInlet);
  outlet_nodes_ = cloud.indices_with_tag(tags::kOutlet);
  UPDEC_REQUIRE(!inlet_nodes_.empty() && !outlet_nodes_.empty(),
                "cloud has no inlet/outlet (not a channel cloud?)");
  const auto by_y = [&](std::size_t a, std::size_t b) {
    return cloud.node(a).pos.y < cloud.node(b).pos.y;
  };
  std::sort(inlet_nodes_.begin(), inlet_nodes_.end(), by_y);
  std::sort(outlet_nodes_.begin(), outlet_nodes_.end(), by_y);
  for (const std::size_t i : inlet_nodes_) inlet_y_.push_back(cloud.node(i).pos.y);
  for (const std::size_t i : outlet_nodes_)
    outlet_y_.push_back(cloud.node(i).pos.y);

  for (const int tag : {tags::kWall, tags::kBlowing, tags::kSuction})
    for (const std::size_t i : cloud.indices_with_tag(tag))
      wall_nodes_.push_back(i);


  // Trapezoid weights along the outlet, extended to the walls (y=0, y=Ly)
  // where the velocity is pinned to zero anyway.
  outlet_quad_ = la::Vector(outlet_nodes_.size(), 0.0);
  for (std::size_t i = 0; i + 1 < outlet_nodes_.size(); ++i) {
    const double h = outlet_y_[i + 1] - outlet_y_[i];
    outlet_quad_[i] += 0.5 * h;
    outlet_quad_[i + 1] += 0.5 * h;
  }

  // Pressure-Poisson system with the *consistent* discrete Laplacian
  // Dx.Dx + Dy.Dy on interior rows: the projection then removes exactly the
  // divergence it is driven by (using the RBF-FD Laplacian here instead
  // leaves an O(1) commutator residual that self-amplifies across steps).
  // Boundary rows: dp/dn = 0 on inlet and walls, p = 0 at the outlet.
  // Both operators assemble sparse straight from the stencil-weight CSRs --
  // no dense detour; SparseFirstSolver densifies only below its threshold.
  is_interior_.assign(n, 0);
  for (std::size_t i = 0; i < cloud.num_internal(); ++i) is_interior_[i] = 1;
  lap_consistent_ = rbf::consistent_laplacian(dx_, dy_, is_interior_);
  const auto scatter_row = [](const la::CsrMatrix& m, std::size_t row,
                              double scale, la::SparseBuilder& into) {
    for (std::size_t k = m.row_ptr()[row]; k < m.row_ptr()[row + 1]; ++k)
      into.add(row, m.col_idx()[k], scale * m.values()[k]);
  };
  la::SparseBuilder pressure(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const pc::Node& node = cloud.node(i);
    if (is_interior_[i]) {
      scatter_row(config_.consistent_pressure ? lap_consistent_ : lap_, i,
                  1.0, pressure);
    } else if (node.tag == tags::kOutlet) {
      pressure.add(i, i, 1.0);
    } else {
      scatter_row(dx_, i, node.normal.x, pressure);
      scatter_row(dy_, i, node.normal.y, pressure);
    }
  }
  pressure_op_ =
      la::SparseFirstSolver(la::CsrMatrix(pressure), config_.solver);

  // Semi-implicit momentum operator: (I - dt/Re Lap) on interior rows,
  // identity on Dirichlet velocity rows, and the outflow condition
  // du/dn = 0 as an implicit RBF-FD d/dx row at the outlet (explicit
  // donor-copy variants destabilise wall-graded clouds).
  const double nu_dt = config_.dt / config_.reynolds;
  const double hv_dt = config_.hyperviscosity * config_.dt;
  // Biharmonic rows: (Lap^2)_i over interior rows of the product Laplacian
  // (sparse-sparse product; boundary rows of lap_consistent_ are empty so
  // the mask only skips forming interior->boundary fill that gets dropped).
  la::CsrMatrix lap2;
  if (hv_dt > 0.0)
    lap2 = la::multiply(lap_consistent_, lap_consistent_, &is_interior_);
  la::SparseBuilder momentum(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    if (is_interior_[i]) {
      momentum.add(i, i, 1.0);
      scatter_row(lap_consistent_, i, -nu_dt, momentum);
      if (hv_dt > 0.0) scatter_row(lap2, i, hv_dt, momentum);
    } else if (cloud.node(i).tag == tags::kOutlet) {
      scatter_row(dx_, i, 1.0, momentum);
    } else {
      momentum.add(i, i, 1.0);
    }
  }
  momentum_op_ =
      la::SparseFirstSolver(la::CsrMatrix(momentum), config_.solver);
}

double ChannelFlowSolver::target_outflow(double y) const {
  const double ly = spec_.ly;
  return 4.0 * y * (ly - y) / (ly * ly);
}

la::Vector ChannelFlowSolver::parabolic_inflow() const {
  la::Vector c(inlet_nodes_.size());
  for (std::size_t q = 0; q < inlet_nodes_.size(); ++q)
    c[q] = target_outflow(inlet_y_[q]);
  return c;
}

double ChannelFlowSolver::patch_velocity_at(std::size_t node) const {
  const pc::Node& n = cloud_->node(node);
  const auto bump = [&](double start, double end) {
    const double t = (n.pos.x - start) / (end - start);
    if (t <= 0.0 || t >= 1.0) return 0.0;
    const double s = std::sin(std::numbers::pi * t);
    return config_.patch_velocity * s * s;
  };
  // Both patches push flow in +y: blowing injects at the bottom wall,
  // suction extracts through the top wall (the fig. 1 cross-flow).
  if (n.tag == tags::kBlowing) return bump(spec_.blow_start, spec_.blow_end);
  if (n.tag == tags::kSuction)
    return bump(spec_.suction_start, spec_.suction_end);
  return 0.0;
}

la::Vector ChannelFlowSolver::divergence(const la::Vector& u,
                                         const la::Vector& v) const {
  la::Vector div = dx_.apply(u);
  const la::Vector dyv = dy_.apply(v);
  for (std::size_t i = 0; i < div.size(); ++i) div[i] += dyv[i];
  return div;
}

template <typename Backend>
void ChannelFlowSolver::apply_velocity_bcs(
    const Backend& backend, typename Backend::Vec& u, typename Backend::Vec& v,
    const typename Backend::Vec& inflow) const {
  // Inlet: u = control, v = 0.
  for (std::size_t q = 0; q < inlet_nodes_.size(); ++q) {
    u[inlet_nodes_[q]] = inflow[q];
    v[inlet_nodes_[q]] = backend.scalar(0.0);
  }
  // Walls and patches: no-slip u, prescribed wall-normal v.
  for (const std::size_t i : wall_nodes_) {
    u[i] = backend.scalar(0.0);
    v[i] = backend.scalar(patch_velocity_at(i));
  }
  // Outlet: du/dn = 0 is enforced implicitly by the momentum matrix's d/dx
  // rows; nothing to overwrite here.
}

template <typename Backend>
FlowState<typename Backend::Vec> ChannelFlowSolver::initial_state(
    const Backend& backend, const typename Backend::Vec& inflow) const {
  using Vec = typename Backend::Vec;
  const std::size_t n = cloud_->size();
  UPDEC_REQUIRE(inflow.size() == inlet_nodes_.size(),
                "one inflow value per inlet node required");
  FlowState<Vec> state;
  // Initial condition: uniform streamwise flow matching the inflow shape,
  // zero v and p.
  la::Vector u0(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    u0[i] = target_outflow(cloud_->node(i).pos.y);
  state.u = backend.constants(u0);
  state.v = backend.zeros(n);
  state.p = backend.zeros(n);
  apply_velocity_bcs(backend, state.u, state.v, inflow);
  return state;
}

template <typename Backend>
void ChannelFlowSolver::run_refinements(
    const Backend& backend, FlowState<typename Backend::Vec>& state,
    const typename Backend::Vec& inflow, std::size_t count) const {
  using Vec = typename Backend::Vec;
  const std::size_t n = cloud_->size();
  const double dt = config_.dt;
  const double adv_dt = config_.advection * dt;

  for (std::size_t refinement = 0; refinement < count; ++refinement) {
    // Picard re-linearisation: freeze the advecting velocity for this
    // refinement (values update between refinements; in the DP path the
    // gradient still flows through the frozen field into earlier
    // refinements, i.e. we differentiate the whole k-sweep rollout).
    const Vec u_adv = state.u;
    const Vec v_adv = state.v;

    for (std::size_t step = 0; step < config_.steps_per_refinement; ++step) {
      // Semi-implicit predictor: explicit (Picard-frozen) advection,
      // implicit diffusion through the constant momentum factorisation.
      //   (I - dt/Re Lap) u* = u - dt (u_adv . grad) u   (interior rows)
      //   u* = prescribed boundary value                  (boundary rows)
      const Vec dxu = backend.spmv(dx_, state.u);
      const Vec dyu = backend.spmv(dy_, state.u);
      const Vec dxv = backend.spmv(dx_, state.v);
      const Vec dyv = backend.spmv(dy_, state.v);

      Vec rhs_u = state.u;
      Vec rhs_v = state.v;
      for (std::size_t i = 0; i < n; ++i) {
        if (is_interior_[i]) {
          rhs_u[i] = state.u[i] -
                     adv_dt * (u_adv[i] * dxu[i] + v_adv[i] * dyu[i]);
          rhs_v[i] = state.v[i] -
                     adv_dt * (u_adv[i] * dxv[i] + v_adv[i] * dyv[i]);
        }
        // Dirichlet rows keep the current (BC-satisfying) values; the
        // identity rows of the momentum matrix reproduce them.
      }
      // Outlet d/dx rows demand zero streamwise gradient.
      for (const std::size_t i : outlet_nodes_) {
        rhs_u[i] = backend.scalar(0.0);
        rhs_v[i] = backend.scalar(0.0);
      }
      Vec ustar = backend.solve(momentum_op_, rhs_u);
      Vec vstar = backend.solve(momentum_op_, rhs_v);
      apply_velocity_bcs(backend, ustar, vstar, inflow);

      // Pressure Poisson: Lap p = div(u*) / dt inside, dp/dn = 0 / p = 0 on
      // the boundary rows baked into pressure_lu_.
      const Vec div_x = backend.spmv(dx_, ustar);
      const Vec div_y = backend.spmv(dy_, vstar);
      Vec prhs = backend.zeros(n);
      for (std::size_t i = 0; i < n; ++i)
        if (is_interior_[i]) prhs[i] = (div_x[i] + div_y[i]) * (1.0 / dt);
      const Vec p = backend.solve(pressure_op_, prhs);

      // Projection: correct interior velocities, refresh boundary values.
      const Vec dxp = backend.spmv(dx_, p);
      const Vec dyp = backend.spmv(dy_, p);
      Vec unew = ustar;
      Vec vnew = vstar;
      double max_delta = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        if (is_interior_[i]) {
          unew[i] = ustar[i] - dt * dxp[i];
          vnew[i] = vstar[i] - dt * dyp[i];
        }
        max_delta = std::max(
            max_delta, std::abs(Backend::value(unew[i]) -
                                Backend::value(state.u[i])));
        max_delta = std::max(
            max_delta, std::abs(Backend::value(vnew[i]) -
                                Backend::value(state.v[i])));
      }
      apply_velocity_bcs(backend, unew, vnew, inflow);
      state.u = std::move(unew);
      state.v = std::move(vnew);
      state.p = p;
      ++state.steps_taken;
      // Divergence guard: a non-finite velocity would otherwise defeat the
      // steady-state test (NaN comparisons are false) and silently burn the
      // whole step budget before corrupting the cost downstream.
      UPDEC_REQUIRE(std::isfinite(max_delta),
                    "channel flow diverged (non-finite velocity) at "
                    "projection step " +
                        std::to_string(state.steps_taken));
      if (max_delta / dt < config_.steady_tol) break;
    }
  }
}

template <typename Backend>
FlowState<typename Backend::Vec> ChannelFlowSolver::run(
    const Backend& backend, const typename Backend::Vec& inflow) const {
  auto state = initial_state(backend, inflow);
  run_refinements(backend, state, inflow, config_.refinements);
  return state;
}

Flow ChannelFlowSolver::solve(const la::Vector& inflow) const {
  UPDEC_TRACE_SCOPE("pde/channel_solve");
  UPDEC_METRIC_ADD("pde/channel.solves", 1);
  const DoubleBackend backend;
  Flow flow = run(backend, inflow);
  UPDEC_METRIC_OBSERVE("pde/channel.steps_to_steady",
                       static_cast<double>(flow.steps_taken));
  return flow;
}

FlowAd ChannelFlowSolver::solve(ad::Tape& tape,
                                const ad::VarVec& inflow) const {
  UPDEC_TRACE_SCOPE("pde/channel_solve_ad");
  UPDEC_METRIC_ADD("pde/channel.ad_solves", 1);
  const TapeBackend backend{&tape};
  return run(backend, inflow);
}

FlowAd ChannelFlowSolver::solve_last_refinement(
    ad::Tape& tape, const ad::VarVec& inflow) const {
  UPDEC_TRACE_SCOPE("pde/channel_solve_ad");
  UPDEC_METRIC_ADD("pde/channel.ad_solves", 1);
  const TapeBackend taped{&tape};
  if (config_.refinements <= 1) {
    auto state = initial_state(taped, inflow);
    run_refinements(taped, state, inflow, 1);
    return state;
  }
  // Detached warm-up: first k-1 refinements in plain arithmetic.
  const DoubleBackend plain;
  const la::Vector inflow_values = ad::values(inflow);
  auto warm = initial_state(plain, inflow_values);
  run_refinements(plain, warm, inflow_values, config_.refinements - 1);
  // Final refinement on the tape, from the detached state; the inflow
  // variables re-enter through the boundary conditions.
  FlowAd state;
  state.u = ad::make_constants(tape, warm.u);
  state.v = ad::make_constants(tape, warm.v);
  state.p = ad::make_constants(tape, warm.p);
  state.steps_taken = warm.steps_taken;
  apply_velocity_bcs(taped, state.u, state.v, inflow);
  run_refinements(taped, state, inflow, 1);
  return state;
}

}  // namespace updec::pde
