#pragma once
/// \file laplace.hpp
/// The Laplace boundary-control substrate of section 3.1: Lap u = 0 on the
/// unit square, Dirichlet data everywhere, with the *top wall* data acting
/// as the control. The collocation matrix is factored once; both the plain
/// (double) and the differentiable (tape) solve paths reuse it.

#include "autodiff/ops.hpp"
#include "la/robust_solve.hpp"
#include "pointcloud/generators.hpp"
#include "rbf/collocation.hpp"
#include "rbf/rbffd.hpp"

namespace updec::pde {

/// Laplace solver on the unit square with a controllable top wall.
class LaplaceSolver {
 public:
  /// \param grid_n     grid resolution: (grid_n+1)^2 nodes (paper: 100x100).
  /// \param poly_degree appended monomial degree (paper: 1).
  LaplaceSolver(std::size_t grid_n, const rbf::Kernel& kernel,
                int poly_degree = 1);

  /// Nodes on the controlled top wall, ordered by increasing x.
  [[nodiscard]] const std::vector<std::size_t>& top_nodes() const {
    return top_nodes_;
  }
  /// x-coordinates of the top-wall nodes (same order as top_nodes()).
  [[nodiscard]] const std::vector<double>& top_x() const { return top_x_; }

  /// The problem is x-periodic, so the two top corners carry the same
  /// control value: the control vector has one entry per top node except
  /// the x = 1 corner, which reuses entry 0.
  [[nodiscard]] std::size_t num_control() const {
    return top_nodes_.size() - 1;
  }
  /// x-coordinates of the control degrees of freedom (top_x() minus x = 1).
  [[nodiscard]] std::vector<double> control_x() const {
    return {top_x_.begin(), top_x_.end() - 1};
  }
  /// Control index used by top node i (ties the periodic corners).
  [[nodiscard]] std::size_t control_index(std::size_t top_node) const {
    return top_node + 1 == top_nodes_.size() ? 0 : top_node;
  }
  [[nodiscard]] const pc::PointCloud& cloud() const { return cloud_; }
  [[nodiscard]] const rbf::GlobalCollocation& collocation() const {
    return collocation_;
  }
  /// Mutable access for serve-layer cache plumbing (install_lu of a
  /// memoized factorisation before the first solve).
  [[nodiscard]] rbf::GlobalCollocation& collocation() { return collocation_; }

  /// Solve with control values c (one per top node; the other walls carry
  /// the fixed data of eq. (7)). Returns the N+M RBF coefficients.
  [[nodiscard]] la::Vector solve(const la::Vector& control) const;

  /// Batched solve: column j of `controls` is one control vector; column j
  /// of the result its N+M coefficients. One pass over the cached LU for
  /// the whole batch (LuFactorization::solve_many), so k candidate controls
  /// -- FD probe sweeps, omega candidates, concurrent serve jobs sharing a
  /// factorisation -- cost far less than k separate solves.
  [[nodiscard]] la::Matrix solve_many(const la::Matrix& controls) const;

  /// du/dy at the top-wall nodes for each coefficient column (the batched
  /// twin of flux_top).
  [[nodiscard]] la::Matrix flux_top_many(const la::Matrix& coeffs) const;

  /// Differentiable twin: control lives on a tape; the solve is recorded as
  /// one custom op against the cached LU (the DP path).
  [[nodiscard]] ad::VarVec solve(ad::Tape& tape,
                                 const ad::VarVec& control) const;

  /// du/dy sampled at the top-wall nodes for given coefficients (the flux
  /// entering the cost objective of eq. (8)).
  [[nodiscard]] la::Vector flux_top(const la::Vector& coeffs) const;
  [[nodiscard]] ad::VarVec flux_top(const ad::VarVec& coeffs) const;

  /// Nodal state u at all cloud nodes.
  [[nodiscard]] la::Vector state_at_nodes(const la::Vector& coeffs) const;

  /// Evaluation matrix rows for du/dy at the top nodes (used by DAL too).
  [[nodiscard]] const la::Matrix& flux_matrix() const { return flux_matrix_; }

  /// Trapezoidal quadrature weights along the top wall (integral in J).
  [[nodiscard]] const la::Vector& quadrature_weights() const {
    return quad_weights_;
  }

  /// Fixed boundary datum on the non-controlled walls: sin(2 pi x) at the
  /// bottom, 0 on the sides.
  ///
  /// NOTE: the paper's eq. (7c) prints sin(pi x) / cos(pi x), but its own
  /// analytic minimiser (and the source problem in Mowlavi & Nabi [28])
  /// corresponds to sin(2 pi x) bottom data with target flux cos(2 pi x);
  /// we follow the analytic solution so that Fig. 3's exact references hold.
  [[nodiscard]] static double fixed_boundary_value(const pc::Node& node);

  /// Target flux q(x) = cos(2 pi x) in the cost of eq. (8).
  [[nodiscard]] static double target_flux(double x);

  /// Analytic minimiser c*(x) = sech(2pi) sin(2pi x)
  ///                          + tanh(2pi) cos(2pi x) / (2pi).
  [[nodiscard]] static double analytic_control(double x);

  /// State solution u*(x, y) corresponding to the analytic minimiser.
  [[nodiscard]] static double analytic_state(double x, double y);

 private:
  /// Full RHS with control scattered into the top-wall rows.
  [[nodiscard]] la::Vector assemble_rhs(const la::Vector& control) const;

  pc::PointCloud cloud_;
  rbf::GlobalCollocation collocation_;
  std::vector<std::size_t> top_nodes_;
  std::vector<double> top_x_;
  la::Matrix flux_matrix_;   // d/dy rows at top nodes vs all coefficients
  la::Vector quad_weights_;  // trapezoid weights on the top wall
  la::Vector base_rhs_;      // RHS with zero control (fixed walls only)
};

/// RBF-FD twin of LaplaceSolver: the same periodic boundary-control problem
/// discretised with local stencils instead of global collocation, so the
/// system matrix is sparse (one stencil-sized row per node) and unknowns are
/// the nodal values themselves, not RBF coefficients. Solves route through
/// la::SparseFirstSolver -- dense LU below the UPDEC_SPARSE_MIN_N threshold,
/// ILU(0)-preconditioned Krylov above it -- which is what makes large-N
/// Laplace sweeps affordable (the global collocation matrix is dense and
/// O(N^3) to factor by construction).
///
/// Row layout (mirroring LaplaceSolver's laplace_row):
///   interior        RBF-FD Laplacian stencil row
///   bottom / top    identity (Dirichlet: fixed data / control)
///   left (x = 0)    u_i - u_partner = 0          (x-periodicity, value)
///   right (x = 1)   Dx row(partner) - Dx row(i)  (x-periodicity, slope)
/// where `partner` is the lateral node at the same y on the opposite wall.
class LaplaceFdSolver {
 public:
  LaplaceFdSolver(std::size_t grid_n, const rbf::Kernel& kernel,
                  const rbf::RbffdConfig& config = {},
                  const la::RobustSolveOptions& solver = {});

  /// Build over an explicit (possibly adaptively refined) cloud. The cloud
  /// must carry the unit-square boundary layout of pc::unit_square_grid --
  /// tagged bottom/top/left/right Dirichlet walls, lateral nodes pairing up
  /// by height -- but its interior nodes are free-form, which is exactly
  /// what refine::AdaptiveLoop produces (it only inserts/removes interior
  /// nodes, so the boundary contract is preserved by construction).
  /// `previous` + `old_index` (both set or both null) route stencil assembly
  /// through RbffdOperators' incremental path: weight rows are recomputed
  /// only where the neighbourhood changed.
  LaplaceFdSolver(pc::PointCloud cloud, const rbf::Kernel& kernel,
                  const rbf::RbffdConfig& config = {},
                  const la::RobustSolveOptions& solver = {},
                  const rbf::RbffdOperators* previous = nullptr,
                  const std::vector<std::ptrdiff_t>* old_index = nullptr);

  /// Nodes on the controlled top wall, ordered by increasing x.
  [[nodiscard]] const std::vector<std::size_t>& top_nodes() const {
    return top_nodes_;
  }
  [[nodiscard]] const std::vector<double>& top_x() const { return top_x_; }

  /// Control layout identical to LaplaceSolver: one DOF per top node except
  /// the periodic x = 1 corner, which reuses entry 0.
  [[nodiscard]] std::size_t num_control() const {
    return top_nodes_.size() - 1;
  }
  [[nodiscard]] std::size_t control_index(std::size_t top_node) const {
    return top_node + 1 == top_nodes_.size() ? 0 : top_node;
  }

  [[nodiscard]] const pc::PointCloud& cloud() const { return cloud_; }

  /// The stencil operators (exposed for the refinement planner / estimator).
  [[nodiscard]] const rbf::RbffdOperators& operators() const {
    return operators_;
  }

  /// The sparse-first operator (exposed for cache plumbing / benchmarks).
  [[nodiscard]] const la::SparseFirstSolver& op() const { return op_; }
  [[nodiscard]] la::SparseFirstSolver& op() { return op_; }

  /// Solve for the nodal state u (size = cloud().size()). Unlike
  /// LaplaceSolver::solve, the result is the field itself, not coefficients.
  [[nodiscard]] la::Vector solve(const la::Vector& control,
                                 la::SolveReport* report = nullptr) const;

  /// Batched twin: column j of `controls` -> column j of the nodal states.
  [[nodiscard]] la::Matrix solve_many(const la::Matrix& controls,
                                      la::SolveReport* report = nullptr) const;

  /// du/dy at the top-wall nodes of a nodal state (Dy stencil rows).
  [[nodiscard]] la::Vector flux_top(const la::Vector& u) const;
  [[nodiscard]] la::Matrix flux_top_many(const la::Matrix& u) const;

  /// Trapezoidal quadrature weights along the top wall.
  [[nodiscard]] const la::Vector& quadrature_weights() const {
    return quad_weights_;
  }

  /// Full RHS for a control vector (fixed-wall data + control scattered into
  /// the top Dirichlet rows). Exposed so reduced-order callers (src/rom) can
  /// route the assembled system through their own solve path while this
  /// class keeps owning the boundary layout.
  [[nodiscard]] la::Vector rhs_for(const la::Vector& control) const {
    return assemble_rhs(control);
  }

  /// Adjoint of flux_top: given one weight per top-wall node, returns
  /// F^T y over all cloud nodes (F = the Dy stencil rows at the top nodes).
  /// This is the dual-weight vector of a flux functional sum_i y_i (du/dy)_i,
  /// which the ROM tier's dual-weighted residual estimator needs.
  [[nodiscard]] la::Vector flux_top_adjoint(const la::Vector& y) const;

 private:
  [[nodiscard]] la::Vector assemble_rhs(const la::Vector& control) const;

  pc::PointCloud cloud_;
  rbf::RbffdOperators operators_;
  la::CsrMatrix dy_;         // Dy stencils (flux extraction)
  la::SparseFirstSolver op_;
  std::vector<std::size_t> top_nodes_;
  std::vector<double> top_x_;
  la::Vector quad_weights_;
  la::Vector base_rhs_;
};

}  // namespace updec::pde
