#pragma once
/// \file heat.hpp
/// Unsteady heat equation on a mesh-free cloud: the "incorporate time"
/// direction of the paper's future work (section 5), built from the same
/// substrate as the stationary solvers. A theta-scheme with factor-once
/// matrices:
///   (I - theta dt a L) u^{n+1} = (I + (1-theta) dt a L) u^n,
/// Dirichlet rows replaced by identity with time-dependent boundary data.
/// L is the consistent product Laplacian Dx.Dx + Dy.Dy (see DESIGN.md 3b on
/// why the compact RBF-FD Laplacian is avoided in time-stepping operators).

#include <functional>

#include "la/lu.hpp"
#include "la/robust_solve.hpp"
#include "pointcloud/cloud.hpp"
#include "rbf/rbffd.hpp"

namespace updec::pde {

/// Time-dependent Dirichlet boundary datum g(node, t).
using HeatBoundary = std::function<double(const pc::Node&, double)>;

class HeatSolver {
 public:
  /// \param alpha  diffusivity.
  /// \param dt     time step (theta >= 1/2 makes the scheme A-stable on the
  ///               resolved spectrum; theta slightly above 1/2 damps the
  ///               spurious scattered-node modes).
  HeatSolver(const pc::PointCloud& cloud, const rbf::Kernel& kernel,
             double alpha, double dt, double theta = 0.55,
             const rbf::RbffdConfig& config = {},
             const la::RobustSolveOptions& solver = {});

  /// One theta-scheme step from u at time t; returns u at t + dt.
  [[nodiscard]] la::Vector step(const la::Vector& u,
                                const HeatBoundary& boundary,
                                double t) const;

  /// March `steps` steps from u0 at t0; returns the final field.
  [[nodiscard]] la::Vector advance(la::Vector u0, const HeatBoundary& boundary,
                                   double t0, std::size_t steps) const;

  /// Batched theta-scheme step: column j of U is one temperature field (an
  /// ensemble of initial conditions / scenario batch); all columns advance
  /// through one multi-RHS solve against the shared implicit factorisation
  /// instead of one triangular sweep per member.
  [[nodiscard]] la::Matrix step_many(const la::Matrix& u,
                                     const HeatBoundary& boundary,
                                     double t) const;

  /// March a whole ensemble `steps` steps (batched twin of advance()).
  [[nodiscard]] la::Matrix advance_many(la::Matrix u0,
                                        const HeatBoundary& boundary,
                                        double t0, std::size_t steps) const;

  [[nodiscard]] const pc::PointCloud& cloud() const { return *cloud_; }
  [[nodiscard]] double dt() const { return dt_; }
  [[nodiscard]] double alpha() const { return alpha_; }

  /// Implicit operator I - theta dt a L (identity on boundary rows): dense
  /// LU below the sparse-first threshold, CSR + ILU-Krylov above it.
  [[nodiscard]] const la::SparseFirstSolver& implicit_op() const {
    return implicit_op_;
  }

 private:
  const pc::PointCloud* cloud_;
  double alpha_, dt_, theta_;
  la::CsrMatrix explicit_part_;       // I + (1-theta) dt a L on interior rows
  la::SparseFirstSolver implicit_op_; // I - theta dt a L, identity on boundary
};

}  // namespace updec::pde
