#include "pde/heat.hpp"

#include "la/blas.hpp"
#include "la/robust_solve.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace updec::pde {

HeatSolver::HeatSolver(const pc::PointCloud& cloud, const rbf::Kernel& kernel,
                       double alpha, double dt, double theta,
                       const rbf::RbffdConfig& config,
                       const la::RobustSolveOptions& solver)
    : cloud_(&cloud), alpha_(alpha), dt_(dt), theta_(theta) {
  UPDEC_REQUIRE(alpha > 0.0 && dt > 0.0, "diffusivity and dt must be positive");
  UPDEC_REQUIRE(theta >= 0.0 && theta <= 1.0, "theta must be in [0, 1]");
  const std::size_t n = cloud.size();
  const rbf::RbffdOperators operators(cloud, kernel, config);
  const la::CsrMatrix dx = operators.weights_for(rbf::LinearOp::d_dx());
  const la::CsrMatrix dy = operators.weights_for(rbf::LinearOp::d_dy());

  // Consistent Laplacian rows on interior nodes, assembled sparse straight
  // from the stencil weights.
  std::vector<std::uint8_t> interior(n, 0);
  for (std::size_t i = 0; i < cloud.num_internal(); ++i) interior[i] = 1;
  const la::CsrMatrix lap = rbf::consistent_laplacian(dx, dy, interior);

  la::SparseBuilder implicit_part(n, n);
  la::SparseBuilder explicit_part(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    implicit_part.add(i, i, 1.0);
    if (i < cloud.num_internal()) {
      explicit_part.add(i, i, 1.0);
      for (std::size_t k = lap.row_ptr()[i]; k < lap.row_ptr()[i + 1]; ++k) {
        const std::size_t j = lap.col_idx()[k];
        const double w = lap.values()[k];
        implicit_part.add(i, j, -theta_ * dt_ * alpha_ * w);
        explicit_part.add(i, j, (1.0 - theta_) * dt_ * alpha_ * w);
      }
    }
    // Boundary rows: identity in the implicit matrix, zero in the explicit
    // part -- the RHS carries the boundary datum directly.
  }
  explicit_part_ = la::CsrMatrix(explicit_part);
  implicit_op_ = la::SparseFirstSolver(la::CsrMatrix(implicit_part), solver);
}

la::Vector HeatSolver::step(const la::Vector& u, const HeatBoundary& boundary,
                            double t) const {
  UPDEC_TRACE_SCOPE("pde/heat_step");
  UPDEC_METRIC_ADD("pde/heat.steps", 1);
  UPDEC_REQUIRE(u.size() == cloud_->size(), "field size mismatch");
  la::Vector rhs = explicit_part_.apply(u);
  const double t_next = t + dt_;
  for (std::size_t i = cloud_->num_internal(); i < cloud_->size(); ++i)
    rhs[i] = boundary(cloud_->node(i), t_next);
  return la::checked_solve(implicit_op_, rhs, "HeatSolver::step");
}

la::Vector HeatSolver::advance(la::Vector u0, const HeatBoundary& boundary,
                               double t0, std::size_t steps) const {
  la::Vector u = std::move(u0);
  for (std::size_t s = 0; s < steps; ++s)
    u = step(u, boundary, t0 + static_cast<double>(s) * dt_);
  return u;
}

la::Matrix HeatSolver::step_many(const la::Matrix& u,
                                 const HeatBoundary& boundary,
                                 double t) const {
  UPDEC_TRACE_SCOPE("pde/heat_step");
  UPDEC_METRIC_ADD("pde/heat.steps", u.cols());
  UPDEC_REQUIRE(u.rows() == cloud_->size(), "field size mismatch");
  la::Matrix rhs = explicit_part_.apply_many(u);
  const double t_next = t + dt_;
  for (std::size_t i = cloud_->num_internal(); i < cloud_->size(); ++i) {
    const double g = boundary(cloud_->node(i), t_next);
    for (std::size_t j = 0; j < u.cols(); ++j) rhs(i, j) = g;
  }
  return implicit_op_.solve_many(rhs);
}

la::Matrix HeatSolver::advance_many(la::Matrix u0, const HeatBoundary& boundary,
                                    double t0, std::size_t steps) const {
  la::Matrix u = std::move(u0);
  for (std::size_t s = 0; s < steps; ++s)
    u = step_many(u, boundary, t0 + static_cast<double>(s) * dt_);
  return u;
}

}  // namespace updec::pde
