#include "pde/heat.hpp"

#include "la/blas.hpp"
#include "la/robust_solve.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace updec::pde {

HeatSolver::HeatSolver(const pc::PointCloud& cloud, const rbf::Kernel& kernel,
                       double alpha, double dt, double theta,
                       const rbf::RbffdConfig& config)
    : cloud_(&cloud), alpha_(alpha), dt_(dt), theta_(theta) {
  UPDEC_REQUIRE(alpha > 0.0 && dt > 0.0, "diffusivity and dt must be positive");
  UPDEC_REQUIRE(theta >= 0.0 && theta <= 1.0, "theta must be in [0, 1]");
  const std::size_t n = cloud.size();
  const rbf::RbffdOperators operators(cloud, kernel, config);
  const la::CsrMatrix dx = operators.weights_for(rbf::LinearOp::d_dx());
  const la::CsrMatrix dy = operators.weights_for(rbf::LinearOp::d_dy());

  // Consistent Laplacian rows on interior nodes.
  la::Matrix lap(n, n, 0.0);
  for (std::size_t i = 0; i < cloud.num_internal(); ++i) {
    for (const la::CsrMatrix* m : {&dx, &dy}) {
      for (std::size_t k = m->row_ptr()[i]; k < m->row_ptr()[i + 1]; ++k) {
        const double w = m->values()[k];
        const std::size_t mid = m->col_idx()[k];
        for (std::size_t k2 = m->row_ptr()[mid]; k2 < m->row_ptr()[mid + 1];
             ++k2)
          lap(i, m->col_idx()[k2]) += w * m->values()[k2];
      }
    }
  }

  la::Matrix implicit_part(n, n, 0.0);
  explicit_part_ = la::Matrix(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    implicit_part(i, i) = 1.0;
    if (i < cloud.num_internal()) {
      explicit_part_(i, i) = 1.0;
      for (std::size_t j = 0; j < n; ++j) {
        implicit_part(i, j) -= theta_ * dt_ * alpha_ * lap(i, j);
        explicit_part_(i, j) += (1.0 - theta_) * dt_ * alpha_ * lap(i, j);
      }
    }
    // Boundary rows: identity in the implicit matrix, zero in the explicit
    // part -- the RHS carries the boundary datum directly.
  }
  implicit_lu_ = la::robust_lu_factor(implicit_part);
}

la::Vector HeatSolver::step(const la::Vector& u, const HeatBoundary& boundary,
                            double t) const {
  UPDEC_TRACE_SCOPE("pde/heat_step");
  UPDEC_METRIC_ADD("pde/heat.steps", 1);
  UPDEC_REQUIRE(u.size() == cloud_->size(), "field size mismatch");
  la::Vector rhs = la::matvec(explicit_part_, u);
  const double t_next = t + dt_;
  for (std::size_t i = cloud_->num_internal(); i < cloud_->size(); ++i)
    rhs[i] = boundary(cloud_->node(i), t_next);
  return la::checked_solve(implicit_lu_, rhs, "HeatSolver::step");
}

la::Vector HeatSolver::advance(la::Vector u0, const HeatBoundary& boundary,
                               double t0, std::size_t steps) const {
  la::Vector u = std::move(u0);
  for (std::size_t s = 0; s < steps; ++s)
    u = step(u, boundary, t0 + static_cast<double>(s) * dt_);
  return u;
}

la::Matrix HeatSolver::step_many(const la::Matrix& u,
                                 const HeatBoundary& boundary,
                                 double t) const {
  UPDEC_TRACE_SCOPE("pde/heat_step");
  UPDEC_METRIC_ADD("pde/heat.steps", u.cols());
  UPDEC_REQUIRE(u.rows() == cloud_->size(), "field size mismatch");
  la::Matrix rhs = la::matmul(explicit_part_, u);
  const double t_next = t + dt_;
  for (std::size_t i = cloud_->num_internal(); i < cloud_->size(); ++i) {
    const double g = boundary(cloud_->node(i), t_next);
    for (std::size_t j = 0; j < u.cols(); ++j) rhs(i, j) = g;
  }
  return implicit_lu_.solve_many(rhs);
}

la::Matrix HeatSolver::advance_many(la::Matrix u0, const HeatBoundary& boundary,
                                    double t0, std::size_t steps) const {
  la::Matrix u = std::move(u0);
  for (std::size_t s = 0; s < steps; ++s)
    u = step_many(u, boundary, t0 + static_cast<double>(s) * dt_);
  return u;
}

}  // namespace updec::pde
