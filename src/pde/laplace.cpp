#include "pde/laplace.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "la/blas.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace updec::pde {

namespace tags = pc::tags;

namespace {

/// Row layout of the periodic Laplace problem: Laplacian rows inside,
/// Dirichlet rows on the bottom (fixed data) and top (control), and
/// periodic matching on the lateral walls -- u(0,y) = u(1,y) on the left
/// nodes, du/dx(0,y) = du/dx(1,y) on the right nodes. (The paper's analytic
/// minimiser corresponds to this x-periodic configuration; see laplace.hpp.)
std::vector<rbf::RowTerm> laplace_row(const pc::Node& node) {
  using rbf::LinearOp;
  using rbf::RowTerm;
  switch (node.tag) {
    case pc::tags::kInterior:
      return {{node.pos, LinearOp::laplacian(), 1.0}};
    case pc::tags::kBottom:
    case pc::tags::kTop:
      return {{node.pos, LinearOp::identity(), 1.0}};
    case pc::tags::kLeft:
      return {{{0.0, node.pos.y}, LinearOp::identity(), 1.0},
              {{1.0, node.pos.y}, LinearOp::identity(), -1.0}};
    case pc::tags::kRight:
      return {{{0.0, node.pos.y}, LinearOp::d_dx(), 1.0},
              {{1.0, node.pos.y}, LinearOp::d_dx(), -1.0}};
    default:
      UPDEC_REQUIRE(false, "unexpected tag in Laplace cloud");
      return {};
  }
}

}  // namespace

LaplaceSolver::LaplaceSolver(std::size_t grid_n, const rbf::Kernel& kernel,
                             int poly_degree)
    : cloud_(pc::unit_square_grid(grid_n, grid_n)),
      collocation_(cloud_, kernel, poly_degree,
                   [](std::size_t, const pc::Node& node) {
                     return laplace_row(node);
                   }) {
  // Controlled wall nodes sorted by x so control vectors read left to right.
  top_nodes_ = cloud_.indices_with_tag(tags::kTop);
  std::sort(top_nodes_.begin(), top_nodes_.end(),
            [&](std::size_t a, std::size_t b) {
              return cloud_.node(a).pos.x < cloud_.node(b).pos.x;
            });
  top_x_.reserve(top_nodes_.size());
  for (const std::size_t i : top_nodes_) top_x_.push_back(cloud_.node(i).pos.x);

  // du/dy rows at the top nodes.
  std::vector<pc::Vec2> pts;
  pts.reserve(top_nodes_.size());
  for (const std::size_t i : top_nodes_) pts.push_back(cloud_.node(i).pos);
  flux_matrix_ = collocation_.evaluation_matrix(pts, rbf::LinearOp::d_dy());

  // Trapezoidal weights over x in [0, 1].
  const std::size_t m = top_nodes_.size();
  quad_weights_ = la::Vector(m, 0.0);
  for (std::size_t i = 0; i + 1 < m; ++i) {
    const double h = top_x_[i + 1] - top_x_[i];
    quad_weights_[i] += 0.5 * h;
    quad_weights_[i + 1] += 0.5 * h;
  }

  // RHS contribution of the fixed walls (zero control).
  base_rhs_ = collocation_.assemble_rhs(
      [](const pc::Node&) { return 0.0; },
      [](const pc::Node& node) { return fixed_boundary_value(node); });
}

double LaplaceSolver::fixed_boundary_value(const pc::Node& node) {
  if (node.tag == tags::kBottom)
    return std::sin(2.0 * std::numbers::pi * node.pos.x);
  return 0.0;  // sides fixed at zero, top supplied by the control
}

double LaplaceSolver::target_flux(double x) {
  return std::cos(2.0 * std::numbers::pi * x);
}

double LaplaceSolver::analytic_control(double x) {
  const double two_pi = 2.0 * std::numbers::pi;
  return (1.0 / std::cosh(two_pi)) * std::sin(two_pi * x) +
         std::tanh(two_pi) * std::cos(two_pi * x) / two_pi;
}

double LaplaceSolver::analytic_state(double x, double y) {
  const double two_pi = 2.0 * std::numbers::pi;
  const double sech = 1.0 / std::cosh(two_pi);
  return 0.5 * sech * std::sin(two_pi * x) *
             (std::exp(two_pi * (y - 1.0)) + std::exp(two_pi * (1.0 - y))) +
         (1.0 / (4.0 * std::numbers::pi)) * sech * std::cos(two_pi * x) *
             (std::exp(two_pi * y) - std::exp(-two_pi * y));
}

la::Vector LaplaceSolver::assemble_rhs(const la::Vector& control) const {
  UPDEC_REQUIRE(control.size() == num_control(),
                "one control value per control DOF required");
  la::Vector rhs = base_rhs_;
  for (std::size_t i = 0; i < top_nodes_.size(); ++i)
    rhs[top_nodes_[i]] = control[control_index(i)];
  return rhs;
}

la::Vector LaplaceSolver::solve(const la::Vector& control) const {
  UPDEC_TRACE_SCOPE("pde/laplace_solve");
  UPDEC_METRIC_ADD("pde/laplace.solves", 1);
  // Route through the guarded collocation solve: non-finite coefficients
  // trigger a Tikhonov-shifted recovery instead of poisoning the cost.
  return collocation_.solve(assemble_rhs(control));
}

la::Matrix LaplaceSolver::solve_many(const la::Matrix& controls) const {
  UPDEC_TRACE_SCOPE("pde/laplace_solve_many");
  UPDEC_REQUIRE(controls.rows() == num_control(),
                "one control value per control DOF required (rows)");
  const std::size_t k = controls.cols();
  UPDEC_METRIC_ADD("pde/laplace.solves", k);
  la::Matrix rhs(collocation_.system_size(), k);
  for (std::size_t j = 0; j < k; ++j)
    for (std::size_t i = 0; i < rhs.rows(); ++i) rhs(i, j) = base_rhs_[i];
  for (std::size_t i = 0; i < top_nodes_.size(); ++i) {
    const std::size_t row = top_nodes_[i];
    const std::size_t c = control_index(i);
    for (std::size_t j = 0; j < k; ++j) rhs(row, j) = controls(c, j);
  }
  la::Matrix x = collocation_.lu().solve_many(rhs);
  // Parity with the guarded scalar path: a non-finite batch falls back to
  // the per-column collocation solve, which carries the Tikhonov recovery.
  bool finite = true;
  const double* data = x.data();
  for (std::size_t i = 0, e = x.rows() * x.cols(); i < e && finite; ++i)
    finite = std::isfinite(data[i]);
  if (!finite) {
    la::Vector col(rhs.rows());
    for (std::size_t j = 0; j < k; ++j) {
      for (std::size_t i = 0; i < rhs.rows(); ++i) col[i] = rhs(i, j);
      const la::Vector sol = collocation_.solve(col);
      for (std::size_t i = 0; i < rhs.rows(); ++i) x(i, j) = sol[i];
    }
  }
  return x;
}

la::Matrix LaplaceSolver::flux_top_many(const la::Matrix& coeffs) const {
  return la::matmul(flux_matrix_, coeffs);
}

ad::VarVec LaplaceSolver::solve(ad::Tape& tape,
                                const ad::VarVec& control) const {
  UPDEC_TRACE_SCOPE("pde/laplace_solve_ad");
  UPDEC_METRIC_ADD("pde/laplace.ad_solves", 1);
  UPDEC_REQUIRE(control.size() == num_control(),
                "one control value per control DOF required");
  // RHS on tape: fixed-wall entries as constants, control vars scattered
  // into the top-wall rows (the periodic corner reuses control[0]).
  ad::VarVec rhs = ad::make_constants(tape, base_rhs_);
  for (std::size_t i = 0; i < top_nodes_.size(); ++i)
    rhs[top_nodes_[i]] = control[control_index(i)];
  return ad::solve(collocation_.lu(), rhs);
}

la::Vector LaplaceSolver::flux_top(const la::Vector& coeffs) const {
  return la::matvec(flux_matrix_, coeffs);
}

ad::VarVec LaplaceSolver::flux_top(const ad::VarVec& coeffs) const {
  return ad::gemv(flux_matrix_, coeffs);
}

la::Vector LaplaceSolver::state_at_nodes(const la::Vector& coeffs) const {
  return collocation_.evaluate_at_nodes(coeffs, rbf::LinearOp::identity());
}

namespace {

/// Dispatch between the from-scratch and incremental stencil builds (the
/// member-initialiser list cannot validate the pair first).
rbf::RbffdOperators make_fd_operators(
    const pc::PointCloud& cloud, const rbf::Kernel& kernel,
    const rbf::RbffdConfig& config, const rbf::RbffdOperators* previous,
    const std::vector<std::ptrdiff_t>* old_index) {
  if (previous != nullptr) {
    UPDEC_REQUIRE(old_index != nullptr,
                  "incremental stencil rebuild needs the old_index map");
    return rbf::RbffdOperators(cloud, *previous, *old_index);
  }
  return rbf::RbffdOperators(cloud, kernel, config);
}

}  // namespace

LaplaceFdSolver::LaplaceFdSolver(std::size_t grid_n, const rbf::Kernel& kernel,
                                 const rbf::RbffdConfig& config,
                                 const la::RobustSolveOptions& solver)
    : LaplaceFdSolver(pc::unit_square_grid(grid_n, grid_n), kernel, config,
                      solver) {}

LaplaceFdSolver::LaplaceFdSolver(pc::PointCloud cloud,
                                 const rbf::Kernel& kernel,
                                 const rbf::RbffdConfig& config,
                                 const la::RobustSolveOptions& solver,
                                 const rbf::RbffdOperators* previous,
                                 const std::vector<std::ptrdiff_t>* old_index)
    : cloud_(std::move(cloud)),
      operators_(
          make_fd_operators(cloud_, kernel, config, previous, old_index)) {
  UPDEC_TRACE_SCOPE("pde/laplace_fd_setup");
  const std::size_t n = cloud_.size();
  const la::CsrMatrix& dx = operators_.dx();
  dy_ = operators_.dy();
  const la::CsrMatrix& lap = operators_.laplacian();

  // Pair each lateral node with the node at the same y on the opposite wall
  // (the grid generator places them at identical heights).
  auto left = cloud_.indices_with_tag(tags::kLeft);
  auto right = cloud_.indices_with_tag(tags::kRight);
  UPDEC_REQUIRE(left.size() == right.size(),
                "lateral walls must have matching node counts");
  const auto by_y = [&](std::size_t a, std::size_t b) {
    return cloud_.node(a).pos.y < cloud_.node(b).pos.y;
  };
  std::sort(left.begin(), left.end(), by_y);
  std::sort(right.begin(), right.end(), by_y);

  la::SparseBuilder system(n, n);
  const auto scatter = [&](std::size_t row, const la::CsrMatrix& m,
                           std::size_t src, double scale) {
    for (std::size_t k = m.row_ptr()[src]; k < m.row_ptr()[src + 1]; ++k)
      system.add(row, m.col_idx()[k], scale * m.values()[k]);
  };
  for (std::size_t i = 0; i < n; ++i) {
    switch (cloud_.node(i).tag) {
      case tags::kInterior:
        scatter(i, lap, i, 1.0);
        break;
      case tags::kBottom:
      case tags::kTop:
        system.add(i, i, 1.0);
        break;
      default:
        break;  // lateral rows assembled pairwise below
    }
  }
  for (std::size_t p = 0; p < left.size(); ++p) {
    const std::size_t l = left[p];
    const std::size_t r = right[p];
    UPDEC_REQUIRE(std::abs(cloud_.node(l).pos.y - cloud_.node(r).pos.y) < 1e-12,
                  "lateral wall nodes must pair up by height");
    // u(0,y) = u(1,y) carried by the left node ...
    system.add(l, l, 1.0);
    system.add(l, r, -1.0);
    // ... du/dx(0,y) = du/dx(1,y) carried by the right node.
    scatter(r, dx, l, 1.0);
    scatter(r, dx, r, -1.0);
  }
  op_ = la::SparseFirstSolver(la::CsrMatrix(system), solver);

  top_nodes_ = cloud_.indices_with_tag(tags::kTop);
  std::sort(top_nodes_.begin(), top_nodes_.end(),
            [&](std::size_t a, std::size_t b) {
              return cloud_.node(a).pos.x < cloud_.node(b).pos.x;
            });
  top_x_.reserve(top_nodes_.size());
  for (const std::size_t i : top_nodes_) top_x_.push_back(cloud_.node(i).pos.x);

  const std::size_t m = top_nodes_.size();
  quad_weights_ = la::Vector(m, 0.0);
  for (std::size_t i = 0; i + 1 < m; ++i) {
    const double h = top_x_[i + 1] - top_x_[i];
    quad_weights_[i] += 0.5 * h;
    quad_weights_[i + 1] += 0.5 * h;
  }

  // Fixed-wall RHS: sin(2 pi x) on the bottom rows, zero elsewhere (the
  // interior Laplacian rows and the periodic matching rows are homogeneous).
  base_rhs_ = la::Vector(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    if (cloud_.node(i).tag == tags::kBottom)
      base_rhs_[i] = LaplaceSolver::fixed_boundary_value(cloud_.node(i));
}

la::Vector LaplaceFdSolver::assemble_rhs(const la::Vector& control) const {
  UPDEC_REQUIRE(control.size() == num_control(),
                "one control value per control DOF required");
  la::Vector rhs = base_rhs_;
  for (std::size_t i = 0; i < top_nodes_.size(); ++i)
    rhs[top_nodes_[i]] = control[control_index(i)];
  return rhs;
}

la::Vector LaplaceFdSolver::solve(const la::Vector& control,
                                  la::SolveReport* report) const {
  UPDEC_TRACE_SCOPE("pde/laplace_fd_solve");
  UPDEC_METRIC_ADD("pde/laplace_fd.solves", 1);
  return op_.solve(assemble_rhs(control), report);
}

la::Matrix LaplaceFdSolver::solve_many(const la::Matrix& controls,
                                       la::SolveReport* report) const {
  UPDEC_TRACE_SCOPE("pde/laplace_fd_solve_many");
  UPDEC_REQUIRE(controls.rows() == num_control(),
                "one control value per control DOF required (rows)");
  const std::size_t k = controls.cols();
  UPDEC_METRIC_ADD("pde/laplace_fd.solves", k);
  la::Matrix rhs(cloud_.size(), k);
  for (std::size_t j = 0; j < k; ++j)
    for (std::size_t i = 0; i < rhs.rows(); ++i) rhs(i, j) = base_rhs_[i];
  for (std::size_t i = 0; i < top_nodes_.size(); ++i) {
    const std::size_t row = top_nodes_[i];
    const std::size_t c = control_index(i);
    for (std::size_t j = 0; j < k; ++j) rhs(row, j) = controls(c, j);
  }
  return op_.solve_many(rhs, report);
}

la::Vector LaplaceFdSolver::flux_top(const la::Vector& u) const {
  UPDEC_REQUIRE(u.size() == cloud_.size(), "nodal state size mismatch");
  la::Vector flux(top_nodes_.size(), 0.0);
  for (std::size_t i = 0; i < top_nodes_.size(); ++i) {
    const std::size_t row = top_nodes_[i];
    double s = 0.0;
    for (std::size_t k = dy_.row_ptr()[row]; k < dy_.row_ptr()[row + 1]; ++k)
      s += dy_.values()[k] * u[dy_.col_idx()[k]];
    flux[i] = s;
  }
  return flux;
}

la::Vector LaplaceFdSolver::flux_top_adjoint(const la::Vector& y) const {
  UPDEC_REQUIRE(y.size() == top_nodes_.size(),
                "one weight per top-wall node required");
  la::Vector out(cloud_.size(), 0.0);
  for (std::size_t i = 0; i < top_nodes_.size(); ++i) {
    const std::size_t row = top_nodes_[i];
    for (std::size_t k = dy_.row_ptr()[row]; k < dy_.row_ptr()[row + 1]; ++k)
      out[dy_.col_idx()[k]] += dy_.values()[k] * y[i];
  }
  return out;
}

la::Matrix LaplaceFdSolver::flux_top_many(const la::Matrix& u) const {
  UPDEC_REQUIRE(u.rows() == cloud_.size(), "nodal state size mismatch");
  la::Matrix flux(top_nodes_.size(), u.cols());
  for (std::size_t i = 0; i < top_nodes_.size(); ++i) {
    const std::size_t row = top_nodes_[i];
    for (std::size_t j = 0; j < u.cols(); ++j) {
      double s = 0.0;
      for (std::size_t k = dy_.row_ptr()[row]; k < dy_.row_ptr()[row + 1]; ++k)
        s += dy_.values()[k] * u(dy_.col_idx()[k], j);
      flux(i, j) = s;
    }
  }
  return flux;
}

}  // namespace updec::pde
