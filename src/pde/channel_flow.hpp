#pragma once
/// \file channel_flow.hpp
/// Steady incompressible Navier-Stokes channel flow (section 3.2, fig. 4a):
/// blowing and suction patches disturb a channel flow; the inflow profile
/// is the control. Discretisation follows the paper: RBF-FD derivatives on
/// a scattered cloud, a Chorin-inspired projection scheme marched to steady
/// state [11, 51], wrapped in k Picard "refinements" that re-linearise the
/// advection operator.
///
/// The differentiation matrices and the pressure-Poisson factorisation are
/// constant for a fixed cloud, so the DP tape of a full solve contains only
/// SpMVs, pointwise arithmetic and reusable-LU solves -- the structure whose
/// memory footprint Table 3 of the paper measures (it grows linearly in the
/// total number of pseudo-time steps, i.e. super-linearly in k).

#include "la/robust_solve.hpp"
#include "pde/backend.hpp"
#include "pointcloud/generators.hpp"
#include "rbf/rbffd.hpp"

namespace updec::pde {

/// Solver configuration (paper defaults in comments).
struct ChannelFlowConfig {
  double reynolds = 100.0;       ///< paper: Re = 100 (10 for the DAL ablation)
  double dt = 0.004;             ///< pseudo-time step of the projection
  std::size_t refinements = 3;   ///< k: DAL used 3, DP used 10
  std::size_t steps_per_refinement = 200;
  double steady_tol = 1e-9;      ///< early exit when max |du|/dt drops below
  double patch_velocity = 1.0;   ///< peak blowing/suction speed (the fig. 1
                                 ///< cross-flow is comparable to the inflow)
  double advection = 1.0;        ///< advection scale: 0 gives Stokes flow
  /// Pressure Laplacian discretisation: true uses the consistent product
  /// Dx.Dx + Dy.Dy (projection removes exactly the divergence it sees),
  /// false the compact RBF-FD Laplacian (the ablation of DESIGN.md).
  bool consistent_pressure = true;
  /// Implicit biharmonic hyperviscosity coefficient (units of viscosity):
  /// adds gamma*dt*Lap^2 to the momentum operator. Scattered-node PHS
  /// Laplacians carry a few spurious eigenvalues with small positive real
  /// part; the biharmonic term pushes them back into the stable half-plane
  /// while perturbing resolved scales at O(h^2). Set 0 to disable (the
  /// stability ablation).
  double hyperviscosity = 0.02;
  rbf::RbffdConfig rbffd;        ///< stencil size / polynomial degree
  /// Solve-path knobs for the momentum and pressure operators: below
  /// solver.sparse_min_n (UPDEC_SPARSE_MIN_N) they factor dense up front,
  /// at or above it they stay CSR and solve with ILU-preconditioned Krylov.
  la::RobustSolveOptions solver;
};

/// Velocity-pressure state of one flow solve.
template <typename VecT>
struct FlowState {
  VecT u, v, p;
  std::size_t steps_taken = 0;
};

using Flow = FlowState<la::Vector>;
using FlowAd = FlowState<ad::VarVec>;

/// Steady channel-flow solver over a fixed cloud.
class ChannelFlowSolver {
 public:
  /// \param cloud  channel point cloud (canonical ordering; must outlive
  ///               the solver), normally from pc::channel_cloud(spec).
  /// \param spec   the geometry the cloud was generated from (patch
  ///               positions and channel dimensions).
  ChannelFlowSolver(const pc::PointCloud& cloud, const rbf::Kernel& kernel,
                    const ChannelFlowConfig& config = {},
                    const pc::ChannelSpec& spec = {});

  /// Plain solve given the inflow control (one u-velocity per inlet node,
  /// ordered by increasing y).
  [[nodiscard]] Flow solve(const la::Vector& inflow) const;

  /// Differentiable solve: the whole projection rollout is recorded on the
  /// tape (the DP strategy's forward pass).
  [[nodiscard]] FlowAd solve(ad::Tape& tape, const ad::VarVec& inflow) const;

  /// Memory-lean DP variant (the obvious remedy for the paper's section-4
  /// memory complaint): run the first k-1 Picard refinements in plain
  /// arithmetic and record only the final refinement on the tape, starting
  /// from the detached state. The gradient ignores the sensitivity of the
  /// earlier sweeps (they re-enter only through the frozen advection
  /// field), so it is approximate; the tape shrinks by ~k.
  [[nodiscard]] FlowAd solve_last_refinement(ad::Tape& tape,
                                             const ad::VarVec& inflow) const;

  // ---- problem geometry / data ----

  [[nodiscard]] const pc::PointCloud& cloud() const { return *cloud_; }
  [[nodiscard]] const ChannelFlowConfig& config() const { return config_; }
  [[nodiscard]] const pc::ChannelSpec& spec() const { return spec_; }

  /// Inlet / outlet nodes sorted by increasing y, and their y-coordinates.
  [[nodiscard]] const std::vector<std::size_t>& inlet_nodes() const {
    return inlet_nodes_;
  }
  [[nodiscard]] const std::vector<std::size_t>& outlet_nodes() const {
    return outlet_nodes_;
  }
  [[nodiscard]] const std::vector<double>& inlet_y() const { return inlet_y_; }
  [[nodiscard]] const std::vector<double>& outlet_y() const {
    return outlet_y_;
  }

  /// Trapezoidal quadrature weights along the outlet (for the cost of
  /// eq. (11)).
  [[nodiscard]] const la::Vector& outlet_quadrature() const {
    return outlet_quad_;
  }

  /// Target parabolic outflow 4 y (Ly - y) / Ly^2.
  [[nodiscard]] double target_outflow(double y) const;

  /// Paper's initial control guess: the same parabola at the inlet.
  [[nodiscard]] la::Vector parabolic_inflow() const;

  /// RBF-FD differentiation matrices (constant per cloud).
  [[nodiscard]] const la::CsrMatrix& dx_matrix() const { return dx_; }
  [[nodiscard]] const la::CsrMatrix& dy_matrix() const { return dy_; }
  [[nodiscard]] const la::CsrMatrix& laplacian_matrix() const { return lap_; }

  /// Pressure-Poisson operator (constant per cloud): dense LU below the
  /// sparse-first threshold, CSR + ILU-Krylov above it.
  [[nodiscard]] const la::SparseFirstSolver& pressure_op() const {
    return pressure_op_;
  }

  /// Semi-implicit momentum operator (I - dt/Re Lap on interior rows,
  /// identity on boundary rows). Removes the diffusive CFL limit that the
  /// wall-graded cloud would otherwise impose (cf. Zamolo & Nobile [51]).
  [[nodiscard]] const la::SparseFirstSolver& momentum_op() const {
    return momentum_op_;
  }

  /// How the dense factorisations (when taken) were obtained (Tikhonov
  /// shift applied?). Empty reports on the sparse Krylov path until a dense
  /// fallback fires.
  [[nodiscard]] la::FactorReport pressure_factor_report() const {
    return pressure_op_.factor_report();
  }
  [[nodiscard]] la::FactorReport momentum_factor_report() const {
    return momentum_op_.factor_report();
  }

  /// Consistent Laplacian Dx.Dx + Dy.Dy restricted to interior rows
  /// (boundary rows structurally empty). Shared with the DAL adjoint
  /// solver, which builds its own momentum operator with adjoint boundary
  /// rows from it.
  [[nodiscard]] const la::CsrMatrix& interior_laplacian() const {
    return lap_consistent_;
  }

  /// Pressure-interior mask: 1 for nodes whose pressure row is the
  /// Laplacian (i.e. interior nodes).
  [[nodiscard]] const std::vector<std::uint8_t>& interior_mask() const {
    return is_interior_;
  }

  /// Prescribed wall-normal velocity at a node (patch bump profile; zero on
  /// plain wall segments).
  [[nodiscard]] double patch_velocity_at(std::size_t node) const;

  /// Divergence field of a velocity state (diagnostic).
  [[nodiscard]] la::Vector divergence(const la::Vector& u,
                                      const la::Vector& v) const;

  /// The spec used when this solver built its own cloud.
  [[nodiscard]] static pc::PointCloud make_cloud(const pc::ChannelSpec& spec) {
    return pc::channel_cloud(spec);
  }

 private:
  template <typename Backend>
  FlowState<typename Backend::Vec> initial_state(
      const Backend& backend, const typename Backend::Vec& inflow) const;

  template <typename Backend>
  void run_refinements(const Backend& backend,
                       FlowState<typename Backend::Vec>& state,
                       const typename Backend::Vec& inflow,
                       std::size_t count) const;

  template <typename Backend>
  FlowState<typename Backend::Vec> run(const Backend& backend,
                                       const typename Backend::Vec& inflow)
      const;

  template <typename Backend>
  void apply_velocity_bcs(const Backend& backend,
                          typename Backend::Vec& u,
                          typename Backend::Vec& v,
                          const typename Backend::Vec& inflow) const;

  const pc::PointCloud* cloud_;
  ChannelFlowConfig config_;
  pc::ChannelSpec spec_;

  rbf::RbffdOperators operators_;
  la::CsrMatrix dx_, dy_, lap_;
  la::CsrMatrix lap_consistent_;  // Dx.Dx + Dy.Dy on interior rows
  la::SparseFirstSolver pressure_op_;
  la::SparseFirstSolver momentum_op_;

  std::vector<std::size_t> inlet_nodes_, outlet_nodes_;
  std::vector<double> inlet_y_, outlet_y_;
  la::Vector outlet_quad_;
  std::vector<std::uint8_t> is_interior_;  // pressure-interior mask
  std::vector<std::size_t> wall_nodes_;    // walls incl. patches
};

}  // namespace updec::pde
