#pragma once
/// \file trace.hpp
/// \brief RAII wall-clock trace spans with nested (self vs total) accounting.
///
/// Drop `UPDEC_TRACE_SCOPE("rbf/assemble")` at the top of a scope and the
/// span's inclusive wall-clock is aggregated into the metrics registry
/// under that name when the scope exits. Spans nest: each occurrence also
/// reports *self* time (inclusive minus time spent inside nested spans on
/// the same thread), so the dump reads like a collapsed flame graph --
/// `control/optimize` self-time is loop overhead, not the PDE solves it
/// contains.
///
/// Span names are slash-separated `layer/operation` literals ("la/
/// robust_solve", "autodiff/backward"). They must be string literals or
/// otherwise outlive the scope; the span stores the pointer only.
///
/// Overhead follows the faultinject/metrics pattern: disabled, constructing
/// a span is one relaxed atomic load; compiled out (UPDEC_METRICS=OFF), the
/// macro expands to nothing. Nesting is tracked per thread, so spans inside
/// OpenMP regions attribute correctly to their own thread's stack.

#include "util/metrics.hpp"

namespace updec::trace {

/// One timed scope. Non-copyable; meant to be created by UPDEC_TRACE_SCOPE.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  Span* parent_ = nullptr;     ///< enclosing span on this thread, if any
  double start_seconds_ = 0.0;
  double child_seconds_ = 0.0; ///< inclusive time of directly nested spans
  bool active_ = false;        ///< false when metrics were disabled at entry
};

/// Monotonic seconds since an arbitrary epoch (steady_clock).
[[nodiscard]] double now_seconds();

}  // namespace updec::trace

#if defined(UPDEC_DISABLE_METRICS)
#define UPDEC_TRACE_SCOPE(name) ((void)0)
#else
#define UPDEC_TRACE_CONCAT_INNER(a, b) a##b
#define UPDEC_TRACE_CONCAT(a, b) UPDEC_TRACE_CONCAT_INNER(a, b)
/// Time the current scope as a span named `name` (a string literal).
#define UPDEC_TRACE_SCOPE(name) \
  ::updec::trace::Span UPDEC_TRACE_CONCAT(updec_trace_span_, __LINE__)(name)
#endif
