#include "util/metrics.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>
#include <sstream>

#include "util/log.hpp"
#include "util/memory.hpp"

namespace updec::metrics {

namespace {

/// Percentile sample cap per histogram/span; beyond it samples are thinned
/// 2:1 (count/sum/min/max stay exact, percentiles become approximate).
constexpr std::size_t kMaxSamples = 1 << 16;

struct Histogram {
  std::size_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<double> samples;

  void observe(double v) {
    if (count == 0) {
      min = max = v;
    } else {
      min = std::min(min, v);
      max = std::max(max, v);
    }
    ++count;
    sum += v;
    samples.push_back(v);
    if (samples.size() > kMaxSamples) {
      // Keep every second sample; order is irrelevant for percentiles.
      std::size_t w = 0;
      for (std::size_t r = 0; r < samples.size(); r += 2) samples[w++] = samples[r];
      samples.resize(w);
    }
  }
};

struct Span {
  Histogram totals;            ///< inclusive per-occurrence seconds
  double self_seconds = 0.0;   ///< exclusive seconds, summed
};

/// Registry state behind one mutex. Maps are ordered so the JSON dump is
/// deterministic (byte-identical across runs of the same workload).
struct Registry {
  std::mutex mutex;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram> histograms;
  std::map<std::string, Span> spans;
  std::map<std::string, std::string> labels;
};

Registry& registry() {
  // Intentionally leaked: the atexit dump handler (init_from_env) may run
  // after function-local statics are destroyed, so the registry must never
  // be destroyed at all.
  static Registry* r = new Registry();
  return *r;
}

/// Percentile by nth_element on a scratch copy (q in [0, 1]).
double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(samples.size() - 1) + 0.5);
  std::nth_element(samples.begin(),
                   samples.begin() + static_cast<std::ptrdiff_t>(idx),
                   samples.end());
  return samples[idx];
}

HistogramStats stats_of(const Histogram& h) {
  HistogramStats s;
  s.count = h.count;
  s.sum = h.sum;
  s.min = h.min;
  s.max = h.max;
  s.mean = h.count > 0 ? h.sum / static_cast<double>(h.count) : 0.0;
  s.p50 = percentile(h.samples, 0.50);
  s.p95 = percentile(h.samples, 0.95);
  return s;
}

bool env_truthy(const char* value) {
  if (value == nullptr) return false;
  std::string v(value);
  for (char& c : v) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return !v.empty() && v != "0" && v != "off" && v != "false" && v != "no";
}

/// JSON string escaping for metric names and label values.
void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Doubles as JSON numbers: finite values in shortest round-trip-ish form,
/// non-finite mapped to null (JSON has no NaN/Inf).
void write_json_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  std::ostringstream tmp;
  tmp.precision(17);
  tmp << v;
  os << tmp.str();
}

struct Registrar {
  Registrar() { init_from_env(); }
};
Registrar g_registrar;  // arm from the environment at program start

/// Pre-dump hooks behind their own mutex (never held while a hook runs, and
/// disjoint from the registry mutex so hooks may record metrics). Leaked for
/// the same atexit-ordering reason as the registry.
struct HookTable {
  std::mutex mutex;
  std::size_t next_token = 1;
  std::map<std::size_t, PredumpHook> hooks;
};

HookTable& hook_table() {
  static HookTable* t = new HookTable();
  return *t;
}

}  // namespace

void set_enabled(bool on) {
#if defined(UPDEC_DISABLE_METRICS)
  (void)on;
#else
  detail::g_enabled.store(on, std::memory_order_relaxed);
#endif
}

void init_from_env() {
  if (env_truthy(std::getenv("UPDEC_METRICS"))) set_enabled(true);
  const char* out = std::getenv("UPDEC_METRICS_OUT");
  if (out != nullptr && out[0] != '\0') {
    set_enabled(true);
    // Any binary honours UPDEC_METRICS_OUT: dump on normal exit. The bench
    // harness dumps earlier via MetricsSession; rewriting the same file
    // with the final registry state is harmless.
    static bool registered = false;
    if (!registered) {
      registered = true;
      std::atexit([] { dump_to_env_path(); });
    }
  }
}

void reset() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.counters.clear();
  r.gauges.clear();
  r.histograms.clear();
  r.spans.clear();
  r.labels.clear();
}

void counter_add(const char* name, std::uint64_t delta) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.counters[name] += delta;
}

std::uint64_t counter_value(const std::string& name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.counters.find(name);
  return it != r.counters.end() ? it->second : 0;
}

std::vector<CounterSample> counters_snapshot() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<CounterSample> out;
  out.reserve(r.counters.size());
  for (const auto& [name, value] : r.counters) out.push_back({name, value});
  return out;  // map iteration order: already sorted by name
}

void gauge_set(const char* name, double value) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.gauges[name] = value;
}

void gauge_max(const char* name, double value) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  auto [it, inserted] = r.gauges.try_emplace(name, value);
  if (!inserted) it->second = std::max(it->second, value);
}

double gauge_value(const std::string& name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.gauges.find(name);
  return it != r.gauges.end() ? it->second : 0.0;
}

void observe(const char* name, double value) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.histograms[name].observe(value);
}

HistogramStats histogram_stats(const std::string& name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.histograms.find(name);
  return it != r.histograms.end() ? stats_of(it->second) : HistogramStats{};
}

void record_span(const char* name, double total_seconds, double self_seconds) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  Span& s = r.spans[name];
  s.totals.observe(total_seconds);
  s.self_seconds += self_seconds;
}

SpanStats span_stats(const std::string& name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.spans.find(name);
  SpanStats out;
  if (it == r.spans.end()) return out;
  const HistogramStats h = stats_of(it->second.totals);
  out.count = h.count;
  out.total_seconds = h.sum;
  out.self_seconds = it->second.self_seconds;
  out.min_seconds = h.min;
  out.max_seconds = h.max;
  out.p50_seconds = h.p50;
  out.p95_seconds = h.p95;
  return out;
}

void set_label(const std::string& key, const std::string& value) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.labels[key] = value;
}

std::size_t register_predump_hook(PredumpHook hook) {
  HookTable& t = hook_table();
  const std::lock_guard<std::mutex> lock(t.mutex);
  const std::size_t token = t.next_token++;
  t.hooks.emplace(token, std::move(hook));
  return token;
}

void unregister_predump_hook(std::size_t token) {
  HookTable& t = hook_table();
  const std::lock_guard<std::mutex> lock(t.mutex);
  t.hooks.erase(token);
}

void run_predump_hooks() {
  // Copy out under the lock, run without it: hooks drain worker pools and
  // may take arbitrarily long or record metrics themselves.
  std::vector<PredumpHook> hooks;
  {
    HookTable& t = hook_table();
    const std::lock_guard<std::mutex> lock(t.mutex);
    hooks.reserve(t.hooks.size());
    for (const auto& [token, hook] : t.hooks) hooks.push_back(hook);
  }
  for (const auto& hook : hooks)
    if (hook) hook();
}

void dump_json(std::ostream& os) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);

  os << "{\n  \"schema\": \"updec-metrics-v1\",\n";

  os << "  \"labels\": {";
  bool first = true;
  for (const auto& [k, v] : r.labels) {
    os << (first ? "\n    " : ",\n    ");
    write_json_string(os, k);
    os << ": ";
    write_json_string(os, v);
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n";

  os << "  \"process\": {\n    \"peak_rss_bytes\": " << peak_rss_bytes()
     << ",\n    \"current_rss_bytes\": " << current_rss_bytes() << "\n  },\n";

  os << "  \"counters\": {";
  first = true;
  for (const auto& [k, v] : r.counters) {
    os << (first ? "\n    " : ",\n    ");
    write_json_string(os, k);
    os << ": " << v;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n";

  os << "  \"gauges\": {";
  first = true;
  for (const auto& [k, v] : r.gauges) {
    os << (first ? "\n    " : ",\n    ");
    write_json_string(os, k);
    os << ": ";
    write_json_number(os, v);
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n";

  const auto write_hist = [&os](const HistogramStats& h, const char* unit) {
    const std::string suffix = unit;
    os << "{\"count\": " << h.count;
    os << ", \"sum" << suffix << "\": ";
    write_json_number(os, h.sum);
    os << ", \"min" << suffix << "\": ";
    write_json_number(os, h.min);
    os << ", \"max" << suffix << "\": ";
    write_json_number(os, h.max);
    os << ", \"mean" << suffix << "\": ";
    write_json_number(os, h.mean);
    os << ", \"p50" << suffix << "\": ";
    write_json_number(os, h.p50);
    os << ", \"p95" << suffix << "\": ";
    write_json_number(os, h.p95);
  };

  os << "  \"histograms\": {";
  first = true;
  for (const auto& [k, v] : r.histograms) {
    os << (first ? "\n    " : ",\n    ");
    write_json_string(os, k);
    os << ": ";
    write_hist(stats_of(v), "");
    os << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n";

  os << "  \"spans\": {";
  first = true;
  for (const auto& [k, v] : r.spans) {
    os << (first ? "\n    " : ",\n    ");
    write_json_string(os, k);
    os << ": ";
    HistogramStats h = stats_of(v.totals);
    os << "{\"count\": " << h.count << ", \"total_seconds\": ";
    write_json_number(os, h.sum);
    os << ", \"self_seconds\": ";
    write_json_number(os, v.self_seconds);
    os << ", \"min_seconds\": ";
    write_json_number(os, h.min);
    os << ", \"max_seconds\": ";
    write_json_number(os, h.max);
    os << ", \"p50_seconds\": ";
    write_json_number(os, h.p50);
    os << ", \"p95_seconds\": ";
    write_json_number(os, h.p95);
    os << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
}

std::string dump_json() {
  std::ostringstream os;
  dump_json(os);
  return os.str();
}

bool dump_json_file(const std::string& path) {
  // Quiesce producer threads (worker pools) before snapshotting, so the
  // counters written out are final rather than a torn mid-flight view.
  run_predump_hooks();
  // Write-to-tmp + rename (the driver-checkpoint discipline): a crash or a
  // full disk mid-dump must never leave a truncated JSON at `path`, where
  // it would poison the bench-metrics CI diff on the next run.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp);
    if (!os.good()) {
      log_warn() << "metrics: cannot open " << tmp << " for writing";
      return false;
    }
    dump_json(os);
    os.flush();
    if (!os.good()) {
      log_warn() << "metrics: write to " << tmp << " failed";
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    log_warn() << "metrics: cannot rename " << tmp << " -> " << path;
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool dump_to_env_path() {
  const char* out = std::getenv("UPDEC_METRICS_OUT");
  if (out == nullptr || out[0] == '\0') return false;
  return dump_json_file(out);
}

}  // namespace updec::metrics
