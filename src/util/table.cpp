#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace updec {

void TextTable::set_header(std::vector<std::string> header) {
  UPDEC_REQUIRE(rows_.empty(), "set_header must precede add_row");
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  UPDEC_REQUIRE(row.size() == header_.size(),
                "row width must match header width");
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::sci(double v, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << v;
  return os.str();
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  const auto rule = [&] {
    os << '+';
    for (const std::size_t w : width) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  const auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c)
      os << ' ' << std::left << std::setw(static_cast<int>(width[c]))
         << cells[c] << " |";
    os << '\n';
  };

  os << "== " << title_ << " ==\n";
  rule();
  line(header_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

}  // namespace updec
