#pragma once
/// \file faultinject.hpp
/// \brief Deterministic fault-injection sites for resilience testing.
///
/// Long optimisation runs chain hundreds of linear solves; the recovery
/// paths for a stalled GMRES, a singular pivot or a NaN gradient must be
/// *exercised by tests*, not hoped for. Library code marks recoverable
/// failure sites with
///
///   if (UPDEC_FAULT_POINT("gmres.converge")) { /* simulate the failure */ }
///
/// Sites are disabled by default and the macro reduces to one relaxed
/// atomic load, so instrumented hot paths stay free. Faults are armed
/// either programmatically (fault::arm) or through the UPDEC_FAULTS
/// environment variable, e.g.
///
///   UPDEC_FAULTS="gmres.converge:2,driver.nan_gradient"
///
/// arms "gmres.converge" for its next two hits and "driver.nan_gradient"
/// for one. Armed counts decrement deterministically per hit, so a given
/// arming reproduces the same failure sequence on every run. Defining
/// UPDEC_DISABLE_FAULT_INJECTION compiles every site out entirely.
///
/// Serve-layer sites (chaos-testing the scheduler's retry/degradation
/// ladder and the persistent cache tier):
///
///   serve.solve_fault        one scenario attempt throws a transient error
///   serve.solve_latency      one attempt sleeps 25 ms before building
///   serve.cache_disk_write   one DiskCache::store fails (memory-only serve)
///   serve.cache_disk_corrupt one DiskCache::load sees a flipped payload
///                            byte (checksum reject + delete + recompute)
///   serve.shard_kill         the shard dispatcher SIGKILLs a worker right
///                            after dispatching a job to it (parent-side
///                            site, so respawned workers do not re-arm it;
///                            exercises crash resubmission)

#include <atomic>
#include <cstddef>
#include <string>

namespace updec::fault {

namespace detail {
/// Global fast-path switch; true iff at least one site has ever been armed.
inline std::atomic<bool> g_enabled{false};
}  // namespace detail

/// Arm `site` to fire on its next `count` hits (also flips the global
/// fast-path switch on). Re-arming replaces the previous count.
void arm(const std::string& site, std::size_t count = 1);

/// Disarm every site and turn the global fast-path switch off.
void disarm_all();

/// True iff any site has been armed since the last disarm_all().
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Slow path behind UPDEC_FAULT_POINT: true (and consumes one armed count)
/// iff `site` is armed. Logs each fired fault at warn level.
bool should_trigger(const char* site);

/// How many times `site` has fired since it was last armed.
std::size_t trigger_count(const std::string& site);

/// Remaining armed count for `site` (0 when disarmed or exhausted).
std::size_t armed_count(const std::string& site);

/// Parse the UPDEC_FAULTS environment variable and arm the listed sites.
/// Called automatically at program start; exposed for tests.
void arm_from_env();

}  // namespace updec::fault

#if defined(UPDEC_DISABLE_FAULT_INJECTION)
#define UPDEC_FAULT_POINT(site) (false)
#else
/// True iff the named site is armed; consumes one armed count per hit.
#define UPDEC_FAULT_POINT(site)                                   \
  (::updec::fault::detail::g_enabled.load(std::memory_order_relaxed) && \
   ::updec::fault::should_trigger(site))
#endif
