#include "util/csv.hpp"

#include <filesystem>
#include <fstream>
#include <iostream>

#include "util/error.hpp"

namespace updec {

void SeriesWriter::add(Series s) {
  UPDEC_REQUIRE(s.x.size() == s.y.size(), "series x/y size mismatch");
  series_.push_back(std::move(s));
}

void SeriesWriter::add(const std::string& name, const std::vector<double>& y,
                       const std::string& x_label,
                       const std::string& y_label) {
  Series s;
  s.name = name;
  s.x_label = x_label;
  s.y_label = y_label;
  s.y = y;
  s.x.resize(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) s.x[i] = static_cast<double>(i);
  add(std::move(s));
}

void SeriesWriter::flush(std::size_t max_stdout_points) const {
  namespace fs = std::filesystem;
  if (!out_dir_.empty()) fs::create_directories(out_dir_);

  for (const auto& s : series_) {
    if (!out_dir_.empty()) {
      std::ofstream f(fs::path(out_dir_) / (s.name + ".csv"));
      UPDEC_REQUIRE(static_cast<bool>(f), "cannot open CSV for " + s.name);
      f << s.x_label << "," << s.y_label << "\n";
      f.precision(12);
      for (std::size_t i = 0; i < s.x.size(); ++i)
        f << s.x[i] << "," << s.y[i] << "\n";
    }
    // Strided stdout dump so plots can be sanity-checked from logs.
    std::cout << "# series: " << s.name << " (" << s.x_label << " -> "
              << s.y_label << ", n=" << s.x.size() << ")\n";
    const std::size_t n = s.x.size();
    const std::size_t stride =
        n <= max_stdout_points ? 1 : (n + max_stdout_points - 1) / max_stdout_points;
    std::cout.precision(6);
    for (std::size_t i = 0; i < n; i += stride)
      std::cout << "#   " << s.x[i] << "\t" << s.y[i] << "\n";
    if (n > 0 && (n - 1) % stride != 0)
      std::cout << "#   " << s.x[n - 1] << "\t" << s.y[n - 1] << "\n";
  }
}

}  // namespace updec
