#pragma once
/// \file cli.hpp
/// \brief Minimal command-line option parsing for examples and bench binaries.
/// Supports `--key value`, `--key=value` and boolean `--flag` forms.

#include <map>
#include <string>
#include <vector>

namespace updec {

/// Parsed command-line arguments with typed, defaulted lookups.
class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] bool flag(const std::string& key) const { return has(key); }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;

  /// Typed lookups. A missing key or a bare boolean flag (empty value)
  /// returns `fallback`; a value that is not entirely a number of the
  /// requested type throws updec::Error naming the offending option, so a
  /// typo like `--iters=abc` aborts instead of silently running with 0.
  [[nodiscard]] int get_int(const std::string& key, int fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;

  /// Positional (non --key) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
};

}  // namespace updec
