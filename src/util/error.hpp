#pragma once
/// \file error.hpp
/// \brief Error-handling primitives shared by every updec module.
///
/// Library code throws `updec::Error` (a `std::runtime_error`) on contract
/// violations via UPDEC_REQUIRE; hot loops use UPDEC_ASSERT which compiles
/// out in release builds.

#include <sstream>
#include <stdexcept>
#include <string>

namespace updec {

/// Exception type thrown on any contract violation inside updec libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_error(const char* cond, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": requirement `" << cond << "` failed";
  if (!msg.empty()) os << ": " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace updec

/// Always-on precondition check. `msg` may use stream syntax via a string.
#define UPDEC_REQUIRE(cond, msg)                                            \
  do {                                                                      \
    if (!(cond))                                                            \
      ::updec::detail::throw_error(#cond, __FILE__, __LINE__, (msg));       \
  } while (0)

/// Debug-only assertion for hot paths.
#ifdef NDEBUG
#define UPDEC_ASSERT(cond) ((void)0)
#else
#define UPDEC_ASSERT(cond) UPDEC_REQUIRE(cond, "assertion")
#endif
