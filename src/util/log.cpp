#include "util/log.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace updec {
namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

// Apply UPDEC_LOG_LEVEL once at program start, before any driver code runs.
const bool g_env_init = [] {
  init_log_level_from_env();
  return true;
}();

}  // namespace

void set_log_level(LogLevel level) { g_level = static_cast<int>(level); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

LogLevel parse_log_level(const std::string& text, LogLevel fallback) {
  std::string t = text;
  std::transform(t.begin(), t.end(), t.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (t == "debug" || t == "0") return LogLevel::kDebug;
  if (t == "info" || t == "1") return LogLevel::kInfo;
  if (t == "warn" || t == "warning" || t == "2") return LogLevel::kWarn;
  if (t == "error" || t == "3") return LogLevel::kError;
  return fallback;
}

void init_log_level_from_env() {
  const char* env = std::getenv("UPDEC_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return;
  // Parse against two distinct fallbacks: they disagree iff `env` fell
  // through unrecognised.
  const LogLevel a = parse_log_level(env, LogLevel::kDebug);
  const LogLevel b = parse_log_level(env, LogLevel::kError);
  if (a != b) {
    log_warn() << "UPDEC_LOG_LEVEL='" << env
               << "' not recognised (want debug/info/warn/error); keeping "
               << level_name(log_level());
    return;
  }
  set_log_level(a);
}

void log_message(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < g_level.load()) return;
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << "[" << level_name(level) << "] " << msg << "\n";
}

}  // namespace updec
