#include "util/faultinject.hpp"

#include <cstdlib>
#include <mutex>
#include <unordered_map>

#include "util/log.hpp"

namespace updec::fault {

namespace {

struct SiteState {
  std::size_t remaining = 0;
  std::size_t fired = 0;
};

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::unordered_map<std::string, SiteState>& registry() {
  static std::unordered_map<std::string, SiteState> sites;
  return sites;
}

// Arm sites from the environment once, at program start. The initializer
// lives in this TU, which is always linked when any fault API is used.
const bool g_env_armed = [] {
  arm_from_env();
  return true;
}();

std::string trim(const std::string& s) {
  const std::size_t first = s.find_first_not_of(" \t");
  if (first == std::string::npos) return {};
  const std::size_t last = s.find_last_not_of(" \t");
  return s.substr(first, last - first + 1);
}

}  // namespace

void arm(const std::string& site, std::size_t count) {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  registry()[site] = SiteState{count, 0};
  detail::g_enabled.store(true, std::memory_order_relaxed);
}

void disarm_all() {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  registry().clear();
  detail::g_enabled.store(false, std::memory_order_relaxed);
}

bool should_trigger(const char* site) {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  const auto it = registry().find(site);
  if (it == registry().end() || it->second.remaining == 0) return false;
  --it->second.remaining;
  ++it->second.fired;
  log_warn() << "fault injection: firing site '" << site << "' ("
             << it->second.remaining << " arming(s) left)";
  return true;
}

std::size_t trigger_count(const std::string& site) {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  const auto it = registry().find(site);
  return it == registry().end() ? 0 : it->second.fired;
}

std::size_t armed_count(const std::string& site) {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  const auto it = registry().find(site);
  return it == registry().end() ? 0 : it->second.remaining;
}

void arm_from_env() {
  const char* spec = std::getenv("UPDEC_FAULTS");
  if (spec == nullptr || *spec == '\0') return;
  // Comma-separated "site" or "site:count" entries.
  const std::string s(spec);
  std::size_t begin = 0;
  while (begin <= s.size()) {
    std::size_t end = s.find(',', begin);
    if (end == std::string::npos) end = s.size();
    std::string entry = trim(s.substr(begin, end - begin));
    begin = end + 1;
    if (entry.empty()) continue;
    std::size_t count = 1;
    const std::size_t colon = entry.find(':');
    if (colon != std::string::npos) {
      const std::string count_str = trim(entry.substr(colon + 1));
      entry = trim(entry.substr(0, colon));
      char* parse_end = nullptr;
      const unsigned long parsed =
          std::strtoul(count_str.c_str(), &parse_end, 10);
      if (parse_end == nullptr || *parse_end != '\0' || parsed == 0) {
        log_warn() << "UPDEC_FAULTS: ignoring bad count '" << count_str
                   << "' for site '" << entry << "'";
        continue;
      }
      count = static_cast<std::size_t>(parsed);
    }
    if (entry.empty()) continue;
    arm(entry, count);
    log_info() << "UPDEC_FAULTS: armed site '" << entry << "' x" << count;
  }
}

}  // namespace updec::fault
