#pragma once
/// \file table.hpp
/// \brief Aligned-column text tables for the benchmark harness. Every table the
/// paper reports (Tables 1-3) is printed through this formatter so the bench
/// output can be compared to the paper row for row.

#include <iosfwd>
#include <string>
#include <vector>

namespace updec {

/// Column-aligned text table with a title, a header row and data rows.
class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  /// Set the header row. Must be called before adding rows.
  void set_header(std::vector<std::string> header);

  /// Add a data row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Format helpers for numeric cells.
  static std::string num(double v, int precision = 4);
  static std::string sci(double v, int precision = 2);

  /// Render the table with box-drawing separators.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace updec
