#pragma once
/// \file memory.hpp
/// \brief Process memory probes used to reproduce the "Peak mem." column of the
/// paper's Table 3.

#include <cstddef>

namespace updec {

/// Peak resident set size of the current process in bytes (VmHWM on Linux).
/// Returns 0 when the probe is unavailable on the platform.
std::size_t peak_rss_bytes();

/// Current resident set size in bytes (VmRSS on Linux). 0 if unavailable.
std::size_t current_rss_bytes();

/// Convenience: bytes -> mebibytes.
inline double to_mib(std::size_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

}  // namespace updec
