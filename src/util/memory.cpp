#include "util/memory.hpp"

#include <fstream>
#include <sstream>
#include <string>

namespace updec {
namespace {

/// Parse a "Vm...:  <kB> kB" line from /proc/self/status.
std::size_t read_status_field(const std::string& field) {
  std::ifstream in("/proc/self/status");
  if (!in) return 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(field, 0) == 0) {
      std::istringstream is(line.substr(field.size()));
      std::size_t kb = 0;
      is >> kb;
      return kb * 1024;
    }
  }
  return 0;
}

}  // namespace

std::size_t peak_rss_bytes() { return read_status_field("VmHWM:"); }

std::size_t current_rss_bytes() { return read_status_field("VmRSS:"); }

}  // namespace updec
