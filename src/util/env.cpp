#include "util/env.hpp"

#include <charconv>
#include <cstdlib>
#include <system_error>

#include "util/log.hpp"

namespace updec::env {

namespace {

/// Whole-string std::from_chars parse; false on leftovers or no digits.
template <typename T>
bool parse_strict(const char* value, T& out) {
  const char* first = value;
  const char* last = value;
  while (*last != '\0') ++last;
  if (first != last && *first == '+') ++first;
  T parsed{};
  const auto [ptr, ec] = std::from_chars(first, last, parsed);
  if (ec != std::errc() || ptr != last) return false;
  out = parsed;
  return true;
}

template <typename T>
T get_or_warn(const char* name, T fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  T parsed{};
  if (parse_strict(value, parsed)) return parsed;
  log_warn() << name << "='" << value
             << "' is not a valid number; using the default";
  return fallback;
}

}  // namespace

double get_double(const char* name, double fallback) {
  return get_or_warn<double>(name, fallback);
}

std::int64_t get_i64(const char* name, std::int64_t fallback) {
  return get_or_warn<std::int64_t>(name, fallback);
}

std::uint64_t get_u64(const char* name, std::uint64_t fallback) {
  return get_or_warn<std::uint64_t>(name, fallback);
}

bool get_bool(const char* name, bool fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  std::string v(value);
  for (char& c : v)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (v == "1" || v == "on" || v == "true" || v == "yes") return true;
  if (v == "0" || v == "off" || v == "false" || v == "no") return false;
  log_warn() << name << "='" << value
             << "' is not a valid boolean (1/on/true/yes or 0/off/false/no); "
             << "using the default";
  return fallback;
}

std::string get_string(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return value;
}

}  // namespace updec::env
