#include "util/trace.hpp"

#include <chrono>

namespace updec::trace {

namespace {
/// Innermost open span on this thread (nesting is per-thread by design:
/// spans inside OpenMP worker regions form their own stacks).
thread_local Span* t_top = nullptr;
}  // namespace

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Span::Span(const char* name) : name_(name) {
  if (!metrics::enabled()) return;  // stays inert even if enabled mid-scope
  active_ = true;
  parent_ = t_top;
  t_top = this;
  start_seconds_ = now_seconds();
}

Span::~Span() {
  if (!active_) return;
  const double total = now_seconds() - start_seconds_;
  const double self = total - child_seconds_;
  t_top = parent_;
  if (parent_ != nullptr) parent_->child_seconds_ += total;
  metrics::record_span(name_, total, self < 0.0 ? 0.0 : self);
}

}  // namespace updec::trace
