#pragma once
/// \file metrics.hpp
/// \brief Process-wide metrics registry: counters, gauges, histograms and
///        trace-span aggregates, with JSON export for the bench trajectory.
///
/// Every layer of the stack reports into one global registry so a single
/// `dump_json()` captures a run end to end: solver escalation counts from
/// `la/`, assembly/factorisation spans from `rbf/`, tape growth from
/// `autodiff/`, and per-outer-iteration costs from `control/`. The bench
/// binaries write the dump as `BENCH_<name>.json` next to their CSVs; the
/// committed `bench/baselines/BENCH_baseline.json` is the perf trajectory
/// future optimisation PRs must beat.
///
/// Overhead discipline (mirrors util/faultinject.hpp):
///  * disabled at runtime (the default), every instrumentation macro is one
///    relaxed atomic load;
///  * compiled out (`-DUPDEC_METRICS=OFF`, which defines
///    UPDEC_DISABLE_METRICS), the macros vanish entirely;
///  * enabled, updates take a mutex on the shared registry -- fine for the
///    per-solve / per-iteration granularity instrumented here, not meant
///    for per-flop counters.
///
/// Instrumentation sites use the macros, never the functions directly:
///
///   UPDEC_METRIC_ADD("la/gmres.iterations", res.iterations);
///   UPDEC_METRIC_GAUGE_MAX("autodiff/tape.peak_bytes", tape.memory_bytes());
///   UPDEC_METRIC_OBSERVE("control/driver.iteration_seconds", dt);
///
/// RAII wall-clock spans live in util/trace.hpp (UPDEC_TRACE_SCOPE) and
/// aggregate into this registry via record_span().

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace updec::metrics {

namespace detail {
/// Global fast-path switch; instrumentation is a no-op while false.
inline std::atomic<bool> g_enabled{false};
}  // namespace detail

#if defined(UPDEC_DISABLE_METRICS)
constexpr bool enabled() { return false; }
#else
/// True iff the registry is collecting. One relaxed atomic load.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
#endif

/// Turn collection on/off at runtime (the registry contents survive a
/// disable; reset() clears them). No-op when compiled out.
void set_enabled(bool on);

/// Honour the environment: UPDEC_METRICS=1/on/true enables collection, and
/// a non-empty UPDEC_METRICS_OUT implies it (the dump path is useless
/// without data). Runs automatically at program start; exposed for tests.
void init_from_env();

/// Drop every counter/gauge/histogram/span (keeps the enabled flag).
void reset();

// ---- counters (monotonic, summed across threads) -------------------------
void counter_add(const char* name, std::uint64_t delta = 1);
[[nodiscard]] std::uint64_t counter_value(const std::string& name);

/// One (name, value) counter pair of a registry snapshot.
struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

/// Consistent snapshot of every counter, sorted by name. This is the
/// cross-process currency of the sharded serving tier: each worker process
/// snapshots its own registry, ships it over the wire, and the parent merges
/// the deltas (serve::ShardPool) so the atexit JSON dump stays truthful even
/// though the work ran in forked children.
[[nodiscard]] std::vector<CounterSample> counters_snapshot();

// ---- gauges (last-write or running-max semantics per call site) ----------
void gauge_set(const char* name, double value);
/// Keep the maximum of the current and supplied value (peak tracking).
void gauge_max(const char* name, double value);
[[nodiscard]] double gauge_value(const std::string& name);

// ---- histograms ----------------------------------------------------------

/// Record one sample. count/sum/min/max are always exact; percentiles are
/// computed from retained samples, which are thinned 2:1 whenever they
/// exceed an internal cap (so long runs stay bounded at the cost of
/// slightly coarser p50/p95).
void observe(const char* name, double value);

struct HistogramStats {
  std::size_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
};
[[nodiscard]] HistogramStats histogram_stats(const std::string& name);

// ---- trace spans (fed by util/trace.hpp) ---------------------------------

/// Aggregate one completed span occurrence. `self_seconds` excludes time
/// spent in nested spans, so a flame-graph style "where does the time
/// actually go" read falls out of the dump directly.
void record_span(const char* name, double total_seconds, double self_seconds);

struct SpanStats {
  std::size_t count = 0;
  double total_seconds = 0.0;  ///< inclusive wall-clock, summed
  double self_seconds = 0.0;   ///< exclusive wall-clock, summed
  double min_seconds = 0.0;    ///< fastest single occurrence (inclusive)
  double max_seconds = 0.0;    ///< slowest single occurrence (inclusive)
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
};
[[nodiscard]] SpanStats span_stats(const std::string& name);

// ---- labels (free-form run metadata carried into the dump) ---------------
void set_label(const std::string& key, const std::string& value);

// ---- pre-dump hooks (quiesce producers before a snapshot) ----------------

/// Callback run before a file/env dump takes its registry snapshot. Used by
/// components that own worker threads (serve::ThreadPool) to drain in-flight
/// work, so the atexit JSON dump never races live producers and the emitted
/// counters are final. Hooks run outside the registry mutex and may
/// themselves record metrics.
using PredumpHook = std::function<void()>;

/// Register a hook; returns a token for unregister_predump_hook(). Hooks run
/// in registration order. Owners with shorter lifetimes than the process
/// MUST unregister in their destructor (C++ guarantees atexit handlers and
/// static destructors interleave LIFO, so a pool that unregisters on
/// destruction is never called back after death).
std::size_t register_predump_hook(PredumpHook hook);
void unregister_predump_hook(std::size_t token);

/// Run all registered hooks (idempotent per call site; exposed for tests).
/// Called automatically by dump_json_file() and dump_to_env_path().
void run_predump_hooks();

// ---- JSON export ---------------------------------------------------------

/// Serialise the registry. Schema (stable; see docs/OBSERVABILITY.md):
///   { "schema": "updec-metrics-v1",
///     "labels":     { "<key>": "<value>", ... },
///     "process":    { "peak_rss_bytes": N, "current_rss_bytes": N },
///     "counters":   { "<name>": N, ... },
///     "gauges":     { "<name>": x, ... },
///     "histograms": { "<name>": {count,sum,min,max,mean,p50,p95}, ... },
///     "spans":      { "<name>": {count,total_seconds,self_seconds,
///                                min_seconds,max_seconds,p50_seconds,
///                                p95_seconds}, ... } }
void dump_json(std::ostream& os);
[[nodiscard]] std::string dump_json();

/// Write the dump to `path`; returns false (and logs at warn) on I/O error.
bool dump_json_file(const std::string& path);

/// Write the dump to $UPDEC_METRICS_OUT if set; returns true iff written.
bool dump_to_env_path();

}  // namespace updec::metrics

#if defined(UPDEC_DISABLE_METRICS)
#define UPDEC_METRIC_ADD(name, delta) ((void)0)
#define UPDEC_METRIC_GAUGE_SET(name, value) ((void)0)
#define UPDEC_METRIC_GAUGE_MAX(name, value) ((void)0)
#define UPDEC_METRIC_OBSERVE(name, value) ((void)0)
#else
/// Increment counter `name` by `delta` (no-op while metrics are disabled).
#define UPDEC_METRIC_ADD(name, delta)                        \
  (::updec::metrics::enabled()                               \
       ? ::updec::metrics::counter_add((name), (delta))      \
       : (void)0)
/// Set gauge `name` to `value`.
#define UPDEC_METRIC_GAUGE_SET(name, value)                  \
  (::updec::metrics::enabled()                               \
       ? ::updec::metrics::gauge_set((name), (value))        \
       : (void)0)
/// Raise gauge `name` to at least `value` (peak tracking).
#define UPDEC_METRIC_GAUGE_MAX(name, value)                  \
  (::updec::metrics::enabled()                               \
       ? ::updec::metrics::gauge_max((name), (value))        \
       : (void)0)
/// Record one histogram sample under `name`.
#define UPDEC_METRIC_OBSERVE(name, value)                    \
  (::updec::metrics::enabled()                               \
       ? ::updec::metrics::observe((name), (value))          \
       : (void)0)
#endif
