#pragma once
/// \file csv.hpp
/// \brief Series (figure-data) emission. Each figure in the paper corresponds to
/// one or more named series printed by the bench binaries; the SeriesWriter
/// renders them either inline (stdout, '# series:' blocks) or to CSV files
/// for external plotting.

#include <string>
#include <vector>

namespace updec {

/// A named (x, y) series, e.g. a cost history or a velocity profile.
struct Series {
  std::string name;
  std::string x_label;
  std::string y_label;
  std::vector<double> x;
  std::vector<double> y;
};

/// Collects series and writes them as CSV files and/or a compact stdout dump.
class SeriesWriter {
 public:
  /// \param out_dir directory for CSV output; empty -> stdout only.
  explicit SeriesWriter(std::string out_dir = "") : out_dir_(std::move(out_dir)) {}

  void add(Series s);

  /// Convenience: add a series from y-values with implicit x = 0..n-1.
  void add(const std::string& name, const std::vector<double>& y,
           const std::string& x_label = "index",
           const std::string& y_label = "value");

  /// Write all collected series. Stdout dump is capped at `max_stdout_points`
  /// evenly-strided points per series to keep logs readable.
  void flush(std::size_t max_stdout_points = 16) const;

  [[nodiscard]] std::size_t size() const { return series_.size(); }

 private:
  std::string out_dir_;
  std::vector<Series> series_;
};

}  // namespace updec
