#pragma once
/// \file rng.hpp
/// \brief Deterministic, seedable random number generation.
///
/// All stochastic components in updec (network initialisation, scattered
/// node jitter, mini-batch sampling) draw from this generator so that every
/// experiment is reproducible bit-for-bit from its seed.

#include <cstdint>
#include <vector>

namespace updec {

/// splitmix64-based PRNG. Small state, passes BigCrush, trivially seedable.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal variate (Box-Muller; caches the second draw).
  double normal();

  /// Normal with given mean / standard deviation.
  double normal(double mean, double stddev);

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n);

  /// k distinct indices sampled without replacement from [0, n).
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Re-seed in place.
  void seed(std::uint64_t s) {
    state_ = s;
    has_cached_normal_ = false;
  }

 private:
  std::uint64_t state_;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace updec
