#include "util/cli.hpp"

#include <charconv>
#include <system_error>

#include "util/error.hpp"

namespace updec {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      kv_[arg] = argv[++i];
    } else {
      kv_[arg] = "";  // boolean flag
    }
  }
}

bool CliArgs::has(const std::string& key) const { return kv_.count(key) > 0; }

std::string CliArgs::get(const std::string& key,
                         const std::string& fallback) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? fallback : it->second;
}

namespace {

/// Parse the full value string as a T with std::from_chars; any leftover
/// characters (or no digits at all) mean the option is malformed. A leading
/// '+' is tolerated for symmetry with '-'.
template <typename T>
T parse_or_throw(const std::string& key, const std::string& value) {
  const char* first = value.c_str();
  const char* last = first + value.size();
  if (first != last && *first == '+') ++first;
  T parsed{};
  const auto [ptr, ec] = std::from_chars(first, last, parsed);
  UPDEC_REQUIRE(ec == std::errc() && ptr == last,
                "malformed numeric value for --" + key + ": '" + value + "'");
  return parsed;
}

}  // namespace

int CliArgs::get_int(const std::string& key, int fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end() || it->second.empty()) return fallback;
  return parse_or_throw<int>(key, it->second);
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end() || it->second.empty()) return fallback;
  return parse_or_throw<double>(key, it->second);
}

}  // namespace updec
