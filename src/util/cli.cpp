#include "util/cli.hpp"

#include <cstdlib>

#include "util/error.hpp"

namespace updec {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      kv_[arg] = argv[++i];
    } else {
      kv_[arg] = "";  // boolean flag
    }
  }
}

bool CliArgs::has(const std::string& key) const { return kv_.count(key) > 0; }

std::string CliArgs::get(const std::string& key,
                         const std::string& fallback) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? fallback : it->second;
}

int CliArgs::get_int(const std::string& key, int fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end() || it->second.empty()) return fallback;
  return std::atoi(it->second.c_str());
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end() || it->second.empty()) return fallback;
  return std::atof(it->second.c_str());
}

}  // namespace updec
