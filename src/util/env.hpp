#pragma once
/// \file env.hpp
/// \brief Strict environment-knob parsing.
///
/// UPDEC_* knobs used to be read with strtod/strtoull, which silently parse
/// a numeric prefix ("512MB" -> 512, "1e3x" -> 1000) and turn a typo into a
/// live misconfiguration. These helpers apply the same std::from_chars
/// discipline as CliArgs::get_int/get_double: the WHOLE value must parse,
/// anything else warns once (naming the variable and the value) and falls
/// back to the caller's default. A leading '+' is tolerated for symmetry
/// with '-'.

#include <cstdint>
#include <string>

namespace updec::env {

/// Value of `name`, or `fallback` when unset/empty/malformed (malformed
/// values are logged at warn level).
[[nodiscard]] double get_double(const char* name, double fallback);
[[nodiscard]] std::int64_t get_i64(const char* name, std::int64_t fallback);
[[nodiscard]] std::uint64_t get_u64(const char* name, std::uint64_t fallback);

/// Boolean knob with the same strictness: `1`/`on`/`true`/`yes` are true,
/// `0`/`off`/`false`/`no` are false (case-insensitive); anything else warns
/// and falls back. Unset/empty returns `fallback`.
[[nodiscard]] bool get_bool(const char* name, bool fallback);

/// Raw string value of `name`, or `fallback` when unset (empty counts as
/// unset: `UPDEC_CACHE_DIR= updec_serve` disarms the disk tier).
[[nodiscard]] std::string get_string(const char* name,
                                     const std::string& fallback = {});

}  // namespace updec::env
