#pragma once
/// \file log.hpp
/// \brief Leveled logging with a global verbosity switch. Kept deliberately tiny:
/// the library is CPU-bound numerics, logging is for drivers only.

#include <iosfwd>
#include <sstream>
#include <string>

namespace updec {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped. The initial
/// threshold honours the UPDEC_LOG_LEVEL environment variable
/// (debug/info/warn/error, case-insensitive, or a numeric 0-3) so drivers
/// and CI can raise verbosity without recompiling; it defaults to info.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parse a level name ("debug", "info", "warn"/"warning", "error", or a
/// digit 0-3, case-insensitive). Returns `fallback` on anything else.
LogLevel parse_log_level(const std::string& text, LogLevel fallback);

/// Re-read UPDEC_LOG_LEVEL and apply it (no-op when unset or malformed).
/// Runs automatically at program start; exposed for tests and for drivers
/// that mutate the environment.
void init_log_level_from_env();

/// Emit a message at the given level (thread-safe append to stderr).
void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace updec
