#pragma once
/// \file timer.hpp
/// \brief Monotonic wall-clock stopwatch used by the benchmark harness (Table 3).

#include <chrono>

namespace updec {

/// Simple RAII-friendly stopwatch over std::chrono::steady_clock.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace updec
