#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace updec {

std::uint64_t Rng::next_u64() {
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller on two uniforms; guard against log(0).
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  UPDEC_REQUIRE(n > 0, "uniform_index needs n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ull - (~0ull % n);
  std::uint64_t x = next_u64();
  while (x >= limit) x = next_u64();
  return x % n;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  UPDEC_REQUIRE(k <= n, "cannot sample more elements than available");
  // Partial Fisher-Yates over an index vector.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + uniform_index(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace updec
