#include "refine/indicator.hpp"

#include <algorithm>
#include <cmath>

#include "pointcloud/generators.hpp"
#include "rbf/rbffd.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace updec::refine {

la::Vector adjoint_weighted_residual(const pde::LaplaceFdSolver& solver,
                                     const la::Vector& state,
                                     const la::Vector& adjoint,
                                     const IndicatorConfig& config) {
  UPDEC_TRACE_SCOPE("refine/indicator");
  const pc::PointCloud& cloud = solver.cloud();
  const std::size_t n = cloud.size();
  UPDEC_REQUIRE(state.size() == n && adjoint.size() == n,
                "indicator needs nodal state/adjoint over the solver cloud");

  // The enriched probe operator: more neighbours and one more appended
  // degree than the primal stencils, clamped to stay unisolvent and inside
  // the cloud.
  const rbf::RbffdConfig primal = solver.operators().config();
  rbf::RbffdConfig enriched;
  enriched.poly_degree = primal.poly_degree + std::max(0, config.extra_degree);
  const std::size_t basis_size = static_cast<std::size_t>(
      (enriched.poly_degree + 1) * (enriched.poly_degree + 2) / 2);
  enriched.stencil_size =
      std::min(cloud.size(), std::max(primal.stencil_size + config.extra_stencil,
                                      2 * basis_size + 1));
  const rbf::RbffdOperators probe(cloud, solver.operators().kernel(), enriched);
  const la::CsrMatrix& lap = probe.laplacian();

  // Local spacing h_i from the primal KD-tree (k = 2: self + nearest).
  const pc::KdTree& tree = solver.operators().tree();

  la::Vector eta(n, 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (cloud.node(i).tag != pc::tags::kInterior) continue;
    double residual = 0.0;  // (L_+ u)_i - f_i with f = 0 inside
    for (std::size_t k = lap.row_ptr()[i]; k < lap.row_ptr()[i + 1]; ++k)
      residual += lap.values()[k] * state[lap.col_idx()[k]];
    const std::vector<std::size_t> nn = tree.k_nearest(cloud.node(i).pos, 2);
    const double h = pc::distance(cloud.node(i).pos, cloud.node(nn.back()).pos);
    eta[i] = std::abs(adjoint[i]) * std::abs(residual) * h * h;
    total += eta[i];
  }
  if (metrics::enabled()) metrics::gauge_set("refine/indicator_total", total);
  return eta;
}

}  // namespace updec::refine
