#pragma once
/// \file indicator.hpp
/// \brief Nodal a-posteriori error indicators for the Laplace boundary
///        control problem: adjoint-weighted residuals in the
///        dual-weighted-residual (DWR) tradition.
///
/// The tracked cost J integrates the top-wall flux, and the DAL loop already
/// computes the adjoint lambda of exactly that functional -- so the nodal
/// contribution of discretisation error to J is estimated as
///
///   eta_i = |lambda_i| * |(L_+ u)_i - f_i| * h_i^2        (interior nodes)
///   eta_i = 0                                             (boundary nodes)
///
/// where u is the converged discrete state, L_+ an ENRICHED RBF-FD
/// Laplacian (larger stencil, higher appended degree) over the same cloud,
/// f = 0 the interior source, and h_i the local spacing. The primal
/// operator's own residual of its own solution is Krylov noise by
/// construction; only an enriched operator sees the discretisation error.
/// The h^2 factor is the nodal quadrature volume: it makes eta an error
/// *contribution*, so already-refined regions self-limit. Boundary rows
/// carry boundary conditions, not the PDE, and their nodes are protected
/// from refinement anyway (the control DOF layout must survive adaptation).

#include "la/dense.hpp"
#include "pde/laplace.hpp"

namespace updec::refine {

/// Enrichment of the primal stencil used for the residual probe.
struct IndicatorConfig {
  std::size_t extra_stencil = 6;  ///< added neighbours over the primal k
  int extra_degree = 1;           ///< added appended-polynomial degree
};

/// eta over all cloud nodes (canonical order), as defined above. `state`
/// and `adjoint` are nodal fields of solver.cloud() -- the pair the
/// control::AdjointObserver hook on the sparse DAL strategy hands out.
[[nodiscard]] la::Vector adjoint_weighted_residual(
    const pde::LaplaceFdSolver& solver, const la::Vector& state,
    const la::Vector& adjoint, const IndicatorConfig& config = {});

}  // namespace updec::refine
