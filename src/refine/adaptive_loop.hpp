#pragma once
/// \file adaptive_loop.hpp
/// \brief The optimize -> estimate -> adapt -> transfer driver: runs the
///        sparse Laplace DAL control loop, forms adjoint-weighted residual
///        indicators from the pair the strategy already computed, adapts
///        the cloud by fixed-fraction selection, rebuilds stencils
///        incrementally and carries control/state onto the new cloud --
///        for RefineConfig::cycles rounds.
///
/// Because only interior nodes are touched, the control DOF layout (top
/// wall) is invariant across cycles and the optimized control warm-starts
/// every cycle's optimize; the converged state is RBF-transferred to the
/// new cloud as a per-cycle consistency diagnostic on the tracked cost.

#include <memory>
#include <vector>

#include "control/driver.hpp"
#include "refine/indicator.hpp"
#include "refine/refiner.hpp"
#include "rom/laplace_rom.hpp"

namespace updec::refine {

struct AdaptiveOptions {
  RefineConfig refine;              ///< see refine_config_from_env()
  IndicatorConfig indicator;
  control::DriverOptions driver;    ///< per-cycle optimize budget
  rbf::RbffdConfig stencil;
  la::RobustSolveOptions solver;
  /// Learning-rate multiplier for warm-started cycles (>= 1): the carried
  /// control is already near the new cloud's optimum, and re-running the
  /// full-rate Adam schedule from a reset moment state was measured to walk
  /// it away before re-converging.
  double warm_lr_decay = 0.3;

  AdaptiveOptions() {
    driver.iterations = 250;
    driver.initial_learning_rate = 1e-2;
  }
};

/// One optimize round on one cloud.
struct CycleReport {
  std::size_t nodes = 0;            ///< cloud size optimized on
  double cost = 0.0;                ///< final tracked cost on that cloud
  double indicator_total = 0.0;     ///< sum of eta (global error estimate)
  std::size_t inserted = 0;         ///< nodes added moving to the NEXT cloud
  std::size_t removed = 0;
  std::size_t stencil_rows_reused = 0;      ///< incremental rebuild savings
  std::size_t stencil_rows_recomputed = 0;
  double transferred_cost = 0.0;    ///< tracked cost of the RBF-transferred
                                    ///< state on the next cloud (diagnostic;
                                    ///< 0 for the last cycle)
  double seconds = 0.0;
};

struct AdaptiveResult {
  std::shared_ptr<rom::LaplaceFdControlProblem> problem;  ///< final cloud
  la::Vector control;               ///< optimized control on the final cloud
  double final_cost = 0.0;          ///< == cycles.back().cost
  std::vector<CycleReport> cycles;  ///< refine.cycles + 1 optimize rounds
};

/// Run the full loop from a uniform grid_n x grid_n cloud. The kernel must
/// outlive the returned problem.
class AdaptiveLoop {
 public:
  AdaptiveLoop(std::size_t grid_n, const rbf::Kernel& kernel,
               AdaptiveOptions options = {});

  [[nodiscard]] AdaptiveResult run() const;

 private:
  std::size_t grid_n_;
  const rbf::Kernel* kernel_;
  AdaptiveOptions options_;
};

}  // namespace updec::refine
