#pragma once
/// \file refiner.hpp
/// \brief Fixed-fraction refine/coarsen selection over a scattered cloud,
///        in the style of PHiLiP's mesh adaptation: the top refine_fraction
///        of nodes by indicator each sprout one new interior node at their
///        widest stencil gap's midpoint, the bottom coarsen_fraction of
///        interior nodes are dropped, and boundary nodes are protected on
///        both sides (the boundary layout carries the control DOFs and the
///        periodic pairing, so adaptation must never touch it).

#include <cstddef>
#include <vector>

#include "la/dense.hpp"
#include "pointcloud/cloud.hpp"
#include "rbf/rbffd.hpp"

namespace updec::refine {

/// Knobs of one adapt step. refine_config_from_env() reads the UPDEC_REFINE_*
/// environment over these defaults.
struct RefineConfig {
  double refine_fraction = 0.15;   ///< top fraction of nodes flagged
  double coarsen_fraction = 0.04;  ///< bottom fraction of interior nodes cut
  std::size_t cycles = 2;          ///< adapt cycles in the AdaptiveLoop
  std::size_t max_nodes = 0;       ///< cloud-size cap after a step; 0 = none
  /// A candidate midpoint closer than `spacing_guard` x the local spacing to
  /// an existing node (or an already accepted insertion) is rejected. The
  /// default of 0.6 deliberately excludes nearest-neighbour midpoints
  /// (0.5 h): on a structured cloud the survivors are exactly the
  /// surrounding cell centres (0.707 h), which keep the refined
  /// neighbourhood symmetric -- see fixed_fraction_plan.
  double spacing_guard = 0.6;
};

/// UPDEC_REFINE_FRACTION (refine_fraction), UPDEC_REFINE_CYCLES (cycles) and
/// UPDEC_REFINE_MAX_NODES (max_nodes) over the defaults above; strict
/// whole-string parses, malformed values keep the defaults.
[[nodiscard]] RefineConfig refine_config_from_env();

/// One planned adapt step against a specific cloud.
struct RefinePlan {
  std::vector<pc::Node> insertions;    ///< new interior nodes
  std::vector<std::size_t> removals;   ///< interior indices of the old cloud
  [[nodiscard]] bool empty() const {
    return insertions.empty() && removals.empty();
  }
};

/// Fixed-fraction selection from a nodal indicator (one value per node of
/// ops.cloud(), boundary entries ignored). Every flagged node sprouts a
/// symmetric CLUSTER of new nodes: the midpoints towards all of its stencil
/// neighbours that clear the spacing guard (on a structured cloud, the
/// surrounding cell centres), validated against the KD-tree so no
/// near-duplicate is ever produced. Removals draw from the lowest-indicator
/// interior nodes, never from the refine set.
[[nodiscard]] RefinePlan fixed_fraction_plan(const rbf::RbffdOperators& ops,
                                             const la::Vector& indicator,
                                             const RefineConfig& config);

/// Execute a plan: removals first, then insertions, canonical order
/// preserved. `old_index` (optional) receives the composite map from new
/// cloud indices to the ORIGINAL cloud's (-1 for inserted nodes) -- exactly
/// what RbffdOperators' incremental rebuild wants.
[[nodiscard]] pc::PointCloud apply_plan(
    const pc::PointCloud& cloud, const RefinePlan& plan,
    std::vector<std::ptrdiff_t>* old_index = nullptr);

}  // namespace updec::refine
