#include "refine/transfer.hpp"

#include <algorithm>
#include <cmath>

#include "la/robust_solve.hpp"
#include "pointcloud/kdtree.hpp"
#include "rbf/operators.hpp"
#include "util/trace.hpp"

namespace updec::refine {

la::Vector transfer_field(const pc::PointCloud& from, const la::Vector& values,
                          const pc::PointCloud& to, const rbf::Kernel& kernel,
                          const rbf::RbffdConfig& config) {
  UPDEC_TRACE_SCOPE("refine/transfer");
  UPDEC_REQUIRE(values.size() == from.size(),
                "one value per source node required");
  UPDEC_REQUIRE(from.size() >= 2, "transfer needs a non-trivial source cloud");
  const std::size_t k = std::min(config.stencil_size, from.size());
  const rbf::MonomialBasis basis(config.poly_degree);
  const std::size_t m = basis.size();
  UPDEC_REQUIRE(k > m, "transfer stencil must exceed the polynomial basis");

  const pc::KdTree tree(from);
  const rbf::LinearOp identity = rbf::LinearOp::identity();
  la::Vector out(to.size(), 0.0);

  for (std::size_t t = 0; t < to.size(); ++t) {
    const pc::Vec2 target = to.node(t).pos;
    const std::vector<std::size_t> stencil = tree.k_nearest(target, k);
    const double nearest = pc::distance(target, from.node(stencil[0]).pos);
    if (nearest < 1e-12) {  // coincident node: copy, bit for bit
      out[t] = values[stencil[0]];
      continue;
    }

    // Scale the local frame by the stencil radius around the TARGET point
    // (the evaluation site), mirroring the conditioning trick of the RBF-FD
    // weight build; the identity operator needs no derivative rescaling.
    double radius = 0.0;
    for (const std::size_t j : stencil)
      radius = std::max(radius, pc::distance(from.node(j).pos, target));
    UPDEC_REQUIRE(radius > 0.0, "degenerate transfer stencil");
    const double inv_h = 1.0 / radius;
    std::vector<pc::Vec2> local(k);
    for (std::size_t a = 0; a < k; ++a) {
      const pc::Vec2 p = from.node(stencil[a]).pos;
      local[a] = {(p.x - target.x) * inv_h, (p.y - target.y) * inv_h};
    }

    la::Matrix system(k + m, k + m, 0.0);
    for (std::size_t a = 0; a < k; ++a) {
      for (std::size_t b = 0; b < k; ++b)
        system(a, b) = kernel.phi(pc::distance(local[a], local[b]));
      for (std::size_t q = 0; q < m; ++q) {
        const double pv = basis.evaluate(q, local[a]);
        system(a, k + q) = pv;
        system(k + q, a) = pv;
      }
    }
    la::Vector rhs(k + m, 0.0);
    const pc::Vec2 origin{0.0, 0.0};
    for (std::size_t b = 0; b < k; ++b)
      rhs[b] = rbf::apply_kernel(kernel, identity, origin, local[b]);
    for (std::size_t q = 0; q < m; ++q)
      rhs[k + q] = basis.apply(q, identity, origin);

    const la::Vector w = la::robust_lu_factor(system).solve(rhs);
    double s = 0.0;
    for (std::size_t a = 0; a < k; ++a) s += w[a] * values[stencil[a]];
    out[t] = s;
  }
  return out;
}

}  // namespace updec::refine
