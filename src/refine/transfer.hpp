#pragma once
/// \file transfer.hpp
/// \brief Moving nodal fields between clouds across an adapt step: exact
///        copy where a target node coincides with a source node, local
///        RBF + polynomial interpolation over the k nearest source nodes
///        elsewhere (same saddle-point fit as the RBF-FD stencils, with the
///        identity operator evaluated at the off-centre target point).

#include "la/dense.hpp"
#include "pointcloud/cloud.hpp"
#include "rbf/rbffd.hpp"

namespace updec::refine {

/// Interpolate `values` (one per node of `from`) onto the nodes of `to`.
/// Exactly reproduces polynomials up to config.poly_degree; coincident
/// nodes (distance < 1e-12) are copied bitwise, which is what makes the
/// AdaptiveLoop's control/state transfer an identity on the protected
/// boundary.
[[nodiscard]] la::Vector transfer_field(const pc::PointCloud& from,
                                        const la::Vector& values,
                                        const pc::PointCloud& to,
                                        const rbf::Kernel& kernel,
                                        const rbf::RbffdConfig& config = {});

}  // namespace updec::refine
