#include "refine/refiner.hpp"

#include <algorithm>
#include <cmath>

#include "pointcloud/generators.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "util/trace.hpp"

namespace updec::refine {

RefineConfig refine_config_from_env() {
  RefineConfig config;
  const double fraction =
      env::get_double("UPDEC_REFINE_FRACTION", config.refine_fraction);
  if (fraction > 0.0 && fraction < 1.0) config.refine_fraction = fraction;
  config.cycles = static_cast<std::size_t>(env::get_u64(
      "UPDEC_REFINE_CYCLES", static_cast<std::uint64_t>(config.cycles)));
  config.max_nodes = static_cast<std::size_t>(env::get_u64(
      "UPDEC_REFINE_MAX_NODES", static_cast<std::uint64_t>(config.max_nodes)));
  return config;
}

RefinePlan fixed_fraction_plan(const rbf::RbffdOperators& ops,
                               const la::Vector& indicator,
                               const RefineConfig& config) {
  UPDEC_TRACE_SCOPE("refine/plan");
  const pc::PointCloud& cloud = ops.cloud();
  const std::size_t n = cloud.size();
  UPDEC_REQUIRE(indicator.size() == n,
                "one indicator value per cloud node required");
  UPDEC_REQUIRE(config.refine_fraction >= 0.0 &&
                    config.refine_fraction < 1.0 &&
                    config.coarsen_fraction >= 0.0 &&
                    config.coarsen_fraction < 1.0,
                "refine/coarsen fractions must lie in [0, 1)");

  // Candidates are interior nodes only; the boundary carries the control
  // DOFs and the periodic pairing, so it is protected on both sides.
  std::vector<std::size_t> interior;
  interior.reserve(cloud.num_internal());
  for (std::size_t i = 0; i < n; ++i)
    if (cloud.node(i).tag == pc::tags::kInterior) interior.push_back(i);

  std::vector<std::size_t> by_eta = interior;
  std::sort(by_eta.begin(), by_eta.end(), [&](std::size_t a, std::size_t b) {
    if (indicator[a] != indicator[b]) return indicator[a] > indicator[b];
    return a < b;  // deterministic ties
  });

  const auto interior_count = static_cast<double>(interior.size());
  const auto n_refine = static_cast<std::size_t>(
      std::floor(config.refine_fraction * interior_count));
  auto n_coarsen = static_cast<std::size_t>(
      std::floor(config.coarsen_fraction * interior_count));

  // Flag the top of the ranking (zero-indicator nodes have nothing to say).
  std::vector<std::size_t> flagged;
  std::vector<std::uint8_t> is_flagged(n, 0);
  for (std::size_t r = 0; r < by_eta.size() && flagged.size() < n_refine; ++r) {
    if (indicator[by_eta[r]] <= 0.0) break;
    flagged.push_back(by_eta[r]);
    is_flagged[by_eta[r]] = 1;
  }

  RefinePlan plan;

  // Coarsen from the bottom of the same ranking -- but only DEEP interior
  // nodes, whose stencil contains no boundary node. Near-boundary interior
  // nodes support the boundary rows (Dirichlet data resolution, the top
  // wall's flux-extraction Dy stencils, the lateral periodic pairing);
  // removing one widens those stencils one-sidedly, and on small clouds
  // that was measured to blow the tracked-cost error up by an order of
  // magnitude. Never a flagged node, and never so deep that the cloud
  // drops below the stencil size.
  const std::size_t k = ops.config().stencil_size;
  if (interior.size() > k)
    n_coarsen = std::min(n_coarsen, interior.size() - k);
  else
    n_coarsen = 0;
  for (std::size_t r = by_eta.size();
       r-- > 0 && plan.removals.size() < n_coarsen;) {
    const std::size_t i = by_eta[r];
    if (is_flagged[i]) continue;
    bool touches_boundary = false;
    for (const std::size_t j : ops.stencil(i))
      if (cloud.node(j).kind != pc::BoundaryKind::kInternal) {
        touches_boundary = true;
        break;
      }
    if (!touches_boundary) plan.removals.push_back(i);
  }
  std::sort(plan.removals.begin(), plan.removals.end());

  // Insertion budget under the node cap (unbounded without one: the
  // fractions themselves bound the growth at ~4 cell centres per flagged
  // node).
  std::size_t budget = n;  // cluster insertion can at most double locally
  if (config.max_nodes > 0) {
    const std::size_t after_coarsen = n - plan.removals.size();
    budget = config.max_nodes > after_coarsen
                 ? config.max_nodes - after_coarsen
                 : 0;
  }

  // Symmetric cluster insertion (highest indicator first): every flagged
  // node proposes the midpoints towards ALL of its stencil neighbours and
  // keeps those clearing the spacing guard. On a structured cloud this
  // accepts exactly the surrounding cell centres (nearest-neighbour
  // midpoints sit at 0.5 h and are rejected by the 0.6 h guard; two-cell
  // midpoints coincide with existing nodes), so a flagged region densifies
  // into an interleaved lattice that stays locally SYMMETRIC. That symmetry
  // is load-bearing: the degree-1 PHS Laplacian stencil is only exact on
  // linears, and its quadratic truncation term cancels by symmetry of the
  // neighbourhood -- lone midpoint insertions break that cancellation and
  // were measured to *degrade* the tracked cost by an order of magnitude.
  for (const std::size_t i : flagged) {
    if (plan.insertions.size() >= budget) break;
    const std::vector<std::size_t>& stencil = ops.stencil(i);
    if (stencil.size() < 2) continue;
    const pc::Vec2 centre = cloud.node(i).pos;
    const double h = pc::distance(centre, cloud.node(stencil[1]).pos);
    const double guard = config.spacing_guard * h;
    if (guard <= 0.0) continue;  // degenerate local spacing
    for (std::size_t a = 1; a < stencil.size(); ++a) {
      if (plan.insertions.size() >= budget) break;
      const pc::Vec2 mid = 0.5 * (centre + cloud.node(stencil[a]).pos);
      if (!ops.tree().radius_search(mid, guard).empty()) continue;
      bool crowded = false;
      for (const pc::Node& accepted : plan.insertions)
        if (pc::distance(accepted.pos, mid) < guard) {
          crowded = true;
          break;
        }
      if (crowded) continue;
      pc::Node node;
      node.pos = mid;
      node.kind = pc::BoundaryKind::kInternal;
      node.tag = pc::tags::kInterior;
      plan.insertions.push_back(node);
    }
  }
  return plan;
}

pc::PointCloud apply_plan(const pc::PointCloud& cloud, const RefinePlan& plan,
                          std::vector<std::ptrdiff_t>* old_index) {
  UPDEC_TRACE_SCOPE("refine/apply_plan");
  for (const std::size_t v : plan.removals)
    UPDEC_REQUIRE(cloud.node(v).kind == pc::BoundaryKind::kInternal,
                  "refinement must never remove boundary nodes");
  for (const pc::Node& node : plan.insertions)
    UPDEC_REQUIRE(node.kind == pc::BoundaryKind::kInternal,
                  "refinement must never insert boundary nodes");

  std::vector<std::ptrdiff_t> map_removed;
  const pc::PointCloud kept = cloud.removed(plan.removals, &map_removed);
  std::vector<std::ptrdiff_t> map_inserted;
  pc::PointCloud out = kept.inserted(plan.insertions, &map_inserted);
  if (old_index) {
    old_index->clear();
    old_index->reserve(out.size());
    for (const std::ptrdiff_t via : map_inserted)
      old_index->push_back(via < 0 ? -1
                                   : map_removed[static_cast<std::size_t>(via)]);
  }
  return out;
}

}  // namespace updec::refine
