#include "refine/adaptive_loop.hpp"

#include <utility>

#include "refine/transfer.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace updec::refine {

namespace {

/// Captures the last (state, adjoint) pair the DAL strategy computed; after
/// control::optimize_from returns, this holds the pair belonging to the
/// final accepted control -- exactly what the DWR indicator wants.
class PairCapture final : public control::AdjointObserver {
 public:
  void on_adjoint_pair(const la::Vector& state,
                       const la::Vector& adjoint) override {
    state_ = state;
    adjoint_ = adjoint;
  }
  [[nodiscard]] bool seen() const { return state_.size() > 0; }
  [[nodiscard]] const la::Vector& state() const { return state_; }
  [[nodiscard]] const la::Vector& adjoint() const { return adjoint_; }

 private:
  la::Vector state_;
  la::Vector adjoint_;
};

}  // namespace

AdaptiveLoop::AdaptiveLoop(std::size_t grid_n, const rbf::Kernel& kernel,
                           AdaptiveOptions options)
    : grid_n_(grid_n), kernel_(&kernel), options_(std::move(options)) {
  UPDEC_REQUIRE(grid_n_ >= 4, "adaptive loop needs a non-trivial base grid");
  UPDEC_REQUIRE(options_.driver.iterations > 0,
                "adaptive loop needs at least one optimize iteration");
}

AdaptiveResult AdaptiveLoop::run() const {
  UPDEC_TRACE_SCOPE("refine/adaptive_loop");
  auto problem = std::make_shared<rom::LaplaceFdControlProblem>(
      grid_n_, *kernel_, options_.stencil, options_.solver);
  la::Vector control = problem->initial_control();

  AdaptiveResult result;
  std::size_t inserted_total = 0;
  std::size_t removed_total = 0;
  // cycles adapt steps separate cycles + 1 optimize rounds; the final round
  // converges the control on the last adapted cloud.
  for (std::size_t cycle = 0; cycle <= options_.refine.cycles; ++cycle) {
    Stopwatch watch;
    CycleReport report;
    report.nodes = problem->solver().cloud().size();

    // Optimize: warm-started from the previous cloud's control (the control
    // DOF layout is invariant because adaptation never touches boundaries).
    const std::unique_ptr<control::GradientStrategy> strategy =
        rom::make_laplace_fd_dal(problem);
    PairCapture capture;
    UPDEC_REQUIRE(strategy->set_adjoint_observer(&capture),
                  "the DAL strategy must support adjoint observation");
    control::DriverOptions driver = options_.driver;
    if (cycle > 0)
      driver.initial_learning_rate *= options_.warm_lr_decay;
    control::DriverResult opt =
        control::optimize_from(std::move(control), *strategy, driver);
    UPDEC_REQUIRE(!opt.aborted, "adaptive cycle diverged beyond recovery");
    UPDEC_REQUIRE(capture.seen(),
                  "optimize must evaluate at least one gradient");
    control = std::move(opt.control);
    report.cost = opt.final_cost;

    // Estimate: adjoint-weighted residual of the converged pair.
    const la::Vector eta = adjoint_weighted_residual(
        problem->solver(), capture.state(), capture.adjoint(),
        options_.indicator);
    for (std::size_t i = 0; i < eta.size(); ++i)
      report.indicator_total += eta[i];

    if (cycle == options_.refine.cycles) {
      report.seconds = watch.seconds();
      result.cycles.push_back(report);
      break;
    }

    // Adapt: fixed-fraction selection, boundary protected by construction.
    const RefinePlan plan = fixed_fraction_plan(problem->solver().operators(),
                                                eta, options_.refine);
    if (plan.empty()) {
      log_info() << "refine: cycle " << cycle
                 << " produced an empty plan, stopping early";
      report.seconds = watch.seconds();
      result.cycles.push_back(report);
      break;
    }
    std::vector<std::ptrdiff_t> old_index;
    pc::PointCloud adapted =
        apply_plan(problem->solver().cloud(), plan, &old_index);
    report.inserted = plan.insertions.size();
    report.removed = plan.removals.size();
    inserted_total += report.inserted;
    removed_total += report.removed;

    // Transfer: rebuild the problem with incremental stencils, then check
    // the carried-over state's tracked cost on the new cloud (diagnostic --
    // the next optimize round re-solves from the transferred control).
    auto next = std::make_shared<rom::LaplaceFdControlProblem>(
        std::move(adapted), *kernel_, options_.stencil, options_.solver,
        &problem->solver().operators(), &old_index);
    UPDEC_REQUIRE(next->control_size() == control.size(),
                  "adaptation must preserve the control layout");
    report.stencil_rows_reused = next->solver().operators().rows_reused();
    report.stencil_rows_recomputed =
        next->solver().operators().rows_recomputed();
    const la::Vector carried =
        transfer_field(problem->solver().cloud(), capture.state(),
                       next->solver().cloud(), *kernel_, options_.stencil);
    report.transferred_cost =
        next->cost_from_flux(next->solver().flux_top(carried));
    report.seconds = watch.seconds();
    result.cycles.push_back(report);
    problem = std::move(next);
  }

  result.problem = std::move(problem);
  result.control = std::move(control);
  result.final_cost = result.cycles.back().cost;
  if (metrics::enabled()) {
    metrics::gauge_set("refine/cycles_run",
                       static_cast<double>(result.cycles.size()));
    metrics::gauge_set("refine/final_nodes",
                       static_cast<double>(
                           result.problem->solver().cloud().size()));
    metrics::gauge_set("refine/inserted_total",
                       static_cast<double>(inserted_total));
    metrics::gauge_set("refine/removed_total",
                       static_cast<double>(removed_total));
    metrics::gauge_set("refine/final_cost", result.final_cost);
  }
  return result;
}

}  // namespace updec::refine
