#pragma once
/// \file sparse.hpp
/// \brief Compressed sparse row (CSR) matrices.
///
/// RBF-FD differentiation operators (Dx, Dy, Laplacian) are sparse with one
/// stencil-sized row per node; they are assembled once per point cloud and
/// applied thousands of times inside the projection iterations and on the
/// DP tape, so SpMV is the hottest kernel in the Navier-Stokes experiments.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "la/dense.hpp"

namespace updec::la {

/// \brief Triplet (COO) accumulator used to build CSR matrices.
class SparseBuilder {
 public:
  SparseBuilder(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols) {}

  /// Accumulate value at (i, j); duplicates are summed on build().
  void add(std::size_t i, std::size_t j, double v);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t nnz_upper_bound() const { return entries_.size(); }

  struct Entry {
    std::size_t row, col;
    double value;
  };
  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::size_t rows_, cols_;
  std::vector<Entry> entries_;
};

/// \brief Immutable CSR sparse matrix.
///
/// Column indices within each row are strictly ascending (established by
/// construction and relied on by the binary searches in at() and the ILU(0)
/// factorisation). The apply kernels are vectorised with `omp simd` +
/// `restrict` (see la/simd.hpp): per-row accumulation order is fixed, so
/// results are bitwise-reproducible across OpenMP team sizes within one
/// binary.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// \brief Build from a COO accumulator; duplicate entries are summed,
  /// explicit zeros are kept (they matter for structural symmetry checks).
  explicit CsrMatrix(const SparseBuilder& builder);

  /// \brief Raw CSR construction (takes ownership of the arrays).
  /// Per-row column indices must already be sorted ascending.
  CsrMatrix(std::size_t rows, std::size_t cols,
            std::vector<std::size_t> row_ptr, std::vector<std::size_t> col_idx,
            std::vector<double> values);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t nnz() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return rows_ == 0; }

  /// \brief y = alpha * A x + beta * y (OpenMP over rows, SIMD per row).
  void spmv(double alpha, const Vector& x, double beta, Vector& y) const;

  /// \brief Allocating convenience: A x.
  [[nodiscard]] Vector apply(const Vector& x) const;

  /// \brief y = alpha * A^T x + beta * y.
  ///
  /// Runs directly off the untransposed storage (scatter over rows, serial
  /// so the accumulation order is deterministic): right for occasional
  /// transpose products. Repeated transpose solves build transposed() once
  /// instead — that is what SparseFirstSolver::solve_transpose does, with
  /// the transposed operator's own equilibration and ILU factors.
  void spmv_t(double alpha, const Vector& x, double beta, Vector& y) const;

  /// \brief Allocating convenience: A^T x.
  [[nodiscard]] Vector apply_transpose(const Vector& x) const;

  /// \brief Y = alpha * A X + beta * Y with dense X, Y (OpenMP over rows,
  /// SIMD across each row of X). The multi-RHS analogue of spmv, used by
  /// the batched sparse-first solves.
  void spmm(double alpha, const Matrix& x, double beta, Matrix& y) const;

  /// \brief Allocating convenience: A X for dense X.
  [[nodiscard]] Matrix apply_many(const Matrix& x) const;

  /// \brief Transposed copy in CSR form.
  [[nodiscard]] CsrMatrix transposed() const;

  /// \brief Extract the main diagonal (missing entries read as 0).
  [[nodiscard]] Vector diagonal() const;

  /// \brief Densify (tests / small systems only).
  [[nodiscard]] Matrix to_dense() const;

  /// \brief Value at (i, j), 0 if not stored (binary search in the row).
  [[nodiscard]] double at(std::size_t i, std::size_t j) const;

  [[nodiscard]] const std::vector<std::size_t>& row_ptr() const {
    return row_ptr_;
  }
  [[nodiscard]] const std::vector<std::size_t>& col_idx() const {
    return col_idx_;
  }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

/// \brief C = A B, sparse-sparse product (Gustavson row merge, serial so the
/// accumulation order -- and therefore the rounding -- is independent of the
/// OpenMP team size). When `row_mask` is non-null, rows of C with
/// (*row_mask)[i] == 0 are left structurally empty: the PDE assemblies use
/// this to form interior-only product operators (e.g. the consistent
/// Laplacian Dx.Dx + Dy.Dy) whose boundary rows are replaced by boundary
/// conditions anyway, without paying for entries that would be discarded.
[[nodiscard]] CsrMatrix multiply(
    const CsrMatrix& a, const CsrMatrix& b,
    const std::vector<std::uint8_t>* row_mask = nullptr);

/// \brief C = alpha A + beta B on the merged pattern (explicit zeros kept).
[[nodiscard]] CsrMatrix add(double alpha, const CsrMatrix& a, double beta,
                            const CsrMatrix& b);

}  // namespace updec::la
