#pragma once
/// \file blas.hpp
/// \brief BLAS-like dense kernels. Level-1/2/3 operations used by the direct and
/// iterative solvers and by the autodiff vector layer. Level-2/3 kernels are
/// OpenMP-parallel when built with UPDEC_HAVE_OPENMP.

#include "la/dense.hpp"

namespace updec::la {

// ---- Level 1 ----

/// y += alpha * x
void axpy(double alpha, const Vector& x, Vector& y);

/// x *= alpha
void scal(double alpha, Vector& x);

/// <x, y>
[[nodiscard]] double dot(const Vector& x, const Vector& y);

/// Euclidean norm ||x||_2.
[[nodiscard]] double nrm2(const Vector& x);

/// Max-norm ||x||_inf.
[[nodiscard]] double nrm_inf(const Vector& x);

/// 1-norm ||x||_1.
[[nodiscard]] double nrm1(const Vector& x);

// ---- Level 2 ----

/// y = alpha * A x + beta * y
void gemv(double alpha, const Matrix& A, const Vector& x, double beta,
          Vector& y);

/// y = alpha * A^T x + beta * y
void gemv_t(double alpha, const Matrix& A, const Vector& x, double beta,
            Vector& y);

/// Allocating convenience: A x.
[[nodiscard]] Vector matvec(const Matrix& A, const Vector& x);

/// Allocating convenience: A^T x.
[[nodiscard]] Vector matvec_t(const Matrix& A, const Vector& x);

/// Rank-1 update A += alpha * x y^T.
void ger(double alpha, const Vector& x, const Vector& y, Matrix& A);

// ---- Level 3 ----

/// C = alpha * A B + beta * C (row-major, ikj loop order, OpenMP over rows).
void gemm(double alpha, const Matrix& A, const Matrix& B, double beta,
          Matrix& C);

/// Allocating convenience: A B.
[[nodiscard]] Matrix matmul(const Matrix& A, const Matrix& B);

// ---- Norms of matrices / residuals ----

/// Frobenius norm of A.
[[nodiscard]] double nrm_fro(const Matrix& A);

/// ||A x - b||_2, a common convergence check.
[[nodiscard]] double residual_norm(const Matrix& A, const Vector& x,
                                   const Vector& b);

}  // namespace updec::la
