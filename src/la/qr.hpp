#pragma once
/// \file qr.hpp
/// \brief Householder QR factorisation and least-squares solves. Used for
/// overdetermined RBF-FD stencil weight systems and as a robust fallback
/// when collocation matrices are ill-conditioned (flat-kernel regimes).

#include "la/dense.hpp"

namespace updec::la {

/// A = QR with Householder reflectors, m >= n.
class QrFactorization {
 public:
  QrFactorization() = default;

  /// Factor an m-by-n matrix with m >= n.
  explicit QrFactorization(Matrix a);

  /// Minimise ||A x - b||_2; returns x of length cols().
  [[nodiscard]] Vector solve_least_squares(const Vector& b) const;

  /// Apply Q^T to a vector of length rows().
  [[nodiscard]] Vector apply_qt(const Vector& b) const;

  /// Rank-revealing diagnostic: |R_nn| / |R_11|, small => near rank-deficient.
  [[nodiscard]] double diagonal_ratio() const;

  [[nodiscard]] std::size_t rows() const { return qr_.rows(); }
  [[nodiscard]] std::size_t cols() const { return qr_.cols(); }
  [[nodiscard]] bool valid() const { return !qr_.empty(); }

 private:
  Matrix qr_;           // R in the upper triangle, reflectors below
  Vector tau_;          // reflector scalars
};

}  // namespace updec::la
