#include "la/qr.hpp"

#include <cmath>

namespace updec::la {

QrFactorization::QrFactorization(Matrix a) {
  UPDEC_REQUIRE(a.rows() >= a.cols(), "QR requires rows >= cols");
  const std::size_t m = a.rows(), n = a.cols();
  tau_.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    // Build Householder vector for column k.
    double norm = 0.0;
    for (std::size_t i = k; i < m; ++i) norm += a(i, k) * a(i, k);
    norm = std::sqrt(norm);
    if (norm == 0.0) {
      tau_[k] = 0.0;
      continue;
    }
    const double alpha = (a(k, k) >= 0.0) ? -norm : norm;
    const double v0 = a(k, k) - alpha;
    // v = (v0, a(k+1..m-1, k)); normalise so v[0] = 1.
    for (std::size_t i = k + 1; i < m; ++i) a(i, k) /= v0;
    tau_[k] = -v0 / alpha;  // beta = 2 / (v^T v) expressed via v0, alpha
    a(k, k) = alpha;
    // Apply reflector to remaining columns: A := (I - tau v v^T) A.
    for (std::size_t j = k + 1; j < n; ++j) {
      double s = a(k, j);
      for (std::size_t i = k + 1; i < m; ++i) s += a(i, k) * a(i, j);
      s *= tau_[k];
      a(k, j) -= s;
      for (std::size_t i = k + 1; i < m; ++i) a(i, j) -= s * a(i, k);
    }
  }
  qr_ = std::move(a);
}

Vector QrFactorization::apply_qt(const Vector& b) const {
  UPDEC_REQUIRE(b.size() == rows(), "apply_qt dimension mismatch");
  const std::size_t m = rows(), n = cols();
  Vector y = b;
  for (std::size_t k = 0; k < n; ++k) {
    if (tau_[k] == 0.0) continue;
    double s = y[k];
    for (std::size_t i = k + 1; i < m; ++i) s += qr_(i, k) * y[i];
    s *= tau_[k];
    y[k] -= s;
    for (std::size_t i = k + 1; i < m; ++i) y[i] -= s * qr_(i, k);
  }
  return y;
}

Vector QrFactorization::solve_least_squares(const Vector& b) const {
  UPDEC_REQUIRE(valid(), "solve on empty factorisation");
  const std::size_t n = cols();
  Vector y = apply_qt(b);
  // Back-substitute R x = y[0..n).
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= qr_(ii, j) * x[j];
    UPDEC_REQUIRE(qr_(ii, ii) != 0.0, "rank-deficient least-squares system");
    x[ii] = s / qr_(ii, ii);
  }
  return x;
}

double QrFactorization::diagonal_ratio() const {
  UPDEC_REQUIRE(valid(), "diagonal_ratio on empty factorisation");
  const std::size_t n = cols();
  double dmax = 0.0, dmin = std::abs(qr_(0, 0));
  for (std::size_t i = 0; i < n; ++i) {
    const double d = std::abs(qr_(i, i));
    dmax = std::max(dmax, d);
    dmin = std::min(dmin, d);
  }
  return dmax == 0.0 ? 0.0 : dmin / dmax;
}

}  // namespace updec::la
