#pragma once
/// \file iterative.hpp
/// \brief Krylov iterative solvers for sparse systems: CG (SPD), BiCGSTAB and
/// restarted GMRES(m) for nonsymmetric RBF-FD operators, with Jacobi and
/// ILU(0) preconditioners. Used by the pressure-Poisson and implicit
/// momentum solves when dense factorisation is too expensive.

#include <functional>
#include <memory>
#include <optional>

#include "la/sparse.hpp"

namespace updec::la {

/// Outcome of an iterative solve. Marked nodiscard: silently using `x`
/// from a non-converged solve is the dominant failure mode of the long
/// optimisation loops, so callers must at least see the report.
struct [[nodiscard]] IterativeResult {
  Vector x;
  std::size_t iterations = 0;
  double residual_norm = 0.0;
  bool converged = false;
  bool breakdown = false;  ///< the Krylov recurrence broke down (a scalar in
                           ///< the update hit exactly zero) before reaching
                           ///< either convergence or the iteration budget;
                           ///< `iterations` counts the steps actually taken

  /// Throw updec::Error naming `context` unless the solve converged.
  /// Returns *this so call sites can chain: cg(...).require_converged("x").x
  const IterativeResult& require_converged(const char* context) const;
};

/// Solver tolerances and limits.
struct IterativeOptions {
  double rel_tol = 1e-10;
  double abs_tol = 1e-14;
  std::size_t max_iterations = 1000;
  std::size_t gmres_restart = 50;
};

/// Left preconditioner interface: z = M^{-1} r.
using Preconditioner = std::function<void(const Vector& r, Vector& z)>;

/// Identity preconditioner.
Preconditioner identity_preconditioner();

/// Jacobi (diagonal) preconditioner built from A; zero diagonals map to 1
/// (each substitution is reported once at warn level with its row index).
Preconditioner jacobi_preconditioner(const CsrMatrix& a);

/// ILU(0) incomplete factorisation preconditioner (no fill-in). Pivots
/// smaller than kSmallPivotRelThreshold times the largest diagonal
/// magnitude are clamped (and reported at warn level with the row index)
/// so near-singular rows degrade the preconditioner instead of poisoning
/// it with non-finite entries.
class Ilu0 {
 public:
  static constexpr double kSmallPivotRelThreshold = 1e-13;

  explicit Ilu0(const CsrMatrix& a);
  void apply(const Vector& r, Vector& z) const;

  /// Closure form of apply(). The closure holds a shared_ptr to the
  /// factorisation, so taking a preconditioner (and copying Ilu0 itself) is
  /// O(1) -- repeated solves on the serve hot path never re-copy the CSR
  /// factors -- and the closure stays valid after this Ilu0 is destroyed.
  [[nodiscard]] Preconditioner as_preconditioner() const;

  /// Merged L (unit diagonal) / U factors in A's pattern. Shared, not copied,
  /// across Ilu0 copies and as_preconditioner() closures.
  [[nodiscard]] const CsrMatrix& factors() const { return data_->lu; }

  /// Rebuild from previously computed factors() without re-running the
  /// incomplete elimination (serve-layer disk cache). The diagonal index is
  /// reconstructed from the pattern; throws updec::Error if a diagonal
  /// entry is structurally missing.
  [[nodiscard]] static Ilu0 from_factors(CsrMatrix lu);

 private:
  Ilu0() = default;

  struct Data {
    CsrMatrix lu;                    // merged L (unit diag) and U in A's pattern
    std::vector<std::size_t> diag;   // index of diagonal entry per row
  };
  static void apply_impl(const Data& data, const Vector& r, Vector& z);

  std::shared_ptr<const Data> data_;
};

/// Conjugate gradients (requires SPD A).
IterativeResult cg(const CsrMatrix& a, const Vector& b,
                   const IterativeOptions& opts = {},
                   const Preconditioner& precond = identity_preconditioner(),
                   std::optional<Vector> x0 = std::nullopt);

/// BiCGSTAB for general square A.
IterativeResult bicgstab(const CsrMatrix& a, const Vector& b,
                         const IterativeOptions& opts = {},
                         const Preconditioner& precond =
                             identity_preconditioner(),
                         std::optional<Vector> x0 = std::nullopt);

/// Restarted GMRES(m) for general square A.
IterativeResult gmres(const CsrMatrix& a, const Vector& b,
                      const IterativeOptions& opts = {},
                      const Preconditioner& precond =
                          identity_preconditioner(),
                      std::optional<Vector> x0 = std::nullopt);

// ---- batched multi-RHS wrappers ------------------------------------------
// One Krylov run per column of B against the same operator, sharing the
// (expensive to build) preconditioner across the whole batch. API parity
// with LuFactorization::solve_many for call sites -- the serve-layer cache
// solve path -- that switch between direct and iterative backends.

/// Aggregate outcome of a multi-RHS iterative solve.
struct [[nodiscard]] BatchedIterativeResult {
  Matrix x;  ///< column j solves A x_j = b_j
  std::size_t converged_columns = 0;
  std::size_t total_iterations = 0;   ///< summed across columns
  double max_residual_norm = 0.0;     ///< worst column
  std::size_t columns = 0;

  [[nodiscard]] bool all_converged() const {
    return converged_columns == columns;
  }
  /// Throw updec::Error naming `context` unless every column converged.
  const BatchedIterativeResult& require_converged(const char* context) const;
};

BatchedIterativeResult cg_many(const CsrMatrix& a, const Matrix& b,
                               const IterativeOptions& opts = {},
                               const Preconditioner& precond =
                                   identity_preconditioner());
BatchedIterativeResult bicgstab_many(const CsrMatrix& a, const Matrix& b,
                                     const IterativeOptions& opts = {},
                                     const Preconditioner& precond =
                                         identity_preconditioner());
BatchedIterativeResult gmres_many(const CsrMatrix& a, const Matrix& b,
                                  const IterativeOptions& opts = {},
                                  const Preconditioner& precond =
                                      identity_preconditioner());

}  // namespace updec::la
