#pragma once
/// \file iterative.hpp
/// \brief Krylov iterative solvers for sparse systems: CG (SPD), BiCGSTAB and
/// restarted GMRES(m) for nonsymmetric RBF-FD operators, with Jacobi and
/// ILU(0) preconditioners. Used by the pressure-Poisson and implicit
/// momentum solves when dense factorisation is too expensive.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "la/sparse.hpp"

namespace updec::la {

/// \brief Outcome of an iterative solve. Marked nodiscard: silently using
/// `x` from a non-converged solve is the dominant failure mode of the long
/// optimisation loops, so callers must at least see the report.
struct [[nodiscard]] IterativeResult {
  Vector x;
  std::size_t iterations = 0;
  double residual_norm = 0.0;
  bool converged = false;
  bool breakdown = false;  ///< the Krylov recurrence broke down (a scalar in
                           ///< the update hit exactly zero) before reaching
                           ///< either convergence or the iteration budget;
                           ///< `iterations` counts the steps actually taken

  /// Throw updec::Error naming `context` unless the solve converged.
  /// Returns *this so call sites can chain: cg(...).require_converged("x").x
  const IterativeResult& require_converged(const char* context) const;
};

/// \brief Solver tolerances and limits.
struct IterativeOptions {
  double rel_tol = 1e-10;
  double abs_tol = 1e-14;
  std::size_t max_iterations = 1000;
  std::size_t gmres_restart = 50;
};

/// \brief Left preconditioner interface: z = M^{-1} r.
using Preconditioner = std::function<void(const Vector& r, Vector& z)>;

/// \brief Identity preconditioner (z = r).
Preconditioner identity_preconditioner();

/// \brief Jacobi (diagonal) preconditioner built from A; zero diagonals map
/// to 1 (each substitution is reported once at warn level with its row index).
Preconditioner jacobi_preconditioner(const CsrMatrix& a);

/// \brief `UPDEC_ILU_LEVELS` (default on): build a level schedule for the
/// ILU(0) triangular sweeps so independent rows run in parallel.
[[nodiscard]] bool ilu_level_schedule_from_env();

/// \brief `UPDEC_ILU_LEVEL_MIN_ROWS` (default 64): minimum rows in a level
/// before its sweep is parallelised; smaller levels run serially to avoid
/// paying an OpenMP fork for a handful of rows.
[[nodiscard]] std::size_t ilu_level_min_rows_from_env();

/// \brief Configuration for the Ilu0 triangular-sweep schedule. Defaults
/// come from the environment knobs above, so production call sites can stay
/// knob-free while benches and tests pin explicit values.
struct Ilu0Options {
  bool level_schedule = ilu_level_schedule_from_env();
  std::size_t level_min_rows = ilu_level_min_rows_from_env();
};

/// \brief ILU(0) incomplete factorisation preconditioner (no fill-in).
///
/// Pivots smaller than kSmallPivotRelThreshold times the largest diagonal
/// magnitude are clamped (and reported at warn level with the row index)
/// so near-singular rows degrade the preconditioner instead of poisoning
/// it with non-finite entries.
///
/// The triangular sweeps are level-scheduled: at factor time the rows are
/// grouped by dependency depth (level k rows depend only on levels < k), and
/// each level is swept under OpenMP when it holds at least
/// Ilu0Options::level_min_rows rows. Per-row arithmetic is identical to the
/// serial sweep -- each row accumulates its own CSR entries in storage
/// order -- so level-scheduled and serial applications are bitwise equal.
///
/// A single-precision copy of the factors is kept alongside the fp64 values;
/// apply_f32() runs the sweeps entirely in fp32 (half the memory traffic on
/// the bandwidth-bound hot path) and widens the result. This is safe as a
/// *preconditioner*: inexactness only changes the Krylov iteration count,
/// never the converged answer, because the solvers test true fp64 residuals.
class Ilu0 {
 public:
  static constexpr double kSmallPivotRelThreshold = 1e-13;

  explicit Ilu0(const CsrMatrix& a, const Ilu0Options& options = {});

  /// \brief z = (LU)^{-1} r via fp64 forward/backward sweeps.
  void apply(const Vector& r, Vector& z) const;

  /// \brief z = (LU)^{-1} r with the sweeps computed in fp32 (fp32 factor
  /// values and fp32 workspace), widened to fp64 on output. Same level
  /// schedule and row order as apply(); only the arithmetic precision
  /// differs.
  void apply_f32(const Vector& r, Vector& z) const;

  /// \brief Closure form of apply() / apply_f32(). The closure holds a
  /// shared_ptr to the factorisation, so taking a preconditioner (and
  /// copying Ilu0 itself) is O(1) -- repeated solves on the serve hot path
  /// never re-copy the CSR factors -- and the closure stays valid after
  /// this Ilu0 is destroyed.
  [[nodiscard]] Preconditioner as_preconditioner(bool use_f32 = false) const;

  /// \brief Merged L (unit diagonal) / U factors in A's pattern. Shared, not
  /// copied, across Ilu0 copies and as_preconditioner() closures.
  [[nodiscard]] const CsrMatrix& factors() const { return data_->lu; }

  /// \brief fp32 copy of factors().values(), cast element-wise (exact float
  /// narrowing of each stored double). Same ordering as the CSR values
  /// array; used by apply_f32() and the serve-layer fp32 codec.
  [[nodiscard]] const std::vector<float>& factors_f32() const {
    return data_->values_f32;
  }

  /// \brief Number of levels in the forward (L) sweep schedule; 0 when level
  /// scheduling was disabled at factor time.
  [[nodiscard]] std::size_t levels() const;

  /// \brief Rebuild from previously computed factors() without re-running
  /// the incomplete elimination (serve-layer disk cache). The diagonal
  /// index, fp32 values and level schedule are reconstructed from the
  /// pattern; throws updec::Error if a diagonal entry is structurally
  /// missing.
  [[nodiscard]] static Ilu0 from_factors(CsrMatrix lu,
                                         const Ilu0Options& options = {});

 private:
  Ilu0() = default;

  struct Data {
    CsrMatrix lu;                   // merged L (unit diag) and U in A's pattern
    std::vector<std::size_t> diag;  // index of diagonal entry per row
    std::vector<float> values_f32;  // lu.values() cast to fp32, same order
    // Compact apply-side mirrors of the factor structure: 32-bit column
    // indices (half the gather-index traffic of the size_t CSR indices on
    // this bandwidth-bound path) and precomputed diagonal reciprocals so the
    // backward sweep multiplies instead of dividing per row.
    std::vector<std::uint32_t> col32;   // lu.col_idx() narrowed, same order
    std::vector<double> inv_diag;       // 1.0 / lu.values()[diag[i]]
    std::vector<float> inv_diag_f32;    // 1.0f / values_f32[diag[i]]
    // Level schedule (empty when level_schedule is off). Rows of level l of
    // the forward sweep are flevel_rows[flevel_ptr[l] .. flevel_ptr[l+1]),
    // in ascending row order; likewise blevel_* for the backward sweep.
    std::vector<std::size_t> flevel_ptr, flevel_rows;
    std::vector<std::size_t> blevel_ptr, blevel_rows;
    std::size_t level_min_rows = 0;
  };
  /// Populate diag/values_f32/levels on a Data holding only `lu`.
  static void finalize(Data& data, const Ilu0Options& options,
                       const char* context);
  static void apply_impl(const Data& data, const Vector& r, Vector& z);
  static void apply_impl_f32(const Data& data, const Vector& r, Vector& z);

  std::shared_ptr<const Data> data_;
};

/// \brief Conjugate gradients (requires SPD A).
IterativeResult cg(const CsrMatrix& a, const Vector& b,
                   const IterativeOptions& opts = {},
                   const Preconditioner& precond = identity_preconditioner(),
                   std::optional<Vector> x0 = std::nullopt);

/// \brief BiCGSTAB for general square A.
IterativeResult bicgstab(const CsrMatrix& a, const Vector& b,
                         const IterativeOptions& opts = {},
                         const Preconditioner& precond =
                             identity_preconditioner(),
                         std::optional<Vector> x0 = std::nullopt);

/// \brief Restarted GMRES(m) with left preconditioning for general square A.
/// Note the left-preconditioned subtlety: the inner Arnoldi residual
/// estimate lives in the *preconditioned* norm; the stagnation guard and
/// final convergence test use true fp64 residuals.
IterativeResult gmres(const CsrMatrix& a, const Vector& b,
                      const IterativeOptions& opts = {},
                      const Preconditioner& precond =
                          identity_preconditioner(),
                      std::optional<Vector> x0 = std::nullopt);

// ---- batched multi-RHS wrappers ------------------------------------------
// One Krylov run per column of B against the same operator, sharing the
// (expensive to build) preconditioner across the whole batch. API parity
// with LuFactorization::solve_many for call sites -- the serve-layer cache
// solve path -- that switch between direct and iterative backends.

/// \brief Aggregate outcome of a multi-RHS iterative solve.
struct [[nodiscard]] BatchedIterativeResult {
  Matrix x;  ///< column j solves A x_j = b_j
  std::size_t converged_columns = 0;
  std::size_t total_iterations = 0;   ///< summed across columns
  double max_residual_norm = 0.0;     ///< worst column
  std::size_t columns = 0;

  [[nodiscard]] bool all_converged() const {
    return converged_columns == columns;
  }
  /// Throw updec::Error naming `context` unless every column converged.
  const BatchedIterativeResult& require_converged(const char* context) const;
};

BatchedIterativeResult cg_many(const CsrMatrix& a, const Matrix& b,
                               const IterativeOptions& opts = {},
                               const Preconditioner& precond =
                                   identity_preconditioner());
BatchedIterativeResult bicgstab_many(const CsrMatrix& a, const Matrix& b,
                                     const IterativeOptions& opts = {},
                                     const Preconditioner& precond =
                                         identity_preconditioner());
BatchedIterativeResult gmres_many(const CsrMatrix& a, const Matrix& b,
                                  const IterativeOptions& opts = {},
                                  const Preconditioner& precond =
                                      identity_preconditioner());

}  // namespace updec::la
