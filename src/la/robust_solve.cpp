#include "la/robust_solve.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <mutex>
#include <sstream>

#include "la/blas.hpp"
#include "util/env.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace updec::la {

namespace {

/// 1-norm (max column absolute sum) of a CSR matrix; scale for shifts.
double csr_norm1(const CsrMatrix& a) {
  Vector col_sums(a.cols(), 0.0);
  const auto& values = a.values();
  const auto& col_idx = a.col_idx();
  for (std::size_t k = 0; k < values.size(); ++k)
    col_sums[col_idx[k]] += std::abs(values[k]);
  double best = 0.0;
  for (const double s : col_sums) best = std::max(best, s);
  return best;
}

double dense_norm1(const Matrix& a) {
  double best = 0.0;
  for (std::size_t j = 0; j < a.cols(); ++j) {
    double s = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) s += std::abs(a(i, j));
    best = std::max(best, s);
  }
  return best;
}

/// ||b - A x||_2 (or ||b - A^T x||_2), +inf when x has non-finite entries.
double true_residual(const CsrMatrix& a, const Vector& b, const Vector& x,
                     bool transpose = false) {
  if (!all_finite(x)) return std::numeric_limits<double>::infinity();
  Vector r = b;
  if (transpose)
    a.spmv_t(-1.0, x, 1.0, r);
  else
    a.spmv(-1.0, x, 1.0, r);
  return nrm2(r);
}

/// Stages 4+ of the escalation chain, shared by RobustSolver and
/// SparseFirstSolver: starting from report.shift, grow the Tikhonov lambda
/// while each refactorisation still reduces the true residual; stop as soon
/// as a larger shift moves away from the true solution (or fails to factor).
/// x / report are updated in place with the best solution seen.
void escalate_shifted_retries(const CsrMatrix& a, const Vector& b,
                              bool transpose, double accept,
                              const RobustSolveOptions& options, Vector& x,
                              SolveReport& report) {
  double shift = report.shift;
  for (std::size_t extra = 0;
       !report.converged && extra < options.max_shift_attempts; ++extra) {
    shift *= options.shift_growth;
    Matrix shifted = a.to_dense();
    for (std::size_t i = 0; i < shifted.rows(); ++i) shifted(i, i) += shift;
    ++report.attempts;
    try {
      const LuFactorization retry(std::move(shifted));
      // (A + sI)^T = A^T + sI, so the transpose path reuses the same factor.
      Vector x_retry = transpose ? retry.solve_transpose(b) : retry.solve(b);
      const double res = true_residual(a, b, x_retry, transpose);
      if (res < report.residual_norm || !std::isfinite(report.residual_norm)) {
        x = std::move(x_retry);
        report.residual_norm = res;
        report.shift = shift;
        report.converged = std::isfinite(res) && res <= accept;
      } else {
        break;  // larger shifts only move further from the true solution
      }
    } catch (const Error&) {
      break;
    }
  }
}

/// diag(scale) * a with scale_i = 1 / max_j |a_ij| (1 for empty rows).
/// Row equilibration leaves the solution of A x = b unchanged (solve
/// diag(s) A x = diag(s) b instead) but repairs the ILU(0) quality on
/// RBF-FD assemblies whose interior rows are O(1/h^2) against O(1)
/// boundary-condition rows.
CsrMatrix row_equilibrated(const CsrMatrix& a, Vector& scale) {
  scale = Vector(a.rows(), 1.0);
  const auto& row_ptr = a.row_ptr();
  std::vector<double> values = a.values();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double row_max = 0.0;
    for (std::size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k)
      row_max = std::max(row_max, std::abs(values[k]));
    if (row_max > 0.0 && std::isfinite(row_max)) scale[i] = 1.0 / row_max;
    for (std::size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k)
      values[k] *= scale[i];
  }
  return {a.rows(), a.cols(), a.row_ptr(), a.col_idx(), std::move(values)};
}

}  // namespace

std::size_t sparse_min_n_from_env() {
  constexpr std::size_t kDefault = 512;
  const char* raw = std::getenv("UPDEC_SPARSE_MIN_N");
  if (raw == nullptr || *raw == '\0') return kDefault;
  std::size_t value = 0;
  const char* end = raw + std::strlen(raw);
  const auto [ptr, ec] = std::from_chars(raw, end, value);
  if (ec != std::errc{} || ptr != end) {
    log_warn() << "UPDEC_SPARSE_MIN_N: ignoring malformed value '" << raw
               << "'; using default " << kDefault;
    return kDefault;
  }
  return value;
}

bool mixed_precision_from_env() {
  return env::get_bool("UPDEC_MIXED_PRECISION", false);
}

const char* to_string(SolveMethod method) {
  switch (method) {
    case SolveMethod::kIterative: return "iterative";
    case SolveMethod::kDenseLu: return "dense-lu";
    case SolveMethod::kShiftedLu: return "shifted-lu";
  }
  return "?";
}

const SolveReport& SolveReport::require_converged(const char* context) const {
  if (!converged) {
    std::ostringstream os;
    os << context << ": robust solve did not converge (method "
       << to_string(method) << ", " << attempts << " stage(s), residual "
       << residual_norm << ", shift " << shift << ")";
    throw Error(os.str());
  }
  return *this;
}

LuFactorization shifted_lu_factor(const Matrix& a, double relative_shift) {
  const double shift = relative_shift * std::max(dense_norm1(a), 1.0);
  Matrix shifted = a;
  for (std::size_t i = 0; i < shifted.rows(); ++i) shifted(i, i) += shift;
  return LuFactorization(std::move(shifted));
}

bool all_finite(const Vector& v) {
  for (const double x : v)
    if (!std::isfinite(x)) return false;
  return true;
}

Vector checked_solve(const LuFactorization& lu, const Vector& b,
                     const char* context) {
  Vector x = lu.solve(b);
  if (!all_finite(x)) {
    std::ostringstream os;
    os << context << ": linear solve produced non-finite entries";
    throw Error(os.str());
  }
  return x;
}

RobustSolver::RobustSolver(CsrMatrix a, RobustSolveOptions options)
    : a_(std::move(a)), options_(options) {
  UPDEC_REQUIRE(a_.rows() == a_.cols(), "RobustSolver needs a square matrix");
  try {
    precond_ = Ilu0(a_).as_preconditioner();
  } catch (const Error& e) {
    log_warn() << "RobustSolver: ILU(0) preconditioner failed ("
               << e.what() << "); falling back to Jacobi";
    precond_ = jacobi_preconditioner(a_);
  }
}

SolveReport RobustSolver::solve(const Vector& b, Vector& x) const {
  UPDEC_TRACE_SCOPE("la/robust_solve");
  SolveReport report = solve_impl(b, x);
  if (metrics::enabled()) {
    metrics::counter_add("la/robust_solve.calls");
    metrics::counter_add("la/robust_solve.iterations", report.iterations);
    // Escalations = stages beyond the first that had to be tried.
    if (report.attempts > 1)
      metrics::counter_add("la/robust_solve.escalations", report.attempts - 1);
    switch (report.method) {
      case SolveMethod::kIterative:
        metrics::counter_add("la/robust_solve.method.iterative");
        break;
      case SolveMethod::kDenseLu:
        metrics::counter_add("la/robust_solve.method.dense_lu");
        break;
      case SolveMethod::kShiftedLu:
        metrics::counter_add("la/robust_solve.method.shifted_lu");
        break;
    }
    if (!report.converged) metrics::counter_add("la/robust_solve.failures");
    metrics::observe("la/robust_solve.residual", report.residual_norm);
  }
  return report;
}

SolveReport RobustSolver::solve_impl(const Vector& b, Vector& x) const {
  UPDEC_REQUIRE(b.size() == a_.rows(), "RobustSolver rhs size mismatch");
  const Stopwatch watch;
  SolveReport report;
  const double b_norm = nrm2(b);
  const double accept = std::max(options_.iterative.abs_tol,
                                 options_.accept_rel_residual * b_norm);

  // Stage 1: preconditioned GMRES.
  if (options_.use_gmres) {
    ++report.attempts;
    IterativeResult res = gmres(a_, b, options_.iterative, precond_);
    const double true_res = true_residual(a_, b, res.x);
    if (res.converged && std::isfinite(true_res)) {
      x = std::move(res.x);
      report.method = SolveMethod::kIterative;
      report.iterations = res.iterations;
      report.residual_norm = true_res;
      report.converged = true;
      report.seconds = watch.seconds();
      return report;
    }
    log_warn() << "RobustSolver: GMRES failed to converge (residual "
               << res.residual_norm << " after " << res.iterations
               << " iterations); escalating to BiCGSTAB";
  }

  // Stage 2: BiCGSTAB.
  if (options_.use_bicgstab) {
    ++report.attempts;
    IterativeResult res = bicgstab(a_, b, options_.iterative, precond_);
    const double true_res = true_residual(a_, b, res.x);
    if (res.converged && std::isfinite(true_res)) {
      x = std::move(res.x);
      report.method = SolveMethod::kIterative;
      report.iterations = res.iterations;
      report.residual_norm = true_res;
      report.converged = true;
      report.seconds = watch.seconds();
      return report;
    }
    log_warn() << "RobustSolver: BiCGSTAB failed to converge (residual "
               << res.residual_norm << " after " << res.iterations
               << " iterations); escalating to dense LU";
  }

  // Stages 3-4: densify; plain LU first, then growing Tikhonov shifts.
  UPDEC_REQUIRE(options_.use_dense_fallback,
                "robust solve exhausted its iterative stages and the dense "
                "fallback is disabled");
  ++report.attempts;
  FactorReport factor;
  const LuFactorization lu =
      robust_lu_factor(a_.to_dense(), &factor, options_);
  report.attempts += factor.attempts - 1;  // count the shifted retries
  report.shift = factor.shift;
  x = lu.solve(b);
  report.residual_norm = true_residual(a_, b, x);
  report.method =
      factor.shifted ? SolveMethod::kShiftedLu : SolveMethod::kDenseLu;
  report.converged =
      std::isfinite(report.residual_norm) && report.residual_norm <= accept;

  // A shifted factorisation regularises the system; if its residual misses
  // the acceptance threshold, keep escalating the shift while it helps.
  if (factor.shifted)
    escalate_shifted_retries(a_, b, /*transpose=*/false, accept, options_, x,
                             report);

  if (!report.converged)
    log_warn() << "RobustSolver: escalation chain exhausted; returning "
               << "best-effort solution (method " << to_string(report.method)
               << ", residual " << report.residual_norm << ", shift "
               << report.shift << ")";
  report.seconds = watch.seconds();
  return report;
}

// ---- SparseFirstSolver ----------------------------------------------------

struct SparseFirstSolver::State {
  mutable std::mutex mutex;
  // Dense LU: eager in dense mode, lazily built fallback in sparse mode.
  std::shared_ptr<const LuFactorization> lu;
  FactorReport factor;
  // Lazily built transpose operator (row-equilibrated) + its scales and
  // preconditioner (sparse mode only). The Ilu0 itself is retained (not
  // just its closure) so the mixed-precision path can fetch the fp64
  // refinement preconditioner from the same factorisation.
  std::shared_ptr<const CsrMatrix> at;
  Vector at_scale;
  std::shared_ptr<const Ilu0> at_ilu;
  Preconditioner at_precond;
};

SparseFirstSolver::SparseFirstSolver(CsrMatrix a, RobustSolveOptions options)
    : a_(std::move(a)),
      options_(options),
      state_(std::make_shared<State>()) {
  UPDEC_REQUIRE(a_.rows() == a_.cols(),
                "SparseFirstSolver needs a square matrix");
  sparse_ = a_.rows() >= options_.sparse_min_n;
  if (sparse_) {
    UPDEC_TRACE_SCOPE("la/sparse_first_setup");
    if (options_.auto_restart)
      options_.iterative.gmres_restart =
          std::max(options_.iterative.gmres_restart,
                   std::min<std::size_t>(a_.rows() / 64, 150));
    scaled_ = row_equilibrated(a_, row_scale_);
    try {
      ilu_ = std::make_shared<const Ilu0>(scaled_);
      precond_ = ilu_->as_preconditioner(options_.mixed_precision);
    } catch (const Error& e) {
      log_warn() << "SparseFirstSolver: ILU(0) preconditioner failed ("
                 << e.what() << "); falling back to Jacobi";
      precond_ = jacobi_preconditioner(scaled_);
    }
    UPDEC_METRIC_ADD("la/sparse_first.sparse_instances", 1);
  } else {
    state_->lu = std::make_shared<const LuFactorization>(
        robust_lu_factor(a_.to_dense(), &state_->factor, options_));
    UPDEC_METRIC_ADD("la/sparse_first.dense_instances", 1);
  }
}

FactorReport SparseFirstSolver::factor_report() const {
  if (state_ == nullptr) return {};
  const std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->factor;
}

std::shared_ptr<const LuFactorization> SparseFirstSolver::dense_lu() const {
  const std::lock_guard<std::mutex> lock(state_->mutex);
  if (state_->lu == nullptr) {
    UPDEC_TRACE_SCOPE("la/sparse_first_fallback_factor");
    state_->lu = std::make_shared<const LuFactorization>(
        robust_lu_factor(a_.to_dense(), &state_->factor, options_));
    UPDEC_METRIC_ADD("la/sparse_first.fallback_factorizations", 1);
  }
  return state_->lu;
}

void SparseFirstSolver::install_preconditioner(
    std::shared_ptr<const Ilu0> ilu) {
  if (!sparse_ || ilu == nullptr) return;
  UPDEC_REQUIRE(ilu->factors().rows() == a_.rows(),
                "installed ILU(0) size does not match the operator");
  ilu_ = std::move(ilu);
  precond_ = ilu_->as_preconditioner(options_.mixed_precision);
}

Vector SparseFirstSolver::solve(const Vector& b, SolveReport* report) const {
  return solve_dir(b, /*transpose=*/false, report);
}

Vector SparseFirstSolver::solve_transpose(const Vector& b,
                                          SolveReport* report) const {
  return solve_dir(b, /*transpose=*/true, report);
}

Vector SparseFirstSolver::solve_dir(const Vector& b, bool transpose,
                                    SolveReport* out) const {
  UPDEC_REQUIRE(valid(), "SparseFirstSolver used before initialisation");
  UPDEC_REQUIRE(b.size() == a_.rows(), "SparseFirstSolver rhs size mismatch");
  UPDEC_TRACE_SCOPE("la/sparse_first");
  const Stopwatch watch;
  SolveReport report;
  Vector x;
  const double b_norm = nrm2(b);
  const double accept = std::max(options_.iterative.abs_tol,
                                 options_.accept_rel_residual * b_norm);
  bool done = false;

  if (sparse_) {
    // Pick the (row-equilibrated) operator / scales / preconditioner for
    // this direction; the transposed pieces are built on first use and
    // cached. Note the transpose of A needs its OWN row scales -- rows of
    // A^T are columns of A.
    const CsrMatrix* op = &scaled_;
    const Vector* scale = &row_scale_;
    const Preconditioner* pc = &precond_;
    // fp64 ILU backing the preconditioner for this direction (null when the
    // incomplete factorisation fell back to Jacobi); source of the fp64
    // refinement closure on the mixed-precision path.
    std::shared_ptr<const Ilu0> dir_ilu = ilu_;
    std::shared_ptr<const CsrMatrix> at_keepalive;
    if (transpose) {
      const std::lock_guard<std::mutex> lock(state_->mutex);
      if (state_->at == nullptr) {
        state_->at = std::make_shared<const CsrMatrix>(
            row_equilibrated(a_.transposed(), state_->at_scale));
        try {
          state_->at_ilu = std::make_shared<const Ilu0>(*state_->at);
          state_->at_precond =
              state_->at_ilu->as_preconditioner(options_.mixed_precision);
        } catch (const Error& e) {
          log_warn() << "SparseFirstSolver: transpose ILU(0) failed ("
                     << e.what() << "); falling back to Jacobi";
          state_->at_precond = jacobi_preconditioner(*state_->at);
        }
      }
      at_keepalive = state_->at;
      op = at_keepalive.get();
      scale = &state_->at_scale;
      pc = &state_->at_precond;
      dir_ilu = state_->at_ilu;
    }

    // The Krylov stages solve the equilibrated system diag(s) A x =
    // diag(s) b -- same solution, far better-behaved ILU(0).
    Vector bs = b;
    for (std::size_t i = 0; i < bs.size(); ++i) bs[i] *= (*scale)[i];

    // Stage 1: ILU-preconditioned GMRES on the sparse operator.
    if (!done && options_.use_gmres) {
      ++report.attempts;
      IterativeResult res = gmres(*op, bs, options_.iterative, *pc);
      double true_res = true_residual(a_, b, res.x, transpose);
      // Iterative-refinement fallback for mixed precision: if the fp32
      // preconditioner stalled GMRES, retry with the fp64 closure of the
      // SAME factorisation, warm-started from the failed iterate, before
      // escalating past GMRES entirely.
      if (!(res.converged && std::isfinite(true_res)) &&
          options_.mixed_precision && dir_ilu != nullptr) {
        log_warn() << "SparseFirstSolver: fp32-preconditioned GMRES failed "
                      "(residual "
                   << res.residual_norm
                   << "); refining with the fp64 preconditioner";
        UPDEC_METRIC_ADD("la/sparse_first.mixed_refinements", 1);
        ++report.attempts;
        std::optional<Vector> warm;
        if (all_finite(res.x)) warm = std::move(res.x);
        res = gmres(*op, bs, options_.iterative,
                    dir_ilu->as_preconditioner(false), std::move(warm));
        true_res = true_residual(a_, b, res.x, transpose);
      }
      if (res.converged && std::isfinite(true_res)) {
        x = std::move(res.x);
        report.method = SolveMethod::kIterative;
        report.iterations = res.iterations;
        report.residual_norm = true_res;
        report.converged = true;
        done = true;
      } else {
        log_warn() << "SparseFirstSolver: GMRES failed (residual "
                   << res.residual_norm << " after " << res.iterations
                   << " iterations); escalating to BiCGSTAB";
      }
    }

    // Stage 2: BiCGSTAB.
    if (!done && options_.use_bicgstab) {
      ++report.attempts;
      IterativeResult res = bicgstab(*op, bs, options_.iterative, *pc);
      const double true_res = true_residual(a_, b, res.x, transpose);
      if (res.converged && std::isfinite(true_res)) {
        x = std::move(res.x);
        report.method = SolveMethod::kIterative;
        report.iterations = res.iterations;
        report.residual_norm = true_res;
        report.converged = true;
        done = true;
      } else {
        log_warn() << "SparseFirstSolver: BiCGSTAB failed (residual "
                   << res.residual_norm << " after " << res.iterations
                   << " iterations); escalating to dense LU";
      }
    }

    if (!done) {
      UPDEC_REQUIRE(options_.use_dense_fallback,
                    "sparse-first chain exhausted its Krylov stages and the "
                    "dense fallback is disabled");
      UPDEC_METRIC_ADD("la/sparse_first.fallbacks", 1);
    }
  }

  // Dense stage: the eager factorisation (dense mode) or the lazily built,
  // cached fallback (sparse mode after Krylov exhaustion).
  if (!done) {
    const std::shared_ptr<const LuFactorization> lu = dense_lu();
    const FactorReport factor = factor_report();
    ++report.attempts;
    report.attempts += factor.attempts - 1;  // count the shifted retries
    report.shift = factor.shift;
    x = transpose ? lu->solve_transpose(b) : lu->solve(b);
    report.residual_norm = true_residual(a_, b, x, transpose);
    report.method =
        factor.shifted ? SolveMethod::kShiftedLu : SolveMethod::kDenseLu;
    report.converged = std::isfinite(report.residual_norm) &&
                       report.residual_norm <= accept;
    if (factor.shifted)
      escalate_shifted_retries(a_, b, transpose, accept, options_, x, report);
    if (!report.converged)
      log_warn() << "SparseFirstSolver: chain exhausted; returning "
                 << "best-effort solution (method " << to_string(report.method)
                 << ", residual " << report.residual_norm << ", shift "
                 << report.shift << ")";
  }

  report.seconds = watch.seconds();
  if (metrics::enabled()) {
    metrics::counter_add("la/sparse_first.calls");
    metrics::counter_add("la/sparse_first.iterations", report.iterations);
    if (!report.converged) metrics::counter_add("la/sparse_first.failures");
  }
  if (out != nullptr) *out = report;
  return x;
}

Matrix SparseFirstSolver::solve_many(const Matrix& b,
                                     SolveReport* out) const {
  UPDEC_REQUIRE(valid(), "SparseFirstSolver used before initialisation");
  UPDEC_REQUIRE(b.rows() == a_.rows(),
                "SparseFirstSolver batched rhs size mismatch");
  UPDEC_TRACE_SCOPE("la/sparse_first_many");
  if (!sparse_) {
    // One blocked dense sweep; k solves cost one pass over L/U.
    const Stopwatch watch;
    const std::shared_ptr<const LuFactorization> lu = dense_lu();
    Matrix x = lu->solve_many(b);
    if (out != nullptr) {
      const FactorReport factor = factor_report();
      SolveReport report;
      report.attempts = factor.attempts;
      report.shift = factor.shift;
      report.method =
          factor.shifted ? SolveMethod::kShiftedLu : SolveMethod::kDenseLu;
      // Worst-column true residual over the batch.
      Matrix r = b;
      a_.spmm(-1.0, x, 1.0, r);
      double worst = 0.0;
      bool all_ok = true;
      for (std::size_t j = 0; j < r.cols(); ++j) {
        double s = 0.0, bn = 0.0;
        for (std::size_t i = 0; i < r.rows(); ++i) {
          if (!std::isfinite(x(i, j))) all_ok = false;
          s += r(i, j) * r(i, j);
          bn += b(i, j) * b(i, j);
        }
        const double accept =
            std::max(options_.iterative.abs_tol,
                     options_.accept_rel_residual * std::sqrt(bn));
        worst = std::max(worst, std::sqrt(s));
        if (std::sqrt(s) > accept) all_ok = false;
      }
      report.residual_norm = worst;
      report.converged = all_ok;
      report.seconds = watch.seconds();
      *out = report;
    }
    return x;
  }
  // Sparse mode: run the chain per column, sharing the preconditioner and
  // any fallback factorisation across the whole batch.
  Matrix x(b.rows(), b.cols());
  SolveReport agg;
  Vector rhs(b.rows());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    for (std::size_t i = 0; i < b.rows(); ++i) rhs[i] = b(i, j);
    SolveReport col;
    const Vector xj = solve_dir(rhs, /*transpose=*/false, &col);
    for (std::size_t i = 0; i < b.rows(); ++i) x(i, j) = xj[i];
    agg.attempts = std::max(agg.attempts, col.attempts);
    agg.iterations += col.iterations;
    agg.residual_norm = std::max(agg.residual_norm, col.residual_norm);
    agg.shift = std::max(agg.shift, col.shift);
    agg.seconds += col.seconds;
    if (static_cast<int>(col.method) > static_cast<int>(agg.method))
      agg.method = col.method;
    agg.converged = (j == 0 ? col.converged : agg.converged && col.converged);
  }
  if (out != nullptr) *out = agg;
  return x;
}

Vector checked_solve(const SparseFirstSolver& op, const Vector& b,
                     const char* context) {
  Vector x = op.solve(b);
  if (!all_finite(x)) {
    std::ostringstream os;
    os << context << ": linear solve produced non-finite entries";
    throw Error(os.str());
  }
  return x;
}

LuFactorization robust_lu_factor(const Matrix& a, FactorReport* report,
                                 const RobustSolveOptions& options) {
  UPDEC_TRACE_SCOPE("la/lu_factor");
  UPDEC_METRIC_ADD("la/lu_factor.calls", 1);
  FactorReport local;
  FactorReport& out = report != nullptr ? *report : local;
  out = FactorReport{};

  // Unshifted attempt.
  ++out.attempts;
  try {
    LuFactorization lu{Matrix(a)};
    out.ok = true;
    return lu;
  } catch (const Error& e) {
    log_warn() << "robust_lu_factor: factorisation failed (" << e.what()
               << "); retrying with Tikhonov shift";
  }

  // Escalating shifts, scaled by the matrix magnitude so lambda is
  // meaningful for both O(1) and O(1e6) collocation systems.
  const double scale = std::max(dense_norm1(a), 1.0);
  double shift = options.shift_initial * scale;
  for (std::size_t attempt = 0; attempt < options.max_shift_attempts;
       ++attempt, shift *= options.shift_growth) {
    ++out.attempts;
    Matrix shifted = a;
    for (std::size_t i = 0; i < shifted.rows(); ++i) shifted(i, i) += shift;
    try {
      LuFactorization lu{std::move(shifted)};
      out.ok = true;
      out.shifted = true;
      out.shift = shift;
      UPDEC_METRIC_ADD("la/lu_factor.shifted", 1);
      log_warn() << "robust_lu_factor: factored with Tikhonov shift "
                 << shift << " after " << out.attempts << " attempt(s)";
      return lu;
    } catch (const Error&) {
      // grow the shift and retry
    }
  }
  std::ostringstream os;
  os << "robust_lu_factor: matrix remained singular after " << out.attempts
     << " attempts (final shift " << shift / options.shift_growth << ")";
  throw Error(os.str());
}

}  // namespace updec::la
