#include "la/robust_solve.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "la/blas.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace updec::la {

namespace {

/// 1-norm (max column absolute sum) of a CSR matrix; scale for shifts.
double csr_norm1(const CsrMatrix& a) {
  Vector col_sums(a.cols(), 0.0);
  const auto& values = a.values();
  const auto& col_idx = a.col_idx();
  for (std::size_t k = 0; k < values.size(); ++k)
    col_sums[col_idx[k]] += std::abs(values[k]);
  double best = 0.0;
  for (const double s : col_sums) best = std::max(best, s);
  return best;
}

double dense_norm1(const Matrix& a) {
  double best = 0.0;
  for (std::size_t j = 0; j < a.cols(); ++j) {
    double s = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) s += std::abs(a(i, j));
    best = std::max(best, s);
  }
  return best;
}

/// ||b - A x||_2, or +inf when x has non-finite entries.
double true_residual(const CsrMatrix& a, const Vector& b, const Vector& x) {
  if (!all_finite(x)) return std::numeric_limits<double>::infinity();
  Vector r = b;
  a.spmv(-1.0, x, 1.0, r);
  return nrm2(r);
}

}  // namespace

const char* to_string(SolveMethod method) {
  switch (method) {
    case SolveMethod::kIterative: return "iterative";
    case SolveMethod::kDenseLu: return "dense-lu";
    case SolveMethod::kShiftedLu: return "shifted-lu";
  }
  return "?";
}

const SolveReport& SolveReport::require_converged(const char* context) const {
  if (!converged) {
    std::ostringstream os;
    os << context << ": robust solve did not converge (method "
       << to_string(method) << ", " << attempts << " stage(s), residual "
       << residual_norm << ", shift " << shift << ")";
    throw Error(os.str());
  }
  return *this;
}

LuFactorization shifted_lu_factor(const Matrix& a, double relative_shift) {
  const double shift = relative_shift * std::max(dense_norm1(a), 1.0);
  Matrix shifted = a;
  for (std::size_t i = 0; i < shifted.rows(); ++i) shifted(i, i) += shift;
  return LuFactorization(std::move(shifted));
}

bool all_finite(const Vector& v) {
  for (const double x : v)
    if (!std::isfinite(x)) return false;
  return true;
}

Vector checked_solve(const LuFactorization& lu, const Vector& b,
                     const char* context) {
  Vector x = lu.solve(b);
  if (!all_finite(x)) {
    std::ostringstream os;
    os << context << ": linear solve produced non-finite entries";
    throw Error(os.str());
  }
  return x;
}

RobustSolver::RobustSolver(CsrMatrix a, RobustSolveOptions options)
    : a_(std::move(a)), options_(options) {
  UPDEC_REQUIRE(a_.rows() == a_.cols(), "RobustSolver needs a square matrix");
  try {
    precond_ = Ilu0(a_).as_preconditioner();
  } catch (const Error& e) {
    log_warn() << "RobustSolver: ILU(0) preconditioner failed ("
               << e.what() << "); falling back to Jacobi";
    precond_ = jacobi_preconditioner(a_);
  }
}

SolveReport RobustSolver::solve(const Vector& b, Vector& x) const {
  UPDEC_TRACE_SCOPE("la/robust_solve");
  SolveReport report = solve_impl(b, x);
  if (metrics::enabled()) {
    metrics::counter_add("la/robust_solve.calls");
    metrics::counter_add("la/robust_solve.iterations", report.iterations);
    // Escalations = stages beyond the first that had to be tried.
    if (report.attempts > 1)
      metrics::counter_add("la/robust_solve.escalations", report.attempts - 1);
    switch (report.method) {
      case SolveMethod::kIterative:
        metrics::counter_add("la/robust_solve.method.iterative");
        break;
      case SolveMethod::kDenseLu:
        metrics::counter_add("la/robust_solve.method.dense_lu");
        break;
      case SolveMethod::kShiftedLu:
        metrics::counter_add("la/robust_solve.method.shifted_lu");
        break;
    }
    if (!report.converged) metrics::counter_add("la/robust_solve.failures");
    metrics::observe("la/robust_solve.residual", report.residual_norm);
  }
  return report;
}

SolveReport RobustSolver::solve_impl(const Vector& b, Vector& x) const {
  UPDEC_REQUIRE(b.size() == a_.rows(), "RobustSolver rhs size mismatch");
  const Stopwatch watch;
  SolveReport report;
  const double b_norm = nrm2(b);
  const double accept = std::max(options_.iterative.abs_tol,
                                 options_.accept_rel_residual * b_norm);

  // Stage 1: preconditioned GMRES.
  if (options_.use_gmres) {
    ++report.attempts;
    IterativeResult res = gmres(a_, b, options_.iterative, precond_);
    const double true_res = true_residual(a_, b, res.x);
    if (res.converged && std::isfinite(true_res)) {
      x = std::move(res.x);
      report.method = SolveMethod::kIterative;
      report.iterations = res.iterations;
      report.residual_norm = true_res;
      report.converged = true;
      report.seconds = watch.seconds();
      return report;
    }
    log_warn() << "RobustSolver: GMRES failed to converge (residual "
               << res.residual_norm << " after " << res.iterations
               << " iterations); escalating to BiCGSTAB";
  }

  // Stage 2: BiCGSTAB.
  if (options_.use_bicgstab) {
    ++report.attempts;
    IterativeResult res = bicgstab(a_, b, options_.iterative, precond_);
    const double true_res = true_residual(a_, b, res.x);
    if (res.converged && std::isfinite(true_res)) {
      x = std::move(res.x);
      report.method = SolveMethod::kIterative;
      report.iterations = res.iterations;
      report.residual_norm = true_res;
      report.converged = true;
      report.seconds = watch.seconds();
      return report;
    }
    log_warn() << "RobustSolver: BiCGSTAB failed to converge (residual "
               << res.residual_norm << " after " << res.iterations
               << " iterations); escalating to dense LU";
  }

  // Stages 3-4: densify; plain LU first, then growing Tikhonov shifts.
  UPDEC_REQUIRE(options_.use_dense_fallback,
                "robust solve exhausted its iterative stages and the dense "
                "fallback is disabled");
  ++report.attempts;
  FactorReport factor;
  const LuFactorization lu =
      robust_lu_factor(a_.to_dense(), &factor, options_);
  report.attempts += factor.attempts - 1;  // count the shifted retries
  report.shift = factor.shift;
  x = lu.solve(b);
  report.residual_norm = true_residual(a_, b, x);
  report.method =
      factor.shifted ? SolveMethod::kShiftedLu : SolveMethod::kDenseLu;
  report.converged =
      std::isfinite(report.residual_norm) && report.residual_norm <= accept;

  // A shifted factorisation regularises the system; if its residual misses
  // the acceptance threshold, keep escalating the shift while it helps.
  double shift = factor.shift;
  for (std::size_t extra = 0;
       !report.converged && factor.shifted && extra < options_.max_shift_attempts;
       ++extra) {
    shift *= options_.shift_growth;
    Matrix shifted = a_.to_dense();
    for (std::size_t i = 0; i < shifted.rows(); ++i) shifted(i, i) += shift;
    ++report.attempts;
    try {
      const LuFactorization retry(std::move(shifted));
      Vector x_retry = retry.solve(b);
      const double res = true_residual(a_, b, x_retry);
      if (res < report.residual_norm || !std::isfinite(report.residual_norm)) {
        x = std::move(x_retry);
        report.residual_norm = res;
        report.shift = shift;
        report.converged = std::isfinite(res) && res <= accept;
      } else {
        break;  // larger shifts only move further from the true solution
      }
    } catch (const Error&) {
      break;
    }
  }

  if (!report.converged)
    log_warn() << "RobustSolver: escalation chain exhausted; returning "
               << "best-effort solution (method " << to_string(report.method)
               << ", residual " << report.residual_norm << ", shift "
               << report.shift << ")";
  report.seconds = watch.seconds();
  return report;
}

LuFactorization robust_lu_factor(const Matrix& a, FactorReport* report,
                                 const RobustSolveOptions& options) {
  UPDEC_TRACE_SCOPE("la/lu_factor");
  UPDEC_METRIC_ADD("la/lu_factor.calls", 1);
  FactorReport local;
  FactorReport& out = report != nullptr ? *report : local;
  out = FactorReport{};

  // Unshifted attempt.
  ++out.attempts;
  try {
    LuFactorization lu{Matrix(a)};
    out.ok = true;
    return lu;
  } catch (const Error& e) {
    log_warn() << "robust_lu_factor: factorisation failed (" << e.what()
               << "); retrying with Tikhonov shift";
  }

  // Escalating shifts, scaled by the matrix magnitude so lambda is
  // meaningful for both O(1) and O(1e6) collocation systems.
  const double scale = std::max(dense_norm1(a), 1.0);
  double shift = options.shift_initial * scale;
  for (std::size_t attempt = 0; attempt < options.max_shift_attempts;
       ++attempt, shift *= options.shift_growth) {
    ++out.attempts;
    Matrix shifted = a;
    for (std::size_t i = 0; i < shifted.rows(); ++i) shifted(i, i) += shift;
    try {
      LuFactorization lu{std::move(shifted)};
      out.ok = true;
      out.shifted = true;
      out.shift = shift;
      UPDEC_METRIC_ADD("la/lu_factor.shifted", 1);
      log_warn() << "robust_lu_factor: factored with Tikhonov shift "
                 << shift << " after " << out.attempts << " attempt(s)";
      return lu;
    } catch (const Error&) {
      // grow the shift and retry
    }
  }
  std::ostringstream os;
  os << "robust_lu_factor: matrix remained singular after " << out.attempts
     << " attempts (final shift " << shift / options.shift_growth << ")";
  throw Error(os.str());
}

}  // namespace updec::la
