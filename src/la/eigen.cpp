#include "la/eigen.hpp"

#include <cmath>

#include "la/blas.hpp"
#include "util/rng.hpp"

namespace updec::la {

PowerIterationResult power_iteration(
    const std::function<Vector(const Vector&)>& apply, std::size_t n,
    std::size_t max_iterations, double tol, std::uint64_t seed) {
  UPDEC_REQUIRE(n > 0, "power iteration needs a nonempty space");
  Rng rng(seed);
  PowerIterationResult result;
  Vector v(n);
  for (auto& x : v) x = rng.normal();
  scal(1.0 / nrm2(v), v);

  double lambda = 0.0;
  for (std::size_t it = 0; it < max_iterations; ++it) {
    Vector w = apply(v);
    const double norm = nrm2(w);
    UPDEC_REQUIRE(std::isfinite(norm), "power iteration diverged to non-finite");
    if (norm == 0.0) {  // v in the kernel: dominant eigenvalue is 0
      result.eigenvalue = 0.0;
      result.eigenvector = v;
      result.iterations = it + 1;
      result.converged = true;
      return result;
    }
    const double lambda_new = dot(v, w);  // Rayleigh quotient (|v| = 1)
    scal(1.0 / norm, w);
    const bool settled = std::abs(lambda_new - lambda) <=
                         tol * (1.0 + std::abs(lambda_new));
    lambda = lambda_new;
    v = std::move(w);
    result.iterations = it + 1;
    if (settled && it > 2) {
      result.converged = true;
      break;
    }
  }
  result.eigenvalue = lambda;
  result.eigenvector = std::move(v);
  return result;
}

PowerIterationResult power_iteration(const Matrix& a,
                                     std::size_t max_iterations, double tol) {
  UPDEC_REQUIRE(a.rows() == a.cols(), "power iteration needs a square matrix");
  return power_iteration(
      [&a](const Vector& x) { return matvec(a, x); }, a.rows(),
      max_iterations, tol);
}

PowerIterationResult power_iteration(const CsrMatrix& a,
                                     std::size_t max_iterations, double tol) {
  UPDEC_REQUIRE(a.rows() == a.cols(), "power iteration needs a square matrix");
  return power_iteration(
      [&a](const Vector& x) { return a.apply(x); }, a.rows(), max_iterations,
      tol);
}

}  // namespace updec::la
