#include "la/eigen.hpp"

#include <cmath>

#include "la/blas.hpp"
#include "util/rng.hpp"

namespace updec::la {

PowerIterationResult power_iteration(
    const std::function<Vector(const Vector&)>& apply, std::size_t n,
    std::size_t max_iterations, double tol, std::uint64_t seed) {
  UPDEC_REQUIRE(n > 0, "power iteration needs a nonempty space");
  Rng rng(seed);
  PowerIterationResult result;
  Vector v(n);
  for (auto& x : v) x = rng.normal();
  scal(1.0 / nrm2(v), v);

  double lambda = 0.0;
  for (std::size_t it = 0; it < max_iterations; ++it) {
    Vector w = apply(v);
    const double norm = nrm2(w);
    UPDEC_REQUIRE(std::isfinite(norm), "power iteration diverged to non-finite");
    if (norm == 0.0) {  // v in the kernel: dominant eigenvalue is 0
      result.eigenvalue = 0.0;
      result.eigenvector = v;
      result.iterations = it + 1;
      result.converged = true;
      return result;
    }
    const double lambda_new = dot(v, w);  // Rayleigh quotient (|v| = 1)
    scal(1.0 / norm, w);
    const bool settled = std::abs(lambda_new - lambda) <=
                         tol * (1.0 + std::abs(lambda_new));
    lambda = lambda_new;
    v = std::move(w);
    result.iterations = it + 1;
    if (settled && it > 2) {
      result.converged = true;
      break;
    }
  }
  result.eigenvalue = lambda;
  result.eigenvector = std::move(v);
  return result;
}

PowerIterationResult power_iteration(const Matrix& a,
                                     std::size_t max_iterations, double tol) {
  UPDEC_REQUIRE(a.rows() == a.cols(), "power iteration needs a square matrix");
  return power_iteration(
      [&a](const Vector& x) { return matvec(a, x); }, a.rows(),
      max_iterations, tol);
}

PowerIterationResult power_iteration(const CsrMatrix& a,
                                     std::size_t max_iterations, double tol) {
  UPDEC_REQUIRE(a.rows() == a.cols(), "power iteration needs a square matrix");
  return power_iteration(
      [&a](const Vector& x) { return a.apply(x); }, a.rows(), max_iterations,
      tol);
}

namespace {

/// Frobenius mass of the strict off-diagonal part (squared).
double off_diagonal_sq(const Matrix& a) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      if (i != j) s += a(i, j) * a(i, j);
  return s;
}

}  // namespace

SymmetricEigenResult symmetric_eigen(const Matrix& a, std::size_t max_sweeps,
                                     double tol) {
  UPDEC_REQUIRE(a.rows() == a.cols(), "symmetric_eigen needs a square matrix");
  const std::size_t n = a.rows();
  SymmetricEigenResult result;
  if (n == 0) {
    result.converged = true;
    return result;
  }

  // Symmetrize from the lower triangle so callers that assembled only one
  // half (Gram loops) are served exactly; reject genuine asymmetry.
  Matrix b(n, n);
  double scale = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = a(i, j);
      UPDEC_REQUIRE(std::isfinite(v), "symmetric_eigen: non-finite entry");
      b(i, j) = v;
      b(j, i) = v;
      scale = std::max(scale, std::abs(v));
    }
  }
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      UPDEC_REQUIRE(std::abs(a(i, j) - a(j, i)) <=
                        1e-8 * (1.0 + scale),
                    "symmetric_eigen: matrix is not symmetric");

  Matrix v = Matrix::identity(n);
  double fro_sq = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) fro_sq += b(i, j) * b(i, j);
  const double stop_sq = tol * tol * std::max(fro_sq, 1e-300);

  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_sq(b) <= stop_sq) {
      result.converged = true;
      break;
    }
    result.sweeps = sweep + 1;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = b(p, q);
        if (apq == 0.0) continue;
        const double app = b(p, p);
        const double aqq = b(q, q);
        // Skip rotations that cannot move mass above roundoff -- they only
        // churn the accumulated V.
        if (std::abs(apq) <= 1e-300 ||
            std::abs(apq) * std::abs(apq) <= 1e-64 * stop_sq)
          continue;
        const double theta = (aqq - app) / (2.0 * apq);
        // Stable tangent of the smaller rotation angle.
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // B <- J^T B J on rows/columns p, q (symmetry maintained).
        for (std::size_t k = 0; k < n; ++k) {
          const double bkp = b(k, p);
          const double bkq = b(k, q);
          b(k, p) = c * bkp - s * bkq;
          b(k, q) = s * bkp + c * bkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double bpk = b(p, k);
          const double bqk = b(q, k);
          b(p, k) = c * bpk - s * bqk;
          b(q, k) = s * bpk + c * bqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  if (!result.converged && off_diagonal_sq(b) <= stop_sq)
    result.converged = true;
  UPDEC_REQUIRE(result.converged,
                "symmetric_eigen: Jacobi sweeps failed to converge");

  // Sort descending by eigenvalue, permuting eigenvector columns along.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&b](std::size_t x, std::size_t y) {
    return b(x, x) > b(y, y);
  });
  result.eigenvalues = Vector(n);
  result.eigenvectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    result.eigenvalues[j] = b(order[j], order[j]);
    for (std::size_t i = 0; i < n; ++i)
      result.eigenvectors(i, j) = v(i, order[j]);
  }
  return result;
}

}  // namespace updec::la
