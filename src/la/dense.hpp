#pragma once
/// \file dense.hpp
/// \brief Dense vector and row-major matrix containers.
///
/// These are the storage types for RBF collocation systems. They own
/// contiguous heap buffers, expose bounds-checked access in debug builds and
/// raw spans for kernels. All numeric work lives in blas.hpp / the solver
/// headers; the containers stay small.

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace updec::la {

/// Dense column vector of doubles.
class Vector {
 public:
  Vector() = default;
  explicit Vector(std::size_t n, double value = 0.0) : data_(n, value) {}
  Vector(std::initializer_list<double> init) : data_(init) {}
  explicit Vector(std::vector<double> data) : data_(std::move(data)) {}

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  double& operator[](std::size_t i) {
    UPDEC_ASSERT(i < data_.size());
    return data_[i];
  }
  double operator[](std::size_t i) const {
    UPDEC_ASSERT(i < data_.size());
    return data_[i];
  }

  double* data() { return data_.data(); }
  [[nodiscard]] const double* data() const { return data_.data(); }

  [[nodiscard]] std::span<double> span() { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const double> span() const {
    return {data_.data(), data_.size()};
  }

  /// Underlying std::vector (for interop with other modules).
  [[nodiscard]] const std::vector<double>& std() const { return data_; }
  std::vector<double>& std() { return data_; }

  void resize(std::size_t n, double value = 0.0) { data_.resize(n, value); }
  void fill(double value) { data_.assign(data_.size(), value); }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  [[nodiscard]] auto begin() const { return data_.begin(); }
  [[nodiscard]] auto end() const { return data_.end(); }

 private:
  std::vector<double> data_;
};

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double value = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, value) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  double& operator()(std::size_t i, std::size_t j) {
    UPDEC_ASSERT(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const {
    UPDEC_ASSERT(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  /// Raw pointer to row i (contiguous, cols() entries).
  double* row(std::size_t i) {
    UPDEC_ASSERT(i < rows_);
    return data_.data() + i * cols_;
  }
  [[nodiscard]] const double* row(std::size_t i) const {
    UPDEC_ASSERT(i < rows_);
    return data_.data() + i * cols_;
  }

  double* data() { return data_.data(); }
  [[nodiscard]] const double* data() const { return data_.data(); }

  void fill(double value) { data_.assign(data_.size(), value); }

  /// n-by-n identity.
  static Matrix identity(std::size_t n);

  /// Transposed copy.
  [[nodiscard]] Matrix transposed() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Elementwise vector arithmetic (allocating forms; use blas.hpp in loops).
Vector operator+(const Vector& a, const Vector& b);
Vector operator-(const Vector& a, const Vector& b);
Vector operator*(double s, const Vector& a);

}  // namespace updec::la
