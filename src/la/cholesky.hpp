#pragma once
/// \file cholesky.hpp
/// \brief Cholesky factorisation for symmetric positive-definite systems
/// (e.g. normal equations of RBF least-squares fits, Gram matrices of
/// strictly positive-definite kernels such as Gaussians).

#include "la/dense.hpp"

namespace updec::la {

/// A = L L^T factorisation of an SPD matrix.
class CholeskyFactorization {
 public:
  CholeskyFactorization() = default;

  /// Factor. Throws updec::Error if the matrix is not positive definite.
  explicit CholeskyFactorization(Matrix a);

  /// Solve A x = b.
  [[nodiscard]] Vector solve(const Vector& b) const;

  /// log(det A), numerically safe for large SPD systems.
  [[nodiscard]] double log_determinant() const;

  [[nodiscard]] std::size_t size() const { return l_.rows(); }
  [[nodiscard]] bool valid() const { return !l_.empty(); }

 private:
  Matrix l_;  // lower-triangular factor
};

}  // namespace updec::la
