#pragma once
/// \file simd.hpp
/// \brief Vectorisation helpers for the bandwidth-bound `la` hot kernels.
///
/// The Krylov hot path (SpMV, triangular sweeps, axpy/dot/norm) is memory-
/// bound: the win from explicit vectorisation is that the compiler emits one
/// wide load/FMA stream per cache line instead of falling back to scalar
/// code whenever it cannot prove two pointers do not alias or that a
/// floating-point reduction may be reassociated. Two tools fix that:
///
///  * `UPDEC_RESTRICT` — promises no aliasing between the annotated raw
///    pointers inside one kernel, so loads can be hoisted and stores
///    vectorised;
///  * `UPDEC_PRAGMA_SIMD` / `UPDEC_PRAGMA_SIMD_REDUCTION(...)` — the OpenMP
///    `simd` pragma, which explicitly licenses vector execution (including
///    reduction reassociation, which strict IEEE ordering otherwise forbids
///    at -O2/-O3 without -ffast-math).
///
/// Determinism contract: a `simd` reduction changes the *rounding* of a sum
/// relative to the scalar loop, but the result is still a deterministic
/// function of the input for a given binary — the same build produces
/// bit-identical results run to run and across OpenMP team sizes, which is
/// what the `threaded_vs_serial` oracle checks. Cross-build (SIMD vs
/// non-SIMD) agreement is only ever to solver tolerance, exactly like the
/// pre-existing OpenMP-vs-serial situation.
///
/// The pragmas compile away entirely when OpenMP is absent
/// (`UPDEC_HAVE_OPENMP` undefined); GCC/Clang also honour them under
/// `-fopenmp-simd` without threading runtime support.

#if defined(__GNUC__) || defined(__clang__)
#define UPDEC_RESTRICT __restrict__
#else
#define UPDEC_RESTRICT
#endif

#ifdef UPDEC_HAVE_OPENMP
/// Vectorise the following loop (no reduction).
#define UPDEC_PRAGMA_SIMD _Pragma("omp simd")
/// Vectorise the following reduction loop; `clause` is the full OpenMP
/// clause list, e.g. UPDEC_PRAGMA_SIMD_REDUCTION(+ : s).
#define UPDEC_PRAGMA_SIMD_REDUCTION(...) \
  UPDEC_PRAGMA_SIMD_REDUCTION_IMPL(omp simd reduction(__VA_ARGS__))
#define UPDEC_PRAGMA_SIMD_REDUCTION_IMPL(x) _Pragma(#x)
#else
#define UPDEC_PRAGMA_SIMD
#define UPDEC_PRAGMA_SIMD_REDUCTION(...)
#endif
