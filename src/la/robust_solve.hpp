#pragma once
/// \file robust_solve.hpp
/// \brief Resilient linear solves for the optimisation stack.
///
/// The paper's three strategies each run hundreds of back-to-back linear
/// solves inside 350-500-iteration optimisation loops; an ill-conditioned
/// collocation system or a stalled Krylov solve must degrade gracefully
/// instead of silently corrupting the run. Two entry points:
///
///  * RobustSolver (sparse): an escalation chain
///      preconditioned GMRES -> BiCGSTAB -> dense LU -> LU of A + lambda I
///    with growing Tikhonov shift, validating residual finiteness at every
///    stage and returning a structured SolveReport callers must consume.
///
///  * robust_lu_factor (dense): factor A, escalating to A + lambda I on a
///    singular pivot or non-finite entries; used by every cached dense
///    factorisation in src/pde, src/rbf and src/control.

#include "la/iterative.hpp"
#include "la/lu.hpp"
#include "la/sparse.hpp"

namespace updec::la {

/// Which stage of the escalation chain produced the accepted solution.
enum class SolveMethod {
  kIterative,  ///< preconditioned GMRES or BiCGSTAB converged
  kDenseLu,    ///< dense LU of the (unshifted) matrix
  kShiftedLu,  ///< dense LU of A + lambda I (Tikhonov-regularised)
};

[[nodiscard]] const char* to_string(SolveMethod method);

/// Structured outcome of a robust solve. Marked nodiscard so call sites
/// must consume it (satisfying or explicitly waiving the converged check).
struct [[nodiscard]] SolveReport {
  SolveMethod method = SolveMethod::kIterative;
  std::size_t attempts = 0;     ///< escalation stages tried (>= 1)
  std::size_t iterations = 0;   ///< Krylov iterations of the winning stage
  double residual_norm = 0.0;   ///< ||b - A x|| of the accepted solution
  double shift = 0.0;           ///< final Tikhonov lambda (0 when unshifted)
  double seconds = 0.0;         ///< wall time across all stages
  bool converged = false;       ///< accepted solution meets the tolerance

  /// Throw updec::Error naming `context` unless the solve converged.
  const SolveReport& require_converged(const char* context) const;
};

/// Tuning knobs for the escalation chain and the shifted refactorisation.
struct RobustSolveOptions {
  IterativeOptions iterative;       ///< tolerances for the Krylov stages
  bool use_gmres = true;            ///< stage 1
  bool use_bicgstab = true;         ///< stage 2
  bool use_dense_fallback = true;   ///< stages 3-4 (densify + LU)
  double accept_rel_residual = 1e-8;  ///< direct-solve acceptance threshold
  double shift_initial = 1e-12;     ///< first lambda, scaled by ||A||_1
  double shift_growth = 100.0;      ///< lambda multiplier per attempt
  std::size_t max_shift_attempts = 6;
};

/// Escalating solver for one sparse system, reusable across right-hand
/// sides. Builds an ILU(0) preconditioner up front (falling back to Jacobi
/// if the incomplete factorisation itself fails).
class RobustSolver {
 public:
  explicit RobustSolver(CsrMatrix a, RobustSolveOptions options = {});

  /// Run the escalation chain for `b`; `x` receives the accepted solution
  /// (best-effort Tikhonov-regularised when nothing converged).
  SolveReport solve(const Vector& b, Vector& x) const;

  [[nodiscard]] const CsrMatrix& matrix() const { return a_; }
  [[nodiscard]] const RobustSolveOptions& options() const { return options_; }

 private:
  /// The escalation chain itself; solve() wraps it with trace/metrics.
  SolveReport solve_impl(const Vector& b, Vector& x) const;

  CsrMatrix a_;
  RobustSolveOptions options_;
  Preconditioner precond_;
};

/// Outcome of a robust dense factorisation.
struct FactorReport {
  std::size_t attempts = 0;  ///< factorisation attempts (>= 1)
  double shift = 0.0;        ///< Tikhonov lambda actually applied
  bool shifted = false;      ///< true iff a shift was needed
  bool ok = false;           ///< a usable factorisation was produced
};

/// Factor `a`, escalating to `a + lambda I` with growing lambda on a
/// singular pivot or non-finite breakdown. Each escalation is logged at
/// warn level with the shift used. Throws updec::Error only when every
/// attempt (including the largest shift) fails.
LuFactorization robust_lu_factor(const Matrix& a,
                                 FactorReport* report = nullptr,
                                 const RobustSolveOptions& options = {});

/// Factor `a + shift * max(||a||_1, 1) * I` directly — the "already known to
/// need regularisation" path used by NaN-recovery re-solves.
LuFactorization shifted_lu_factor(const Matrix& a, double relative_shift);

/// True iff every entry of `v` is finite (no NaN / Inf).
[[nodiscard]] bool all_finite(const Vector& v);

/// Solve against a cached factorisation and validate the result is finite;
/// throws updec::Error naming `context` otherwise. Use at call sites that
/// previously consumed lu.solve(...) unchecked.
[[nodiscard]] Vector checked_solve(const LuFactorization& lu, const Vector& b,
                                   const char* context);

}  // namespace updec::la
