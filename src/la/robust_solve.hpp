#pragma once
/// \file robust_solve.hpp
/// \brief Resilient linear solves for the optimisation stack.
///
/// The paper's three strategies each run hundreds of back-to-back linear
/// solves inside 350-500-iteration optimisation loops; an ill-conditioned
/// collocation system or a stalled Krylov solve must degrade gracefully
/// instead of silently corrupting the run. Two entry points:
///
///  * RobustSolver (sparse): an escalation chain
///      preconditioned GMRES -> BiCGSTAB -> dense LU -> LU of A + lambda I
///    with growing Tikhonov shift, validating residual finiteness at every
///    stage and returning a structured SolveReport callers must consume.
///
///  * robust_lu_factor (dense): factor A, escalating to A + lambda I on a
///    singular pivot or non-finite entries; used by every cached dense
///    factorisation in src/pde, src/rbf and src/control.
///
///  * SparseFirstSolver: the default path for RBF-FD-discretised operators.
///    Below RobustSolveOptions::sparse_min_n it densifies up front (robust
///    LU, amortised across right-hand sides); at or above the threshold it
///    keeps the CSR operator and runs the ILU(0)-preconditioned Krylov chain
///    (GMRES -> BiCGSTAB), building the dense LU lazily only if the Krylov
///    stages fail. One instance is reusable across right-hand sides and
///    exposes transpose and batched multi-RHS solves for the adjoint (AD
///    VJP) and serving paths.

#include <memory>

#include "la/iterative.hpp"
#include "la/lu.hpp"
#include "la/sparse.hpp"

namespace updec::la {

/// Which stage of the escalation chain produced the accepted solution.
enum class SolveMethod {
  kIterative,  ///< preconditioned GMRES or BiCGSTAB converged
  kDenseLu,    ///< dense LU of the (unshifted) matrix
  kShiftedLu,  ///< dense LU of A + lambda I (Tikhonov-regularised)
};

[[nodiscard]] const char* to_string(SolveMethod method);

/// Structured outcome of a robust solve. Marked nodiscard so call sites
/// must consume it (satisfying or explicitly waiving the converged check).
struct [[nodiscard]] SolveReport {
  SolveMethod method = SolveMethod::kIterative;
  std::size_t attempts = 0;     ///< escalation stages tried (>= 1)
  std::size_t iterations = 0;   ///< Krylov iterations of the winning stage
  double residual_norm = 0.0;   ///< ||b - A x|| of the accepted solution
  double shift = 0.0;           ///< final Tikhonov lambda (0 when unshifted)
  double seconds = 0.0;         ///< wall time across all stages
  bool converged = false;       ///< accepted solution meets the tolerance

  /// Throw updec::Error naming `context` unless the solve converged.
  const SolveReport& require_converged(const char* context) const;
};

/// Default SparseFirstSolver size threshold: systems with fewer rows than
/// this densify up front (dense LU wins at small N and its factorisation
/// amortises across right-hand sides); larger systems stay sparse and solve
/// with ILU-preconditioned Krylov. Reads UPDEC_SPARSE_MIN_N from the
/// environment on every call (so tests can flip it); malformed or unset
/// values yield the built-in default of 512.
[[nodiscard]] std::size_t sparse_min_n_from_env();

/// \brief `UPDEC_MIXED_PRECISION` (default off): apply the ILU(0)
/// preconditioner in fp32 inside the fp64 Krylov chain. The factors' fp32
/// shadow halves the memory traffic of the bandwidth-bound triangular
/// sweeps; correctness is unaffected because every chain stage accepts a
/// solution only on its true fp64 residual, and a failed fp32-preconditioned
/// GMRES is retried with the fp64 preconditioner (warm-started from the
/// failed iterate) before escalating further.
[[nodiscard]] bool mixed_precision_from_env();

/// Tuning knobs for the escalation chain and the shifted refactorisation.
struct RobustSolveOptions {
  IterativeOptions iterative;       ///< tolerances for the Krylov stages
  bool use_gmres = true;            ///< stage 1
  bool use_bicgstab = true;         ///< stage 2
  bool use_dense_fallback = true;   ///< stages 3-4 (densify + LU)
  double accept_rel_residual = 1e-8;  ///< direct-solve acceptance threshold
  double shift_initial = 1e-12;     ///< first lambda, scaled by ||A||_1
  double shift_growth = 100.0;      ///< lambda multiplier per attempt
  std::size_t max_shift_attempts = 6;
  /// SparseFirstSolver threshold: n < sparse_min_n solves by eager dense LU,
  /// n >= sparse_min_n stays on the CSR Krylov path. Defaults from
  /// UPDEC_SPARSE_MIN_N (see sparse_min_n_from_env). Set to 0 to force the
  /// sparse path, or to a value above n to force dense.
  std::size_t sparse_min_n = sparse_min_n_from_env();
  /// Apply ILU(0) in fp32 inside the fp64 Krylov stages (see
  /// mixed_precision_from_env); fp64 refinement retry on failure.
  bool mixed_precision = mixed_precision_from_env();
  /// Scale the GMRES restart length with problem size on the sparse path:
  /// SparseFirstSolver raises iterative.gmres_restart to min(n/64, 150).
  /// Restart cycles discard the Krylov space, and on RBF-FD operators at
  /// n ~ 10^4 the longer Arnoldi cycle cuts total iterations by ~25% for a
  /// bounded m*n workspace. Never shrinks an explicitly larger restart; set
  /// false to pin the restart length exactly.
  bool auto_restart = true;
};

/// Escalating solver for one sparse system, reusable across right-hand
/// sides. Builds an ILU(0) preconditioner up front (falling back to Jacobi
/// if the incomplete factorisation itself fails).
class RobustSolver {
 public:
  explicit RobustSolver(CsrMatrix a, RobustSolveOptions options = {});

  /// Run the escalation chain for `b`; `x` receives the accepted solution
  /// (best-effort Tikhonov-regularised when nothing converged).
  SolveReport solve(const Vector& b, Vector& x) const;

  [[nodiscard]] const CsrMatrix& matrix() const { return a_; }
  [[nodiscard]] const RobustSolveOptions& options() const { return options_; }

 private:
  /// The escalation chain itself; solve() wraps it with trace/metrics.
  SolveReport solve_impl(const Vector& b, Vector& x) const;

  CsrMatrix a_;
  RobustSolveOptions options_;
  Preconditioner precond_;
};

struct FactorReport;  // defined below

/// Sparse-first solver for one square CSR system, reusable across
/// right-hand sides and safe to share between threads once constructed.
///
/// Mode is fixed at construction from options.sparse_min_n:
///  * dense mode (n < sparse_min_n): robust dense LU factored eagerly; every
///    solve is a cheap O(n^2) substitution and solve_many is one blocked
///    sweep. This keeps the paper-scale test problems on the exact path
///    they always used.
///  * sparse mode (n >= sparse_min_n): the CSR operator is kept,
///    row-equilibrated (RBF-FD assemblies mix O(1/h^2) interior rows with
///    O(1) boundary rows, which wrecks ILU(0) quality as N grows; scaling
///    diag(s) A x = diag(s) b leaves the solution unchanged) and an ILU(0)
///    preconditioner built on the scaled operator (Jacobi fallback if the
///    incomplete factorisation fails). Solves run the escalation chain
///    ILU-GMRES -> BiCGSTAB -> dense LU (built lazily, cached, shared
///    across solves) -> shifted LU, mirroring RobustSolver but without ever
///    densifying while the Krylov stages keep converging.
///
/// solve_transpose serves the reverse-mode AD VJP (x_bar -> b_bar needs
/// A^{-T}); in sparse mode the transposed operator and its ILU(0) are built
/// lazily on first use and cached.
class SparseFirstSolver {
 public:
  SparseFirstSolver() = default;
  explicit SparseFirstSolver(CsrMatrix a, RobustSolveOptions options = {});

  /// False for a default-constructed (empty) solver.
  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  [[nodiscard]] std::size_t size() const { return a_.rows(); }
  /// True when this instance took the CSR + Krylov path.
  [[nodiscard]] bool sparse_path() const { return sparse_; }
  [[nodiscard]] const CsrMatrix& matrix() const { return a_; }
  /// The operator the Krylov stages actually see: the row-equilibrated CSR
  /// (diag(s) A with s_i = 1 / max_j |a_ij|) in sparse mode, `matrix()` in
  /// dense mode. External ILU(0) memoization (serve::cached_ilu0) must
  /// fingerprint and factor THIS matrix, not `matrix()`.
  [[nodiscard]] const CsrMatrix& krylov_matrix() const {
    return sparse_ ? scaled_ : a_;
  }
  [[nodiscard]] const RobustSolveOptions& options() const { return options_; }

  /// Report of the dense factorisation: the eager one in dense mode, the
  /// lazy fallback in sparse mode (attempts == 0 until a fallback fired).
  [[nodiscard]] FactorReport factor_report() const;

  /// Solve A x = b through the mode's chain. Always returns the best-effort
  /// solution; convergence/residual details land in `report` when given.
  Vector solve(const Vector& b, SolveReport* report = nullptr) const;

  /// Solve A^T x = b (adjoint / VJP path).
  Vector solve_transpose(const Vector& b, SolveReport* report = nullptr) const;

  /// Solve A X = B column-wise. Dense mode runs one blocked LU sweep; sparse
  /// mode runs the chain per column sharing the preconditioner and any
  /// fallback factorisation. `report` aggregates the worst column.
  Matrix solve_many(const Matrix& b, SolveReport* report = nullptr) const;

  /// Replace the preconditioner with an externally memoized ILU(0) (see
  /// serve::cached_ilu0) so warm scenario batches skip the factorisation.
  /// No-op in dense mode or for a null pointer.
  void install_preconditioner(std::shared_ptr<const Ilu0> ilu);

  /// The ILU(0) currently preconditioning the sparse chain; null in dense
  /// mode or after falling back to Jacobi.
  [[nodiscard]] std::shared_ptr<const Ilu0> shared_preconditioner() const {
    return ilu_;
  }

 private:
  struct State;  // mutex-guarded lazy pieces, shared so the solver is movable

  Vector solve_dir(const Vector& b, bool transpose, SolveReport* report) const;
  [[nodiscard]] std::shared_ptr<const LuFactorization> dense_lu() const;

  CsrMatrix a_;
  CsrMatrix scaled_;   ///< diag(row_scale_) * a_, sparse mode only
  Vector row_scale_;   ///< per-row 1 / inf-norm of a_, sparse mode only
  RobustSolveOptions options_;
  bool sparse_ = false;
  std::shared_ptr<const Ilu0> ilu_;
  Preconditioner precond_;
  std::shared_ptr<State> state_;
};

/// Outcome of a robust dense factorisation.
struct FactorReport {
  std::size_t attempts = 0;  ///< factorisation attempts (>= 1)
  double shift = 0.0;        ///< Tikhonov lambda actually applied
  bool shifted = false;      ///< true iff a shift was needed
  bool ok = false;           ///< a usable factorisation was produced
};

/// Factor `a`, escalating to `a + lambda I` with growing lambda on a
/// singular pivot or non-finite breakdown. Each escalation is logged at
/// warn level with the shift used. Throws updec::Error only when every
/// attempt (including the largest shift) fails.
LuFactorization robust_lu_factor(const Matrix& a,
                                 FactorReport* report = nullptr,
                                 const RobustSolveOptions& options = {});

/// Factor `a + shift * max(||a||_1, 1) * I` directly — the "already known to
/// need regularisation" path used by NaN-recovery re-solves.
LuFactorization shifted_lu_factor(const Matrix& a, double relative_shift);

/// True iff every entry of `v` is finite (no NaN / Inf).
[[nodiscard]] bool all_finite(const Vector& v);

/// Solve against a cached factorisation and validate the result is finite;
/// throws updec::Error naming `context` otherwise. Use at call sites that
/// previously consumed lu.solve(...) unchecked.
[[nodiscard]] Vector checked_solve(const LuFactorization& lu, const Vector& b,
                                   const char* context);

/// Same finiteness contract for the sparse-first path: solve through the
/// operator's chain and throw updec::Error naming `context` if the returned
/// vector has non-finite entries.
[[nodiscard]] Vector checked_solve(const SparseFirstSolver& op,
                                   const Vector& b, const char* context);

}  // namespace updec::la
