#include "la/blas.hpp"

#include <cmath>

#include "la/simd.hpp"
#include "util/metrics.hpp"

namespace updec::la {

void axpy(double alpha, const Vector& x, Vector& y) {
  UPDEC_REQUIRE(x.size() == y.size(), "axpy size mismatch");
  const std::size_t n = x.size();
  const double* UPDEC_RESTRICT xp = x.data();
  double* UPDEC_RESTRICT yp = y.data();
  UPDEC_PRAGMA_SIMD
  for (std::size_t i = 0; i < n; ++i) yp[i] += alpha * xp[i];
}

void scal(double alpha, Vector& x) {
  const std::size_t n = x.size();
  double* UPDEC_RESTRICT xp = x.data();
  UPDEC_PRAGMA_SIMD
  for (std::size_t i = 0; i < n; ++i) xp[i] *= alpha;
}

double dot(const Vector& x, const Vector& y) {
  UPDEC_REQUIRE(x.size() == y.size(), "dot size mismatch");
  const std::size_t n = x.size();
  const double* UPDEC_RESTRICT xp = x.data();
  const double* UPDEC_RESTRICT yp = y.data();
  double s = 0.0;
  UPDEC_PRAGMA_SIMD_REDUCTION(+ : s)
  for (std::size_t i = 0; i < n; ++i) s += xp[i] * yp[i];
  return s;
}

double nrm2(const Vector& x) { return std::sqrt(dot(x, x)); }

double nrm_inf(const Vector& x) {
  const std::size_t n = x.size();
  const double* UPDEC_RESTRICT xp = x.data();
  double m = 0.0;
  UPDEC_PRAGMA_SIMD_REDUCTION(max : m)
  for (std::size_t i = 0; i < n; ++i) m = std::max(m, std::abs(xp[i]));
  return m;
}

double nrm1(const Vector& x) {
  const std::size_t n = x.size();
  const double* UPDEC_RESTRICT xp = x.data();
  double s = 0.0;
  UPDEC_PRAGMA_SIMD_REDUCTION(+ : s)
  for (std::size_t i = 0; i < n; ++i) s += std::abs(xp[i]);
  return s;
}

void gemv(double alpha, const Matrix& A, const Vector& x, double beta,
          Vector& y) {
  UPDEC_REQUIRE(A.cols() == x.size() && A.rows() == y.size(),
                "gemv dimension mismatch");
  const std::size_t m = A.rows(), n = A.cols();
  UPDEC_METRIC_ADD("la/blas.simd_kernels", 1);
  const double* UPDEC_RESTRICT xp = x.data();
#ifdef UPDEC_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(m); ++i) {
    const double* UPDEC_RESTRICT arow = A.row(static_cast<std::size_t>(i));
    double s = 0.0;
    UPDEC_PRAGMA_SIMD_REDUCTION(+ : s)
    for (std::size_t j = 0; j < n; ++j) s += arow[j] * xp[j];
    y[static_cast<std::size_t>(i)] =
        alpha * s + beta * y[static_cast<std::size_t>(i)];
  }
}

void gemv_t(double alpha, const Matrix& A, const Vector& x, double beta,
            Vector& y) {
  UPDEC_REQUIRE(A.rows() == x.size() && A.cols() == y.size(),
                "gemv_t dimension mismatch");
  const std::size_t m = A.rows(), n = A.cols();
  if (beta == 0.0)
    y.fill(0.0);
  else if (beta != 1.0)
    scal(beta, y);
  // Row-major A: accumulate row contributions (sequential across rows to
  // avoid races; each row update is a vectorised axpy).
  double* UPDEC_RESTRICT yp = y.data();
  for (std::size_t i = 0; i < m; ++i) {
    const double* UPDEC_RESTRICT arow = A.row(i);
    const double xi = alpha * x[i];
    if (xi == 0.0) continue;
    UPDEC_PRAGMA_SIMD
    for (std::size_t j = 0; j < n; ++j) yp[j] += xi * arow[j];
  }
}

Vector matvec(const Matrix& A, const Vector& x) {
  Vector y(A.rows());
  gemv(1.0, A, x, 0.0, y);
  return y;
}

Vector matvec_t(const Matrix& A, const Vector& x) {
  Vector y(A.cols());
  gemv_t(1.0, A, x, 0.0, y);
  return y;
}

void ger(double alpha, const Vector& x, const Vector& y, Matrix& A) {
  UPDEC_REQUIRE(A.rows() == x.size() && A.cols() == y.size(),
                "ger dimension mismatch");
  const std::size_t m = A.rows(), n = A.cols();
  const double* UPDEC_RESTRICT yp = y.data();
#ifdef UPDEC_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(m); ++i) {
    double* UPDEC_RESTRICT arow = A.row(static_cast<std::size_t>(i));
    const double xi = alpha * x[static_cast<std::size_t>(i)];
    UPDEC_PRAGMA_SIMD
    for (std::size_t j = 0; j < n; ++j) arow[j] += xi * yp[j];
  }
}

void gemm(double alpha, const Matrix& A, const Matrix& B, double beta,
          Matrix& C) {
  UPDEC_REQUIRE(A.cols() == B.rows(), "gemm inner dimension mismatch");
  UPDEC_REQUIRE(C.rows() == A.rows() && C.cols() == B.cols(),
                "gemm output dimension mismatch");
  const std::size_t m = A.rows(), k = A.cols(), n = B.cols();
  UPDEC_METRIC_ADD("la/blas.simd_kernels", 1);
#ifdef UPDEC_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (std::ptrdiff_t ii = 0; ii < static_cast<std::ptrdiff_t>(m); ++ii) {
    const auto i = static_cast<std::size_t>(ii);
    double* UPDEC_RESTRICT crow = C.row(i);
    if (beta == 0.0) {
      for (std::size_t j = 0; j < n; ++j) crow[j] = 0.0;
    } else if (beta != 1.0) {
      for (std::size_t j = 0; j < n; ++j) crow[j] *= beta;
    }
    const double* UPDEC_RESTRICT arow = A.row(i);
    for (std::size_t p = 0; p < k; ++p) {
      const double aip = alpha * arow[p];
      if (aip == 0.0) continue;
      const double* UPDEC_RESTRICT brow = B.row(p);
      UPDEC_PRAGMA_SIMD
      for (std::size_t j = 0; j < n; ++j) crow[j] += aip * brow[j];
    }
  }
}

Matrix matmul(const Matrix& A, const Matrix& B) {
  Matrix C(A.rows(), B.cols());
  gemm(1.0, A, B, 0.0, C);
  return C;
}

double nrm_fro(const Matrix& A) {
  const double* UPDEC_RESTRICT p = A.data();
  const std::size_t n = A.rows() * A.cols();
  double s = 0.0;
  UPDEC_PRAGMA_SIMD_REDUCTION(+ : s)
  for (std::size_t i = 0; i < n; ++i) s += p[i] * p[i];
  return std::sqrt(s);
}

double residual_norm(const Matrix& A, const Vector& x, const Vector& b) {
  Vector r = b;
  gemv(-1.0, A, x, 1.0, r);
  return nrm2(r);
}

}  // namespace updec::la
