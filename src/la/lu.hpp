#pragma once
/// \file lu.hpp
/// \brief LU factorisation with partial pivoting.
///
/// The collocation matrix of a (linear) RBF problem depends only on the node
/// layout, not on the control, so a single factorisation is reused for every
/// optimisation iteration, every adjoint solve (A^T x = b) and every VJP the
/// autodiff tape requests. That reuse is what makes both DAL and DP cheap on
/// the Laplace problem.

#include <cstdint>
#include <vector>

#include "la/dense.hpp"

namespace updec::la {

/// PA = LU factorisation holder; solves with A and A^T.
class LuFactorization {
 public:
  LuFactorization() = default;

  /// Factor a square matrix. Throws updec::Error if singular to working
  /// precision.
  explicit LuFactorization(Matrix a);

  /// Solve A x = b.
  [[nodiscard]] Vector solve(const Vector& b) const;

  /// Solve A^T x = b (used by adjoint/VJP paths).
  [[nodiscard]] Vector solve_transpose(const Vector& b) const;

  /// Solve for many right-hand sides stored as columns of B. The pivot
  /// permutation is applied once as whole-row gathers and the triangular
  /// sweeps run row-major across all columns simultaneously, so k solves
  /// cost one pass over L/U instead of k per-column passes -- the batched
  /// path the serve-layer operator cache and the FD probe batching use.
  [[nodiscard]] Matrix solve_many(const Matrix& b) const;

  /// Determinant from the factorisation (sign of the permutation included).
  [[nodiscard]] double determinant() const;

  /// 1-norm condition estimate kappa_1(A) ~= ||A||_1 * est(||A^-1||_1)
  /// using the classic Hager/Higham power-style estimator.
  [[nodiscard]] double condition_estimate() const;

  [[nodiscard]] std::size_t size() const { return lu_.rows(); }
  [[nodiscard]] bool valid() const { return !lu_.empty(); }

  // Serialization access (serve-layer disk cache): the packed factors, the
  // pivot permutation, its sign and the cached 1-norm fully determine the
  // factorisation, so a round trip through from_parts() is bit-exact.
  [[nodiscard]] const Matrix& packed() const { return lu_; }
  [[nodiscard]] const std::vector<std::size_t>& permutation() const {
    return perm_;
  }
  [[nodiscard]] int permutation_sign() const { return perm_sign_; }
  [[nodiscard]] double source_norm1() const { return a_norm1_; }

  /// Reassemble a factorisation from previously extracted parts without
  /// re-running the O(N^3) elimination. Throws updec::Error on
  /// inconsistent shapes or a non-permutation pivot vector.
  [[nodiscard]] static LuFactorization from_parts(
      Matrix packed, std::vector<std::size_t> perm, int perm_sign,
      double a_norm1);

 private:
  void forward_substitute(Vector& x) const;   // L y = Pb
  void backward_substitute(Vector& x) const;  // U x = y

  Matrix lu_;                      // packed L (unit diag) and U
  std::vector<std::size_t> perm_;  // row permutation
  int perm_sign_ = 1;
  double a_norm1_ = 0.0;  // 1-norm of the original matrix (for cond est)
};

/// One-shot dense solve (factor + solve). Prefer LuFactorization for reuse.
[[nodiscard]] Vector solve(Matrix a, const Vector& b);

/// One-shot multi-RHS dense solve: factor once, then the batched
/// solve_many() sweep over all columns of B.
[[nodiscard]] Matrix lu_solve_many(Matrix a, const Matrix& b);

}  // namespace updec::la
