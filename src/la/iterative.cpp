#include "la/iterative.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <utility>

#ifdef UPDEC_HAVE_OPENMP
#include <omp.h>
#endif

#include "la/blas.hpp"
#include "la/simd.hpp"
#include "util/env.hpp"
#include "util/faultinject.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace updec::la {

const IterativeResult& IterativeResult::require_converged(
    const char* context) const {
  if (!converged) {
    std::ostringstream os;
    os << context << ": iterative solve did not converge (residual "
       << residual_norm << " after " << iterations << " iterations)";
    throw Error(os.str());
  }
  return *this;
}

Preconditioner identity_preconditioner() {
  return [](const Vector& r, Vector& z) { z = r; };
}

Preconditioner jacobi_preconditioner(const CsrMatrix& a) {
  Vector inv_diag = a.diagonal();
  std::size_t zeros = 0;
  std::size_t first_zero = 0;
  for (std::size_t i = 0; i < inv_diag.size(); ++i) {
    if (inv_diag[i] != 0.0) {
      inv_diag[i] = 1.0 / inv_diag[i];
    } else {
      if (zeros == 0) first_zero = i;
      ++zeros;
      inv_diag[i] = 1.0;
    }
  }
  if (zeros > 0)
    log_warn() << "jacobi_preconditioner: " << zeros
               << " zero diagonal entr" << (zeros == 1 ? "y" : "ies")
               << " (first at row " << first_zero
               << ") substituted with identity";
  return [inv_diag](const Vector& r, Vector& z) {
    z.resize(r.size());
    for (std::size_t i = 0; i < r.size(); ++i) z[i] = inv_diag[i] * r[i];
  };
}

bool ilu_level_schedule_from_env() {
  return env::get_bool("UPDEC_ILU_LEVELS", true);
}

std::size_t ilu_level_min_rows_from_env() {
  return static_cast<std::size_t>(env::get_u64("UPDEC_ILU_LEVEL_MIN_ROWS", 64));
}

namespace {

/// Counting-sort rows into level buckets; rows within a level stay in
/// ascending row order, which makes the sweep order (and therefore the
/// floating-point result) independent of how levels are later parallelised.
void bucket_levels(const std::vector<std::size_t>& depth, std::size_t nlev,
                   std::vector<std::size_t>& level_ptr,
                   std::vector<std::size_t>& level_rows) {
  const std::size_t n = depth.size();
  level_ptr.assign(nlev + 1, 0);
  for (std::size_t i = 0; i < n; ++i) ++level_ptr[depth[i] + 1];
  for (std::size_t l = 0; l < nlev; ++l) level_ptr[l + 1] += level_ptr[l];
  level_rows.resize(n);
  std::vector<std::size_t> cursor(level_ptr.begin(), level_ptr.end() - 1);
  for (std::size_t i = 0; i < n; ++i) level_rows[cursor[depth[i]]++] = i;
}

/// Run `row_fn` over every row of every level, parallelising a level only
/// when it holds at least `min_rows` rows. Rows within a level are mutually
/// independent (each reads z only at shallower levels and writes its own
/// entry), so the schedule cannot change the per-row arithmetic.
template <typename RowFn>
void sweep_levels(const std::vector<std::size_t>& level_ptr,
                  const std::vector<std::size_t>& level_rows,
                  std::size_t min_rows, const RowFn& row_fn) {
  const std::size_t nlev = level_ptr.size() - 1;
  for (std::size_t l = 0; l < nlev; ++l) {
    const std::size_t begin = level_ptr[l];
    const std::size_t end = level_ptr[l + 1];
#ifdef UPDEC_HAVE_OPENMP
    if (end - begin >= min_rows && min_rows > 0) {
#pragma omp parallel for schedule(static)
      for (std::ptrdiff_t p = static_cast<std::ptrdiff_t>(begin);
           p < static_cast<std::ptrdiff_t>(end); ++p)
        row_fn(level_rows[static_cast<std::size_t>(p)]);
      continue;
    }
#endif
    for (std::size_t p = begin; p < end; ++p) row_fn(level_rows[p]);
  }
}

/// Level-order sweeps only pay off when more than one thread can take a
/// level; with a single thread the bucket indirection breaks the streaming
/// access pattern of the plain ascending/descending row sweep for nothing.
bool level_sweep_worthwhile() {
#ifdef UPDEC_HAVE_OPENMP
  return omp_get_max_threads() > 1;
#else
  return false;
#endif
}

}  // namespace

void Ilu0::finalize(Data& data, const Ilu0Options& options,
                    const char* context) {
  const std::size_t n = data.lu.rows();
  const auto& row_ptr = data.lu.row_ptr();
  const auto& col_idx = data.lu.col_idx();
  data.diag.assign(n, static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k)
      if (col_idx[k] == i) data.diag[i] = k;
    UPDEC_REQUIRE(data.diag[i] != static_cast<std::size_t>(-1), context);
  }
  // Eager fp32 shadow of the factor values. Exact element-wise casts: the
  // serve codec stores these floats and regenerates them from the widened
  // doubles, so double(float(v)) round trips bit-exactly.
  const auto& values = data.lu.values();
  data.values_f32.resize(values.size());
  for (std::size_t k = 0; k < values.size(); ++k)
    data.values_f32[k] = static_cast<float>(values[k]);
  // Compact apply-side structure: 32-bit gather indices and diagonal
  // reciprocals (the clamped factorisation guarantees nonzero diagonals).
  UPDEC_REQUIRE(n <= std::numeric_limits<std::uint32_t>::max(),
                "ILU(0): row count exceeds the 32-bit apply index space");
  data.col32.resize(col_idx.size());
  for (std::size_t k = 0; k < col_idx.size(); ++k)
    data.col32[k] = static_cast<std::uint32_t>(col_idx[k]);
  data.inv_diag.resize(n);
  data.inv_diag_f32.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    data.inv_diag[i] = 1.0 / values[data.diag[i]];
    data.inv_diag_f32[i] = 1.0f / data.values_f32[data.diag[i]];
  }
  data.level_min_rows = options.level_min_rows;
  if (!options.level_schedule || n == 0) return;
  // Forward (L) dependency depth: row i waits on every column strictly left
  // of its diagonal. Ascending order guarantees deps are already ranked.
  std::vector<std::size_t> depth(n, 0);
  std::size_t nlev_f = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t d = 0;
    for (std::size_t k = row_ptr[i]; k < data.diag[i]; ++k)
      d = std::max(d, depth[col_idx[k]] + 1);
    depth[i] = d;
    nlev_f = std::max(nlev_f, d + 1);
  }
  bucket_levels(depth, nlev_f, data.flevel_ptr, data.flevel_rows);
  // Backward (U) depth: deps are right of the diagonal; descending order.
  std::size_t nlev_b = 0;
  for (std::size_t ii = n; ii-- > 0;) {
    std::size_t d = 0;
    for (std::size_t k = data.diag[ii] + 1; k < row_ptr[ii + 1]; ++k)
      d = std::max(d, depth[col_idx[k]] + 1);
    depth[ii] = d;
    nlev_b = std::max(nlev_b, d + 1);
  }
  bucket_levels(depth, nlev_b, data.blevel_ptr, data.blevel_rows);
  UPDEC_METRIC_GAUGE_SET("la/ilu.levels", static_cast<double>(nlev_f));
}

Ilu0::Ilu0(const CsrMatrix& a, const Ilu0Options& options) {
  UPDEC_REQUIRE(a.rows() == a.cols(), "ILU(0) requires a square matrix");
  const std::size_t n = a.rows();
  // Copy A; factor in place restricted to A's sparsity pattern (IKJ variant).
  std::vector<std::size_t> row_ptr = a.row_ptr();
  std::vector<std::size_t> col_idx = a.col_idx();
  std::vector<double> values = a.values();
  std::vector<std::size_t> diag_(n, static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k)
      if (col_idx[k] == i) diag_[i] = k;
    UPDEC_REQUIRE(diag_[i] != static_cast<std::size_t>(-1),
                  "ILU(0) requires a structurally nonzero diagonal");
  }
  // Small-pivot guard: pivots below this fraction of the largest diagonal
  // magnitude are clamped (with a warning) instead of dividing by ~0 and
  // poisoning the preconditioner with huge or non-finite entries.
  double diag_scale = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    diag_scale = std::max(diag_scale, std::abs(values[diag_[i]]));
  const double pivot_floor =
      (diag_scale > 0.0 ? diag_scale : 1.0) * kSmallPivotRelThreshold;
  const auto guarded_pivot = [&](std::size_t row) {
    double& pivot = values[diag_[row]];
    if (std::abs(pivot) < pivot_floor) {
      log_warn() << "ILU(0): small pivot " << pivot << " at row " << row
                 << "; clamping to " << pivot_floor;
      pivot = (pivot < 0.0) ? -pivot_floor : pivot_floor;
    }
    return pivot;
  };
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t k = row_ptr[i];
         k < row_ptr[i + 1] && col_idx[k] < i; ++k) {
      const std::size_t j = col_idx[k];
      const double lij = values[k] / guarded_pivot(j);
      values[k] = lij;
      // Subtract lij * row j from row i on the shared pattern only.
      for (std::size_t kj = diag_[j] + 1; kj < row_ptr[j + 1]; ++kj) {
        const std::size_t col = col_idx[kj];
        // Find `col` in row i (both rows are column-sorted).
        const auto begin =
            col_idx.begin() + static_cast<std::ptrdiff_t>(row_ptr[i]);
        const auto end =
            col_idx.begin() + static_cast<std::ptrdiff_t>(row_ptr[i + 1]);
        const auto it = std::lower_bound(begin, end, col);
        if (it != end && *it == col)
          values[static_cast<std::size_t>(it - col_idx.begin())] -=
              lij * values[kj];
      }
    }
  }
  // The back-substitution divides by every diagonal entry, including rows
  // never visited as pivots above (e.g. the last row): clamp them all.
  for (std::size_t i = 0; i < n; ++i) guarded_pivot(i);
  auto data = std::make_shared<Data>();
  data->lu = CsrMatrix(n, n, std::move(row_ptr), std::move(col_idx),
                       std::move(values));
  finalize(*data, options, "ILU(0) requires a structurally nonzero diagonal");
  data_ = std::move(data);
}

Ilu0 Ilu0::from_factors(CsrMatrix lu, const Ilu0Options& options) {
  UPDEC_REQUIRE(lu.rows() == lu.cols(),
                "Ilu0::from_factors: factors must be square");
  Ilu0 ilu;
  auto data = std::make_shared<Data>();
  data->lu = std::move(lu);
  finalize(*data, options, "Ilu0::from_factors: structurally missing diagonal");
  ilu.data_ = std::move(data);
  return ilu;
}

void Ilu0::apply_impl(const Data& data, const Vector& r, Vector& z) {
  const std::size_t n = data.lu.rows();
  UPDEC_REQUIRE(r.size() == n, "ILU(0) apply size mismatch");
  z = r;
  const std::size_t* row_ptr = data.lu.row_ptr().data();
  const std::uint32_t* col = data.col32.data();
  const double* values = data.lu.values().data();
  const std::size_t* diag = data.diag.data();
  const double* inv_diag = data.inv_diag.data();
  double* zp = z.data();
  // Forward solve L y = r (unit diagonal, entries strictly left of diag).
  const auto forward_row = [&](std::size_t i) {
    double s = zp[i];
    for (std::size_t k = row_ptr[i]; k < diag[i]; ++k)
      s -= values[k] * zp[col[k]];
    zp[i] = s;
  };
  // Backward solve U z = y (reciprocal multiply, see Data::inv_diag).
  const auto backward_row = [&](std::size_t i) {
    double s = zp[i];
    for (std::size_t k = diag[i] + 1; k < row_ptr[i + 1]; ++k)
      s -= values[k] * zp[col[k]];
    zp[i] = s * inv_diag[i];
  };
  if (data.flevel_ptr.empty() || !level_sweep_worthwhile()) {
    for (std::size_t i = 0; i < n; ++i) forward_row(i);
    for (std::size_t ii = n; ii-- > 0;) backward_row(ii);
    return;
  }
  sweep_levels(data.flevel_ptr, data.flevel_rows, data.level_min_rows,
               forward_row);
  sweep_levels(data.blevel_ptr, data.blevel_rows, data.level_min_rows,
               backward_row);
}

void Ilu0::apply_impl_f32(const Data& data, const Vector& r, Vector& z) {
  const std::size_t n = data.lu.rows();
  UPDEC_REQUIRE(r.size() == n, "ILU(0) apply size mismatch");
  const std::size_t* row_ptr = data.lu.row_ptr().data();
  const std::uint32_t* col = data.col32.data();
  const float* values = data.values_f32.data();
  const std::size_t* diag = data.diag.data();
  const float* inv_diag = data.inv_diag_f32.data();
  // Whole sweep in fp32: narrow the residual once, run both triangular
  // solves on the fp32 factors and workspace, widen once on the way out.
  // Halves the bytes moved on this bandwidth-bound path; any lost accuracy
  // only costs Krylov iterations since the solvers check fp64 residuals.
  // The workspace is thread_local so back-to-back applies (hundreds per
  // Krylov solve) reuse one allocation without breaking const-threading.
  static thread_local std::vector<float> zf;
  zf.resize(n);
  for (std::size_t i = 0; i < n; ++i) zf[i] = static_cast<float>(r[i]);
  float* zp = zf.data();
  const auto forward_row = [&](std::size_t i) {
    float s = zp[i];
    for (std::size_t k = row_ptr[i]; k < diag[i]; ++k)
      s -= values[k] * zp[col[k]];
    zp[i] = s;
  };
  const auto backward_row = [&](std::size_t i) {
    float s = zp[i];
    for (std::size_t k = diag[i] + 1; k < row_ptr[i + 1]; ++k)
      s -= values[k] * zp[col[k]];
    zp[i] = s * inv_diag[i];
  };
  if (data.flevel_ptr.empty() || !level_sweep_worthwhile()) {
    for (std::size_t i = 0; i < n; ++i) forward_row(i);
    for (std::size_t ii = n; ii-- > 0;) backward_row(ii);
  } else {
    sweep_levels(data.flevel_ptr, data.flevel_rows, data.level_min_rows,
                 forward_row);
    sweep_levels(data.blevel_ptr, data.blevel_rows, data.level_min_rows,
                 backward_row);
  }
  z.resize(n);
  for (std::size_t i = 0; i < n; ++i) z[i] = static_cast<double>(zf[i]);
}

void Ilu0::apply(const Vector& r, Vector& z) const { apply_impl(*data_, r, z); }

void Ilu0::apply_f32(const Vector& r, Vector& z) const {
  apply_impl_f32(*data_, r, z);
}

std::size_t Ilu0::levels() const {
  return data_->flevel_ptr.empty() ? 0 : data_->flevel_ptr.size() - 1;
}

Preconditioner Ilu0::as_preconditioner(bool use_f32) const {
  // Share the factorisation: the closure pins the immutable Data block, so
  // this is O(1) instead of an O(nnz) CSR deep copy per call, and the closure
  // outlives this Ilu0 safely.
  if (use_f32)
    return [data = data_](const Vector& r, Vector& z) {
      apply_impl_f32(*data, r, z);
    };
  return [data = data_](const Vector& r, Vector& z) {
    apply_impl(*data, r, z);
  };
}

namespace {
double stop_threshold(const IterativeOptions& opts, double b_norm) {
  return std::max(opts.abs_tol, opts.rel_tol * b_norm);
}
}  // namespace

static IterativeResult cg_body(const CsrMatrix& a, const Vector& b,
                               const IterativeOptions& opts,
                               const Preconditioner& precond,
                               std::optional<Vector> x0) {
  const std::size_t n = b.size();
  IterativeResult res;
  res.x = x0.value_or(Vector(n, 0.0));
  if (UPDEC_FAULT_POINT("cg.converge")) {
    res.residual_norm = nrm2(b);
    res.iterations = opts.max_iterations;
    return res;
  }
  Vector r = b;
  a.spmv(-1.0, res.x, 1.0, r);
  Vector z(n);
  precond(r, z);
  Vector p = z;
  double rz = dot(r, z);
  const double tol = stop_threshold(opts, nrm2(b));
  Vector ap(n);
  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    res.residual_norm = nrm2(r);
    if (res.residual_norm <= tol) {
      res.converged = true;
      res.iterations = it;
      return res;
    }
    a.spmv(1.0, p, 0.0, ap);
    const double pap = dot(p, ap);
    UPDEC_REQUIRE(pap > 0.0, "CG breakdown: matrix not SPD");
    const double alpha = rz / pap;
    axpy(alpha, p, res.x);
    axpy(-alpha, ap, r);
    precond(r, z);
    const double rz_new = dot(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    double* UPDEC_RESTRICT pp = p.data();
    const double* UPDEC_RESTRICT zp = z.data();
    UPDEC_PRAGMA_SIMD
    for (std::size_t i = 0; i < n; ++i) pp[i] = zp[i] + beta * pp[i];
  }
  res.residual_norm = nrm2(r);
  res.iterations = opts.max_iterations;
  res.converged = res.residual_norm <= tol;
  return res;
}

static IterativeResult bicgstab_body(const CsrMatrix& a, const Vector& b,
                                     const IterativeOptions& opts,
                                     const Preconditioner& precond,
                                     std::optional<Vector> x0) {
  const std::size_t n = b.size();
  IterativeResult res;
  res.x = x0.value_or(Vector(n, 0.0));
  if (UPDEC_FAULT_POINT("bicgstab.converge")) {
    res.residual_norm = nrm2(b);
    res.iterations = opts.max_iterations;
    return res;
  }
  Vector r = b;
  a.spmv(-1.0, res.x, 1.0, r);
  const Vector r_hat = r;
  double rho = 1.0, alpha = 1.0, omega = 1.0;
  Vector v(n, 0.0), p(n, 0.0), s(n), t(n), phat(n), shat(n);
  const double tol = stop_threshold(opts, nrm2(b));
  // On breakdown (a recurrence scalar hits exactly zero) the loop exits with
  // res.breakdown set and res.iterations holding the number of update steps
  // actually completed -- NOT opts.max_iterations, which would misreport a
  // step-2 breakdown as a full-budget run in SolveReport and metrics.
  std::size_t completed = 0;
  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    completed = it;
    res.residual_norm = nrm2(r);
    if (res.residual_norm <= tol) {
      res.converged = true;
      res.iterations = it;
      return res;
    }
    const double rho_new = dot(r_hat, r);
    if (rho_new == 0.0) {
      res.breakdown = true;
      break;
    }
    const double beta = (rho_new / rho) * (alpha / omega);
    rho = rho_new;
    {
      double* UPDEC_RESTRICT pp = p.data();
      const double* UPDEC_RESTRICT rp = r.data();
      const double* UPDEC_RESTRICT vp = v.data();
      UPDEC_PRAGMA_SIMD
      for (std::size_t i = 0; i < n; ++i)
        pp[i] = rp[i] + beta * (pp[i] - omega * vp[i]);
    }
    precond(p, phat);
    a.spmv(1.0, phat, 0.0, v);
    const double rhat_v = dot(r_hat, v);
    if (rhat_v == 0.0) {
      res.breakdown = true;
      break;
    }
    alpha = rho / rhat_v;
    {
      double* UPDEC_RESTRICT sp = s.data();
      const double* UPDEC_RESTRICT rp = r.data();
      const double* UPDEC_RESTRICT vp = v.data();
      UPDEC_PRAGMA_SIMD
      for (std::size_t i = 0; i < n; ++i) sp[i] = rp[i] - alpha * vp[i];
    }
    if (nrm2(s) <= tol) {
      axpy(alpha, phat, res.x);
      r = s;
      res.converged = true;
      res.iterations = it + 1;
      res.residual_norm = nrm2(r);
      return res;
    }
    precond(s, shat);
    a.spmv(1.0, shat, 0.0, t);
    const double tt = dot(t, t);
    if (tt == 0.0) {
      res.breakdown = true;
      break;
    }
    omega = dot(t, s) / tt;
    if (omega == 0.0) {
      res.breakdown = true;
      break;
    }
    {
      double* UPDEC_RESTRICT xp = res.x.data();
      double* UPDEC_RESTRICT rp = r.data();
      const double* UPDEC_RESTRICT php = phat.data();
      const double* UPDEC_RESTRICT shp = shat.data();
      const double* UPDEC_RESTRICT sp = s.data();
      const double* UPDEC_RESTRICT tp = t.data();
      UPDEC_PRAGMA_SIMD
      for (std::size_t i = 0; i < n; ++i) {
        xp[i] += alpha * php[i] + omega * shp[i];
        rp[i] = sp[i] - omega * tp[i];
      }
    }
    completed = it + 1;
  }
  res.residual_norm = nrm2(r);
  res.iterations = res.breakdown ? completed : opts.max_iterations;
  res.converged = res.residual_norm <= tol;
  return res;
}

static IterativeResult gmres_body(const CsrMatrix& a, const Vector& b,
                                  const IterativeOptions& opts,
                                  const Preconditioner& precond,
                                  std::optional<Vector> x0) {
  const std::size_t n = b.size();
  const std::size_t m = std::min(opts.gmres_restart, n);
  IterativeResult res;
  res.x = x0.value_or(Vector(n, 0.0));
  if (UPDEC_FAULT_POINT("gmres.converge")) {
    res.residual_norm = nrm2(b);
    res.iterations = opts.max_iterations;
    return res;
  }
  const double tol = stop_threshold(opts, nrm2(b));
  std::size_t total_iters = 0;

  Vector r(n), z(n), w(n), zw(n);
  // True-residual watermark across restarts. The inner Arnoldi exit tests
  // |g[k+1]|, a *preconditioned*-norm estimate, against the true-norm tol:
  // when M^{-1} shrinks the residual far below its true norm, every restart
  // cycle exits after one step without converging in the true norm. Guard
  // against that livelock by bailing out once a whole restart cycle fails
  // to reduce the true residual (the escalation chain picks it up).
  double last_restart_residual = std::numeric_limits<double>::infinity();
  while (total_iters < opts.max_iterations) {
    r = b;
    a.spmv(-1.0, res.x, 1.0, r);
    precond(r, z);
    const double beta = nrm2(z);
    res.residual_norm = nrm2(r);
    if (res.residual_norm <= tol || beta == 0.0) {
      res.converged = res.residual_norm <= tol;
      res.iterations = total_iters;
      return res;
    }
    if (!(res.residual_norm < last_restart_residual)) break;  // stagnated
    last_restart_residual = res.residual_norm;
    // Arnoldi with modified Gram-Schmidt.
    std::vector<Vector> v;
    v.reserve(m + 1);
    v.push_back((1.0 / beta) * z);
    Matrix h(m + 1, m, 0.0);
    Vector g(m + 1, 0.0);
    g[0] = beta;
    Vector cs(m, 0.0), sn(m, 0.0);
    std::size_t k = 0;
    for (; k < m && total_iters < opts.max_iterations; ++k, ++total_iters) {
      a.spmv(1.0, v[k], 0.0, w);
      precond(w, zw);
      Vector vk1 = zw;
      // Modified Gram-Schmidt, pipelined: each pass applies the previous
      // projection while computing the next coefficient, so every basis
      // vector is streamed once per role instead of once for the dot and
      // again for the axpy. Arithmetic per element is unchanged from the
      // textbook dot-then-axpy MGS (subtract j-1's component, then dot
      // with v[j]), only the loop structure is fused.
      {
        double* UPDEC_RESTRICT wp = vk1.data();
        const double* prev = nullptr;
        double h_prev = 0.0;
        for (std::size_t j = 0; j <= k; ++j) {
          const double* UPDEC_RESTRICT vj = v[j].data();
          double s = 0.0;
          if (prev == nullptr) {
            UPDEC_PRAGMA_SIMD_REDUCTION(+ : s)
            for (std::size_t i = 0; i < n; ++i) s += wp[i] * vj[i];
          } else {
            const double* UPDEC_RESTRICT vp = prev;
            const double hp = h_prev;
            UPDEC_PRAGMA_SIMD_REDUCTION(+ : s)
            for (std::size_t i = 0; i < n; ++i) {
              const double wi = wp[i] - hp * vp[i];
              wp[i] = wi;
              s += wi * vj[i];
            }
          }
          h(j, k) = s;
          prev = vj;
          h_prev = s;
        }
        // Final pass: apply the last projection and take the norm in one go.
        const double* UPDEC_RESTRICT vp = prev;
        const double hp = h_prev;
        double s = 0.0;
        UPDEC_PRAGMA_SIMD_REDUCTION(+ : s)
        for (std::size_t i = 0; i < n; ++i) {
          const double wi = wp[i] - hp * vp[i];
          wp[i] = wi;
          s += wi * wi;
        }
        h(k + 1, k) = std::sqrt(s);
      }
      if (h(k + 1, k) != 0.0) scal(1.0 / h(k + 1, k), vk1);
      v.push_back(std::move(vk1));
      // Apply accumulated Givens rotations, then compute a new one.
      for (std::size_t j = 0; j < k; ++j) {
        const double t1 = cs[j] * h(j, k) + sn[j] * h(j + 1, k);
        const double t2 = -sn[j] * h(j, k) + cs[j] * h(j + 1, k);
        h(j, k) = t1;
        h(j + 1, k) = t2;
      }
      const double denom =
          std::sqrt(h(k, k) * h(k, k) + h(k + 1, k) * h(k + 1, k));
      if (denom == 0.0) {
        cs[k] = 1.0;
        sn[k] = 0.0;
      } else {
        cs[k] = h(k, k) / denom;
        sn[k] = h(k + 1, k) / denom;
      }
      h(k, k) = cs[k] * h(k, k) + sn[k] * h(k + 1, k);
      h(k + 1, k) = 0.0;
      g[k + 1] = -sn[k] * g[k];
      g[k] = cs[k] * g[k];
      if (std::abs(g[k + 1]) <= tol) {
        // Count this step: `break` skips the for-increment, and an uncounted
        // step here used to let deceptive preconditioned-norm exits spin the
        // restart loop forever without ever advancing total_iters.
        ++k;
        ++total_iters;
        break;
      }
    }
    // Back-substitute H y = g on the k-by-k leading block.
    Vector y(k, 0.0);
    for (std::size_t ii = k; ii-- > 0;) {
      double s = g[ii];
      for (std::size_t j = ii + 1; j < k; ++j) s -= h(ii, j) * y[j];
      UPDEC_REQUIRE(h(ii, ii) != 0.0, "GMRES breakdown: singular Hessenberg");
      y[ii] = s / h(ii, ii);
    }
    for (std::size_t j = 0; j < k; ++j) axpy(y[j], v[j], res.x);
  }
  r = b;
  a.spmv(-1.0, res.x, 1.0, r);
  res.residual_norm = nrm2(r);
  res.iterations = total_iters;
  res.converged = res.residual_norm <= tol;
  return res;
}

/// Aggregate a Krylov solve into the metrics registry under `span`
/// ("<span>.calls" / ".iterations" / ".failures").
static IterativeResult record_solve(const char* span, IterativeResult res) {
  if (metrics::enabled()) {
    const std::string base(span);
    metrics::counter_add((base + ".calls").c_str());
    metrics::counter_add((base + ".iterations").c_str(), res.iterations);
    if (!res.converged) metrics::counter_add((base + ".failures").c_str());
    if (res.breakdown) metrics::counter_add((base + ".breakdowns").c_str());
  }
  return res;
}

IterativeResult cg(const CsrMatrix& a, const Vector& b,
                   const IterativeOptions& opts, const Preconditioner& precond,
                   std::optional<Vector> x0) {
  UPDEC_TRACE_SCOPE("la/cg");
  return record_solve("la/cg", cg_body(a, b, opts, precond, std::move(x0)));
}

IterativeResult bicgstab(const CsrMatrix& a, const Vector& b,
                         const IterativeOptions& opts,
                         const Preconditioner& precond,
                         std::optional<Vector> x0) {
  UPDEC_TRACE_SCOPE("la/bicgstab");
  return record_solve("la/bicgstab",
                      bicgstab_body(a, b, opts, precond, std::move(x0)));
}

IterativeResult gmres(const CsrMatrix& a, const Vector& b,
                      const IterativeOptions& opts,
                      const Preconditioner& precond,
                      std::optional<Vector> x0) {
  UPDEC_TRACE_SCOPE("la/gmres");
  return record_solve("la/gmres",
                      gmres_body(a, b, opts, precond, std::move(x0)));
}

const BatchedIterativeResult& BatchedIterativeResult::require_converged(
    const char* context) const {
  if (!all_converged()) {
    std::ostringstream os;
    os << context << ": " << (columns - converged_columns) << " of " << columns
       << " batched solves did not converge (worst residual "
       << max_residual_norm << ")";
    throw Error(os.str());
  }
  return *this;
}

namespace {

/// Column-by-column driver shared by the *_many wrappers: the operator and
/// preconditioner are fixed, only the RHS varies, so the per-column cost is
/// pure Krylov work (no preconditioner rebuild).
template <typename SolveFn>
BatchedIterativeResult solve_columns(const CsrMatrix& a, const Matrix& b,
                                     const SolveFn& solve) {
  UPDEC_REQUIRE(b.rows() == a.rows(), "batched solve dimension mismatch");
  BatchedIterativeResult out;
  out.columns = b.cols();
  out.x = Matrix(b.rows(), b.cols());
  Vector rhs(b.rows());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    for (std::size_t i = 0; i < b.rows(); ++i) rhs[i] = b(i, j);
    const IterativeResult res = solve(rhs);
    for (std::size_t i = 0; i < b.rows(); ++i) out.x(i, j) = res.x[i];
    if (res.converged) ++out.converged_columns;
    out.total_iterations += res.iterations;
    out.max_residual_norm = std::max(out.max_residual_norm, res.residual_norm);
  }
  return out;
}

}  // namespace

BatchedIterativeResult cg_many(const CsrMatrix& a, const Matrix& b,
                               const IterativeOptions& opts,
                               const Preconditioner& precond) {
  return solve_columns(a, b, [&](const Vector& rhs) {
    return cg(a, rhs, opts, precond);
  });
}

BatchedIterativeResult bicgstab_many(const CsrMatrix& a, const Matrix& b,
                                     const IterativeOptions& opts,
                                     const Preconditioner& precond) {
  return solve_columns(a, b, [&](const Vector& rhs) {
    return bicgstab(a, rhs, opts, precond);
  });
}

BatchedIterativeResult gmres_many(const CsrMatrix& a, const Matrix& b,
                                  const IterativeOptions& opts,
                                  const Preconditioner& precond) {
  return solve_columns(a, b, [&](const Vector& rhs) {
    return gmres(a, rhs, opts, precond);
  });
}

}  // namespace updec::la
