#include "la/iterative.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <utility>

#include "la/blas.hpp"
#include "util/faultinject.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace updec::la {

const IterativeResult& IterativeResult::require_converged(
    const char* context) const {
  if (!converged) {
    std::ostringstream os;
    os << context << ": iterative solve did not converge (residual "
       << residual_norm << " after " << iterations << " iterations)";
    throw Error(os.str());
  }
  return *this;
}

Preconditioner identity_preconditioner() {
  return [](const Vector& r, Vector& z) { z = r; };
}

Preconditioner jacobi_preconditioner(const CsrMatrix& a) {
  Vector inv_diag = a.diagonal();
  std::size_t zeros = 0;
  std::size_t first_zero = 0;
  for (std::size_t i = 0; i < inv_diag.size(); ++i) {
    if (inv_diag[i] != 0.0) {
      inv_diag[i] = 1.0 / inv_diag[i];
    } else {
      if (zeros == 0) first_zero = i;
      ++zeros;
      inv_diag[i] = 1.0;
    }
  }
  if (zeros > 0)
    log_warn() << "jacobi_preconditioner: " << zeros
               << " zero diagonal entr" << (zeros == 1 ? "y" : "ies")
               << " (first at row " << first_zero
               << ") substituted with identity";
  return [inv_diag](const Vector& r, Vector& z) {
    z.resize(r.size());
    for (std::size_t i = 0; i < r.size(); ++i) z[i] = inv_diag[i] * r[i];
  };
}

Ilu0::Ilu0(const CsrMatrix& a) {
  UPDEC_REQUIRE(a.rows() == a.cols(), "ILU(0) requires a square matrix");
  const std::size_t n = a.rows();
  // Copy A; factor in place restricted to A's sparsity pattern (IKJ variant).
  std::vector<std::size_t> row_ptr = a.row_ptr();
  std::vector<std::size_t> col_idx = a.col_idx();
  std::vector<double> values = a.values();
  std::vector<std::size_t> diag_(n, static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k)
      if (col_idx[k] == i) diag_[i] = k;
    UPDEC_REQUIRE(diag_[i] != static_cast<std::size_t>(-1),
                  "ILU(0) requires a structurally nonzero diagonal");
  }
  // Small-pivot guard: pivots below this fraction of the largest diagonal
  // magnitude are clamped (with a warning) instead of dividing by ~0 and
  // poisoning the preconditioner with huge or non-finite entries.
  double diag_scale = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    diag_scale = std::max(diag_scale, std::abs(values[diag_[i]]));
  const double pivot_floor =
      (diag_scale > 0.0 ? diag_scale : 1.0) * kSmallPivotRelThreshold;
  const auto guarded_pivot = [&](std::size_t row) {
    double& pivot = values[diag_[row]];
    if (std::abs(pivot) < pivot_floor) {
      log_warn() << "ILU(0): small pivot " << pivot << " at row " << row
                 << "; clamping to " << pivot_floor;
      pivot = (pivot < 0.0) ? -pivot_floor : pivot_floor;
    }
    return pivot;
  };
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t k = row_ptr[i];
         k < row_ptr[i + 1] && col_idx[k] < i; ++k) {
      const std::size_t j = col_idx[k];
      const double lij = values[k] / guarded_pivot(j);
      values[k] = lij;
      // Subtract lij * row j from row i on the shared pattern only.
      for (std::size_t kj = diag_[j] + 1; kj < row_ptr[j + 1]; ++kj) {
        const std::size_t col = col_idx[kj];
        // Find `col` in row i (both rows are column-sorted).
        const auto begin =
            col_idx.begin() + static_cast<std::ptrdiff_t>(row_ptr[i]);
        const auto end =
            col_idx.begin() + static_cast<std::ptrdiff_t>(row_ptr[i + 1]);
        const auto it = std::lower_bound(begin, end, col);
        if (it != end && *it == col)
          values[static_cast<std::size_t>(it - col_idx.begin())] -=
              lij * values[kj];
      }
    }
  }
  // The back-substitution divides by every diagonal entry, including rows
  // never visited as pivots above (e.g. the last row): clamp them all.
  for (std::size_t i = 0; i < n; ++i) guarded_pivot(i);
  auto data = std::make_shared<Data>();
  data->lu = CsrMatrix(n, n, std::move(row_ptr), std::move(col_idx),
                       std::move(values));
  data->diag = std::move(diag_);
  data_ = std::move(data);
}

Ilu0 Ilu0::from_factors(CsrMatrix lu) {
  UPDEC_REQUIRE(lu.rows() == lu.cols(),
                "Ilu0::from_factors: factors must be square");
  const std::size_t n = lu.rows();
  std::vector<std::size_t> diag(n, static_cast<std::size_t>(-1));
  const auto& row_ptr = lu.row_ptr();
  const auto& col_idx = lu.col_idx();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k)
      if (col_idx[k] == i) diag[i] = k;
    UPDEC_REQUIRE(diag[i] != static_cast<std::size_t>(-1),
                  "Ilu0::from_factors: structurally missing diagonal");
  }
  Ilu0 ilu;
  auto data = std::make_shared<Data>();
  data->lu = std::move(lu);
  data->diag = std::move(diag);
  ilu.data_ = std::move(data);
  return ilu;
}

void Ilu0::apply_impl(const Data& data, const Vector& r, Vector& z) {
  const CsrMatrix& lu = data.lu;
  const std::vector<std::size_t>& diag = data.diag;
  const std::size_t n = lu.rows();
  UPDEC_REQUIRE(r.size() == n, "ILU(0) apply size mismatch");
  z = r;
  const auto& row_ptr = lu.row_ptr();
  const auto& col_idx = lu.col_idx();
  const auto& values = lu.values();
  // Forward solve L y = r (unit diagonal, entries strictly left of diag).
  for (std::size_t i = 0; i < n; ++i) {
    double s = z[i];
    for (std::size_t k = row_ptr[i]; k < diag[i]; ++k)
      s -= values[k] * z[col_idx[k]];
    z[i] = s;
  }
  // Backward solve U z = y.
  for (std::size_t ii = n; ii-- > 0;) {
    double s = z[ii];
    for (std::size_t k = diag[ii] + 1; k < row_ptr[ii + 1]; ++k)
      s -= values[k] * z[col_idx[k]];
    z[ii] = s / values[diag[ii]];
  }
}

void Ilu0::apply(const Vector& r, Vector& z) const { apply_impl(*data_, r, z); }

Preconditioner Ilu0::as_preconditioner() const {
  // Share the factorisation: the closure pins the immutable Data block, so
  // this is O(1) instead of an O(nnz) CSR deep copy per call, and the closure
  // outlives this Ilu0 safely.
  return [data = data_](const Vector& r, Vector& z) {
    apply_impl(*data, r, z);
  };
}

namespace {
double stop_threshold(const IterativeOptions& opts, double b_norm) {
  return std::max(opts.abs_tol, opts.rel_tol * b_norm);
}
}  // namespace

static IterativeResult cg_body(const CsrMatrix& a, const Vector& b,
                               const IterativeOptions& opts,
                               const Preconditioner& precond,
                               std::optional<Vector> x0) {
  const std::size_t n = b.size();
  IterativeResult res;
  res.x = x0.value_or(Vector(n, 0.0));
  if (UPDEC_FAULT_POINT("cg.converge")) {
    res.residual_norm = nrm2(b);
    res.iterations = opts.max_iterations;
    return res;
  }
  Vector r = b;
  a.spmv(-1.0, res.x, 1.0, r);
  Vector z(n);
  precond(r, z);
  Vector p = z;
  double rz = dot(r, z);
  const double tol = stop_threshold(opts, nrm2(b));
  Vector ap(n);
  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    res.residual_norm = nrm2(r);
    if (res.residual_norm <= tol) {
      res.converged = true;
      res.iterations = it;
      return res;
    }
    a.spmv(1.0, p, 0.0, ap);
    const double pap = dot(p, ap);
    UPDEC_REQUIRE(pap > 0.0, "CG breakdown: matrix not SPD");
    const double alpha = rz / pap;
    axpy(alpha, p, res.x);
    axpy(-alpha, ap, r);
    precond(r, z);
    const double rz_new = dot(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  res.residual_norm = nrm2(r);
  res.iterations = opts.max_iterations;
  res.converged = res.residual_norm <= tol;
  return res;
}

static IterativeResult bicgstab_body(const CsrMatrix& a, const Vector& b,
                                     const IterativeOptions& opts,
                                     const Preconditioner& precond,
                                     std::optional<Vector> x0) {
  const std::size_t n = b.size();
  IterativeResult res;
  res.x = x0.value_or(Vector(n, 0.0));
  if (UPDEC_FAULT_POINT("bicgstab.converge")) {
    res.residual_norm = nrm2(b);
    res.iterations = opts.max_iterations;
    return res;
  }
  Vector r = b;
  a.spmv(-1.0, res.x, 1.0, r);
  const Vector r_hat = r;
  double rho = 1.0, alpha = 1.0, omega = 1.0;
  Vector v(n, 0.0), p(n, 0.0), s(n), t(n), phat(n), shat(n);
  const double tol = stop_threshold(opts, nrm2(b));
  // On breakdown (a recurrence scalar hits exactly zero) the loop exits with
  // res.breakdown set and res.iterations holding the number of update steps
  // actually completed -- NOT opts.max_iterations, which would misreport a
  // step-2 breakdown as a full-budget run in SolveReport and metrics.
  std::size_t completed = 0;
  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    completed = it;
    res.residual_norm = nrm2(r);
    if (res.residual_norm <= tol) {
      res.converged = true;
      res.iterations = it;
      return res;
    }
    const double rho_new = dot(r_hat, r);
    if (rho_new == 0.0) {
      res.breakdown = true;
      break;
    }
    const double beta = (rho_new / rho) * (alpha / omega);
    rho = rho_new;
    for (std::size_t i = 0; i < n; ++i)
      p[i] = r[i] + beta * (p[i] - omega * v[i]);
    precond(p, phat);
    a.spmv(1.0, phat, 0.0, v);
    const double rhat_v = dot(r_hat, v);
    if (rhat_v == 0.0) {
      res.breakdown = true;
      break;
    }
    alpha = rho / rhat_v;
    for (std::size_t i = 0; i < n; ++i) s[i] = r[i] - alpha * v[i];
    if (nrm2(s) <= tol) {
      axpy(alpha, phat, res.x);
      r = s;
      res.converged = true;
      res.iterations = it + 1;
      res.residual_norm = nrm2(r);
      return res;
    }
    precond(s, shat);
    a.spmv(1.0, shat, 0.0, t);
    const double tt = dot(t, t);
    if (tt == 0.0) {
      res.breakdown = true;
      break;
    }
    omega = dot(t, s) / tt;
    if (omega == 0.0) {
      res.breakdown = true;
      break;
    }
    for (std::size_t i = 0; i < n; ++i)
      res.x[i] += alpha * phat[i] + omega * shat[i];
    for (std::size_t i = 0; i < n; ++i) r[i] = s[i] - omega * t[i];
    completed = it + 1;
  }
  res.residual_norm = nrm2(r);
  res.iterations = res.breakdown ? completed : opts.max_iterations;
  res.converged = res.residual_norm <= tol;
  return res;
}

static IterativeResult gmres_body(const CsrMatrix& a, const Vector& b,
                                  const IterativeOptions& opts,
                                  const Preconditioner& precond,
                                  std::optional<Vector> x0) {
  const std::size_t n = b.size();
  const std::size_t m = std::min(opts.gmres_restart, n);
  IterativeResult res;
  res.x = x0.value_or(Vector(n, 0.0));
  if (UPDEC_FAULT_POINT("gmres.converge")) {
    res.residual_norm = nrm2(b);
    res.iterations = opts.max_iterations;
    return res;
  }
  const double tol = stop_threshold(opts, nrm2(b));
  std::size_t total_iters = 0;

  Vector r(n), z(n), w(n), zw(n);
  // True-residual watermark across restarts. The inner Arnoldi exit tests
  // |g[k+1]|, a *preconditioned*-norm estimate, against the true-norm tol:
  // when M^{-1} shrinks the residual far below its true norm, every restart
  // cycle exits after one step without converging in the true norm. Guard
  // against that livelock by bailing out once a whole restart cycle fails
  // to reduce the true residual (the escalation chain picks it up).
  double last_restart_residual = std::numeric_limits<double>::infinity();
  while (total_iters < opts.max_iterations) {
    r = b;
    a.spmv(-1.0, res.x, 1.0, r);
    precond(r, z);
    const double beta = nrm2(z);
    res.residual_norm = nrm2(r);
    if (res.residual_norm <= tol || beta == 0.0) {
      res.converged = res.residual_norm <= tol;
      res.iterations = total_iters;
      return res;
    }
    if (!(res.residual_norm < last_restart_residual)) break;  // stagnated
    last_restart_residual = res.residual_norm;
    // Arnoldi with modified Gram-Schmidt.
    std::vector<Vector> v;
    v.reserve(m + 1);
    v.push_back((1.0 / beta) * z);
    Matrix h(m + 1, m, 0.0);
    Vector g(m + 1, 0.0);
    g[0] = beta;
    Vector cs(m, 0.0), sn(m, 0.0);
    std::size_t k = 0;
    for (; k < m && total_iters < opts.max_iterations; ++k, ++total_iters) {
      a.spmv(1.0, v[k], 0.0, w);
      precond(w, zw);
      Vector vk1 = zw;
      for (std::size_t j = 0; j <= k; ++j) {
        h(j, k) = dot(vk1, v[j]);
        axpy(-h(j, k), v[j], vk1);
      }
      h(k + 1, k) = nrm2(vk1);
      if (h(k + 1, k) != 0.0) scal(1.0 / h(k + 1, k), vk1);
      v.push_back(std::move(vk1));
      // Apply accumulated Givens rotations, then compute a new one.
      for (std::size_t j = 0; j < k; ++j) {
        const double t1 = cs[j] * h(j, k) + sn[j] * h(j + 1, k);
        const double t2 = -sn[j] * h(j, k) + cs[j] * h(j + 1, k);
        h(j, k) = t1;
        h(j + 1, k) = t2;
      }
      const double denom =
          std::sqrt(h(k, k) * h(k, k) + h(k + 1, k) * h(k + 1, k));
      if (denom == 0.0) {
        cs[k] = 1.0;
        sn[k] = 0.0;
      } else {
        cs[k] = h(k, k) / denom;
        sn[k] = h(k + 1, k) / denom;
      }
      h(k, k) = cs[k] * h(k, k) + sn[k] * h(k + 1, k);
      h(k + 1, k) = 0.0;
      g[k + 1] = -sn[k] * g[k];
      g[k] = cs[k] * g[k];
      if (std::abs(g[k + 1]) <= tol) {
        // Count this step: `break` skips the for-increment, and an uncounted
        // step here used to let deceptive preconditioned-norm exits spin the
        // restart loop forever without ever advancing total_iters.
        ++k;
        ++total_iters;
        break;
      }
    }
    // Back-substitute H y = g on the k-by-k leading block.
    Vector y(k, 0.0);
    for (std::size_t ii = k; ii-- > 0;) {
      double s = g[ii];
      for (std::size_t j = ii + 1; j < k; ++j) s -= h(ii, j) * y[j];
      UPDEC_REQUIRE(h(ii, ii) != 0.0, "GMRES breakdown: singular Hessenberg");
      y[ii] = s / h(ii, ii);
    }
    for (std::size_t j = 0; j < k; ++j) axpy(y[j], v[j], res.x);
  }
  r = b;
  a.spmv(-1.0, res.x, 1.0, r);
  res.residual_norm = nrm2(r);
  res.iterations = total_iters;
  res.converged = res.residual_norm <= tol;
  return res;
}

/// Aggregate a Krylov solve into the metrics registry under `span`
/// ("<span>.calls" / ".iterations" / ".failures").
static IterativeResult record_solve(const char* span, IterativeResult res) {
  if (metrics::enabled()) {
    const std::string base(span);
    metrics::counter_add((base + ".calls").c_str());
    metrics::counter_add((base + ".iterations").c_str(), res.iterations);
    if (!res.converged) metrics::counter_add((base + ".failures").c_str());
    if (res.breakdown) metrics::counter_add((base + ".breakdowns").c_str());
  }
  return res;
}

IterativeResult cg(const CsrMatrix& a, const Vector& b,
                   const IterativeOptions& opts, const Preconditioner& precond,
                   std::optional<Vector> x0) {
  UPDEC_TRACE_SCOPE("la/cg");
  return record_solve("la/cg", cg_body(a, b, opts, precond, std::move(x0)));
}

IterativeResult bicgstab(const CsrMatrix& a, const Vector& b,
                         const IterativeOptions& opts,
                         const Preconditioner& precond,
                         std::optional<Vector> x0) {
  UPDEC_TRACE_SCOPE("la/bicgstab");
  return record_solve("la/bicgstab",
                      bicgstab_body(a, b, opts, precond, std::move(x0)));
}

IterativeResult gmres(const CsrMatrix& a, const Vector& b,
                      const IterativeOptions& opts,
                      const Preconditioner& precond,
                      std::optional<Vector> x0) {
  UPDEC_TRACE_SCOPE("la/gmres");
  return record_solve("la/gmres",
                      gmres_body(a, b, opts, precond, std::move(x0)));
}

const BatchedIterativeResult& BatchedIterativeResult::require_converged(
    const char* context) const {
  if (!all_converged()) {
    std::ostringstream os;
    os << context << ": " << (columns - converged_columns) << " of " << columns
       << " batched solves did not converge (worst residual "
       << max_residual_norm << ")";
    throw Error(os.str());
  }
  return *this;
}

namespace {

/// Column-by-column driver shared by the *_many wrappers: the operator and
/// preconditioner are fixed, only the RHS varies, so the per-column cost is
/// pure Krylov work (no preconditioner rebuild).
template <typename SolveFn>
BatchedIterativeResult solve_columns(const CsrMatrix& a, const Matrix& b,
                                     const SolveFn& solve) {
  UPDEC_REQUIRE(b.rows() == a.rows(), "batched solve dimension mismatch");
  BatchedIterativeResult out;
  out.columns = b.cols();
  out.x = Matrix(b.rows(), b.cols());
  Vector rhs(b.rows());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    for (std::size_t i = 0; i < b.rows(); ++i) rhs[i] = b(i, j);
    const IterativeResult res = solve(rhs);
    for (std::size_t i = 0; i < b.rows(); ++i) out.x(i, j) = res.x[i];
    if (res.converged) ++out.converged_columns;
    out.total_iterations += res.iterations;
    out.max_residual_norm = std::max(out.max_residual_norm, res.residual_norm);
  }
  return out;
}

}  // namespace

BatchedIterativeResult cg_many(const CsrMatrix& a, const Matrix& b,
                               const IterativeOptions& opts,
                               const Preconditioner& precond) {
  return solve_columns(a, b, [&](const Vector& rhs) {
    return cg(a, rhs, opts, precond);
  });
}

BatchedIterativeResult bicgstab_many(const CsrMatrix& a, const Matrix& b,
                                     const IterativeOptions& opts,
                                     const Preconditioner& precond) {
  return solve_columns(a, b, [&](const Vector& rhs) {
    return bicgstab(a, rhs, opts, precond);
  });
}

BatchedIterativeResult gmres_many(const CsrMatrix& a, const Matrix& b,
                                  const IterativeOptions& opts,
                                  const Preconditioner& precond) {
  return solve_columns(a, b, [&](const Vector& rhs) {
    return gmres(a, rhs, opts, precond);
  });
}

}  // namespace updec::la
