#include "la/sparse.hpp"

#include <algorithm>

namespace updec::la {

void SparseBuilder::add(std::size_t i, std::size_t j, double v) {
  UPDEC_ASSERT(i < rows_ && j < cols_);
  entries_.push_back({i, j, v});
}

CsrMatrix::CsrMatrix(const SparseBuilder& builder)
    : rows_(builder.rows()), cols_(builder.cols()) {
  // Counting sort entries into rows, then sort each row by column and merge
  // duplicates.
  std::vector<SparseBuilder::Entry> entries = builder.entries();
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  row_ptr_.assign(rows_ + 1, 0);
  col_idx_.reserve(entries.size());
  values_.reserve(entries.size());
  std::size_t i = 0;
  while (i < entries.size()) {
    const std::size_t r = entries[i].row, c = entries[i].col;
    double v = entries[i].value;
    std::size_t j = i + 1;
    while (j < entries.size() && entries[j].row == r && entries[j].col == c) {
      v += entries[j].value;
      ++j;
    }
    col_idx_.push_back(c);
    values_.push_back(v);
    ++row_ptr_[r + 1];
    i = j;
  }
  for (std::size_t r = 0; r < rows_; ++r) row_ptr_[r + 1] += row_ptr_[r];
}

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols,
                     std::vector<std::size_t> row_ptr,
                     std::vector<std::size_t> col_idx,
                     std::vector<double> values)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  UPDEC_REQUIRE(row_ptr_.size() == rows_ + 1, "bad row_ptr length");
  UPDEC_REQUIRE(col_idx_.size() == values_.size(), "col_idx/values mismatch");
  UPDEC_REQUIRE(row_ptr_.back() == values_.size(), "row_ptr/nnz mismatch");
}

void CsrMatrix::spmv(double alpha, const Vector& x, double beta,
                     Vector& y) const {
  UPDEC_REQUIRE(x.size() == cols_ && y.size() == rows_, "spmv size mismatch");
#ifdef UPDEC_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (std::ptrdiff_t ii = 0; ii < static_cast<std::ptrdiff_t>(rows_); ++ii) {
    const auto i = static_cast<std::size_t>(ii);
    double s = 0.0;
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k)
      s += values_[k] * x[col_idx_[k]];
    y[i] = alpha * s + beta * y[i];
  }
}

Vector CsrMatrix::apply(const Vector& x) const {
  Vector y(rows_);
  spmv(1.0, x, 0.0, y);
  return y;
}

void CsrMatrix::spmv_t(double alpha, const Vector& x, double beta,
                       Vector& y) const {
  UPDEC_REQUIRE(x.size() == rows_ && y.size() == cols_,
                "spmv_t size mismatch");
  if (beta == 0.0)
    y.fill(0.0);
  else if (beta != 1.0)
    for (std::size_t j = 0; j < y.size(); ++j) y[j] *= beta;
  for (std::size_t i = 0; i < rows_; ++i) {
    const double xi = alpha * x[i];
    if (xi == 0.0) continue;
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k)
      y[col_idx_[k]] += xi * values_[k];
  }
}

Vector CsrMatrix::apply_transpose(const Vector& x) const {
  Vector y(cols_);
  spmv_t(1.0, x, 0.0, y);
  return y;
}

CsrMatrix CsrMatrix::transposed() const {
  SparseBuilder b(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k)
      b.add(col_idx_[k], i, values_[k]);
  return CsrMatrix(b);
}

Vector CsrMatrix::diagonal() const {
  const std::size_t n = std::min(rows_, cols_);
  Vector d(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) d[i] = at(i, i);
  return d;
}

Matrix CsrMatrix::to_dense() const {
  Matrix a(rows_, cols_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k)
      a(i, col_idx_[k]) += values_[k];
  return a;
}

double CsrMatrix::at(std::size_t i, std::size_t j) const {
  UPDEC_ASSERT(i < rows_ && j < cols_);
  const auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[i]);
  const auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[i + 1]);
  const auto it = std::lower_bound(begin, end, j);
  if (it == end || *it != j) return 0.0;
  return values_[static_cast<std::size_t>(it - col_idx_.begin())];
}

}  // namespace updec::la
