#include "la/sparse.hpp"

#include <algorithm>

#include "la/simd.hpp"
#include "util/metrics.hpp"

namespace updec::la {

void SparseBuilder::add(std::size_t i, std::size_t j, double v) {
  UPDEC_ASSERT(i < rows_ && j < cols_);
  entries_.push_back({i, j, v});
}

CsrMatrix::CsrMatrix(const SparseBuilder& builder)
    : rows_(builder.rows()), cols_(builder.cols()) {
  // Counting sort entries into rows, then sort each row by column and merge
  // duplicates.
  std::vector<SparseBuilder::Entry> entries = builder.entries();
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  row_ptr_.assign(rows_ + 1, 0);
  col_idx_.reserve(entries.size());
  values_.reserve(entries.size());
  std::size_t i = 0;
  while (i < entries.size()) {
    const std::size_t r = entries[i].row, c = entries[i].col;
    double v = entries[i].value;
    std::size_t j = i + 1;
    while (j < entries.size() && entries[j].row == r && entries[j].col == c) {
      v += entries[j].value;
      ++j;
    }
    col_idx_.push_back(c);
    values_.push_back(v);
    ++row_ptr_[r + 1];
    i = j;
  }
  for (std::size_t r = 0; r < rows_; ++r) row_ptr_[r + 1] += row_ptr_[r];
}

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols,
                     std::vector<std::size_t> row_ptr,
                     std::vector<std::size_t> col_idx,
                     std::vector<double> values)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  UPDEC_REQUIRE(row_ptr_.size() == rows_ + 1, "bad row_ptr length");
  UPDEC_REQUIRE(col_idx_.size() == values_.size(), "col_idx/values mismatch");
  UPDEC_REQUIRE(row_ptr_.back() == values_.size(), "row_ptr/nnz mismatch");
}

void CsrMatrix::spmv(double alpha, const Vector& x, double beta,
                     Vector& y) const {
  UPDEC_REQUIRE(x.size() == cols_ && y.size() == rows_, "spmv size mismatch");
  UPDEC_METRIC_ADD("la/sparse.simd_kernels", 1);
  const std::size_t* UPDEC_RESTRICT row_ptr = row_ptr_.data();
  const std::size_t* UPDEC_RESTRICT col_idx = col_idx_.data();
  const double* UPDEC_RESTRICT values = values_.data();
  const double* UPDEC_RESTRICT xp = x.data();
  double* UPDEC_RESTRICT yp = y.data();
#ifdef UPDEC_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (std::ptrdiff_t ii = 0; ii < static_cast<std::ptrdiff_t>(rows_); ++ii) {
    const auto i = static_cast<std::size_t>(ii);
    const std::size_t begin = row_ptr[i], end = row_ptr[i + 1];
    double s = 0.0;
    UPDEC_PRAGMA_SIMD_REDUCTION(+ : s)
    for (std::size_t k = begin; k < end; ++k) s += values[k] * xp[col_idx[k]];
    yp[i] = alpha * s + beta * yp[i];
  }
}

Vector CsrMatrix::apply(const Vector& x) const {
  Vector y(rows_);
  spmv(1.0, x, 0.0, y);
  return y;
}

void CsrMatrix::spmv_t(double alpha, const Vector& x, double beta,
                       Vector& y) const {
  UPDEC_REQUIRE(x.size() == rows_ && y.size() == cols_,
                "spmv_t size mismatch");
  if (beta == 0.0)
    y.fill(0.0);
  else if (beta != 1.0)
    for (std::size_t j = 0; j < y.size(); ++j) y[j] *= beta;
  // Scatter-add along each source row; kept serial (and unvectorised) --
  // duplicate column indices across rows make the destination writes
  // potentially aliasing, and the adjoint product is memory-bound anyway.
  const std::size_t* UPDEC_RESTRICT row_ptr = row_ptr_.data();
  const std::size_t* UPDEC_RESTRICT col_idx = col_idx_.data();
  const double* UPDEC_RESTRICT values = values_.data();
  double* yp = y.data();
  for (std::size_t i = 0; i < rows_; ++i) {
    const double xi = alpha * x[i];
    if (xi == 0.0) continue;
    for (std::size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k)
      yp[col_idx[k]] += xi * values[k];
  }
}

Vector CsrMatrix::apply_transpose(const Vector& x) const {
  Vector y(cols_);
  spmv_t(1.0, x, 0.0, y);
  return y;
}

CsrMatrix CsrMatrix::transposed() const {
  SparseBuilder b(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k)
      b.add(col_idx_[k], i, values_[k]);
  return CsrMatrix(b);
}

Vector CsrMatrix::diagonal() const {
  const std::size_t n = std::min(rows_, cols_);
  Vector d(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) d[i] = at(i, i);
  return d;
}

Matrix CsrMatrix::to_dense() const {
  Matrix a(rows_, cols_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k)
      a(i, col_idx_[k]) += values_[k];
  return a;
}

void CsrMatrix::spmm(double alpha, const Matrix& x, double beta,
                     Matrix& y) const {
  UPDEC_REQUIRE(x.rows() == cols_ && y.rows() == rows_ && x.cols() == y.cols(),
                "spmm size mismatch");
  const std::size_t ncols = x.cols();
  UPDEC_METRIC_ADD("la/sparse.simd_kernels", 1);
  const std::size_t* UPDEC_RESTRICT row_ptr = row_ptr_.data();
  const std::size_t* UPDEC_RESTRICT col_idx = col_idx_.data();
  const double* UPDEC_RESTRICT values = values_.data();
#ifdef UPDEC_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (std::ptrdiff_t ii = 0; ii < static_cast<std::ptrdiff_t>(rows_); ++ii) {
    const auto i = static_cast<std::size_t>(ii);
    double* UPDEC_RESTRICT yrow = y.row(i);
    // Accumulate whole rows of X into the output row: the inner loop runs
    // over the contiguous RHS row (vectorises), instead of striding down a
    // column per (i, j) pair.
    if (beta == 0.0) {
      // Overwrite, not scale, so uninitialised (or NaN) destinations cannot
      // leak through 0 * y.
      for (std::size_t j = 0; j < ncols; ++j) yrow[j] = 0.0;
    } else if (beta != 1.0) {
      for (std::size_t j = 0; j < ncols; ++j) yrow[j] *= beta;
    }
    for (std::size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      const double av = alpha * values[k];
      const double* UPDEC_RESTRICT xrow = x.row(col_idx[k]);
      UPDEC_PRAGMA_SIMD
      for (std::size_t j = 0; j < ncols; ++j) yrow[j] += av * xrow[j];
    }
  }
}

Matrix CsrMatrix::apply_many(const Matrix& x) const {
  Matrix y(rows_, x.cols());
  spmm(1.0, x, 0.0, y);
  return y;
}

double CsrMatrix::at(std::size_t i, std::size_t j) const {
  UPDEC_ASSERT(i < rows_ && j < cols_);
  const auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[i]);
  const auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[i + 1]);
  const auto it = std::lower_bound(begin, end, j);
  if (it == end || *it != j) return 0.0;
  return values_[static_cast<std::size_t>(it - col_idx_.begin())];
}

CsrMatrix multiply(const CsrMatrix& a, const CsrMatrix& b,
                   const std::vector<std::uint8_t>* row_mask) {
  UPDEC_REQUIRE(a.cols() == b.rows(), "sparse multiply dimension mismatch");
  UPDEC_REQUIRE(row_mask == nullptr || row_mask->size() == a.rows(),
                "sparse multiply row_mask size mismatch");
  const std::size_t rows = a.rows();
  const std::size_t cols = b.cols();
  const auto& arp = a.row_ptr();
  const auto& aci = a.col_idx();
  const auto& av = a.values();
  const auto& brp = b.row_ptr();
  const auto& bci = b.col_idx();
  const auto& bv = b.values();

  std::vector<std::size_t> row_ptr(rows + 1, 0);
  std::vector<std::size_t> col_idx;
  std::vector<double> values;

  // Gustavson: dense accumulator + touched-column list per row. The
  // accumulation order (A-row entry order, then B-row entry order) is fixed,
  // so results are deterministic and match the former dense product_row
  // assembly bit for bit.
  std::vector<double> acc(cols, 0.0);
  std::vector<std::uint8_t> seen(cols, 0);
  std::vector<std::size_t> touched;
  touched.reserve(64);
  for (std::size_t i = 0; i < rows; ++i) {
    if (row_mask != nullptr && (*row_mask)[i] == 0) {
      row_ptr[i + 1] = values.size();
      continue;
    }
    touched.clear();
    for (std::size_t k = arp[i]; k < arp[i + 1]; ++k) {
      const std::size_t j = aci[k];
      const double aij = av[k];
      for (std::size_t kb = brp[j]; kb < brp[j + 1]; ++kb) {
        const std::size_t col = bci[kb];
        if (!seen[col]) {
          seen[col] = 1;
          touched.push_back(col);
          acc[col] = 0.0;
        }
        acc[col] += aij * bv[kb];
      }
    }
    std::sort(touched.begin(), touched.end());
    for (const std::size_t col : touched) {
      col_idx.push_back(col);
      values.push_back(acc[col]);
      seen[col] = 0;
    }
    row_ptr[i + 1] = values.size();
  }
  return CsrMatrix(rows, cols, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

CsrMatrix add(double alpha, const CsrMatrix& a, double beta,
              const CsrMatrix& b) {
  UPDEC_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
                "sparse add dimension mismatch");
  const std::size_t rows = a.rows();
  const auto& arp = a.row_ptr();
  const auto& aci = a.col_idx();
  const auto& av = a.values();
  const auto& brp = b.row_ptr();
  const auto& bci = b.col_idx();
  const auto& bv = b.values();

  std::vector<std::size_t> row_ptr(rows + 1, 0);
  std::vector<std::size_t> col_idx;
  std::vector<double> values;
  col_idx.reserve(a.nnz() + b.nnz());
  values.reserve(a.nnz() + b.nnz());
  for (std::size_t i = 0; i < rows; ++i) {
    std::size_t ka = arp[i], kb = brp[i];
    // Two-pointer merge of the column-sorted rows.
    while (ka < arp[i + 1] || kb < brp[i + 1]) {
      const std::size_t ca =
          ka < arp[i + 1] ? aci[ka] : static_cast<std::size_t>(-1);
      const std::size_t cb =
          kb < brp[i + 1] ? bci[kb] : static_cast<std::size_t>(-1);
      if (ca < cb) {
        col_idx.push_back(ca);
        values.push_back(alpha * av[ka++]);
      } else if (cb < ca) {
        col_idx.push_back(cb);
        values.push_back(beta * bv[kb++]);
      } else {
        col_idx.push_back(ca);
        values.push_back(alpha * av[ka++] + beta * bv[kb++]);
      }
    }
    row_ptr[i + 1] = values.size();
  }
  return CsrMatrix(rows, a.cols(), std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

}  // namespace updec::la
