#include "la/lu.hpp"

#include <cmath>

#include "la/blas.hpp"
#include "la/simd.hpp"
#include "util/faultinject.hpp"

namespace updec::la {

namespace {
/// 1-norm of a square matrix (max column absolute sum).
double matrix_norm1(const Matrix& a) {
  const std::size_t n = a.cols();
  double best = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    double s = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) s += std::abs(a(i, j));
    best = std::max(best, s);
  }
  return best;
}
}  // namespace

LuFactorization::LuFactorization(Matrix a) {
  UPDEC_REQUIRE(a.rows() == a.cols(), "LU requires a square matrix");
  UPDEC_REQUIRE(!UPDEC_FAULT_POINT("lu.singular_pivot"),
                "injected fault: simulated singular pivot");
  const std::size_t n = a.rows();
  a_norm1_ = matrix_norm1(a);
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest magnitude in column k at or below the diagonal.
    std::size_t piv = k;
    double piv_val = std::abs(a(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(a(i, k));
      if (v > piv_val) {
        piv_val = v;
        piv = i;
      }
    }
    // A NaN column makes piv_val NaN, which also fails this comparison.
    UPDEC_REQUIRE(piv_val > 0.0,
                  "matrix is singular to working precision or non-finite");
    if (piv != k) {
      double* rk = a.row(k);
      double* rp = a.row(piv);
      for (std::size_t j = 0; j < n; ++j) std::swap(rk[j], rp[j]);
      std::swap(perm_[k], perm_[piv]);
      perm_sign_ = -perm_sign_;
    }
    const double inv_akk = 1.0 / a(k, k);
    // Eliminate below the pivot; rows are independent -> parallel.
#ifdef UPDEC_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
    for (std::ptrdiff_t ii = static_cast<std::ptrdiff_t>(k) + 1;
         ii < static_cast<std::ptrdiff_t>(n); ++ii) {
      const auto i = static_cast<std::size_t>(ii);
      const double lik = a(i, k) * inv_akk;
      a(i, k) = lik;
      const double* UPDEC_RESTRICT rk = a.row(k);
      double* UPDEC_RESTRICT ri = a.row(i);
      UPDEC_PRAGMA_SIMD
      for (std::size_t j = k + 1; j < n; ++j) ri[j] -= lik * rk[j];
    }
  }
  lu_ = std::move(a);
}

void LuFactorization::forward_substitute(Vector& x) const {
  const std::size_t n = size();
  double* UPDEC_RESTRICT xp = x.data();
  for (std::size_t i = 0; i < n; ++i) {
    const double* UPDEC_RESTRICT row = lu_.row(i);
    double s = 0.0;
    UPDEC_PRAGMA_SIMD_REDUCTION(+ : s)
    for (std::size_t j = 0; j < i; ++j) s += row[j] * xp[j];
    xp[i] -= s;  // unit diagonal on L
  }
}

void LuFactorization::backward_substitute(Vector& x) const {
  const std::size_t n = size();
  double* UPDEC_RESTRICT xp = x.data();
  for (std::size_t ii = n; ii-- > 0;) {
    const double* UPDEC_RESTRICT row = lu_.row(ii);
    double s = 0.0;
    UPDEC_PRAGMA_SIMD_REDUCTION(+ : s)
    for (std::size_t j = ii + 1; j < n; ++j) s += row[j] * xp[j];
    xp[ii] = (xp[ii] - s) / row[ii];
  }
}

Vector LuFactorization::solve(const Vector& b) const {
  UPDEC_REQUIRE(valid(), "solve on empty factorisation");
  UPDEC_REQUIRE(b.size() == size(), "solve dimension mismatch");
  const std::size_t n = size();
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  forward_substitute(x);
  backward_substitute(x);
  return x;
}

Vector LuFactorization::solve_transpose(const Vector& b) const {
  UPDEC_REQUIRE(valid(), "solve_transpose on empty factorisation");
  UPDEC_REQUIRE(b.size() == size(), "solve dimension mismatch");
  const std::size_t n = size();
  // A^T = (P^T L U)^T = U^T L^T P, so solve U^T y = b, L^T z = y, x = P^T z.
  Vector y = b;
  for (std::size_t i = 0; i < n; ++i) {
    double s = y[i];
    for (std::size_t j = 0; j < i; ++j) s -= lu_(j, i) * y[j];
    y[i] = s / lu_(i, i);
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= lu_(j, ii) * y[j];
    y[ii] = s;  // unit diagonal
  }
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) x[perm_[i]] = y[i];
  return x;
}

Matrix LuFactorization::solve_many(const Matrix& b) const {
  UPDEC_REQUIRE(valid(), "solve_many on empty factorisation");
  UPDEC_REQUIRE(b.rows() == size(), "solve_many dimension mismatch");
  const std::size_t n = size();
  const std::size_t k = b.cols();
  // Pivot bookkeeping once for the whole batch: gather permuted rows of B
  // (contiguous row copies), instead of re-applying the permutation per
  // column as the old per-column path did.
  Matrix x(n, k);
  for (std::size_t i = 0; i < n; ++i) {
    const double* src = b.row(perm_[i]);
    double* dst = x.row(i);
    for (std::size_t j = 0; j < k; ++j) dst[j] = src[j];
  }
  // Forward sweep L Y = P B, all columns at once. The inner axpy runs over
  // the contiguous row of X, so one traversal of L serves every RHS.
  for (std::size_t i = 0; i < n; ++i) {
    const double* UPDEC_RESTRICT li = lu_.row(i);
    double* UPDEC_RESTRICT xi = x.row(i);
    for (std::size_t p = 0; p < i; ++p) {
      const double l = li[p];
      if (l == 0.0) continue;
      const double* UPDEC_RESTRICT xp = x.row(p);
      UPDEC_PRAGMA_SIMD
      for (std::size_t j = 0; j < k; ++j) xi[j] -= l * xp[j];
    }
  }
  // Backward sweep U X = Y.
  for (std::size_t ii = n; ii-- > 0;) {
    const double* UPDEC_RESTRICT ui = lu_.row(ii);
    double* UPDEC_RESTRICT xi = x.row(ii);
    for (std::size_t p = ii + 1; p < n; ++p) {
      const double u = ui[p];
      if (u == 0.0) continue;
      const double* UPDEC_RESTRICT xp = x.row(p);
      UPDEC_PRAGMA_SIMD
      for (std::size_t j = 0; j < k; ++j) xi[j] -= u * xp[j];
    }
    const double inv = 1.0 / ui[ii];
    UPDEC_PRAGMA_SIMD
    for (std::size_t j = 0; j < k; ++j) xi[j] *= inv;
  }
  return x;
}

double LuFactorization::determinant() const {
  UPDEC_REQUIRE(valid(), "determinant on empty factorisation");
  double det = perm_sign_;
  for (std::size_t i = 0; i < size(); ++i) det *= lu_(i, i);
  return det;
}

double LuFactorization::condition_estimate() const {
  UPDEC_REQUIRE(valid(), "condition_estimate on empty factorisation");
  const std::size_t n = size();
  // Hager's estimator for ||A^-1||_1 via a few solves with A and A^T.
  Vector x(n, 1.0 / static_cast<double>(n));
  double est = 0.0;
  for (int iter = 0; iter < 5; ++iter) {
    const Vector y = solve(x);
    est = nrm1(y);
    Vector xi(n);
    for (std::size_t i = 0; i < n; ++i) xi[i] = (y[i] >= 0.0) ? 1.0 : -1.0;
    const Vector z = solve_transpose(xi);
    // Pick the coordinate with the largest |z_j| as the next probe.
    std::size_t jmax = 0;
    double zmax = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (std::abs(z[j]) > zmax) {
        zmax = std::abs(z[j]);
        jmax = j;
      }
    }
    if (zmax <= dot(z, x)) break;
    x.fill(0.0);
    x[jmax] = 1.0;
  }
  return est * a_norm1_;
}

LuFactorization LuFactorization::from_parts(Matrix packed,
                                            std::vector<std::size_t> perm,
                                            int perm_sign, double a_norm1) {
  const std::size_t n = packed.rows();
  UPDEC_REQUIRE(packed.cols() == n,
                "LuFactorization::from_parts: packed factors not square");
  UPDEC_REQUIRE(perm.size() == n,
                "LuFactorization::from_parts: permutation size mismatch");
  UPDEC_REQUIRE(perm_sign == 1 || perm_sign == -1,
                "LuFactorization::from_parts: permutation sign must be +/-1");
  std::vector<bool> seen(n, false);
  for (const std::size_t p : perm) {
    UPDEC_REQUIRE(p < n && !seen[p],
                  "LuFactorization::from_parts: not a permutation");
    seen[p] = true;
  }
  LuFactorization lu;
  lu.lu_ = std::move(packed);
  lu.perm_ = std::move(perm);
  lu.perm_sign_ = perm_sign;
  lu.a_norm1_ = a_norm1;
  return lu;
}

Vector solve(Matrix a, const Vector& b) {
  return LuFactorization(std::move(a)).solve(b);
}

Matrix lu_solve_many(Matrix a, const Matrix& b) {
  return LuFactorization(std::move(a)).solve_many(b);
}

}  // namespace updec::la
