#include "la/dense.hpp"

namespace updec::la {

Matrix Matrix::identity(std::size_t n) {
  Matrix eye(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) eye(i, i) = 1.0;
  return eye;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  return t;
}

Vector operator+(const Vector& a, const Vector& b) {
  UPDEC_REQUIRE(a.size() == b.size(), "vector size mismatch in +");
  Vector r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] + b[i];
  return r;
}

Vector operator-(const Vector& a, const Vector& b) {
  UPDEC_REQUIRE(a.size() == b.size(), "vector size mismatch in -");
  Vector r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] - b[i];
  return r;
}

Vector operator*(double s, const Vector& a) {
  Vector r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = s * a[i];
  return r;
}

}  // namespace updec::la
