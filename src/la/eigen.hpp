#pragma once
/// \file eigen.hpp
/// \brief Eigenvalue routines: dominant-eigenvalue estimation by power
/// iteration (a diagnostic for iteration maps: scattered-node RBF-FD
/// operators can carry spurious eigenvalues with positive real part,
/// DESIGN.md 3b, and the spectral radius of a time-stepping map certifies
/// whether a march can diverge) and a full symmetric eigendecomposition by
/// cyclic Jacobi rotations (the Gram-matrix path of the POD/Galerkin
/// reduced-order tier in src/rom, where snapshot Gram matrices are small,
/// dense, frequently near-degenerate and must be resolved reliably).

#include <functional>

#include "la/dense.hpp"
#include "la/sparse.hpp"

namespace updec::la {

struct PowerIterationResult {
  double eigenvalue = 0.0;  ///< dominant eigenvalue (Rayleigh quotient)
  Vector eigenvector;       ///< normalised iterate
  std::size_t iterations = 0;
  bool converged = false;
};

/// Estimate the dominant (largest-magnitude) eigenvalue of the linear map
/// `apply` acting on vectors of length n. The Rayleigh quotient is reported,
/// so for real dominant eigenvalues the sign is recovered too.
PowerIterationResult power_iteration(
    const std::function<Vector(const Vector&)>& apply, std::size_t n,
    std::size_t max_iterations = 200, double tol = 1e-10,
    std::uint64_t seed = 1);

/// Convenience overloads for explicit matrices.
PowerIterationResult power_iteration(const Matrix& a,
                                     std::size_t max_iterations = 200,
                                     double tol = 1e-10);
PowerIterationResult power_iteration(const CsrMatrix& a,
                                     std::size_t max_iterations = 200,
                                     double tol = 1e-10);

/// Full eigendecomposition of a symmetric matrix.
struct SymmetricEigenResult {
  Vector eigenvalues;   ///< descending (lambda_0 >= lambda_1 >= ...)
  Matrix eigenvectors;  ///< column j is the unit eigenvector of lambda_j
  std::size_t sweeps = 0;  ///< full Jacobi sweeps performed
  bool converged = false;  ///< off-diagonal norm met the tolerance
};

/// Eigendecomposition of a symmetric matrix by cyclic Jacobi rotations:
/// A = V diag(lambda) V^T with orthonormal V. Jacobi is quadratically
/// convergent once the off-diagonal mass is small and -- unlike shifted QR
/// variants -- resolves tightly clustered and numerically repeated
/// eigenvalues without deflation hazards, which is exactly the regime of
/// snapshot Gram matrices (near-duplicate snapshots => near-degenerate
/// spectra, rank-deficient banks => trailing zero eigenvalues). Only the
/// lower triangle of `a` is read; asymmetry beyond roundoff is rejected.
/// Throws updec::Error on non-finite input or if `max_sweeps` cyclic sweeps
/// fail to reduce the off-diagonal Frobenius mass below
/// `tol * ||A||_F` (convergence typically takes < 10 sweeps).
SymmetricEigenResult symmetric_eigen(const Matrix& a,
                                     std::size_t max_sweeps = 64,
                                     double tol = 1e-14);

}  // namespace updec::la
