#pragma once
/// \file eigen.hpp
/// \brief Dominant-eigenvalue estimation by power iteration. Used as a diagnostic
/// for iteration maps: scattered-node RBF-FD operators can carry spurious
/// eigenvalues with positive real part (DESIGN.md 3b), and the spectral
/// radius of a time-stepping map certifies whether a march can diverge.

#include <functional>

#include "la/dense.hpp"
#include "la/sparse.hpp"

namespace updec::la {

struct PowerIterationResult {
  double eigenvalue = 0.0;  ///< dominant eigenvalue (Rayleigh quotient)
  Vector eigenvector;       ///< normalised iterate
  std::size_t iterations = 0;
  bool converged = false;
};

/// Estimate the dominant (largest-magnitude) eigenvalue of the linear map
/// `apply` acting on vectors of length n. The Rayleigh quotient is reported,
/// so for real dominant eigenvalues the sign is recovered too.
PowerIterationResult power_iteration(
    const std::function<Vector(const Vector&)>& apply, std::size_t n,
    std::size_t max_iterations = 200, double tol = 1e-10,
    std::uint64_t seed = 1);

/// Convenience overloads for explicit matrices.
PowerIterationResult power_iteration(const Matrix& a,
                                     std::size_t max_iterations = 200,
                                     double tol = 1e-10);
PowerIterationResult power_iteration(const CsrMatrix& a,
                                     std::size_t max_iterations = 200,
                                     double tol = 1e-10);

}  // namespace updec::la
