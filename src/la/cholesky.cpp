#include "la/cholesky.hpp"

#include <cmath>

namespace updec::la {

CholeskyFactorization::CholeskyFactorization(Matrix a) {
  UPDEC_REQUIRE(a.rows() == a.cols(), "Cholesky requires a square matrix");
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= a(j, k) * a(j, k);
    UPDEC_REQUIRE(d > 0.0, "matrix is not positive definite");
    const double ljj = std::sqrt(d);
    a(j, j) = ljj;
    const double inv = 1.0 / ljj;
#ifdef UPDEC_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
    for (std::ptrdiff_t ii = static_cast<std::ptrdiff_t>(j) + 1;
         ii < static_cast<std::ptrdiff_t>(n); ++ii) {
      const auto i = static_cast<std::size_t>(ii);
      double s = a(i, j);
      const double* ri = a.row(i);
      const double* rj = a.row(j);
      for (std::size_t k = 0; k < j; ++k) s -= ri[k] * rj[k];
      a(i, j) = s * inv;
    }
  }
  // Zero the strict upper triangle so the stored factor is exactly L.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) a(i, j) = 0.0;
  l_ = std::move(a);
}

Vector CholeskyFactorization::solve(const Vector& b) const {
  UPDEC_REQUIRE(valid(), "solve on empty factorisation");
  UPDEC_REQUIRE(b.size() == size(), "solve dimension mismatch");
  const std::size_t n = size();
  Vector x = b;
  // L y = b
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = l_.row(i);
    double s = x[i];
    for (std::size_t j = 0; j < i; ++j) s -= row[j] * x[j];
    x[i] = s / row[i];
  }
  // L^T x = y
  for (std::size_t ii = n; ii-- > 0;) {
    double s = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= l_(j, ii) * x[j];
    x[ii] = s / l_(ii, ii);
  }
  return x;
}

double CholeskyFactorization::log_determinant() const {
  UPDEC_REQUIRE(valid(), "log_determinant on empty factorisation");
  double s = 0.0;
  for (std::size_t i = 0; i < size(); ++i) s += std::log(l_(i, i));
  return 2.0 * s;
}

}  // namespace updec::la
