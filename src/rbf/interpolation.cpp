#include "rbf/interpolation.hpp"

#include "la/blas.hpp"

namespace updec::rbf {

RbfInterpolant::RbfInterpolant(const pc::PointCloud& cloud,
                               const Kernel& kernel, int poly_degree,
                               const la::Vector& values)
    : collocation_(cloud, kernel, poly_degree, LinearOp::identity()) {
  UPDEC_REQUIRE(values.size() == cloud.size(),
                "one datum per cloud node required");
  la::Vector rhs(collocation_.system_size(), 0.0);
  for (std::size_t i = 0; i < values.size(); ++i) rhs[i] = values[i];
  coeffs_ = collocation_.solve(rhs);
}

double RbfInterpolant::operator()(const pc::Vec2& p) const {
  return apply(LinearOp::identity(), p);
}

double RbfInterpolant::apply(const LinearOp& op, const pc::Vec2& p) const {
  const la::Matrix e = collocation_.evaluation_matrix({p}, op);
  double s = 0.0;
  for (std::size_t j = 0; j < coeffs_.size(); ++j) s += e(0, j) * coeffs_[j];
  return s;
}

la::Vector RbfInterpolant::evaluate(const std::vector<pc::Vec2>& points,
                                    const LinearOp& op) const {
  const la::Matrix e = collocation_.evaluation_matrix(points, op);
  return la::matvec(e, coeffs_);
}

}  // namespace updec::rbf
