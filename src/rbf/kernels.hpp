#pragma once
/// \file kernels.hpp
/// Radial basis function kernels phi(r) and their radial derivatives.
///
/// The paper settles on the polyharmonic cubic spline phi(r) = r^3 augmented
/// with degree-1 polynomials (section 3) because it has no shape parameter
/// to tune and remains robust for nonlinear PDEs; the other classic kernels
/// are provided for the kernel-choice ablation. Every kernel exposes both
/// hand-derived radial derivatives and (via DualDerivedKernel) derivatives
/// obtained automatically from the scalar definition with forward-mode AD --
/// the same "define phi, get D by grad" workflow the paper builds on JAX.

#include <functional>
#include <memory>
#include <string>

#include "autodiff/dual.hpp"

namespace updec::rbf {

/// Interface: phi and its first two radial derivatives.
class Kernel {
 public:
  virtual ~Kernel() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual double phi(double r) const = 0;
  [[nodiscard]] virtual double dphi(double r) const = 0;   ///< phi'(r)
  [[nodiscard]] virtual double d2phi(double r) const = 0;  ///< phi''(r)

  /// 2-D Laplacian of phi(||x - c||) as a function of r:
  /// phi'' + phi'/r for r > 0; the smooth limit 2 phi''(0) at r = 0.
  [[nodiscard]] virtual double laplacian(double r) const;
};

/// Polyharmonic spline r^m (m odd: 3, 5, 7). The paper's kernel is m = 3.
class PolyharmonicSpline final : public Kernel {
 public:
  explicit PolyharmonicSpline(int exponent = 3);
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double phi(double r) const override;
  [[nodiscard]] double dphi(double r) const override;
  [[nodiscard]] double d2phi(double r) const override;
  [[nodiscard]] int exponent() const { return m_; }

 private:
  int m_;
};

/// Gaussian exp(-(eps r)^2).
class GaussianKernel final : public Kernel {
 public:
  explicit GaussianKernel(double epsilon);
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double phi(double r) const override;
  [[nodiscard]] double dphi(double r) const override;
  [[nodiscard]] double d2phi(double r) const override;

 private:
  double eps_;
};

/// Multiquadric sqrt(1 + (eps r)^2) (Kansa's original kernel).
class MultiquadricKernel final : public Kernel {
 public:
  explicit MultiquadricKernel(double epsilon);
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double phi(double r) const override;
  [[nodiscard]] double dphi(double r) const override;
  [[nodiscard]] double d2phi(double r) const override;

 private:
  double eps_;
};

/// Inverse multiquadric 1 / sqrt(1 + (eps r)^2).
class InverseMultiquadricKernel final : public Kernel {
 public:
  explicit InverseMultiquadricKernel(double epsilon);
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double phi(double r) const override;
  [[nodiscard]] double dphi(double r) const override;
  [[nodiscard]] double d2phi(double r) const override;

 private:
  double eps_;
};

/// Thin-plate spline r^2 log r (interpolation only: its Laplacian diverges
/// at the centre, so PDE collocation rows must not use it at r = 0).
class ThinPlateSpline final : public Kernel {
 public:
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double phi(double r) const override;
  [[nodiscard]] double dphi(double r) const override;
  [[nodiscard]] double d2phi(double r) const override;
  [[nodiscard]] double laplacian(double r) const override;
};

/// Kernel whose derivatives are produced by forward-mode AD from a scalar
/// definition f(r) -- the user supplies phi only, like passing a Python
/// function to JAX and letting `grad` build the differential operator.
class DualDerivedKernel final : public Kernel {
 public:
  /// `f` must be evaluable on double, Dual<double> and Dual<Dual<double>>;
  /// pass a generic lambda, e.g. [](auto r) { return r * r * r; }.
  template <typename F>
  explicit DualDerivedKernel(std::string name, F f)
      : name_(std::move(name)),
        f0_([f](double r) { return f(r); }),
        f1_([f](double r) {
          return f(ad::Dual<double>{r, 1.0}).d;
        }),
        f2_([f](double r) {
          const ad::Dual<ad::Dual<double>> rr{{r, 1.0}, {1.0, 0.0}};
          return f(rr).d.d;
        }) {}

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] double phi(double r) const override { return f0_(r); }
  [[nodiscard]] double dphi(double r) const override { return f1_(r); }
  [[nodiscard]] double d2phi(double r) const override { return f2_(r); }

 private:
  std::string name_;
  std::function<double(double)> f0_, f1_, f2_;
};

/// Factory for the paper's default configuration (PHS r^3).
std::unique_ptr<Kernel> make_default_kernel();

}  // namespace updec::rbf
