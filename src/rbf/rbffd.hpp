#pragma once
/// \file rbffd.hpp
/// RBF-FD: local differentiation stencils (Tolstykh's framework, the paper's
/// ref. [44]). For each node, a small RBF + polynomial fit over its k
/// nearest neighbours yields weights w with (L u)(x_i) ~= sum_b w_b u(x_b).
/// Collecting all rows gives sparse differentiation matrices Dx, Dy, Lap
/// that are *constant* for a fixed cloud -- which is exactly why the DP
/// tape of the Navier-Stokes solver stays affordable: the nonlinearity is
/// pointwise, while all spatial derivatives are constant SpMVs.

#include "la/lu.hpp"
#include "la/sparse.hpp"
#include "pointcloud/kdtree.hpp"
#include "rbf/operators.hpp"

namespace updec::rbf {

/// Stencil configuration.
struct RbffdConfig {
  std::size_t stencil_size = 13;  ///< k nearest neighbours per node
  int poly_degree = 1;            ///< appended monomial degree (paper: 1)
};

/// Differentiation-matrix factory for one point cloud.
class RbffdOperators {
 public:
  RbffdOperators(const pc::PointCloud& cloud, const Kernel& kernel,
                 const RbffdConfig& config = {});

  /// Sparse matrix applying L at every node: (L u)_i = (W u)_i.
  [[nodiscard]] la::CsrMatrix weights_for(const LinearOp& op) const;

  /// Cached canonical operators.
  [[nodiscard]] const la::CsrMatrix& dx() const;
  [[nodiscard]] const la::CsrMatrix& dy() const;
  [[nodiscard]] const la::CsrMatrix& laplacian() const;

  [[nodiscard]] const pc::PointCloud& cloud() const { return *cloud_; }
  [[nodiscard]] const Kernel& kernel() const { return *kernel_; }
  [[nodiscard]] const RbffdConfig& config() const { return config_; }

 private:
  const pc::PointCloud* cloud_;
  const Kernel* kernel_;
  RbffdConfig config_;
  pc::KdTree tree_;
  std::vector<std::vector<std::size_t>> stencils_;
  mutable std::unique_ptr<la::CsrMatrix> dx_, dy_, lap_;
};

/// Consistent product Laplacian Dx.Dx + Dy.Dy assembled sparse, straight
/// from the stencil-weight CSR operators -- no dense detour. Rows with
/// row_mask[i] == 0 (boundary nodes, which get boundary-condition rows
/// instead) are left structurally empty. The accumulation order matches the
/// former dense product assembly bit for bit.
[[nodiscard]] la::CsrMatrix consistent_laplacian(
    const la::CsrMatrix& dx, const la::CsrMatrix& dy,
    const std::vector<std::uint8_t>& row_mask);

}  // namespace updec::rbf
