#pragma once
/// \file rbffd.hpp
/// RBF-FD: local differentiation stencils (Tolstykh's framework, the paper's
/// ref. [44]). For each node, a small RBF + polynomial fit over its k
/// nearest neighbours yields weights w with (L u)(x_i) ~= sum_b w_b u(x_b).
/// Collecting all rows gives sparse differentiation matrices Dx, Dy, Lap
/// that are *constant* for a fixed cloud -- which is exactly why the DP
/// tape of the Navier-Stokes solver stays affordable: the nonlinearity is
/// pointwise, while all spatial derivatives are constant SpMVs.

#include "la/lu.hpp"
#include "la/sparse.hpp"
#include "pointcloud/kdtree.hpp"
#include "rbf/operators.hpp"

namespace updec::rbf {

/// Stencil configuration.
struct RbffdConfig {
  std::size_t stencil_size = 13;  ///< k nearest neighbours per node
  int poly_degree = 1;            ///< appended monomial degree (paper: 1)
};

/// Differentiation-matrix factory for one point cloud.
class RbffdOperators {
 public:
  RbffdOperators(const pc::PointCloud& cloud, const Kernel& kernel,
                 const RbffdConfig& config = {});

  /// Incremental rebuild after a refine/coarsen step. `previous` is the
  /// operator set of the cloud this one was derived from; `old_index` maps
  /// each node of `cloud` to its index in previous.cloud() (-1 for inserted
  /// nodes; see pc::PointCloud::inserted / removed). Stencils are re-queried
  /// against the fresh KD-tree (O(n k log n)), but the expensive per-row
  /// saddle solves run ONLY for nodes whose stencil actually changed --
  /// every unchanged row is copied from `previous` with its columns
  /// remapped, bit for bit. Whatever canonical operators `previous` had
  /// materialised (dx / dy / laplacian) are rebuilt here eagerly under the
  /// same reuse rule, so `previous` may be destroyed afterwards.
  RbffdOperators(const pc::PointCloud& cloud, const RbffdOperators& previous,
                 const std::vector<std::ptrdiff_t>& old_index);

  /// Sparse matrix applying L at every node: (L u)_i = (W u)_i.
  [[nodiscard]] la::CsrMatrix weights_for(const LinearOp& op) const;

  /// Cached canonical operators.
  [[nodiscard]] const la::CsrMatrix& dx() const;
  [[nodiscard]] const la::CsrMatrix& dy() const;
  [[nodiscard]] const la::CsrMatrix& laplacian() const;

  [[nodiscard]] const pc::PointCloud& cloud() const { return *cloud_; }
  [[nodiscard]] const Kernel& kernel() const { return *kernel_; }
  [[nodiscard]] const RbffdConfig& config() const { return config_; }

  /// Stencil of node i: its k nearest neighbours, sorted by distance.
  [[nodiscard]] const std::vector<std::size_t>& stencil(std::size_t i) const {
    UPDEC_ASSERT(i < stencils_.size());
    return stencils_[i];
  }
  /// The KD-tree over the cloud (reused by the refinement planner).
  [[nodiscard]] const pc::KdTree& tree() const { return tree_; }

  /// Row accounting of the last incremental rebuild, summed over the
  /// canonical operators built so far (0 / 0 for a from-scratch build).
  [[nodiscard]] std::size_t rows_reused() const { return rows_reused_; }
  [[nodiscard]] std::size_t rows_recomputed() const {
    return rows_recomputed_;
  }

 private:
  /// Weight assembly shared by the fresh and incremental paths: rows with
  /// dirty_[i] == 0 are copied from `previous` (columns remapped through
  /// new_of_old_), all others run the per-row saddle solve. `previous`
  /// nullptr computes every row.
  [[nodiscard]] la::CsrMatrix weights_impl(const LinearOp& op,
                                           const la::CsrMatrix* previous) const;

  const pc::PointCloud* cloud_;
  const Kernel* kernel_;
  RbffdConfig config_;
  pc::KdTree tree_;
  std::vector<std::vector<std::size_t>> stencils_;
  // Incremental-rebuild state (empty for from-scratch builds).
  std::vector<std::uint8_t> dirty_;          ///< per-row: stencil changed?
  std::vector<std::ptrdiff_t> old_of_new_;   ///< this row -> previous row
  std::vector<std::ptrdiff_t> new_of_old_;   ///< previous col -> this col
  mutable std::size_t rows_reused_ = 0;
  mutable std::size_t rows_recomputed_ = 0;
  mutable std::unique_ptr<la::CsrMatrix> dx_, dy_, lap_;
};

/// Consistent product Laplacian Dx.Dx + Dy.Dy assembled sparse, straight
/// from the stencil-weight CSR operators -- no dense detour. Rows with
/// row_mask[i] == 0 (boundary nodes, which get boundary-condition rows
/// instead) are left structurally empty. The accumulation order matches the
/// former dense product assembly bit for bit.
[[nodiscard]] la::CsrMatrix consistent_laplacian(
    const la::CsrMatrix& dx, const la::CsrMatrix& dy,
    const std::vector<std::uint8_t>& row_mask);

}  // namespace updec::rbf
