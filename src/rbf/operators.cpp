#include "rbf/operators.hpp"

#include <cmath>

namespace updec::rbf {

double apply_kernel(const Kernel& kernel, const LinearOp& op,
                    const pc::Vec2& x, const pc::Vec2& centre) {
  const double dx = x.x - centre.x;
  const double dy = x.y - centre.y;
  const double r = std::sqrt(dx * dx + dy * dy);

  double result = 0.0;
  if (op.id != 0.0) result += op.id * kernel.phi(r);
  if (op.ddx != 0.0 || op.ddy != 0.0) {
    // Gradient of phi(r): phi'(r) * (x - c)/r; zero in the r -> 0 limit for
    // kernels with phi'(0) = 0 (all smooth and polyharmonic kernels here).
    if (r > 1e-300) {
      const double g = kernel.dphi(r) / r;
      result += op.ddx * g * dx + op.ddy * g * dy;
    }
  }
  if (op.lap != 0.0) result += op.lap * kernel.laplacian(r);
  return result;
}

MonomialBasis::MonomialBasis(int max_degree) : degree_(max_degree) {
  UPDEC_REQUIRE(max_degree >= 0, "monomial degree must be non-negative");
  for (int total = 0; total <= max_degree; ++total)
    for (int py = 0; py <= total; ++py) powers_.emplace_back(total - py, py);
}

namespace {
/// x^p with the convention 0^0 = 1 and x^negative = 0 (vanishing
/// derivative of a lower-order monomial).
double ipow(double x, int p) {
  if (p < 0) return 0.0;
  double result = 1.0;
  for (int i = 0; i < p; ++i) result *= x;
  return result;
}
}  // namespace

double MonomialBasis::evaluate(std::size_t k, const pc::Vec2& x) const {
  const auto [px, py] = powers_[k];
  return ipow(x.x, px) * ipow(x.y, py);
}

double MonomialBasis::apply(std::size_t k, const LinearOp& op,
                            const pc::Vec2& x) const {
  const auto [px, py] = powers_[k];
  double result = 0.0;
  if (op.id != 0.0) result += op.id * ipow(x.x, px) * ipow(x.y, py);
  if (op.ddx != 0.0 && px >= 1)
    result += op.ddx * px * ipow(x.x, px - 1) * ipow(x.y, py);
  if (op.ddy != 0.0 && py >= 1)
    result += op.ddy * py * ipow(x.x, px) * ipow(x.y, py - 1);
  if (op.lap != 0.0) {
    if (px >= 2)
      result += op.lap * px * (px - 1) * ipow(x.x, px - 2) * ipow(x.y, py);
    if (py >= 2)
      result += op.lap * py * (py - 1) * ipow(x.x, px) * ipow(x.y, py - 2);
  }
  return result;
}

}  // namespace updec::rbf
