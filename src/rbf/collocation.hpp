#pragma once
/// \file collocation.hpp
/// Global RBF collocation (Kansa-type) for linear PDEs of the paper's
/// eq. (1): an interior differential operator plus Dirichlet / Neumann /
/// Robin boundary rows, with monomial augmentation and the paper's node
/// ordering (internal, Dirichlet, Neumann, Robin, then M polynomial
/// constraint rows).
///
/// The collocation matrix depends only on the node layout, so it is LU-
/// factored exactly once and reused by:
///  * every optimisation iteration of the linear control problems,
///  * every adjoint solve of the DAL strategy (A^T),
///  * every VJP requested by the DP tape (ad::solve with the same LU).

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>

#include "la/lu.hpp"
#include "la/robust_solve.hpp"
#include "pointcloud/cloud.hpp"
#include "rbf/operators.hpp"

namespace updec::rbf {

/// One term of a custom collocation row: coeff * (L u)(point).
struct RowTerm {
  pc::Vec2 point;
  LinearOp op;
  double coeff = 1.0;
};

/// Builds the row of a node: a sum of RowTerms. Lets problems impose
/// non-local conditions such as periodicity u(0,y) - u(1,y) = 0.
using RowSpec =
    std::function<std::vector<RowTerm>(std::size_t, const pc::Node&)>;

/// Assembled global collocation system for one interior operator.
class GlobalCollocation {
 public:
  /// \param cloud      node layout (canonical ordering; not copied -- must
  ///                   outlive this object).
  /// \param kernel     RBF kernel (must outlive this object).
  /// \param poly_degree max total degree of appended monomials (paper: 1).
  /// \param interior_op operator enforced at internal nodes (e.g. Laplacian).
  /// \param robin_beta coefficient of the Robin trace d/dn + beta*I.
  GlobalCollocation(const pc::PointCloud& cloud, const Kernel& kernel,
                    int poly_degree, const LinearOp& interior_op,
                    double robin_beta = 0.0);

  /// Fully custom rows: `rows(i, node)` yields the terms of node i's row.
  GlobalCollocation(const pc::PointCloud& cloud, const Kernel& kernel,
                    int poly_degree, const RowSpec& rows);

  /// Number of RBF centres (== cloud nodes).
  [[nodiscard]] std::size_t num_nodes() const { return cloud_->size(); }
  /// Total unknowns N + M.
  [[nodiscard]] std::size_t system_size() const {
    return cloud_->size() + basis_.size();
  }

  [[nodiscard]] const la::Matrix& matrix() const { return a_; }
  [[nodiscard]] const MonomialBasis& basis() const { return basis_; }
  [[nodiscard]] const pc::PointCloud& cloud() const { return *cloud_; }

  /// LU of the collocation matrix (factored on first use, then cached).
  /// Factored robustly: a singular or non-finite breakdown escalates to a
  /// Tikhonov-shifted refactorisation instead of aborting (see
  /// factor_report() for what actually happened). Thread-safe: concurrent
  /// first calls factor exactly once (serve-layer jobs share problems).
  [[nodiscard]] const la::LuFactorization& lu() const;

  /// Shared handle to the cached factorisation (factoring first if needed).
  /// The serve-layer operator cache holds these across jobs, so a
  /// factorisation outlives any single problem instance.
  [[nodiscard]] std::shared_ptr<const la::LuFactorization> shared_lu() const;

  /// Adopt an externally computed factorisation (typically a serve-layer
  /// cache hit keyed on content_hash()), skipping the O(N^3) factor step.
  /// The factorisation must be of this system's matrix: sizes are checked,
  /// content is the caller's contract.
  void install_lu(std::shared_ptr<const la::LuFactorization> lu);

  /// FNV-1a hash of the assembled matrix bytes (plus dimensions). This is
  /// the content address under which serve/cache memoizes factorisations:
  /// identical node layout + kernel + rows => identical matrix => one
  /// factorisation for every job. O(N^2), computed once and cached.
  [[nodiscard]] std::uint64_t content_hash() const;

  /// How the cached factorisation was obtained (valid after first lu() /
  /// solve() call; attempts == 0 before that).
  [[nodiscard]] const la::FactorReport& factor_report() const {
    return factor_report_;
  }

  /// Right-hand side of length system_size(): `interior` gives the source
  /// q(x_i) for row i of each internal node, `boundary` the boundary datum
  /// for each boundary node (indexed by node id); constraint rows are 0.
  [[nodiscard]] la::Vector assemble_rhs(
      const std::function<double(const pc::Node&)>& interior,
      const std::function<double(const pc::Node&)>& boundary) const;

  /// Solve for the N + M coefficients (lambda, gamma). Guarded: a
  /// non-finite solution triggers one Tikhonov-shifted re-solve before
  /// giving up with a structured updec::Error.
  [[nodiscard]] la::Vector solve(const la::Vector& rhs) const;

  /// Evaluation matrix E with E(p, :) . coeffs == (L u)(points[p]): one row
  /// per evaluation point against all N + M basis functions.
  [[nodiscard]] la::Matrix evaluation_matrix(
      const std::vector<pc::Vec2>& points, const LinearOp& op) const;

  /// Nodal values of (L u) at all cloud nodes for given coefficients.
  [[nodiscard]] la::Vector evaluate_at_nodes(const la::Vector& coeffs,
                                             const LinearOp& op) const;

  /// 1-norm condition estimate of the collocation matrix (diagnostic for
  /// the Runge-phenomenon / flat-kernel regimes discussed in section 2.1).
  [[nodiscard]] double condition_estimate() const {
    return lu().condition_estimate();
  }

 private:
  const pc::PointCloud* cloud_;
  const Kernel* kernel_;
  MonomialBasis basis_;
  LinearOp interior_op_;
  double robin_beta_ = 0.0;
  la::Matrix a_;
  mutable std::mutex lu_mutex_;  ///< guards lu_/factor_report_/hash on first use
  mutable std::shared_ptr<const la::LuFactorization> lu_;
  mutable la::FactorReport factor_report_;
  mutable std::uint64_t content_hash_ = 0;  ///< 0 = not yet computed
};

}  // namespace updec::rbf
