#pragma once
/// \file operators.hpp
/// First/second-order linear differential operators applied to RBF kernels
/// and to the appended monomials. Everything the two experiment PDEs need
/// (identity, d/dx, d/dy, normal derivative, Laplacian, Robin traces) is a
/// linear combination L = a*I + b*d/dx + c*d/dy + d*Lap, so a collocation
/// row is fully described by four coefficients.

#include <vector>

#include "pointcloud/cloud.hpp"
#include "rbf/kernels.hpp"

namespace updec::rbf {

/// L = id*I + ddx*d/dx + ddy*d/dy + lap*Laplacian.
struct LinearOp {
  double id = 0.0;
  double ddx = 0.0;
  double ddy = 0.0;
  double lap = 0.0;

  static LinearOp identity() { return {1.0, 0.0, 0.0, 0.0}; }
  static LinearOp d_dx() { return {0.0, 1.0, 0.0, 0.0}; }
  static LinearOp d_dy() { return {0.0, 0.0, 1.0, 0.0}; }
  static LinearOp laplacian() { return {0.0, 0.0, 0.0, 1.0}; }
  /// Directional derivative d/dn along (outward) normal n.
  static LinearOp normal_derivative(const pc::Vec2& n) {
    return {0.0, n.x, n.y, 0.0};
  }
  /// Robin trace d/dn + beta*I.
  static LinearOp robin(const pc::Vec2& n, double beta) {
    return {beta, n.x, n.y, 0.0};
  }
};

/// (L phi)(x) for the kernel centred at c, built from the radial
/// derivatives:
///   d/dx  phi = phi'(r) (x - c_x)/r
///   Lap   phi = phi'' + phi'/r   (2-D)
/// with the correct r -> 0 limits for smooth kernels.
double apply_kernel(const Kernel& kernel, const LinearOp& op,
                    const pc::Vec2& x, const pc::Vec2& centre);

/// Monomial basis of total degree <= n in 2-D, ordered by total degree then
/// x-power descending: 1; x, y; x^2, xy, y^2; ... Size M = (n+1)(n+2)/2
/// (the paper's M = C(n+d, n)).
class MonomialBasis {
 public:
  explicit MonomialBasis(int max_degree);

  [[nodiscard]] int max_degree() const { return degree_; }
  [[nodiscard]] std::size_t size() const { return powers_.size(); }

  /// (L P_k)(x).
  [[nodiscard]] double apply(std::size_t k, const LinearOp& op,
                             const pc::Vec2& x) const;

  /// Plain evaluation P_k(x).
  [[nodiscard]] double evaluate(std::size_t k, const pc::Vec2& x) const;

  /// Exponent pair (px, py) of monomial k.
  [[nodiscard]] std::pair<int, int> powers(std::size_t k) const {
    return powers_[k];
  }

 private:
  int degree_;
  std::vector<std::pair<int, int>> powers_;
};

}  // namespace updec::rbf
