#include "rbf/collocation.hpp"

#include <limits>

#include "la/blas.hpp"
#include "util/faultinject.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace updec::rbf {

namespace {

/// Operator applied at a node's row, following eq. (1) of the paper.
LinearOp row_operator(const pc::Node& node, const LinearOp& interior_op,
                      double robin_beta) {
  switch (node.kind) {
    case pc::BoundaryKind::kInternal:
      return interior_op;
    case pc::BoundaryKind::kDirichlet:
      return LinearOp::identity();
    case pc::BoundaryKind::kNeumann:
      return LinearOp::normal_derivative(node.normal);
    case pc::BoundaryKind::kRobin:
      return LinearOp::robin(node.normal, robin_beta);
  }
  UPDEC_REQUIRE(false, "unreachable boundary kind");
  return {};
}

}  // namespace

GlobalCollocation::GlobalCollocation(const pc::PointCloud& cloud,
                                     const Kernel& kernel, int poly_degree,
                                     const LinearOp& interior_op,
                                     double robin_beta)
    : GlobalCollocation(
          cloud, kernel, poly_degree,
          [&interior_op, robin_beta](std::size_t, const pc::Node& node) {
            return std::vector<RowTerm>{
                {node.pos, row_operator(node, interior_op, robin_beta), 1.0}};
          }) {
  interior_op_ = interior_op;
  robin_beta_ = robin_beta;
}

GlobalCollocation::GlobalCollocation(const pc::PointCloud& cloud,
                                     const Kernel& kernel, int poly_degree,
                                     const RowSpec& rows)
    : cloud_(&cloud), kernel_(&kernel), basis_(poly_degree) {
  UPDEC_TRACE_SCOPE("rbf/assemble");
  const std::size_t n = cloud.size();
  UPDEC_METRIC_ADD("rbf/collocation.systems", 1);
  UPDEC_METRIC_GAUGE_MAX("rbf/collocation.max_system_size",
                         static_cast<double>(n + basis_.size()));
  const std::size_t m = basis_.size();
  UPDEC_REQUIRE(n > m, "cloud must have more nodes than appended monomials");
  a_ = la::Matrix(n + m, n + m, 0.0);

  // Collocation rows, one per node; each row may sum several (point, op)
  // terms (e.g. periodic matching conditions).
#ifdef UPDEC_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (std::ptrdiff_t ii = 0; ii < static_cast<std::ptrdiff_t>(n); ++ii) {
    const auto i = static_cast<std::size_t>(ii);
    const pc::Node& node = cloud.node(i);
    double* row = a_.row(i);
    for (const RowTerm& term : rows(i, node)) {
      for (std::size_t j = 0; j < n; ++j)
        row[j] += term.coeff *
                  apply_kernel(*kernel_, term.op, term.point, cloud.node(j).pos);
      for (std::size_t k = 0; k < m; ++k)
        row[n + k] += term.coeff * basis_.apply(k, term.op, term.point);
    }
  }
  // Polynomial moment constraints: sum_j lambda_j P_k(x_j) = 0.
  for (std::size_t k = 0; k < m; ++k) {
    double* row = a_.row(n + k);
    for (std::size_t j = 0; j < n; ++j)
      row[j] = basis_.evaluate(k, cloud.node(j).pos);
  }
}

const la::LuFactorization& GlobalCollocation::lu() const {
  // The mutex makes concurrent first calls factor exactly once; the
  // returned factorisation itself is immutable, so callers may solve
  // against it from many threads. One uncontended lock per solve is noise
  // next to the O(N^2) triangular sweeps.
  {
    const std::lock_guard<std::mutex> lock(lu_mutex_);
    if (!lu_) {
      UPDEC_TRACE_SCOPE("rbf/factor");
      lu_ = std::make_shared<const la::LuFactorization>(
          la::robust_lu_factor(a_, &factor_report_));
    }
  }
  return *lu_;
}

std::shared_ptr<const la::LuFactorization> GlobalCollocation::shared_lu()
    const {
  lu();  // ensure factored
  const std::lock_guard<std::mutex> lock(lu_mutex_);
  return lu_;
}

void GlobalCollocation::install_lu(
    std::shared_ptr<const la::LuFactorization> lu) {
  UPDEC_REQUIRE(lu && lu->valid(), "install_lu: empty factorisation");
  UPDEC_REQUIRE(lu->size() == system_size(),
                "install_lu: factorisation size does not match the system");
  const std::lock_guard<std::mutex> lock(lu_mutex_);
  lu_ = std::move(lu);
  factor_report_.attempts = std::max<std::size_t>(factor_report_.attempts, 1);
  factor_report_.ok = true;
}

std::uint64_t GlobalCollocation::content_hash() const {
  const std::lock_guard<std::mutex> lock(lu_mutex_);
  if (content_hash_ == 0) {
    // FNV-1a over dimensions then raw matrix bytes. Doubles hash by bit
    // pattern: assembly is deterministic for a fixed (cloud, kernel, rows),
    // so bitwise equality is the right equivalence.
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](const unsigned char* p, std::size_t len) {
      for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
      }
    };
    const std::uint64_t dims[2] = {a_.rows(), a_.cols()};
    mix(reinterpret_cast<const unsigned char*>(dims), sizeof dims);
    mix(reinterpret_cast<const unsigned char*>(a_.data()),
        a_.rows() * a_.cols() * sizeof(double));
    content_hash_ = h == 0 ? 1 : h;  // reserve 0 for "not computed"
  }
  return content_hash_;
}

la::Vector GlobalCollocation::assemble_rhs(
    const std::function<double(const pc::Node&)>& interior,
    const std::function<double(const pc::Node&)>& boundary) const {
  la::Vector rhs(system_size(), 0.0);
  for (std::size_t i = 0; i < cloud_->size(); ++i) {
    const pc::Node& node = cloud_->node(i);
    rhs[i] = node.kind == pc::BoundaryKind::kInternal ? interior(node)
                                                      : boundary(node);
  }
  return rhs;
}

la::Vector GlobalCollocation::solve(const la::Vector& rhs) const {
  UPDEC_TRACE_SCOPE("rbf/solve");
  UPDEC_METRIC_ADD("rbf/collocation.solves", 1);
  UPDEC_REQUIRE(rhs.size() == system_size(), "rhs size mismatch");
  UPDEC_REQUIRE(la::all_finite(rhs),
                "collocation rhs has non-finite entries");
  la::Vector x = lu().solve(rhs);
  if (UPDEC_FAULT_POINT("collocation.nan_solution"))
    x[0] = std::numeric_limits<double>::quiet_NaN();
  if (!la::all_finite(x)) {
    // The cached factorisation produced garbage (overflow in the
    // triangular sweeps of a near-singular system): re-solve once against
    // a Tikhonov-shifted refactorisation before giving up.
    log_warn() << "collocation solve produced non-finite entries; "
               << "re-solving with a Tikhonov-shifted refactorisation";
    x = la::shifted_lu_factor(a_, 1e-12).solve(rhs);
    UPDEC_REQUIRE(la::all_finite(x),
                  "collocation solve non-finite even after Tikhonov-shifted "
                  "recovery");
  }
  return x;
}

la::Matrix GlobalCollocation::evaluation_matrix(
    const std::vector<pc::Vec2>& points, const LinearOp& op) const {
  const std::size_t n = cloud_->size();
  const std::size_t m = basis_.size();
  la::Matrix e(points.size(), n + m, 0.0);
#ifdef UPDEC_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (std::ptrdiff_t pp = 0; pp < static_cast<std::ptrdiff_t>(points.size());
       ++pp) {
    const auto p = static_cast<std::size_t>(pp);
    double* row = e.row(p);
    for (std::size_t j = 0; j < n; ++j)
      row[j] = apply_kernel(*kernel_, op, points[p], cloud_->node(j).pos);
    for (std::size_t k = 0; k < m; ++k)
      row[n + k] = basis_.apply(k, op, points[p]);
  }
  return e;
}

la::Vector GlobalCollocation::evaluate_at_nodes(const la::Vector& coeffs,
                                                const LinearOp& op) const {
  UPDEC_REQUIRE(coeffs.size() == system_size(), "coefficient size mismatch");
  std::vector<pc::Vec2> points;
  points.reserve(cloud_->size());
  for (const pc::Node& node : cloud_->nodes()) points.push_back(node.pos);
  const la::Matrix e = evaluation_matrix(points, op);
  return la::matvec(e, coeffs);
}

}  // namespace updec::rbf
