#pragma once
/// \file interpolation.hpp
/// Scattered-data RBF interpolation (the "hello world" of the framework and
/// the basis of the quickstart example). A thin convenience layer over
/// GlobalCollocation with identity rows everywhere.

#include "rbf/collocation.hpp"

namespace updec::rbf {

/// Interpolant through values given at a cloud's nodes.
class RbfInterpolant {
 public:
  /// Fit immediately. `values[i]` is the datum at cloud.node(i).
  RbfInterpolant(const pc::PointCloud& cloud, const Kernel& kernel,
                 int poly_degree, const la::Vector& values);

  /// Interpolated value at an arbitrary point.
  [[nodiscard]] double operator()(const pc::Vec2& p) const;

  /// Value of (L u)(p) for any supported linear operator (gradients,
  /// Laplacian, ...), exact derivatives of the interpolant.
  [[nodiscard]] double apply(const LinearOp& op, const pc::Vec2& p) const;

  /// Batch evaluation.
  [[nodiscard]] la::Vector evaluate(const std::vector<pc::Vec2>& points,
                                    const LinearOp& op = LinearOp::identity()) const;

  [[nodiscard]] const la::Vector& coefficients() const { return coeffs_; }

 private:
  GlobalCollocation collocation_;
  la::Vector coeffs_;
};

}  // namespace updec::rbf
