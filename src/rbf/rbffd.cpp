#include "rbf/rbffd.hpp"

#include <atomic>
#include <cmath>
#include <exception>

#include "la/robust_solve.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace updec::rbf {

RbffdOperators::RbffdOperators(const pc::PointCloud& cloud,
                               const Kernel& kernel, const RbffdConfig& config)
    : cloud_(&cloud), kernel_(&kernel), config_(config), tree_(cloud) {
  UPDEC_TRACE_SCOPE("rbf/rbffd_stencils");
  const MonomialBasis basis(config_.poly_degree);
  UPDEC_REQUIRE(config_.stencil_size > 2 * basis.size(),
                "stencil must be larger than twice the polynomial basis "
                "(unisolvency safety margin)");
  UPDEC_REQUIRE(config_.stencil_size <= cloud.size(),
                "stencil larger than the cloud");
  stencils_.resize(cloud.size());
  for (std::size_t i = 0; i < cloud.size(); ++i)
    stencils_[i] = tree_.k_nearest(cloud.node(i).pos, config_.stencil_size);
  UPDEC_METRIC_ADD("rbf/rbffd.stencils", cloud.size());
}

RbffdOperators::RbffdOperators(const pc::PointCloud& cloud,
                               const RbffdOperators& previous,
                               const std::vector<std::ptrdiff_t>& old_index)
    : cloud_(&cloud),
      kernel_(previous.kernel_),
      config_(previous.config_),
      tree_(cloud) {
  UPDEC_TRACE_SCOPE("rbf/rbffd_refit");
  UPDEC_REQUIRE(old_index.size() == cloud.size(),
                "old_index must map every node of the new cloud");
  UPDEC_REQUIRE(config_.stencil_size <= cloud.size(),
                "stencil larger than the cloud");
  const std::size_t n = cloud.size();
  const std::size_t n_old = previous.cloud_->size();

  old_of_new_ = old_index;
  new_of_old_.assign(n_old, -1);
  for (std::size_t i = 0; i < n; ++i) {
    const std::ptrdiff_t o = old_of_new_[i];
    if (o >= 0) {
      UPDEC_REQUIRE(static_cast<std::size_t>(o) < n_old,
                    "old_index entry out of range");
      new_of_old_[static_cast<std::size_t>(o)] = static_cast<std::ptrdiff_t>(i);
    }
  }

  stencils_.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    stencils_[i] = tree_.k_nearest(cloud.node(i).pos, config_.stencil_size);
  UPDEC_METRIC_ADD("rbf/rbffd.stencils", n);

  // A row is clean iff its old stencil survives verbatim: every member still
  // present AND the distance-ordered index sequence maps onto the new one.
  // Ordered (not set) comparison keeps the guarantee bitwise -- a reused row
  // is the exact row the from-scratch build would produce, because the
  // saddle system is assembled in the same stencil order.
  dirty_.assign(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    const std::ptrdiff_t o = old_of_new_[i];
    if (o < 0) continue;  // inserted node: no previous row
    const auto& prev_stencil = previous.stencils_[static_cast<std::size_t>(o)];
    const auto& cur_stencil = stencils_[i];
    if (prev_stencil.size() != cur_stencil.size()) continue;
    bool same = true;
    for (std::size_t a = 0; a < cur_stencil.size() && same; ++a) {
      const std::ptrdiff_t mapped = new_of_old_[prev_stencil[a]];
      same = mapped >= 0 &&
             static_cast<std::size_t>(mapped) == cur_stencil[a];
    }
    if (same) dirty_[i] = 0;
  }

  // Rebuild exactly the canonical operators the previous cloud had
  // materialised, while `previous` (and its CSR storage) is still alive.
  if (previous.dx_) dx_ = std::make_unique<la::CsrMatrix>(
      weights_impl(LinearOp::d_dx(), previous.dx_.get()));
  if (previous.dy_) dy_ = std::make_unique<la::CsrMatrix>(
      weights_impl(LinearOp::d_dy(), previous.dy_.get()));
  if (previous.lap_) lap_ = std::make_unique<la::CsrMatrix>(
      weights_impl(LinearOp::laplacian(), previous.lap_.get()));
}

la::CsrMatrix RbffdOperators::weights_for(const LinearOp& op) const {
  return weights_impl(op, nullptr);
}

la::CsrMatrix RbffdOperators::weights_impl(const LinearOp& op,
                                           const la::CsrMatrix* previous) const {
  UPDEC_TRACE_SCOPE("rbf/rbffd_weights");
  UPDEC_METRIC_ADD("rbf/rbffd.operators_built", 1);
  const std::size_t n = cloud_->size();
  const std::size_t k = config_.stencil_size;
  const MonomialBasis basis(config_.poly_degree);
  const std::size_t m = basis.size();

  // Row-major CSR with exactly k entries per row; rows are independent.
  std::vector<std::size_t> row_ptr(n + 1);
  for (std::size_t i = 0; i <= n; ++i) row_ptr[i] = i * k;
  std::vector<std::size_t> col_idx(n * k);
  std::vector<double> values(n * k);

  std::size_t reused = 0;

  // Exceptions (degenerate-stencil UPDEC_REQUIRE, factorisation failures)
  // MUST NOT escape the OpenMP structured block -- that is std::terminate,
  // not an error report. The first failure is parked and rethrown after the
  // region; remaining iterations drain as cheap no-ops.
  std::atomic<bool> failed{false};
  std::exception_ptr error;

#ifdef UPDEC_HAVE_OPENMP
#pragma omp parallel for schedule(static) reduction(+ : reused)
#endif
  for (std::ptrdiff_t ii = 0; ii < static_cast<std::ptrdiff_t>(n); ++ii) {
    if (failed.load(std::memory_order_acquire)) continue;
    try {
      const auto i = static_cast<std::size_t>(ii);
      const auto& stencil = stencils_[i];

      if (previous && !dirty_[i]) {
        // Clean row: copy the previous weights with columns remapped. The
        // stencil is position-identical, so the values carry over bitwise;
        // only the column numbering moved.
        const auto o = static_cast<std::size_t>(old_of_new_[i]);
        std::size_t out = i * k;
        for (std::size_t p = previous->row_ptr()[o];
             p < previous->row_ptr()[o + 1]; ++p, ++out) {
          const std::ptrdiff_t c = new_of_old_[previous->col_idx()[p]];
          UPDEC_ASSERT(c >= 0);
          col_idx[out] = static_cast<std::size_t>(c);
          values[out] = previous->values()[p];
        }
        reused += 1;
        continue;
      }

      const pc::Vec2 centre = cloud_->node(i).pos;

      // Shift to the stencil centre and scale by the stencil radius: keeps
      // the local PHS system well conditioned independent of the global h.
      double radius = 0.0;
      for (const std::size_t j : stencil)
        radius = std::max(radius, pc::distance(cloud_->node(j).pos, centre));
      UPDEC_REQUIRE(radius > 0.0, "degenerate stencil (duplicate nodes?)");
      const double inv_h = 1.0 / radius;

      std::vector<pc::Vec2> local(k);
      for (std::size_t a = 0; a < k; ++a) {
        const pc::Vec2 p = cloud_->node(stencil[a]).pos;
        local[a] = {(p.x - centre.x) * inv_h, (p.y - centre.y) * inv_h};
      }

      // Saddle system [Phi P; P^T 0] [w; v] = [L phi | L P] evaluated at the
      // centre (the local origin). With v(xi) = u(centre + radius * xi),
      // du/dx = (1/radius) dv/dxi and Lap u = (1/radius^2) Lap v, so the
      // physical operator L maps to L_s = {id, ddx/radius, ddy/radius,
      // lap/radius^2} in scaled coordinates, and the resulting weights apply
      // to the physical nodal values u(x_b) directly.
      const LinearOp scaled{op.id, op.ddx * inv_h, op.ddy * inv_h,
                            op.lap * inv_h * inv_h};
      la::Matrix system(k + m, k + m, 0.0);
      for (std::size_t a = 0; a < k; ++a) {
        for (std::size_t b = 0; b < k; ++b)
          system(a, b) = kernel_->phi(pc::distance(local[a], local[b]));
        for (std::size_t q = 0; q < m; ++q) {
          const double pv = basis.evaluate(q, local[a]);
          system(a, k + q) = pv;
          system(k + q, a) = pv;
        }
      }
      la::Vector rhs(k + m, 0.0);
      const pc::Vec2 origin{0.0, 0.0};
      for (std::size_t b = 0; b < k; ++b)
        rhs[b] = apply_kernel(*kernel_, scaled, origin, local[b]);
      for (std::size_t q = 0; q < m; ++q)
        rhs[k + q] = basis.apply(q, scaled, origin);

      // Robust factor: a degenerate stencil (duplicated or collinear nodes)
      // escalates to a Tikhonov-shifted solve instead of aborting assembly.
      const la::Vector w = la::robust_lu_factor(system).solve(rhs);
      for (std::size_t a = 0; a < k; ++a) {
        col_idx[i * k + a] = stencil[a];
        values[i * k + a] = w[a];
      }
    } catch (...) {
      bool expected = false;
      if (failed.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel))
        error = std::current_exception();
    }
  }
  if (failed.load(std::memory_order_acquire)) std::rethrow_exception(error);

  if (previous) {
    rows_reused_ += reused;
    rows_recomputed_ += n - reused;
    UPDEC_METRIC_ADD("rbf/rbffd.rows_reused", reused);
    UPDEC_METRIC_ADD("rbf/rbffd.rows_recomputed", n - reused);
  }

  // Each row's column indices must be sorted for CsrMatrix::at().
  for (std::size_t i = 0; i < n; ++i) {
    // insertion sort of (col, val) pairs within the row (k is small)
    for (std::size_t a = 1; a < k; ++a) {
      std::size_t c = col_idx[i * k + a];
      double v = values[i * k + a];
      std::size_t b = a;
      while (b > 0 && col_idx[i * k + b - 1] > c) {
        col_idx[i * k + b] = col_idx[i * k + b - 1];
        values[i * k + b] = values[i * k + b - 1];
        --b;
      }
      col_idx[i * k + b] = c;
      values[i * k + b] = v;
    }
  }
  return la::CsrMatrix(n, n, std::move(row_ptr), std::move(col_idx),
                       std::move(values));
}

const la::CsrMatrix& RbffdOperators::dx() const {
  if (!dx_) dx_ = std::make_unique<la::CsrMatrix>(weights_for(LinearOp::d_dx()));
  return *dx_;
}

const la::CsrMatrix& RbffdOperators::dy() const {
  if (!dy_) dy_ = std::make_unique<la::CsrMatrix>(weights_for(LinearOp::d_dy()));
  return *dy_;
}

const la::CsrMatrix& RbffdOperators::laplacian() const {
  if (!lap_)
    lap_ = std::make_unique<la::CsrMatrix>(weights_for(LinearOp::laplacian()));
  return *lap_;
}

la::CsrMatrix consistent_laplacian(const la::CsrMatrix& dx,
                                   const la::CsrMatrix& dy,
                                   const std::vector<std::uint8_t>& row_mask) {
  UPDEC_TRACE_SCOPE("rbf/consistent_laplacian");
  return la::add(1.0, la::multiply(dx, dx, &row_mask), 1.0,
                 la::multiply(dy, dy, &row_mask));
}

}  // namespace updec::rbf
